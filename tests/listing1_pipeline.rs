//! End-to-end test of the compile→execute spine on the paper's Listing 1:
//! random-projection encode → Hamming distance scoring → arg-min, built with
//! the HDC++ builder DSL, compiled through the full `PassManager` pipeline
//! (binarize → perforate → hoist → target-assign → DCE), executed on
//! `hdc-runtime`, and checked against the direct `hdc-core` reference path.

use hpvm_hdc::core::prelude::*;
use hpvm_hdc::ir::prelude::*;
use hpvm_hdc::passes::{
    BinarizePass, DataMovementPass, DcePass, PassManager, PerforationConfig, PerforationPass,
    TargetAssignPass,
};
use hpvm_hdc::runtime::{Executor, Value};

const FEATURES: usize = 617;
const DIM: usize = 2048;
const CLASSES: usize = 26;

struct Listing1 {
    program: hpvm_hdc::ir::Program,
    label: ValueId,
}

/// Build Listing 1 with explicit `sign` binarization points, the form the
/// automatic-binarization pass recognizes (Table 3 configuration III).
fn build_listing1() -> Listing1 {
    let mut b = ProgramBuilder::new("listing1");
    let features = b.input_vector("features", ElementKind::F32, FEATURES);
    let rp = b.input_matrix("rp", ElementKind::F32, DIM, FEATURES);
    let classes = b.input_matrix("classes", ElementKind::F32, CLASSES, DIM);
    let encoded = b.matmul(features, rp);
    let encoded_b = b.sign(encoded);
    let classes_b = b.sign(classes);
    let dists = b.hamming_distance(encoded_b, classes_b);
    let label = b.arg_min(dists);
    // A dead computation the DCE pass must remove.
    let dead = b.sign_flip(encoded);
    let _dead2 = b.absolute_value(dead);
    b.mark_output(label);
    Listing1 {
        program: b.finish(),
        label,
    }
}

struct Fixture {
    features: HyperVector<f64>,
    rp: HyperMatrix<f64>,
    classes: HyperMatrix<f64>,
}

/// Deterministic inputs: a bipolar projection, Gaussian features, and class
/// hypervectors built so that class 13 is the true nearest neighbour.
fn fixture() -> Fixture {
    let mut rng = HdcRng::seed_from_u64(0xC1A55);
    let proj = RandomProjection::<f64>::bipolar(DIM, FEATURES, &mut rng);
    let features: HyperVector<f64> =
        hpvm_hdc::core::random::gaussian_hypervector(FEATURES, &mut rng);
    let target = proj.encode(&features).sign();
    let class_rows: Vec<HyperVector<f64>> = (0..CLASSES)
        .map(|c| {
            if c == 13 {
                // Near-copy of the encoded query: flip a handful of elements.
                let mut v = target.clone();
                for i in 0..40 {
                    let idx = (i * 53) % DIM;
                    v.set(idx, -v.get(idx).unwrap()).unwrap();
                }
                v
            } else {
                hpvm_hdc::core::random::bipolar_hypervector(DIM, &mut rng)
            }
        })
        .collect();
    Fixture {
        features,
        rp: proj.matrix().clone(),
        classes: HyperMatrix::from_rows(class_rows).unwrap(),
    }
}

/// The direct hdc-core reference path for the same computation, using the
/// bit-packed kernels explicitly.
fn reference_label(fx: &Fixture) -> usize {
    let encoded = hpvm_hdc::core::matmul::matvec(&fx.rp, &fx.features, Perforation::NONE).unwrap();
    let query = BitVector::from_dense(&encoded.sign());
    let classes = BitMatrix::from_dense(&fx.classes.sign());
    let dists = classes
        .hamming_distances(&query, Perforation::NONE)
        .unwrap();
    arg_min(dists.as_slice()).unwrap()
}

fn run_compiled(
    program: &hpvm_hdc::ir::Program,
    label: ValueId,
    fx: &Fixture,
) -> (usize, hpvm_hdc::runtime::ExecStats) {
    let mut exec = Executor::new(program).unwrap();
    exec.bind("features", Value::vector(fx.features.clone()))
        .unwrap();
    exec.bind("rp", Value::matrix(fx.rp.clone())).unwrap();
    exec.bind("classes", Value::matrix(fx.classes.clone()))
        .unwrap();
    let outputs = exec.run().unwrap();
    (outputs.scalar(label).unwrap() as usize, exec.stats())
}

#[test]
fn listing1_binarized_pipeline_matches_reference() {
    let Listing1 { mut program, label } = build_listing1();
    let fx = fixture();

    // Full pipeline: binarize → perforate → hoist → target-assign → dce.
    let mut manager = PassManager::new()
        .with_pass(BinarizePass::default())
        .with_pass(PerforationPass::new(PerforationConfig::none()))
        .with_pass(DataMovementPass)
        .with_pass(TargetAssignPass::default())
        .with_pass(DcePass);
    let report = manager.run(&mut program).unwrap();

    // The pipeline did real work: values were binarized and the dead
    // instructions removed.
    let binarize = report.binarize().unwrap();
    assert!(binarize.binarized_values >= 2);
    assert!(binarize.reduction_factor() > 1.0);
    match report.report_for("dce").unwrap() {
        hpvm_hdc::passes::PassReport::Dce(r) => assert_eq!(r.removed_instrs, 2),
        other => panic!("unexpected report {other:?}"),
    }

    let (compiled_label, stats) = run_compiled(&program, label, &fx);
    assert!(
        stats.bit_kernel_ops >= 1,
        "binarized program must use the popcount kernels"
    );
    assert_eq!(compiled_label, 13, "constructed nearest class");
    assert_eq!(compiled_label, reference_label(&fx));
}

#[test]
fn listing1_unbinarized_and_binarized_agree() {
    let fx = fixture();

    // Unbinarized: compile with binarization disabled.
    let Listing1 { mut program, label } = build_listing1();
    let mut manager = PassManager::new()
        .with_pass(DataMovementPass)
        .with_pass(TargetAssignPass::default())
        .with_pass(DcePass);
    manager.run(&mut program).unwrap();
    let (plain_label, plain_stats) = run_compiled(&program, label, &fx);
    assert_eq!(plain_stats.bit_kernel_ops, 0, "dense path stays dense");

    // Binarized via the one-call compile() convenience.
    let Listing1 { mut program, label } = build_listing1();
    hpvm_hdc::passes::compile(&mut program, &hpvm_hdc::passes::CompileOptions::default()).unwrap();
    let (bin_label, _) = run_compiled(&program, label, &fx);

    // Binarization is exact for this program (the sign points are explicit),
    // so the classification must agree, not merely approximate.
    assert_eq!(plain_label, bin_label);
    assert_eq!(plain_label, reference_label(&fx));
}

#[test]
fn listing1_perforated_pipeline_still_classifies() {
    let Listing1 { mut program, label } = build_listing1();
    let fx = fixture();
    let options = hpvm_hdc::passes::CompileOptions {
        perforation: PerforationConfig::strided_similarity(2),
        ..Default::default()
    };
    hpvm_hdc::passes::compile(&mut program, &options).unwrap();
    // Half the positions still overwhelmingly favour the constructed class.
    let (label_value, _) = run_compiled(&program, label, &fx);
    assert_eq!(label_value, 13);
}
