//! # hpvm-hdc
//!
//! Facade crate for the HPVM-HDC reproduction: a heterogeneous programming
//! system for hyperdimensional computing (ISCA 2025).
//!
//! This crate simply re-exports the workspace crates under one roof so that
//! examples, integration tests and downstream users can depend on a single
//! package:
//!
//! * [`core`] — hypervector/hypermatrix math, encodings, similarity metrics.
//! * [`ir`] — the HPVM-HDC IR and the HDC++ builder DSL.
//! * [`passes`] — automatic binarization, reduction perforation, lowering,
//!   data-movement hoisting, target assignment, and the pass manager.
//! * [`runtime`] — the reference program executor: the value store and the
//!   CPU interpretation of every HDC intrinsic (dense and bit-packed).
//! * [`accel`] — the accelerator back end: analytical performance models
//!   for the digital ASIC and ReRAM targets, and the model-backed
//!   `AcceleratedExecutor` that reports modeled accelerator-vs-CPU
//!   speedups while the runtime kernels produce the outputs.
//! * [`datasets`] — seeded synthetic workloads (ISOLET-like, EMG-like,
//!   HyperOMS-like) behind the `Dataset { train, test, meta }` API.
//! * [`apps`] — the application suite: HD classification with retraining,
//!   HD clustering, and top-k spectral matching, each compiled through the
//!   full pass pipeline, executable in batched or sequential mode, and —
//!   via `run_accelerated` — through the accelerator back end.
//! * [`serve`] — the serving layer: an `Arc`-shared compiled-model
//!   registry with atomic mid-flight swaps, a time/size-windowed
//!   micro-batching request coalescer dispatching through the batched
//!   kernels (every window bit-identical to the sequential oracle),
//!   health/stats endpoints, and an open-loop load generator.
//! * [`analyze`] — the static-analysis layer: def-use chains and a
//!   worklist engine over the IR, liveness, abstract shape/dtype and
//!   bit-taint interpretation, perforation/`wrap_shift`/`parallel_for`
//!   legality, and effect/alias classification of the `Arc`-backed value
//!   store — surfaced as an `AnalysisReport` (stable `HDA0xx` codes,
//!   JSON), the `hdc-lint` binary, and an `AnalyzePass` for the pass
//!   manager.
//!
//! See `README.md` for the workspace layout and a quickstart,
//! `docs/architecture.md` for the IR → passes → executor walkthrough,
//! `docs/accelerator-model.md` for the accelerator cost model, and
//! `docs/serving.md` for the serving layer.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub use hdc_accel as accel;
pub use hdc_analyze as analyze;
pub use hdc_apps as apps;
pub use hdc_core as core;
pub use hdc_datasets as datasets;
pub use hdc_ir as ir;
pub use hdc_passes as passes;
pub use hdc_runtime as runtime;
pub use hdc_serve as serve;
