//! # hpvm-hdc
//!
//! Facade crate for the HPVM-HDC reproduction: a heterogeneous programming
//! system for hyperdimensional computing (ISCA 2025).
//!
//! This crate simply re-exports the workspace crates under one roof so that
//! examples, integration tests and downstream users can depend on a single
//! package:
//!
//! * [`core`] — hypervector/hypermatrix math, encodings, similarity metrics.
//! * [`ir`] — the HPVM-HDC IR and the HDC++ builder DSL.
//! * [`passes`] — automatic binarization, reduction perforation, lowering,
//!   data-movement hoisting and target assignment.
//! * [`runtime`] — the program executor, memory/transfer manager and the CPU
//!   back end.
//! * [`accel`] — the GPU performance models and the digital-ASIC / ReRAM
//!   accelerator simulators.
//! * [`datasets`] — synthetic stand-ins for the paper's datasets.
//! * [`apps`] — the five evaluated applications (HD-Classification,
//!   HD-Clustering, HyperOMS, RelHD, HD-Hashtable).
//!
//! See `README.md` for a quickstart and `EXPERIMENTS.md` for the
//! paper-versus-measured comparison of every table and figure.

#![forbid(unsafe_code)]

pub use hdc_accel as accel;
pub use hdc_apps as apps;
pub use hdc_core as core;
pub use hdc_datasets as datasets;
pub use hdc_ir as ir;
pub use hdc_passes as passes;
pub use hdc_runtime as runtime;
