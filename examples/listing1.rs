//! The paper's Listing 1, end to end: build with the HDC++ builder DSL,
//! compile through the full pass pipeline, execute on the reference
//! interpreter.
//!
//! This is the canonical minimal program — `README.md` and
//! `docs/architecture.md` both point here instead of embedding a snippet
//! that could drift. Run it with:
//!
//! ```text
//! cargo run --release --example listing1
//! ```

use hpvm_hdc::core::prelude::*;
use hpvm_hdc::ir::prelude::*;
use hpvm_hdc::passes::{compile, CompileOptions};
use hpvm_hdc::runtime::{Executor, Value};

const FEATURES: usize = 617;
const DIM: usize = 2048;
const CLASSES: usize = 26;

fn main() {
    // ---- Build: encode → score → classify (Listing 1). --------------------
    let mut b = ProgramBuilder::new("classify_one");
    let features = b.input_vector("features", ElementKind::F32, FEATURES);
    let rp = b.input_matrix("rp", ElementKind::F32, DIM, FEATURES);
    let classes = b.input_matrix("classes", ElementKind::F32, CLASSES, DIM);
    let encoded = b.matmul(features, rp);
    let signed = b.sign(encoded);
    let classes_b = b.sign(classes);
    let dists = b.hamming_distance(signed, classes_b);
    let label = b.arg_min(dists);
    b.mark_output(label);
    let mut program = b.finish();

    // ---- Compile: binarize → hoist → target-assign → dce. ------------------
    // The IR is re-verified after every pass; the report prints one line per
    // pass.
    let report = compile(&mut program, &CompileOptions::default()).expect("pipeline accepts IR");
    println!("== compile report ==");
    print!("{}", report.pipeline);
    println!("\n== binarized IR ==");
    print!("{}", hpvm_hdc::ir::printer::print_program(&program));

    // ---- Execute on the reference interpreter. -----------------------------
    // Deterministic inputs: a bipolar projection, Gaussian features, and
    // class hypervectors constructed so class 13 is the nearest neighbour.
    let mut rng = HdcRng::seed_from_u64(0xC1A55);
    let proj = RandomProjection::<f64>::bipolar(DIM, FEATURES, &mut rng);
    let x: HyperVector<f64> = hpvm_hdc::core::random::gaussian_hypervector(FEATURES, &mut rng);
    let target = proj.encode(&x).sign();
    let class_rows: Vec<HyperVector<f64>> = (0..CLASSES)
        .map(|c| {
            if c == 13 {
                target.clone()
            } else {
                hpvm_hdc::core::random::bipolar_hypervector(DIM, &mut rng)
            }
        })
        .collect();

    let mut exec = Executor::new(&program).expect("program verifies");
    exec.bind("features", Value::vector(x)).expect("shape ok");
    exec.bind("rp", Value::matrix(proj.matrix().clone()))
        .expect("shape ok");
    exec.bind(
        "classes",
        Value::matrix(HyperMatrix::from_rows(class_rows).expect("equal dims")),
    )
    .expect("shape ok");
    let outputs = exec.run().expect("program executes");

    let predicted = outputs.scalar(label).expect("label output") as usize;
    println!("== execution ==");
    println!("predicted class: {predicted} (expected 13)");
    println!("stats: {:?}", exec.stats());
    assert_eq!(predicted, 13);
}
