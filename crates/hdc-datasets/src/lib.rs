//! # hdc-datasets
//!
//! Reproducible synthetic workloads for the HPVM-HDC application suite.
//!
//! The paper evaluates its compiler on a suite of HDC applications driven by
//! real datasets (ISOLET speech features, EMG gesture windows, HyperOMS mass
//! spectra). The build environment for this reproduction is offline, so this
//! crate generates *statistically analogous* workloads from seeded RNG:
//! every generator is deterministic given its parameter struct, and the
//! parameters encode the structure that makes the workload interesting
//! (class separation vs. noise, temporal structure, spectral sparsity).
//!
//! All generators return the same shape of data, a [`Dataset`]:
//!
//! * [`synthetic::isolet_like`] — Gaussian class clusters in feature space
//!   (ISOLET-style classification: separable but noisy; nearest-centroid is
//!   good, not perfect, leaving headroom for retraining to close).
//! * [`synthetic::emg_like`] — windowed multi-channel time series
//!   (EMG-style gesture recognition: each class is a set of per-channel
//!   oscillation parameters; samples are flattened windows cut at random
//!   phases).
//! * [`synthetic::hyperoms_like`] — sparse non-negative spectra
//!   (HyperOMS-style spectral library search: `train` is the library,
//!   `test` holds noisy re-measurements; each test label names the library
//!   entry it was derived from, which top-k matching should recover).
//!
//! The [`drift`] module layers *online* scenarios on top: each generator
//! pairs a base [`Dataset`] (for offline training) with a timestamped
//! [`drift::DriftTape`] of labeled feedback whose distribution changes at
//! a configured onset — label shift, incremental classes, and concept
//! drift on the EMG-like stream.
//!
//! # Example
//!
//! ```
//! use hdc_datasets::synthetic::{isolet_like, IsoletParams};
//!
//! let ds = isolet_like(&IsoletParams::default());
//! assert_eq!(ds.train.features.cols(), ds.meta.features);
//! assert_eq!(ds.train.labels.len(), ds.train.features.rows());
//! assert!(ds.train.labels.iter().all(|&l| l < ds.meta.classes));
//! // Deterministic: the same parameters regenerate the same data.
//! assert_eq!(ds.train.features, isolet_like(&IsoletParams::default()).train.features);
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]

use hdc_core::HyperMatrix;

pub mod drift;
pub mod synthetic;

/// One labelled split of a dataset: a feature matrix (one sample per row)
/// plus a ground-truth label per row.
#[derive(Debug, Clone, PartialEq)]
pub struct Split {
    /// Sample features, one row per sample.
    pub features: HyperMatrix<f64>,
    /// Ground-truth labels, `labels[i]` for row `i`. For classification
    /// workloads these are class indices; for spectral matching they index
    /// the library entry the sample was derived from.
    pub labels: Vec<usize>,
}

impl Split {
    /// Number of samples in the split.
    pub fn len(&self) -> usize {
        self.features.rows()
    }

    /// Whether the split holds no samples.
    pub fn is_empty(&self) -> bool {
        self.features.rows() == 0
    }
}

/// Descriptive metadata attached to a generated dataset.
#[derive(Debug, Clone, PartialEq)]
pub struct DatasetMeta {
    /// Workload name (`"isolet-like"`, `"emg-like"`, `"hyperoms-like"`).
    pub name: &'static str,
    /// Number of distinct labels (classes, gestures, or library entries).
    pub classes: usize,
    /// Feature-vector length (columns of the feature matrices).
    pub features: usize,
    /// The RNG seed the data was generated from.
    pub seed: u64,
}

/// A generated workload: train and test splits plus metadata.
///
/// The contract every generator upholds:
///
/// * `train.features.cols() == test.features.cols() == meta.features`
/// * every label is `< meta.classes`
/// * regeneration with identical parameters reproduces the data exactly
#[derive(Debug, Clone, PartialEq)]
pub struct Dataset {
    /// Training split (for spectral matching: the reference library).
    pub train: Split,
    /// Held-out test split (for spectral matching: the noisy queries).
    pub test: Split,
    /// Workload metadata.
    pub meta: DatasetMeta,
}

impl Dataset {
    /// Fraction of `predictions` equal to the test-split ground truth —
    /// the accuracy metric every classification app reports.
    ///
    /// # Panics
    ///
    /// Panics if `predictions` and the test split differ in length.
    pub fn test_accuracy(&self, predictions: &[usize]) -> f64 {
        assert_eq!(
            predictions.len(),
            self.test.labels.len(),
            "one prediction per test sample"
        );
        if predictions.is_empty() {
            return 0.0;
        }
        let hits = predictions
            .iter()
            .zip(&self.test.labels)
            .filter(|(p, t)| p == t)
            .count();
        hits as f64 / predictions.len() as f64
    }

    /// Fraction of test samples whose ground-truth label appears in their
    /// top-`k` candidate list (`recall@k`). `flat_top_k` is the flattened
    /// row-major layout `arg_top_k` produces: sample `i`'s candidates at
    /// `[i*k, (i+1)*k)`.
    ///
    /// # Panics
    ///
    /// Panics if `flat_top_k` is not exactly `test.len() * k` entries.
    pub fn test_recall_at_k(&self, flat_top_k: &[usize], k: usize) -> f64 {
        assert_eq!(
            flat_top_k.len(),
            self.test.labels.len() * k,
            "k candidates per test sample"
        );
        if self.test.labels.is_empty() {
            return 0.0;
        }
        let hits = self
            .test
            .labels
            .iter()
            .enumerate()
            .filter(|(i, truth)| flat_top_k[i * k..(i + 1) * k].contains(truth))
            .count();
        hits as f64 / self.test.labels.len() as f64
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn tiny() -> Dataset {
        Dataset {
            train: Split {
                features: HyperMatrix::zeros(2, 3),
                labels: vec![0, 1],
            },
            test: Split {
                features: HyperMatrix::zeros(4, 3),
                labels: vec![0, 1, 1, 0],
            },
            meta: DatasetMeta {
                name: "tiny",
                classes: 2,
                features: 3,
                seed: 0,
            },
        }
    }

    #[test]
    fn accuracy_counts_hits() {
        let ds = tiny();
        assert_eq!(ds.test_accuracy(&[0, 1, 1, 0]), 1.0);
        assert_eq!(ds.test_accuracy(&[0, 1, 0, 1]), 0.5);
        assert_eq!(ds.test_accuracy(&[1, 0, 0, 1]), 0.0);
    }

    #[test]
    fn recall_at_k_scans_candidate_lists() {
        let ds = tiny();
        // k = 2: truth in either slot counts. Truths are [0, 1, 1, 0].
        assert_eq!(ds.test_recall_at_k(&[0, 1, 0, 1, 0, 1, 0, 1], 2), 1.0);
        assert_eq!(ds.test_recall_at_k(&[0, 0, 0, 0, 0, 0, 0, 0], 2), 0.5);
        assert_eq!(ds.test_recall_at_k(&[1, 1, 0, 0, 0, 0, 1, 1], 2), 0.0);
    }

    #[test]
    #[should_panic(expected = "one prediction per test sample")]
    fn accuracy_rejects_length_mismatch() {
        tiny().test_accuracy(&[0]);
    }

    #[test]
    fn split_len() {
        let ds = tiny();
        assert_eq!(ds.train.len(), 2);
        assert_eq!(ds.test.len(), 4);
        assert!(!ds.train.is_empty());
    }
}
