//! Drift scenarios for online adaptation: timestamped feedback tapes.
//!
//! Each generator builds a [`DriftScenario`]: a *base* [`Dataset`] used to
//! train the initial (pre-drift) model offline, plus a [`DriftTape`] — a
//! timestamped stream of labeled feedback samples whose distribution
//! changes at a configured onset. Replaying the tape prequentially
//! (predict each sample, then reveal its label as feedback) measures how a
//! static model degrades after the onset and how fast an adapting model
//! recovers; [`windowed_accuracy`] turns the per-sample hit sequence into
//! the accuracy-over-time curve committed to `BENCH_results.json`.
//!
//! Three drift shapes, mirroring the online-learning literature:
//!
//! * [`label_shift`] — `P(y)` changes (post-onset labels concentrate on a
//!   subset of classes) while `P(x|y)` stays fixed. A static model's
//!   per-class behaviour is unchanged, so this is the control scenario:
//!   adaptation must not *hurt*.
//! * [`incremental_classes`] — classes unseen during offline training
//!   appear only after the onset. The static model cannot ever predict
//!   them; the adapting model must grow its class memory rows from
//!   feedback alone.
//! * [`concept_drift`] — `P(x|y)` changes on the EMG-like stream: every
//!   gesture's oscillation profile is redrawn at the onset, invalidating
//!   the offline class memory outright.
//!
//! Everything is derived from the seed in the parameter struct, so two
//! calls with equal parameters return byte-identical scenarios.

use crate::{Dataset, DatasetMeta, Split};
use hdc_core::{HdcRng, HyperMatrix, HyperVector};
use rand::{Rng, SeedableRng};
use rand_distr::{Distribution, StandardNormal};

/// One labeled feedback observation on a drift tape.
#[derive(Debug, Clone, PartialEq)]
pub struct FeedbackSample {
    /// Arrival time of the observation, milliseconds from tape start.
    pub at_ms: u64,
    /// Feature payload (same length as the scenario's feature count).
    pub features: Vec<f64>,
    /// Ground-truth label, revealed to the trainer as feedback.
    pub label: usize,
}

/// A timestamped labeled feedback stream with one drift onset.
#[derive(Debug, Clone, PartialEq)]
pub struct DriftTape {
    /// Scenario name (stable, for reports).
    pub name: &'static str,
    /// Total number of classes any sample on the tape may carry.
    pub classes: usize,
    /// Feature-vector length of every sample.
    pub features: usize,
    /// Index of the first post-drift sample: `samples[..onset]` follow the
    /// base distribution, `samples[onset..]` the drifted one.
    pub onset: usize,
    /// The observations, in arrival order with non-decreasing `at_ms`.
    pub samples: Vec<FeedbackSample>,
    /// RNG seed the tape was derived from.
    pub seed: u64,
}

impl DriftTape {
    /// Samples before the drift onset.
    pub fn pre(&self) -> &[FeedbackSample] {
        &self.samples[..self.onset]
    }

    /// Samples at and after the drift onset.
    pub fn post(&self) -> &[FeedbackSample] {
        &self.samples[self.onset..]
    }

    /// Arrival time of the first post-drift sample, or the end of the tape
    /// if the onset is past the last sample.
    pub fn onset_ms(&self) -> u64 {
        self.samples
            .get(self.onset)
            .or(self.samples.last())
            .map_or(0, |s| s.at_ms)
    }
}

/// A drift scenario: the offline base dataset plus the feedback tape.
#[derive(Debug, Clone, PartialEq)]
pub struct DriftScenario {
    /// Pre-drift dataset the initial model is trained on offline.
    pub base: Dataset,
    /// The timestamped feedback stream replayed against the service.
    pub tape: DriftTape,
}

/// Parameters for [`label_shift`].
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct LabelShiftParams {
    /// Number of classes.
    pub classes: usize,
    /// Feature-vector length.
    pub features: usize,
    /// Offline training samples per class in the base dataset.
    pub train_per_class: usize,
    /// Offline test samples per class in the base dataset.
    pub test_per_class: usize,
    /// Per-sample Gaussian noise around the class centroid.
    pub noise: f64,
    /// Tape samples before the onset (uniform label marginals).
    pub pre_samples: usize,
    /// Tape samples after the onset (shifted marginals).
    pub post_samples: usize,
    /// Post-onset label mass concentrates on the first `shifted_classes`
    /// classes.
    pub shifted_classes: usize,
    /// Probability a post-onset label is drawn from the shifted subset.
    pub shifted_mass: f64,
    /// Milliseconds between consecutive tape samples.
    pub period_ms: u64,
    /// RNG seed.
    pub seed: u64,
}

impl Default for LabelShiftParams {
    fn default() -> Self {
        LabelShiftParams {
            classes: 6,
            features: 48,
            train_per_class: 8,
            test_per_class: 4,
            noise: 1.2,
            pre_samples: 160,
            post_samples: 160,
            shifted_classes: 2,
            shifted_mass: 0.85,
            period_ms: 5,
            seed: 0x1abe1,
        }
    }
}

/// Label shift on Gaussian class clusters: `P(y)` changes at the onset,
/// `P(x|y)` does not.
///
/// Pre-onset labels cycle round-robin (exactly uniform marginals);
/// post-onset each label lands in the first `shifted_classes` classes with
/// probability `shifted_mass`, else anywhere. Sample features are always
/// centroid + noise for the drawn label, from the same centroids the base
/// dataset uses.
pub fn label_shift(params: &LabelShiftParams) -> DriftScenario {
    assert!(
        params.shifted_classes > 0 && params.shifted_classes <= params.classes,
        "shifted subset {} must be within 1..={} classes",
        params.shifted_classes,
        params.classes
    );
    let mut rng = HdcRng::seed_from_u64(params.seed);
    let centroids = cluster_centroids(params.classes, params.features, &mut rng);
    let base = cluster_base(
        "label-shift-base",
        &centroids,
        params.classes,
        params.noise,
        params.train_per_class,
        params.test_per_class,
        params.seed,
        &mut rng,
    );
    let mut samples = Vec::with_capacity(params.pre_samples + params.post_samples);
    for i in 0..params.pre_samples {
        let label = i % params.classes;
        push_cluster_sample(
            &mut samples,
            &centroids,
            label,
            params.noise,
            params.period_ms,
            &mut rng,
        );
    }
    for _ in 0..params.post_samples {
        let label = if rng.gen_bool(params.shifted_mass) {
            rng.gen_range(0..params.shifted_classes)
        } else {
            rng.gen_range(0..params.classes)
        };
        push_cluster_sample(
            &mut samples,
            &centroids,
            label,
            params.noise,
            params.period_ms,
            &mut rng,
        );
    }
    DriftScenario {
        base,
        tape: DriftTape {
            name: "label-shift",
            classes: params.classes,
            features: params.features,
            onset: params.pre_samples,
            samples,
            seed: params.seed,
        },
    }
}

/// Parameters for [`incremental_classes`].
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct IncrementalClassParams {
    /// Total number of classes (class-memory rows the model declares).
    pub classes: usize,
    /// Classes present in the base dataset and the pre-onset tape.
    pub initial_classes: usize,
    /// Feature-vector length.
    pub features: usize,
    /// Offline training samples per *initial* class.
    pub train_per_class: usize,
    /// Offline test samples per *initial* class.
    pub test_per_class: usize,
    /// Per-sample Gaussian noise around the class centroid.
    pub noise: f64,
    /// Tape samples before the onset (initial classes only).
    pub pre_samples: usize,
    /// Tape samples after the onset (mix including new classes).
    pub post_samples: usize,
    /// Probability a post-onset label is one of the new classes.
    pub new_class_mass: f64,
    /// Milliseconds between consecutive tape samples.
    pub period_ms: u64,
    /// RNG seed.
    pub seed: u64,
}

impl Default for IncrementalClassParams {
    fn default() -> Self {
        IncrementalClassParams {
            classes: 6,
            initial_classes: 4,
            features: 48,
            train_per_class: 8,
            test_per_class: 4,
            noise: 1.2,
            pre_samples: 120,
            post_samples: 200,
            new_class_mass: 0.5,
            period_ms: 5,
            seed: 0x1c7e55,
        }
    }
}

/// Incremental classes: labels `initial_classes..classes` appear only at
/// and after the onset.
///
/// The base dataset declares all `classes` in its metadata (so the class
/// memory has a row per eventual class) but contains samples only for the
/// initial subset — the rows for unseen classes stay at their zero
/// initialization until online feedback trains them.
pub fn incremental_classes(params: &IncrementalClassParams) -> DriftScenario {
    assert!(
        params.initial_classes > 0 && params.initial_classes < params.classes,
        "initial classes {} must be within 1..{}",
        params.initial_classes,
        params.classes
    );
    let mut rng = HdcRng::seed_from_u64(params.seed);
    let centroids = cluster_centroids(params.classes, params.features, &mut rng);
    let mut base = cluster_base(
        "incremental-classes-base",
        &centroids[..params.initial_classes],
        params.initial_classes,
        params.noise,
        params.train_per_class,
        params.test_per_class,
        params.seed,
        &mut rng,
    );
    // The model must declare a class-memory row for every eventual class.
    base.meta.classes = params.classes;
    let mut samples = Vec::with_capacity(params.pre_samples + params.post_samples);
    for i in 0..params.pre_samples {
        let label = i % params.initial_classes;
        push_cluster_sample(
            &mut samples,
            &centroids,
            label,
            params.noise,
            params.period_ms,
            &mut rng,
        );
    }
    for _ in 0..params.post_samples {
        let label = if rng.gen_bool(params.new_class_mass) {
            rng.gen_range(params.initial_classes..params.classes)
        } else {
            rng.gen_range(0..params.initial_classes)
        };
        push_cluster_sample(
            &mut samples,
            &centroids,
            label,
            params.noise,
            params.period_ms,
            &mut rng,
        );
    }
    DriftScenario {
        base,
        tape: DriftTape {
            name: "incremental-classes",
            classes: params.classes,
            features: params.features,
            onset: params.pre_samples,
            samples,
            seed: params.seed,
        },
    }
}

/// Parameters for [`concept_drift`].
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct ConceptDriftParams {
    /// Number of gesture classes.
    pub gestures: usize,
    /// Number of EMG electrode channels.
    pub channels: usize,
    /// Timesteps per window; features flatten `channels * window`.
    pub window: usize,
    /// Offline training windows per gesture.
    pub train_per_class: usize,
    /// Offline test windows per gesture.
    pub test_per_class: usize,
    /// Additive measurement noise standard deviation.
    pub noise: f64,
    /// Maximum random phase offset (radians) at which a window is cut.
    pub phase_jitter: f64,
    /// Tape samples before the onset (pre-drift profiles).
    pub pre_samples: usize,
    /// Tape samples after the onset (redrawn profiles).
    pub post_samples: usize,
    /// Milliseconds between consecutive tape samples.
    pub period_ms: u64,
    /// RNG seed.
    pub seed: u64,
}

impl Default for ConceptDriftParams {
    fn default() -> Self {
        ConceptDriftParams {
            gestures: 5,
            channels: 3,
            window: 16,
            train_per_class: 10,
            test_per_class: 5,
            noise: 0.4,
            phase_jitter: 0.3,
            pre_samples: 120,
            post_samples: 200,
            period_ms: 5,
            seed: 0xd21f7,
        }
    }
}

/// Per-gesture, per-channel oscillation parameters (the EMG "concept").
#[derive(Debug, Clone, Copy)]
struct ChannelWave {
    amplitude: f64,
    frequency: f64,
    phase: f64,
}

/// Concept drift on the EMG-like stream: `P(x|y)` changes at the onset.
///
/// Every gesture's per-channel oscillation profile (amplitude, frequency,
/// phase) is redrawn at the onset — the electrode placement shifted, so
/// the same gesture now produces different signals. The offline class
/// memory becomes stale outright; only feedback-driven retraining can
/// track the new concept.
pub fn concept_drift(params: &ConceptDriftParams) -> DriftScenario {
    let features = params.channels * params.window;
    let mut rng = HdcRng::seed_from_u64(params.seed);
    let pre_profiles = wave_profiles(params.gestures, params.channels, &mut rng);
    let post_profiles = wave_profiles(params.gestures, params.channels, &mut rng);
    let draw_split = |per_class: usize, rng: &mut HdcRng| -> Split {
        let mut rows = Vec::with_capacity(per_class * params.gestures);
        let mut labels = Vec::with_capacity(per_class * params.gestures);
        for _ in 0..per_class {
            for (gesture, profile) in pre_profiles.iter().enumerate() {
                rows.push(HyperVector::from_vec(wave_sample(profile, params, rng)));
                labels.push(gesture);
            }
        }
        Split {
            features: HyperMatrix::from_rows(rows).expect("equal row dims"),
            labels,
        }
    };
    let train = draw_split(params.train_per_class, &mut rng);
    let test = draw_split(params.test_per_class, &mut rng);
    let base = Dataset {
        train,
        test,
        meta: DatasetMeta {
            name: "concept-drift-base",
            classes: params.gestures,
            features,
            seed: params.seed,
        },
    };
    let mut samples = Vec::with_capacity(params.pre_samples + params.post_samples);
    for (count, profiles) in [
        (params.pre_samples, &pre_profiles),
        (params.post_samples, &post_profiles),
    ] {
        for i in 0..count {
            let gesture = i % params.gestures;
            let at_ms = samples.len() as u64 * params.period_ms;
            samples.push(FeedbackSample {
                at_ms,
                features: wave_sample(&profiles[gesture], params, &mut rng),
                label: gesture,
            });
        }
    }
    DriftScenario {
        base,
        tape: DriftTape {
            name: "concept-drift",
            classes: params.gestures,
            features,
            onset: params.pre_samples,
            samples,
            seed: params.seed,
        },
    }
}

/// Accuracy over consecutive windows of `window` per-sample hits; the
/// final window may be partial. This is the accuracy-over-time curve the
/// `online` section of `BENCH_results.json` records.
///
/// # Panics
///
/// Panics if `window` is zero.
pub fn windowed_accuracy(hits: &[bool], window: usize) -> Vec<f64> {
    assert!(window > 0, "accuracy window must be positive");
    hits.chunks(window)
        .map(|chunk| chunk.iter().filter(|&&hit| hit).count() as f64 / chunk.len() as f64)
        .collect()
}

fn cluster_centroids(classes: usize, features: usize, rng: &mut HdcRng) -> Vec<HyperVector<f64>> {
    (0..classes)
        .map(|_| HyperVector::from_fn(features, |_| StandardNormal.sample(rng)))
        .collect()
}

/// Draw a base dataset from (a prefix of) the scenario centroids, in the
/// same round-robin order `isolet_like` uses.
#[allow(clippy::too_many_arguments)]
fn cluster_base(
    name: &'static str,
    centroids: &[HyperVector<f64>],
    classes: usize,
    noise: f64,
    train_per_class: usize,
    test_per_class: usize,
    seed: u64,
    rng: &mut HdcRng,
) -> Dataset {
    let features = centroids[0].dimension();
    let draw_split = |per_class: usize, rng: &mut HdcRng| -> Split {
        let mut rows = Vec::with_capacity(per_class * classes);
        let mut labels = Vec::with_capacity(per_class * classes);
        for _ in 0..per_class {
            for (class, centroid) in centroids.iter().enumerate() {
                rows.push(HyperVector::from_vec(cluster_sample(centroid, noise, rng)));
                labels.push(class);
            }
        }
        Split {
            features: HyperMatrix::from_rows(rows).expect("equal row dims"),
            labels,
        }
    };
    let train = draw_split(train_per_class, rng);
    let test = draw_split(test_per_class, rng);
    Dataset {
        train,
        test,
        meta: DatasetMeta {
            name,
            classes,
            features,
            seed,
        },
    }
}

fn cluster_sample(centroid: &HyperVector<f64>, noise: f64, rng: &mut HdcRng) -> Vec<f64> {
    centroid
        .as_slice()
        .iter()
        .map(|&c| {
            let n: f64 = StandardNormal.sample(rng);
            c + noise * n
        })
        .collect()
}

fn push_cluster_sample(
    samples: &mut Vec<FeedbackSample>,
    centroids: &[HyperVector<f64>],
    label: usize,
    noise: f64,
    period_ms: u64,
    rng: &mut HdcRng,
) {
    let at_ms = samples.len() as u64 * period_ms;
    samples.push(FeedbackSample {
        at_ms,
        features: cluster_sample(&centroids[label], noise, rng),
        label,
    });
}

fn wave_profiles(gestures: usize, channels: usize, rng: &mut HdcRng) -> Vec<Vec<ChannelWave>> {
    (0..gestures)
        .map(|_| {
            (0..channels)
                .map(|_| ChannelWave {
                    amplitude: rng.gen_range(0.5..=1.5),
                    frequency: rng.gen_range(1.0..=8.0),
                    phase: rng.gen_range(0.0..=std::f64::consts::TAU),
                })
                .collect()
        })
        .collect()
}

fn wave_sample(profile: &[ChannelWave], params: &ConceptDriftParams, rng: &mut HdcRng) -> Vec<f64> {
    let start = rng.gen_range(0.0..=params.phase_jitter.max(f64::MIN_POSITIVE));
    let mut row = Vec::with_capacity(params.channels * params.window);
    for wave in profile {
        for t in 0..params.window {
            let angle = start + wave.phase + wave.frequency * (t as f64 / params.window as f64);
            let n: f64 = StandardNormal.sample(rng);
            row.push(wave.amplitude * angle.sin() + params.noise * n);
        }
    }
    row
}

#[cfg(test)]
mod tests {
    use super::*;

    fn small_shift() -> LabelShiftParams {
        LabelShiftParams {
            classes: 4,
            features: 16,
            train_per_class: 4,
            test_per_class: 2,
            pre_samples: 80,
            post_samples: 80,
            shifted_classes: 1,
            shifted_mass: 0.9,
            seed: 11,
            ..LabelShiftParams::default()
        }
    }

    #[test]
    fn tapes_are_seed_deterministic() {
        let shift = small_shift();
        assert_eq!(label_shift(&shift), label_shift(&shift));
        let inc = IncrementalClassParams {
            seed: 12,
            ..IncrementalClassParams::default()
        };
        assert_eq!(incremental_classes(&inc), incremental_classes(&inc));
        let cd = ConceptDriftParams {
            seed: 13,
            ..ConceptDriftParams::default()
        };
        assert_eq!(concept_drift(&cd), concept_drift(&cd));
        // A different seed changes the tape.
        let other = label_shift(&LabelShiftParams { seed: 14, ..shift });
        assert_ne!(label_shift(&shift).tape, other.tape);
    }

    #[test]
    fn label_shift_marginals_actually_shift() {
        let params = small_shift();
        let tape = label_shift(&params).tape;
        let share = |samples: &[FeedbackSample]| -> f64 {
            samples
                .iter()
                .filter(|s| s.label < params.shifted_classes)
                .count() as f64
                / samples.len() as f64
        };
        let pre = share(tape.pre());
        let post = share(tape.post());
        // Round-robin pre-onset: exactly 1-in-4 labels in the shifted
        // subset. Post-onset the subset carries ~0.9 + 0.1/4 of the mass.
        assert!((pre - 0.25).abs() < 1e-9, "pre-onset share {pre}");
        assert!(post > 0.7, "post-onset share {post} did not shift");
        // P(x|y) unchanged: every sample still matches its centroid count.
        assert!(tape.samples.iter().all(|s| s.features.len() == 16));
    }

    #[test]
    fn incremental_tape_gates_unseen_labels_on_onset() {
        let params = IncrementalClassParams {
            classes: 5,
            initial_classes: 3,
            pre_samples: 60,
            post_samples: 90,
            seed: 21,
            ..IncrementalClassParams::default()
        };
        let scenario = incremental_classes(&params);
        // Base dataset: only initial classes present, but metadata declares
        // every eventual class (the class memory needs the rows).
        assert_eq!(scenario.base.meta.classes, 5);
        assert!(scenario.base.train.labels.iter().all(|&l| l < 3));
        assert!(scenario.base.test.labels.iter().all(|&l| l < 3));
        let tape = &scenario.tape;
        assert_eq!(tape.onset, 60);
        assert!(
            tape.pre().iter().all(|s| s.label < 3),
            "unseen label leaked pre-onset"
        );
        assert!(
            tape.post().iter().any(|s| s.label >= 3),
            "new classes never appear post-onset"
        );
        assert!(tape.samples.iter().all(|s| s.label < 5));
    }

    #[test]
    fn concept_drift_redraws_profiles_at_onset() {
        let params = ConceptDriftParams {
            gestures: 3,
            channels: 2,
            window: 8,
            pre_samples: 30,
            post_samples: 30,
            noise: 0.0,
            phase_jitter: 0.0,
            seed: 31,
            ..ConceptDriftParams::default()
        };
        let scenario = concept_drift(&params);
        let tape = &scenario.tape;
        assert_eq!(tape.features, 16);
        // Noise- and jitter-free: pre-onset samples of a gesture are
        // identical to each other, and differ from the redrawn post-onset
        // concept of the same gesture.
        assert_eq!(tape.samples[0].features, tape.samples[3].features);
        assert_eq!(tape.samples[0].label, tape.samples[30].label);
        assert_ne!(
            tape.samples[0].features, tape.samples[30].features,
            "post-onset concept must differ"
        );
        // Labels keep cycling over the same gesture set on both sides.
        assert!(tape.samples.iter().all(|s| s.label < 3));
    }

    #[test]
    fn tape_timestamps_are_monotone() {
        let tape = label_shift(&small_shift()).tape;
        assert!(tape.samples.windows(2).all(|w| w[0].at_ms <= w[1].at_ms));
        assert_eq!(tape.onset_ms(), tape.samples[tape.onset].at_ms);
    }

    #[test]
    fn windowed_accuracy_matches_hand_computed_tape() {
        // Hand-computed toy tape: hits TTFF TTT, window 2.
        let hits = [true, true, false, false, true, true, true];
        assert_eq!(windowed_accuracy(&hits, 2), vec![1.0, 0.0, 1.0, 1.0]);
        // Window larger than the tape: one partial window.
        assert_eq!(windowed_accuracy(&hits, 10), vec![5.0 / 7.0]);
        assert_eq!(windowed_accuracy(&[], 3), Vec::<f64>::new());
    }

    #[test]
    #[should_panic(expected = "accuracy window must be positive")]
    fn windowed_accuracy_rejects_zero_window() {
        windowed_accuracy(&[true], 0);
    }
}
