//! Seeded synthetic workload generators.
//!
//! Each generator mirrors the *structure* of one of the paper's evaluation
//! datasets — what makes the workload easy or hard for an HDC pipeline —
//! without shipping the data itself: Gaussian class clusters for ISOLET-style
//! classification, parameterized oscillations for EMG-style gesture windows,
//! and sparse peak lists for HyperOMS-style spectral matching. Everything is
//! derived from the seed in the parameter struct, so two calls with equal
//! parameters return identical [`Dataset`]s on every platform.

use crate::{Dataset, DatasetMeta, Split};
use hdc_core::{HdcRng, HyperMatrix, HyperVector};
use rand::{Rng, SeedableRng};
use rand_distr::{Distribution, StandardNormal};

/// Parameters for [`isolet_like`].
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct IsoletParams {
    /// Number of classes (ISOLET: 26 spoken letters).
    pub classes: usize,
    /// Feature-vector length (ISOLET: 617 acoustic features).
    pub features: usize,
    /// Training samples generated per class.
    pub train_per_class: usize,
    /// Test samples generated per class.
    pub test_per_class: usize,
    /// Standard deviation of the per-sample Gaussian noise added to the
    /// unit-variance class centroid. Around `2.0` the classes overlap
    /// enough that one-shot bundling mispredicts and retraining has signal
    /// to learn from; below `1.0` the task is nearly trivial.
    pub noise: f64,
    /// RNG seed.
    pub seed: u64,
}

impl Default for IsoletParams {
    fn default() -> Self {
        IsoletParams {
            classes: 26,
            features: 617,
            train_per_class: 8,
            test_per_class: 4,
            noise: 2.0,
            seed: 0x150_1e7,
        }
    }
}

/// ISOLET-like classification: each class is a Gaussian cluster.
///
/// Class centroids are standard-normal vectors; every sample is its class
/// centroid plus `noise`-scaled Gaussian noise. Samples are emitted in
/// round-robin class order (`0, 1, …, classes-1, 0, …`) so sequential
/// training sees an interleaved label stream rather than one class at a
/// time.
pub fn isolet_like(params: &IsoletParams) -> Dataset {
    let mut rng = HdcRng::seed_from_u64(params.seed);
    let centroids: Vec<HyperVector<f64>> = (0..params.classes)
        .map(|_| gaussian_vector(params.features, &mut rng))
        .collect();
    let draw_split = |per_class: usize, rng: &mut HdcRng| -> Split {
        let mut rows = Vec::with_capacity(per_class * params.classes);
        let mut labels = Vec::with_capacity(per_class * params.classes);
        for _ in 0..per_class {
            for (class, centroid) in centroids.iter().enumerate() {
                let noise = gaussian_vector(params.features, rng);
                let sample = centroid
                    .zip_with(&noise, |c, n| c + params.noise * n)
                    .expect("matching dimensions by construction");
                rows.push(sample);
                labels.push(class);
            }
        }
        Split {
            features: HyperMatrix::from_rows(rows).expect("equal row dims"),
            labels,
        }
    };
    let train = draw_split(params.train_per_class, &mut rng);
    let test = draw_split(params.test_per_class, &mut rng);
    Dataset {
        train,
        test,
        meta: DatasetMeta {
            name: "isolet-like",
            classes: params.classes,
            features: params.features,
            seed: params.seed,
        },
    }
}

/// Parameters for [`emg_like`].
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct EmgParams {
    /// Number of gesture classes.
    pub gestures: usize,
    /// Number of EMG electrode channels.
    pub channels: usize,
    /// Timesteps per window; the feature vector flattens
    /// `channels * window` samples.
    pub window: usize,
    /// Training windows generated per gesture.
    pub train_per_class: usize,
    /// Test windows generated per gesture.
    pub test_per_class: usize,
    /// Standard deviation of the additive measurement noise (signal
    /// amplitudes are in `[0.5, 1.5]`).
    pub noise: f64,
    /// Maximum random phase offset (radians) at which a window is cut.
    /// Segmented gesture data is roughly onset-aligned, so the default is a
    /// small jitter; `std::f64::consts::TAU` makes windows fully
    /// phase-random (much harder — phase-sensitive encodings then carry no
    /// class signal).
    pub phase_jitter: f64,
    /// RNG seed.
    pub seed: u64,
}

impl Default for EmgParams {
    fn default() -> Self {
        EmgParams {
            gestures: 5,
            channels: 4,
            window: 64,
            train_per_class: 12,
            test_per_class: 6,
            noise: 0.8,
            phase_jitter: 0.5,
            seed: 0xE36,
        }
    }
}

/// EMG-like gesture windows: multi-channel oscillations cut near onset.
///
/// Each gesture assigns every channel an amplitude, frequency and phase;
/// a window sample is the flattened `channels x window` signal evaluated
/// from a random start offset within `phase_jitter` radians of onset, with
/// additive Gaussian noise. Unlike [`isolet_like`] the intra-class
/// variation is *structured* (phase shift plus noise), which is exactly
/// what wrap-shift-tolerant HDC encodings are built for.
pub fn emg_like(params: &EmgParams) -> Dataset {
    let features = params.channels * params.window;
    let mut rng = HdcRng::seed_from_u64(params.seed);
    // Per-gesture, per-channel oscillation parameters.
    struct ChannelWave {
        amplitude: f64,
        frequency: f64,
        phase: f64,
    }
    let profiles: Vec<Vec<ChannelWave>> = (0..params.gestures)
        .map(|_| {
            (0..params.channels)
                .map(|_| ChannelWave {
                    amplitude: rng.gen_range(0.5..=1.5),
                    frequency: rng.gen_range(1.0..=8.0),
                    phase: rng.gen_range(0.0..=std::f64::consts::TAU),
                })
                .collect()
        })
        .collect();
    let window = params.window;
    let draw_split = |per_class: usize, rng: &mut HdcRng| -> Split {
        let mut rows = Vec::with_capacity(per_class * params.gestures);
        let mut labels = Vec::with_capacity(per_class * params.gestures);
        for _ in 0..per_class {
            for (gesture, profile) in profiles.iter().enumerate() {
                let start = rng.gen_range(0.0..=params.phase_jitter.max(f64::MIN_POSITIVE));
                let mut row = Vec::with_capacity(features);
                for wave in profile {
                    for t in 0..window {
                        let angle =
                            start + wave.phase + wave.frequency * (t as f64 / window as f64);
                        let n: f64 = StandardNormal.sample(rng);
                        row.push(wave.amplitude * angle.sin() + params.noise * n);
                    }
                }
                rows.push(HyperVector::from_vec(row));
                labels.push(gesture);
            }
        }
        Split {
            features: HyperMatrix::from_rows(rows).expect("equal row dims"),
            labels,
        }
    };
    let train = draw_split(params.train_per_class, &mut rng);
    let test = draw_split(params.test_per_class, &mut rng);
    Dataset {
        train,
        test,
        meta: DatasetMeta {
            name: "emg-like",
            classes: params.gestures,
            features,
            seed: params.seed,
        },
    }
}

/// Parameters for [`hyperoms_like`].
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct HyperOmsParams {
    /// Number of reference spectra in the library (= number of labels).
    pub library_size: usize,
    /// Number of m/z bins per spectrum (the feature length).
    pub bins: usize,
    /// Peaks per library spectrum (spectra are sparse:
    /// `peaks / bins` is the fill fraction).
    pub peaks: usize,
    /// Noisy query spectra generated per library entry.
    pub queries_per_entry: usize,
    /// Multiplicative intensity jitter applied to every surviving query
    /// peak (`1 ± jitter`).
    pub intensity_jitter: f64,
    /// Probability that a query drops each library peak.
    pub dropout: f64,
    /// Spurious peaks added to each query at random bins.
    pub spurious_peaks: usize,
    /// RNG seed.
    pub seed: u64,
}

impl Default for HyperOmsParams {
    fn default() -> Self {
        HyperOmsParams {
            library_size: 64,
            bins: 400,
            peaks: 24,
            queries_per_entry: 2,
            intensity_jitter: 0.3,
            dropout: 0.15,
            spurious_peaks: 4,
            seed: 0x0515,
        }
    }
}

/// HyperOMS-like spectral matching: a sparse reference library plus noisy
/// re-measurements.
///
/// `train` holds the library — each row a sparse non-negative spectrum
/// (random peak bins with intensities in `[0.2, 1.0]`), labelled by its own
/// index. `test` holds `queries_per_entry` derived queries per entry: peaks
/// survive with probability `1 - dropout`, surviving intensities are
/// jittered, and `spurious_peaks` extra peaks contaminate random bins. The
/// matching task is to recover each query's source entry within its top-k
/// candidates.
pub fn hyperoms_like(params: &HyperOmsParams) -> Dataset {
    assert!(
        params.peaks <= params.bins,
        "cannot place {} peaks in {} bins",
        params.peaks,
        params.bins
    );
    let mut rng = HdcRng::seed_from_u64(params.seed);
    // Library: peak positions are drawn without replacement per spectrum.
    let mut library_rows = Vec::with_capacity(params.library_size);
    let mut library_peaks: Vec<Vec<(usize, f64)>> = Vec::with_capacity(params.library_size);
    for _ in 0..params.library_size {
        let mut positions = Vec::with_capacity(params.peaks);
        while positions.len() < params.peaks {
            let bin = rng.gen_range(0..params.bins);
            if !positions.contains(&bin) {
                positions.push(bin);
            }
        }
        let peaks: Vec<(usize, f64)> = positions
            .into_iter()
            .map(|bin| (bin, rng.gen_range(0.2..=1.0)))
            .collect();
        let mut row = vec![0.0; params.bins];
        for &(bin, intensity) in &peaks {
            row[bin] = intensity;
        }
        library_rows.push(HyperVector::from_vec(row));
        library_peaks.push(peaks);
    }
    let train = Split {
        features: HyperMatrix::from_rows(library_rows).expect("equal row dims"),
        labels: (0..params.library_size).collect(),
    };
    // Queries: noisy copies, interleaved over the library.
    let mut query_rows = Vec::with_capacity(params.library_size * params.queries_per_entry);
    let mut query_labels = Vec::with_capacity(query_rows.capacity());
    for _ in 0..params.queries_per_entry {
        for (entry, peaks) in library_peaks.iter().enumerate() {
            let mut row = vec![0.0; params.bins];
            for &(bin, intensity) in peaks {
                if rng.gen_bool(1.0 - params.dropout) {
                    let jitter = rng
                        .gen_range(1.0 - params.intensity_jitter..=1.0 + params.intensity_jitter);
                    row[bin] = (intensity * jitter).max(0.0);
                }
            }
            for _ in 0..params.spurious_peaks {
                let bin = rng.gen_range(0..params.bins);
                row[bin] = rng.gen_range(0.2..=1.0);
            }
            query_rows.push(HyperVector::from_vec(row));
            query_labels.push(entry);
        }
    }
    let test = Split {
        features: HyperMatrix::from_rows(query_rows).expect("equal row dims"),
        labels: query_labels,
    };
    Dataset {
        train,
        test,
        meta: DatasetMeta {
            name: "hyperoms-like",
            classes: params.library_size,
            features: params.bins,
            seed: params.seed,
        },
    }
}

fn gaussian_vector(dim: usize, rng: &mut HdcRng) -> HyperVector<f64> {
    HyperVector::from_fn(dim, |_| StandardNormal.sample(rng))
}

#[cfg(test)]
mod tests {
    use super::*;

    fn small_isolet() -> IsoletParams {
        IsoletParams {
            classes: 6,
            features: 40,
            train_per_class: 5,
            test_per_class: 3,
            noise: 1.0,
            seed: 42,
        }
    }

    #[test]
    fn isolet_shapes_and_determinism() {
        let p = small_isolet();
        let ds = isolet_like(&p);
        assert_eq!(ds.train.features.rows(), 30);
        assert_eq!(ds.test.features.rows(), 18);
        assert_eq!(ds.train.features.cols(), 40);
        assert_eq!(ds.meta.classes, 6);
        assert!(ds.train.labels.iter().all(|&l| l < 6));
        // Labels interleave classes round-robin.
        assert_eq!(&ds.train.labels[..6], &[0, 1, 2, 3, 4, 5]);
        assert_eq!(ds, isolet_like(&p));
        // A different seed changes the data.
        let other = isolet_like(&IsoletParams { seed: 43, ..p });
        assert_ne!(ds.train.features, other.train.features);
    }

    #[test]
    fn isolet_clusters_are_separable_by_nearest_centroid() {
        let ds = isolet_like(&small_isolet());
        // Recover centroids from train, classify test by cosine similarity.
        let classes = ds.meta.classes;
        let f = ds.meta.features;
        let mut centroids = vec![vec![0.0f64; f]; classes];
        for (row, &label) in ds.train.features.iter_rows().zip(&ds.train.labels) {
            for (acc, &x) in centroids[label].iter_mut().zip(row) {
                *acc += x;
            }
        }
        let mut hits = 0;
        for (row, &label) in ds.test.features.iter_rows().zip(&ds.test.labels) {
            let best = centroids
                .iter()
                .enumerate()
                .max_by(|(_, a), (_, b)| {
                    let sa: f64 = a.iter().zip(row).map(|(c, x)| c * x).sum();
                    let sb: f64 = b.iter().zip(row).map(|(c, x)| c * x).sum();
                    sa.partial_cmp(&sb).unwrap()
                })
                .map(|(i, _)| i)
                .unwrap();
            hits += usize::from(best == label);
        }
        let accuracy = hits as f64 / ds.test.labels.len() as f64;
        assert!(
            accuracy > 0.8,
            "nearest-centroid accuracy {accuracy} too low — clusters not separable"
        );
    }

    #[test]
    fn emg_shapes_and_determinism() {
        let p = EmgParams {
            gestures: 3,
            channels: 2,
            window: 16,
            train_per_class: 4,
            test_per_class: 2,
            noise: 0.5,
            phase_jitter: 0.4,
            seed: 7,
        };
        let ds = emg_like(&p);
        assert_eq!(ds.meta.features, 32);
        assert_eq!(ds.train.features.rows(), 12);
        assert_eq!(ds.test.features.rows(), 6);
        assert_eq!(ds, emg_like(&p));
        // Signals are bounded: amplitude <= 1.5 plus noise tails.
        assert!(ds
            .train
            .features
            .as_slice()
            .iter()
            .all(|x| x.abs() < 1.5 + 6.0 * p.noise));
    }

    #[test]
    fn hyperoms_library_is_sparse_and_queries_match_sources() {
        let p = HyperOmsParams {
            library_size: 20,
            bins: 100,
            peaks: 8,
            queries_per_entry: 3,
            ..HyperOmsParams::default()
        };
        let ds = hyperoms_like(&p);
        assert_eq!(ds.train.features.rows(), 20);
        assert_eq!(ds.test.features.rows(), 60);
        assert_eq!(ds.train.labels, (0..20).collect::<Vec<_>>());
        // Library spectra are non-negative and sparse (exactly `peaks`
        // non-zeros per row).
        for row in ds.train.features.iter_rows() {
            assert!(row.iter().all(|&x| x >= 0.0));
            assert_eq!(row.iter().filter(|&&x| x > 0.0).count(), 8);
        }
        // Each query overlaps its source spectrum more than a random other
        // entry on average (dot product in peak space).
        let dot = |a: &[f64], b: &[f64]| -> f64 { a.iter().zip(b).map(|(x, y)| x * y).sum() };
        let mut own = 0.0;
        let mut other = 0.0;
        for (q, &label) in ds.test.features.iter_rows().zip(&ds.test.labels) {
            own += dot(q, ds.train.features.row(label).unwrap());
            other += dot(q, ds.train.features.row((label + 1) % 20).unwrap());
        }
        assert!(own > 4.0 * other, "queries must resemble their sources");
        assert_eq!(ds, hyperoms_like(&p));
    }

    #[test]
    #[should_panic(expected = "cannot place")]
    fn hyperoms_rejects_impossible_peak_counts() {
        hyperoms_like(&HyperOmsParams {
            bins: 4,
            peaks: 10,
            ..HyperOmsParams::default()
        });
    }
}
