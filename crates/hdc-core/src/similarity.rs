//! Similarity and dissimilarity metrics between hypervectors.
//!
//! HDC inference is a nearest-neighbour search: a query hypervector is
//! compared against every class hypervector and the most similar (or least
//! dissimilar) class wins. The two metrics used throughout the paper are
//! cosine similarity and Hamming distance; both support reduction
//! perforation (§4.2). Following the paper, perforated similarity results
//! are **not** rescaled (only relative order matters), while perforated
//! `matmul`/`l2norm` results are scaled by the visited fraction (see
//! [`crate::matmul`]).

use crate::element::Element;
use crate::error::{HdcError, Result};
use crate::hypermatrix::HyperMatrix;
use crate::hypervector::HyperVector;
use crate::perforation::Perforation;

/// Dot product of two element slices over the perforated index set.
/// Shared with the batched kernels in [`crate::batch`] so the batched and
/// per-sample paths accumulate in the same order (bit-identical results).
pub(crate) fn dot_perforated<T: Element>(a: &[T], b: &[T], perforation: Perforation) -> f64 {
    if perforation.is_dense_over(a.len()) {
        a.iter()
            .zip(b.iter())
            .map(|(x, y)| x.to_f64() * y.to_f64())
            .sum()
    } else {
        perforation
            .indices(a.len())
            .map(|i| a[i].to_f64() * b[i].to_f64())
            .sum()
    }
}

/// Squared L2 norm over the perforated index set. Shared with
/// [`crate::batch`] (see [`dot_perforated`]).
pub(crate) fn norm_sq_perforated<T: Element>(a: &[T], perforation: Perforation) -> f64 {
    if perforation.is_dense_over(a.len()) {
        a.iter()
            .map(|x| {
                let v = x.to_f64();
                v * v
            })
            .sum()
    } else {
        perforation
            .indices(a.len())
            .map(|i| {
                let v = a[i].to_f64();
                v * v
            })
            .sum()
    }
}

fn check_dims(a: usize, b: usize, context: &'static str) -> Result<()> {
    if a != b {
        return Err(HdcError::DimensionMismatch {
            expected: a,
            actual: b,
            context,
        });
    }
    Ok(())
}

/// Cosine similarity between two hypervectors (the `cossim` primitive).
///
/// Returns a value in `[-1, 1]`; orthogonal vectors score ~0. If either
/// vector has zero norm over the visited elements the result is `0`.
///
/// # Errors
///
/// Returns a dimension-mismatch error if the operands differ in length, or
/// an invalid-perforation error for a bad descriptor.
pub fn cosine_similarity<T: Element>(
    a: &HyperVector<T>,
    b: &HyperVector<T>,
    perforation: Perforation,
) -> Result<f64> {
    check_dims(a.dimension(), b.dimension(), "cosine similarity")?;
    perforation.validate(a.dimension())?;
    let dot = dot_perforated(a.as_slice(), b.as_slice(), perforation);
    let na = norm_sq_perforated(a.as_slice(), perforation).sqrt();
    let nb = norm_sq_perforated(b.as_slice(), perforation).sqrt();
    if na == 0.0 || nb == 0.0 {
        return Ok(0.0);
    }
    Ok(dot / (na * nb))
}

/// Cosine similarity between a query hypervector and every row of a
/// hypermatrix (the matrix form of `cossim` used by inference).
///
/// # Errors
///
/// Returns a dimension-mismatch error if the query length differs from the
/// matrix column count.
pub fn cosine_similarity_matrix<T: Element>(
    query: &HyperVector<T>,
    rows: &HyperMatrix<T>,
    perforation: Perforation,
) -> Result<HyperVector<f64>> {
    check_dims(query.dimension(), rows.cols(), "cosine similarity matrix")?;
    perforation.validate(query.dimension())?;
    let qn = norm_sq_perforated(query.as_slice(), perforation).sqrt();
    let sims = rows
        .iter_rows()
        .map(|row| {
            let dot = dot_perforated(query.as_slice(), row, perforation);
            let rn = norm_sq_perforated(row, perforation).sqrt();
            if qn == 0.0 || rn == 0.0 {
                0.0
            } else {
                dot / (qn * rn)
            }
        })
        .collect();
    Ok(sims)
}

/// Hamming distance between two dense hypervectors (the `hamming_distance`
/// primitive): the number of positions whose elements differ.
///
/// Perforated distances count only the visited positions and are not
/// rescaled.
///
/// # Errors
///
/// Returns a dimension-mismatch error if the operands differ in length, or
/// an invalid-perforation error for a bad descriptor.
pub fn hamming_distance<T: Element>(
    a: &HyperVector<T>,
    b: &HyperVector<T>,
    perforation: Perforation,
) -> Result<f64> {
    check_dims(a.dimension(), b.dimension(), "hamming distance")?;
    perforation.validate(a.dimension())?;
    let (xs, ys) = (a.as_slice(), b.as_slice());
    let count = if perforation.is_dense_over(a.dimension()) {
        xs.iter().zip(ys.iter()).filter(|(x, y)| x != y).count()
    } else {
        perforation
            .indices(a.dimension())
            .filter(|&i| xs[i] != ys[i])
            .count()
    };
    Ok(count as f64)
}

/// Hamming distance between a query hypervector and every row of a
/// hypermatrix.
///
/// # Errors
///
/// Returns a dimension-mismatch error if the query length differs from the
/// matrix column count.
pub fn hamming_distance_matrix<T: Element>(
    query: &HyperVector<T>,
    rows: &HyperMatrix<T>,
    perforation: Perforation,
) -> Result<HyperVector<f64>> {
    check_dims(query.dimension(), rows.cols(), "hamming distance matrix")?;
    perforation.validate(query.dimension())?;
    let q = query.as_slice();
    let dense = perforation.is_dense_over(query.dimension());
    let dists = rows
        .iter_rows()
        .map(|row| {
            let count = if dense {
                q.iter().zip(row.iter()).filter(|(x, y)| x != y).count()
            } else {
                perforation
                    .indices(q.len())
                    .filter(|&i| q[i] != row[i])
                    .count()
            };
            count as f64
        })
        .collect();
    Ok(dists)
}

/// Pairwise cosine similarity between the rows of two hypermatrices,
/// producing a `lhs.rows() x rhs.rows()` matrix. This is the hypermatrix ×
/// hypermatrix form of `cossim` in Table 1.
///
/// # Errors
///
/// Returns a dimension-mismatch error if the column counts differ.
pub fn cosine_similarity_all_pairs<T: Element>(
    lhs: &HyperMatrix<T>,
    rhs: &HyperMatrix<T>,
    perforation: Perforation,
) -> Result<HyperMatrix<f64>> {
    check_dims(lhs.cols(), rhs.cols(), "pairwise cosine similarity")?;
    perforation.validate(lhs.cols())?;
    let mut out = HyperMatrix::zeros(lhs.rows(), rhs.rows());
    let rhs_norms: Vec<f64> = rhs
        .iter_rows()
        .map(|r| norm_sq_perforated(r, perforation).sqrt())
        .collect();
    for (i, lrow) in lhs.iter_rows().enumerate() {
        let ln = norm_sq_perforated(lrow, perforation).sqrt();
        for (j, rrow) in rhs.iter_rows().enumerate() {
            let dot = dot_perforated(lrow, rrow, perforation);
            let v = if ln == 0.0 || rhs_norms[j] == 0.0 {
                0.0
            } else {
                dot / (ln * rhs_norms[j])
            };
            out.set(i, j, v).expect("indices in range");
        }
    }
    Ok(out)
}

/// Pairwise Hamming distance between the rows of two hypermatrices.
///
/// # Errors
///
/// Returns a dimension-mismatch error if the column counts differ.
pub fn hamming_distance_all_pairs<T: Element>(
    lhs: &HyperMatrix<T>,
    rhs: &HyperMatrix<T>,
    perforation: Perforation,
) -> Result<HyperMatrix<f64>> {
    check_dims(lhs.cols(), rhs.cols(), "pairwise hamming distance")?;
    perforation.validate(lhs.cols())?;
    let mut out = HyperMatrix::zeros(lhs.rows(), rhs.rows());
    for (i, lrow) in lhs.iter_rows().enumerate() {
        for (j, rrow) in rhs.iter_rows().enumerate() {
            let count = if perforation.is_dense_over(lhs.cols()) {
                lrow.iter().zip(rrow.iter()).filter(|(x, y)| x != y).count()
            } else {
                perforation
                    .indices(lhs.cols())
                    .filter(|&k| lrow[k] != rrow[k])
                    .count()
            };
            out.set(i, j, count as f64).expect("indices in range");
        }
    }
    Ok(out)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn cosine_identical_is_one() {
        let a = HyperVector::from_vec(vec![1.0f32, 2.0, 3.0]);
        let sim = cosine_similarity(&a, &a, Perforation::NONE).unwrap();
        assert!((sim - 1.0).abs() < 1e-6);
    }

    #[test]
    fn cosine_opposite_is_minus_one() {
        let a = HyperVector::from_vec(vec![1.0f32, 2.0, 3.0]);
        let b = a.sign_flip();
        let sim = cosine_similarity(&a, &b, Perforation::NONE).unwrap();
        assert!((sim + 1.0).abs() < 1e-6);
    }

    #[test]
    fn cosine_orthogonal_is_zero() {
        let a = HyperVector::from_vec(vec![1.0f32, 0.0]);
        let b = HyperVector::from_vec(vec![0.0f32, 5.0]);
        assert_eq!(cosine_similarity(&a, &b, Perforation::NONE).unwrap(), 0.0);
    }

    #[test]
    fn cosine_zero_norm_is_zero() {
        let a = HyperVector::from_vec(vec![0.0f32, 0.0]);
        let b = HyperVector::from_vec(vec![1.0f32, 1.0]);
        assert_eq!(cosine_similarity(&a, &b, Perforation::NONE).unwrap(), 0.0);
    }

    #[test]
    fn cosine_dimension_mismatch() {
        let a = HyperVector::<f32>::zeros(3);
        let b = HyperVector::<f32>::zeros(4);
        assert!(cosine_similarity(&a, &b, Perforation::NONE).is_err());
    }

    #[test]
    fn hamming_counts_differences() {
        let a = HyperVector::from_vec(vec![1i32, -1, 1, -1]);
        let b = HyperVector::from_vec(vec![1i32, 1, 1, 1]);
        assert_eq!(hamming_distance(&a, &b, Perforation::NONE).unwrap(), 2.0);
    }

    #[test]
    fn perforated_hamming_not_rescaled() {
        let a = HyperVector::from_vec(vec![1i32; 8]);
        let b = HyperVector::from_vec(vec![-1i32; 8]);
        let half = Perforation::segment(0, 4);
        assert_eq!(hamming_distance(&a, &b, half).unwrap(), 4.0);
        let strided = Perforation::strided(0, 8, 2);
        assert_eq!(hamming_distance(&a, &b, strided).unwrap(), 4.0);
    }

    #[test]
    fn perforated_cosine_matches_subvector() {
        let a = HyperVector::from_vec(vec![1.0f32, 2.0, 100.0, -50.0]);
        let b = HyperVector::from_vec(vec![1.0f32, 2.0, -3.0, 8.0]);
        let seg = Perforation::segment(0, 2);
        let sub_a = HyperVector::from_vec(vec![1.0f32, 2.0]);
        let sub_b = HyperVector::from_vec(vec![1.0f32, 2.0]);
        let expect = cosine_similarity(&sub_a, &sub_b, Perforation::NONE).unwrap();
        let got = cosine_similarity(&a, &b, seg).unwrap();
        assert!((got - expect).abs() < 1e-12);
    }

    #[test]
    fn matrix_forms_match_row_loops() {
        let q = HyperVector::from_vec(vec![1.0f32, -1.0, 1.0, -1.0]);
        let m = HyperMatrix::from_rows(vec![
            q.clone(),
            q.sign_flip(),
            HyperVector::from_vec(vec![1.0f32, 1.0, 1.0, 1.0]),
        ])
        .unwrap();
        let hd = hamming_distance_matrix(&q, &m, Perforation::NONE).unwrap();
        assert_eq!(hd.as_slice(), &[0.0, 4.0, 2.0]);
        let cs = cosine_similarity_matrix(&q, &m, Perforation::NONE).unwrap();
        assert!((cs.get(0).unwrap() - 1.0).abs() < 1e-6);
        assert!((cs.get(1).unwrap() + 1.0).abs() < 1e-6);
        for i in 0..3 {
            let row = m.row_vector(i).unwrap();
            let d = hamming_distance(&q, &row, Perforation::NONE).unwrap();
            assert_eq!(d, hd.get(i).unwrap());
            let c = cosine_similarity(&q, &row, Perforation::NONE).unwrap();
            assert!((c - cs.get(i).unwrap()).abs() < 1e-12);
        }
    }

    #[test]
    fn all_pairs_shapes() {
        let a = HyperMatrix::<f32>::from_fn(3, 8, |r, c| ((r + c) % 3) as f32 - 1.0);
        let b = HyperMatrix::<f32>::from_fn(2, 8, |r, c| ((r * c) % 2) as f32);
        let cs = cosine_similarity_all_pairs(&a, &b, Perforation::NONE).unwrap();
        assert_eq!((cs.rows(), cs.cols()), (3, 2));
        let hd = hamming_distance_all_pairs(&a, &b, Perforation::NONE).unwrap();
        assert_eq!((hd.rows(), hd.cols()), (3, 2));
        // spot check one entry against the vector form
        let d01 = hamming_distance(
            &a.row_vector(0).unwrap(),
            &b.row_vector(1).unwrap(),
            Perforation::NONE,
        )
        .unwrap();
        assert_eq!(hd.get(0, 1).unwrap(), d01);
    }

    #[test]
    fn invalid_perforation_rejected() {
        let a = HyperVector::<f32>::zeros(8);
        let bad = Perforation::new(0, 8, 0);
        assert!(hamming_distance(&a, &a, bad).is_err());
        assert!(cosine_similarity(&a, &a, bad).is_err());
    }
}
