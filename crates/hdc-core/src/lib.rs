//! # hdc-core
//!
//! Hyperdimensional computing (HDC) substrate for the HPVM-HDC reproduction.
//!
//! This crate provides the data types and numerical kernels every other layer
//! of the system is built on:
//!
//! * [`HyperVector`] and [`HyperMatrix`] — dense hypervectors / hypermatrices
//!   generic over an [`Element`] type (`i8`..`i64`, `f32`, `f64`).
//! * [`BitVector`] and [`BitMatrix`] — bit-packed bipolar (±1) hypervectors
//!   produced by automatic binarization; Hamming distance on these uses
//!   word-level popcounts.
//! * The 24 HDC primitives of the paper's Table 1 (element-wise operators,
//!   `sign`, `wrap_shift`, `l2norm`, `arg_min`/`arg_max`, `matmul`,
//!   `cossim`, `hamming_distance`, …), including *reduction perforated*
//!   variants controlled by a [`Perforation`] descriptor.
//! * The encoding schemes used by the evaluated applications
//!   ([`encoding::RandomProjection`], [`encoding::LevelIdEncoder`],
//!   [`encoding::GraphNeighborEncoder`], [`encoding::KmerEncoder`]).
//!
//! # Example
//!
//! ```
//! # fn main() -> hdc_core::Result<()> {
//! use hdc_core::prelude::*;
//!
//! // Random-projection encode a feature vector and classify it against two
//! // class hypervectors with Hamming distance, as in the paper's Listing 1.
//! let mut rng = HdcRng::seed_from_u64(7);
//! let rp = RandomProjection::bipolar(2048, 16, &mut rng);
//! let features = HyperVector::from_vec((0..16).map(|x| x as f32).collect());
//! let encoded = rp.encode(&features).sign();
//! let classes = HyperMatrix::from_rows(vec![encoded.clone(), encoded.sign_flip()])?;
//! let dists = hamming_distance_matrix(&encoded, &classes, Perforation::NONE)?;
//! assert_eq!(arg_min(dists.as_slice()), Some(0));
//! # Ok(())
//! # }
//! ```

// `deny` rather than `forbid`: the `simd` module carries item-scoped
// `#[allow(unsafe_code)]` for its `std::arch` intrinsics — each allowed item
// pairs with a `// SAFETY:` contract, enforced by the repo-wide
// `unsafe_audit` test. Everything else stays unsafe-free.
#![deny(unsafe_code)]
#![warn(missing_docs)]

pub mod batch;
pub mod binary;
pub mod element;
pub mod encoding;
pub mod error;
pub mod hypermatrix;
pub mod hypervector;
pub mod matmul;
pub mod ops;
pub mod perforation;
pub mod random;
pub mod shard;
pub mod simd;
pub mod similarity;

pub use batch::{
    arg_top_k_batch, arg_top_k_batch_sharded, cosine_similarity_batch,
    cosine_similarity_batch_sharded, hamming_distance_batch, hamming_distance_batch_dense,
    hamming_distance_batch_dense_sharded, hamming_distance_batch_sharded,
};
pub use binary::{BitMatrix, BitVector};
pub use element::Element;
pub use error::{HdcError, Result};
pub use hypermatrix::HyperMatrix;
pub use hypervector::HyperVector;
pub use perforation::Perforation;
pub use random::HdcRng;
pub use shard::{default_shard_count, ShardPlan};
pub use simd::KernelBackend;

/// Commonly used items, for glob import in examples and applications.
pub mod prelude {
    pub use crate::batch::{
        arg_top_k_batch, cosine_similarity_batch, hamming_distance_batch,
        hamming_distance_batch_dense,
    };
    pub use crate::binary::{BitMatrix, BitVector};
    pub use crate::element::Element;
    pub use crate::encoding::{
        GraphNeighborEncoder, KmerEncoder, LevelIdEncoder, RandomProjection,
    };
    pub use crate::error::{HdcError, Result};
    pub use crate::hypermatrix::HyperMatrix;
    pub use crate::hypervector::HyperVector;
    pub use crate::ops::{arg_max, arg_min, arg_top_k};
    pub use crate::perforation::Perforation;
    pub use crate::random::HdcRng;
    pub use crate::similarity::{
        cosine_similarity, cosine_similarity_matrix, hamming_distance, hamming_distance_matrix,
    };
    pub use rand::SeedableRng;
}
