//! Seeded random generation of hypervectors and hypermatrices.
//!
//! All experiments in the repository are deterministic given a seed; the
//! [`HdcRng`] alias pins the generator so results are reproducible across
//! runs and platforms.

use crate::element::Element;
use crate::hypermatrix::HyperMatrix;
use crate::hypervector::HyperVector;
use rand::Rng;
use rand_distr::{Distribution, StandardNormal};

/// The deterministic RNG used throughout the reproduction.
pub type HdcRng = rand::rngs::StdRng;

/// Create a hypervector of uniformly random values in `[-1, 1]`
/// (the `random_hypervector` primitive).
pub fn random_hypervector<T: Element>(dimension: usize, rng: &mut impl Rng) -> HyperVector<T> {
    HyperVector::from_fn(dimension, |_| T::from_f64(rng.gen_range(-1.0..=1.0)))
}

/// Create a hypermatrix of uniformly random values in `[-1, 1]`
/// (the `random_hypermatrix` primitive).
pub fn random_hypermatrix<T: Element>(
    rows: usize,
    cols: usize,
    rng: &mut impl Rng,
) -> HyperMatrix<T> {
    HyperMatrix::from_fn(rows, cols, |_, _| T::from_f64(rng.gen_range(-1.0..=1.0)))
}

/// Create a hypervector of standard-normal values
/// (the `gaussian_hypervector` primitive).
pub fn gaussian_hypervector<T: Element>(dimension: usize, rng: &mut impl Rng) -> HyperVector<T> {
    HyperVector::from_fn(dimension, |_| T::from_f64(StandardNormal.sample(rng)))
}

/// Create a hypermatrix of standard-normal values
/// (the `gaussian_hypermatrix` primitive).
pub fn gaussian_hypermatrix<T: Element>(
    rows: usize,
    cols: usize,
    rng: &mut impl Rng,
) -> HyperMatrix<T> {
    HyperMatrix::from_fn(rows, cols, |_, _| T::from_f64(StandardNormal.sample(rng)))
}

/// Create a random bipolar (±1) hypervector.
pub fn bipolar_hypervector<T: Element>(dimension: usize, rng: &mut impl Rng) -> HyperVector<T> {
    HyperVector::from_fn(
        dimension,
        |_| {
            if rng.gen_bool(0.5) {
                T::ONE
            } else {
                -T::ONE
            }
        },
    )
}

/// Create a random bipolar (±1) hypermatrix, the usual initial state of a
/// random-projection encoder.
pub fn bipolar_hypermatrix<T: Element>(
    rows: usize,
    cols: usize,
    rng: &mut impl Rng,
) -> HyperMatrix<T> {
    HyperMatrix::from_fn(
        rows,
        cols,
        |_, _| {
            if rng.gen_bool(0.5) {
                T::ONE
            } else {
                -T::ONE
            }
        },
    )
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::SeedableRng;

    #[test]
    fn deterministic_given_seed() {
        let a: HyperVector<f32> = random_hypervector(64, &mut HdcRng::seed_from_u64(1));
        let b: HyperVector<f32> = random_hypervector(64, &mut HdcRng::seed_from_u64(1));
        let c: HyperVector<f32> = random_hypervector(64, &mut HdcRng::seed_from_u64(2));
        assert_eq!(a, b);
        assert_ne!(a, c);
    }

    #[test]
    fn uniform_range() {
        let hv: HyperVector<f64> = random_hypervector(1000, &mut HdcRng::seed_from_u64(3));
        assert!(hv.iter().all(|&x| (-1.0..=1.0).contains(&x)));
    }

    #[test]
    fn bipolar_values_only() {
        let hv: HyperVector<i32> = bipolar_hypervector(256, &mut HdcRng::seed_from_u64(4));
        assert!(hv.iter().all(|&x| x == 1 || x == -1));
        let hm: HyperMatrix<f32> = bipolar_hypermatrix(4, 64, &mut HdcRng::seed_from_u64(5));
        assert!(hm.as_slice().iter().all(|&x| x == 1.0 || x == -1.0));
    }

    #[test]
    fn gaussian_statistics_roughly_standard() {
        let hv: HyperVector<f64> = gaussian_hypervector(20_000, &mut HdcRng::seed_from_u64(6));
        let mean = hv.sum() / hv.dimension() as f64;
        let var = hv.iter().map(|&x| (x - mean) * (x - mean)).sum::<f64>() / hv.dimension() as f64;
        assert!(mean.abs() < 0.05, "mean {mean}");
        assert!((var - 1.0).abs() < 0.1, "var {var}");
    }

    #[test]
    fn random_bipolar_hvs_are_nearly_orthogonal() {
        // The HDC premise: random hypervectors in high dimensions are
        // quasi-orthogonal.
        let mut rng = HdcRng::seed_from_u64(7);
        let a: HyperVector<f32> = bipolar_hypervector(10_000, &mut rng);
        let b: HyperVector<f32> = bipolar_hypervector(10_000, &mut rng);
        let sim = crate::similarity::cosine_similarity(&a, &b, crate::Perforation::NONE).unwrap();
        assert!(sim.abs() < 0.05, "similarity {sim}");
    }

    #[test]
    fn matrix_shapes() {
        let mut rng = HdcRng::seed_from_u64(8);
        let m: HyperMatrix<f32> = gaussian_hypermatrix(3, 17, &mut rng);
        assert_eq!((m.rows(), m.cols()), (3, 17));
        let u: HyperMatrix<i16> = random_hypermatrix(2, 9, &mut rng);
        assert_eq!((u.rows(), u.cols()), (2, 9));
    }
}
