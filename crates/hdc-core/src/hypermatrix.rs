//! Dense hypermatrices (row-major collections of hypervectors).

use crate::element::Element;
use crate::error::{HdcError, Result};
use crate::hypervector::HyperVector;

/// A dense, row-major hypermatrix.
///
/// A hypermatrix is a stack of hypervectors: the class-hypervector database
/// of a classifier, a random projection matrix, a batch of encoded queries.
/// Rows share a single dimension (`cols`).
#[derive(Debug, Clone, PartialEq)]
pub struct HyperMatrix<T: Element> {
    rows: usize,
    cols: usize,
    data: Vec<T>,
}

impl<T: Element> HyperMatrix<T> {
    /// Create a zero-initialised `rows x cols` hypermatrix.
    pub fn zeros(rows: usize, cols: usize) -> Self {
        HyperMatrix {
            rows,
            cols,
            data: vec![T::ZERO; rows * cols],
        }
    }

    /// Create a hypermatrix from a flat row-major data vector.
    ///
    /// # Errors
    ///
    /// Returns [`HdcError::InvalidShape`] if `data.len() != rows * cols`.
    pub fn from_flat(rows: usize, cols: usize, data: Vec<T>) -> Result<Self> {
        if data.len() != rows * cols {
            return Err(HdcError::InvalidShape {
                rows,
                cols,
                len: data.len(),
            });
        }
        Ok(HyperMatrix { rows, cols, data })
    }

    /// Create a hypermatrix from a list of equal-length row hypervectors.
    ///
    /// # Errors
    ///
    /// Returns [`HdcError::InvalidShape`] if the rows have differing lengths.
    pub fn from_rows(rows: Vec<HyperVector<T>>) -> Result<Self> {
        let n_rows = rows.len();
        let cols = rows.first().map_or(0, HyperVector::dimension);
        let mut data = Vec::with_capacity(n_rows * cols);
        for row in &rows {
            if row.dimension() != cols {
                return Err(HdcError::InvalidShape {
                    rows: n_rows,
                    cols,
                    len: row.dimension(),
                });
            }
            data.extend_from_slice(row.as_slice());
        }
        Ok(HyperMatrix {
            rows: n_rows,
            cols,
            data,
        })
    }

    /// Create a hypermatrix by calling `init(row, col)` for each position.
    pub fn from_fn(rows: usize, cols: usize, mut init: impl FnMut(usize, usize) -> T) -> Self {
        let mut data = Vec::with_capacity(rows * cols);
        for r in 0..rows {
            for c in 0..cols {
                data.push(init(r, c));
            }
        }
        HyperMatrix { rows, cols, data }
    }

    /// Number of rows.
    pub fn rows(&self) -> usize {
        self.rows
    }

    /// Number of columns (the hypervector dimension of each row).
    pub fn cols(&self) -> usize {
        self.cols
    }

    /// Whether the matrix holds no elements.
    pub fn is_empty(&self) -> bool {
        self.data.is_empty()
    }

    /// Borrow the flat row-major data.
    pub fn as_slice(&self) -> &[T] {
        &self.data
    }

    /// Borrow the flat row-major data mutably.
    pub fn as_mut_slice(&mut self) -> &mut [T] {
        &mut self.data
    }

    /// Consume the matrix, returning the flat row-major data.
    pub fn into_vec(self) -> Vec<T> {
        self.data
    }

    /// Borrow one row as a slice.
    ///
    /// # Errors
    ///
    /// Returns [`HdcError::IndexOutOfBounds`] if `row >= rows()`.
    pub fn row(&self, row: usize) -> Result<&[T]> {
        if row >= self.rows {
            return Err(HdcError::IndexOutOfBounds {
                index: row,
                len: self.rows,
            });
        }
        Ok(&self.data[row * self.cols..(row + 1) * self.cols])
    }

    /// Copy one row out as a [`HyperVector`] (the `get_matrix_row` primitive).
    ///
    /// # Errors
    ///
    /// Returns [`HdcError::IndexOutOfBounds`] if `row >= rows()`.
    pub fn row_vector(&self, row: usize) -> Result<HyperVector<T>> {
        Ok(HyperVector::from_vec(self.row(row)?.to_vec()))
    }

    /// Overwrite one row with a hypervector (the `set_matrix_row` primitive).
    ///
    /// # Errors
    ///
    /// Returns [`HdcError::IndexOutOfBounds`] if `row >= rows()` and
    /// [`HdcError::DimensionMismatch`] if the hypervector length differs from
    /// `cols()`.
    pub fn set_row(&mut self, row: usize, value: &HyperVector<T>) -> Result<()> {
        if row >= self.rows {
            return Err(HdcError::IndexOutOfBounds {
                index: row,
                len: self.rows,
            });
        }
        if value.dimension() != self.cols {
            return Err(HdcError::DimensionMismatch {
                expected: self.cols,
                actual: value.dimension(),
                context: "set_matrix_row",
            });
        }
        self.data[row * self.cols..(row + 1) * self.cols].copy_from_slice(value.as_slice());
        Ok(())
    }

    /// Get a single element (the two-index form of `get_element`).
    ///
    /// # Errors
    ///
    /// Returns [`HdcError::IndexOutOfBounds`] if either index is out of range.
    pub fn get(&self, row: usize, col: usize) -> Result<T> {
        if row >= self.rows {
            return Err(HdcError::IndexOutOfBounds {
                index: row,
                len: self.rows,
            });
        }
        if col >= self.cols {
            return Err(HdcError::IndexOutOfBounds {
                index: col,
                len: self.cols,
            });
        }
        Ok(self.data[row * self.cols + col])
    }

    /// Set a single element.
    ///
    /// # Errors
    ///
    /// Returns [`HdcError::IndexOutOfBounds`] if either index is out of range.
    pub fn set(&mut self, row: usize, col: usize, value: T) -> Result<()> {
        if row >= self.rows {
            return Err(HdcError::IndexOutOfBounds {
                index: row,
                len: self.rows,
            });
        }
        if col >= self.cols {
            return Err(HdcError::IndexOutOfBounds {
                index: col,
                len: self.cols,
            });
        }
        self.data[row * self.cols + col] = value;
        Ok(())
    }

    /// Iterate over the rows as slices.
    pub fn iter_rows(&self) -> impl Iterator<Item = &[T]> {
        self.data.chunks(self.cols.max(1))
    }

    /// Apply `f` to every element, producing a new hypermatrix.
    pub fn map<U: Element>(&self, f: impl Fn(T) -> U) -> HyperMatrix<U> {
        HyperMatrix {
            rows: self.rows,
            cols: self.cols,
            data: self.data.iter().map(|&x| f(x)).collect(),
        }
    }

    /// Combine two hypermatrices element-wise with `f`.
    ///
    /// # Errors
    ///
    /// Returns [`HdcError::DimensionMismatch`] if the shapes differ.
    pub fn zip_with(&self, other: &Self, f: impl Fn(T, T) -> T) -> Result<Self> {
        if self.rows != other.rows || self.cols != other.cols {
            return Err(HdcError::DimensionMismatch {
                expected: self.rows * self.cols,
                actual: other.rows * other.cols,
                context: "hypermatrix element-wise op",
            });
        }
        Ok(HyperMatrix {
            rows: self.rows,
            cols: self.cols,
            data: self
                .data
                .iter()
                .zip(other.data.iter())
                .map(|(&a, &b)| f(a, b))
                .collect(),
        })
    }

    /// Cast every element to another element type (the `type_cast` primitive).
    pub fn cast<U: Element>(&self) -> HyperMatrix<U> {
        self.map(|x| U::from_f64(x.to_f64()))
    }

    /// Map every element to `+1`/`-1` by its sign (the `sign` primitive).
    pub fn sign(&self) -> Self {
        self.map(Element::bipolar_sign)
    }

    /// Flip the sign of every element (the `sign_flip` primitive).
    pub fn sign_flip(&self) -> Self {
        self.map(|x| -x)
    }

    /// Element-wise absolute value (the `absolute_value` primitive).
    pub fn absolute_value(&self) -> Self {
        self.map(Element::abs_value)
    }

    /// Element-wise cosine (the `cosine` primitive).
    pub fn cosine(&self) -> Self {
        self.map(|x| T::from_f64(x.to_f64().cos()))
    }

    /// Transpose the matrix (the `matrix_transpose` primitive).
    pub fn transpose(&self) -> Self {
        let mut data = vec![T::ZERO; self.data.len()];
        for r in 0..self.rows {
            for c in 0..self.cols {
                data[c * self.rows + r] = self.data[r * self.cols + c];
            }
        }
        HyperMatrix {
            rows: self.cols,
            cols: self.rows,
            data,
        }
    }

    /// Per-row L2 norms (the hypermatrix form of `l2norm`).
    pub fn l2norm_rows(&self) -> HyperVector<f64> {
        self.iter_rows()
            .map(|row| {
                row.iter()
                    .map(|x| {
                        let v = x.to_f64();
                        v * v
                    })
                    .sum::<f64>()
                    .sqrt()
            })
            .collect()
    }
}

impl<T: Element> Default for HyperMatrix<T> {
    fn default() -> Self {
        HyperMatrix {
            rows: 0,
            cols: 0,
            data: Vec::new(),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn sample() -> HyperMatrix<i32> {
        HyperMatrix::from_flat(2, 3, vec![1, 2, 3, 4, 5, 6]).unwrap()
    }

    #[test]
    fn from_flat_validates_shape() {
        assert!(HyperMatrix::from_flat(2, 3, vec![1i32; 5]).is_err());
        assert!(HyperMatrix::from_flat(2, 3, vec![1i32; 6]).is_ok());
    }

    #[test]
    fn from_rows_validates_lengths() {
        let ok = HyperMatrix::from_rows(vec![
            HyperVector::from_vec(vec![1i32, 2]),
            HyperVector::from_vec(vec![3, 4]),
        ])
        .unwrap();
        assert_eq!(ok.rows(), 2);
        assert_eq!(ok.cols(), 2);

        let bad = HyperMatrix::from_rows(vec![
            HyperVector::from_vec(vec![1i32, 2]),
            HyperVector::from_vec(vec![3]),
        ]);
        assert!(bad.is_err());
    }

    #[test]
    fn row_access() {
        let m = sample();
        assert_eq!(m.row(0).unwrap(), &[1, 2, 3]);
        assert_eq!(m.row(1).unwrap(), &[4, 5, 6]);
        assert!(m.row(2).is_err());
        assert_eq!(m.row_vector(1).unwrap().as_slice(), &[4, 5, 6]);
    }

    #[test]
    fn set_row_validates() {
        let mut m = sample();
        m.set_row(0, &HyperVector::from_vec(vec![7, 8, 9])).unwrap();
        assert_eq!(m.row(0).unwrap(), &[7, 8, 9]);
        assert!(m.set_row(0, &HyperVector::from_vec(vec![1, 2])).is_err());
        assert!(m.set_row(5, &HyperVector::from_vec(vec![1, 2, 3])).is_err());
    }

    #[test]
    fn get_set_element() {
        let mut m = sample();
        assert_eq!(m.get(1, 2).unwrap(), 6);
        m.set(1, 2, 60).unwrap();
        assert_eq!(m.get(1, 2).unwrap(), 60);
        assert!(m.get(2, 0).is_err());
        assert!(m.get(0, 3).is_err());
        assert!(m.set(2, 0, 1).is_err());
        assert!(m.set(0, 3, 1).is_err());
    }

    #[test]
    fn transpose_roundtrip() {
        let m = sample();
        let t = m.transpose();
        assert_eq!(t.rows(), 3);
        assert_eq!(t.cols(), 2);
        assert_eq!(t.get(2, 1).unwrap(), 6);
        assert_eq!(t.transpose(), m);
    }

    #[test]
    fn sign_and_flip() {
        let m = HyperMatrix::from_flat(1, 3, vec![-3.0f32, 0.0, 2.0]).unwrap();
        assert_eq!(m.sign().as_slice(), &[-1.0, 1.0, 1.0]);
        assert_eq!(m.sign_flip().as_slice(), &[3.0, 0.0, -2.0]);
        assert_eq!(m.absolute_value().as_slice(), &[3.0, 0.0, 2.0]);
    }

    #[test]
    fn l2norm_rows() {
        let m = HyperMatrix::from_flat(2, 2, vec![3.0f32, 4.0, 0.0, 2.0]).unwrap();
        let norms = m.l2norm_rows();
        assert!((norms.get(0).unwrap() - 5.0).abs() < 1e-12);
        assert!((norms.get(1).unwrap() - 2.0).abs() < 1e-12);
    }

    #[test]
    fn cast_preserves_shape() {
        let m = sample();
        let f: HyperMatrix<f64> = m.cast();
        assert_eq!(f.rows(), 2);
        assert_eq!(f.cols(), 3);
        assert_eq!(f.get(0, 1).unwrap(), 2.0);
    }

    #[test]
    fn zip_with_shape_mismatch() {
        let a = HyperMatrix::<f32>::zeros(2, 3);
        let b = HyperMatrix::<f32>::zeros(3, 2);
        assert!(a.zip_with(&b, |x, y| x + y).is_err());
    }

    #[test]
    fn default_is_empty() {
        let m = HyperMatrix::<f32>::default();
        assert!(m.is_empty());
        assert_eq!(m.rows(), 0);
    }
}
