//! Runtime-dispatched SIMD kernel backend for the batched inner loops.
//!
//! The two primitive loops every committed speedup rests on — XOR/popcount
//! over bit-packed words and the dense `f64` dot-product panels — have
//! `std::arch` variants here: AVX2 and AVX-512 (`vpopcntdq`) on `x86_64`
//! and NEON on `aarch64`. A [`KernelBackend`] is selected **once per
//! process** by runtime feature detection (no compile-time `target-cpu`
//! flags needed) and every batched kernel call fetches a small dispatch
//! table from it:
//!
//! ```text
//!            HDC_KERNEL_BACKEND env ──┐  (scalar | avx2 | avx512 | neon)
//!                                     ▼
//!   is_x86_feature_detected! ──► selected(): KernelBackend   (once, atomic)
//!   is_aarch64_feature_detected!      │
//!                                     ▼
//!        batch kernel call ──► bit_kernels() / dot_panel_dense::<B>()
//!                                     │
//!         ┌───────────────┬───────────┴───────────┬───────────────┐
//!         ▼               ▼                       ▼               ▼
//!   Scalar (oracle)      Avx2                  Avx512            Neon
//!   lane-blocked u64   pshufb popcount    vpopcntq __m512i   vcntq_u8 pop
//!   ascending f64      mul+add __m256d    (panels on Avx2)   mul+add f64x2
//! ```
//!
//! **Equivalence contract.** Every SIMD variant is bit-identical to the
//! scalar oracle kept verbatim in the private `scalar` submodule:
//!
//! * popcounts are exact integers, so any correct popcount implementation
//!   produces the same count;
//! * the `f64` panel kernels keep one independent accumulator chain per
//!   output lane and sum the element axis in ascending order with separate
//!   multiply and add (**no FMA** — fused rounding would diverge from the
//!   scalar chain), so every partial sum is the same IEEE value the scalar
//!   kernel computes.
//!
//! The `kernel_equivalence` integration suite fuzzes dims/classes/
//! perforation across backends to pin this. Because outputs are
//! bit-identical, backend selection is invisible to everything above the
//! kernels — the batched==sequential oracle suites pass unchanged on either
//! path.
//!
//! Set `HDC_KERNEL_BACKEND=scalar` (or `avx2` / `avx512` / `neon`) to force
//! a backend; an unsupported forced SIMD backend falls back to scalar.
//! Tests and benchmarks can switch at runtime with [`set_backend`].

use crate::error::{HdcError, Result};
use std::sync::atomic::{AtomicU64, AtomicU8, Ordering};

/// The kernel backend the batched inner loops dispatch to.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum KernelBackend {
    /// The portable scalar kernels — the always-available reference oracle.
    Scalar,
    /// `std::arch` AVX2 kernels (`x86_64`, runtime-detected).
    Avx2,
    /// `std::arch` AVX-512 kernels (`x86_64` with `avx512f` +
    /// `avx512vpopcntdq`, runtime-detected): native 64-bit-lane popcount
    /// over 512-bit registers for the XOR/popcount family; the `f64`
    /// panels stay on the AVX2 kernels (panel widths are ≤ 4 lanes).
    Avx512,
    /// `std::arch` NEON kernels (`aarch64`, runtime-detected).
    Neon,
}

impl KernelBackend {
    /// Stable lowercase name (`scalar` / `avx2` / `avx512` / `neon`), as
    /// accepted by the `HDC_KERNEL_BACKEND` environment variable.
    pub fn name(self) -> &'static str {
        match self {
            KernelBackend::Scalar => "scalar",
            KernelBackend::Avx2 => "avx2",
            KernelBackend::Avx512 => "avx512",
            KernelBackend::Neon => "neon",
        }
    }

    /// Whether this backend uses SIMD intrinsics (everything but scalar).
    pub fn is_simd(self) -> bool {
        !matches!(self, KernelBackend::Scalar)
    }

    fn to_code(self) -> u8 {
        match self {
            KernelBackend::Scalar => 1,
            KernelBackend::Avx2 => 2,
            KernelBackend::Neon => 3,
            KernelBackend::Avx512 => 4,
        }
    }

    fn from_code(code: u8) -> Option<Self> {
        match code {
            1 => Some(KernelBackend::Scalar),
            2 => Some(KernelBackend::Avx2),
            3 => Some(KernelBackend::Neon),
            4 => Some(KernelBackend::Avx512),
            _ => None,
        }
    }
}

impl std::fmt::Display for KernelBackend {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.write_str(self.name())
    }
}

/// 0 = not yet resolved; otherwise a `KernelBackend::to_code` value.
static BACKEND: AtomicU8 = AtomicU8::new(0);

/// Count of batched kernel launches that took a SIMD path (one per
/// dispatch-table fetch or panel call, not per inner-loop iteration).
static SIMD_DISPATCHES: AtomicU64 = AtomicU64::new(0);

/// The backend runtime feature detection picks on this host, ignoring the
/// environment override: AVX-512 then AVX2 on a capable `x86_64`, NEON on
/// a capable `aarch64`, scalar everywhere else.
pub fn detected() -> KernelBackend {
    #[cfg(target_arch = "x86_64")]
    {
        if supported(KernelBackend::Avx512) {
            return KernelBackend::Avx512;
        }
        if supported(KernelBackend::Avx2) {
            return KernelBackend::Avx2;
        }
    }
    #[cfg(target_arch = "aarch64")]
    {
        if supported(KernelBackend::Neon) {
            return KernelBackend::Neon;
        }
    }
    KernelBackend::Scalar
}

/// Whether `backend` can run on this host (scalar always can). This is a
/// per-backend feature check, not equality with [`detected`]: an AVX-512
/// host supports `avx2` too, so forcing the narrower backend still works.
pub fn supported(backend: KernelBackend) -> bool {
    match backend {
        KernelBackend::Scalar => true,
        #[cfg(target_arch = "x86_64")]
        KernelBackend::Avx2 => {
            std::arch::is_x86_feature_detected!("avx2")
                && std::arch::is_x86_feature_detected!("popcnt")
        }
        #[cfg(target_arch = "x86_64")]
        KernelBackend::Avx512 => {
            // The f64 panels and `add_signs` dispatch to the AVX2 kernels,
            // so the AVX-512 backend requires the AVX2 features as well.
            supported(KernelBackend::Avx2)
                && std::arch::is_x86_feature_detected!("avx512f")
                && std::arch::is_x86_feature_detected!("avx512vpopcntdq")
        }
        #[cfg(target_arch = "aarch64")]
        KernelBackend::Neon => std::arch::is_aarch64_feature_detected!("neon"),
        #[allow(unreachable_patterns)]
        _ => false,
    }
}

/// Resolve an `HDC_KERNEL_BACKEND` value to a backend: a recognized name
/// forces that backend (falling back to scalar when the host lacks the
/// SIMD features); anything else defers to [`detected`].
fn resolve(env: Option<&str>) -> KernelBackend {
    match env.map(str::trim) {
        Some("scalar") => KernelBackend::Scalar,
        Some("avx2") => {
            if supported(KernelBackend::Avx2) {
                KernelBackend::Avx2
            } else {
                KernelBackend::Scalar
            }
        }
        Some("avx512") => {
            if supported(KernelBackend::Avx512) {
                KernelBackend::Avx512
            } else {
                KernelBackend::Scalar
            }
        }
        Some("neon") => {
            if supported(KernelBackend::Neon) {
                KernelBackend::Neon
            } else {
                KernelBackend::Scalar
            }
        }
        Some(other) if !other.is_empty() => {
            eprintln!("hdc-core: unknown HDC_KERNEL_BACKEND `{other}`, using detection");
            detected()
        }
        _ => detected(),
    }
}

/// The backend the process dispatches to, resolved once on first call from
/// the `HDC_KERNEL_BACKEND` environment variable and runtime feature
/// detection, then cached.
pub fn selected() -> KernelBackend {
    if let Some(backend) = KernelBackend::from_code(BACKEND.load(Ordering::Relaxed)) {
        return backend;
    }
    let backend = resolve(std::env::var("HDC_KERNEL_BACKEND").ok().as_deref());
    // A concurrent first call resolves to the same value; last store wins.
    BACKEND.store(backend.to_code(), Ordering::Relaxed);
    backend
}

/// Force the dispatch backend for the rest of the process (overriding both
/// detection and the environment variable). Intended for equivalence tests
/// and benchmarks that compare backends within one process.
///
/// # Errors
///
/// Returns [`HdcError::UnsupportedBackend`] when this host cannot run the
/// requested backend; the previous selection is left unchanged.
pub fn set_backend(backend: KernelBackend) -> Result<()> {
    if !supported(backend) {
        return Err(HdcError::UnsupportedBackend {
            requested: backend.name(),
        });
    }
    BACKEND.store(backend.to_code(), Ordering::Relaxed);
    Ok(())
}

/// Number of batched kernel launches that took a SIMD path so far in this
/// process. Stays at zero when the scalar backend is selected — pinned by
/// the `kernel_equivalence` regression suite.
pub fn simd_dispatch_count() -> u64 {
    SIMD_DISPATCHES.load(Ordering::Relaxed)
}

#[inline]
fn note_simd_dispatch() {
    SIMD_DISPATCHES.fetch_add(1, Ordering::Relaxed);
}

/// CPU features runtime detection reports on this host, for perf-report
/// metadata (a stable subset relevant to the kernels, not an exhaustive
/// CPUID dump).
pub fn detected_features() -> Vec<&'static str> {
    #[cfg(target_arch = "x86_64")]
    {
        let probes = [
            ("sse4.2", std::arch::is_x86_feature_detected!("sse4.2")),
            ("popcnt", std::arch::is_x86_feature_detected!("popcnt")),
            ("avx", std::arch::is_x86_feature_detected!("avx")),
            ("avx2", std::arch::is_x86_feature_detected!("avx2")),
            ("fma", std::arch::is_x86_feature_detected!("fma")),
            ("avx512f", std::arch::is_x86_feature_detected!("avx512f")),
            (
                "avx512vpopcntdq",
                std::arch::is_x86_feature_detected!("avx512vpopcntdq"),
            ),
        ];
        return probes
            .into_iter()
            .filter_map(|(name, have)| have.then_some(name))
            .collect();
    }
    #[cfg(target_arch = "aarch64")]
    {
        let probes = [
            ("neon", std::arch::is_aarch64_feature_detected!("neon")),
            (
                "dotprod",
                std::arch::is_aarch64_feature_detected!("dotprod"),
            ),
        ];
        return probes
            .into_iter()
            .filter_map(|(name, have)| have.then_some(name))
            .collect();
    }
    #[allow(unreachable_code)]
    Vec::new()
}

/// ±1.0 lookup for a nibble of packed sign bits: lane `k` of entry `n` is
/// `-1.0` when bit `k` of `n` is set (a set bit encodes the bipolar value
/// `-1`, matching [`crate::BitVector::to_dense`]).
static SIGN_LUT4: [[f64; 4]; 16] = {
    let mut table = [[0.0; 4]; 16];
    let mut n = 0;
    while n < 16 {
        let mut k = 0;
        while k < 4 {
            table[n][k] = if (n >> k) & 1 != 0 { -1.0 } else { 1.0 };
            k += 1;
        }
        n += 1;
    }
    table
};

/// Function-pointer table for the XOR/popcount kernel family, fetched once
/// per batched kernel call (never per row) so the hot loops pay no
/// per-iteration dispatch cost.
#[derive(Clone, Copy)]
pub(crate) struct BitKernels {
    /// `popcount(a ^ b)` over two packed word slices.
    pub xor_popcount: fn(&[u64], &[u64]) -> u64,
    /// `popcount((a ^ b) & mask)` — perforated reductions.
    pub xor_popcount_masked: fn(&[u64], &[u64], &[u64]) -> u64,
    /// Add the ±1 signs packed in `words` into the `f64` accumulator slots
    /// (`acc.len()` columns), one add per column in ascending order.
    pub add_signs: fn(&mut [f64], &[u64]),
}

const SCALAR_BIT_KERNELS: BitKernels = BitKernels {
    xor_popcount: scalar::xor_popcount,
    xor_popcount_masked: scalar::xor_popcount_masked,
    add_signs: scalar::add_signs,
};

/// The XOR/popcount dispatch table for the selected backend.
pub(crate) fn bit_kernels() -> BitKernels {
    match selected() {
        #[cfg(target_arch = "x86_64")]
        KernelBackend::Avx2 => {
            note_simd_dispatch();
            BitKernels {
                xor_popcount: avx2::xor_popcount,
                xor_popcount_masked: avx2::xor_popcount_masked,
                add_signs: avx2::add_signs,
            }
        }
        #[cfg(target_arch = "x86_64")]
        KernelBackend::Avx512 => {
            note_simd_dispatch();
            BitKernels {
                xor_popcount: avx512::xor_popcount,
                xor_popcount_masked: avx512::xor_popcount_masked,
                // No 512-bit win for the 4-lane sign LUT; Avx512 implies
                // the AVX2 features (see `supported`).
                add_signs: avx2::add_signs,
            }
        }
        #[cfg(target_arch = "aarch64")]
        KernelBackend::Neon => {
            note_simd_dispatch();
            BitKernels {
                xor_popcount: neon::xor_popcount,
                xor_popcount_masked: neon::xor_popcount_masked,
                add_signs: neon::add_signs,
            }
        }
        _ => SCALAR_BIT_KERNELS,
    }
}

/// Dense dot products of one streamed `f64` row against a column-major
/// packed panel ([`crate::batch::pack_panel`]), `B` independent accumulator
/// chains, ascending element order — dispatched to the selected backend.
/// Bit-identical to [`scalar::dot_panel_dense`] on every backend.
pub(crate) fn dot_panel_dense<const B: usize>(q: &[f64], panel: &[f64]) -> [f64; B] {
    match selected() {
        // Avx512 uses the AVX2 panels: widths are ≤ 4 f64 lanes (256 bits),
        // and the accumulation-order contract is already satisfied there.
        #[cfg(target_arch = "x86_64")]
        KernelBackend::Avx2 | KernelBackend::Avx512 => {
            if let Some(out) = avx2::dot_panel::<B>(q, panel) {
                note_simd_dispatch();
                return out;
            }
            scalar::dot_panel_dense::<B>(q, panel)
        }
        #[cfg(target_arch = "aarch64")]
        KernelBackend::Neon => {
            if let Some(out) = neon::dot_panel::<B>(q, panel) {
                note_simd_dispatch();
                return out;
            }
            scalar::dot_panel_dense::<B>(q, panel)
        }
        _ => scalar::dot_panel_dense::<B>(q, panel),
    }
}

/// The scalar reference kernels — the PR-5 inner loops kept verbatim. Every
/// SIMD variant in this module is fuzzed bit-identical against these.
pub(crate) mod scalar {
    /// Inner-loop block width (in 64-bit words) for the XOR/popcount
    /// kernels. Accumulating into independent lanes keeps the popcounts
    /// flowing even on a single core.
    const BLOCK_WORDS: usize = 4;

    /// Word-blocked XOR + popcount over two packed word slices.
    pub(crate) fn xor_popcount(a: &[u64], b: &[u64]) -> u64 {
        let mut lanes = [0u64; BLOCK_WORDS];
        let blocks = a.len() / BLOCK_WORDS;
        for blk in 0..blocks {
            let base = blk * BLOCK_WORDS;
            for (lane, acc) in lanes.iter_mut().enumerate() {
                *acc += (a[base + lane] ^ b[base + lane]).count_ones() as u64;
            }
        }
        let mut total: u64 = lanes.iter().sum();
        for i in blocks * BLOCK_WORDS..a.len() {
            total += (a[i] ^ b[i]).count_ones() as u64;
        }
        total
    }

    /// Word-blocked masked XOR + popcount (perforated reductions).
    pub(crate) fn xor_popcount_masked(a: &[u64], b: &[u64], mask: &[u64]) -> u64 {
        let mut lanes = [0u64; BLOCK_WORDS];
        let blocks = a.len() / BLOCK_WORDS;
        for blk in 0..blocks {
            let base = blk * BLOCK_WORDS;
            for (lane, acc) in lanes.iter_mut().enumerate() {
                let i = base + lane;
                *acc += ((a[i] ^ b[i]) & mask[i]).count_ones() as u64;
            }
        }
        let mut total: u64 = lanes.iter().sum();
        for i in blocks * BLOCK_WORDS..a.len() {
            total += ((a[i] ^ b[i]) & mask[i]).count_ones() as u64;
        }
        total
    }

    /// Unpack the ±1 signs in `words` and add them into the accumulator
    /// slots, one column at a time in ascending order.
    pub(crate) fn add_signs(acc: &mut [f64], words: &[u64]) {
        for (c, slot) in acc.iter_mut().enumerate() {
            let bit = (words[c / 64] >> (c % 64)) & 1;
            // bit set = negative element.
            *slot += 1.0 - 2.0 * bit as f64;
        }
    }

    /// Dense `f64` dot-panel: `B` independent accumulator chains, ascending
    /// element order, separate multiply and add.
    pub(crate) fn dot_panel_dense<const B: usize>(q: &[f64], panel: &[f64]) -> [f64; B] {
        let mut acc = [0.0f64; B];
        for (lanes, &qv) in panel.chunks_exact(B).zip(q.iter()) {
            for k in 0..B {
                acc[k] += qv * lanes[k];
            }
        }
        acc
    }
}

/// AVX2 kernels. Every `unsafe` block's only obligation is the `avx2` (and
/// `popcnt`) target features, guaranteed by construction: these functions
/// are reachable only through the dispatch tables, which select them only
/// when [`detected`] confirmed the features at runtime.
#[cfg(target_arch = "x86_64")]
mod avx2 {
    use super::SIGN_LUT4;
    use std::arch::x86_64::*;

    #[allow(unsafe_code)]
    pub(super) fn xor_popcount(a: &[u64], b: &[u64]) -> u64 {
        // SAFETY: only dispatched on hosts where avx2+popcnt are detected.
        unsafe { xor_popcount_impl(a, b) }
    }

    #[allow(unsafe_code)]
    pub(super) fn xor_popcount_masked(a: &[u64], b: &[u64], mask: &[u64]) -> u64 {
        // SAFETY: only dispatched on hosts where avx2+popcnt are detected.
        unsafe { xor_popcount_masked_impl(a, b, mask) }
    }

    #[allow(unsafe_code)]
    pub(super) fn add_signs(acc: &mut [f64], words: &[u64]) {
        // SAFETY: only dispatched on hosts where avx2+popcnt are detected.
        unsafe { add_signs_impl(acc, words) }
    }

    #[allow(unsafe_code)]
    pub(super) fn dot_panel<const B: usize>(q: &[f64], panel: &[f64]) -> Option<[f64; B]> {
        let mut out = [0.0f64; B];
        // SAFETY: only dispatched on hosts where avx2+popcnt are detected.
        unsafe {
            match B {
                8 => out.copy_from_slice(&dot8_impl(q, panel)),
                4 => out.copy_from_slice(&dot4_impl(q, panel)),
                2 => out.copy_from_slice(&dot2_impl(q, panel)),
                _ => return None,
            }
        }
        Some(out)
    }

    /// Popcount of each byte of `v` via the classic nibble-LUT `pshufb`
    /// (counts per byte, summed into the four 64-bit lanes by `psadbw`).
    ///
    /// Must carry `target_feature(avx2)` itself: without it the intrinsics
    /// are compiled for the baseline target whenever the call is not
    /// inlined, and LLVM legalizes the 256-bit ops into a scalar expansion
    /// an order of magnitude slower than the plain `count_ones` loop.
    // SAFETY: `unsafe` is solely the `target_feature` contract — callers
    // must reach this only after runtime detection confirmed `avx2`
    // (the dispatch tables above are the only callers). All pointer
    // arithmetic stays within the argument slices; tails use safe indexing.
    #[allow(unsafe_code)]
    #[inline]
    #[target_feature(enable = "avx2")]
    unsafe fn popcount_bytes(v: __m256i) -> __m256i {
        let lut = _mm256_setr_epi8(
            0, 1, 1, 2, 1, 2, 2, 3, 1, 2, 2, 3, 2, 3, 3, 4, 0, 1, 1, 2, 1, 2, 2, 3, 1, 2, 2, 3, 2,
            3, 3, 4,
        );
        let low_mask = _mm256_set1_epi8(0x0f);
        let lo = _mm256_and_si256(v, low_mask);
        let hi = _mm256_and_si256(_mm256_srli_epi16::<4>(v), low_mask);
        let counts = _mm256_add_epi8(_mm256_shuffle_epi8(lut, lo), _mm256_shuffle_epi8(lut, hi));
        _mm256_sad_epu8(counts, _mm256_setzero_si256())
    }

    // SAFETY: `unsafe` is solely the `target_feature` contract — callers
    // must reach this only after runtime detection confirmed `avx2`
    // (the dispatch tables above are the only callers). All pointer
    // arithmetic stays within the argument slices; tails use safe indexing.
    #[allow(unsafe_code)]
    #[inline]
    #[target_feature(enable = "avx2")]
    unsafe fn horizontal_sum_u64(v: __m256i) -> u64 {
        let mut lanes = [0u64; 4];
        _mm256_storeu_si256(lanes.as_mut_ptr() as *mut __m256i, v);
        lanes.iter().sum()
    }

    // SAFETY: `unsafe` is solely the `target_feature` contract — callers
    // must reach this only after runtime detection confirmed `avx2,popcnt`
    // (the dispatch tables above are the only callers). All pointer
    // arithmetic stays within the argument slices; tails use safe indexing.
    #[allow(unsafe_code)]
    #[target_feature(enable = "avx2,popcnt")]
    unsafe fn xor_popcount_impl(a: &[u64], b: &[u64]) -> u64 {
        let blocks = a.len() / 4;
        let mut total = _mm256_setzero_si256();
        for blk in 0..blocks {
            let pa = _mm256_loadu_si256(a.as_ptr().add(blk * 4) as *const __m256i);
            let pb = _mm256_loadu_si256(b.as_ptr().add(blk * 4) as *const __m256i);
            total = _mm256_add_epi64(total, popcount_bytes(_mm256_xor_si256(pa, pb)));
        }
        let mut count = horizontal_sum_u64(total);
        for i in blocks * 4..a.len() {
            count += (a[i] ^ b[i]).count_ones() as u64;
        }
        count
    }

    // SAFETY: `unsafe` is solely the `target_feature` contract — callers
    // must reach this only after runtime detection confirmed `avx2,popcnt`
    // (the dispatch tables above are the only callers). All pointer
    // arithmetic stays within the argument slices; tails use safe indexing.
    #[allow(unsafe_code)]
    #[target_feature(enable = "avx2,popcnt")]
    unsafe fn xor_popcount_masked_impl(a: &[u64], b: &[u64], mask: &[u64]) -> u64 {
        let blocks = a.len() / 4;
        let mut total = _mm256_setzero_si256();
        for blk in 0..blocks {
            let pa = _mm256_loadu_si256(a.as_ptr().add(blk * 4) as *const __m256i);
            let pb = _mm256_loadu_si256(b.as_ptr().add(blk * 4) as *const __m256i);
            let pm = _mm256_loadu_si256(mask.as_ptr().add(blk * 4) as *const __m256i);
            let masked = _mm256_and_si256(_mm256_xor_si256(pa, pb), pm);
            total = _mm256_add_epi64(total, popcount_bytes(masked));
        }
        let mut count = horizontal_sum_u64(total);
        for i in blocks * 4..a.len() {
            count += ((a[i] ^ b[i]) & mask[i]).count_ones() as u64;
        }
        count
    }

    // SAFETY: `unsafe` is solely the `target_feature` contract — callers
    // must reach this only after runtime detection confirmed `avx2`
    // (the dispatch tables above are the only callers). All pointer
    // arithmetic stays within the argument slices; tails use safe indexing.
    #[allow(unsafe_code)]
    #[target_feature(enable = "avx2")]
    unsafe fn add_signs_impl(acc: &mut [f64], words: &[u64]) {
        let cols = acc.len();
        let chunks = cols / 4;
        for i in 0..chunks {
            // Columns 4i..4i+4 share one nibble (64 % 4 == 0, so a nibble
            // never straddles a word boundary).
            let bit = i * 4;
            let nibble = ((words[bit / 64] >> (bit % 64)) & 0xf) as usize;
            let slots = acc.as_mut_ptr().add(bit);
            let sum = _mm256_add_pd(
                _mm256_loadu_pd(slots),
                _mm256_loadu_pd(SIGN_LUT4[nibble].as_ptr()),
            );
            _mm256_storeu_pd(slots, sum);
        }
        for c in chunks * 4..cols {
            let bit = (words[c / 64] >> (c % 64)) & 1;
            acc[c] += 1.0 - 2.0 * bit as f64;
        }
    }

    // SAFETY: `unsafe` is solely the `target_feature` contract — callers
    // must reach this only after runtime detection confirmed `avx2`
    // (the dispatch tables above are the only callers). All pointer
    // arithmetic stays within the argument slices; tails use safe indexing.
    #[allow(unsafe_code)]
    #[target_feature(enable = "avx2")]
    unsafe fn dot8_impl(q: &[f64], panel: &[f64]) -> [f64; 8] {
        let n = q.len().min(panel.len() / 8);
        let mut acc0 = _mm256_setzero_pd();
        let mut acc1 = _mm256_setzero_pd();
        for i in 0..n {
            let qv = _mm256_set1_pd(*q.get_unchecked(i));
            let base = panel.as_ptr().add(i * 8);
            acc0 = _mm256_add_pd(acc0, _mm256_mul_pd(qv, _mm256_loadu_pd(base)));
            acc1 = _mm256_add_pd(acc1, _mm256_mul_pd(qv, _mm256_loadu_pd(base.add(4))));
        }
        let mut out = [0.0f64; 8];
        _mm256_storeu_pd(out.as_mut_ptr(), acc0);
        _mm256_storeu_pd(out.as_mut_ptr().add(4), acc1);
        out
    }

    // SAFETY: `unsafe` is solely the `target_feature` contract — callers
    // must reach this only after runtime detection confirmed `avx2`
    // (the dispatch tables above are the only callers). All pointer
    // arithmetic stays within the argument slices; tails use safe indexing.
    #[allow(unsafe_code)]
    #[target_feature(enable = "avx2")]
    unsafe fn dot4_impl(q: &[f64], panel: &[f64]) -> [f64; 4] {
        let n = q.len().min(panel.len() / 4);
        let mut acc = _mm256_setzero_pd();
        for i in 0..n {
            let qv = _mm256_set1_pd(*q.get_unchecked(i));
            let lanes = _mm256_loadu_pd(panel.as_ptr().add(i * 4));
            acc = _mm256_add_pd(acc, _mm256_mul_pd(qv, lanes));
        }
        let mut out = [0.0f64; 4];
        _mm256_storeu_pd(out.as_mut_ptr(), acc);
        out
    }

    // SAFETY: `unsafe` is solely the `target_feature` contract — callers
    // must reach this only after runtime detection confirmed `avx2`
    // (the dispatch tables above are the only callers). All pointer
    // arithmetic stays within the argument slices; tails use safe indexing.
    #[allow(unsafe_code)]
    #[target_feature(enable = "avx2")]
    unsafe fn dot2_impl(q: &[f64], panel: &[f64]) -> [f64; 2] {
        let n = q.len().min(panel.len() / 2);
        let mut acc = _mm_setzero_pd();
        for i in 0..n {
            let qv = _mm_set1_pd(*q.get_unchecked(i));
            let lanes = _mm_loadu_pd(panel.as_ptr().add(i * 2));
            acc = _mm_add_pd(acc, _mm_mul_pd(qv, lanes));
        }
        let mut out = [0.0f64; 2];
        _mm_storeu_pd(out.as_mut_ptr(), acc);
        out
    }
}

/// AVX-512 kernels for the XOR/popcount family: 512-bit lanes with the
/// native per-64-bit-lane popcount of `avx512vpopcntdq`, replacing the
/// AVX2 `pshufb` nibble LUT. Popcounts are exact integers, so the counts
/// are trivially bit-identical to the scalar oracle. Same safety argument
/// as `avx2`: reachable only through the dispatch tables after runtime
/// detection confirmed `avx512f` + `avx512vpopcntdq`. The `f64` panels and
/// `add_signs` intentionally stay on the AVX2 kernels — panel widths are
/// at most 4 `f64` lanes (256 bits), so wider registers buy nothing and
/// the accumulation-order contract is already satisfied there.
#[cfg(target_arch = "x86_64")]
mod avx512 {
    use std::arch::x86_64::*;

    #[allow(unsafe_code)]
    pub(super) fn xor_popcount(a: &[u64], b: &[u64]) -> u64 {
        // SAFETY: only dispatched on hosts where avx512f+avx512vpopcntdq
        // are detected.
        unsafe { xor_popcount_impl(a, b) }
    }

    #[allow(unsafe_code)]
    pub(super) fn xor_popcount_masked(a: &[u64], b: &[u64], mask: &[u64]) -> u64 {
        // SAFETY: only dispatched on hosts where avx512f+avx512vpopcntdq
        // are detected.
        unsafe { xor_popcount_masked_impl(a, b, mask) }
    }

    /// Same `target_feature` obligation as the AVX2 helpers: without it a
    /// non-inlined call compiles the 512-bit ops for the baseline target
    /// and LLVM legalizes them into a slow scalar expansion.
    // SAFETY: `unsafe` is solely the `target_feature` contract — callers
    // must reach this only after runtime detection confirmed `avx512f`
    // (the dispatch tables above are the only callers). All pointer
    // arithmetic stays within the argument slices; tails use safe indexing.
    #[allow(unsafe_code)]
    #[inline]
    #[target_feature(enable = "avx512f")]
    unsafe fn horizontal_sum_u64(v: __m512i) -> u64 {
        let mut lanes = [0u64; 8];
        _mm512_storeu_si512(lanes.as_mut_ptr() as *mut _, v);
        lanes.iter().sum()
    }

    // SAFETY: `unsafe` is solely the `target_feature` contract — callers
    // must reach this only after runtime detection confirmed `avx512f,avx512vpopcntdq,popcnt`
    // (the dispatch tables above are the only callers). All pointer
    // arithmetic stays within the argument slices; tails use safe indexing.
    #[allow(unsafe_code)]
    #[target_feature(enable = "avx512f,avx512vpopcntdq,popcnt")]
    unsafe fn xor_popcount_impl(a: &[u64], b: &[u64]) -> u64 {
        let blocks = a.len() / 8;
        let mut total = _mm512_setzero_si512();
        for blk in 0..blocks {
            let pa = _mm512_loadu_si512(a.as_ptr().add(blk * 8) as *const _);
            let pb = _mm512_loadu_si512(b.as_ptr().add(blk * 8) as *const _);
            total = _mm512_add_epi64(total, _mm512_popcnt_epi64(_mm512_xor_si512(pa, pb)));
        }
        let mut count = horizontal_sum_u64(total);
        for i in blocks * 8..a.len() {
            count += (a[i] ^ b[i]).count_ones() as u64;
        }
        count
    }

    // SAFETY: `unsafe` is solely the `target_feature` contract — callers
    // must reach this only after runtime detection confirmed `avx512f,avx512vpopcntdq,popcnt`
    // (the dispatch tables above are the only callers). All pointer
    // arithmetic stays within the argument slices; tails use safe indexing.
    #[allow(unsafe_code)]
    #[target_feature(enable = "avx512f,avx512vpopcntdq,popcnt")]
    unsafe fn xor_popcount_masked_impl(a: &[u64], b: &[u64], mask: &[u64]) -> u64 {
        let blocks = a.len() / 8;
        let mut total = _mm512_setzero_si512();
        for blk in 0..blocks {
            let pa = _mm512_loadu_si512(a.as_ptr().add(blk * 8) as *const _);
            let pb = _mm512_loadu_si512(b.as_ptr().add(blk * 8) as *const _);
            let pm = _mm512_loadu_si512(mask.as_ptr().add(blk * 8) as *const _);
            let masked = _mm512_and_si512(_mm512_xor_si512(pa, pb), pm);
            total = _mm512_add_epi64(total, _mm512_popcnt_epi64(masked));
        }
        let mut count = horizontal_sum_u64(total);
        for i in blocks * 8..a.len() {
            count += ((a[i] ^ b[i]) & mask[i]).count_ones() as u64;
        }
        count
    }
}

/// NEON kernels, mirroring the AVX2 set. Same safety argument: reachable
/// only through the dispatch tables after runtime detection.
#[cfg(target_arch = "aarch64")]
mod neon {
    use super::SIGN_LUT4;
    use std::arch::aarch64::*;

    #[allow(unsafe_code)]
    pub(super) fn xor_popcount(a: &[u64], b: &[u64]) -> u64 {
        // SAFETY: only dispatched on hosts where neon is detected.
        unsafe { xor_popcount_impl(a, b) }
    }

    #[allow(unsafe_code)]
    pub(super) fn xor_popcount_masked(a: &[u64], b: &[u64], mask: &[u64]) -> u64 {
        // SAFETY: only dispatched on hosts where neon is detected.
        unsafe { xor_popcount_masked_impl(a, b, mask) }
    }

    #[allow(unsafe_code)]
    pub(super) fn add_signs(acc: &mut [f64], words: &[u64]) {
        // SAFETY: only dispatched on hosts where neon is detected.
        unsafe { add_signs_impl(acc, words) }
    }

    #[allow(unsafe_code)]
    pub(super) fn dot_panel<const B: usize>(q: &[f64], panel: &[f64]) -> Option<[f64; B]> {
        let mut out = [0.0f64; B];
        // SAFETY: only dispatched on hosts where neon is detected.
        unsafe {
            match B {
                8 => out.copy_from_slice(&dot8_impl(q, panel)),
                4 => out.copy_from_slice(&dot4_impl(q, panel)),
                2 => out.copy_from_slice(&dot2_impl(q, panel)),
                _ => return None,
            }
        }
        Some(out)
    }

    // SAFETY: `unsafe` is solely the `target_feature` contract — callers
    // must reach this only after runtime detection confirmed `neon`
    // (the dispatch tables above are the only callers). All pointer
    // arithmetic stays within the argument slices; tails use safe indexing.
    #[allow(unsafe_code)]
    #[target_feature(enable = "neon")]
    unsafe fn xor_popcount_impl(a: &[u64], b: &[u64]) -> u64 {
        let blocks = a.len() / 2;
        let mut count: u64 = 0;
        for blk in 0..blocks {
            let va = vld1q_u64(a.as_ptr().add(blk * 2));
            let vb = vld1q_u64(b.as_ptr().add(blk * 2));
            let bytes = vcntq_u8(vreinterpretq_u8_u64(veorq_u64(va, vb)));
            // 16 byte-counts of at most 8 each: the horizontal sum fits u8.
            count += vaddvq_u8(bytes) as u64;
        }
        for i in blocks * 2..a.len() {
            count += (a[i] ^ b[i]).count_ones() as u64;
        }
        count
    }

    // SAFETY: `unsafe` is solely the `target_feature` contract — callers
    // must reach this only after runtime detection confirmed `neon`
    // (the dispatch tables above are the only callers). All pointer
    // arithmetic stays within the argument slices; tails use safe indexing.
    #[allow(unsafe_code)]
    #[target_feature(enable = "neon")]
    unsafe fn xor_popcount_masked_impl(a: &[u64], b: &[u64], mask: &[u64]) -> u64 {
        let blocks = a.len() / 2;
        let mut count: u64 = 0;
        for blk in 0..blocks {
            let va = vld1q_u64(a.as_ptr().add(blk * 2));
            let vb = vld1q_u64(b.as_ptr().add(blk * 2));
            let vm = vld1q_u64(mask.as_ptr().add(blk * 2));
            let masked = vandq_u64(veorq_u64(va, vb), vm);
            count += vaddvq_u8(vcntq_u8(vreinterpretq_u8_u64(masked))) as u64;
        }
        for i in blocks * 2..a.len() {
            count += ((a[i] ^ b[i]) & mask[i]).count_ones() as u64;
        }
        count
    }

    // SAFETY: `unsafe` is solely the `target_feature` contract — callers
    // must reach this only after runtime detection confirmed `neon`
    // (the dispatch tables above are the only callers). All pointer
    // arithmetic stays within the argument slices; tails use safe indexing.
    #[allow(unsafe_code)]
    #[target_feature(enable = "neon")]
    unsafe fn add_signs_impl(acc: &mut [f64], words: &[u64]) {
        let cols = acc.len();
        let chunks = cols / 4;
        for i in 0..chunks {
            let bit = i * 4;
            let nibble = ((words[bit / 64] >> (bit % 64)) & 0xf) as usize;
            let signs = SIGN_LUT4[nibble].as_ptr();
            let slots = acc.as_mut_ptr().add(bit);
            vst1q_f64(slots, vaddq_f64(vld1q_f64(slots), vld1q_f64(signs)));
            vst1q_f64(
                slots.add(2),
                vaddq_f64(vld1q_f64(slots.add(2)), vld1q_f64(signs.add(2))),
            );
        }
        for c in chunks * 4..cols {
            let bit = (words[c / 64] >> (c % 64)) & 1;
            acc[c] += 1.0 - 2.0 * bit as f64;
        }
    }

    // SAFETY: `unsafe` is solely the `target_feature` contract — callers
    // must reach this only after runtime detection confirmed `neon`
    // (the dispatch tables above are the only callers). All pointer
    // arithmetic stays within the argument slices; tails use safe indexing.
    #[allow(unsafe_code)]
    #[target_feature(enable = "neon")]
    unsafe fn dot8_impl(q: &[f64], panel: &[f64]) -> [f64; 8] {
        let n = q.len().min(panel.len() / 8);
        let mut acc = [vdupq_n_f64(0.0); 4];
        for i in 0..n {
            let qv = vdupq_n_f64(*q.get_unchecked(i));
            let base = panel.as_ptr().add(i * 8);
            for (k, lane) in acc.iter_mut().enumerate() {
                *lane = vaddq_f64(*lane, vmulq_f64(qv, vld1q_f64(base.add(k * 2))));
            }
        }
        let mut out = [0.0f64; 8];
        for (k, lane) in acc.iter().enumerate() {
            vst1q_f64(out.as_mut_ptr().add(k * 2), *lane);
        }
        out
    }

    // SAFETY: `unsafe` is solely the `target_feature` contract — callers
    // must reach this only after runtime detection confirmed `neon`
    // (the dispatch tables above are the only callers). All pointer
    // arithmetic stays within the argument slices; tails use safe indexing.
    #[allow(unsafe_code)]
    #[target_feature(enable = "neon")]
    unsafe fn dot4_impl(q: &[f64], panel: &[f64]) -> [f64; 4] {
        let n = q.len().min(panel.len() / 4);
        let mut acc0 = vdupq_n_f64(0.0);
        let mut acc1 = vdupq_n_f64(0.0);
        for i in 0..n {
            let qv = vdupq_n_f64(*q.get_unchecked(i));
            let base = panel.as_ptr().add(i * 4);
            acc0 = vaddq_f64(acc0, vmulq_f64(qv, vld1q_f64(base)));
            acc1 = vaddq_f64(acc1, vmulq_f64(qv, vld1q_f64(base.add(2))));
        }
        let mut out = [0.0f64; 4];
        vst1q_f64(out.as_mut_ptr(), acc0);
        vst1q_f64(out.as_mut_ptr().add(2), acc1);
        out
    }

    // SAFETY: `unsafe` is solely the `target_feature` contract — callers
    // must reach this only after runtime detection confirmed `neon`
    // (the dispatch tables above are the only callers). All pointer
    // arithmetic stays within the argument slices; tails use safe indexing.
    #[allow(unsafe_code)]
    #[target_feature(enable = "neon")]
    unsafe fn dot2_impl(q: &[f64], panel: &[f64]) -> [f64; 2] {
        let n = q.len().min(panel.len() / 2);
        let mut acc = vdupq_n_f64(0.0);
        for i in 0..n {
            let qv = vdupq_n_f64(*q.get_unchecked(i));
            acc = vaddq_f64(acc, vmulq_f64(qv, vld1q_f64(panel.as_ptr().add(i * 2))));
        }
        let mut out = [0.0f64; 2];
        vst1q_f64(out.as_mut_ptr(), acc);
        out
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn env_resolution_is_pure_and_forced() {
        assert_eq!(resolve(Some("scalar")), KernelBackend::Scalar);
        assert_eq!(resolve(Some(" scalar ")), KernelBackend::Scalar);
        // Forcing a SIMD backend falls back to scalar when unsupported,
        // returns it verbatim when supported.
        for (name, backend) in [
            ("avx2", KernelBackend::Avx2),
            ("avx512", KernelBackend::Avx512),
            ("neon", KernelBackend::Neon),
        ] {
            let resolved = resolve(Some(name));
            if supported(backend) {
                assert_eq!(resolved, backend);
            } else {
                assert_eq!(resolved, KernelBackend::Scalar);
            }
        }
        // Unset / unknown defer to detection.
        assert_eq!(resolve(None), detected());
        assert_eq!(resolve(Some("vector9000")), detected());
    }

    #[test]
    fn backend_names_round_trip() {
        for b in [
            KernelBackend::Scalar,
            KernelBackend::Avx2,
            KernelBackend::Avx512,
            KernelBackend::Neon,
        ] {
            assert_eq!(resolve(Some(b.name())) == b, supported(b));
            assert_eq!(b.to_string(), b.name());
        }
        assert!(!KernelBackend::Scalar.is_simd());
        assert!(KernelBackend::Avx2.is_simd() && KernelBackend::Neon.is_simd());
        assert!(KernelBackend::Avx512.is_simd());
    }

    #[test]
    fn avx512_support_implies_avx2_support() {
        // The AVX-512 backend delegates panels and add_signs to AVX2, so
        // the feature lattice must be monotone.
        if supported(KernelBackend::Avx512) {
            assert!(supported(KernelBackend::Avx2));
            assert_eq!(detected(), KernelBackend::Avx512);
        }
    }

    #[test]
    fn unsupported_backend_is_rejected() {
        assert!(supported(KernelBackend::Scalar));
        for b in [
            KernelBackend::Avx2,
            KernelBackend::Avx512,
            KernelBackend::Neon,
        ] {
            if !supported(b) {
                assert_eq!(
                    set_backend(b),
                    Err(HdcError::UnsupportedBackend {
                        requested: b.name()
                    })
                );
            }
        }
        // The detected backend is always settable.
        set_backend(detected()).unwrap();
    }

    #[test]
    fn sign_lut_matches_bit_convention() {
        for (n, entry) in SIGN_LUT4.iter().enumerate() {
            for (k, &v) in entry.iter().enumerate() {
                let expect = if (n >> k) & 1 != 0 { -1.0 } else { 1.0 };
                assert_eq!(v, expect);
            }
        }
    }

    #[test]
    fn scalar_popcount_handles_tails() {
        let a = [u64::MAX, 0, 0b1011, u64::MAX, 0xF0F0];
        let b = [0u64, 0, 0b0001, u64::MAX, 0x0F0F];
        // Per-word distances: 64, 0, 2, 0, 16.
        assert_eq!(scalar::xor_popcount(&a, &b), 82, "blocked path + tail");
        let mask = [u64::MAX; 5];
        assert_eq!(
            scalar::xor_popcount_masked(&a, &b, &mask),
            scalar::xor_popcount(&a, &b)
        );
    }
}
