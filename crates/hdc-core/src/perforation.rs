//! Reduction perforation descriptors (the `red_perf` primitive, paper §4.2).
//!
//! A [`Perforation`] describes which elements along the reduction axis of a
//! hypervector operation are actually visited: a contiguous *segment*
//! (`begin..end`), a *stride*, or both. Reductions annotated with a
//! perforation skip the remaining elements, trading accuracy for speed.

use crate::error::{HdcError, Result};

/// Description of a (possibly) perforated reduction.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub struct Perforation {
    /// First element (inclusive) of the reduction range.
    pub begin: usize,
    /// Last element (exclusive) of the reduction range. `usize::MAX` means
    /// "up to the full dimension", so the default descriptor is valid for any
    /// hypervector length.
    pub end: usize,
    /// Stride at which elements in `[begin, end)` are sampled.
    pub stride: usize,
}

impl Perforation {
    /// The identity descriptor: visit every element.
    pub const NONE: Perforation = Perforation {
        begin: 0,
        end: usize::MAX,
        stride: 1,
    };

    /// Create a descriptor with an explicit range and stride, mirroring the
    /// arguments of `__hetero_hdc_red_perf(result, begin, end, stride)`.
    pub fn new(begin: usize, end: usize, stride: usize) -> Self {
        Perforation { begin, end, stride }
    }

    /// Visit only the contiguous sub-range `[begin, end)` (segmented
    /// reduction).
    pub fn segment(begin: usize, end: usize) -> Self {
        Perforation {
            begin,
            end,
            stride: 1,
        }
    }

    /// Visit every `stride`-th element of `[begin, end)` (strided reduction).
    pub fn strided(begin: usize, end: usize, stride: usize) -> Self {
        Perforation { begin, end, stride }
    }

    /// Whether this descriptor visits every element of a vector of length
    /// `dimension`.
    pub fn is_dense_over(&self, dimension: usize) -> bool {
        self.begin == 0 && self.stride == 1 && self.end_clamped(dimension) == dimension
    }

    /// The effective exclusive end of the range for a vector of length
    /// `dimension`.
    pub fn end_clamped(&self, dimension: usize) -> usize {
        self.end.min(dimension)
    }

    /// Validate the descriptor against a reduction of length `dimension`.
    ///
    /// # Errors
    ///
    /// Returns [`HdcError::InvalidPerforation`] if the stride is zero, the
    /// range is empty, or `begin` lies beyond the dimension.
    pub fn validate(&self, dimension: usize) -> Result<()> {
        if self.stride == 0 {
            return Err(HdcError::InvalidPerforation(
                "stride must be non-zero".into(),
            ));
        }
        if dimension == 0 {
            return Ok(());
        }
        if self.begin >= dimension {
            return Err(HdcError::InvalidPerforation(format!(
                "begin {} is out of range for dimension {}",
                self.begin, dimension
            )));
        }
        if self.begin >= self.end_clamped(dimension) {
            return Err(HdcError::InvalidPerforation(format!(
                "empty range [{}, {})",
                self.begin,
                self.end_clamped(dimension)
            )));
        }
        Ok(())
    }

    /// Iterator over the visited indices for a vector of length `dimension`.
    pub fn indices(&self, dimension: usize) -> impl Iterator<Item = usize> + '_ {
        let end = self.end_clamped(dimension);
        (self.begin..end).step_by(self.stride.max(1))
    }

    /// Number of elements visited for a vector of length `dimension`.
    pub fn visited_count(&self, dimension: usize) -> usize {
        let end = self.end_clamped(dimension);
        if self.begin >= end || self.stride == 0 {
            return 0;
        }
        (end - self.begin).div_ceil(self.stride)
    }

    /// Fraction of elements visited, used to rescale `matmul` / `l2norm`
    /// results (the paper scales those but not similarity metrics).
    pub fn visited_fraction(&self, dimension: usize) -> f64 {
        if dimension == 0 {
            return 1.0;
        }
        self.visited_count(dimension) as f64 / dimension as f64
    }
}

impl Default for Perforation {
    fn default() -> Self {
        Perforation::NONE
    }
}

impl std::fmt::Display for Perforation {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        if *self == Perforation::NONE {
            write!(f, "none")
        } else if self.end == usize::MAX {
            write!(f, "[{}, D) stride {}", self.begin, self.stride)
        } else {
            write!(f, "[{}, {}) stride {}", self.begin, self.end, self.stride)
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn none_is_dense() {
        assert!(Perforation::NONE.is_dense_over(2048));
        assert_eq!(Perforation::NONE.visited_count(2048), 2048);
        assert_eq!(Perforation::NONE.visited_fraction(2048), 1.0);
    }

    #[test]
    fn segment_counts() {
        let p = Perforation::segment(0, 1024);
        assert_eq!(p.visited_count(2048), 1024);
        assert_eq!(p.visited_fraction(2048), 0.5);
        assert!(!p.is_dense_over(2048));
        assert!(p.is_dense_over(1024));
    }

    #[test]
    fn strided_counts() {
        let p = Perforation::strided(0, 2048, 2);
        assert_eq!(p.visited_count(2048), 1024);
        let p4 = Perforation::strided(0, 2048, 4);
        assert_eq!(p4.visited_count(2048), 512);
        let both = Perforation::strided(0, 1024, 2);
        assert_eq!(both.visited_count(2048), 512);
        assert_eq!(both.visited_fraction(2048), 0.25);
    }

    #[test]
    fn odd_lengths_round_up() {
        let p = Perforation::strided(0, usize::MAX, 2);
        assert_eq!(p.visited_count(5), 3);
        assert_eq!(p.indices(5).collect::<Vec<_>>(), vec![0, 2, 4]);
    }

    #[test]
    fn validate_rejects_bad_descriptors() {
        assert!(Perforation::new(0, 10, 0).validate(10).is_err());
        assert!(Perforation::new(10, 20, 1).validate(10).is_err());
        assert!(Perforation::new(5, 5, 1).validate(10).is_err());
        assert!(Perforation::new(0, 10, 1).validate(10).is_ok());
        assert!(Perforation::NONE.validate(0).is_ok());
    }

    #[test]
    fn display_forms() {
        assert_eq!(Perforation::NONE.to_string(), "none");
        assert_eq!(
            Perforation::segment(0, 1024).to_string(),
            "[0, 1024) stride 1"
        );
        assert_eq!(
            Perforation::strided(0, usize::MAX, 2).to_string(),
            "[0, D) stride 2"
        );
    }

    #[test]
    fn indices_respect_begin() {
        let p = Perforation::strided(3, 11, 3);
        assert_eq!(p.indices(16).collect::<Vec<_>>(), vec![3, 6, 9]);
    }
}
