//! The [`Element`] trait abstracting over the scalar types hypervectors may
//! hold.
//!
//! The HDC++ primitives of the paper are parameterised by an element type
//! `T`, "a signed scalar type (any of `int8_t`, `int16_t`, `int32_t`,
//! `int64_t`, `float`, or `double`)". This module provides the matching Rust
//! abstraction.

use std::fmt::Debug;
use std::ops::{Add, Div, Mul, Neg, Sub};

/// Identifier for the concrete element type held by a hypervector, used by
/// the IR type system and the binarization pass.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub enum ElementKind {
    /// 8-bit signed integer.
    I8,
    /// 16-bit signed integer.
    I16,
    /// 32-bit signed integer.
    I32,
    /// 64-bit signed integer.
    I64,
    /// 32-bit IEEE float.
    F32,
    /// 64-bit IEEE float.
    F64,
    /// Single-bit bipolar element (result of automatic binarization).
    Bit,
}

impl ElementKind {
    /// Width of one element in bits.
    pub fn bit_width(self) -> usize {
        match self {
            ElementKind::I8 => 8,
            ElementKind::I16 => 16,
            ElementKind::I32 => 32,
            ElementKind::I64 => 64,
            ElementKind::F32 => 32,
            ElementKind::F64 => 64,
            ElementKind::Bit => 1,
        }
    }

    /// Whether the element kind is a floating point type.
    pub fn is_float(self) -> bool {
        matches!(self, ElementKind::F32 | ElementKind::F64)
    }

    /// Size in bytes of `dimension` elements of this kind (bit elements are
    /// packed into 64-bit words).
    pub fn storage_bytes(self, dimension: usize) -> usize {
        match self {
            ElementKind::Bit => dimension.div_ceil(64) * 8,
            other => dimension * other.bit_width() / 8,
        }
    }
}

impl std::fmt::Display for ElementKind {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        let s = match self {
            ElementKind::I8 => "i8",
            ElementKind::I16 => "i16",
            ElementKind::I32 => "i32",
            ElementKind::I64 => "i64",
            ElementKind::F32 => "f32",
            ElementKind::F64 => "f64",
            ElementKind::Bit => "bit",
        };
        f.write_str(s)
    }
}

/// Scalar types usable as hypervector elements.
///
/// The trait deliberately mirrors what the HDC primitives need and nothing
/// more: ring arithmetic, ordering, conversion to/from `f64` (used by the
/// reductions, which always accumulate in `f64`), and a canonical
/// [`ElementKind`].
pub trait Element:
    Copy
    + Debug
    + PartialOrd
    + PartialEq
    + Send
    + Sync
    + Add<Output = Self>
    + Sub<Output = Self>
    + Mul<Output = Self>
    + Div<Output = Self>
    + Neg<Output = Self>
    + 'static
{
    /// The additive identity.
    const ZERO: Self;
    /// The multiplicative identity.
    const ONE: Self;
    /// The [`ElementKind`] tag for this type.
    const KIND: ElementKind;

    /// Lossy conversion from `f64` (saturating for integers).
    fn from_f64(value: f64) -> Self;
    /// Conversion to `f64` used by reductions.
    fn to_f64(self) -> f64;

    /// Map the element to `+1` or `-1` depending on its sign.
    ///
    /// Zero maps to `+1`, matching the convention used by the paper's
    /// `hdc_sign` primitive (and by binarized learning in general, where a
    /// tie must still commit to one of the two bipolar values).
    fn bipolar_sign(self) -> Self {
        if self.to_f64() < 0.0 {
            -Self::ONE
        } else {
            Self::ONE
        }
    }

    /// Absolute value.
    fn abs_value(self) -> Self {
        if self.to_f64() < 0.0 {
            -self
        } else {
            self
        }
    }

    /// View a slice of this element type as `&[f64]` when the type *is*
    /// `f64` (`None` for every other type).
    ///
    /// This is a safe specialization hook: only the `f64` impl overrides it,
    /// letting the batched kernels hand dense `f64` rows to the SIMD panel
    /// kernels without a per-element `to_f64` conversion or any transmute.
    fn as_f64_slice(_slice: &[Self]) -> Option<&[f64]> {
        None
    }
}

macro_rules! impl_element_int {
    ($ty:ty, $kind:expr) => {
        impl Element for $ty {
            const ZERO: Self = 0;
            const ONE: Self = 1;
            const KIND: ElementKind = $kind;

            fn from_f64(value: f64) -> Self {
                if value.is_nan() {
                    0
                } else if value >= <$ty>::MAX as f64 {
                    <$ty>::MAX
                } else if value <= <$ty>::MIN as f64 {
                    <$ty>::MIN
                } else {
                    value.round() as $ty
                }
            }

            fn to_f64(self) -> f64 {
                self as f64
            }
        }
    };
}

macro_rules! impl_element_float {
    ($ty:ty, $kind:expr) => {
        impl Element for $ty {
            const ZERO: Self = 0.0;
            const ONE: Self = 1.0;
            const KIND: ElementKind = $kind;

            fn from_f64(value: f64) -> Self {
                value as $ty
            }

            fn to_f64(self) -> f64 {
                self as f64
            }
        }
    };
}

impl_element_int!(i8, ElementKind::I8);
impl_element_int!(i16, ElementKind::I16);
impl_element_int!(i32, ElementKind::I32);
impl_element_int!(i64, ElementKind::I64);
impl_element_float!(f32, ElementKind::F32);

impl Element for f64 {
    const ZERO: Self = 0.0;
    const ONE: Self = 1.0;
    const KIND: ElementKind = ElementKind::F64;

    fn from_f64(value: f64) -> Self {
        value
    }

    fn to_f64(self) -> f64 {
        self
    }

    fn as_f64_slice(slice: &[Self]) -> Option<&[f64]> {
        Some(slice)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn element_kind_widths() {
        assert_eq!(ElementKind::I8.bit_width(), 8);
        assert_eq!(ElementKind::I64.bit_width(), 64);
        assert_eq!(ElementKind::F32.bit_width(), 32);
        assert_eq!(ElementKind::Bit.bit_width(), 1);
    }

    #[test]
    fn element_kind_storage_bytes_packs_bits() {
        assert_eq!(ElementKind::Bit.storage_bytes(64), 8);
        assert_eq!(ElementKind::Bit.storage_bytes(65), 16);
        assert_eq!(ElementKind::F32.storage_bytes(10), 40);
        assert_eq!(ElementKind::I8.storage_bytes(10), 10);
    }

    #[test]
    fn saturating_integer_conversion() {
        assert_eq!(i8::from_f64(1e9), i8::MAX);
        assert_eq!(i8::from_f64(-1e9), i8::MIN);
        assert_eq!(i8::from_f64(3.7), 4);
        assert_eq!(i8::from_f64(f64::NAN), 0);
    }

    #[test]
    fn float_roundtrip() {
        assert_eq!(f32::from_f64(2.5).to_f64(), 2.5);
        assert_eq!(f64::from_f64(-7.25), -7.25);
    }

    #[test]
    fn bipolar_sign_convention() {
        assert_eq!(3.0f32.bipolar_sign(), 1.0);
        assert_eq!((-3.0f32).bipolar_sign(), -1.0);
        assert_eq!(0.0f32.bipolar_sign(), 1.0, "zero maps to +1");
        assert_eq!(0i32.bipolar_sign(), 1);
        assert_eq!((-5i64).bipolar_sign(), -1);
    }

    #[test]
    fn abs_value() {
        assert_eq!((-4i32).abs_value(), 4);
        assert_eq!(4.5f64.abs_value(), 4.5);
        assert_eq!((-4.5f32).abs_value(), 4.5);
    }

    #[test]
    fn is_float_flags() {
        assert!(ElementKind::F32.is_float());
        assert!(ElementKind::F64.is_float());
        assert!(!ElementKind::I32.is_float());
        assert!(!ElementKind::Bit.is_float());
    }

    #[test]
    fn as_f64_slice_is_f64_only() {
        let xs = [1.0f64, -2.5, 3.25];
        assert_eq!(f64::as_f64_slice(&xs), Some(&xs[..]));
        assert_eq!(f32::as_f64_slice(&[1.0f32]), None);
        assert_eq!(i32::as_f64_slice(&[1i32]), None);
    }

    #[test]
    fn display_names() {
        assert_eq!(ElementKind::I16.to_string(), "i16");
        assert_eq!(ElementKind::Bit.to_string(), "bit");
    }
}
