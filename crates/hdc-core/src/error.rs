//! Error type shared by the HDC substrate.

use std::fmt;

/// Convenience alias for results produced by this crate.
pub type Result<T> = std::result::Result<T, HdcError>;

/// Errors raised by hypervector and hypermatrix operations.
#[derive(Debug, Clone, PartialEq, Eq)]
#[non_exhaustive]
pub enum HdcError {
    /// Two operands had incompatible dimensions.
    DimensionMismatch {
        /// Dimension expected by the operation.
        expected: usize,
        /// Dimension actually provided.
        actual: usize,
        /// Human-readable description of the operation that failed.
        context: &'static str,
    },
    /// A matrix was constructed from rows of unequal length or with a shape
    /// that does not match the provided data length.
    InvalidShape {
        /// Number of rows requested.
        rows: usize,
        /// Number of columns requested.
        cols: usize,
        /// Length of the backing data.
        len: usize,
    },
    /// An index was out of bounds.
    IndexOutOfBounds {
        /// The offending index.
        index: usize,
        /// The container length.
        len: usize,
    },
    /// A perforation descriptor was invalid for the reduction it annotates.
    InvalidPerforation(String),
    /// An operation received an empty input where at least one element is required.
    EmptyInput(&'static str),
    /// A kernel backend was requested that this host cannot run (missing
    /// CPU features or wrong architecture).
    UnsupportedBackend {
        /// Name of the requested backend (`scalar` / `avx2` / `neon`).
        requested: &'static str,
    },
}

impl fmt::Display for HdcError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            HdcError::DimensionMismatch {
                expected,
                actual,
                context,
            } => write!(
                f,
                "dimension mismatch in {context}: expected {expected}, got {actual}"
            ),
            HdcError::InvalidShape { rows, cols, len } => write!(
                f,
                "invalid shape: {rows}x{cols} does not match data length {len}"
            ),
            HdcError::IndexOutOfBounds { index, len } => {
                write!(f, "index {index} out of bounds for length {len}")
            }
            HdcError::InvalidPerforation(msg) => write!(f, "invalid perforation: {msg}"),
            HdcError::EmptyInput(context) => write!(f, "empty input in {context}"),
            HdcError::UnsupportedBackend { requested } => {
                write!(
                    f,
                    "kernel backend `{requested}` is not supported on this host"
                )
            }
        }
    }
}

impl std::error::Error for HdcError {}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn display_dimension_mismatch() {
        let e = HdcError::DimensionMismatch {
            expected: 4,
            actual: 8,
            context: "matmul",
        };
        assert_eq!(
            e.to_string(),
            "dimension mismatch in matmul: expected 4, got 8"
        );
    }

    #[test]
    fn display_invalid_shape() {
        let e = HdcError::InvalidShape {
            rows: 2,
            cols: 3,
            len: 5,
        };
        assert!(e.to_string().contains("2x3"));
        assert!(e.to_string().contains('5'));
    }

    #[test]
    fn display_index_out_of_bounds() {
        let e = HdcError::IndexOutOfBounds { index: 9, len: 3 };
        assert_eq!(e.to_string(), "index 9 out of bounds for length 3");
    }

    #[test]
    fn error_is_send_sync() {
        fn assert_send_sync<T: Send + Sync>() {}
        assert_send_sync::<HdcError>();
    }
}
