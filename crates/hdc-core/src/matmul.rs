//! Matrix multiplication primitives (`matmul`) with perforation support.
//!
//! `matmul` is the workhorse of random-projection encoding: a feature vector
//! of length `F` multiplied by an `D x F` projection matrix yields a
//! `D`-dimensional encoded hypervector. Following the paper, perforated
//! matmul results *are* rescaled by the fraction of visited elements
//! (unlike the similarity metrics), because their absolute magnitude matters
//! to downstream operations.

use crate::element::Element;
use crate::error::{HdcError, Result};
use crate::hypermatrix::HyperMatrix;
use crate::hypervector::HyperVector;
use crate::perforation::Perforation;
use rayon::prelude::*;

fn check(expected: usize, actual: usize, context: &'static str) -> Result<()> {
    if expected != actual {
        return Err(HdcError::DimensionMismatch {
            expected,
            actual,
            context,
        });
    }
    Ok(())
}

/// Multiply a hypervector by the transpose of a projection hypermatrix:
/// `out[r] = sum_c vector[c] * matrix[r][c]`.
///
/// The projection matrix is `out_dim x in_dim` (each row is one output
/// element's weight vector), matching Listing 1 where a `617`-feature input
/// and a `2048 x 617` matrix produce a `2048`-dimensional encoding.
///
/// When `perforation` restricts the reduction, only the selected input
/// elements are accumulated and the result is divided by the visited
/// fraction.
///
/// # Errors
///
/// Returns a dimension-mismatch error if `vector.dimension() != matrix.cols()`
/// or an invalid-perforation error for a bad descriptor.
pub fn matvec<T: Element>(
    matrix: &HyperMatrix<T>,
    vector: &HyperVector<T>,
    perforation: Perforation,
) -> Result<HyperVector<T>> {
    check(
        matrix.cols(),
        vector.dimension(),
        "matmul (matrix x vector)",
    )?;
    perforation.validate(matrix.cols().max(1))?;
    let scale = 1.0 / perforation.visited_fraction(matrix.cols().max(1));
    let v = vector.as_slice();
    let dense = perforation.is_dense_over(matrix.cols());
    let out: Vec<T> = matrix
        .iter_rows()
        .map(|row| {
            let acc: f64 = if dense {
                row.iter()
                    .zip(v.iter())
                    .map(|(m, x)| m.to_f64() * x.to_f64())
                    .sum()
            } else {
                perforation
                    .indices(row.len())
                    .map(|i| row[i].to_f64() * v[i].to_f64())
                    .sum()
            };
            T::from_f64(acc * if dense { 1.0 } else { scale })
        })
        .collect();
    Ok(HyperVector::from_vec(out))
}

/// Query rows processed together by one [`matmul_batch`] block: each keeps
/// its own `f64` accumulator, so the inner loop runs `MATMUL_QUERY_BLOCK`
/// independent multiply-add chains (instruction-level parallelism a single
/// dependent chain cannot reach) and streams every projection row once per
/// block instead of once per query.
const MATMUL_QUERY_BLOCK: usize = 8;

/// One block of query rows against the whole projection matrix. `B` is a
/// compile-time block width: the block is packed into a column-major `f64`
/// panel ([`crate::batch::pack_panel`]) and each projection row takes one
/// [`crate::batch::dot_panel`] pass over it — the GEMM micro-kernel layout
/// the vectorizer turns into SIMD lanes. Each accumulator still sums the
/// feature axis in ascending order, which keeps every output element
/// bit-identical to the per-sample [`matvec`].
fn matmul_block<T: Element, const B: usize>(
    qrows: &[&[T]],
    matrix: &HyperMatrix<T>,
    dense: bool,
    scale: f64,
    perforation: Perforation,
) -> Vec<Vec<T>> {
    debug_assert_eq!(qrows.len(), B);
    let d = matrix.rows();
    let cols = matrix.cols();
    let panel = crate::batch::pack_panel(qrows, cols);
    let mut out: Vec<Vec<T>> = (0..B).map(|_| Vec::with_capacity(d)).collect();
    for r in 0..d {
        let row = &matrix.row(r).expect("projection row in range")[..cols];
        let acc = crate::batch::dot_panel::<T, B>(row, &panel, dense, perforation);
        for k in 0..B {
            out[k].push(T::from_f64(acc[k] * scale));
        }
    }
    out
}

/// Multiply a batch of row vectors by the transpose of a projection matrix:
/// `out[q][r] = sum_c queries[q][c] * matrix[r][c]`.
///
/// This is the batched form used by `encoding_loop`: a `N x F` query matrix
/// and a `D x F` projection matrix produce an `N x D` encoded matrix.
/// Queries are processed in blocks of `MATMUL_QUERY_BLOCK` (independent
/// accumulator chains, one projection pass per block) and blocks run
/// through the rayon compat layer; every accumulation still walks the
/// feature axis in ascending order, so each output row is bit-identical to
/// [`matvec`] on that query.
///
/// # Errors
///
/// Returns a dimension-mismatch error if `queries.cols() != matrix.cols()`.
pub fn matmul_batch<T: Element>(
    queries: &HyperMatrix<T>,
    matrix: &HyperMatrix<T>,
    perforation: Perforation,
) -> Result<HyperMatrix<T>> {
    check(matrix.cols(), queries.cols(), "matmul (batch)")?;
    perforation.validate(matrix.cols().max(1))?;
    let raw_scale = 1.0 / perforation.visited_fraction(matrix.cols().max(1));
    let dense = perforation.is_dense_over(matrix.cols());
    // `acc * 1.0` is exact, so one unconditional multiply keeps the dense
    // path bit-identical to the unscaled form.
    let scale = if dense { 1.0 } else { raw_scale };
    let n = queries.rows();
    let starts: Vec<usize> = (0..n).step_by(MATMUL_QUERY_BLOCK).collect();
    let blocks: Vec<Vec<Vec<T>>> = starts
        .into_par_iter()
        .map(|start| {
            let end = (start + MATMUL_QUERY_BLOCK).min(n);
            let qrows: Vec<&[T]> = (start..end)
                .map(|i| queries.row(i).expect("query row in range"))
                .collect();
            // Decompose a short tail block into power-of-two sub-blocks so
            // the unrolled kernels cover every width.
            let mut out: Vec<Vec<T>> = Vec::with_capacity(qrows.len());
            let mut off = 0;
            for width in [8usize, 4, 2, 1] {
                while qrows.len() - off >= width {
                    let sub = &qrows[off..off + width];
                    out.extend(match width {
                        8 => matmul_block::<T, 8>(sub, matrix, dense, scale, perforation),
                        4 => matmul_block::<T, 4>(sub, matrix, dense, scale, perforation),
                        2 => matmul_block::<T, 2>(sub, matrix, dense, scale, perforation),
                        _ => matmul_block::<T, 1>(sub, matrix, dense, scale, perforation),
                    });
                    off += width;
                }
            }
            out
        })
        .collect();
    let rows: Vec<HyperVector<T>> = blocks
        .into_iter()
        .flatten()
        .map(HyperVector::from_vec)
        .collect();
    HyperMatrix::from_rows(rows)
}

/// Perforated L2 norm of a hypervector, rescaled by the visited fraction as
/// the paper specifies for `l2norm`.
///
/// # Errors
///
/// Returns an invalid-perforation error for a bad descriptor.
pub fn l2norm_perforated<T: Element>(
    vector: &HyperVector<T>,
    perforation: Perforation,
) -> Result<f64> {
    perforation.validate(vector.dimension().max(1))?;
    if perforation.is_dense_over(vector.dimension()) {
        return Ok(vector.l2norm());
    }
    let scale = 1.0 / perforation.visited_fraction(vector.dimension().max(1));
    let sum_sq: f64 = perforation
        .indices(vector.dimension())
        .map(|i| {
            let v = vector.as_slice()[i].to_f64();
            v * v
        })
        .sum();
    Ok((sum_sq * scale).sqrt())
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn matvec_matches_manual() {
        // 2x3 matrix times length-3 vector
        let m = HyperMatrix::from_flat(2, 3, vec![1.0f32, 2.0, 3.0, 4.0, 5.0, 6.0]).unwrap();
        let v = HyperVector::from_vec(vec![1.0f32, 0.0, -1.0]);
        let out = matvec(&m, &v, Perforation::NONE).unwrap();
        assert_eq!(out.as_slice(), &[-2.0, -2.0]);
    }

    #[test]
    fn matvec_dimension_mismatch() {
        let m = HyperMatrix::<f32>::zeros(2, 3);
        let v = HyperVector::<f32>::zeros(4);
        assert!(matvec(&m, &v, Perforation::NONE).is_err());
    }

    #[test]
    fn matmul_batch_matches_per_row_matvec() {
        let m = HyperMatrix::<f32>::from_fn(8, 5, |r, c| (r * 5 + c) as f32 * 0.1);
        let q = HyperMatrix::<f32>::from_fn(3, 5, |r, c| (r + c) as f32);
        let batch = matmul_batch(&q, &m, Perforation::NONE).unwrap();
        assert_eq!(batch.rows(), 3);
        assert_eq!(batch.cols(), 8);
        for i in 0..3 {
            let single = matvec(&m, &q.row_vector(i).unwrap(), Perforation::NONE).unwrap();
            for j in 0..8 {
                assert!((batch.get(i, j).unwrap() - single.get(j).unwrap()).abs() < 1e-4);
            }
        }
    }

    #[test]
    fn perforated_matmul_is_rescaled() {
        // Constant vectors: perforated + rescaled result should equal the dense result.
        let m = HyperMatrix::from_flat(1, 8, vec![2.0f32; 8]).unwrap();
        let v = HyperVector::from_vec(vec![3.0f32; 8]);
        let dense = matvec(&m, &v, Perforation::NONE).unwrap();
        let strided = matvec(&m, &v, Perforation::strided(0, 8, 2)).unwrap();
        assert_eq!(dense.get(0).unwrap(), 48.0);
        assert_eq!(
            strided.get(0).unwrap(),
            48.0,
            "rescaling restores magnitude"
        );
        let seg = matvec(&m, &v, Perforation::segment(0, 4)).unwrap();
        assert_eq!(seg.get(0).unwrap(), 48.0);
    }

    #[test]
    fn perforated_l2norm_is_rescaled() {
        let v = HyperVector::from_vec(vec![2.0f32; 16]);
        let dense = l2norm_perforated(&v, Perforation::NONE).unwrap();
        let strided = l2norm_perforated(&v, Perforation::strided(0, 16, 4)).unwrap();
        assert!((dense - 8.0).abs() < 1e-9);
        assert!((strided - 8.0).abs() < 1e-9);
    }

    #[test]
    fn integer_matmul_saturates_not_wraps() {
        let m = HyperMatrix::from_flat(1, 2, vec![100i8, 100]).unwrap();
        let v = HyperVector::from_vec(vec![100i8, 100]);
        let out = matvec(&m, &v, Perforation::NONE).unwrap();
        assert_eq!(out.get(0).unwrap(), i8::MAX);
    }

    #[test]
    fn invalid_perforation_rejected() {
        let m = HyperMatrix::<f32>::zeros(2, 4);
        let v = HyperVector::<f32>::zeros(4);
        assert!(matvec(&m, &v, Perforation::new(0, 4, 0)).is_err());
        assert!(l2norm_perforated(&v, Perforation::new(9, 10, 1)).is_err());
    }
}
