//! Bit-packed bipolar hypervectors and hypermatrices.
//!
//! Automatic binarization (paper §4.2) rewrites hypervectors whose elements
//! are known to be ±1 into a 1-bit-per-element representation. On CPUs and
//! GPUs this turns Hamming distance into XOR + popcount over 64-bit words,
//! which is the main source of the speedups in Figure 7's configurations
//! III–VIII. These types are also the native storage format of the digital
//! ASIC and the ReRAM accelerator models.
//!
//! Convention: bit `1` represents the bipolar value `-1`, bit `0` represents
//! `+1`. This makes the all-zero vector the identity for XOR-binding and
//! matches the "sign bit" intuition.

use crate::element::Element;
use crate::error::{HdcError, Result};
use crate::hypermatrix::HyperMatrix;
use crate::hypervector::HyperVector;
use crate::perforation::Perforation;

const WORD_BITS: usize = 64;

/// A bit-packed bipolar hypervector.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct BitVector {
    dimension: usize,
    words: Vec<u64>,
}

impl BitVector {
    /// Create an all `+1` (all bits zero) bit vector.
    pub fn zeros(dimension: usize) -> Self {
        BitVector {
            dimension,
            words: vec![0; dimension.div_ceil(WORD_BITS)],
        }
    }

    /// Build from an iterator of booleans (`true` == `-1`).
    ///
    /// Words are accumulated chunk-wise: the word vector is pre-reserved from
    /// the iterator's size hint (`dimension.div_ceil(64)` words for exact
    /// hints) and each bit is OR-ed in branchlessly, with one word pushed per
    /// 64 bits consumed.
    pub fn from_bits(bits: impl IntoIterator<Item = bool>) -> Self {
        let iter = bits.into_iter();
        let (lower, _) = iter.size_hint();
        let mut words = Vec::with_capacity(lower.div_ceil(WORD_BITS));
        let mut dimension = 0usize;
        let mut current = 0u64;
        let mut offset = 0u32;
        for bit in iter {
            current |= u64::from(bit) << offset;
            offset += 1;
            dimension += 1;
            if offset == WORD_BITS as u32 {
                words.push(current);
                current = 0;
                offset = 0;
            }
        }
        if offset > 0 {
            words.push(current);
        }
        BitVector { dimension, words }
    }

    /// Binarize a slice of elements by sign (negative → bit set), packing a
    /// whole 64-bit word per inner loop instead of pushing bit by bit. This
    /// is the hot packing path automatic binarization runs on.
    pub fn from_signs<T: Element>(signs: &[T]) -> Self {
        let mut words = Vec::with_capacity(signs.len().div_ceil(WORD_BITS));
        for chunk in signs.chunks(WORD_BITS) {
            let mut word = 0u64;
            for (offset, x) in chunk.iter().enumerate() {
                word |= u64::from(x.to_f64() < 0.0) << offset;
            }
            words.push(word);
        }
        BitVector {
            dimension: signs.len(),
            words,
        }
    }

    /// Binarize a dense hypervector by element sign (negative → bit set).
    pub fn from_dense<T: Element>(hv: &HyperVector<T>) -> Self {
        BitVector::from_signs(hv.as_slice())
    }

    /// Number of (logical) elements.
    pub fn dimension(&self) -> usize {
        self.dimension
    }

    /// Whether the vector has no elements.
    pub fn is_empty(&self) -> bool {
        self.dimension == 0
    }

    /// The packed 64-bit words backing the vector.
    pub fn as_words(&self) -> &[u64] {
        &self.words
    }

    /// Storage size in bytes.
    pub fn storage_bytes(&self) -> usize {
        self.words.len() * 8
    }

    /// Get the bipolar value at `index` (`+1` or `-1`).
    ///
    /// # Errors
    ///
    /// Returns [`HdcError::IndexOutOfBounds`] if `index >= dimension()`.
    pub fn get(&self, index: usize) -> Result<i8> {
        if index >= self.dimension {
            return Err(HdcError::IndexOutOfBounds {
                index,
                len: self.dimension,
            });
        }
        let bit = (self.words[index / WORD_BITS] >> (index % WORD_BITS)) & 1;
        Ok(if bit == 1 { -1 } else { 1 })
    }

    /// Set the bipolar value at `index` (negative values set the bit).
    ///
    /// # Errors
    ///
    /// Returns [`HdcError::IndexOutOfBounds`] if `index >= dimension()`.
    pub fn set(&mut self, index: usize, value: i8) -> Result<()> {
        if index >= self.dimension {
            return Err(HdcError::IndexOutOfBounds {
                index,
                len: self.dimension,
            });
        }
        let word = &mut self.words[index / WORD_BITS];
        let mask = 1u64 << (index % WORD_BITS);
        if value < 0 {
            *word |= mask;
        } else {
            *word &= !mask;
        }
        Ok(())
    }

    /// Convert back into a dense hypervector of ±1 elements.
    pub fn to_dense<T: Element>(&self) -> HyperVector<T> {
        HyperVector::from_fn(self.dimension, |i| {
            if self.get(i).expect("index in range") < 0 {
                -T::ONE
            } else {
                T::ONE
            }
        })
    }

    /// XOR-binding of two bipolar vectors (element-wise multiplication in
    /// bipolar space).
    ///
    /// # Errors
    ///
    /// Returns [`HdcError::DimensionMismatch`] if the dimensions differ.
    pub fn bind(&self, other: &Self) -> Result<Self> {
        if self.dimension != other.dimension {
            return Err(HdcError::DimensionMismatch {
                expected: self.dimension,
                actual: other.dimension,
                context: "bitvector bind",
            });
        }
        Ok(BitVector {
            dimension: self.dimension,
            words: self
                .words
                .iter()
                .zip(other.words.iter())
                .map(|(a, b)| a ^ b)
                .collect(),
        })
    }

    /// Bipolar negation (flip every bit).
    pub fn sign_flip(&self) -> Self {
        let mut out = BitVector {
            dimension: self.dimension,
            words: self.words.iter().map(|w| !w).collect(),
        };
        out.mask_tail();
        out
    }

    /// Rotate elements right by `shift` with wrap-around (`wrap_shift`).
    pub fn wrap_shift(&self, shift: isize) -> Self {
        if self.dimension == 0 {
            return self.clone();
        }
        // Bit twiddling a rotation across word boundaries for arbitrary
        // dimensions is easy to get wrong; go through per-bit access. This is
        // not on the hot path (binding/Hamming are).
        let n = self.dimension;
        let shift = shift.rem_euclid(n as isize) as usize;
        BitVector::from_bits((0..n).map(|i| {
            let src = (i + n - shift) % n;
            self.get(src).expect("index in range") < 0
        }))
    }

    /// Hamming distance to another bit vector, counted with popcounts.
    ///
    /// When `perforation` restricts the reduction range, only the selected
    /// elements are compared; following the paper, the result is *not*
    /// rescaled, because only the relative magnitude between distances is
    /// used by HDC applications.
    ///
    /// # Errors
    ///
    /// Returns [`HdcError::DimensionMismatch`] if the dimensions differ and
    /// [`HdcError::InvalidPerforation`] if the descriptor is out of range.
    pub fn hamming_distance(&self, other: &Self, perforation: Perforation) -> Result<f64> {
        if self.dimension != other.dimension {
            return Err(HdcError::DimensionMismatch {
                expected: self.dimension,
                actual: other.dimension,
                context: "bitvector hamming distance",
            });
        }
        perforation.validate(self.dimension)?;
        if perforation.is_dense_over(self.dimension) {
            let mut count = 0u64;
            for (a, b) in self.words.iter().zip(other.words.iter()) {
                count += (a ^ b).count_ones() as u64;
            }
            return Ok(count as f64);
        }
        let mut count = 0u64;
        for i in perforation.indices(self.dimension) {
            let wa = (self.words[i / WORD_BITS] >> (i % WORD_BITS)) & 1;
            let wb = (other.words[i / WORD_BITS] >> (i % WORD_BITS)) & 1;
            count += wa ^ wb;
        }
        Ok(count as f64)
    }

    /// Clear any bits beyond `dimension` in the last word so that equality
    /// and popcounts over whole words stay exact.
    fn mask_tail(&mut self) {
        let rem = self.dimension % WORD_BITS;
        if rem != 0 {
            if let Some(last) = self.words.last_mut() {
                *last &= (1u64 << rem) - 1;
            }
        }
    }
}

/// A bit-packed bipolar hypermatrix (one [`BitVector`] per row).
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct BitMatrix {
    rows: Vec<BitVector>,
    cols: usize,
}

impl BitMatrix {
    /// Create an all `+1` matrix.
    pub fn zeros(rows: usize, cols: usize) -> Self {
        BitMatrix {
            rows: vec![BitVector::zeros(cols); rows],
            cols,
        }
    }

    /// Build from a list of equal-dimension bit vectors.
    ///
    /// # Errors
    ///
    /// Returns [`HdcError::InvalidShape`] if rows have differing dimensions.
    pub fn from_rows(rows: Vec<BitVector>) -> Result<Self> {
        let cols = rows.first().map_or(0, BitVector::dimension);
        for row in &rows {
            if row.dimension() != cols {
                return Err(HdcError::InvalidShape {
                    rows: rows.len(),
                    cols,
                    len: row.dimension(),
                });
            }
        }
        Ok(BitMatrix { rows, cols })
    }

    /// Binarize a dense hypermatrix by element sign, packing word-wise row by
    /// row (see [`BitVector::from_signs`]).
    pub fn from_dense<T: Element>(hm: &HyperMatrix<T>) -> Self {
        BitMatrix {
            rows: hm.iter_rows().map(BitVector::from_signs).collect(),
            cols: hm.cols(),
        }
    }

    /// Number of rows.
    pub fn rows(&self) -> usize {
        self.rows.len()
    }

    /// Number of columns.
    pub fn cols(&self) -> usize {
        self.cols
    }

    /// Whether the matrix holds no rows.
    pub fn is_empty(&self) -> bool {
        self.rows.is_empty()
    }

    /// Borrow one row.
    ///
    /// # Errors
    ///
    /// Returns [`HdcError::IndexOutOfBounds`] if `row >= rows()`.
    pub fn row(&self, row: usize) -> Result<&BitVector> {
        self.rows.get(row).ok_or(HdcError::IndexOutOfBounds {
            index: row,
            len: self.rows.len(),
        })
    }

    /// Overwrite one row.
    ///
    /// # Errors
    ///
    /// Returns [`HdcError::IndexOutOfBounds`] / [`HdcError::DimensionMismatch`]
    /// on bad indices or dimensions.
    pub fn set_row(&mut self, row: usize, value: BitVector) -> Result<()> {
        if value.dimension() != self.cols {
            return Err(HdcError::DimensionMismatch {
                expected: self.cols,
                actual: value.dimension(),
                context: "bitmatrix set_row",
            });
        }
        let len = self.rows.len();
        match self.rows.get_mut(row) {
            Some(slot) => {
                *slot = value;
                Ok(())
            }
            None => Err(HdcError::IndexOutOfBounds { index: row, len }),
        }
    }

    /// Iterate over the rows.
    pub fn iter(&self) -> std::slice::Iter<'_, BitVector> {
        self.rows.iter()
    }

    /// Convert back to a dense hypermatrix of ±1 elements.
    pub fn to_dense<T: Element>(&self) -> HyperMatrix<T> {
        let rows: Vec<HyperVector<T>> = self.rows.iter().map(BitVector::to_dense).collect();
        HyperMatrix::from_rows(rows).expect("rows validated at construction")
    }

    /// Hamming distance from `query` to every row, as a vector of distances.
    ///
    /// # Errors
    ///
    /// Propagates dimension/perforation errors from
    /// [`BitVector::hamming_distance`].
    pub fn hamming_distances(
        &self,
        query: &BitVector,
        perforation: Perforation,
    ) -> Result<HyperVector<f64>> {
        self.rows
            .iter()
            .map(|row| query.hamming_distance(row, perforation))
            .collect()
    }

    /// Total storage in bytes.
    pub fn storage_bytes(&self) -> usize {
        self.rows.iter().map(BitVector::storage_bytes).sum()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn from_bits_and_get() {
        let bv = BitVector::from_bits([false, true, false, true]);
        assert_eq!(bv.dimension(), 4);
        assert_eq!(bv.get(0).unwrap(), 1);
        assert_eq!(bv.get(1).unwrap(), -1);
        assert!(bv.get(4).is_err());
    }

    #[test]
    fn from_dense_roundtrip() {
        let hv = HyperVector::from_vec(vec![1.0f32, -2.0, 0.5, -0.25, 3.0]);
        let bv = BitVector::from_dense(&hv);
        let back: HyperVector<f32> = bv.to_dense();
        assert_eq!(back.as_slice(), &[1.0, -1.0, 1.0, -1.0, 1.0]);
    }

    #[test]
    fn from_signs_matches_from_bits_across_word_boundaries() {
        for dim in [0usize, 1, 63, 64, 65, 128, 1000] {
            let values: Vec<f64> = (0..dim)
                .map(|i| if i % 3 == 0 { -1.0 } else { 1.0 })
                .collect();
            let via_signs = BitVector::from_signs(&values);
            let via_bits = BitVector::from_bits(values.iter().map(|&x| x < 0.0));
            assert_eq!(via_signs, via_bits, "dim {dim}");
            assert_eq!(via_signs.dimension(), dim);
        }
    }

    #[test]
    fn from_bits_reserves_from_size_hint() {
        // Exact-size iterators produce exactly div_ceil(64) words.
        let bv = BitVector::from_bits((0..130).map(|i| i % 2 == 0));
        assert_eq!(bv.as_words().len(), 3);
        assert_eq!(bv.dimension(), 130);
    }

    #[test]
    fn set_updates_bits() {
        let mut bv = BitVector::zeros(70);
        bv.set(65, -1).unwrap();
        assert_eq!(bv.get(65).unwrap(), -1);
        bv.set(65, 1).unwrap();
        assert_eq!(bv.get(65).unwrap(), 1);
        assert!(bv.set(70, 1).is_err());
    }

    #[test]
    fn bind_is_bipolar_multiplication() {
        let a = BitVector::from_bits([false, true, true, false]);
        let b = BitVector::from_bits([true, true, false, false]);
        let bound = a.bind(&b).unwrap();
        // (+1,-1,-1,+1) * (-1,-1,+1,+1) = (-1,+1,-1,+1)
        assert_eq!(bound.get(0).unwrap(), -1);
        assert_eq!(bound.get(1).unwrap(), 1);
        assert_eq!(bound.get(2).unwrap(), -1);
        assert_eq!(bound.get(3).unwrap(), 1);
    }

    #[test]
    fn bind_dimension_mismatch() {
        let a = BitVector::zeros(8);
        let b = BitVector::zeros(9);
        assert!(a.bind(&b).is_err());
    }

    #[test]
    fn sign_flip_masks_tail() {
        let bv = BitVector::zeros(10);
        let flipped = bv.sign_flip();
        assert_eq!(flipped.as_words()[0].count_ones(), 10);
        assert_eq!(
            flipped.hamming_distance(&bv, Perforation::NONE).unwrap(),
            10.0
        );
    }

    #[test]
    fn hamming_matches_dense_definition() {
        let a = HyperVector::from_vec(vec![1.0f32, -1.0, 1.0, -1.0, 1.0, 1.0, -1.0]);
        let b = HyperVector::from_vec(vec![1.0f32, 1.0, 1.0, -1.0, -1.0, 1.0, 1.0]);
        let expected = a
            .as_slice()
            .iter()
            .zip(b.as_slice())
            .filter(|(x, y)| x != y)
            .count() as f64;
        let d = BitVector::from_dense(&a)
            .hamming_distance(&BitVector::from_dense(&b), Perforation::NONE)
            .unwrap();
        assert_eq!(d, expected);
    }

    #[test]
    fn hamming_large_dimension_word_boundaries() {
        let dim = 1000;
        let a = BitVector::zeros(dim);
        let mut b = BitVector::zeros(dim);
        for i in (0..dim).step_by(3) {
            b.set(i, -1).unwrap();
        }
        let expected = (0..dim).step_by(3).count() as f64;
        assert_eq!(a.hamming_distance(&b, Perforation::NONE).unwrap(), expected);
    }

    #[test]
    fn perforated_hamming_counts_subrange() {
        let dim = 128;
        let a = BitVector::zeros(dim);
        let b = a.sign_flip();
        let seg = Perforation::segment(0, 64);
        assert_eq!(a.hamming_distance(&b, seg).unwrap(), 64.0);
        let strided = Perforation::strided(0, dim, 2);
        assert_eq!(a.hamming_distance(&b, strided).unwrap(), 64.0);
    }

    #[test]
    fn wrap_shift_bitvector() {
        let bv = BitVector::from_bits([true, false, false, false, false]);
        let shifted = bv.wrap_shift(2);
        assert_eq!(shifted.get(2).unwrap(), -1);
        assert_eq!(shifted.get(0).unwrap(), 1);
        let back = shifted.wrap_shift(-2);
        assert_eq!(back, bv);
    }

    #[test]
    fn bitmatrix_from_dense_and_distances() {
        let hm = HyperMatrix::from_flat(2, 4, vec![1.0f32, -1.0, 1.0, 1.0, -1.0, -1.0, 1.0, -1.0])
            .unwrap();
        let bm = BitMatrix::from_dense(&hm);
        assert_eq!(bm.rows(), 2);
        assert_eq!(bm.cols(), 4);
        let query = BitVector::from_dense(&HyperVector::from_vec(vec![1.0f32, -1.0, 1.0, 1.0]));
        let d = bm.hamming_distances(&query, Perforation::NONE).unwrap();
        assert_eq!(d.as_slice(), &[0.0, 2.0]);
    }

    #[test]
    fn bitmatrix_row_management() {
        let mut bm = BitMatrix::zeros(3, 16);
        assert!(bm.row(3).is_err());
        bm.set_row(1, BitVector::from_bits((0..16).map(|i| i % 2 == 0)))
            .unwrap();
        assert_eq!(bm.row(1).unwrap().get(0).unwrap(), -1);
        assert!(bm.set_row(0, BitVector::zeros(8)).is_err());
        assert!(bm.set_row(9, BitVector::zeros(16)).is_err());
    }

    #[test]
    fn storage_bytes() {
        let bv = BitVector::zeros(2048);
        assert_eq!(bv.storage_bytes(), 2048 / 8);
        let bm = BitMatrix::zeros(26, 2048);
        assert_eq!(bm.storage_bytes(), 26 * 2048 / 8);
    }
}
