//! Encoding schemes mapping raw input features into hyperdimensional space.
//!
//! The five evaluated applications use four different encoders (paper
//! Table 2):
//!
//! * [`RandomProjection`] — HD-Classification, HD-Clustering: multiply the
//!   feature vector by a random ±1 (or Gaussian) projection matrix.
//! * [`LevelIdEncoder`] — HyperOMS: quantise each feature value into a level,
//!   bind the level hypervector with the position (ID) hypervector, and
//!   bundle across features.
//! * [`GraphNeighborEncoder`] — RelHD: combine a node's feature hypervector
//!   with its neighbours' hypervectors (1-hop relation encoding).
//! * [`KmerEncoder`] — HD-Hashtable: slide a window of `k` bases over a
//!   sequence, bind per-base hypervectors with positional shifts, bundle all
//!   k-mers of the window into a sequence signature.

use crate::element::Element;
use crate::error::{HdcError, Result};
use crate::hypermatrix::HyperMatrix;
use crate::hypervector::HyperVector;
use crate::matmul::{matmul_batch, matvec};
use crate::perforation::Perforation;
use crate::random::{bipolar_hypermatrix, gaussian_hypermatrix};
use rand::Rng;

/// Random-projection encoder: `encoded = rp_matrix * features`.
#[derive(Debug, Clone, PartialEq)]
pub struct RandomProjection<T: Element> {
    matrix: HyperMatrix<T>,
}

impl<T: Element> RandomProjection<T> {
    /// Create a bipolar (±1) random projection from `in_dim` features to a
    /// `dimension`-element hypervector.
    pub fn bipolar(dimension: usize, in_dim: usize, rng: &mut impl Rng) -> Self {
        RandomProjection {
            matrix: bipolar_hypermatrix(dimension, in_dim, rng),
        }
    }

    /// Create a Gaussian random projection.
    pub fn gaussian(dimension: usize, in_dim: usize, rng: &mut impl Rng) -> Self {
        RandomProjection {
            matrix: gaussian_hypermatrix(dimension, in_dim, rng),
        }
    }

    /// Create a *cyclic* random projection as implemented by the digital HDC
    /// ASIC: a single random base row is rotated by one position per output
    /// dimension, which needs `O(in_dim)` storage instead of
    /// `O(in_dim * dimension)`.
    pub fn cyclic(dimension: usize, in_dim: usize, rng: &mut impl Rng) -> Self {
        let base: HyperVector<T> = crate::random::bipolar_hypervector(in_dim, rng);
        let rows = (0..dimension)
            .map(|d| base.wrap_shift((d % in_dim.max(1)) as isize))
            .collect();
        RandomProjection {
            matrix: HyperMatrix::from_rows(rows).expect("equal-length rows by construction"),
        }
    }

    /// Wrap an existing projection matrix (`dimension x in_dim`).
    pub fn from_matrix(matrix: HyperMatrix<T>) -> Self {
        RandomProjection { matrix }
    }

    /// The output hypervector dimension.
    pub fn dimension(&self) -> usize {
        self.matrix.rows()
    }

    /// The expected input feature count.
    pub fn input_dimension(&self) -> usize {
        self.matrix.cols()
    }

    /// Borrow the projection matrix.
    pub fn matrix(&self) -> &HyperMatrix<T> {
        &self.matrix
    }

    /// Encode a single feature vector.
    ///
    /// # Panics
    ///
    /// Panics if `features.dimension() != input_dimension()`; use
    /// [`RandomProjection::try_encode`] for a fallible version.
    pub fn encode(&self, features: &HyperVector<T>) -> HyperVector<T> {
        self.try_encode(features, Perforation::NONE)
            .expect("feature dimension must match projection input dimension")
    }

    /// Encode a single feature vector, optionally perforating the reduction.
    ///
    /// # Errors
    ///
    /// Returns a dimension-mismatch error if the feature length differs from
    /// [`RandomProjection::input_dimension`].
    pub fn try_encode(
        &self,
        features: &HyperVector<T>,
        perforation: Perforation,
    ) -> Result<HyperVector<T>> {
        matvec(&self.matrix, features, perforation)
    }

    /// Encode a batch of feature vectors (rows of `features`).
    ///
    /// # Errors
    ///
    /// Returns a dimension-mismatch error if `features.cols()` differs from
    /// [`RandomProjection::input_dimension`].
    pub fn encode_batch(
        &self,
        features: &HyperMatrix<T>,
        perforation: Perforation,
    ) -> Result<HyperMatrix<T>> {
        matmul_batch(features, &self.matrix, perforation)
    }
}

/// Level-ID encoder used by HyperOMS: each feature position has a random ID
/// hypervector, each quantised value level has a level hypervector, and the
/// encoding is the bundle (sum) of `id[i] * level[quantise(x[i])]` over all
/// positions with non-zero value.
#[derive(Debug, Clone, PartialEq)]
pub struct LevelIdEncoder<T: Element> {
    id_vectors: HyperMatrix<T>,
    level_vectors: HyperMatrix<T>,
    min_value: f64,
    max_value: f64,
}

impl<T: Element> LevelIdEncoder<T> {
    /// Create an encoder for `num_positions` feature positions and
    /// `num_levels` quantisation levels over the value range
    /// `[min_value, max_value]`.
    ///
    /// Level hypervectors are correlated: level 0 is random and each
    /// subsequent level flips a progressively larger prefix of elements, so
    /// nearby values stay similar in HD space (the standard level-encoding
    /// construction).
    pub fn new(
        dimension: usize,
        num_positions: usize,
        num_levels: usize,
        min_value: f64,
        max_value: f64,
        rng: &mut impl Rng,
    ) -> Self {
        let id_vectors = bipolar_hypermatrix(num_positions, dimension, rng);
        let base: HyperVector<T> = crate::random::bipolar_hypervector(dimension, rng);
        let mut levels = Vec::with_capacity(num_levels);
        let mut current = base;
        let flips_per_level = if num_levels > 1 {
            dimension / (num_levels - 1).max(1)
        } else {
            0
        };
        // Pre-select a random permutation of positions to flip so that each
        // level flips a disjoint chunk.
        let mut order: Vec<usize> = (0..dimension).collect();
        for i in (1..order.len()).rev() {
            let j = rng.gen_range(0..=i);
            order.swap(i, j);
        }
        levels.push(current.clone());
        for level in 1..num_levels {
            let start = (level - 1) * flips_per_level;
            let end = (start + flips_per_level).min(dimension);
            for &pos in &order[start..end] {
                let v = current.get(pos).expect("pos in range");
                current.set(pos, -v).expect("pos in range");
            }
            levels.push(current.clone());
        }
        LevelIdEncoder {
            id_vectors,
            level_vectors: HyperMatrix::from_rows(levels)
                .expect("levels share the encoder dimension"),
            min_value,
            max_value,
        }
    }

    /// The hypervector dimension produced by the encoder.
    pub fn dimension(&self) -> usize {
        self.id_vectors.cols()
    }

    /// Number of quantisation levels.
    pub fn num_levels(&self) -> usize {
        self.level_vectors.rows()
    }

    /// Number of feature positions.
    pub fn num_positions(&self) -> usize {
        self.id_vectors.rows()
    }

    /// Quantise a raw value into a level index.
    pub fn quantise(&self, value: f64) -> usize {
        if self.max_value <= self.min_value {
            return 0;
        }
        let t = ((value - self.min_value) / (self.max_value - self.min_value)).clamp(0.0, 1.0);
        ((t * (self.num_levels() - 1) as f64).round() as usize).min(self.num_levels() - 1)
    }

    /// Encode a sparse feature vector given as `(position, value)` pairs.
    ///
    /// # Errors
    ///
    /// Returns [`HdcError::IndexOutOfBounds`] if a position is out of range.
    pub fn encode_sparse(&self, features: &[(usize, f64)]) -> Result<HyperVector<T>> {
        let mut acc = vec![0.0f64; self.dimension()];
        for &(pos, value) in features {
            if pos >= self.num_positions() {
                return Err(HdcError::IndexOutOfBounds {
                    index: pos,
                    len: self.num_positions(),
                });
            }
            let level = self.quantise(value);
            let id_row = self.id_vectors.row(pos)?;
            let level_row = self.level_vectors.row(level)?;
            for ((slot, &idv), &lvl) in acc.iter_mut().zip(id_row).zip(level_row) {
                *slot += idv.to_f64() * lvl.to_f64();
            }
        }
        Ok(HyperVector::from_fn(self.dimension(), |i| {
            T::from_f64(acc[i])
        }))
    }

    /// Encode a dense feature vector (position `i` has value `features[i]`);
    /// zero-valued positions are skipped, matching the sparse spectra usage.
    ///
    /// # Errors
    ///
    /// Returns [`HdcError::DimensionMismatch`] if the feature length differs
    /// from [`LevelIdEncoder::num_positions`].
    pub fn encode_dense(&self, features: &HyperVector<f64>) -> Result<HyperVector<T>> {
        if features.dimension() != self.num_positions() {
            return Err(HdcError::DimensionMismatch {
                expected: self.num_positions(),
                actual: features.dimension(),
                context: "level-id encoding",
            });
        }
        let sparse: Vec<(usize, f64)> = features
            .iter()
            .enumerate()
            .filter(|(_, &v)| v != 0.0)
            .map(|(i, &v)| (i, v))
            .collect();
        self.encode_sparse(&sparse)
    }
}

/// Graph-neighbour encoder used by RelHD: a node's encoding is its own
/// feature hypervector bundled with the (permuted) sum of its neighbours'
/// feature hypervectors, capturing 1-hop relations.
#[derive(Debug, Clone, PartialEq)]
pub struct GraphNeighborEncoder<T: Element> {
    projection: RandomProjection<T>,
    /// Weight applied to the neighbour bundle relative to the node itself.
    neighbor_weight: f64,
}

impl<T: Element> GraphNeighborEncoder<T> {
    /// Create an encoder projecting `in_dim` node features into `dimension`
    /// dimensional hypervectors; `neighbor_weight` scales the neighbour
    /// contribution (the paper's RelHD uses an equal-weight bundle).
    pub fn new(dimension: usize, in_dim: usize, neighbor_weight: f64, rng: &mut impl Rng) -> Self {
        GraphNeighborEncoder {
            projection: RandomProjection::bipolar(dimension, in_dim, rng),
            neighbor_weight,
        }
    }

    /// The output hypervector dimension.
    pub fn dimension(&self) -> usize {
        self.projection.dimension()
    }

    /// Encode node features alone (no relation information).
    ///
    /// # Errors
    ///
    /// Returns a dimension-mismatch error on wrong feature length.
    pub fn encode_node(&self, features: &HyperVector<T>) -> Result<HyperVector<T>> {
        self.projection.try_encode(features, Perforation::NONE)
    }

    /// Encode a node given its features and its neighbours' features.
    ///
    /// The neighbour bundle is wrap-shifted by one position before being
    /// added so that "self" and "neighbourhood" information remain
    /// distinguishable (the role/filler permutation trick).
    ///
    /// # Errors
    ///
    /// Returns a dimension-mismatch error on wrong feature length.
    pub fn encode_with_neighbors(
        &self,
        features: &HyperVector<T>,
        neighbors: &[&HyperVector<T>],
    ) -> Result<HyperVector<T>> {
        let own = self.projection.try_encode(features, Perforation::NONE)?;
        if neighbors.is_empty() {
            return Ok(own);
        }
        let mut bundle = vec![0.0f64; self.dimension()];
        for n in neighbors {
            let enc = self.projection.try_encode(n, Perforation::NONE)?;
            for (slot, v) in bundle.iter_mut().zip(enc.iter()) {
                *slot += v.to_f64();
            }
        }
        let scale = self.neighbor_weight / neighbors.len() as f64;
        let bundle_hv =
            HyperVector::<T>::from_fn(self.dimension(), |i| T::from_f64(bundle[i] * scale));
        let shifted = bundle_hv.wrap_shift(1);
        own.zip_with(&shifted, |a, b| a + b)
    }
}

/// K-mer encoder used by HD-Hashtable / GenieHD-style genome search: each
/// base (A, C, G, T, plus N for unknown) has a random bipolar hypervector;
/// a k-mer is the binding of its bases each wrap-shifted by its offset, and
/// a sequence signature is the bundle of all its k-mers.
#[derive(Debug, Clone, PartialEq)]
pub struct KmerEncoder<T: Element> {
    base_vectors: HyperMatrix<T>,
    k: usize,
}

impl<T: Element> KmerEncoder<T> {
    /// Number of distinct base symbols (A, C, G, T, N).
    pub const NUM_BASES: usize = 5;

    /// Create an encoder for k-mers of length `k` in `dimension`-dimensional
    /// space.
    pub fn new(dimension: usize, k: usize, rng: &mut impl Rng) -> Self {
        KmerEncoder {
            base_vectors: bipolar_hypermatrix(Self::NUM_BASES, dimension, rng),
            k,
        }
    }

    /// The k-mer length.
    pub fn k(&self) -> usize {
        self.k
    }

    /// The output hypervector dimension.
    pub fn dimension(&self) -> usize {
        self.base_vectors.cols()
    }

    /// Map an ASCII base to its index.
    pub fn base_index(base: u8) -> usize {
        match base.to_ascii_uppercase() {
            b'A' => 0,
            b'C' => 1,
            b'G' => 2,
            b'T' => 3,
            _ => 4,
        }
    }

    /// Encode a single k-mer (must be exactly `k` bases).
    ///
    /// # Errors
    ///
    /// Returns [`HdcError::DimensionMismatch`] if `kmer.len() != k`.
    pub fn encode_kmer(&self, kmer: &[u8]) -> Result<HyperVector<T>> {
        if kmer.len() != self.k {
            return Err(HdcError::DimensionMismatch {
                expected: self.k,
                actual: kmer.len(),
                context: "k-mer encoding",
            });
        }
        let mut acc = HyperVector::<T>::splat(self.dimension(), T::ONE);
        for (offset, &base) in kmer.iter().enumerate() {
            let row = self
                .base_vectors
                .row_vector(Self::base_index(base))
                .expect("base index < NUM_BASES");
            let shifted = row.wrap_shift(offset as isize);
            acc = acc.zip_with(&shifted, |a, b| a * b)?;
        }
        Ok(acc)
    }

    /// Encode a whole sequence as the bundle of all of its k-mers.
    ///
    /// # Errors
    ///
    /// Returns [`HdcError::EmptyInput`] if the sequence is shorter than `k`.
    pub fn encode_sequence(&self, sequence: &[u8]) -> Result<HyperVector<T>> {
        if sequence.len() < self.k {
            return Err(HdcError::EmptyInput("sequence shorter than k"));
        }
        let mut acc = vec![0.0f64; self.dimension()];
        for window in sequence.windows(self.k) {
            let kmer = self.encode_kmer(window)?;
            for (slot, v) in acc.iter_mut().zip(kmer.iter()) {
                *slot += v.to_f64();
            }
        }
        Ok(HyperVector::from_fn(self.dimension(), |i| {
            T::from_f64(acc[i])
        }))
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::random::HdcRng;
    use crate::similarity::cosine_similarity;
    use rand::SeedableRng;

    #[test]
    fn random_projection_shapes() {
        let mut rng = HdcRng::seed_from_u64(1);
        let rp = RandomProjection::<f32>::bipolar(256, 32, &mut rng);
        assert_eq!(rp.dimension(), 256);
        assert_eq!(rp.input_dimension(), 32);
        let features = HyperVector::from_fn(32, |i| i as f32 / 32.0);
        let enc = rp.encode(&features);
        assert_eq!(enc.dimension(), 256);
        let batch = HyperMatrix::from_rows(vec![features.clone(), features.clone()]).unwrap();
        let encoded = rp.encode_batch(&batch, Perforation::NONE).unwrap();
        assert_eq!((encoded.rows(), encoded.cols()), (2, 256));
        assert_eq!(encoded.row(0).unwrap(), enc.as_slice());
    }

    #[test]
    fn random_projection_preserves_similarity() {
        // Johnson–Lindenstrauss flavoured sanity check: similar inputs stay
        // similar after projection, dissimilar inputs stay dissimilar.
        let mut rng = HdcRng::seed_from_u64(2);
        let rp = RandomProjection::<f32>::gaussian(4096, 64, &mut rng);
        let a = crate::random::gaussian_hypervector::<f32>(64, &mut rng);
        let mut b = a.clone();
        for i in 0..4 {
            b.set(i, b.get(i).unwrap() + 0.01).unwrap();
        }
        let c = crate::random::gaussian_hypervector::<f32>(64, &mut rng);
        let sim_ab = cosine_similarity(&rp.encode(&a), &rp.encode(&b), Perforation::NONE).unwrap();
        let sim_ac = cosine_similarity(&rp.encode(&a), &rp.encode(&c), Perforation::NONE).unwrap();
        assert!(
            sim_ab > 0.95,
            "similar inputs should stay similar: {sim_ab}"
        );
        assert!(sim_ab > sim_ac, "ordering preserved: {sim_ab} vs {sim_ac}");
    }

    #[test]
    fn cyclic_projection_rows_are_rotations() {
        let mut rng = HdcRng::seed_from_u64(3);
        let rp = RandomProjection::<f32>::cyclic(8, 16, &mut rng);
        let m = rp.matrix();
        let row0 = m.row_vector(0).unwrap();
        let row3 = m.row_vector(3).unwrap();
        assert_eq!(row0.wrap_shift(3).as_slice(), row3.as_slice());
    }

    #[test]
    fn level_id_nearby_values_more_similar() {
        let mut rng = HdcRng::seed_from_u64(4);
        let enc = LevelIdEncoder::<f32>::new(2048, 10, 16, 0.0, 1.0, &mut rng);
        assert_eq!(enc.dimension(), 2048);
        assert_eq!(enc.num_levels(), 16);
        let low = enc.encode_sparse(&[(3, 0.10)]).unwrap();
        let near = enc.encode_sparse(&[(3, 0.15)]).unwrap();
        let far = enc.encode_sparse(&[(3, 0.95)]).unwrap();
        let sim_near = cosine_similarity(&low, &near, Perforation::NONE).unwrap();
        let sim_far = cosine_similarity(&low, &far, Perforation::NONE).unwrap();
        assert!(sim_near > sim_far, "{sim_near} vs {sim_far}");
    }

    #[test]
    fn level_id_quantisation_bounds() {
        let mut rng = HdcRng::seed_from_u64(5);
        let enc = LevelIdEncoder::<f32>::new(64, 4, 8, 0.0, 100.0, &mut rng);
        assert_eq!(enc.quantise(-10.0), 0);
        assert_eq!(enc.quantise(0.0), 0);
        assert_eq!(enc.quantise(100.0), 7);
        assert_eq!(enc.quantise(1e9), 7);
        assert!(enc.quantise(50.0) > 0 && enc.quantise(50.0) < 7);
    }

    #[test]
    fn level_id_rejects_bad_positions() {
        let mut rng = HdcRng::seed_from_u64(6);
        let enc = LevelIdEncoder::<f32>::new(64, 4, 8, 0.0, 1.0, &mut rng);
        assert!(enc.encode_sparse(&[(4, 0.5)]).is_err());
        assert!(enc
            .encode_dense(&HyperVector::from_vec(vec![0.0; 5]))
            .is_err());
    }

    #[test]
    fn graph_encoder_neighbors_affect_encoding() {
        let mut rng = HdcRng::seed_from_u64(7);
        let enc = GraphNeighborEncoder::<f32>::new(1024, 16, 1.0, &mut rng);
        let node = crate::random::gaussian_hypervector::<f32>(16, &mut rng);
        let n1 = crate::random::gaussian_hypervector::<f32>(16, &mut rng);
        let n2 = crate::random::gaussian_hypervector::<f32>(16, &mut rng);
        let alone = enc.encode_with_neighbors(&node, &[]).unwrap();
        let with_n1 = enc.encode_with_neighbors(&node, &[&n1]).unwrap();
        let with_n2 = enc.encode_with_neighbors(&node, &[&n2]).unwrap();
        assert_eq!(alone.as_slice(), enc.encode_node(&node).unwrap().as_slice());
        assert_ne!(with_n1.as_slice(), alone.as_slice());
        assert_ne!(with_n1.as_slice(), with_n2.as_slice());
        // The node's own information still dominates.
        let sim = cosine_similarity(&alone, &with_n1, Perforation::NONE).unwrap();
        assert!(sim > 0.5, "self similarity {sim}");
    }

    #[test]
    fn kmer_encoder_basics() {
        let mut rng = HdcRng::seed_from_u64(8);
        let enc = KmerEncoder::<f32>::new(2048, 5, &mut rng);
        assert_eq!(enc.k(), 5);
        assert!(enc.encode_kmer(b"ACGT").is_err());
        let a = enc.encode_kmer(b"ACGTA").unwrap();
        let b = enc.encode_kmer(b"ACGTA").unwrap();
        let c = enc.encode_kmer(b"ACGTC").unwrap();
        assert_eq!(a.as_slice(), b.as_slice());
        assert_ne!(a.as_slice(), c.as_slice());
        assert!(a.iter().all(|&x| x == 1.0 || x == -1.0));
    }

    #[test]
    fn kmer_sequence_signature_detects_shared_content() {
        let mut rng = HdcRng::seed_from_u64(9);
        let enc = KmerEncoder::<f32>::new(4096, 7, &mut rng);
        let genome = b"ACGTACGGTTAACCGGTTACGATCGATCGTTAACCGTACG";
        let read_same = &genome[5..30];
        let read_other = b"GGGGGGCCCCCCAAAATTTTGGGGCC";
        let sig_genome = enc.encode_sequence(genome).unwrap();
        let sig_same = enc.encode_sequence(read_same).unwrap();
        let sig_other = enc.encode_sequence(read_other).unwrap();
        let sim_same = cosine_similarity(&sig_genome, &sig_same, Perforation::NONE).unwrap();
        let sim_other = cosine_similarity(&sig_genome, &sig_other, Perforation::NONE).unwrap();
        assert!(sim_same > sim_other, "{sim_same} vs {sim_other}");
    }

    #[test]
    fn kmer_sequence_too_short() {
        let mut rng = HdcRng::seed_from_u64(10);
        let enc = KmerEncoder::<f32>::new(64, 9, &mut rng);
        assert!(enc.encode_sequence(b"ACGT").is_err());
    }

    #[test]
    fn base_index_mapping() {
        assert_eq!(KmerEncoder::<f32>::base_index(b'a'), 0);
        assert_eq!(KmerEncoder::<f32>::base_index(b'C'), 1);
        assert_eq!(KmerEncoder::<f32>::base_index(b'g'), 2);
        assert_eq!(KmerEncoder::<f32>::base_index(b'T'), 3);
        assert_eq!(KmerEncoder::<f32>::base_index(b'N'), 4);
        assert_eq!(KmerEncoder::<f32>::base_index(b'X'), 4);
    }
}
