//! Class-memory sharding: row-block plans and the deterministic
//! reduction-tree merge of per-shard selection results.
//!
//! The batched kernels in [`crate::batch`] parallelize over *query rows*
//! only, so a workload with few queries and a large class memory cannot
//! scale past the query count. Sharding adds the second parallel axis: the
//! class matrix is split into contiguous row-blocks ([`ShardPlan`]), every
//! `(query row, shard)` pair is scored independently, and the per-shard
//! partial `arg_min` / `arg_max` / top-`k` results are merged back through
//! a reduction tree. This mirrors the source paper's banked associative
//! memory, where each bank scores its slice of the class memory and a
//! merge network selects the winner — and it is the same row-block split
//! the accelerator model's multi-chip tiling term accounts for.
//!
//! # Bit-exactness contract
//!
//! Everything here is bit-identical to the unsharded path:
//!
//! * **Scores** — each `(query, class)` score is produced by the same
//!   accumulation chain regardless of which shard the class row lands in:
//!   popcounts are exact integers, and the dense panel kernels keep one
//!   independent accumulator per class row in ascending element order, so
//!   panel grouping (which sharding changes) cannot change any value.
//! * **Selection** — the merge is a reduction tree over shard partials in
//!   ascending shard order. Each pairwise merge keeps the left (lower
//!   global index) candidate on a total-order tie, NaN-only shards yield
//!   no candidate and are skipped, and scores compare under
//!   [`TotalOrd`] (`-0.0 < 0.0`), exactly matching
//!   [`crate::ops::arg_min`] / [`arg_max`](crate::ops::arg_max) /
//!   [`arg_top_k`](crate::ops::arg_top_k) first-occurrence semantics.

use std::cmp::Ordering;
use std::ops::Range;

use crate::ops::TotalOrd;

/// Class matrices smaller than this many rows per shard are not worth
/// splitting: the per-shard panel repacking and merge overhead exceeds the
/// win from the extra parallel axis.
pub const MIN_ROWS_PER_SHARD: usize = 8;

/// How many class-memory shards to use for a class matrix of `class_rows`
/// rows on `threads` worker threads: one shard per thread, capped so every
/// shard keeps at least [`MIN_ROWS_PER_SHARD`] rows, and never zero. With
/// one thread or a small class memory this returns 1 and the unsharded
/// kernels run unchanged.
pub fn default_shard_count(class_rows: usize, threads: usize) -> usize {
    threads.min(class_rows / MIN_ROWS_PER_SHARD).max(1)
}

/// A partition of `0..rows` into contiguous, ascending row-block ranges —
/// the unit of work of the class-memory axis.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct ShardPlan {
    rows: usize,
    ranges: Vec<Range<usize>>,
}

impl ShardPlan {
    /// Split `rows` class rows into `shards` balanced contiguous blocks
    /// (sizes differ by at most one row; earlier shards take the extra).
    /// `shards` is clamped to `1..=rows` (a zero-row matrix gets one empty
    /// shard), so any requested count yields a valid plan.
    pub fn split(rows: usize, shards: usize) -> ShardPlan {
        let shards = shards.clamp(1, rows.max(1));
        let base = rows / shards;
        let extra = rows % shards;
        let mut ranges = Vec::with_capacity(shards);
        let mut start = 0;
        for s in 0..shards {
            let len = base + usize::from(s < extra);
            ranges.push(start..start + len);
            start += len;
        }
        ShardPlan { rows, ranges }
    }

    /// The single-shard plan: the whole class memory in one block.
    pub fn single(rows: usize) -> ShardPlan {
        ShardPlan::split(rows, 1)
    }

    /// Number of shards in the plan.
    pub fn shard_count(&self) -> usize {
        self.ranges.len()
    }

    /// Total class rows the plan covers.
    pub fn rows(&self) -> usize {
        self.rows
    }

    /// The contiguous row ranges, in ascending order.
    pub fn ranges(&self) -> &[Range<usize>] {
        &self.ranges
    }
}

/// A per-shard selection candidate: the **global** class-row index and its
/// score. Shards report candidates in global index space so the merge tree
/// never needs to re-offset.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct ShardCandidate {
    /// Global class-row index of the candidate.
    pub index: usize,
    /// The candidate's score.
    pub score: f64,
}

/// `arg_min` over one shard's score block. `offset` is the shard's first
/// global row index; NaN-only (or empty) blocks yield `None`.
pub fn partial_arg_min(scores: &[f64], offset: usize) -> Option<ShardCandidate> {
    crate::ops::arg_min(scores).map(|i| ShardCandidate {
        index: offset + i,
        score: scores[i],
    })
}

/// `arg_max` over one shard's score block, as [`partial_arg_min`].
pub fn partial_arg_max(scores: &[f64], offset: usize) -> Option<ShardCandidate> {
    crate::ops::arg_max(scores).map(|i| ShardCandidate {
        index: offset + i,
        score: scores[i],
    })
}

/// Top-`k` over one shard's score block: descending score under the total
/// order, ties to the lower index, NaN skipped. May return fewer than `k`
/// candidates when the shard has fewer comparable scores.
pub fn partial_top_k(scores: &[f64], offset: usize, k: usize) -> Vec<ShardCandidate> {
    crate::ops::arg_top_k(scores, k)
        .into_iter()
        .map(|i| ShardCandidate {
            index: offset + i,
            score: scores[i],
        })
        .collect()
}

/// Result of a reduction-tree merge: the merged value plus how many
/// pairwise merge operations the tree performed (an [`ExecStats`]-style
/// accounting hook; `shards - 1` for non-trivial min/max merges).
///
/// [`ExecStats`]: ../../hdc_runtime/struct.ExecStats.html
#[derive(Debug, Clone, PartialEq)]
pub struct Merged<T> {
    /// The merged selection result.
    pub value: T,
    /// Pairwise merge operations performed by the tree.
    pub merge_ops: usize,
}

/// Reduce adjacent pairs until one value remains, preserving left-to-right
/// (ascending shard) order so every tie resolves toward the lower global
/// index. Returns the survivor and the number of pairwise merges.
fn reduction_tree<T>(mut level: Vec<T>, mut merge: impl FnMut(T, T) -> T) -> Merged<Option<T>> {
    let mut merge_ops = 0;
    if level.is_empty() {
        return Merged {
            value: None,
            merge_ops,
        };
    }
    while level.len() > 1 {
        let mut next = Vec::with_capacity(level.len().div_ceil(2));
        let mut it = level.into_iter();
        while let Some(left) = it.next() {
            match it.next() {
                Some(right) => {
                    next.push(merge(left, right));
                    merge_ops += 1;
                }
                None => next.push(left),
            }
        }
        level = next;
    }
    Merged {
        value: level.pop(),
        merge_ops,
    }
}

/// Merge two optional candidates, preferring `left` unless `right` is
/// strictly better under `wins` — the sharded form of the strict-improvement
/// comparison in [`crate::ops::arg_min`] / `arg_max`: because shard ranges
/// ascend, "prefer left on a non-strict win" is exactly the
/// first-occurrence tie-break.
fn merge_pair(
    left: Option<ShardCandidate>,
    right: Option<ShardCandidate>,
    wins: impl Fn(f64, f64) -> bool,
) -> Option<ShardCandidate> {
    match (left, right) {
        (None, r) => r,
        (l, None) => l,
        (Some(l), Some(r)) => {
            if wins(r.score, l.score) {
                Some(r)
            } else {
                Some(l)
            }
        }
    }
}

/// Merge per-shard `arg_min` partials (ascending shard order) through the
/// reduction tree. Bit-identical to [`crate::ops::arg_min`] on the
/// concatenated scores: `None` partials (NaN-only shards) are skipped and
/// total-order ties keep the lower global index.
pub fn merge_arg_min(partials: Vec<Option<ShardCandidate>>) -> Merged<Option<ShardCandidate>> {
    let merged = reduction_tree(partials, |l, r| {
        merge_pair(l, r, |new, best| new.total_order(best) == Ordering::Less)
    });
    Merged {
        value: merged.value.flatten(),
        merge_ops: merged.merge_ops,
    }
}

/// Merge per-shard `arg_max` partials, as [`merge_arg_min`].
pub fn merge_arg_max(partials: Vec<Option<ShardCandidate>>) -> Merged<Option<ShardCandidate>> {
    let merged = reduction_tree(partials, |l, r| {
        merge_pair(l, r, |new, best| new.total_order(best) == Ordering::Greater)
    });
    Merged {
        value: merged.value.flatten(),
        merge_ops: merged.merge_ops,
    }
}

/// Merge per-shard top-`k` candidate lists (each sorted descending by the
/// total order, ties to the lower index) through the reduction tree,
/// truncating every intermediate list to `k`. Truncation is lossless: any
/// global top-`k` candidate is within the top `k` of every sublist that
/// contains it. Bit-identical to [`crate::ops::arg_top_k`] on the
/// concatenated scores.
pub fn merge_top_k(partials: Vec<Vec<ShardCandidate>>, k: usize) -> Merged<Vec<ShardCandidate>> {
    reduction_tree(partials, |left, right| {
        let mut out = Vec::with_capacity((left.len() + right.len()).min(k));
        let (mut i, mut j) = (0, 0);
        while out.len() < k && (i < left.len() || j < right.len()) {
            let take_left = match (left.get(i), right.get(j)) {
                (Some(l), Some(r)) => match r.score.total_order(l.score) {
                    // Descending score; on a total-order tie the lower
                    // global index goes first. Shard ranges are disjoint,
                    // so indices never collide.
                    Ordering::Greater => false,
                    Ordering::Less => true,
                    Ordering::Equal => l.index < r.index,
                },
                (Some(_), None) => true,
                (None, _) => false,
            };
            if take_left {
                out.push(left[i]);
                i += 1;
            } else {
                out.push(right[j]);
                j += 1;
            }
        }
        out
    })
    .map_value(|v| v.unwrap_or_default())
}

impl<T> Merged<T> {
    fn map_value<U>(self, f: impl FnOnce(T) -> U) -> Merged<U> {
        Merged {
            value: f(self.value),
            merge_ops: self.merge_ops,
        }
    }
}

/// Sharded `arg_min` over one score row: per-shard partials merged through
/// the reduction tree. Returns the winning global index (or `None` for an
/// all-NaN/empty row) and the merge-op count.
pub fn row_arg_min_sharded(row: &[f64], plan: &ShardPlan) -> Merged<Option<usize>> {
    let partials = plan
        .ranges()
        .iter()
        .map(|r| partial_arg_min(&row[r.clone()], r.start))
        .collect();
    merge_arg_min(partials).map_value(|v| v.map(|c| c.index))
}

/// Sharded `arg_max` over one score row, as [`row_arg_min_sharded`].
pub fn row_arg_max_sharded(row: &[f64], plan: &ShardPlan) -> Merged<Option<usize>> {
    let partials = plan
        .ranges()
        .iter()
        .map(|r| partial_arg_max(&row[r.clone()], r.start))
        .collect();
    merge_arg_max(partials).map_value(|v| v.map(|c| c.index))
}

/// Sharded top-`k` over one score row: per-shard partial lists merged
/// through the reduction tree. The result may be shorter than `k` when the
/// row has fewer than `k` comparable scores, exactly like
/// [`crate::ops::arg_top_k`].
pub fn row_arg_top_k_sharded(row: &[f64], k: usize, plan: &ShardPlan) -> Merged<Vec<usize>> {
    let partials = plan
        .ranges()
        .iter()
        .map(|r| partial_top_k(&row[r.clone()], r.start, k))
        .collect();
    merge_top_k(partials, k).map_value(|v| v.into_iter().map(|c| c.index).collect())
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn split_is_balanced_contiguous_and_covering() {
        for (rows, shards) in [(10, 3), (7, 7), (7, 16), (1, 4), (64, 4), (0, 3)] {
            let plan = ShardPlan::split(rows, shards);
            assert!(plan.shard_count() >= 1);
            assert!(plan.shard_count() <= rows.max(1));
            let mut next = 0;
            let mut sizes: Vec<usize> = Vec::new();
            for r in plan.ranges() {
                assert_eq!(r.start, next, "contiguous");
                next = r.end;
                sizes.push(r.len());
            }
            assert_eq!(next, rows, "covers all rows");
            let (min, max) = (sizes.iter().min().unwrap(), sizes.iter().max().unwrap());
            assert!(max - min <= 1, "balanced: {sizes:?}");
        }
    }

    #[test]
    fn default_shard_count_heuristic() {
        assert_eq!(default_shard_count(100, 1), 1);
        assert_eq!(default_shard_count(100, 4), 4);
        assert_eq!(default_shard_count(100, 64), 12, "8-row floor");
        assert_eq!(default_shard_count(7, 8), 1, "small class memory");
        assert_eq!(default_shard_count(0, 8), 1);
    }

    #[test]
    fn sharded_selection_matches_unsharded_for_all_shard_counts() {
        let row = [3.0, 1.0, 4.0, 1.0, 5.0, 9.0, 2.0, 6.0, 5.0, 3.5, 1.0];
        for shards in [1, 2, 3, 7, 16] {
            let plan = ShardPlan::split(row.len(), shards);
            let min = row_arg_min_sharded(&row, &plan);
            let max = row_arg_max_sharded(&row, &plan);
            assert_eq!(min.value, crate::ops::arg_min(&row), "shards {shards}");
            assert_eq!(max.value, crate::ops::arg_max(&row), "shards {shards}");
            if plan.shard_count() > 1 {
                assert_eq!(min.merge_ops, plan.shard_count() - 1);
            }
            for k in [1, 3, row.len()] {
                let top = row_arg_top_k_sharded(&row, k, &plan);
                assert_eq!(top.value, crate::ops::arg_top_k(&row, k), "k {k}");
            }
        }
    }

    #[test]
    fn nan_and_signed_zero_cross_shard_semantics() {
        // NaN-only shards must be skipped; -0.0 < 0.0 under the total
        // order must hold across a shard boundary.
        let row = [f64::NAN, f64::NAN, 0.0, -0.0, f64::NAN, 0.0];
        for shards in [1, 2, 3, 6] {
            let plan = ShardPlan::split(row.len(), shards);
            assert_eq!(
                row_arg_min_sharded(&row, &plan).value,
                crate::ops::arg_min(&row),
                "shards {shards}"
            );
            assert_eq!(
                row_arg_max_sharded(&row, &plan).value,
                crate::ops::arg_max(&row)
            );
            assert_eq!(
                row_arg_top_k_sharded(&row, 3, &plan).value,
                crate::ops::arg_top_k(&row, 3)
            );
        }
        // All-NaN rows select nothing, sharded or not.
        let nans = [f64::NAN; 5];
        let plan = ShardPlan::split(5, 3);
        assert_eq!(row_arg_min_sharded(&nans, &plan).value, None);
        assert!(row_arg_top_k_sharded(&nans, 2, &plan).value.is_empty());
    }

    #[test]
    fn tie_break_keeps_lowest_global_index_across_shards() {
        // The best score appears in three different shards; the global
        // first occurrence (index 1) must win for every shard count.
        let row = [5.0, 1.0, 7.0, 1.0, 8.0, 1.0];
        for shards in [1, 2, 3, 6] {
            let plan = ShardPlan::split(row.len(), shards);
            assert_eq!(row_arg_min_sharded(&row, &plan).value, Some(1));
            assert_eq!(
                row_arg_top_k_sharded(&row, 3, &plan).value,
                vec![4, 2, 0],
                "descending with deterministic order"
            );
        }
    }

    #[test]
    fn top_k_merge_counts_and_short_rows() {
        let row = [1.0, f64::NAN, 2.0, f64::NAN];
        let plan = ShardPlan::split(4, 4);
        let merged = row_arg_top_k_sharded(&row, 3, &plan);
        // Only two comparable scores exist; result is short, like
        // ops::arg_top_k.
        assert_eq!(merged.value, vec![2, 0]);
        assert_eq!(merged.merge_ops, 3, "tree merges all four shards");
    }
}
