//! Dense hypervectors.

use crate::element::Element;
use crate::error::{HdcError, Result};

/// A dense hypervector: a high-dimensional vector of [`Element`]s.
///
/// Hypervectors are the fundamental data type of HDC. Dimensions are
/// typically in the thousands (the paper uses 2048 and 10240); all operations
/// on them are element-wise or reductions and therefore embarrassingly
/// parallel.
#[derive(Debug, Clone, PartialEq)]
pub struct HyperVector<T: Element> {
    data: Vec<T>,
}

impl<T: Element> HyperVector<T> {
    /// Create a zero-initialised hypervector of the given dimension.
    ///
    /// This corresponds to the `hypervector()` primitive of Table 1.
    pub fn zeros(dimension: usize) -> Self {
        HyperVector {
            data: vec![T::ZERO; dimension],
        }
    }

    /// Create a hypervector whose every element is `value`.
    pub fn splat(dimension: usize, value: T) -> Self {
        HyperVector {
            data: vec![value; dimension],
        }
    }

    /// Create a hypervector from an existing vector of elements.
    pub fn from_vec(data: Vec<T>) -> Self {
        HyperVector { data }
    }

    /// Create a hypervector by calling `init(i)` for each index `i`.
    ///
    /// This corresponds to the `create_hypervector(Function init)` primitive.
    pub fn from_fn(dimension: usize, mut init: impl FnMut(usize) -> T) -> Self {
        HyperVector {
            data: (0..dimension).map(&mut init).collect(),
        }
    }

    /// Number of elements.
    pub fn dimension(&self) -> usize {
        self.data.len()
    }

    /// Whether the hypervector has no elements.
    pub fn is_empty(&self) -> bool {
        self.data.is_empty()
    }

    /// Borrow the elements as a slice.
    pub fn as_slice(&self) -> &[T] {
        &self.data
    }

    /// Borrow the elements as a mutable slice.
    pub fn as_mut_slice(&mut self) -> &mut [T] {
        &mut self.data
    }

    /// Consume the hypervector and return the backing vector.
    pub fn into_vec(self) -> Vec<T> {
        self.data
    }

    /// Get a single element (the `get_element` primitive).
    ///
    /// # Errors
    ///
    /// Returns [`HdcError::IndexOutOfBounds`] if `index >= dimension()`.
    pub fn get(&self, index: usize) -> Result<T> {
        self.data
            .get(index)
            .copied()
            .ok_or(HdcError::IndexOutOfBounds {
                index,
                len: self.data.len(),
            })
    }

    /// Set a single element.
    ///
    /// # Errors
    ///
    /// Returns [`HdcError::IndexOutOfBounds`] if `index >= dimension()`.
    pub fn set(&mut self, index: usize, value: T) -> Result<()> {
        let len = self.data.len();
        match self.data.get_mut(index) {
            Some(slot) => {
                *slot = value;
                Ok(())
            }
            None => Err(HdcError::IndexOutOfBounds { index, len }),
        }
    }

    /// Iterate over the elements.
    pub fn iter(&self) -> std::slice::Iter<'_, T> {
        self.data.iter()
    }

    /// Apply `f` to every element, producing a new hypervector.
    pub fn map<U: Element>(&self, f: impl Fn(T) -> U) -> HyperVector<U> {
        HyperVector {
            data: self.data.iter().map(|&x| f(x)).collect(),
        }
    }

    /// Combine two hypervectors element-wise with `f`.
    ///
    /// # Errors
    ///
    /// Returns [`HdcError::DimensionMismatch`] if the dimensions differ.
    pub fn zip_with(&self, other: &Self, f: impl Fn(T, T) -> T) -> Result<Self> {
        if self.dimension() != other.dimension() {
            return Err(HdcError::DimensionMismatch {
                expected: self.dimension(),
                actual: other.dimension(),
                context: "hypervector element-wise op",
            });
        }
        Ok(HyperVector {
            data: self
                .data
                .iter()
                .zip(other.data.iter())
                .map(|(&a, &b)| f(a, b))
                .collect(),
        })
    }

    /// Cast every element to another element type (the `type_cast` primitive).
    pub fn cast<U: Element>(&self) -> HyperVector<U> {
        self.map(|x| U::from_f64(x.to_f64()))
    }

    /// Map every element to `+1`/`-1` by its sign (the `sign` primitive).
    pub fn sign(&self) -> Self {
        self.map(Element::bipolar_sign)
    }

    /// Flip the sign of every element (the `sign_flip` primitive).
    pub fn sign_flip(&self) -> Self {
        self.map(|x| -x)
    }

    /// Element-wise absolute value (the `absolute_value` primitive).
    pub fn absolute_value(&self) -> Self {
        self.map(Element::abs_value)
    }

    /// Element-wise cosine (the `cosine` primitive).
    pub fn cosine(&self) -> Self {
        self.map(|x| T::from_f64(x.to_f64().cos()))
    }

    /// Rotate the elements right by `shift` positions with wrap-around
    /// (the `wrap_shift` primitive). Negative shifts rotate left.
    pub fn wrap_shift(&self, shift: isize) -> Self {
        let n = self.data.len();
        if n == 0 {
            return self.clone();
        }
        let shift = shift.rem_euclid(n as isize) as usize;
        let mut out = Vec::with_capacity(n);
        // Element i of the output comes from element (i - shift) mod n of the
        // input, i.e. the vector contents move right.
        for i in 0..n {
            let src = (i + n - shift) % n;
            out.push(self.data[src]);
        }
        HyperVector { data: out }
    }

    /// Sum of all elements, accumulated in `f64`.
    pub fn sum(&self) -> f64 {
        self.data.iter().map(|x| x.to_f64()).sum()
    }

    /// L2 norm of the hypervector (the `l2norm` primitive).
    pub fn l2norm(&self) -> f64 {
        self.data
            .iter()
            .map(|x| {
                let v = x.to_f64();
                v * v
            })
            .sum::<f64>()
            .sqrt()
    }
}

impl<T: Element> Default for HyperVector<T> {
    fn default() -> Self {
        HyperVector { data: Vec::new() }
    }
}

impl<T: Element> From<Vec<T>> for HyperVector<T> {
    fn from(data: Vec<T>) -> Self {
        HyperVector::from_vec(data)
    }
}

impl<T: Element> AsRef<[T]> for HyperVector<T> {
    fn as_ref(&self) -> &[T] {
        &self.data
    }
}

impl<T: Element> FromIterator<T> for HyperVector<T> {
    fn from_iter<I: IntoIterator<Item = T>>(iter: I) -> Self {
        HyperVector {
            data: iter.into_iter().collect(),
        }
    }
}

impl<T: Element> IntoIterator for HyperVector<T> {
    type Item = T;
    type IntoIter = std::vec::IntoIter<T>;

    fn into_iter(self) -> Self::IntoIter {
        self.data.into_iter()
    }
}

impl<'a, T: Element> IntoIterator for &'a HyperVector<T> {
    type Item = &'a T;
    type IntoIter = std::slice::Iter<'a, T>;

    fn into_iter(self) -> Self::IntoIter {
        self.data.iter()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn zeros_and_dimension() {
        let hv = HyperVector::<f32>::zeros(128);
        assert_eq!(hv.dimension(), 128);
        assert!(hv.iter().all(|&x| x == 0.0));
        assert!(!hv.is_empty());
        assert!(HyperVector::<f32>::default().is_empty());
    }

    #[test]
    fn from_fn_indices() {
        let hv = HyperVector::<i32>::from_fn(5, |i| i as i32 * 2);
        assert_eq!(hv.as_slice(), &[0, 2, 4, 6, 8]);
    }

    #[test]
    fn get_set_bounds() {
        let mut hv = HyperVector::<i32>::zeros(3);
        hv.set(1, 7).unwrap();
        assert_eq!(hv.get(1).unwrap(), 7);
        assert!(hv.get(3).is_err());
        assert!(hv.set(3, 1).is_err());
    }

    #[test]
    fn zip_with_dimension_mismatch() {
        let a = HyperVector::<f32>::zeros(4);
        let b = HyperVector::<f32>::zeros(5);
        assert!(matches!(
            a.zip_with(&b, |x, y| x + y),
            Err(HdcError::DimensionMismatch { .. })
        ));
    }

    #[test]
    fn sign_maps_to_bipolar() {
        let hv = HyperVector::from_vec(vec![-2.0f32, 0.0, 3.5]);
        assert_eq!(hv.sign().as_slice(), &[-1.0, 1.0, 1.0]);
    }

    #[test]
    fn sign_flip_negates() {
        let hv = HyperVector::from_vec(vec![-2i32, 0, 3]);
        assert_eq!(hv.sign_flip().as_slice(), &[2, 0, -3]);
    }

    #[test]
    fn absolute_value() {
        let hv = HyperVector::from_vec(vec![-2.0f64, 0.0, 3.5]);
        assert_eq!(hv.absolute_value().as_slice(), &[2.0, 0.0, 3.5]);
    }

    #[test]
    fn wrap_shift_rotates_right() {
        let hv = HyperVector::from_vec(vec![1i32, 2, 3, 4, 5]);
        assert_eq!(hv.wrap_shift(2).as_slice(), &[4, 5, 1, 2, 3]);
        assert_eq!(hv.wrap_shift(0).as_slice(), hv.as_slice());
        assert_eq!(hv.wrap_shift(5).as_slice(), hv.as_slice());
        assert_eq!(hv.wrap_shift(-1).as_slice(), &[2, 3, 4, 5, 1]);
        assert_eq!(hv.wrap_shift(7).as_slice(), hv.wrap_shift(2).as_slice());
    }

    #[test]
    fn wrap_shift_empty() {
        let hv = HyperVector::<i32>::zeros(0);
        assert_eq!(hv.wrap_shift(3).dimension(), 0);
    }

    #[test]
    fn l2norm_matches_manual() {
        let hv = HyperVector::from_vec(vec![3.0f32, 4.0]);
        assert!((hv.l2norm() - 5.0).abs() < 1e-12);
    }

    #[test]
    fn cast_between_types() {
        let hv = HyperVector::from_vec(vec![1.6f32, -2.4, 300.0]);
        let as_i8: HyperVector<i8> = hv.cast();
        assert_eq!(as_i8.as_slice(), &[2, -2, 127]);
        let back: HyperVector<f32> = as_i8.cast();
        assert_eq!(back.as_slice(), &[2.0, -2.0, 127.0]);
    }

    #[test]
    fn cosine_elementwise() {
        let hv = HyperVector::from_vec(vec![0.0f64, std::f64::consts::PI]);
        let c = hv.cosine();
        assert!((c.get(0).unwrap() - 1.0).abs() < 1e-12);
        assert!((c.get(1).unwrap() + 1.0).abs() < 1e-12);
    }

    #[test]
    fn collect_from_iterator() {
        let hv: HyperVector<i32> = (0..4).collect();
        assert_eq!(hv.as_slice(), &[0, 1, 2, 3]);
        let doubled: Vec<i32> = (&hv).into_iter().map(|&x| x * 2).collect();
        assert_eq!(doubled, vec![0, 2, 4, 6]);
    }

    #[test]
    fn sum_accumulates() {
        let hv = HyperVector::from_vec(vec![1i8, 2, 3, 4]);
        assert_eq!(hv.sum(), 10.0);
    }
}
