//! Free-function forms of the element-wise and reduction HDC primitives.
//!
//! Most primitives also exist as methods on [`HyperVector`] /
//! [`HyperMatrix`]; the free functions here cover the binary element-wise
//! operators (`add`, `sub`, `mul`, `div`) and the `arg_min` / `arg_max`
//! reductions of Table 1, which the runtime and back ends call directly.

use crate::element::Element;
use crate::error::Result;
use crate::hypermatrix::HyperMatrix;
use crate::hypervector::HyperVector;

/// Element-wise binary operators shared by hypervectors and hypermatrices.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum ElementwiseOp {
    /// Element-wise addition.
    Add,
    /// Element-wise subtraction.
    Sub,
    /// Element-wise multiplication (binding).
    Mul,
    /// Element-wise division.
    Div,
}

impl ElementwiseOp {
    /// Apply the operator to a pair of scalars.
    pub fn apply<T: Element>(self, a: T, b: T) -> T {
        match self {
            ElementwiseOp::Add => a + b,
            ElementwiseOp::Sub => a - b,
            ElementwiseOp::Mul => a * b,
            ElementwiseOp::Div => a / b,
        }
    }
}

impl std::fmt::Display for ElementwiseOp {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        let s = match self {
            ElementwiseOp::Add => "add",
            ElementwiseOp::Sub => "sub",
            ElementwiseOp::Mul => "mul",
            ElementwiseOp::Div => "div",
        };
        f.write_str(s)
    }
}

/// Element-wise addition of two hypervectors.
///
/// # Errors
///
/// Returns a dimension-mismatch error if the operands differ in length.
pub fn add<T: Element>(a: &HyperVector<T>, b: &HyperVector<T>) -> Result<HyperVector<T>> {
    a.zip_with(b, |x, y| x + y)
}

/// Element-wise subtraction of two hypervectors.
///
/// # Errors
///
/// Returns a dimension-mismatch error if the operands differ in length.
pub fn sub<T: Element>(a: &HyperVector<T>, b: &HyperVector<T>) -> Result<HyperVector<T>> {
    a.zip_with(b, |x, y| x - y)
}

/// Element-wise multiplication (binding) of two hypervectors.
///
/// # Errors
///
/// Returns a dimension-mismatch error if the operands differ in length.
pub fn mul<T: Element>(a: &HyperVector<T>, b: &HyperVector<T>) -> Result<HyperVector<T>> {
    a.zip_with(b, |x, y| x * y)
}

/// Element-wise division of two hypervectors.
///
/// # Errors
///
/// Returns a dimension-mismatch error if the operands differ in length.
pub fn div<T: Element>(a: &HyperVector<T>, b: &HyperVector<T>) -> Result<HyperVector<T>> {
    a.zip_with(b, |x, y| x / y)
}

/// Apply an [`ElementwiseOp`] to two hypervectors.
///
/// # Errors
///
/// Returns a dimension-mismatch error if the operands differ in length.
pub fn elementwise<T: Element>(
    op: ElementwiseOp,
    a: &HyperVector<T>,
    b: &HyperVector<T>,
) -> Result<HyperVector<T>> {
    a.zip_with(b, |x, y| op.apply(x, y))
}

/// Apply an [`ElementwiseOp`] to two hypermatrices.
///
/// # Errors
///
/// Returns a shape-mismatch error if the operands differ in shape.
pub fn elementwise_matrix<T: Element>(
    op: ElementwiseOp,
    a: &HyperMatrix<T>,
    b: &HyperMatrix<T>,
) -> Result<HyperMatrix<T>> {
    a.zip_with(b, |x, y| op.apply(x, y))
}

/// Total ordering over selection scores: NaN detection plus a total
/// comparison, so every `arg_*` selection is deterministic for any input.
///
/// Floats use [`f64::is_nan`] / [`f64::total_cmp`] (IEEE 754 `totalOrder`:
/// `-0.0` orders strictly below `0.0`); integers are already totally
/// ordered and never NaN.
pub trait TotalOrd: Copy {
    /// Whether the value is NaN (always `false` for integers).
    fn is_nan_value(self) -> bool;
    /// Compare under a total order.
    fn total_order(self, other: Self) -> std::cmp::Ordering;
}

macro_rules! total_ord_float {
    ($($t:ty),*) => {$(
        impl TotalOrd for $t {
            fn is_nan_value(self) -> bool {
                self.is_nan()
            }
            fn total_order(self, other: Self) -> std::cmp::Ordering {
                self.total_cmp(&other)
            }
        }
    )*};
}

macro_rules! total_ord_int {
    ($($t:ty),*) => {$(
        impl TotalOrd for $t {
            fn is_nan_value(self) -> bool {
                false
            }
            fn total_order(self, other: Self) -> std::cmp::Ordering {
                self.cmp(&other)
            }
        }
    )*};
}

total_ord_float!(f32, f64);
total_ord_int!(i8, i16, i32, i64);

/// Index of the minimum element of a slice (`arg_min`) under the total
/// order of [`TotalOrd`]. Ties (bit-identical values) resolve to the first
/// occurrence; NaN values are skipped. Returns `None` for an empty slice or
/// one containing only NaNs.
pub fn arg_min<T: TotalOrd>(values: &[T]) -> Option<usize> {
    let mut best: Option<(usize, T)> = None;
    for (i, &v) in values.iter().enumerate() {
        if v.is_nan_value() {
            continue;
        }
        match best {
            None => best = Some((i, v)),
            Some((_, bv)) => {
                if v.total_order(bv) == std::cmp::Ordering::Less {
                    best = Some((i, v));
                }
            }
        }
    }
    best.map(|(i, _)| i)
}

/// Index of the maximum element of a slice (`arg_max`) under the total
/// order of [`TotalOrd`]. Ties (bit-identical values) resolve to the first
/// occurrence; NaN values are skipped. Returns `None` for an empty slice or
/// one containing only NaNs.
pub fn arg_max<T: TotalOrd>(values: &[T]) -> Option<usize> {
    let mut best: Option<(usize, T)> = None;
    for (i, &v) in values.iter().enumerate() {
        if v.is_nan_value() {
            continue;
        }
        match best {
            None => best = Some((i, v)),
            Some((_, bv)) => {
                if v.total_order(bv) == std::cmp::Ordering::Greater {
                    best = Some((i, v));
                }
            }
        }
    }
    best.map(|(i, _)| i)
}

/// Indices of the `k` largest elements of a slice (`arg_top_k`), in
/// descending score order under the total order of [`TotalOrd`]. Ties
/// (bit-identical values) resolve to the lower index, and NaN values are
/// skipped, matching [`arg_max`]. When fewer than `k` comparable elements
/// exist, all of them are returned (the result may be shorter than `k`).
///
/// Scores that are distances (lower is better) should be negated (or
/// `sign_flip`ped) before selection, exactly as `arg_min` relates to
/// `arg_max`.
pub fn arg_top_k<T: TotalOrd>(values: &[T], k: usize) -> Vec<usize> {
    let mut order: Vec<usize> = (0..values.len())
        .filter(|&i| !values[i].is_nan_value())
        .collect();
    // Sort by (score descending under the total order, index ascending): a
    // total, deterministic order, so batched and per-sample selection agree
    // bit-for-bit.
    order.sort_by(|&a, &b| values[b].total_order(values[a]).then(a.cmp(&b)));
    order.truncate(k);
    order
}

/// Per-row `arg_min` of a hypermatrix, as used by batched inference.
pub fn arg_min_rows<T: Element + TotalOrd>(matrix: &HyperMatrix<T>) -> Vec<usize> {
    matrix
        .iter_rows()
        .map(|row| arg_min(row).unwrap_or(0))
        .collect()
}

/// Per-row `arg_max` of a hypermatrix.
pub fn arg_max_rows<T: Element + TotalOrd>(matrix: &HyperMatrix<T>) -> Vec<usize> {
    matrix
        .iter_rows()
        .map(|row| arg_max(row).unwrap_or(0))
        .collect()
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn elementwise_binary_ops() {
        let a = HyperVector::from_vec(vec![4.0f32, 6.0, 8.0]);
        let b = HyperVector::from_vec(vec![2.0f32, 3.0, 4.0]);
        assert_eq!(add(&a, &b).unwrap().as_slice(), &[6.0, 9.0, 12.0]);
        assert_eq!(sub(&a, &b).unwrap().as_slice(), &[2.0, 3.0, 4.0]);
        assert_eq!(mul(&a, &b).unwrap().as_slice(), &[8.0, 18.0, 32.0]);
        assert_eq!(div(&a, &b).unwrap().as_slice(), &[2.0, 2.0, 2.0]);
    }

    #[test]
    fn elementwise_dispatch_matches_direct() {
        let a = HyperVector::from_vec(vec![1i32, 2, 3]);
        let b = HyperVector::from_vec(vec![3i32, 2, 1]);
        for op in [ElementwiseOp::Add, ElementwiseOp::Sub, ElementwiseOp::Mul] {
            let direct = match op {
                ElementwiseOp::Add => add(&a, &b),
                ElementwiseOp::Sub => sub(&a, &b),
                ElementwiseOp::Mul => mul(&a, &b),
                ElementwiseOp::Div => unreachable!(),
            }
            .unwrap();
            assert_eq!(elementwise(op, &a, &b).unwrap(), direct, "{op}");
        }
    }

    #[test]
    fn elementwise_matrix_op() {
        let a = HyperMatrix::from_flat(2, 2, vec![1.0f64, 2.0, 3.0, 4.0]).unwrap();
        let b = HyperMatrix::from_flat(2, 2, vec![10.0f64, 20.0, 30.0, 40.0]).unwrap();
        let sum = elementwise_matrix(ElementwiseOp::Add, &a, &b).unwrap();
        assert_eq!(sum.as_slice(), &[11.0, 22.0, 33.0, 44.0]);
    }

    #[test]
    fn arg_min_max_basic() {
        let v = [3.0f32, 1.0, 2.0, 1.0];
        assert_eq!(arg_min(&v), Some(1));
        assert_eq!(arg_max(&v), Some(0));
        assert_eq!(arg_min::<f32>(&[]), None);
        assert_eq!(arg_max::<f32>(&[]), None);
    }

    #[test]
    fn arg_min_skips_nan() {
        let v = [f32::NAN, 2.0, 1.0];
        assert_eq!(arg_min(&v), Some(2));
    }

    #[test]
    fn arg_top_k_orders_and_breaks_ties_deterministically() {
        let v = [0.5f64, 2.0, 1.0, 2.0, -3.0];
        assert_eq!(arg_top_k(&v, 3), vec![1, 3, 2]);
        // k = 1 agrees with arg_max; ties resolve to the first occurrence.
        assert_eq!(arg_top_k(&v, 1), vec![arg_max(&v).unwrap()]);
        // Requesting more than available returns everything, sorted.
        assert_eq!(arg_top_k(&v, 10), vec![1, 3, 2, 0, 4]);
        assert_eq!(arg_top_k::<f64>(&[], 3), Vec::<usize>::new());
    }

    #[test]
    fn arg_top_k_skips_nan() {
        let v = [f64::NAN, 2.0, 3.0];
        assert_eq!(arg_top_k(&v, 2), vec![2, 1]);
    }

    #[test]
    fn signed_zero_and_nan_order_deterministically() {
        // NaN is skipped; the remaining values follow IEEE 754 totalOrder,
        // under which -0.0 < 0.0 (they are not a tie).
        let v = [-0.0f64, 0.0, f64::NAN];
        assert_eq!(arg_min(&v), Some(0));
        assert_eq!(arg_max(&v), Some(1));
        assert_eq!(arg_top_k(&v, 2), vec![1, 0]);
        assert_eq!(arg_top_k(&v, 3), vec![1, 0], "NaN never selected");
        // All-NaN input still selects nothing.
        assert_eq!(arg_min::<f64>(&[f64::NAN]), None);
        assert_eq!(arg_max::<f64>(&[f64::NAN]), None);
        // Bit-identical values remain first-occurrence ties.
        assert_eq!(arg_max(&[1.0f64, 1.0]), Some(0));
        assert_eq!(arg_min(&[2i64, 2, 1]), Some(2));
    }

    #[test]
    fn arg_rows() {
        let m = HyperMatrix::from_flat(2, 3, vec![5.0f32, 1.0, 2.0, 0.0, 9.0, 3.0]).unwrap();
        assert_eq!(arg_min_rows(&m), vec![1, 0]);
        assert_eq!(arg_max_rows(&m), vec![0, 1]);
    }

    #[test]
    fn display_names() {
        assert_eq!(ElementwiseOp::Add.to_string(), "add");
        assert_eq!(ElementwiseOp::Div.to_string(), "div");
    }
}
