//! Batched, matrix-level inference kernels.
//!
//! HDC inference under load is not "one query at a time": a back end receives
//! a whole matrix of encoded queries and scores every row against the class
//! hypermatrix in one call. These kernels are the batched forms of the
//! [`crate::similarity`] primitives, written for throughput:
//!
//! * [`hamming_distance_batch`] — bit-packed queries × bit-packed classes,
//!   word-blocked XOR/popcount inner loops. Perforated reductions are
//!   evaluated by masking the packed words with a precomputed visit mask
//!   instead of walking indices bit by bit.
//! * [`cosine_similarity_batch`] — dense queries × dense classes with the
//!   class-row norms precomputed once per batch and reused for every query
//!   row (the per-sample form recomputes them per query).
//! * [`hamming_distance_batch_dense`] — the dense reference form of the
//!   Hamming batch, for unbinarized configurations.
//!
//! All three parallelize over query rows through the rayon compat layer and
//! produce results **bit-identical** to looping the per-sample kernels row by
//! row: integer popcounts are exact, and the dense kernels accumulate in the
//! same element order as their per-sample counterparts. That equivalence is
//! what lets `hdc-runtime` swap a per-sample stage loop for one batched call
//! without changing any classification output.

use crate::binary::BitMatrix;
use crate::element::Element;
use crate::error::{HdcError, Result};
use crate::hypermatrix::HyperMatrix;
use crate::hypervector::HyperVector;
use crate::ops::TotalOrd;
use crate::perforation::Perforation;
use crate::shard::ShardPlan;
use crate::similarity::norm_sq_perforated;
use rayon::prelude::*;

const WORD_BITS: usize = 64;

fn check_cols(a: usize, b: usize, context: &'static str) -> Result<()> {
    if a != b {
        return Err(HdcError::DimensionMismatch {
            expected: a,
            actual: b,
            context,
        });
    }
    Ok(())
}

/// Build the packed word mask selecting the indices a perforation descriptor
/// visits, so a perforated Hamming reduction becomes `popcount((a ^ b) & m)`.
fn perforation_mask(dimension: usize, perforation: Perforation) -> Vec<u64> {
    let mut mask = vec![0u64; dimension.div_ceil(WORD_BITS)];
    for i in perforation.indices(dimension) {
        mask[i / WORD_BITS] |= 1u64 << (i % WORD_BITS);
    }
    mask
}

/// Hamming distance from every row of `queries` to every row of `classes`,
/// producing a `queries.rows() x classes.rows()` score matrix.
///
/// Row `q` of the result equals
/// [`BitMatrix::hamming_distances`]`(queries.row(q), perforation)` exactly:
/// distances are integer popcounts, and perforated reductions count only the
/// visited positions (not rescaled, following the paper).
///
/// # Errors
///
/// Returns a dimension-mismatch error if the column counts differ and an
/// invalid-perforation error for a bad descriptor.
pub fn hamming_distance_batch(
    queries: &BitMatrix,
    classes: &BitMatrix,
    perforation: Perforation,
) -> Result<HyperMatrix<f64>> {
    check_cols(queries.cols(), classes.cols(), "hamming distance batch")?;
    perforation.validate(queries.cols())?;
    let mask = if perforation.is_dense_over(queries.cols()) {
        None
    } else {
        Some(perforation_mask(queries.cols(), perforation))
    };
    // One dispatch-table fetch per batch call; the row loops then run on
    // plain function pointers (scalar oracle or the selected SIMD backend,
    // bit-identical either way).
    let kernels = crate::simd::bit_kernels();
    let query_words: Vec<&[u64]> = queries.iter().map(|r| r.as_words()).collect();
    let rows: Vec<HyperVector<f64>> = query_words
        .into_par_iter()
        .map(|q| {
            let scores: Vec<f64> = classes
                .iter()
                .map(|class| {
                    let count = match &mask {
                        None => (kernels.xor_popcount)(q, class.as_words()),
                        Some(m) => (kernels.xor_popcount_masked)(q, class.as_words(), m),
                    };
                    count as f64
                })
                .collect();
            HyperVector::from_vec(scores)
        })
        .collect();
    HyperMatrix::from_rows(rows)
}

/// Class rows processed together by one [`cosine_similarity_batch`] inner
/// block: each keeps its own dot-product accumulator, giving independent
/// multiply-add chains where a single dependent chain would serialize on
/// add latency.
const COSINE_CLASS_BLOCK: usize = 4;

/// Pack `rows` (each sliced to `cols`) into a column-major `f64` panel:
/// `panel[c * rows.len() + k]` holds row `k`'s element `c`, so a walk down
/// the element axis reads one contiguous lane group per element. This is
/// the micro-kernel layout shared by [`dot_panel`] consumers: the blocked
/// cosine batch here and the blocked [`crate::matmul::matmul_batch`].
pub(crate) fn pack_panel<T: Element>(rows: &[&[T]], cols: usize) -> Vec<f64> {
    let rs: Vec<&[T]> = rows.iter().map(|r| &r[..cols]).collect();
    let mut panel = Vec::with_capacity(cols * rs.len());
    for c in 0..cols {
        for row in &rs {
            panel.push(row[c].to_f64());
        }
    }
    panel
}

/// A block of class rows packed into a column-major `f64` panel
/// ([`pack_panel`]), once per batch, reused for every query row.
struct ClassPanel {
    width: usize,
    panel: Vec<f64>,
}

fn pack_class_panels<T: Element>(class_rows: &[&[T]], cols: usize) -> Vec<ClassPanel> {
    let mut panels = Vec::new();
    let mut off = 0;
    for width in [COSINE_CLASS_BLOCK, 2, 1] {
        while class_rows.len() - off >= width {
            panels.push(ClassPanel {
                width,
                panel: pack_panel(&class_rows[off..off + width], cols),
            });
            off += width;
        }
    }
    panels
}

/// Dot products of one streamed row against a [`pack_panel`]-packed block,
/// walking the element axis once. `B` is a compile-time width so the lane
/// loop unrolls into SIMD-friendly contiguous reads; each accumulator sums
/// in ascending element order, bit-identical to the per-sample kernel on
/// that pair. Shared with the blocked [`crate::matmul::matmul_batch`].
pub(crate) fn dot_panel<T: Element, const B: usize>(
    q: &[T],
    panel: &[f64],
    dense: bool,
    perforation: Perforation,
) -> [f64; B] {
    let mut acc = [0.0f64; B];
    if dense {
        // `f64` rows go straight to the dispatched panel kernel (SIMD when
        // selected); the generic path below is the same loop with a
        // per-element `to_f64`. Both keep `B` independent accumulator
        // chains in ascending element order, so outputs are bit-identical.
        if let Some(qf) = T::as_f64_slice(q) {
            return crate::simd::dot_panel_dense::<B>(qf, panel);
        }
        for (lanes, x) in panel.chunks_exact(B).zip(q.iter()) {
            let qv = x.to_f64();
            for k in 0..B {
                acc[k] += qv * lanes[k];
            }
        }
    } else {
        for i in perforation.indices(q.len()) {
            let qv = q[i].to_f64();
            let lanes = &panel[i * B..i * B + B];
            for k in 0..B {
                acc[k] += qv * lanes[k];
            }
        }
    }
    acc
}

/// Cosine similarity between every row of `queries` and every row of
/// `classes`, producing a `queries.rows() x classes.rows()` score matrix.
///
/// The class-row norms are precomputed once per batch and reused for every
/// query row; the per-sample form
/// ([`crate::similarity::cosine_similarity_matrix`]) recomputes them for each
/// query. Class rows are scored `COSINE_CLASS_BLOCK` at a time with
/// independent accumulator chains, and each accumulation order matches the
/// per-sample kernel, so row `q` of the result is bit-identical to the
/// per-sample scores for `queries.row(q)`.
///
/// # Errors
///
/// Returns a dimension-mismatch error if the column counts differ and an
/// invalid-perforation error for a bad descriptor.
pub fn cosine_similarity_batch<T: Element>(
    queries: &HyperMatrix<T>,
    classes: &HyperMatrix<T>,
    perforation: Perforation,
) -> Result<HyperMatrix<f64>> {
    check_cols(queries.cols(), classes.cols(), "cosine similarity batch")?;
    perforation.validate(queries.cols())?;
    let dense = perforation.is_dense_over(queries.cols());
    let class_rows: Vec<&[T]> = classes.iter_rows().collect();
    let class_norms: Vec<f64> = class_rows
        .iter()
        .map(|row| norm_sq_perforated(row, perforation).sqrt())
        .collect();
    let panels = pack_class_panels(&class_rows, classes.cols());
    let query_rows: Vec<&[T]> = queries.iter_rows().collect();
    let rows: Vec<HyperVector<f64>> = query_rows
        .into_par_iter()
        .map(|q| {
            let qn = norm_sq_perforated(q, perforation).sqrt();
            let mut dots: Vec<f64> = Vec::with_capacity(class_rows.len());
            for p in &panels {
                match p.width {
                    4 => dots.extend(dot_panel::<T, 4>(q, &p.panel, dense, perforation)),
                    2 => dots.extend(dot_panel::<T, 2>(q, &p.panel, dense, perforation)),
                    _ => dots.extend(dot_panel::<T, 1>(q, &p.panel, dense, perforation)),
                }
            }
            let scores: Vec<f64> = dots
                .into_iter()
                .zip(class_norms.iter())
                .map(|(dot, &rn)| {
                    if qn == 0.0 || rn == 0.0 {
                        0.0
                    } else {
                        dot / (qn * rn)
                    }
                })
                .collect();
            HyperVector::from_vec(scores)
        })
        .collect();
    HyperMatrix::from_rows(rows)
}

/// Hamming distance between every row of two dense hypermatrices (the
/// unbinarized reference form of [`hamming_distance_batch`]).
///
/// # Errors
///
/// Returns a dimension-mismatch error if the column counts differ and an
/// invalid-perforation error for a bad descriptor.
pub fn hamming_distance_batch_dense<T: Element>(
    queries: &HyperMatrix<T>,
    classes: &HyperMatrix<T>,
    perforation: Perforation,
) -> Result<HyperMatrix<f64>> {
    check_cols(queries.cols(), classes.cols(), "hamming distance batch")?;
    perforation.validate(queries.cols())?;
    let dense = perforation.is_dense_over(queries.cols());
    let query_rows: Vec<&[T]> = queries.iter_rows().collect();
    let rows: Vec<HyperVector<f64>> = query_rows
        .into_par_iter()
        .map(|q| {
            let scores: Vec<f64> = classes
                .iter_rows()
                .map(|row| {
                    let count = if dense {
                        q.iter().zip(row.iter()).filter(|(x, y)| x != y).count()
                    } else {
                        perforation
                            .indices(q.len())
                            .filter(|&i| q[i] != row[i])
                            .count()
                    };
                    count as f64
                })
                .collect();
            HyperVector::from_vec(scores)
        })
        .collect();
    HyperMatrix::from_rows(rows)
}

/// Which similarity reduction an epoch-scoring call performs.
///
/// The batched training schedule scores a whole epoch with one kernel; the
/// metric names which per-sample reduction that kernel must be
/// bit-identical to.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum SimilarityMetric {
    /// `cossim` scores ([`cosine_similarity_batch`]).
    Cosine,
    /// Dense `hamming_distance` scores ([`hamming_distance_batch_dense`]).
    Hamming,
}

/// Score a whole training epoch in one batched similarity call: every row
/// of `train` against every row of the **frozen** class matrix `classes`,
/// producing a `train.rows() x classes.rows()` score matrix.
///
/// This is the epoch-scoring kernel of the batched training schedule: the
/// executor freezes the class matrix at the top of an epoch, scores the
/// entire train matrix here, and then replays the perceptron updates in
/// sample order, re-scoring only samples whose class rows changed since the
/// freeze. Row `q` of the result is bit-identical to the per-sample
/// reference kernel for `train.row(q)`
/// ([`crate::similarity::cosine_similarity_matrix`] /
/// [`crate::similarity::hamming_distance_matrix`]), which is what keeps the
/// replay equal to the sequential oracle.
///
/// # Errors
///
/// Returns a dimension-mismatch error if the column counts differ and an
/// invalid-perforation error for a bad descriptor.
pub fn score_epoch<T: Element>(
    train: &HyperMatrix<T>,
    classes: &HyperMatrix<T>,
    metric: SimilarityMetric,
    perforation: Perforation,
) -> Result<HyperMatrix<f64>> {
    match metric {
        SimilarityMetric::Cosine => cosine_similarity_batch(train, classes, perforation),
        SimilarityMetric::Hamming => hamming_distance_batch_dense(train, classes, perforation),
    }
}

/// Segmented reduction: sum encoded rows into per-segment accumulators
/// keyed by an assignment vector, starting from `init`.
///
/// `segments[i]` names the accumulator row that `rows.row(i)` is added to;
/// the result is `init` with every segment's member rows added **in
/// ascending row index order**, which makes the output bit-identical to the
/// sequential schedule (`for i { acc[segments[i]] += rows[i] }`): within
/// one accumulator row the additions happen in the same order, and rows of
/// different segments never interact. Segments are reduced in parallel
/// through the rayon compat layer. This is the batched form of the
/// clustering update's accumulate-by-assignment loop.
///
/// # Errors
///
/// Returns a dimension-mismatch error when `segments` is not one entry per
/// row or the column counts differ, and an index error when an assignment
/// names a row outside `init`.
pub fn accumulate_by_segment<T: Element>(
    rows: &HyperMatrix<T>,
    segments: &[usize],
    init: &HyperMatrix<f64>,
) -> Result<HyperMatrix<f64>> {
    segmented_reduce(rows.rows(), rows.cols(), segments, init, |acc, i| {
        let row = rows.row(i).expect("row index in range");
        for (slot, x) in acc.iter_mut().zip(row.iter()) {
            *slot += x.to_f64();
        }
    })
}

/// Shared validation and per-segment reduction skeleton of the
/// `accumulate_by_segment` variants: one assignment per row, matching
/// column counts, in-bounds segment ids; then every accumulator row is
/// reduced in parallel, folding its member rows in ascending index order
/// via `add_row(acc, row_index)`.
fn segmented_reduce<F>(
    rows_count: usize,
    rows_cols: usize,
    segments: &[usize],
    init: &HyperMatrix<f64>,
    add_row: F,
) -> Result<HyperMatrix<f64>>
where
    F: Fn(&mut [f64], usize) + Sync,
{
    if segments.len() != rows_count {
        return Err(HdcError::DimensionMismatch {
            expected: rows_count,
            actual: segments.len(),
            context: "accumulate_by_segment assignments",
        });
    }
    check_cols(init.cols(), rows_cols, "accumulate_by_segment")?;
    if let Some(&bad) = segments.iter().find(|&&s| s >= init.rows()) {
        return Err(HdcError::IndexOutOfBounds {
            index: bad,
            len: init.rows(),
        });
    }
    let out_rows: Vec<HyperVector<f64>> = (0..init.rows())
        .collect::<Vec<_>>()
        .into_par_iter()
        .map(|seg| {
            let mut acc: Vec<f64> = init.row(seg).expect("segment bounds checked").to_vec();
            for (i, &s) in segments.iter().enumerate() {
                if s == seg {
                    add_row(&mut acc, i);
                }
            }
            HyperVector::from_vec(acc)
        })
        .collect();
    HyperMatrix::from_rows(out_rows)
}

/// [`accumulate_by_segment`] over bit-packed bipolar rows: each member row
/// contributes `+1`/`-1` per element (a set bit is negative, matching
/// [`crate::BitVector::to_dense`]), unpacked on the fly — no dense
/// intermediate matrix is materialized. Bit-identical to unpacking `rows`
/// and calling the dense form.
///
/// # Errors
///
/// Same contract as [`accumulate_by_segment`].
pub fn accumulate_by_segment_bits(
    rows: &BitMatrix,
    segments: &[usize],
    init: &HyperMatrix<f64>,
) -> Result<HyperMatrix<f64>> {
    let cols = rows.cols();
    let kernels = crate::simd::bit_kernels();
    segmented_reduce(rows.rows(), cols, segments, init, |acc, i| {
        let words = rows.row(i).expect("row index in range").as_words();
        (kernels.add_signs)(&mut acc[..cols], words);
    })
}

/// Per-row top-`k` selection over a score matrix (one row of scores per
/// query), flattened row-major: entry `q * k + j` is the index of query
/// `q`'s `j`-th best (largest) score. This is the batched form of
/// [`crate::ops::arg_top_k`] used by `arg_top_k` on hypermatrix operands —
/// spectral matching scores a whole query batch against a library in one
/// all-pairs similarity call and then selects every row's top matches here.
///
/// Selection per row is exactly [`crate::ops::arg_top_k`] (descending score,
/// ties to the lower index), so the batched result is bit-identical to
/// looping the per-sample kernel. Rows are processed through the rayon
/// compat layer.
///
/// # Errors
///
/// Returns an invalid-input error when `k` is zero or exceeds the number of
/// score columns (a top-k past the candidate count is a program bug, not a
/// clamp).
pub fn arg_top_k_batch<T: Element + TotalOrd>(
    scores: &HyperMatrix<T>,
    k: usize,
) -> Result<Vec<usize>> {
    if k == 0 || k > scores.cols() {
        return Err(HdcError::IndexOutOfBounds {
            index: k,
            len: scores.cols(),
        });
    }
    let rows: Vec<&[T]> = scores.iter_rows().collect();
    let picked: Vec<Vec<usize>> = rows
        .into_par_iter()
        .map(|row| crate::ops::arg_top_k(row, k))
        .collect();
    // arg_top_k skips incomparable (NaN) scores; a short row would make the
    // flattened row-major layout ragged, so reject it explicitly.
    if let Some(short) = picked.iter().find(|p| p.len() < k) {
        return Err(HdcError::IndexOutOfBounds {
            index: k,
            len: short.len(),
        });
    }
    Ok(picked.into_iter().flatten().collect())
}

/// Validate that a shard plan was built for this class-row count.
fn check_shard_plan(plan: &ShardPlan, class_rows: usize) -> Result<()> {
    if plan.rows() != class_rows {
        return Err(HdcError::DimensionMismatch {
            expected: class_rows,
            actual: plan.rows(),
            context: "shard plan class rows",
        });
    }
    Ok(())
}

/// Enumerate the flattened `(query row, shard)` work list of a two-axis
/// sharded kernel. The class axis is folded into the same flat list the
/// rayon compat layer chunks over — shard work steals idle threads when
/// there are few query rows without ever nesting parallel scopes.
fn sharded_items(query_rows: usize, shards: usize) -> Vec<(usize, usize)> {
    let mut items = Vec::with_capacity(query_rows * shards);
    for q in 0..query_rows {
        for s in 0..shards {
            items.push((q, s));
        }
    }
    items
}

/// Stitch per-`(row, shard)` score blocks (row-major, ascending shard
/// order) back into the full `rows x cols` score matrix.
fn stitch_blocks(
    rows: usize,
    shards: usize,
    cols: usize,
    blocks: Vec<Vec<f64>>,
) -> Result<HyperMatrix<f64>> {
    let stitched: Vec<HyperVector<f64>> = (0..rows)
        .map(|r| {
            let mut row = Vec::with_capacity(cols);
            for block in &blocks[r * shards..(r + 1) * shards] {
                row.extend_from_slice(block);
            }
            HyperVector::from_vec(row)
        })
        .collect();
    HyperMatrix::from_rows(stitched)
}

/// Class-memory-sharded form of [`hamming_distance_batch`]: every
/// `(query row, class shard)` pair is an independent work item, and the
/// per-shard score blocks are stitched into the same `queries.rows() x
/// classes.rows()` matrix. Bit-identical to the unsharded kernel — each
/// distance is the same exact integer popcount regardless of which shard
/// computes it. A single-shard plan delegates to the unsharded kernel.
///
/// # Errors
///
/// As [`hamming_distance_batch`], plus a dimension-mismatch error when
/// `plan` was not built for `classes.rows()` rows.
pub fn hamming_distance_batch_sharded(
    queries: &BitMatrix,
    classes: &BitMatrix,
    perforation: Perforation,
    plan: &ShardPlan,
) -> Result<HyperMatrix<f64>> {
    check_shard_plan(plan, classes.rows())?;
    if plan.shard_count() <= 1 {
        return hamming_distance_batch(queries, classes, perforation);
    }
    check_cols(queries.cols(), classes.cols(), "hamming distance batch")?;
    perforation.validate(queries.cols())?;
    let mask = if perforation.is_dense_over(queries.cols()) {
        None
    } else {
        Some(perforation_mask(queries.cols(), perforation))
    };
    let kernels = crate::simd::bit_kernels();
    let query_words: Vec<&[u64]> = queries.iter().map(|r| r.as_words()).collect();
    let class_words: Vec<&[u64]> = classes.iter().map(|r| r.as_words()).collect();
    let shards = plan.shard_count();
    let blocks: Vec<Vec<f64>> = sharded_items(query_words.len(), shards)
        .into_par_iter()
        .map(|(qi, si)| {
            let q = query_words[qi];
            plan.ranges()[si]
                .clone()
                .map(|c| {
                    let count = match &mask {
                        None => (kernels.xor_popcount)(q, class_words[c]),
                        Some(m) => (kernels.xor_popcount_masked)(q, class_words[c], m),
                    };
                    count as f64
                })
                .collect()
        })
        .collect();
    stitch_blocks(query_words.len(), shards, classes.rows(), blocks)
}

/// Class-memory-sharded form of [`cosine_similarity_batch`]. The class
/// panels are packed per shard with the same `[4, 2, 1]` width schedule;
/// since every class row keeps its own accumulator chain in ascending
/// element order, panel grouping cannot change any value and the stitched
/// matrix is bit-identical to the unsharded kernel. A single-shard plan
/// delegates to the unsharded kernel.
///
/// # Errors
///
/// As [`cosine_similarity_batch`], plus a dimension-mismatch error when
/// `plan` was not built for `classes.rows()` rows.
pub fn cosine_similarity_batch_sharded<T: Element>(
    queries: &HyperMatrix<T>,
    classes: &HyperMatrix<T>,
    perforation: Perforation,
    plan: &ShardPlan,
) -> Result<HyperMatrix<f64>> {
    check_shard_plan(plan, classes.rows())?;
    if plan.shard_count() <= 1 {
        return cosine_similarity_batch(queries, classes, perforation);
    }
    check_cols(queries.cols(), classes.cols(), "cosine similarity batch")?;
    perforation.validate(queries.cols())?;
    let dense = perforation.is_dense_over(queries.cols());
    let class_rows: Vec<&[T]> = classes.iter_rows().collect();
    let class_norms: Vec<f64> = class_rows
        .iter()
        .map(|row| norm_sq_perforated(row, perforation).sqrt())
        .collect();
    let shard_panels: Vec<Vec<ClassPanel>> = plan
        .ranges()
        .iter()
        .map(|r| pack_class_panels(&class_rows[r.clone()], classes.cols()))
        .collect();
    let query_rows: Vec<&[T]> = queries.iter_rows().collect();
    let shards = plan.shard_count();
    let blocks: Vec<Vec<f64>> = sharded_items(query_rows.len(), shards)
        .into_par_iter()
        .map(|(qi, si)| {
            let q = query_rows[qi];
            // Recomputed per (row, shard): the same exact sqrt of the same
            // exact sum, so duplication cannot diverge from the unsharded
            // per-row value.
            let qn = norm_sq_perforated(q, perforation).sqrt();
            let range = plan.ranges()[si].clone();
            let mut dots: Vec<f64> = Vec::with_capacity(range.len());
            for p in &shard_panels[si] {
                match p.width {
                    4 => dots.extend(dot_panel::<T, 4>(q, &p.panel, dense, perforation)),
                    2 => dots.extend(dot_panel::<T, 2>(q, &p.panel, dense, perforation)),
                    _ => dots.extend(dot_panel::<T, 1>(q, &p.panel, dense, perforation)),
                }
            }
            dots.into_iter()
                .zip(class_norms[range].iter())
                .map(|(dot, &rn)| {
                    if qn == 0.0 || rn == 0.0 {
                        0.0
                    } else {
                        dot / (qn * rn)
                    }
                })
                .collect()
        })
        .collect();
    stitch_blocks(query_rows.len(), shards, classes.rows(), blocks)
}

/// Class-memory-sharded form of [`hamming_distance_batch_dense`];
/// bit-identical (exact integer counts). A single-shard plan delegates to
/// the unsharded kernel.
///
/// # Errors
///
/// As [`hamming_distance_batch_dense`], plus a dimension-mismatch error
/// when `plan` was not built for `classes.rows()` rows.
pub fn hamming_distance_batch_dense_sharded<T: Element>(
    queries: &HyperMatrix<T>,
    classes: &HyperMatrix<T>,
    perforation: Perforation,
    plan: &ShardPlan,
) -> Result<HyperMatrix<f64>> {
    check_shard_plan(plan, classes.rows())?;
    if plan.shard_count() <= 1 {
        return hamming_distance_batch_dense(queries, classes, perforation);
    }
    check_cols(queries.cols(), classes.cols(), "hamming distance batch")?;
    perforation.validate(queries.cols())?;
    let dense = perforation.is_dense_over(queries.cols());
    let class_rows: Vec<&[T]> = classes.iter_rows().collect();
    let query_rows: Vec<&[T]> = queries.iter_rows().collect();
    let shards = plan.shard_count();
    let blocks: Vec<Vec<f64>> = sharded_items(query_rows.len(), shards)
        .into_par_iter()
        .map(|(qi, si)| {
            let q = query_rows[qi];
            plan.ranges()[si]
                .clone()
                .map(|c| {
                    let row = class_rows[c];
                    let count = if dense {
                        q.iter().zip(row.iter()).filter(|(x, y)| x != y).count()
                    } else {
                        perforation
                            .indices(q.len())
                            .filter(|&i| q[i] != row[i])
                            .count()
                    };
                    count as f64
                })
                .collect()
        })
        .collect();
    stitch_blocks(query_rows.len(), shards, classes.rows(), blocks)
}

/// Class-memory-sharded form of [`score_epoch`]: the epoch-scoring kernel
/// with the class (frozen class matrix) axis sharded. Bit-identical to
/// [`score_epoch`] for any plan.
///
/// # Errors
///
/// Same contract as [`score_epoch`] plus the shard-plan check.
pub fn score_epoch_sharded<T: Element>(
    train: &HyperMatrix<T>,
    classes: &HyperMatrix<T>,
    metric: SimilarityMetric,
    perforation: Perforation,
    plan: &ShardPlan,
) -> Result<HyperMatrix<f64>> {
    match metric {
        SimilarityMetric::Cosine => {
            cosine_similarity_batch_sharded(train, classes, perforation, plan)
        }
        SimilarityMetric::Hamming => {
            hamming_distance_batch_dense_sharded(train, classes, perforation, plan)
        }
    }
}

/// Class-memory-sharded form of [`arg_top_k_batch`]: each row's selection
/// runs per shard and merges through the reduction tree
/// ([`crate::shard::merge_top_k`]). Returns the flattened row-major picks
/// plus the total pairwise merge-op count (for `ExecStats` accounting).
/// Bit-identical to [`arg_top_k_batch`], including the short-row rejection:
/// the merged list is shorter than `k` exactly when the whole row has fewer
/// than `k` comparable scores.
///
/// # Errors
///
/// Same contract as [`arg_top_k_batch`] plus the shard-plan check (the
/// plan must cover the score columns, i.e. the class axis).
pub fn arg_top_k_batch_sharded(
    scores: &HyperMatrix<f64>,
    k: usize,
    plan: &ShardPlan,
) -> Result<(Vec<usize>, usize)> {
    check_shard_plan(plan, scores.cols())?;
    if plan.shard_count() <= 1 {
        return Ok((arg_top_k_batch(scores, k)?, 0));
    }
    if k == 0 || k > scores.cols() {
        return Err(HdcError::IndexOutOfBounds {
            index: k,
            len: scores.cols(),
        });
    }
    let rows: Vec<&[f64]> = scores.iter_rows().collect();
    let picked: Vec<crate::shard::Merged<Vec<usize>>> = rows
        .into_par_iter()
        .map(|row| crate::shard::row_arg_top_k_sharded(row, k, plan))
        .collect();
    if let Some(short) = picked.iter().find(|p| p.value.len() < k) {
        return Err(HdcError::IndexOutOfBounds {
            index: k,
            len: short.value.len(),
        });
    }
    let merge_ops = picked.iter().map(|p| p.merge_ops).sum();
    Ok((
        picked.into_iter().flat_map(|p| p.value).collect(),
        merge_ops,
    ))
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::binary::BitVector;
    use crate::random;
    use crate::similarity::{cosine_similarity_matrix, hamming_distance_matrix};
    use crate::HdcRng;
    use rand::SeedableRng;

    fn fixtures(
        rows: usize,
        classes: usize,
        dim: usize,
    ) -> (HyperMatrix<f64>, HyperMatrix<f64>, BitMatrix, BitMatrix) {
        let mut rng = HdcRng::seed_from_u64(0xBA7C);
        let q: HyperMatrix<f64> = random::bipolar_hypermatrix(rows, dim, &mut rng);
        let c: HyperMatrix<f64> = random::bipolar_hypermatrix(classes, dim, &mut rng);
        let qb = BitMatrix::from_dense(&q);
        let cb = BitMatrix::from_dense(&c);
        (q, c, qb, cb)
    }

    fn perforations(dim: usize) -> Vec<Perforation> {
        vec![
            Perforation::NONE,
            Perforation::strided(0, dim, 2),
            Perforation::segment(0, dim / 2),
            Perforation::strided(3, dim - 5, 3),
        ]
    }

    #[test]
    fn bit_batch_matches_per_sample_rows() {
        let (q, c, qb, cb) = fixtures(7, 5, 193);
        for perf in perforations(193) {
            let batch = hamming_distance_batch(&qb, &cb, perf).unwrap();
            assert_eq!((batch.rows(), batch.cols()), (7, 5));
            for r in 0..7 {
                let expect = cb.hamming_distances(qb.row(r).unwrap(), perf).unwrap();
                assert_eq!(batch.row(r).unwrap(), expect.as_slice(), "perf {perf}");
                // And the dense definition agrees.
                let dense_expect =
                    hamming_distance_matrix(&q.row_vector(r).unwrap(), &c, perf).unwrap();
                assert_eq!(batch.row(r).unwrap(), dense_expect.as_slice());
            }
        }
    }

    #[test]
    fn cosine_batch_is_bit_identical_to_per_sample() {
        let mut rng = HdcRng::seed_from_u64(0xC055);
        let q: HyperMatrix<f64> = random::gaussian_hypermatrix(6, 97, &mut rng);
        let c: HyperMatrix<f64> = random::gaussian_hypermatrix(4, 97, &mut rng);
        for perf in perforations(97) {
            let batch = cosine_similarity_batch(&q, &c, perf).unwrap();
            for r in 0..6 {
                let expect = cosine_similarity_matrix(&q.row_vector(r).unwrap(), &c, perf).unwrap();
                assert_eq!(
                    batch.row(r).unwrap(),
                    expect.as_slice(),
                    "bit-identical, perf {perf}"
                );
            }
        }
    }

    #[test]
    fn dense_hamming_batch_matches_per_sample() {
        let (q, c, _, _) = fixtures(5, 3, 130);
        for perf in perforations(130) {
            let batch = hamming_distance_batch_dense(&q, &c, perf).unwrap();
            for r in 0..5 {
                let expect = hamming_distance_matrix(&q.row_vector(r).unwrap(), &c, perf).unwrap();
                assert_eq!(batch.row(r).unwrap(), expect.as_slice());
            }
        }
    }

    #[test]
    fn zero_norm_rows_score_zero() {
        let q = HyperMatrix::<f64>::zeros(2, 8);
        let c = HyperMatrix::<f64>::from_fn(2, 8, |r, _| r as f64);
        let batch = cosine_similarity_batch(&q, &c, Perforation::NONE).unwrap();
        assert!(batch.as_slice().iter().all(|&x| x == 0.0));
    }

    #[test]
    fn dimension_and_perforation_errors() {
        let a = BitMatrix::zeros(2, 64);
        let b = BitMatrix::zeros(2, 65);
        assert!(hamming_distance_batch(&a, &b, Perforation::NONE).is_err());
        assert!(hamming_distance_batch(&a, &a, Perforation::new(0, 64, 0)).is_err());
        let m = HyperMatrix::<f64>::zeros(2, 8);
        let n = HyperMatrix::<f64>::zeros(2, 9);
        assert!(cosine_similarity_batch(&m, &n, Perforation::NONE).is_err());
        assert!(hamming_distance_batch_dense(&m, &n, Perforation::NONE).is_err());
    }

    #[test]
    fn empty_batches_are_legal() {
        let q = BitMatrix::from_rows(Vec::new()).unwrap();
        let c = BitMatrix::from_rows(vec![BitVector::zeros(0)]).unwrap();
        let out = hamming_distance_batch(&q, &c, Perforation::NONE).unwrap();
        assert_eq!(out.rows(), 0);
    }

    #[test]
    fn top_k_batch_matches_per_row_selection() {
        let mut rng = HdcRng::seed_from_u64(0x0709);
        let scores: HyperMatrix<f64> = random::gaussian_hypermatrix(9, 23, &mut rng);
        for k in [1, 3, 23] {
            let flat = arg_top_k_batch(&scores, k).unwrap();
            assert_eq!(flat.len(), 9 * k);
            for r in 0..9 {
                let expect = crate::ops::arg_top_k(scores.row(r).unwrap(), k);
                assert_eq!(
                    &flat[r * k..(r + 1) * k],
                    expect.as_slice(),
                    "row {r} k {k}"
                );
            }
        }
        // k = 1 agrees with per-row arg_max.
        assert_eq!(
            arg_top_k_batch(&scores, 1).unwrap(),
            crate::ops::arg_max_rows(&scores)
        );
    }

    #[test]
    fn top_k_batch_rejects_bad_k() {
        let scores = HyperMatrix::<f64>::zeros(2, 4);
        assert!(arg_top_k_batch(&scores, 0).is_err());
        assert!(arg_top_k_batch(&scores, 5).is_err());
    }

    #[test]
    fn score_epoch_matches_per_sample_reference() {
        let mut rng = HdcRng::seed_from_u64(0xE90C);
        let train: HyperMatrix<f64> = random::gaussian_hypermatrix(9, 130, &mut rng);
        let classes: HyperMatrix<f64> = random::gaussian_hypermatrix(5, 130, &mut rng);
        for perf in perforations(130) {
            let cos = score_epoch(&train, &classes, SimilarityMetric::Cosine, perf).unwrap();
            let ham = score_epoch(&train, &classes, SimilarityMetric::Hamming, perf).unwrap();
            for r in 0..9 {
                let q = train.row_vector(r).unwrap();
                let expect_cos = cosine_similarity_matrix(&q, &classes, perf).unwrap();
                let expect_ham = hamming_distance_matrix(&q, &classes, perf).unwrap();
                assert_eq!(cos.row(r).unwrap(), expect_cos.as_slice(), "perf {perf}");
                assert_eq!(ham.row(r).unwrap(), expect_ham.as_slice(), "perf {perf}");
            }
        }
    }

    #[test]
    fn segmented_accumulation_matches_sequential_order() {
        let mut rng = HdcRng::seed_from_u64(0x5E69);
        let rows: HyperMatrix<f64> = random::gaussian_hypermatrix(11, 37, &mut rng);
        let init: HyperMatrix<f64> = random::gaussian_hypermatrix(3, 37, &mut rng);
        let segments = [0usize, 2, 1, 0, 0, 1, 2, 2, 2, 0, 1];
        let batched = accumulate_by_segment(&rows, &segments, &init).unwrap();
        // Sequential reference: accumulate in sample order.
        let mut expect = init.clone();
        for (i, &s) in segments.iter().enumerate() {
            let sum = expect
                .row_vector(s)
                .unwrap()
                .zip_with(&rows.row_vector(i).unwrap(), |a, x| a + x)
                .unwrap();
            expect.set_row(s, &sum).unwrap();
        }
        assert_eq!(batched.as_slice(), expect.as_slice(), "bit-identical");
        // Empty segments keep their initial row untouched.
        let none = accumulate_by_segment(&rows, &[0; 11], &init).unwrap();
        assert_eq!(none.row(1).unwrap(), init.row(1).unwrap());
        assert_eq!(none.row(2).unwrap(), init.row(2).unwrap());
    }

    #[test]
    fn segmented_accumulation_rejects_bad_shapes() {
        let rows = HyperMatrix::<f64>::zeros(4, 8);
        let init = HyperMatrix::<f64>::zeros(2, 8);
        assert!(accumulate_by_segment(&rows, &[0, 1, 0], &init).is_err());
        assert!(accumulate_by_segment(&rows, &[0, 1, 0, 2], &init).is_err());
        let wide = HyperMatrix::<f64>::zeros(2, 9);
        assert!(accumulate_by_segment(&rows, &[0, 1, 0, 1], &wide).is_err());
        assert!(accumulate_by_segment(&rows, &[0, 1, 0, 1], &init).is_ok());
    }

    #[test]
    fn sharded_kernels_are_bit_identical_to_unsharded() {
        let mut rng = HdcRng::seed_from_u64(0x5AAD);
        let (q, c, qb, cb) = fixtures(5, 19, 193);
        let qg: HyperMatrix<f64> = random::gaussian_hypermatrix(5, 193, &mut rng);
        let cg: HyperMatrix<f64> = random::gaussian_hypermatrix(19, 193, &mut rng);
        for shards in [1, 2, 3, 7, 16] {
            let plan = ShardPlan::split(19, shards);
            for perf in perforations(193) {
                let bit = hamming_distance_batch(&qb, &cb, perf).unwrap();
                let bit_sharded = hamming_distance_batch_sharded(&qb, &cb, perf, &plan).unwrap();
                assert_eq!(bit.as_slice(), bit_sharded.as_slice(), "bit {shards}");
                let cos = cosine_similarity_batch(&qg, &cg, perf).unwrap();
                let cos_sharded = cosine_similarity_batch_sharded(&qg, &cg, perf, &plan).unwrap();
                assert_eq!(cos.as_slice(), cos_sharded.as_slice(), "cosine {shards}");
                let ham = hamming_distance_batch_dense(&q, &c, perf).unwrap();
                let ham_sharded =
                    hamming_distance_batch_dense_sharded(&q, &c, perf, &plan).unwrap();
                assert_eq!(ham.as_slice(), ham_sharded.as_slice(), "dense {shards}");
                for metric in [SimilarityMetric::Cosine, SimilarityMetric::Hamming] {
                    let epoch = score_epoch(&qg, &cg, metric, perf).unwrap();
                    let epoch_sharded = score_epoch_sharded(&qg, &cg, metric, perf, &plan).unwrap();
                    assert_eq!(epoch.as_slice(), epoch_sharded.as_slice(), "epoch {shards}");
                }
            }
        }
    }

    #[test]
    fn sharded_top_k_matches_unsharded_and_counts_merges() {
        let mut rng = HdcRng::seed_from_u64(0x70FF);
        let scores: HyperMatrix<f64> = random::gaussian_hypermatrix(6, 23, &mut rng);
        for shards in [1, 2, 3, 7, 16] {
            let plan = ShardPlan::split(23, shards);
            for k in [1, 4, 23] {
                let (flat, merges) = arg_top_k_batch_sharded(&scores, k, &plan).unwrap();
                assert_eq!(
                    flat,
                    arg_top_k_batch(&scores, k).unwrap(),
                    "shards {shards}"
                );
                if plan.shard_count() > 1 {
                    assert_eq!(merges, 6 * (plan.shard_count() - 1), "tree merges per row");
                } else {
                    assert_eq!(merges, 0);
                }
            }
        }
        // NaN-short rows are rejected identically to the unsharded batch.
        let mut with_nan = scores.clone();
        let mut row: Vec<f64> = with_nan.row(2).unwrap().to_vec();
        for x in row.iter_mut() {
            *x = f64::NAN;
        }
        with_nan.set_row(2, &HyperVector::from_vec(row)).unwrap();
        let plan = ShardPlan::split(23, 7);
        assert!(arg_top_k_batch(&with_nan, 2).is_err());
        assert!(arg_top_k_batch_sharded(&with_nan, 2, &plan).is_err());
    }

    #[test]
    fn sharded_kernels_reject_mismatched_plans() {
        let (_, _, qb, cb) = fixtures(2, 5, 64);
        let wrong = ShardPlan::split(6, 2);
        assert!(hamming_distance_batch_sharded(&qb, &cb, Perforation::NONE, &wrong).is_err());
        let m = HyperMatrix::<f64>::zeros(2, 8);
        assert!(cosine_similarity_batch_sharded(&m, &m, Perforation::NONE, &wrong).is_err());
        assert!(hamming_distance_batch_dense_sharded(&m, &m, Perforation::NONE, &wrong).is_err());
        assert!(arg_top_k_batch_sharded(&m, 1, &wrong).is_err());
    }

    #[test]
    fn mask_covers_word_boundaries() {
        // A perforation whose segment straddles the 64-bit word boundary.
        let dim = 130;
        let (_, _, qb, cb) = fixtures(3, 3, dim);
        let perf = Perforation::segment(60, 70);
        let batch = hamming_distance_batch(&qb, &cb, perf).unwrap();
        for r in 0..3 {
            let expect = cb.hamming_distances(qb.row(r).unwrap(), perf).unwrap();
            assert_eq!(batch.row(r).unwrap(), expect.as_slice());
        }
    }
}
