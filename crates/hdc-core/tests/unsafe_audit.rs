//! Repo-wide `unsafe` audit, enforced as a test so it gates CI:
//!
//! 1. `unsafe` code exists **only** in `hdc-core/src/simd.rs` (the
//!    `std::arch` intrinsics) — every other source file in the workspace is
//!    unsafe-free.
//! 2. No file carries a module-level `#![allow(unsafe_code)]`: allows must
//!    be scoped to the smallest item (`#[allow(unsafe_code)]` on one
//!    function).
//! 3. Every `unsafe` site (block or `unsafe fn` item) is preceded by a
//!    `// SAFETY:` comment within the few lines above it, so each site
//!    states the contract it relies on.
//!
//! The walk is plain text over the committed tree; no extra dependencies.

use std::path::{Path, PathBuf};

/// How far above an `unsafe` site the `SAFETY:` comment may sit (the item
/// attribute stack — `#[allow]`, `#[inline]`, `#[target_feature]` — goes in
/// between).
const SAFETY_WINDOW: usize = 8;

fn workspace_root() -> PathBuf {
    // crates/hdc-core -> crates -> workspace root
    Path::new(env!("CARGO_MANIFEST_DIR"))
        .parent()
        .and_then(Path::parent)
        .expect("workspace root")
        .to_path_buf()
}

fn rust_sources(dir: &Path, out: &mut Vec<PathBuf>) {
    for entry in std::fs::read_dir(dir).expect("readable dir") {
        let entry = entry.expect("dir entry");
        let path = entry.path();
        let name = entry.file_name();
        let name = name.to_string_lossy();
        if path.is_dir() {
            if name == "target" || name.starts_with('.') {
                continue;
            }
            rust_sources(&path, out);
        } else if name.ends_with(".rs") {
            out.push(path);
        }
    }
}

/// `unsafe` occurrences that are code, not prose: skip doc/line comments
/// and the `unsafe_code` lint-name token itself.
fn is_unsafe_code_line(line: &str) -> bool {
    let trimmed = line.trim_start();
    if trimmed.starts_with("//") {
        return false;
    }
    // Strip lint-name mentions (`#![deny(unsafe_code)]`, scoped allows).
    let stripped = line.replace("unsafe_code", "");
    stripped.contains("unsafe ") || stripped.contains("unsafe{") || stripped.ends_with("unsafe")
}

#[test]
fn unsafe_is_confined_scoped_and_commented() {
    let root = workspace_root();
    let crates = root.join("crates");
    assert!(crates.is_dir(), "expected workspace at {}", root.display());
    let mut sources = Vec::new();
    rust_sources(&crates, &mut sources);
    assert!(
        sources.len() > 20,
        "suspiciously few sources found — walk broken?"
    );

    let mut violations: Vec<String> = Vec::new();
    let mut simd_unsafe_sites = 0usize;
    for path in &sources {
        let text = std::fs::read_to_string(path).expect("readable source");
        let rel = path.strip_prefix(&root).unwrap_or(path);
        // This file's own message strings mention `unsafe`; skip self.
        if rel.ends_with(Path::new("tests/unsafe_audit.rs")) {
            continue;
        }
        let is_simd = rel.ends_with(Path::new("hdc-core/src/simd.rs"));
        let lines: Vec<&str> = text.lines().collect();
        for (i, line) in lines.iter().enumerate() {
            if line.trim_start().starts_with("#![allow(unsafe_code)]") {
                violations.push(format!(
                    "{}:{}: module-level #![allow(unsafe_code)] — scope it to the item",
                    rel.display(),
                    i + 1
                ));
            }
            if !is_unsafe_code_line(line) {
                continue;
            }
            if !is_simd {
                violations.push(format!(
                    "{}:{}: unsafe outside hdc-core/src/simd.rs: `{}`",
                    rel.display(),
                    i + 1,
                    line.trim()
                ));
                continue;
            }
            simd_unsafe_sites += 1;
            let window = &lines[i.saturating_sub(SAFETY_WINDOW)..i];
            if !window.iter().any(|l| l.contains("SAFETY:")) {
                violations.push(format!(
                    "{}:{}: unsafe site without a `// SAFETY:` comment within {} lines: `{}`",
                    rel.display(),
                    i + 1,
                    SAFETY_WINDOW,
                    line.trim()
                ));
            }
        }
    }
    assert!(
        violations.is_empty(),
        "unsafe audit failed:\n{}",
        violations.join("\n")
    );
    // The kernels genuinely use unsafe; zero sites would mean the matcher
    // went blind, not that the code got safer.
    assert!(
        simd_unsafe_sites >= 20,
        "only {simd_unsafe_sites} unsafe sites matched in simd.rs — audit matcher broken?"
    );
}
