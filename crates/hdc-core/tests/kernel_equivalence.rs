//! Backend equivalence suite: every SIMD kernel must be **bit-identical**
//! to the scalar oracle.
//!
//! The suite fuzzes dimensions (including odd tails that don't divide the
//! vector width), class/query counts, and perforation descriptors across
//! backends, comparing outputs with exact `assert_eq!` on the `f64` bits —
//! popcounts are exact integers and the panel kernels keep per-chain
//! accumulation order, so *any* difference is a backend bug.
//!
//! Tests that flip the process-global backend serialize on a mutex; the
//! `HDC_KERNEL_BACKEND=scalar` regression re-runs itself in a child process
//! so the environment override is exercised on a fresh backend cache.

use hdc_core::batch::accumulate_by_segment_bits;
use hdc_core::prelude::*;
use hdc_core::random::{bipolar_hypermatrix, random_hypermatrix};
use hdc_core::simd::{self, KernelBackend};
use hdc_core::{
    cosine_similarity_batch_sharded, hamming_distance_batch_dense_sharded,
    hamming_distance_batch_sharded,
};
use std::sync::{Mutex, MutexGuard};

/// Serializes tests that mutate the process-global backend selection.
static BACKEND_LOCK: Mutex<()> = Mutex::new(());

fn lock_backend() -> MutexGuard<'static, ()> {
    // A poisoned lock only means another test failed while holding it.
    BACKEND_LOCK.lock().unwrap_or_else(|e| e.into_inner())
}

/// Run `body` once under the scalar backend and once under the detected
/// backend, returning both results. On a host without SIMD support the two
/// runs both use scalar and the comparison is trivially true (the fuzz
/// suite still exercises the dispatch plumbing).
fn on_both_backends<R>(mut body: impl FnMut() -> R) -> (R, R) {
    let _guard = lock_backend();
    simd::set_backend(KernelBackend::Scalar).unwrap();
    let scalar = body();
    simd::set_backend(simd::detected()).unwrap();
    let simd_result = body();
    (scalar, simd_result)
}

fn bit_matrix(rows: usize, cols: usize, seed: u64) -> BitMatrix {
    let mut rng = HdcRng::seed_from_u64(seed);
    BitMatrix::from_dense(&bipolar_hypermatrix::<f64>(rows, cols, &mut rng))
}

fn dense_matrix(rows: usize, cols: usize, seed: u64) -> HyperMatrix<f64> {
    let mut rng = HdcRng::seed_from_u64(seed);
    random_hypermatrix(rows, cols, &mut rng)
}

/// Dims chosen to hit every tail case: below one word, exact word/block
/// multiples, one past them, odd primes, and panel widths 8/4/2/1.
const FUZZ_DIMS: &[usize] = &[
    1, 7, 63, 64, 65, 127, 128, 129, 130, 191, 193, 256, 333, 1027,
];

fn fuzz_perforations(dim: usize) -> Vec<Perforation> {
    let mut ps = vec![
        Perforation::NONE,
        Perforation::strided(0, usize::MAX, 2),
        Perforation::strided(0, usize::MAX, 3),
    ];
    if dim > 8 {
        ps.push(Perforation::segment(1, dim - 1));
        ps.push(Perforation::strided(3, dim - 2, 7));
    }
    ps
}

#[test]
fn hamming_batch_matches_scalar_across_backends() {
    for &dim in FUZZ_DIMS {
        let queries = bit_matrix(5, dim, 0xA11CE ^ dim as u64);
        let classes = bit_matrix(9, dim, 0xB0B ^ dim as u64);
        for perf in fuzz_perforations(dim) {
            let (scalar, simd_out) =
                on_both_backends(|| hamming_distance_batch(&queries, &classes, perf).unwrap());
            assert_eq!(
                scalar.as_slice(),
                simd_out.as_slice(),
                "hamming dim={dim} perf={perf:?}"
            );
        }
    }
}

#[test]
fn cosine_batch_matches_scalar_across_backends() {
    for &dim in FUZZ_DIMS {
        let queries = dense_matrix(5, dim, 0xC051 ^ dim as u64);
        let classes = dense_matrix(9, dim, 0x51AB ^ dim as u64);
        for perf in fuzz_perforations(dim) {
            let (scalar, simd_out) =
                on_both_backends(|| cosine_similarity_batch(&queries, &classes, perf).unwrap());
            // Exact bit equality, not approximate: the SIMD panels must
            // reproduce the scalar accumulation chains.
            assert_eq!(
                scalar.as_slice(),
                simd_out.as_slice(),
                "cosine dim={dim} perf={perf:?}"
            );
        }
    }
}

#[test]
fn matmul_batch_matches_scalar_across_backends() {
    for &dim in &[1usize, 63, 64, 65, 130, 193, 333] {
        let queries = dense_matrix(11, dim, 0x44AA ^ dim as u64);
        let proj = dense_matrix(17, dim, 0x77EE ^ dim as u64);
        for perf in fuzz_perforations(dim) {
            let (scalar, simd_out) =
                on_both_backends(|| hdc_core::matmul::matmul_batch(&queries, &proj, perf).unwrap());
            assert_eq!(
                scalar.as_slice(),
                simd_out.as_slice(),
                "matmul dim={dim} perf={perf:?}"
            );
        }
    }
}

#[test]
fn segment_accumulation_matches_scalar_across_backends() {
    for &dim in FUZZ_DIMS {
        let rows = bit_matrix(13, dim, 0x5E6 ^ dim as u64);
        let segments: Vec<usize> = (0..13).map(|i| i % 3).collect();
        let init = dense_matrix(3, dim, 0x111 ^ dim as u64);
        let (scalar, simd_out) =
            on_both_backends(|| accumulate_by_segment_bits(&rows, &segments, &init).unwrap());
        assert_eq!(scalar.as_slice(), simd_out.as_slice(), "segments dim={dim}");
    }
}

#[test]
fn batched_matches_sequential_oracle_on_simd_backend() {
    // The per-sample kernels stay scalar by design; the batched kernels on
    // the SIMD backend must still match them row by row.
    let _guard = lock_backend();
    simd::set_backend(simd::detected()).unwrap();
    let dim = 193;
    let queries = bit_matrix(6, dim, 42);
    let classes = bit_matrix(7, dim, 43);
    for perf in fuzz_perforations(dim) {
        let batched = hamming_distance_batch(&queries, &classes, perf).unwrap();
        for (q, query) in queries.iter().enumerate() {
            let seq = classes.hamming_distances(query, perf).unwrap();
            assert_eq!(
                batched.row(q).unwrap(),
                seq.as_slice(),
                "row {q} perf={perf:?}"
            );
        }
    }
}

#[test]
fn score_epoch_matches_scalar_across_backends() {
    use hdc_core::batch::score_epoch;
    for &dim in &[64usize, 130, 333] {
        let queries = dense_matrix(6, dim, 0x9A9 ^ dim as u64);
        let classes = dense_matrix(5, dim, 0x7C7 ^ dim as u64);
        let (scalar, simd_out) = on_both_backends(|| {
            score_epoch(
                &queries,
                &classes,
                hdc_core::batch::SimilarityMetric::Cosine,
                Perforation::NONE,
            )
            .unwrap()
        });
        assert_eq!(
            scalar.as_slice(),
            simd_out.as_slice(),
            "score_epoch dim={dim}"
        );
    }
}

#[test]
fn unsupported_backend_rejected_supported_accepted() {
    let _guard = lock_backend();
    for backend in [KernelBackend::Avx2, KernelBackend::Neon] {
        if simd::supported(backend) {
            simd::set_backend(backend).unwrap();
            assert_eq!(simd::selected(), backend);
        } else {
            assert_eq!(
                simd::set_backend(backend),
                Err(HdcError::UnsupportedBackend {
                    requested: backend.name()
                })
            );
        }
    }
    simd::set_backend(simd::detected()).unwrap();
}

#[test]
fn scalar_backend_makes_zero_simd_dispatches() {
    let _guard = lock_backend();
    simd::set_backend(KernelBackend::Scalar).unwrap();
    let before = simd::simd_dispatch_count();
    let queries = bit_matrix(4, 256, 1);
    let classes = bit_matrix(4, 256, 2);
    hamming_distance_batch(&queries, &classes, Perforation::NONE).unwrap();
    let dq = dense_matrix(4, 256, 3);
    let dc = dense_matrix(4, 256, 4);
    cosine_similarity_batch(&dq, &dc, Perforation::NONE).unwrap();
    accumulate_by_segment_bits(&queries, &[0, 1, 0, 1], &dense_matrix(2, 256, 5)).unwrap();
    assert_eq!(
        simd::simd_dispatch_count(),
        before,
        "scalar backend must never enter a SIMD path"
    );
    simd::set_backend(simd::detected()).unwrap();
}

#[test]
fn simd_backend_registers_dispatches_when_available() {
    if !simd::detected().is_simd() {
        return; // nothing to observe on a scalar-only host
    }
    let _guard = lock_backend();
    simd::set_backend(simd::detected()).unwrap();
    let before = simd::simd_dispatch_count();
    let queries = bit_matrix(2, 256, 6);
    let classes = bit_matrix(2, 256, 7);
    hamming_distance_batch(&queries, &classes, Perforation::NONE).unwrap();
    assert!(simd::simd_dispatch_count() > before);
}

/// Regression for the `HDC_KERNEL_BACKEND=scalar` environment override: the
/// selection is cached once per process, so the override is exercised in a
/// child process (this same test binary, re-running only this test) with
/// the variable set, asserting a scalar selection and zero SIMD dispatches.
#[test]
fn scalar_env_override_forces_scalar_with_zero_dispatches() {
    if std::env::var("HDC_KE_CHILD").is_ok() {
        assert_eq!(simd::selected(), KernelBackend::Scalar);
        let queries = bit_matrix(4, 300, 8);
        let classes = bit_matrix(4, 300, 9);
        hamming_distance_batch(&queries, &classes, Perforation::NONE).unwrap();
        let dq = dense_matrix(4, 300, 10);
        cosine_similarity_batch(&dq, &dq, Perforation::NONE).unwrap();
        assert_eq!(simd::simd_dispatch_count(), 0);
        return;
    }
    let status = std::process::Command::new(std::env::current_exe().unwrap())
        .args([
            "scalar_env_override_forces_scalar_with_zero_dispatches",
            "--exact",
            "--nocapture",
        ])
        .env("HDC_KE_CHILD", "1")
        .env("HDC_KERNEL_BACKEND", "scalar")
        .status()
        .expect("spawn child test process");
    assert!(
        status.success(),
        "child process with scalar override failed"
    );
}

// ---------------------------------------------------------------------------
// class-memory sharding fuzz: sharded kernels and reduction-tree merges must
// be bit-identical to the unsharded kernels for every shard count, dimension,
// perforation mask, and score edge case — on every backend.
// ---------------------------------------------------------------------------

/// Shard counts crossing every interesting boundary: trivial, even/odd splits,
/// counts that don't divide the row count, and counts above it (clamped).
const FUZZ_SHARDS: &[usize] = &[1, 2, 3, 7, 16];

#[test]
fn sharded_kernels_match_unsharded_across_backends() {
    use hdc_core::batch::{score_epoch_sharded, SimilarityMetric};
    use hdc_core::shard::ShardPlan;
    for &dim in &[1usize, 63, 65, 130, 193, 333] {
        let bq = bit_matrix(5, dim, 0x5AAD ^ dim as u64);
        let bc = bit_matrix(11, dim, 0xC1A5 ^ dim as u64);
        let dq = dense_matrix(5, dim, 0xD0D0 ^ dim as u64);
        let dc = dense_matrix(11, dim, 0xACED ^ dim as u64);
        for perf in fuzz_perforations(dim) {
            for &shards in FUZZ_SHARDS {
                let plan = ShardPlan::split(11, shards);
                let (scalar, simd_out) = on_both_backends(|| {
                    (
                        hamming_distance_batch_sharded(&bq, &bc, perf, &plan).unwrap(),
                        cosine_similarity_batch_sharded(&dq, &dc, perf, &plan).unwrap(),
                        hamming_distance_batch_dense_sharded(&dq, &dc, perf, &plan).unwrap(),
                        score_epoch_sharded(&dq, &dc, SimilarityMetric::Cosine, perf, &plan)
                            .unwrap(),
                    )
                });
                // Bit-identical across backends...
                assert_eq!(
                    scalar.0.as_slice(),
                    simd_out.0.as_slice(),
                    "sharded hamming dim={dim} shards={shards} perf={perf:?}"
                );
                assert_eq!(scalar.1.as_slice(), simd_out.1.as_slice());
                assert_eq!(scalar.2.as_slice(), simd_out.2.as_slice());
                assert_eq!(scalar.3.as_slice(), simd_out.3.as_slice());
                // ...and to the unsharded kernels on the current backend.
                let _guard = lock_backend();
                assert_eq!(
                    simd_out.0.as_slice(),
                    hamming_distance_batch(&bq, &bc, perf).unwrap().as_slice(),
                    "sharded vs unsharded hamming dim={dim} shards={shards}"
                );
                assert_eq!(
                    simd_out.1.as_slice(),
                    cosine_similarity_batch(&dq, &dc, perf).unwrap().as_slice()
                );
                assert_eq!(
                    simd_out.2.as_slice(),
                    hamming_distance_batch_dense(&dq, &dc, perf)
                        .unwrap()
                        .as_slice()
                );
                assert_eq!(
                    simd_out.3.as_slice(),
                    hdc_core::batch::score_epoch(&dq, &dc, SimilarityMetric::Cosine, perf)
                        .unwrap()
                        .as_slice()
                );
            }
        }
    }
}

#[test]
fn sharded_selection_merges_match_global_ops_on_edge_cases() {
    use hdc_core::ops::{arg_max, arg_min, arg_top_k};
    use hdc_core::shard::{
        row_arg_max_sharded, row_arg_min_sharded, row_arg_top_k_sharded, ShardPlan,
    };
    // Score rows engineered so every shard boundary can split a tie, a NaN
    // run, or a -0.0/0.0 pair: the merge tree must reproduce the global
    // skip-NaN, total-order, first-occurrence semantics exactly.
    let rows: Vec<Vec<f64>> = vec![
        vec![f64::NAN; 9], // all-NaN -> None
        vec![3.0, f64::NAN, -1.0, -1.0, f64::NAN, -1.0, 2.0, 0.5, -0.25],
        vec![-0.0, 0.0, -0.0, 0.0, -0.0, 0.0, -0.0, 0.0, -0.0], // -0.0 < 0.0
        vec![1.0, 1.0, 1.0, 1.0, 1.0, 1.0, 1.0, 1.0, 1.0],      // global tie
        vec![
            f64::NAN,
            f64::NAN,
            5.0,
            f64::NAN,
            f64::NAN,
            f64::NAN,
            5.0,
            f64::NAN,
            4.0,
        ],
        vec![
            f64::INFINITY,
            f64::NEG_INFINITY,
            0.0,
            f64::NAN,
            -0.0,
            7.0,
            7.0,
            -3.5,
            1.0,
        ],
    ];
    for row in &rows {
        let expect_min = arg_min(row);
        let expect_max = arg_max(row);
        for &shards in FUZZ_SHARDS {
            let plan = ShardPlan::split(row.len(), shards);
            let merged_min = row_arg_min_sharded(row, &plan);
            let merged_max = row_arg_max_sharded(row, &plan);
            assert_eq!(
                merged_min.value, expect_min,
                "min row={row:?} shards={shards}"
            );
            assert_eq!(
                merged_max.value, expect_max,
                "max row={row:?} shards={shards}"
            );
            assert_eq!(merged_min.merge_ops, plan.shard_count() - 1);
            for k in [1, 3, row.len()] {
                let merged = row_arg_top_k_sharded(row, k, &plan);
                assert_eq!(
                    merged.value,
                    arg_top_k(row, k),
                    "top-{k} row={row:?} shards={shards}"
                );
            }
        }
    }
}

/// Regression for the `HDC_NUM_THREADS` override: thread-count resolution is
/// read from the environment inside the rayon compat layer, so a child
/// process (this same binary, re-running only this test) with the variable
/// set must observe exactly that many threads and still produce sharded
/// results bit-identical to unsharded.
#[test]
fn num_threads_env_override_controls_pool_width() {
    use hdc_core::shard::ShardPlan;
    if std::env::var("HDC_KE_THREADS_CHILD").is_ok() {
        assert_eq!(rayon::current_num_threads(), 3);
        let queries = bit_matrix(6, 300, 11);
        let classes = bit_matrix(10, 300, 12);
        let plan = ShardPlan::split(10, 4);
        let sharded =
            hamming_distance_batch_sharded(&queries, &classes, Perforation::NONE, &plan).unwrap();
        let unsharded = hamming_distance_batch(&queries, &classes, Perforation::NONE).unwrap();
        assert_eq!(sharded.as_slice(), unsharded.as_slice());
        return;
    }
    let status = std::process::Command::new(std::env::current_exe().unwrap())
        .args([
            "num_threads_env_override_controls_pool_width",
            "--exact",
            "--nocapture",
        ])
        .env("HDC_KE_THREADS_CHILD", "1")
        .env("HDC_NUM_THREADS", "3")
        .status()
        .expect("spawn child test process");
    assert!(
        status.success(),
        "child process with HDC_NUM_THREADS override failed"
    );
}
