//! Backend equivalence suite: every SIMD kernel must be **bit-identical**
//! to the scalar oracle.
//!
//! The suite fuzzes dimensions (including odd tails that don't divide the
//! vector width), class/query counts, and perforation descriptors across
//! backends, comparing outputs with exact `assert_eq!` on the `f64` bits —
//! popcounts are exact integers and the panel kernels keep per-chain
//! accumulation order, so *any* difference is a backend bug.
//!
//! Tests that flip the process-global backend serialize on a mutex; the
//! `HDC_KERNEL_BACKEND=scalar` regression re-runs itself in a child process
//! so the environment override is exercised on a fresh backend cache.

use hdc_core::batch::accumulate_by_segment_bits;
use hdc_core::prelude::*;
use hdc_core::random::{bipolar_hypermatrix, random_hypermatrix};
use hdc_core::simd::{self, KernelBackend};
use std::sync::{Mutex, MutexGuard};

/// Serializes tests that mutate the process-global backend selection.
static BACKEND_LOCK: Mutex<()> = Mutex::new(());

fn lock_backend() -> MutexGuard<'static, ()> {
    // A poisoned lock only means another test failed while holding it.
    BACKEND_LOCK.lock().unwrap_or_else(|e| e.into_inner())
}

/// Run `body` once under the scalar backend and once under the detected
/// backend, returning both results. On a host without SIMD support the two
/// runs both use scalar and the comparison is trivially true (the fuzz
/// suite still exercises the dispatch plumbing).
fn on_both_backends<R>(mut body: impl FnMut() -> R) -> (R, R) {
    let _guard = lock_backend();
    simd::set_backend(KernelBackend::Scalar).unwrap();
    let scalar = body();
    simd::set_backend(simd::detected()).unwrap();
    let simd_result = body();
    (scalar, simd_result)
}

fn bit_matrix(rows: usize, cols: usize, seed: u64) -> BitMatrix {
    let mut rng = HdcRng::seed_from_u64(seed);
    BitMatrix::from_dense(&bipolar_hypermatrix::<f64>(rows, cols, &mut rng))
}

fn dense_matrix(rows: usize, cols: usize, seed: u64) -> HyperMatrix<f64> {
    let mut rng = HdcRng::seed_from_u64(seed);
    random_hypermatrix(rows, cols, &mut rng)
}

/// Dims chosen to hit every tail case: below one word, exact word/block
/// multiples, one past them, odd primes, and panel widths 8/4/2/1.
const FUZZ_DIMS: &[usize] = &[
    1, 7, 63, 64, 65, 127, 128, 129, 130, 191, 193, 256, 333, 1027,
];

fn fuzz_perforations(dim: usize) -> Vec<Perforation> {
    let mut ps = vec![
        Perforation::NONE,
        Perforation::strided(0, usize::MAX, 2),
        Perforation::strided(0, usize::MAX, 3),
    ];
    if dim > 8 {
        ps.push(Perforation::segment(1, dim - 1));
        ps.push(Perforation::strided(3, dim - 2, 7));
    }
    ps
}

#[test]
fn hamming_batch_matches_scalar_across_backends() {
    for &dim in FUZZ_DIMS {
        let queries = bit_matrix(5, dim, 0xA11CE ^ dim as u64);
        let classes = bit_matrix(9, dim, 0xB0B ^ dim as u64);
        for perf in fuzz_perforations(dim) {
            let (scalar, simd_out) =
                on_both_backends(|| hamming_distance_batch(&queries, &classes, perf).unwrap());
            assert_eq!(
                scalar.as_slice(),
                simd_out.as_slice(),
                "hamming dim={dim} perf={perf:?}"
            );
        }
    }
}

#[test]
fn cosine_batch_matches_scalar_across_backends() {
    for &dim in FUZZ_DIMS {
        let queries = dense_matrix(5, dim, 0xC051 ^ dim as u64);
        let classes = dense_matrix(9, dim, 0x51AB ^ dim as u64);
        for perf in fuzz_perforations(dim) {
            let (scalar, simd_out) =
                on_both_backends(|| cosine_similarity_batch(&queries, &classes, perf).unwrap());
            // Exact bit equality, not approximate: the SIMD panels must
            // reproduce the scalar accumulation chains.
            assert_eq!(
                scalar.as_slice(),
                simd_out.as_slice(),
                "cosine dim={dim} perf={perf:?}"
            );
        }
    }
}

#[test]
fn matmul_batch_matches_scalar_across_backends() {
    for &dim in &[1usize, 63, 64, 65, 130, 193, 333] {
        let queries = dense_matrix(11, dim, 0x44AA ^ dim as u64);
        let proj = dense_matrix(17, dim, 0x77EE ^ dim as u64);
        for perf in fuzz_perforations(dim) {
            let (scalar, simd_out) =
                on_both_backends(|| hdc_core::matmul::matmul_batch(&queries, &proj, perf).unwrap());
            assert_eq!(
                scalar.as_slice(),
                simd_out.as_slice(),
                "matmul dim={dim} perf={perf:?}"
            );
        }
    }
}

#[test]
fn segment_accumulation_matches_scalar_across_backends() {
    for &dim in FUZZ_DIMS {
        let rows = bit_matrix(13, dim, 0x5E6 ^ dim as u64);
        let segments: Vec<usize> = (0..13).map(|i| i % 3).collect();
        let init = dense_matrix(3, dim, 0x111 ^ dim as u64);
        let (scalar, simd_out) =
            on_both_backends(|| accumulate_by_segment_bits(&rows, &segments, &init).unwrap());
        assert_eq!(scalar.as_slice(), simd_out.as_slice(), "segments dim={dim}");
    }
}

#[test]
fn batched_matches_sequential_oracle_on_simd_backend() {
    // The per-sample kernels stay scalar by design; the batched kernels on
    // the SIMD backend must still match them row by row.
    let _guard = lock_backend();
    simd::set_backend(simd::detected()).unwrap();
    let dim = 193;
    let queries = bit_matrix(6, dim, 42);
    let classes = bit_matrix(7, dim, 43);
    for perf in fuzz_perforations(dim) {
        let batched = hamming_distance_batch(&queries, &classes, perf).unwrap();
        for (q, query) in queries.iter().enumerate() {
            let seq = classes.hamming_distances(query, perf).unwrap();
            assert_eq!(
                batched.row(q).unwrap(),
                seq.as_slice(),
                "row {q} perf={perf:?}"
            );
        }
    }
}

#[test]
fn score_epoch_matches_scalar_across_backends() {
    use hdc_core::batch::score_epoch;
    for &dim in &[64usize, 130, 333] {
        let queries = dense_matrix(6, dim, 0x9A9 ^ dim as u64);
        let classes = dense_matrix(5, dim, 0x7C7 ^ dim as u64);
        let (scalar, simd_out) = on_both_backends(|| {
            score_epoch(
                &queries,
                &classes,
                hdc_core::batch::SimilarityMetric::Cosine,
                Perforation::NONE,
            )
            .unwrap()
        });
        assert_eq!(
            scalar.as_slice(),
            simd_out.as_slice(),
            "score_epoch dim={dim}"
        );
    }
}

#[test]
fn unsupported_backend_rejected_supported_accepted() {
    let _guard = lock_backend();
    for backend in [KernelBackend::Avx2, KernelBackend::Neon] {
        if simd::supported(backend) {
            simd::set_backend(backend).unwrap();
            assert_eq!(simd::selected(), backend);
        } else {
            assert_eq!(
                simd::set_backend(backend),
                Err(HdcError::UnsupportedBackend {
                    requested: backend.name()
                })
            );
        }
    }
    simd::set_backend(simd::detected()).unwrap();
}

#[test]
fn scalar_backend_makes_zero_simd_dispatches() {
    let _guard = lock_backend();
    simd::set_backend(KernelBackend::Scalar).unwrap();
    let before = simd::simd_dispatch_count();
    let queries = bit_matrix(4, 256, 1);
    let classes = bit_matrix(4, 256, 2);
    hamming_distance_batch(&queries, &classes, Perforation::NONE).unwrap();
    let dq = dense_matrix(4, 256, 3);
    let dc = dense_matrix(4, 256, 4);
    cosine_similarity_batch(&dq, &dc, Perforation::NONE).unwrap();
    accumulate_by_segment_bits(&queries, &[0, 1, 0, 1], &dense_matrix(2, 256, 5)).unwrap();
    assert_eq!(
        simd::simd_dispatch_count(),
        before,
        "scalar backend must never enter a SIMD path"
    );
    simd::set_backend(simd::detected()).unwrap();
}

#[test]
fn simd_backend_registers_dispatches_when_available() {
    if !simd::detected().is_simd() {
        return; // nothing to observe on a scalar-only host
    }
    let _guard = lock_backend();
    simd::set_backend(simd::detected()).unwrap();
    let before = simd::simd_dispatch_count();
    let queries = bit_matrix(2, 256, 6);
    let classes = bit_matrix(2, 256, 7);
    hamming_distance_batch(&queries, &classes, Perforation::NONE).unwrap();
    assert!(simd::simd_dispatch_count() > before);
}

/// Regression for the `HDC_KERNEL_BACKEND=scalar` environment override: the
/// selection is cached once per process, so the override is exercised in a
/// child process (this same test binary, re-running only this test) with
/// the variable set, asserting a scalar selection and zero SIMD dispatches.
#[test]
fn scalar_env_override_forces_scalar_with_zero_dispatches() {
    if std::env::var("HDC_KE_CHILD").is_ok() {
        assert_eq!(simd::selected(), KernelBackend::Scalar);
        let queries = bit_matrix(4, 300, 8);
        let classes = bit_matrix(4, 300, 9);
        hamming_distance_batch(&queries, &classes, Perforation::NONE).unwrap();
        let dq = dense_matrix(4, 300, 10);
        cosine_similarity_batch(&dq, &dq, Perforation::NONE).unwrap();
        assert_eq!(simd::simd_dispatch_count(), 0);
        return;
    }
    let status = std::process::Command::new(std::env::current_exe().unwrap())
        .args([
            "scalar_env_override_forces_scalar_with_zero_dispatches",
            "--exact",
            "--nocapture",
        ])
        .env("HDC_KE_CHILD", "1")
        .env("HDC_KERNEL_BACKEND", "scalar")
        .status()
        .expect("spawn child test process");
    assert!(
        status.success(),
        "child process with scalar override failed"
    );
}
