//! Offline, API-compatible subset of the `rand` crate.
//!
//! The build environment for this workspace has no access to crates.io, so
//! the handful of `rand` APIs the HDC crates rely on are reimplemented here
//! behind the same paths (`rand::Rng`, `rand::SeedableRng`,
//! `rand::rngs::StdRng`). The generator is xoshiro256++ seeded through
//! SplitMix64 — deterministic, portable and of high statistical quality,
//! which the hdc-core test-suite (orthogonality / moment checks) exercises.
//!
//! Only the surface actually used by the workspace is provided:
//!
//! * [`RngCore::next_u64`] / [`RngCore::next_u32`]
//! * [`Rng::gen_range`] over `Range` / `RangeInclusive` of `f64` and the
//!   unsigned integer types
//! * [`Rng::gen_bool`]
//! * [`SeedableRng::seed_from_u64`] and [`rngs::StdRng`]

#![forbid(unsafe_code)]
#![warn(missing_docs)]

use std::ops::{Range, RangeInclusive};

/// Low-level source of random 64-bit words.
pub trait RngCore {
    /// The next random 64-bit word.
    fn next_u64(&mut self) -> u64;

    /// The next random 32-bit word (upper half of [`RngCore::next_u64`]).
    fn next_u32(&mut self) -> u32 {
        (self.next_u64() >> 32) as u32
    }
}

impl<R: RngCore + ?Sized> RngCore for &mut R {
    fn next_u64(&mut self) -> u64 {
        (**self).next_u64()
    }
}

/// User-facing random sampling methods, mirroring `rand::Rng`.
pub trait Rng: RngCore {
    /// Sample a value uniformly from `range`.
    fn gen_range<T, R>(&mut self, range: R) -> T
    where
        R: SampleRange<T>,
        Self: Sized,
    {
        range.sample_single(self)
    }

    /// Return `true` with probability `p`.
    fn gen_bool(&mut self, p: f64) -> bool
    where
        Self: Sized,
    {
        unit_f64(self.next_u64()) < p
    }
}

impl<R: RngCore + ?Sized> Rng for R {}

/// Construction of RNGs from seeds, mirroring `rand::SeedableRng`.
pub trait SeedableRng: Sized {
    /// Create a generator from a 64-bit seed.
    fn seed_from_u64(seed: u64) -> Self;
}

/// Map a random word to a `f64` uniform in `[0, 1)`.
fn unit_f64(word: u64) -> f64 {
    // 53 random mantissa bits.
    (word >> 11) as f64 * (1.0 / (1u64 << 53) as f64)
}

/// Ranges that can be sampled uniformly, mirroring `rand::distributions
/// ::uniform::SampleRange` for the types this workspace uses.
pub trait SampleRange<T> {
    /// Draw one uniform sample from the range.
    fn sample_single<R: RngCore + ?Sized>(self, rng: &mut R) -> T;
}

impl SampleRange<f64> for Range<f64> {
    fn sample_single<R: RngCore + ?Sized>(self, rng: &mut R) -> f64 {
        self.start + unit_f64(rng.next_u64()) * (self.end - self.start)
    }
}

impl SampleRange<f64> for RangeInclusive<f64> {
    fn sample_single<R: RngCore + ?Sized>(self, rng: &mut R) -> f64 {
        let (start, end) = (*self.start(), *self.end());
        start + unit_f64(rng.next_u64()) * (end - start)
    }
}

/// Uniform integer in `[0, span)` by rejection sampling (no modulo bias).
fn uniform_below<R: RngCore + ?Sized>(rng: &mut R, span: u64) -> u64 {
    debug_assert!(span > 0);
    if span.is_power_of_two() {
        return rng.next_u64() & (span - 1);
    }
    let zone = u64::MAX - (u64::MAX % span);
    loop {
        let word = rng.next_u64();
        if word < zone {
            return word % span;
        }
    }
}

macro_rules! impl_int_range {
    ($ty:ty) => {
        impl SampleRange<$ty> for Range<$ty> {
            fn sample_single<R: RngCore + ?Sized>(self, rng: &mut R) -> $ty {
                assert!(self.start < self.end, "empty range in gen_range");
                let span = (self.end - self.start) as u64;
                self.start + uniform_below(rng, span) as $ty
            }
        }

        impl SampleRange<$ty> for RangeInclusive<$ty> {
            fn sample_single<R: RngCore + ?Sized>(self, rng: &mut R) -> $ty {
                let (start, end) = (*self.start(), *self.end());
                assert!(start <= end, "empty range in gen_range");
                let span = (end - start) as u64;
                if span == u64::MAX {
                    return rng.next_u64() as $ty;
                }
                start + uniform_below(rng, span + 1) as $ty
            }
        }
    };
}

impl_int_range!(usize);
impl_int_range!(u64);
impl_int_range!(u32);

/// The named generators, mirroring `rand::rngs`.
pub mod rngs {
    use super::{RngCore, SeedableRng};

    /// The workspace's standard generator: xoshiro256++.
    ///
    /// Not the same stream as upstream `rand`'s `StdRng` (which is ChaCha12),
    /// but every use in this repository only requires determinism given a
    /// seed, which both provide.
    #[derive(Debug, Clone, PartialEq, Eq)]
    pub struct StdRng {
        state: [u64; 4],
    }

    impl SeedableRng for StdRng {
        fn seed_from_u64(seed: u64) -> Self {
            // SplitMix64 expansion, the reference seeding for xoshiro.
            let mut sm = seed;
            let mut next = || {
                sm = sm.wrapping_add(0x9E3779B97F4A7C15);
                let mut z = sm;
                z = (z ^ (z >> 30)).wrapping_mul(0xBF58476D1CE4E5B9);
                z = (z ^ (z >> 27)).wrapping_mul(0x94D049BB133111EB);
                z ^ (z >> 31)
            };
            StdRng {
                state: [next(), next(), next(), next()],
            }
        }
    }

    impl RngCore for StdRng {
        fn next_u64(&mut self) -> u64 {
            let s = &mut self.state;
            let result = s[0].wrapping_add(s[3]).rotate_left(23).wrapping_add(s[0]);
            let t = s[1] << 17;
            s[2] ^= s[0];
            s[3] ^= s[1];
            s[1] ^= s[2];
            s[0] ^= s[3];
            s[2] ^= t;
            s[3] = s[3].rotate_left(45);
            result
        }
    }
}

#[cfg(test)]
mod tests {
    use super::rngs::StdRng;
    use super::*;

    #[test]
    fn deterministic_streams() {
        let mut a = StdRng::seed_from_u64(42);
        let mut b = StdRng::seed_from_u64(42);
        let mut c = StdRng::seed_from_u64(43);
        let xs: Vec<u64> = (0..8).map(|_| a.next_u64()).collect();
        let ys: Vec<u64> = (0..8).map(|_| b.next_u64()).collect();
        let zs: Vec<u64> = (0..8).map(|_| c.next_u64()).collect();
        assert_eq!(xs, ys);
        assert_ne!(xs, zs);
    }

    #[test]
    fn gen_range_f64_bounds() {
        let mut rng = StdRng::seed_from_u64(1);
        for _ in 0..1000 {
            let x: f64 = rng.gen_range(-1.0..=1.0);
            assert!((-1.0..=1.0).contains(&x));
        }
    }

    #[test]
    fn gen_range_usize_inclusive_covers_endpoints() {
        let mut rng = StdRng::seed_from_u64(2);
        let mut seen = [false; 4];
        for _ in 0..1000 {
            seen[rng.gen_range(0usize..=3)] = true;
        }
        assert!(seen.iter().all(|&s| s));
    }

    #[test]
    fn gen_bool_probability_roughly_respected() {
        let mut rng = StdRng::seed_from_u64(3);
        let hits = (0..10_000).filter(|_| rng.gen_bool(0.25)).count();
        assert!((2000..3000).contains(&hits), "hits {hits}");
    }

    #[test]
    fn works_through_mut_references() {
        fn draw(rng: &mut impl Rng) -> f64 {
            rng.gen_range(0.0..1.0)
        }
        let mut rng = StdRng::seed_from_u64(4);
        let x = draw(&mut rng);
        assert!((0.0..1.0).contains(&x));
    }
}
