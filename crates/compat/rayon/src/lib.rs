//! Offline, API-compatible subset of the `rayon` crate.
//!
//! The workspace uses rayon for one pattern — `vec.into_par_iter().map(f)
//! .collect()` on the batched matmul hot path — so that is what this crate
//! provides. Work is split into one chunk per available core and executed on
//! scoped `std::thread`s; order is preserved. Unlike upstream rayon the
//! `map` adapter is **eager** (it runs when called, not at `collect`), which
//! is observationally identical for the map-then-collect pattern.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

/// Glob-import surface mirroring `rayon::prelude`.
pub mod prelude {
    pub use crate::IntoParallelIterator;
}

/// Conversion into a parallel iterator, mirroring
/// `rayon::iter::IntoParallelIterator`.
pub trait IntoParallelIterator {
    /// Element type.
    type Item: Send;

    /// Convert `self` into a parallel iterator over its elements.
    fn into_par_iter(self) -> ParIter<Self::Item>;
}

impl<T: Send> IntoParallelIterator for Vec<T> {
    type Item = T;

    fn into_par_iter(self) -> ParIter<T> {
        ParIter { items: self }
    }
}

/// A parallel iterator over an owned sequence of items.
#[derive(Debug)]
pub struct ParIter<T> {
    items: Vec<T>,
}

impl<T: Send> ParIter<T> {
    /// Apply `f` to every element in parallel, preserving order.
    pub fn map<U, F>(self, f: F) -> ParIter<U>
    where
        U: Send,
        F: Fn(T) -> U + Sync,
    {
        ParIter {
            items: parallel_map(self.items, &f),
        }
    }

    /// Collect the elements, mirroring `ParallelIterator::collect`.
    pub fn collect<C: FromIterator<T>>(self) -> C {
        self.items.into_iter().collect()
    }
}

fn parallel_map<T, U, F>(items: Vec<T>, f: &F) -> Vec<U>
where
    T: Send,
    U: Send,
    F: Fn(T) -> U + Sync,
{
    let threads = std::thread::available_parallelism()
        .map(|n| n.get())
        .unwrap_or(1);
    if threads <= 1 || items.len() <= 1 {
        return items.into_iter().map(f).collect();
    }
    let chunk_len = items.len().div_ceil(threads);
    let mut chunks: Vec<Vec<T>> = Vec::new();
    let mut rest = items;
    while rest.len() > chunk_len {
        let tail = rest.split_off(chunk_len);
        chunks.push(std::mem::replace(&mut rest, tail));
    }
    chunks.push(rest);
    let mut out: Vec<U> = Vec::new();
    std::thread::scope(|scope| {
        let handles: Vec<_> = chunks
            .into_iter()
            .map(|chunk| scope.spawn(move || chunk.into_iter().map(f).collect::<Vec<U>>()))
            .collect();
        for handle in handles {
            out.extend(handle.join().expect("parallel map worker panicked"));
        }
    });
    out
}

#[cfg(test)]
mod tests {
    use super::prelude::*;

    #[test]
    fn map_collect_preserves_order() {
        let xs: Vec<i64> = (0..10_000).collect();
        let doubled: Vec<i64> = xs.clone().into_par_iter().map(|x| x * 2).collect();
        let expected: Vec<i64> = xs.iter().map(|x| x * 2).collect();
        assert_eq!(doubled, expected);
    }

    #[test]
    fn borrows_in_closures_work() {
        let offset = 7i64;
        let xs: Vec<i64> = (0..100).collect();
        let shifted: Vec<i64> = xs.into_par_iter().map(|x| x + offset).collect();
        assert_eq!(shifted[0], 7);
        assert_eq!(shifted[99], 106);
    }

    #[test]
    fn empty_and_single_inputs() {
        let empty: Vec<i32> = Vec::new();
        let out: Vec<i32> = empty.into_par_iter().map(|x| x).collect();
        assert!(out.is_empty());
        let one: Vec<i32> = vec![41].into_par_iter().map(|x| x + 1).collect();
        assert_eq!(one, vec![42]);
    }
}
