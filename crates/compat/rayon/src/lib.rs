//! Offline, API-compatible subset of the `rayon` crate.
//!
//! The workspace uses rayon for one pattern — `vec.into_par_iter().map(f)
//! .collect()` on the batched kernel hot paths — so that is what this crate
//! provides. Work is split into one chunk per worker thread and executed on
//! scoped `std::thread`s; order is preserved. Unlike upstream rayon the
//! `map` adapter is **eager** (it runs when called, not at `collect`), which
//! is observationally identical for the map-then-collect pattern.
//!
//! # Thread-count control
//!
//! The worker count is resolved per parallel call, in precedence order:
//!
//! 1. a process-wide programmatic override ([`set_num_threads`], used by
//!    benchmarks sweeping a scaling curve within one process);
//! 2. the `HDC_NUM_THREADS` environment variable (a positive integer;
//!    anything else is ignored with a warning printed once);
//! 3. [`std::thread::available_parallelism`].
//!
//! [`current_num_threads`] reports the resolved count, mirroring upstream
//! rayon's function of the same name. `set_num_threads` is an extension
//! upstream rayon expresses through `ThreadPoolBuilder`; this crate has no
//! persistent pool, so a plain setter is the equivalent knob.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

use std::sync::atomic::{AtomicUsize, Ordering};
use std::sync::Once;

/// Glob-import surface mirroring `rayon::prelude`.
pub mod prelude {
    pub use crate::IntoParallelIterator;
}

/// `0` = no override; otherwise the forced worker count.
static THREAD_OVERRIDE: AtomicUsize = AtomicUsize::new(0);

/// Warn about a malformed `HDC_NUM_THREADS` value only once per process.
static ENV_WARNING: Once = Once::new();

/// The number of worker threads parallel calls currently split into:
/// the [`set_num_threads`] override if set, else a positive-integer
/// `HDC_NUM_THREADS`, else [`std::thread::available_parallelism`].
///
/// The environment variable is re-read on every call (selection is not
/// cached), so a child process spawned with a different `HDC_NUM_THREADS`
/// sees its own value without any re-initialization hook.
pub fn current_num_threads() -> usize {
    let forced = THREAD_OVERRIDE.load(Ordering::Relaxed);
    if forced > 0 {
        return forced;
    }
    if let Ok(raw) = std::env::var("HDC_NUM_THREADS") {
        match raw.trim().parse::<usize>() {
            Ok(n) if n > 0 => return n,
            _ => ENV_WARNING.call_once(|| {
                eprintln!("rayon-compat: ignoring invalid HDC_NUM_THREADS `{raw}`");
            }),
        }
    }
    std::thread::available_parallelism()
        .map(|n| n.get())
        .unwrap_or(1)
}

/// Force the worker count for every later parallel call in this process,
/// overriding both `HDC_NUM_THREADS` and hardware detection. Pass `0` to
/// clear the override. Intended for benchmarks that measure a thread
/// scaling curve (1/2/4/8 workers) within one process.
pub fn set_num_threads(threads: usize) {
    THREAD_OVERRIDE.store(threads, Ordering::Relaxed);
}

/// Conversion into a parallel iterator, mirroring
/// `rayon::iter::IntoParallelIterator`.
pub trait IntoParallelIterator {
    /// Element type.
    type Item: Send;

    /// Convert `self` into a parallel iterator over its elements.
    fn into_par_iter(self) -> ParIter<Self::Item>;
}

impl<T: Send> IntoParallelIterator for Vec<T> {
    type Item = T;

    fn into_par_iter(self) -> ParIter<T> {
        ParIter { items: self }
    }
}

/// A parallel iterator over an owned sequence of items.
#[derive(Debug)]
pub struct ParIter<T> {
    items: Vec<T>,
}

impl<T: Send> ParIter<T> {
    /// Apply `f` to every element in parallel, preserving order.
    pub fn map<U, F>(self, f: F) -> ParIter<U>
    where
        U: Send,
        F: Fn(T) -> U + Sync,
    {
        ParIter {
            items: parallel_map(self.items, &f),
        }
    }

    /// Collect the elements, mirroring `ParallelIterator::collect`.
    pub fn collect<C: FromIterator<T>>(self) -> C {
        self.items.into_iter().collect()
    }
}

fn parallel_map<T, U, F>(items: Vec<T>, f: &F) -> Vec<U>
where
    T: Send,
    U: Send,
    F: Fn(T) -> U + Sync,
{
    let threads = current_num_threads();
    if threads <= 1 || items.len() <= 1 {
        return items.into_iter().map(f).collect();
    }
    let chunk_len = items.len().div_ceil(threads);
    let mut chunks: Vec<Vec<T>> = Vec::new();
    let mut rest = items;
    while rest.len() > chunk_len {
        let tail = rest.split_off(chunk_len);
        chunks.push(std::mem::replace(&mut rest, tail));
    }
    chunks.push(rest);
    let mut out: Vec<U> = Vec::new();
    std::thread::scope(|scope| {
        let handles: Vec<_> = chunks
            .into_iter()
            .map(|chunk| scope.spawn(move || chunk.into_iter().map(f).collect::<Vec<U>>()))
            .collect();
        for handle in handles {
            out.extend(handle.join().expect("parallel map worker panicked"));
        }
    });
    out
}

#[cfg(test)]
mod tests {
    use super::prelude::*;

    #[test]
    fn map_collect_preserves_order() {
        let xs: Vec<i64> = (0..10_000).collect();
        let doubled: Vec<i64> = xs.clone().into_par_iter().map(|x| x * 2).collect();
        let expected: Vec<i64> = xs.iter().map(|x| x * 2).collect();
        assert_eq!(doubled, expected);
    }

    #[test]
    fn borrows_in_closures_work() {
        let offset = 7i64;
        let xs: Vec<i64> = (0..100).collect();
        let shifted: Vec<i64> = xs.into_par_iter().map(|x| x + offset).collect();
        assert_eq!(shifted[0], 7);
        assert_eq!(shifted[99], 106);
    }

    #[test]
    fn empty_and_single_inputs() {
        let empty: Vec<i32> = Vec::new();
        let out: Vec<i32> = empty.into_par_iter().map(|x| x).collect();
        assert!(out.is_empty());
        let one: Vec<i32> = vec![41].into_par_iter().map(|x| x + 1).collect();
        assert_eq!(one, vec![42]);
    }

    #[test]
    fn thread_override_is_respected_and_clearable() {
        // Serialize against any other test touching the process-wide knob.
        super::set_num_threads(3);
        assert_eq!(super::current_num_threads(), 3);
        // Parallel results are identical regardless of the worker count.
        let xs: Vec<i64> = (0..1000).collect();
        let out: Vec<i64> = xs.clone().into_par_iter().map(|x| x * 3).collect();
        assert_eq!(out, xs.iter().map(|x| x * 3).collect::<Vec<_>>());
        super::set_num_threads(1);
        assert_eq!(super::current_num_threads(), 1);
        let seq: Vec<i64> = xs.clone().into_par_iter().map(|x| x * 3).collect();
        assert_eq!(seq, out);
        super::set_num_threads(0);
        assert!(super::current_num_threads() >= 1);
    }
}
