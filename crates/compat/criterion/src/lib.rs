//! Offline, API-compatible subset of the `criterion` benchmark harness.
//!
//! Benchmarks in `hdc-bench` are written against the standard Criterion
//! surface (`Criterion::bench_function`, `Bencher::iter`, `black_box`,
//! `criterion_group!` / `criterion_main!`). This crate implements that
//! surface with a simple warm-up + timed-sampling loop so the benches run
//! without network access to crates.io. Swapping back to upstream Criterion
//! is a one-line Cargo.toml change; no bench source needs to be touched.
//!
//! Measurement model: each benchmark is warmed up for a short period, then
//! sampled in batches; the reported figure is the median per-iteration time
//! across samples with min/max bounds.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

use std::time::{Duration, Instant};

pub use std::hint::black_box;

/// Top-level benchmark driver, mirroring `criterion::Criterion`.
#[derive(Debug)]
pub struct Criterion {
    warm_up: Duration,
    measurement: Duration,
    samples: usize,
}

impl Default for Criterion {
    fn default() -> Self {
        Criterion {
            warm_up: Duration::from_millis(80),
            measurement: Duration::from_millis(240),
            samples: 24,
        }
    }
}

impl Criterion {
    /// Override the measurement time budget (builder style).
    pub fn measurement_time(mut self, duration: Duration) -> Self {
        self.measurement = duration;
        self
    }

    /// Override the number of samples taken (builder style).
    pub fn sample_size(mut self, samples: usize) -> Self {
        self.samples = samples.max(2);
        self
    }

    /// Run one benchmark under `id`.
    pub fn bench_function<F>(&mut self, id: &str, mut f: F) -> &mut Self
    where
        F: FnMut(&mut Bencher),
    {
        let mut bencher = Bencher {
            warm_up: self.warm_up,
            measurement: self.measurement,
            samples: self.samples,
            result: None,
        };
        f(&mut bencher);
        match bencher.result {
            Some(ref r) => println!(
                "{id:<48} time: [{} {} {}]",
                format_ns(r.min_ns),
                format_ns(r.median_ns),
                format_ns(r.max_ns)
            ),
            None => println!("{id:<48} time: [no measurement taken]"),
        }
        self
    }
}

#[derive(Debug, Clone, Copy)]
struct Measurement {
    min_ns: f64,
    median_ns: f64,
    max_ns: f64,
}

/// Per-benchmark timing helper, mirroring `criterion::Bencher`.
#[derive(Debug)]
pub struct Bencher {
    warm_up: Duration,
    measurement: Duration,
    samples: usize,
    result: Option<Measurement>,
}

impl Bencher {
    /// Measure the closure, calling it repeatedly.
    pub fn iter<O, F>(&mut self, mut routine: F)
    where
        F: FnMut() -> O,
    {
        // Warm-up, and estimate the per-call cost to size batches.
        let warm_start = Instant::now();
        let mut warm_calls: u64 = 0;
        while warm_start.elapsed() < self.warm_up {
            black_box(routine());
            warm_calls += 1;
        }
        let per_call = warm_start.elapsed().as_secs_f64() / warm_calls.max(1) as f64;

        let per_sample = self.measurement.as_secs_f64() / self.samples as f64;
        let batch = ((per_sample / per_call.max(1e-9)) as u64).clamp(1, 1 << 24);

        let mut sample_ns: Vec<f64> = Vec::with_capacity(self.samples);
        for _ in 0..self.samples {
            let start = Instant::now();
            for _ in 0..batch {
                black_box(routine());
            }
            sample_ns.push(start.elapsed().as_nanos() as f64 / batch as f64);
        }
        sample_ns.sort_by(|a, b| a.partial_cmp(b).expect("timings are finite"));
        self.result = Some(Measurement {
            min_ns: sample_ns[0],
            median_ns: sample_ns[sample_ns.len() / 2],
            max_ns: sample_ns[sample_ns.len() - 1],
        });
    }
}

fn format_ns(ns: f64) -> String {
    if ns < 1e3 {
        format!("{ns:.2} ns")
    } else if ns < 1e6 {
        format!("{:.2} µs", ns / 1e3)
    } else if ns < 1e9 {
        format!("{:.2} ms", ns / 1e6)
    } else {
        format!("{:.2} s", ns / 1e9)
    }
}

/// Define a benchmark group function, mirroring `criterion_group!`.
#[macro_export]
macro_rules! criterion_group {
    ($name:ident, $($target:path),+ $(,)?) => {
        pub fn $name() {
            let mut criterion = $crate::Criterion::default();
            $($target(&mut criterion);)+
        }
    };
}

/// Define the benchmark entry point, mirroring `criterion_main!`.
#[macro_export]
macro_rules! criterion_main {
    ($($group:path),+ $(,)?) => {
        fn main() {
            $($group();)+
        }
    };
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn bencher_measures_something() {
        let mut c = Criterion::default()
            .measurement_time(Duration::from_millis(10))
            .sample_size(4);
        // Should not panic and should print one line.
        c.bench_function("smoke", |b| b.iter(|| black_box(3u64).wrapping_mul(7)));
    }

    #[test]
    fn format_ns_scales() {
        assert_eq!(format_ns(12.0), "12.00 ns");
        assert_eq!(format_ns(12_000.0), "12.00 µs");
        assert_eq!(format_ns(12_000_000.0), "12.00 ms");
    }
}
