//! Offline, API-compatible subset of the `rand_distr` crate.
//!
//! Provides the [`Distribution`] trait and [`StandardNormal`], the only
//! pieces the workspace uses (Gaussian hypervector / hypermatrix creation in
//! `hdc-core`). Sampling uses the Marsaglia polar method, which needs no
//! per-generator state and matches the statistical contract the hdc-core
//! tests check (mean ≈ 0, variance ≈ 1).

#![forbid(unsafe_code)]
#![warn(missing_docs)]

use rand::Rng;

/// Types that can sample values of `T` from an RNG.
pub trait Distribution<T> {
    /// Draw one sample.
    fn sample<R: Rng + ?Sized>(&self, rng: &mut R) -> T;
}

/// The standard normal distribution `N(0, 1)`.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct StandardNormal;

impl Distribution<f64> for StandardNormal {
    fn sample<R: Rng + ?Sized>(&self, rng: &mut R) -> f64 {
        // Marsaglia polar method; the second variate is discarded so the
        // distribution needs no interior mutability.
        loop {
            let u = unit(rng) * 2.0 - 1.0;
            let v = unit(rng) * 2.0 - 1.0;
            let s = u * u + v * v;
            if s > 0.0 && s < 1.0 {
                return u * (-2.0 * s.ln() / s).sqrt();
            }
        }
    }
}

impl Distribution<f32> for StandardNormal {
    fn sample<R: Rng + ?Sized>(&self, rng: &mut R) -> f32 {
        let x: f64 = Distribution::<f64>::sample(self, rng);
        x as f32
    }
}

fn unit<R: Rng + ?Sized>(rng: &mut R) -> f64 {
    (rng.next_u64() >> 11) as f64 * (1.0 / (1u64 << 53) as f64)
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::rngs::StdRng;
    use rand::SeedableRng;

    #[test]
    fn moments_are_roughly_standard() {
        let mut rng = StdRng::seed_from_u64(11);
        let samples: Vec<f64> = (0..50_000)
            .map(|_| StandardNormal.sample(&mut rng))
            .collect();
        let mean = samples.iter().sum::<f64>() / samples.len() as f64;
        let var =
            samples.iter().map(|x| (x - mean) * (x - mean)).sum::<f64>() / samples.len() as f64;
        assert!(mean.abs() < 0.02, "mean {mean}");
        assert!((var - 1.0).abs() < 0.05, "var {var}");
    }

    #[test]
    fn deterministic_given_seed() {
        let mut a = StdRng::seed_from_u64(5);
        let mut b = StdRng::seed_from_u64(5);
        let xs: Vec<f64> = (0..16).map(|_| StandardNormal.sample(&mut a)).collect();
        let ys: Vec<f64> = (0..16).map(|_| StandardNormal.sample(&mut b)).collect();
        assert_eq!(xs, ys);
    }
}
