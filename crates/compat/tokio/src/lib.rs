//! Offline, API-compatible subset of the `tokio` crate.
//!
//! The serving crate (`hdc-serve`) uses tokio for four things — a runtime
//! to `block_on` a future, `spawn` for concurrent tasks, `sync::oneshot`
//! channels to scatter per-request results back to callers, and
//! `time::{sleep, timeout}` — so that is what this crate provides. Like the
//! sibling `rayon` stand-in, it exists because the build environment has no
//! registry access; the API mirrors upstream tokio so swapping in the real
//! dependency is a one-line `Cargo.toml` change.
//!
//! # Execution model
//!
//! Upstream tokio multiplexes tasks onto a worker pool; this stand-in maps
//! each [`spawn`] to one OS thread driving the task future to completion
//! with a park/unpark waker. That is observationally equivalent for the
//! coalescer workloads this workspace runs (tens of in-flight requests,
//! each blocking on a oneshot response), though it would not scale to the
//! hundreds of thousands of tasks upstream tokio handles. Timers
//! ([`time::sleep`], [`time::timeout`]) arm a helper thread that wakes the
//! task at the deadline.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

use std::future::Future;
use std::pin::Pin;
use std::sync::mpsc;
use std::sync::{Arc, Mutex};
use std::task::{Context, Poll, Wake, Waker};
use std::time::{Duration, Instant};

/// Park/unpark waker: `wake` unparks the thread that is driving the future.
struct ThreadWaker {
    thread: std::thread::Thread,
}

impl Wake for ThreadWaker {
    fn wake(self: Arc<Self>) {
        self.thread.unpark();
    }
}

/// Drive a future to completion on the current thread, parking between
/// polls. This is the single scheduling primitive everything else builds
/// on.
fn block_on_current<F: Future>(fut: F) -> F::Output {
    let mut fut = Box::pin(fut);
    let waker = Waker::from(Arc::new(ThreadWaker {
        thread: std::thread::current(),
    }));
    let mut cx = Context::from_waker(&waker);
    loop {
        match fut.as_mut().poll(&mut cx) {
            Poll::Ready(out) => return out,
            // A spurious unpark just re-polls, which is always sound.
            Poll::Pending => std::thread::park(),
        }
    }
}

pub mod runtime {
    //! The task runtime: [`Runtime::block_on`] is the bridge from
    //! synchronous code into the async surface.

    use super::*;

    /// A handle to the (thread-backed) runtime.
    #[derive(Debug, Default)]
    pub struct Runtime {
        _priv: (),
    }

    impl Runtime {
        /// Create a runtime. Never fails in this stand-in; the `Result` is
        /// kept for upstream signature compatibility.
        pub fn new() -> std::io::Result<Runtime> {
            Ok(Runtime { _priv: () })
        }

        /// Run a future to completion on the calling thread.
        pub fn block_on<F: Future>(&self, fut: F) -> F::Output {
            block_on_current(fut)
        }

        /// Spawn a future onto the runtime; identical to the free
        /// [`spawn`] function.
        pub fn spawn<F>(&self, fut: F) -> JoinHandle<F::Output>
        where
            F: Future + Send + 'static,
            F::Output: Send + 'static,
        {
            super::spawn(fut)
        }
    }

    /// Builder mirroring `tokio::runtime::Builder` far enough for the
    /// common `new_multi_thread().enable_all().build()` incantation.
    #[derive(Debug, Default)]
    pub struct Builder {
        _priv: (),
    }

    impl Builder {
        /// A builder for a multi-threaded runtime (every runtime here is
        /// thread-backed already).
        pub fn new_multi_thread() -> Builder {
            Builder { _priv: () }
        }

        /// Enable timers and I/O. A no-op: the stand-in's timers are
        /// always available.
        pub fn enable_all(&mut self) -> &mut Builder {
            self
        }

        /// Build the runtime.
        pub fn build(&mut self) -> std::io::Result<Runtime> {
            Runtime::new()
        }
    }
}

/// Error returned when awaiting a [`JoinHandle`] whose task panicked.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct JoinError {
    _priv: (),
}

impl std::fmt::Display for JoinError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.write_str("task panicked")
    }
}

impl std::error::Error for JoinError {}

/// An owned handle awaiting the output of a [`spawn`]ed task.
///
/// Awaiting yields `Err(JoinError)` if the task panicked, mirroring
/// upstream. Dropping the handle detaches the task (it keeps running).
#[derive(Debug)]
pub struct JoinHandle<T> {
    result: mpsc::Receiver<std::thread::Result<T>>,
    /// Waker slot the task thread signals on completion.
    waker: Arc<Mutex<Option<Waker>>>,
}

impl<T> Future for JoinHandle<T> {
    type Output = Result<T, JoinError>;

    fn poll(self: Pin<&mut Self>, cx: &mut Context<'_>) -> Poll<Self::Output> {
        match self.result.try_recv() {
            Ok(Ok(v)) => Poll::Ready(Ok(v)),
            Ok(Err(_panic)) => Poll::Ready(Err(JoinError { _priv: () })),
            Err(mpsc::TryRecvError::Disconnected) => Poll::Ready(Err(JoinError { _priv: () })),
            Err(mpsc::TryRecvError::Empty) => {
                *self.waker.lock().unwrap() = Some(cx.waker().clone());
                Poll::Pending
            }
        }
    }
}

/// Spawn a future as a concurrent task, returning a handle that can be
/// awaited for its output. Each task gets a dedicated thread driving it.
pub fn spawn<F>(fut: F) -> JoinHandle<F::Output>
where
    F: Future + Send + 'static,
    F::Output: Send + 'static,
{
    let (tx, rx) = mpsc::channel();
    let waker: Arc<Mutex<Option<Waker>>> = Arc::new(Mutex::new(None));
    let signal = Arc::clone(&waker);
    std::thread::spawn(move || {
        let outcome =
            std::panic::catch_unwind(std::panic::AssertUnwindSafe(|| block_on_current(fut)));
        // The receiver may already be dropped (detached task): ignore.
        let _ = tx.send(outcome);
        if let Some(w) = signal.lock().unwrap().take() {
            w.wake();
        }
    });
    JoinHandle { result: rx, waker }
}

pub mod sync {
    //! Synchronization primitives (the oneshot channel).

    pub mod oneshot {
        //! A one-value channel whose receiver is a future — the scatter
        //! half of the coalescer's gather/scatter protocol.

        use super::super::*;

        /// Shared channel state.
        #[derive(Debug)]
        struct Slot<T> {
            value: Option<T>,
            closed: bool,
            waker: Option<Waker>,
        }

        /// Sending half; consumed by [`Sender::send`].
        #[derive(Debug)]
        pub struct Sender<T> {
            slot: Arc<Mutex<Slot<T>>>,
        }

        /// Receiving half; a future resolving to the sent value.
        #[derive(Debug)]
        pub struct Receiver<T> {
            slot: Arc<Mutex<Slot<T>>>,
        }

        /// Error awaited out of a [`Receiver`] whose sender was dropped.
        #[derive(Debug, Clone, Copy, PartialEq, Eq)]
        pub struct RecvError;

        impl std::fmt::Display for RecvError {
            fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
                f.write_str("oneshot sender dropped without sending")
            }
        }

        impl std::error::Error for RecvError {}

        /// Create a connected sender/receiver pair.
        pub fn channel<T>() -> (Sender<T>, Receiver<T>) {
            let slot = Arc::new(Mutex::new(Slot {
                value: None,
                closed: false,
                waker: None,
            }));
            (
                Sender {
                    slot: Arc::clone(&slot),
                },
                Receiver { slot },
            )
        }

        impl<T> Sender<T> {
            /// Send the value, waking the receiver. Returns the value back
            /// if the receiver was dropped.
            pub fn send(self, value: T) -> Result<(), T> {
                let mut slot = self.slot.lock().unwrap();
                if Arc::strong_count(&self.slot) == 1 {
                    return Err(value);
                }
                slot.value = Some(value);
                if let Some(w) = slot.waker.take() {
                    w.wake();
                }
                Ok(())
            }
        }

        impl<T> Drop for Sender<T> {
            fn drop(&mut self) {
                let mut slot = self.slot.lock().unwrap();
                slot.closed = true;
                if let Some(w) = slot.waker.take() {
                    w.wake();
                }
            }
        }

        impl<T> Future for Receiver<T> {
            type Output = Result<T, RecvError>;

            fn poll(self: Pin<&mut Self>, cx: &mut Context<'_>) -> Poll<Self::Output> {
                let mut slot = self.slot.lock().unwrap();
                if let Some(v) = slot.value.take() {
                    return Poll::Ready(Ok(v));
                }
                if slot.closed {
                    return Poll::Ready(Err(RecvError));
                }
                slot.waker = Some(cx.waker().clone());
                Poll::Pending
            }
        }
    }
}

pub mod time {
    //! Timers: deadline futures backed by a helper thread per armed timer.

    use super::*;

    /// A future that resolves once the deadline passes.
    #[derive(Debug)]
    pub struct Sleep {
        deadline: Instant,
        timer_armed: bool,
    }

    impl Future for Sleep {
        type Output = ();

        fn poll(mut self: Pin<&mut Self>, cx: &mut Context<'_>) -> Poll<()> {
            let now = Instant::now();
            if now >= self.deadline {
                return Poll::Ready(());
            }
            if !self.timer_armed {
                self.timer_armed = true;
                let waker = cx.waker().clone();
                let wait = self.deadline - now;
                std::thread::spawn(move || {
                    std::thread::sleep(wait);
                    waker.wake();
                });
            }
            Poll::Pending
        }
    }

    /// Sleep for `duration`.
    pub fn sleep(duration: Duration) -> Sleep {
        Sleep {
            deadline: Instant::now() + duration,
            timer_armed: false,
        }
    }

    /// Error returned by [`timeout`] when the inner future missed the
    /// deadline.
    #[derive(Debug, Clone, Copy, PartialEq, Eq)]
    pub struct Elapsed;

    impl std::fmt::Display for Elapsed {
        fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
            f.write_str("deadline has elapsed")
        }
    }

    impl std::error::Error for Elapsed {}

    /// A future racing an inner future against a deadline.
    #[derive(Debug)]
    pub struct Timeout<F> {
        inner: Pin<Box<F>>,
        sleep: Sleep,
    }

    impl<F: Future> Future for Timeout<F> {
        type Output = Result<F::Output, Elapsed>;

        fn poll(mut self: Pin<&mut Self>, cx: &mut Context<'_>) -> Poll<Self::Output> {
            if let Poll::Ready(out) = self.inner.as_mut().poll(cx) {
                return Poll::Ready(Ok(out));
            }
            match Pin::new(&mut self.sleep).poll(cx) {
                Poll::Ready(()) => Poll::Ready(Err(Elapsed)),
                Poll::Pending => Poll::Pending,
            }
        }
    }

    /// Await `fut` for at most `duration`; `Err(Elapsed)` on timeout.
    pub fn timeout<F: Future>(duration: Duration, fut: F) -> Timeout<F> {
        Timeout {
            inner: Box::pin(fut),
            sleep: sleep(duration),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn block_on_ready_future() {
        let rt = runtime::Runtime::new().unwrap();
        assert_eq!(rt.block_on(async { 41 + 1 }), 42);
    }

    #[test]
    fn spawn_and_join() {
        let rt = runtime::Runtime::new().unwrap();
        let out = rt.block_on(async {
            let handles: Vec<_> = (0..8).map(|i| spawn(async move { i * i })).collect();
            let mut sum = 0;
            for h in handles {
                sum += h.await.unwrap();
            }
            sum
        });
        assert_eq!(out, (0..8).map(|i| i * i).sum::<i32>());
    }

    #[test]
    fn join_surfaces_panic_as_error() {
        let rt = runtime::Runtime::new().unwrap();
        let err = rt.block_on(async { spawn(async { panic!("boom") }).await });
        assert!(err.is_err());
    }

    #[test]
    fn oneshot_roundtrip_across_tasks() {
        let rt = runtime::Runtime::new().unwrap();
        let got = rt.block_on(async {
            let (tx, rx) = sync::oneshot::channel();
            spawn(async move {
                time::sleep(Duration::from_millis(5)).await;
                tx.send(7_u32).unwrap();
            });
            rx.await.unwrap()
        });
        assert_eq!(got, 7);
    }

    #[test]
    fn oneshot_dropped_sender_errors() {
        let rt = runtime::Runtime::new().unwrap();
        let got: Result<u32, _> = rt.block_on(async {
            let (tx, rx) = sync::oneshot::channel::<u32>();
            drop(tx);
            rx.await
        });
        assert_eq!(got, Err(sync::oneshot::RecvError));
    }

    #[test]
    fn oneshot_send_to_dropped_receiver_returns_value() {
        let (tx, rx) = sync::oneshot::channel::<u32>();
        drop(rx);
        assert_eq!(tx.send(9), Err(9));
    }

    #[test]
    fn timeout_elapses_and_completes() {
        let rt = runtime::Runtime::new().unwrap();
        rt.block_on(async {
            let fast = time::timeout(Duration::from_millis(200), async { 1 }).await;
            assert_eq!(fast, Ok(1));
            let slow = time::timeout(
                Duration::from_millis(5),
                time::sleep(Duration::from_millis(500)),
            )
            .await;
            assert_eq!(slow, Err(time::Elapsed));
        });
    }

    #[test]
    fn sleep_waits_at_least_the_duration() {
        let rt = runtime::Runtime::new().unwrap();
        let t0 = Instant::now();
        rt.block_on(time::sleep(Duration::from_millis(20)));
        assert!(t0.elapsed() >= Duration::from_millis(20));
    }
}
