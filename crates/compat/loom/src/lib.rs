//! Offline, API-compatible subset of the `loom` model checker.
//!
//! Like the sibling `rand` / `rayon` / `tokio` stand-ins, this crate exists
//! because the build environment has no registry access; the API mirrors
//! upstream loom so swapping in the real dependency is a one-line
//! `Cargo.toml` change. It provides what the workspace's concurrency models
//! use: [`model`], [`thread::spawn`] / [`thread::JoinHandle::join`], and
//! [`sync`]'s `Mutex` / `RwLock` / atomics.
//!
//! # Execution model
//!
//! [`model`] runs the closure repeatedly, once per distinct thread
//! interleaving, until the schedule space is exhausted (depth-first
//! search with backtracking, exactly like upstream loom's exhaustive
//! mode). Within one run, every model thread is a real OS thread but the
//! scheduler gates them so **exactly one runs at a time**; each
//! synchronization operation (lock acquire/release, atomic access,
//! `yield_now`, spawn, join) is a *decision point* where the scheduler
//! picks which runnable thread continues. The chosen branch indices form
//! a trace; after a run completes the deepest incrementable decision is
//! advanced and the prefix replayed, enumerating every schedule.
//!
//! Differences from upstream loom, stated honestly:
//!
//! - Interleavings are explored at *synchronization-operation* granularity.
//!   Plain (non-atomic) shared-memory races cannot be expressed in safe
//!   Rust without these types, so this matches what the workspace needs.
//! - Atomic orderings are all treated as `SeqCst`: the checker explores
//!   thread interleavings, not relaxed-memory reorderings. A bug that only
//!   manifests under `Relaxed`/`Acquire-Release` weakening is out of scope.
//! - `loom::sync::Arc` is plain `std::sync::Arc` (no causality tracking).
//!
//! Unlike upstream loom, the synchronization types here also work *outside*
//! [`model`]: with no scheduler installed on the current thread they
//! delegate straight to their `std::sync` counterparts with identical
//! observable behavior. This lets production code (e.g. the serving
//! registry) use `loom::sync` types unconditionally, so the model checker
//! explores the *real* code rather than a transliterated copy.
//!
//! # Failure reporting
//!
//! A panic in any thread of any schedule aborts the exploration and
//! re-raises the panic after printing the offending schedule's decision
//! trace. If every thread blocks, the run fails with a deadlock report.
//! `LOOM_MAX_BRANCHES` (default 200 000) bounds the number of schedules;
//! exceeding it panics rather than silently truncating coverage.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

mod scheduler;
pub mod sync;
pub mod thread;

pub use scheduler::{model, model_iterations};
