//! The exhaustive-interleaving scheduler behind [`model`].
//!
//! One [`Scheduler`] instance drives one *run* (one schedule). Model
//! threads are OS threads gated by `active`: a thread only executes while
//! `state.active == its id`, parking on the condvar otherwise. Every
//! synchronization operation calls [`Scheduler::switch_point`], which picks
//! the next thread to run — replaying a recorded choice during the DFS
//! prefix, defaulting to the lowest runnable id beyond it.

use std::any::Any;
use std::cell::RefCell;
use std::panic::{catch_unwind, resume_unwind, AssertUnwindSafe};
use std::sync::{Arc, Condvar, Mutex};

/// One recorded scheduling decision: which of `options` runnable threads
/// was chosen. `options` is kept so replays can detect nondeterminism.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub(crate) struct Choice {
    pub(crate) chosen: usize,
    pub(crate) options: usize,
}

/// Why a task cannot currently be scheduled.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
enum Blocked {
    /// Waiting for a lock keyed by the address of its `std` inner object.
    Resource(usize),
    /// Waiting for another task to finish.
    Join(usize),
}

#[derive(Debug)]
struct TaskState {
    finished: bool,
    blocked: Option<Blocked>,
}

struct SchedState {
    tasks: Vec<TaskState>,
    /// The one task allowed to execute.
    active: usize,
    /// Tasks not yet finished.
    unfinished: usize,
    /// Decisions taken so far in this run.
    trace: Vec<Choice>,
    /// Prefix of decisions to replay (from the previous run, with the
    /// deepest incrementable choice advanced).
    replay: Vec<Choice>,
    /// Next decision index.
    pos: usize,
    /// First real panic payload of this run, if any.
    failure: Option<Box<dyn Any + Send>>,
    /// OS handles of spawned model threads, joined by the controller.
    os_handles: Vec<std::thread::JoinHandle<()>>,
}

/// Marker payload used to unwind bystander threads out of user code once a
/// run has already failed; filtered out by the task wrapper.
struct AbortRun;

pub(crate) struct Scheduler {
    state: Mutex<SchedState>,
    cv: Condvar,
}

thread_local! {
    static CURRENT: RefCell<Option<(Arc<Scheduler>, usize)>> = const { RefCell::new(None) };
}

/// The scheduler driving the current thread, if it is a model thread.
pub(crate) fn current() -> Option<(Arc<Scheduler>, usize)> {
    CURRENT.with(|c| c.borrow().clone())
}

impl Scheduler {
    /// Lock the scheduler state, tolerating poison: model-thread panics
    /// (including the deliberate `AbortRun` unwind) legitimately poison the
    /// state mutex while the run is being torn down.
    fn lock_state(&self) -> std::sync::MutexGuard<'_, SchedState> {
        self.state.lock().unwrap_or_else(|e| e.into_inner())
    }

    fn new(replay: Vec<Choice>) -> Self {
        Scheduler {
            state: Mutex::new(SchedState {
                tasks: vec![TaskState {
                    finished: false,
                    blocked: None,
                }],
                active: 0,
                unfinished: 1,
                trace: Vec::new(),
                replay,
                pos: 0,
                failure: None,
                os_handles: Vec::new(),
            }),
            cv: Condvar::new(),
        }
    }

    /// Ids of tasks that could legally run right now, in id order (the
    /// deterministic option ordering the DFS relies on).
    fn runnable(state: &SchedState) -> Vec<usize> {
        state
            .tasks
            .iter()
            .enumerate()
            .filter(|(_, t)| {
                !t.finished
                    && match t.blocked {
                        None => true,
                        Some(Blocked::Resource(_)) => false,
                        Some(Blocked::Join(target)) => state.tasks[target].finished,
                    }
            })
            .map(|(i, _)| i)
            .collect()
    }

    /// Record (or replay) one decision among `options`, returning the
    /// chosen task id. Panics on a nondeterministic model (replayed
    /// decision saw a different option count).
    fn choose(&self, state: &mut SchedState, options: &[usize]) -> usize {
        let pos = state.pos;
        state.pos += 1;
        let chosen_idx = if pos < state.replay.len() {
            let rec = state.replay[pos];
            assert_eq!(
                rec.options,
                options.len(),
                "loom model is nondeterministic: decision {pos} had {} options on replay, {} originally",
                options.len(),
                rec.options,
            );
            rec.chosen
        } else {
            0
        };
        state.trace.push(Choice {
            chosen: chosen_idx,
            options: options.len(),
        });
        options[chosen_idx]
    }

    fn abort_if_failed(state: &SchedState) {
        if state.failure.is_some() {
            std::panic::panic_any(AbortRun);
        }
    }

    /// Park until this task is granted execution (or the run failed).
    fn wait_until_active(&self, me: usize) {
        let mut state = self.lock_state();
        while state.active != me {
            Self::abort_if_failed(&state);
            // Poison-tolerant like `lock_state`: a failing thread panics
            // while holding the state guard, poisoning the mutex for every
            // parked bystander.
            state = self.cv.wait(state).unwrap_or_else(|e| e.into_inner());
        }
        Self::abort_if_failed(&state);
    }

    /// A decision point where the current task is itself runnable.
    pub(crate) fn switch_point(&self, me: usize) {
        let next = {
            let mut state = self.lock_state();
            Self::abort_if_failed(&state);
            let options = Self::runnable(&state);
            debug_assert!(options.contains(&me));
            let next = self.choose(&mut state, &options);
            state.active = next;
            next
        };
        if next != me {
            self.cv.notify_all();
            self.wait_until_active(me);
        }
    }

    /// Block the current task on the lock keyed by `key` and schedule
    /// another. Returns once the task is granted execution again (after a
    /// release made it runnable and a later decision picked it).
    pub(crate) fn block_on_resource(&self, me: usize, key: usize) {
        {
            let mut state = self.lock_state();
            Self::abort_if_failed(&state);
            state.tasks[me].blocked = Some(Blocked::Resource(key));
            self.schedule_other(&mut state, me, "all threads blocked on locks");
        }
        self.cv.notify_all();
        self.wait_until_active(me);
    }

    /// Mark the lock keyed by `key` released: every task blocked on it
    /// becomes runnable again (each retries its acquisition when next
    /// scheduled).
    pub(crate) fn release_resource(&self, key: usize) {
        let mut state = self.lock_state();
        for t in &mut state.tasks {
            if t.blocked == Some(Blocked::Resource(key)) {
                t.blocked = None;
            }
        }
    }

    /// Block the current task until `target` finishes.
    pub(crate) fn block_on_join(&self, me: usize, target: usize) {
        loop {
            {
                let mut state = self.lock_state();
                Self::abort_if_failed(&state);
                if state.tasks[target].finished {
                    return;
                }
                state.tasks[me].blocked = Some(Blocked::Join(target));
                self.schedule_other(&mut state, me, "join cycle: all threads waiting");
            }
            self.cv.notify_all();
            self.wait_until_active(me);
            // Granted again: the join target finished (runnable() only
            // admits a Join-blocked task once its target is done)...
            let mut state = self.lock_state();
            state.tasks[me].blocked = None;
            if state.tasks[target].finished {
                return;
            }
        }
    }

    /// Pick a task other than `me` to run, failing the run with
    /// `deadlock_msg` if none is runnable while work remains.
    fn schedule_other(&self, state: &mut SchedState, me: usize, deadlock_msg: &str) {
        let options = Self::runnable(state);
        if options.is_empty() {
            state.tasks[me].blocked = None;
            drop(options);
            self.fail_locked(
                state,
                Box::new(format!("deadlock detected: {deadlock_msg}")),
            );
        }
        let next = self.choose(state, &options);
        state.active = next;
    }

    /// Register a new task, returning its id. The caller passes a decision
    /// point right after so the new task can be scheduled immediately.
    pub(crate) fn register_task(&self) -> usize {
        let mut state = self.lock_state();
        state.tasks.push(TaskState {
            finished: false,
            blocked: None,
        });
        state.unfinished += 1;
        state.tasks.len() - 1
    }

    pub(crate) fn adopt_os_handle(&self, handle: std::thread::JoinHandle<()>) {
        self.lock_state().os_handles.push(handle);
    }

    /// Record a real failure (first panic wins) and wake every thread so
    /// bystanders can unwind via `AbortRun`.
    fn fail_locked(&self, state: &mut SchedState, payload: Box<dyn Any + Send>) -> ! {
        if state.failure.is_none() {
            state.failure = Some(payload);
        }
        self.cv.notify_all();
        std::panic::panic_any(AbortRun);
    }

    /// Mark the current task finished and hand execution to the next
    /// runnable task (or wake the controller when all are done).
    fn task_done(&self, me: usize) {
        let mut state = self.lock_state();
        state.tasks[me].finished = true;
        state.unfinished -= 1;
        if state.unfinished == 0 || state.failure.is_some() {
            self.cv.notify_all();
            return;
        }
        let options = Self::runnable(&state);
        if options.is_empty() {
            if state.failure.is_none() {
                state.failure = Some(Box::new(
                    "deadlock detected: remaining threads all blocked".to_string(),
                ));
            }
            self.cv.notify_all();
            return;
        }
        let next = self.choose(&mut state, &options);
        state.active = next;
        drop(state);
        self.cv.notify_all();
    }

    /// Run `body` as model task `me` on the current OS thread: install the
    /// scheduler in TLS, wait for the first grant if needed, execute, and
    /// report panics (filtering the `AbortRun` bystander unwind).
    fn run_task(self: &Arc<Self>, me: usize, active_already: bool, body: impl FnOnce()) {
        CURRENT.with(|c| *c.borrow_mut() = Some((Arc::clone(self), me)));
        if !active_already {
            let aborted = catch_unwind(AssertUnwindSafe(|| self.wait_until_active(me))).is_err();
            if aborted {
                CURRENT.with(|c| *c.borrow_mut() = None);
                self.task_done(me);
                return;
            }
        }
        let result = catch_unwind(AssertUnwindSafe(body));
        CURRENT.with(|c| *c.borrow_mut() = None);
        if let Err(payload) = result {
            if !payload.is::<AbortRun>() {
                let mut state = self.lock_state();
                if state.failure.is_none() {
                    state.failure = Some(payload);
                }
            }
        }
        self.task_done(me);
    }

    /// Spawn `body` as a new model task (called from `thread::spawn`),
    /// returning the new task's id.
    pub(crate) fn spawn_task(
        self: &Arc<Self>,
        me: usize,
        body: impl FnOnce() + Send + 'static,
    ) -> usize {
        let id = self.register_task();
        let sched = Arc::clone(self);
        let handle = std::thread::spawn(move || sched.run_task(id, false, body));
        self.adopt_os_handle(handle);
        // Decision point: the child is now schedulable.
        self.switch_point(me);
        id
    }
}

fn max_branches() -> u64 {
    std::env::var("LOOM_MAX_BRANCHES")
        .ok()
        .and_then(|v| v.parse().ok())
        .unwrap_or(200_000)
}

/// Exhaustively explore every interleaving of the model closure.
/// See the crate docs for the execution model and failure reporting.
///
/// # Panics
///
/// Re-raises the first panic of any thread in any schedule (after printing
/// that schedule's decision trace), panics on deadlock, on a
/// nondeterministic model, and when `LOOM_MAX_BRANCHES` is exceeded.
pub fn model<F>(f: F)
where
    F: Fn() + Send + Sync + 'static,
{
    model_iterations(f);
}

/// Like [`model`] but returns the number of schedules explored, so tests
/// of the checker itself can assert real interleaving coverage.
pub fn model_iterations<F>(f: F) -> u64
where
    F: Fn() + Send + Sync + 'static,
{
    assert!(
        current().is_none(),
        "nested loom::model calls are not supported"
    );
    let f = Arc::new(f);
    let limit = max_branches();
    let mut replay: Vec<Choice> = Vec::new();
    let mut iterations: u64 = 0;
    loop {
        iterations += 1;
        assert!(
            iterations <= limit,
            "loom model exceeded {limit} schedules (set LOOM_MAX_BRANCHES to raise)"
        );
        let sched = Arc::new(Scheduler::new(std::mem::take(&mut replay)));
        let main_sched = Arc::clone(&sched);
        let main_f = Arc::clone(&f);
        // Still-unjoined children keep running after the main task's body
        // returns: task_done hands execution to the next runnable task.
        let main = std::thread::spawn(move || main_sched.run_task(0, true, move || main_f()));
        // Wait for every task of this run to finish.
        {
            let mut state = sched.lock_state();
            while state.unfinished > 0 {
                // Poison-tolerant: failing model threads poison the state
                // mutex (they panic while holding its guard).
                state = sched.cv.wait(state).unwrap_or_else(|e| e.into_inner());
            }
        }
        main.join().expect("loom main task thread");
        let (trace, failure, handles) = {
            let mut state = sched.lock_state();
            (
                std::mem::take(&mut state.trace),
                state.failure.take(),
                std::mem::take(&mut state.os_handles),
            )
        };
        for h in handles {
            h.join().expect("loom model thread");
        }
        if let Some(payload) = failure {
            let decisions: Vec<String> = trace
                .iter()
                .map(|c| format!("{}/{}", c.chosen, c.options))
                .collect();
            eprintln!(
                "loom: schedule {} failed after {} decisions: [{}]",
                iterations,
                trace.len(),
                decisions.join(", ")
            );
            if let Some(msg) = payload.downcast_ref::<String>() {
                if msg.starts_with("deadlock detected") {
                    panic!("loom: {msg} (schedule {iterations})");
                }
            }
            resume_unwind(payload);
        }
        // Depth-first backtrack: advance the deepest incrementable choice.
        let mut prefix = trace;
        loop {
            match prefix.pop() {
                None => return iterations,
                Some(mut last) => {
                    if last.chosen + 1 < last.options {
                        last.chosen += 1;
                        prefix.push(last);
                        break;
                    }
                }
            }
        }
        replay = prefix;
    }
}
