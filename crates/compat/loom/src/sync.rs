//! Scheduler-instrumented synchronization types mirroring `std::sync`.
//!
//! Inside [`crate::model`] every acquisition, release, and atomic access is
//! a scheduler decision point; outside a model the types delegate straight
//! to `std::sync` (one thread-local lookup of overhead), so production code
//! can use them unconditionally and the model checker explores the real
//! code paths.
//!
//! Mutual exclusion is enforced by the *inner* `std` lock via `try_lock`:
//! because the scheduler runs exactly one model thread at a time, a `try_*`
//! acquisition never spins — it either succeeds or reports the conflict the
//! scheduler then blocks on. No `unsafe` is needed anywhere.

use crate::scheduler;
use std::sync::{LockResult, PoisonError, TryLockError, TryLockResult};

pub use std::sync::Arc;

/// Key identifying a lock to the scheduler: the address of its inner `std`
/// object (unique and stable for the object's lifetime).
fn key_of<T>(inner: &T) -> usize {
    inner as *const T as usize
}

/// A mutual-exclusion primitive mirroring [`std::sync::Mutex`].
#[derive(Debug, Default)]
pub struct Mutex<T> {
    inner: std::sync::Mutex<T>,
}

/// Guard returned by [`Mutex::lock`]; releasing it is a scheduler decision
/// point inside a model.
#[derive(Debug)]
pub struct MutexGuard<'a, T> {
    // Option so Drop can release the std guard before notifying the
    // scheduler (the release must be visible to whoever runs next).
    guard: Option<std::sync::MutexGuard<'a, T>>,
    key: usize,
}

impl<T> Mutex<T> {
    /// Create a new mutex.
    pub fn new(value: T) -> Self {
        Mutex {
            inner: std::sync::Mutex::new(value),
        }
    }

    /// Acquire the mutex, blocking the model thread until it is free.
    ///
    /// # Errors
    ///
    /// Returns `Err` with the guard when the mutex was poisoned, exactly
    /// like [`std::sync::Mutex::lock`].
    pub fn lock(&self) -> LockResult<MutexGuard<'_, T>> {
        let key = key_of(&self.inner);
        if let Some((sched, me)) = scheduler::current() {
            sched.switch_point(me);
            loop {
                match self.inner.try_lock() {
                    Ok(guard) => {
                        return Ok(MutexGuard {
                            guard: Some(guard),
                            key,
                        })
                    }
                    Err(TryLockError::Poisoned(e)) => {
                        return Err(PoisonError::new(MutexGuard {
                            guard: Some(e.into_inner()),
                            key,
                        }))
                    }
                    Err(TryLockError::WouldBlock) => sched.block_on_resource(me, key),
                }
            }
        } else {
            match self.inner.lock() {
                Ok(guard) => Ok(MutexGuard {
                    guard: Some(guard),
                    key,
                }),
                Err(e) => Err(PoisonError::new(MutexGuard {
                    guard: Some(e.into_inner()),
                    key,
                })),
            }
        }
    }

    /// Attempt the lock without blocking, mirroring
    /// [`std::sync::Mutex::try_lock`].
    ///
    /// # Errors
    ///
    /// [`TryLockError::WouldBlock`] when held elsewhere,
    /// [`TryLockError::Poisoned`] when poisoned.
    pub fn try_lock(&self) -> TryLockResult<MutexGuard<'_, T>> {
        let key = key_of(&self.inner);
        if let Some((sched, me)) = scheduler::current() {
            sched.switch_point(me);
        }
        match self.inner.try_lock() {
            Ok(guard) => Ok(MutexGuard {
                guard: Some(guard),
                key,
            }),
            Err(TryLockError::Poisoned(e)) => {
                Err(TryLockError::Poisoned(PoisonError::new(MutexGuard {
                    guard: Some(e.into_inner()),
                    key,
                })))
            }
            Err(TryLockError::WouldBlock) => Err(TryLockError::WouldBlock),
        }
    }

    /// Consume the mutex, returning the inner value.
    ///
    /// # Errors
    ///
    /// Propagates poisoning like [`std::sync::Mutex::into_inner`].
    pub fn into_inner(self) -> LockResult<T> {
        self.inner.into_inner()
    }
}

impl<T> std::ops::Deref for MutexGuard<'_, T> {
    type Target = T;
    fn deref(&self) -> &T {
        self.guard.as_ref().expect("guard present until drop")
    }
}

impl<T> std::ops::DerefMut for MutexGuard<'_, T> {
    fn deref_mut(&mut self) -> &mut T {
        self.guard.as_mut().expect("guard present until drop")
    }
}

impl<T> Drop for MutexGuard<'_, T> {
    fn drop(&mut self) {
        self.guard.take();
        if let Some((sched, me)) = scheduler::current() {
            sched.release_resource(self.key);
            // A release during panic unwinding must not re-enter the
            // scheduler: switch_point can itself panic (AbortRun), and a
            // panic inside a destructor during cleanup aborts the process.
            if !std::thread::panicking() {
                sched.switch_point(me);
            }
        }
    }
}

/// A reader-writer lock mirroring [`std::sync::RwLock`].
#[derive(Debug, Default)]
pub struct RwLock<T> {
    inner: std::sync::RwLock<T>,
}

/// Shared-read guard returned by [`RwLock::read`].
#[derive(Debug)]
pub struct RwLockReadGuard<'a, T> {
    guard: Option<std::sync::RwLockReadGuard<'a, T>>,
    key: usize,
}

/// Exclusive-write guard returned by [`RwLock::write`].
#[derive(Debug)]
pub struct RwLockWriteGuard<'a, T> {
    guard: Option<std::sync::RwLockWriteGuard<'a, T>>,
    key: usize,
}

impl<T> RwLock<T> {
    /// Create a new reader-writer lock.
    pub fn new(value: T) -> Self {
        RwLock {
            inner: std::sync::RwLock::new(value),
        }
    }

    /// Acquire shared read access.
    ///
    /// # Errors
    ///
    /// Returns `Err` with the guard when the lock was poisoned, like
    /// [`std::sync::RwLock::read`].
    pub fn read(&self) -> LockResult<RwLockReadGuard<'_, T>> {
        let key = key_of(&self.inner);
        if let Some((sched, me)) = scheduler::current() {
            sched.switch_point(me);
            loop {
                match self.inner.try_read() {
                    Ok(guard) => {
                        return Ok(RwLockReadGuard {
                            guard: Some(guard),
                            key,
                        })
                    }
                    Err(TryLockError::Poisoned(e)) => {
                        return Err(PoisonError::new(RwLockReadGuard {
                            guard: Some(e.into_inner()),
                            key,
                        }))
                    }
                    Err(TryLockError::WouldBlock) => sched.block_on_resource(me, key),
                }
            }
        } else {
            match self.inner.read() {
                Ok(guard) => Ok(RwLockReadGuard {
                    guard: Some(guard),
                    key,
                }),
                Err(e) => Err(PoisonError::new(RwLockReadGuard {
                    guard: Some(e.into_inner()),
                    key,
                })),
            }
        }
    }

    /// Acquire exclusive write access.
    ///
    /// # Errors
    ///
    /// Returns `Err` with the guard when the lock was poisoned, like
    /// [`std::sync::RwLock::write`].
    pub fn write(&self) -> LockResult<RwLockWriteGuard<'_, T>> {
        let key = key_of(&self.inner);
        if let Some((sched, me)) = scheduler::current() {
            sched.switch_point(me);
            loop {
                match self.inner.try_write() {
                    Ok(guard) => {
                        return Ok(RwLockWriteGuard {
                            guard: Some(guard),
                            key,
                        })
                    }
                    Err(TryLockError::Poisoned(e)) => {
                        return Err(PoisonError::new(RwLockWriteGuard {
                            guard: Some(e.into_inner()),
                            key,
                        }))
                    }
                    Err(TryLockError::WouldBlock) => sched.block_on_resource(me, key),
                }
            }
        } else {
            match self.inner.write() {
                Ok(guard) => Ok(RwLockWriteGuard {
                    guard: Some(guard),
                    key,
                }),
                Err(e) => Err(PoisonError::new(RwLockWriteGuard {
                    guard: Some(e.into_inner()),
                    key,
                })),
            }
        }
    }

    /// Consume the lock, returning the inner value.
    ///
    /// # Errors
    ///
    /// Propagates poisoning like [`std::sync::RwLock::into_inner`].
    pub fn into_inner(self) -> LockResult<T> {
        self.inner.into_inner()
    }
}

impl<T> std::ops::Deref for RwLockReadGuard<'_, T> {
    type Target = T;
    fn deref(&self) -> &T {
        self.guard.as_ref().expect("guard present until drop")
    }
}

impl<T> Drop for RwLockReadGuard<'_, T> {
    fn drop(&mut self) {
        self.guard.take();
        if let Some((sched, me)) = scheduler::current() {
            sched.release_resource(self.key);
            // A release during panic unwinding must not re-enter the
            // scheduler: switch_point can itself panic (AbortRun), and a
            // panic inside a destructor during cleanup aborts the process.
            if !std::thread::panicking() {
                sched.switch_point(me);
            }
        }
    }
}

impl<T> std::ops::Deref for RwLockWriteGuard<'_, T> {
    type Target = T;
    fn deref(&self) -> &T {
        self.guard.as_ref().expect("guard present until drop")
    }
}

impl<T> std::ops::DerefMut for RwLockWriteGuard<'_, T> {
    fn deref_mut(&mut self) -> &mut T {
        self.guard.as_mut().expect("guard present until drop")
    }
}

impl<T> Drop for RwLockWriteGuard<'_, T> {
    fn drop(&mut self) {
        self.guard.take();
        if let Some((sched, me)) = scheduler::current() {
            sched.release_resource(self.key);
            // A release during panic unwinding must not re-enter the
            // scheduler: switch_point can itself panic (AbortRun), and a
            // panic inside a destructor during cleanup aborts the process.
            if !std::thread::panicking() {
                sched.switch_point(me);
            }
        }
    }
}

/// Scheduler-instrumented atomics. All orderings are executed as `SeqCst`
/// (see the crate docs: interleavings are explored, memory-model
/// weakenings are not).
pub mod atomic {
    use crate::scheduler;

    pub use std::sync::atomic::Ordering;

    /// A decision point before every atomic access.
    fn interleave() {
        if let Some((sched, me)) = scheduler::current() {
            sched.switch_point(me);
        }
    }

    /// An atomic memory fence: a pure decision point in this checker.
    pub fn fence(_order: Ordering) {
        interleave();
        std::sync::atomic::fence(Ordering::SeqCst);
    }

    macro_rules! atomic_type {
        ($(#[$doc:meta])* $name:ident, $std:ty, $prim:ty) => {
            $(#[$doc])*
            #[derive(Debug, Default)]
            pub struct $name {
                inner: $std,
            }

            impl $name {
                /// Create a new atomic with the given initial value.
                pub fn new(value: $prim) -> Self {
                    Self { inner: <$std>::new(value) }
                }

                /// Atomic load (decision point; executed `SeqCst`).
                pub fn load(&self, _order: Ordering) -> $prim {
                    interleave();
                    self.inner.load(Ordering::SeqCst)
                }

                /// Atomic store (decision point; executed `SeqCst`).
                pub fn store(&self, value: $prim, _order: Ordering) {
                    interleave();
                    self.inner.store(value, Ordering::SeqCst)
                }

                /// Atomic swap (decision point; executed `SeqCst`).
                pub fn swap(&self, value: $prim, _order: Ordering) -> $prim {
                    interleave();
                    self.inner.swap(value, Ordering::SeqCst)
                }

                /// Atomic compare-exchange (decision point; executed
                /// `SeqCst`).
                ///
                /// # Errors
                ///
                /// Returns the observed value when it differs from
                /// `current`, like the `std` counterpart.
                pub fn compare_exchange(
                    &self,
                    current: $prim,
                    new: $prim,
                    _success: Ordering,
                    _failure: Ordering,
                ) -> Result<$prim, $prim> {
                    interleave();
                    self.inner
                        .compare_exchange(current, new, Ordering::SeqCst, Ordering::SeqCst)
                }
            }
        };
    }

    atomic_type!(
        /// Mirror of [`std::sync::atomic::AtomicBool`].
        AtomicBool,
        std::sync::atomic::AtomicBool,
        bool
    );
    atomic_type!(
        /// Mirror of [`std::sync::atomic::AtomicUsize`].
        AtomicUsize,
        std::sync::atomic::AtomicUsize,
        usize
    );
    atomic_type!(
        /// Mirror of [`std::sync::atomic::AtomicU64`].
        AtomicU64,
        std::sync::atomic::AtomicU64,
        u64
    );

    macro_rules! atomic_arith {
        ($name:ident, $prim:ty) => {
            impl $name {
                /// Atomic add returning the previous value (decision point;
                /// executed `SeqCst`).
                pub fn fetch_add(&self, value: $prim, _order: Ordering) -> $prim {
                    interleave();
                    self.inner.fetch_add(value, Ordering::SeqCst)
                }
            }
        };
    }

    atomic_arith!(AtomicUsize, usize);
    atomic_arith!(AtomicU64, u64);
}
