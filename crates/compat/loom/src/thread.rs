//! Model-thread spawning mirroring `std::thread`.

use crate::scheduler;
use std::any::Any;
use std::sync::{Arc, Mutex};

/// Handle to a spawned model thread, mirroring [`std::thread::JoinHandle`].
pub struct JoinHandle<T> {
    /// Task id inside the model (`None` outside a model).
    task: Option<usize>,
    result: Arc<Mutex<Option<std::thread::Result<T>>>>,
    /// OS handle when spawned outside a model.
    os: Option<std::thread::JoinHandle<()>>,
}

impl<T> std::fmt::Debug for JoinHandle<T> {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("JoinHandle")
            .field("task", &self.task)
            .finish()
    }
}

/// Spawn a thread. Inside [`crate::model`] the thread joins the schedule
/// exploration (spawning is a decision point); outside it delegates to
/// [`std::thread::spawn`].
pub fn spawn<F, T>(f: F) -> JoinHandle<T>
where
    F: FnOnce() -> T + Send + 'static,
    T: Send + 'static,
{
    let result: Arc<Mutex<Option<std::thread::Result<T>>>> = Arc::new(Mutex::new(None));
    let slot = Arc::clone(&result);
    if let Some((sched, me)) = scheduler::current() {
        let task = sched.spawn_task(me, move || {
            let value = f();
            *slot.lock().unwrap_or_else(|e| e.into_inner()) = Some(Ok(value));
        });
        JoinHandle {
            task: Some(task),
            result,
            os: None,
        }
    } else {
        let os = std::thread::spawn(move || {
            let value = std::panic::catch_unwind(std::panic::AssertUnwindSafe(f));
            *slot.lock().unwrap_or_else(|e| e.into_inner()) = Some(value);
        });
        JoinHandle {
            task: None,
            result,
            os: Some(os),
        }
    }
}

/// A pure scheduler decision point (no-op outside a model).
pub fn yield_now() {
    if let Some((sched, me)) = scheduler::current() {
        sched.switch_point(me);
    }
}

impl<T> JoinHandle<T> {
    /// Wait for the thread to finish and return its value.
    ///
    /// # Errors
    ///
    /// Returns the thread's panic payload if it panicked (outside a model;
    /// inside a model a panicking thread fails the whole run first).
    pub fn join(self) -> std::thread::Result<T> {
        if let Some(task) = self.task {
            let (sched, me) = scheduler::current()
                .expect("loom JoinHandle::join called outside the model that spawned it");
            sched.block_on_join(me, task);
        } else if let Some(os) = self.os {
            // Outside a model: wait for the OS thread; its panic payload is
            // in the result slot.
            let _ = os.join();
        }
        let taken = self.result.lock().unwrap_or_else(|e| e.into_inner()).take();
        match taken {
            Some(r) => r,
            None => Err(Box::new("loom model thread produced no result") as Box<dyn Any + Send>),
        }
    }
}
