//! Tests of the model checker itself: it must really explore interleavings
//! (finding planted concurrency bugs), must accept correct code in every
//! schedule, and must detect deadlocks.

use loom::sync::atomic::{AtomicUsize, Ordering};
use loom::sync::{Arc, Mutex, RwLock};
use std::panic::{catch_unwind, AssertUnwindSafe};

#[test]
fn mutex_counter_is_correct_in_every_schedule() {
    let iterations = loom::model_iterations(|| {
        let counter = Arc::new(Mutex::new(0u32));
        let handles: Vec<_> = (0..2)
            .map(|_| {
                let counter = Arc::clone(&counter);
                loom::thread::spawn(move || {
                    for _ in 0..2 {
                        *counter.lock().unwrap() += 1;
                    }
                })
            })
            .collect();
        for h in handles {
            h.join().unwrap();
        }
        assert_eq!(*counter.lock().unwrap(), 4);
    });
    assert!(
        iterations > 1,
        "two lock-contending threads must yield multiple schedules, got {iterations}"
    );
}

#[test]
fn finds_lost_update_race() {
    // Non-atomic read-modify-write over an atomic cell: some interleaving
    // loses an update. The checker must find that schedule.
    let result = catch_unwind(AssertUnwindSafe(|| {
        loom::model(|| {
            let cell = Arc::new(AtomicUsize::new(0));
            let handles: Vec<_> = (0..2)
                .map(|_| {
                    let cell = Arc::clone(&cell);
                    loom::thread::spawn(move || {
                        let v = cell.load(Ordering::SeqCst);
                        cell.store(v + 1, Ordering::SeqCst);
                    })
                })
                .collect();
            for h in handles {
                h.join().unwrap();
            }
            assert_eq!(cell.load(Ordering::SeqCst), 2, "lost update");
        });
    }));
    assert!(
        result.is_err(),
        "the checker failed to find the planted lost-update interleaving"
    );
}

#[test]
fn atomic_fetch_add_has_no_lost_update() {
    loom::model(|| {
        let cell = Arc::new(AtomicUsize::new(0));
        let handles: Vec<_> = (0..2)
            .map(|_| {
                let cell = Arc::clone(&cell);
                loom::thread::spawn(move || {
                    cell.fetch_add(1, Ordering::SeqCst);
                })
            })
            .collect();
        for h in handles {
            h.join().unwrap();
        }
        assert_eq!(cell.load(Ordering::SeqCst), 2);
    });
}

#[test]
fn detects_abba_deadlock() {
    let result = catch_unwind(AssertUnwindSafe(|| {
        loom::model(|| {
            let a = Arc::new(Mutex::new(()));
            let b = Arc::new(Mutex::new(()));
            let (a2, b2) = (Arc::clone(&a), Arc::clone(&b));
            let t = loom::thread::spawn(move || {
                let _ga = a2.lock().unwrap();
                let _gb = b2.lock().unwrap();
            });
            {
                let _gb = b.lock().unwrap();
                let _ga = a.lock().unwrap();
            }
            t.join().unwrap();
        });
    }));
    let payload = result.expect_err("ABBA locking must deadlock in some schedule");
    let msg = payload
        .downcast_ref::<String>()
        .cloned()
        .unwrap_or_default();
    assert!(msg.contains("deadlock"), "unexpected failure: {msg}");
}

#[test]
fn rwlock_readers_see_complete_writes() {
    loom::model(|| {
        let lock = Arc::new(RwLock::new((0u32, 0u32)));
        let writer_lock = Arc::clone(&lock);
        let writer = loom::thread::spawn(move || {
            let mut g = writer_lock.write().unwrap();
            g.0 = 1;
            // Both halves update under one write guard: no reader may
            // observe the pair torn.
            g.1 = 1;
        });
        let pair = *lock.read().unwrap();
        assert!(pair == (0, 0) || pair == (1, 1), "torn read: {pair:?}");
        writer.join().unwrap();
    });
}

#[test]
fn join_returns_thread_value() {
    loom::model(|| {
        let t = loom::thread::spawn(|| 41 + 1);
        assert_eq!(t.join().unwrap(), 42);
    });
}

#[test]
fn unjoined_threads_still_run_to_completion() {
    loom::model(|| {
        let flag = Arc::new(AtomicUsize::new(0));
        let f2 = Arc::clone(&flag);
        // Never joined: the scheduler must still drive it to completion
        // before the run ends.
        loom::thread::spawn(move || {
            f2.store(7, Ordering::SeqCst);
        });
    });
}

#[test]
fn fallback_outside_model_behaves_like_std() {
    let m = Mutex::new(5);
    *m.lock().unwrap() += 1;
    assert_eq!(*m.lock().unwrap(), 6);
    let rw = RwLock::new(vec![1, 2]);
    rw.write().unwrap().push(3);
    assert_eq!(rw.read().unwrap().len(), 3);
    let t = loom::thread::spawn(|| 9);
    assert_eq!(t.join().unwrap(), 9);
    let a = AtomicUsize::new(1);
    assert_eq!(a.fetch_add(2, Ordering::Relaxed), 1);
    assert_eq!(a.load(Ordering::Relaxed), 3);
}

#[test]
fn exploration_is_exhaustive_for_two_atomic_writers() {
    // Two threads each doing one atomic store + the spawn/join decision
    // points: the DFS must enumerate more than a handful of schedules but
    // terminate.
    let iterations = loom::model_iterations(|| {
        let cell = Arc::new(AtomicUsize::new(0));
        let c1 = Arc::clone(&cell);
        let c2 = Arc::clone(&cell);
        let t1 = loom::thread::spawn(move || c1.store(1, Ordering::SeqCst));
        let t2 = loom::thread::spawn(move || c2.store(2, Ordering::SeqCst));
        t1.join().unwrap();
        t2.join().unwrap();
        let v = cell.load(Ordering::SeqCst);
        assert!(v == 1 || v == 2);
    });
    assert!(
        (2..200_000).contains(&iterations),
        "unexpected schedule count {iterations}"
    );
}
