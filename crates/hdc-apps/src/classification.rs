//! HD classification with iterative retraining.
//!
//! The canonical HDC learning pipeline (the paper's HD-Classification
//! application): random-projection encode, bootstrap class hypervectors by
//! perceptron-style retraining, binarize, classify. The whole pipeline is
//! one IR program — two `encoding_loop` stages (train and test sets), a
//! `training_loop` whose per-sample body scores against the live class
//! matrix, a `sign` binarization of the trained classes, and an
//! `inference_loop` over the test set:
//!
//! ```text
//! train_x ──► encoding_loop ──► training_loop(epochs) ──► sign ─┐
//! test_x  ──► encoding_loop ───────────────────────────────────► inference_loop ──► labels
//! ```
//!
//! Retraining semantics (inside `training_loop`, per epoch, per sample): on
//! a misprediction the encoded sample is **added** to the true class row and
//! **subtracted** from the predicted class row. Starting from a zero class
//! matrix, the first epoch degenerates to one-shot bundling (everything
//! mispredicts), and later epochs correct the boundary errors bundling
//! leaves behind — [`ClassificationApp::epoch_sweep`] exposes the resulting
//! accuracy-vs-epochs curve, which the `app_equivalence` suite requires to
//! improve.

use crate::{ExecMode, Result};
use hdc_core::element::ElementKind;
use hdc_datasets::Dataset;
use hdc_ir::builder::ProgramBuilder;
use hdc_ir::program::{NodeBody, Program, ValueId, ValueRole};
use hdc_ir::stage::{ScorePolarity, StageKind};
use hdc_passes::{compile, eliminate_dead_code, CompileOptions, CompileReport};
use hdc_runtime::{ExecStats, Executor, Value};

/// The compiled classification application.
#[derive(Debug)]
pub struct ClassificationApp {
    dataset: Dataset,
    program: Program,
    report: CompileReport,
    preds: ValueId,
    enc_train: ValueId,
    enc_test: ValueId,
    dim: usize,
    epochs: usize,
    /// Inputs pre-wrapped as Arc-backed [`Value`]s so every [`run`] binds
    /// by reference-count bump instead of deep-copying the dataset — the
    /// perf harness times `run` end to end.
    ///
    /// [`run`]: ClassificationApp::run
    train_x: Value,
    test_x: Value,
    train_y: Value,
}

/// The outcome of one classification run.
#[derive(Debug, Clone, PartialEq)]
pub struct ClassificationRun {
    /// Predicted class per test sample.
    pub predictions: Vec<usize>,
    /// Fraction of test predictions matching ground truth.
    pub accuracy: f64,
    /// Executor counters for the run.
    pub stats: ExecStats,
}

impl ClassificationApp {
    /// Build the classification program for `dataset` at hypervector
    /// dimension `dim` with `epochs` retraining epochs, and compile it
    /// through the default pass pipeline (binarization on).
    ///
    /// # Errors
    ///
    /// Returns [`AppError::Compile`](crate::AppError::Compile) if the pass
    /// pipeline rejects the program.
    pub fn new(dataset: Dataset, dim: usize, epochs: usize) -> Result<Self> {
        Self::with_options(dataset, dim, epochs, &CompileOptions::default())
    }

    /// [`ClassificationApp::new`] with explicit compile options (e.g. the
    /// dense baseline configuration).
    ///
    /// # Errors
    ///
    /// Returns [`AppError::Compile`](crate::AppError::Compile) if the pass
    /// pipeline rejects the program.
    pub fn with_options(
        dataset: Dataset,
        dim: usize,
        epochs: usize,
        options: &CompileOptions,
    ) -> Result<Self> {
        let (mut program, preds, enc_train, enc_test) = build_program(&dataset, dim, epochs);
        let report = compile(&mut program, options)?;
        let train_x = Value::matrix(dataset.train.features.clone());
        let test_x = Value::matrix(dataset.test.features.clone());
        let train_y = Value::indices(dataset.train.labels.clone());
        Ok(ClassificationApp {
            dataset,
            program,
            report,
            preds,
            enc_train,
            enc_test,
            dim,
            epochs,
            train_x,
            test_x,
            train_y,
        })
    }

    /// The compiled IR program.
    pub fn program(&self) -> &Program {
        &self.program
    }

    /// The pass pipeline's compile report.
    pub fn compile_report(&self) -> &CompileReport {
        &self.report
    }

    /// The dataset the app classifies.
    pub fn dataset(&self) -> &Dataset {
        &self.dataset
    }

    /// Hypervector dimension the app encodes into.
    pub fn dim(&self) -> usize {
        self.dim
    }

    /// Number of retraining epochs the program performs.
    pub fn epochs(&self) -> usize {
        self.epochs
    }

    /// Execute the app under the given mode.
    ///
    /// # Errors
    ///
    /// Returns [`AppError::Runtime`](crate::AppError::Runtime) if execution
    /// fails.
    pub fn run(&self, mode: ExecMode) -> Result<ClassificationRun> {
        let mut exec = Executor::new(&self.program)?;
        exec.set_batched_stages(mode.is_batched());
        exec.set_parallel_loops(mode.is_batched());
        exec.bind("train_features", self.train_x.clone())?;
        exec.bind("test_features", self.test_x.clone())?;
        exec.bind("train_labels", self.train_y.clone())?;
        let out = exec.run()?;
        let predictions = out.indices(self.preds)?.to_vec();
        Ok(ClassificationRun {
            accuracy: self.dataset.test_accuracy(&predictions),
            predictions,
            stats: exec.stats(),
        })
    }

    /// Execute the app through the accelerator back end: stage nodes are
    /// re-targeted onto `target` (with legality demotion), outputs stay
    /// bit-identical to [`run`](ClassificationApp::run), and the returned
    /// report carries the modeled accelerator-vs-CPU cost of every
    /// accelerated stage.
    ///
    /// # Errors
    ///
    /// Returns [`AppError::Runtime`](crate::AppError::Runtime) if execution
    /// fails.
    pub fn run_accelerated(
        &self,
        model: &hdc_accel::AcceleratorModel,
        target: hdc_ir::Target,
    ) -> Result<crate::Accelerated<ClassificationRun>> {
        let ax = hdc_accel::AcceleratedExecutor::new(&self.program, target, model.clone());
        let run = ax.run_with(|exec| {
            exec.bind("train_features", self.train_x.clone())?;
            exec.bind("test_features", self.test_x.clone())?;
            exec.bind("train_labels", self.train_y.clone())?;
            Ok(())
        })?;
        let predictions = run.outputs.indices(self.preds)?.to_vec();
        Ok(crate::Accelerated {
            run: ClassificationRun {
                accuracy: self.dataset.test_accuracy(&predictions),
                predictions,
                stats: run.stats.exec,
            },
            modeled: run.stats.modeled,
        })
    }

    /// Test accuracy as a function of retraining epochs, run batched. This
    /// is the retraining curve of the paper's Figure 7-style evaluations.
    ///
    /// The whole sweep shares **one** compiled program: the train and test
    /// sets are encoded once (the encodings are harvested from a single
    /// run), and each entry then executes a reduced train+infer program
    /// whose `training_loop` epoch count is the only thing that varies — no
    /// per-entry rebuild, recompile, or re-encoding. The accuracies are
    /// identical to building one full app per entry (asserted by the
    /// `app_equivalence` suite): the epoch count influences nothing before
    /// the training stage.
    ///
    /// # Errors
    ///
    /// Propagates compile or runtime failures from any entry.
    pub fn epoch_sweep(dataset: &Dataset, dim: usize, epochs: &[usize]) -> Result<Vec<f64>> {
        let Some(&first) = epochs.first() else {
            return Ok(Vec::new());
        };
        let app = ClassificationApp::new(dataset.clone(), dim, first)?;
        app.sweep_epochs(epochs)
    }

    /// [`ClassificationApp::epoch_sweep`] over this app's compiled program:
    /// encode once, then run the training+inference tail once per `epochs`
    /// entry.
    ///
    /// # Errors
    ///
    /// Propagates runtime failures from the harvest run or any entry.
    pub fn sweep_epochs(&self, epochs: &[usize]) -> Result<Vec<f64>> {
        // Harvest the encoded train/test matrices from one encode-only run
        // of the compiled program (the encodings do not depend on the epoch
        // count, and the training/inference tail would be thrown away).
        let mut harvest = self.program.clone();
        harvest.nodes_mut().retain(|n| match &n.body {
            NodeBody::Stage(s) => s.kind == StageKind::Encoding,
            _ => true,
        });
        harvest.value_mut(self.preds).role = ValueRole::Temp;
        harvest.value_mut(self.enc_train).role = ValueRole::Output;
        harvest.value_mut(self.enc_test).role = ValueRole::Output;
        eliminate_dead_code(&mut harvest);
        let mut exec = Executor::new(&harvest)?;
        exec.bind("train_features", self.train_x.clone())?;
        exec.bind("test_features", self.test_x.clone())?;
        exec.bind("train_labels", self.train_y.clone())?;
        let out = exec.run()?;
        let enc_train = out
            .get(self.enc_train)
            .expect("marked as output above")
            .clone();
        let enc_test = out
            .get(self.enc_test)
            .expect("marked as output above")
            .clone();
        // The reduced program: the encoding stages are dropped and the
        // encoded matrices become host-bound inputs; dead code from the
        // dropped stages (the projection matrix) is eliminated.
        let mut reduced = self.program.clone();
        reduced
            .nodes_mut()
            .retain(|n| !matches!(&n.body, NodeBody::Stage(s) if s.kind == StageKind::Encoding));
        reduced.value_mut(self.enc_train).role = ValueRole::Input;
        reduced.value_mut(self.enc_test).role = ValueRole::Input;
        eliminate_dead_code(&mut reduced);
        epochs
            .iter()
            .map(|&e| {
                let mut program = reduced.clone();
                for node in program.nodes_mut() {
                    if let NodeBody::Stage(stage) = &mut node.body {
                        if matches!(stage.kind, StageKind::Training { .. }) {
                            stage.kind = StageKind::Training { epochs: e };
                        }
                    }
                }
                let mut exec = Executor::new(&program)?;
                // The raw feature inputs are unused once the encoding
                // stages are gone, but they keep their input role; binding
                // them is a reference-count bump.
                exec.bind("train_features", self.train_x.clone())?;
                exec.bind("test_features", self.test_x.clone())?;
                exec.bind("train_labels", self.train_y.clone())?;
                exec.bind_id(self.enc_train, enc_train.clone())?;
                exec.bind_id(self.enc_test, enc_test.clone())?;
                let out = exec.run()?;
                let predictions = out.indices(self.preds)?;
                Ok(self.dataset.test_accuracy(predictions))
            })
            .collect()
    }

    /// Harvest the trained classifier artifacts from one run of the
    /// compiled program: the projection matrix, the *dense* trained class
    /// memory (`class_hvs`, the perceptron accumulator before the freeze),
    /// and the frozen class memory (`class_bits`, bit-packed under the
    /// binarized configuration).
    ///
    /// This is the re-freezing hook the serving layer builds on: a servable
    /// model is constructed from these artifacts, and an online trainer
    /// resumes perceptron updates from the dense accumulator, re-freezing
    /// through the same `sign` that produced `class_bits` here.
    ///
    /// # Errors
    ///
    /// Returns [`AppError::Runtime`](crate::AppError::Runtime) if the
    /// harvest run fails.
    pub fn harvest_artifacts(&self) -> Result<HarvestedClassifier> {
        let mut harvest = self.program.clone();
        for name in ["rp_matrix", "class_hvs", "class_bits"] {
            let id = harvest
                .values()
                .iter()
                .position(|v| v.name == name)
                .map(hdc_ir::program::ValueId::new)
                .expect("build_program names these values");
            harvest.value_mut(id).role = ValueRole::Output;
        }
        let mut exec = Executor::new(&harvest)?;
        exec.bind("train_features", self.train_x.clone())?;
        exec.bind("test_features", self.test_x.clone())?;
        exec.bind("train_labels", self.train_y.clone())?;
        let out = exec.run()?;
        let by_name =
            |name: &str| -> Value { out.by_name(name).expect("marked as output above").clone() };
        Ok(HarvestedClassifier {
            rp_matrix: by_name("rp_matrix"),
            class_hvs: by_name("class_hvs"),
            class_bits: by_name("class_bits"),
        })
    }
}

/// Trained classifier artifacts harvested by
/// [`ClassificationApp::harvest_artifacts`]. All `Value`s are `Arc`-backed;
/// holding or re-binding them never copies a tensor.
#[derive(Debug, Clone)]
pub struct HarvestedClassifier {
    /// The random projection matrix (`dim x features`, dense `f64`).
    pub rp_matrix: Value,
    /// The dense trained class memory (`classes x dim`, the accumulator
    /// perceptron updates apply to).
    pub class_hvs: Value,
    /// The frozen class memory `sign(class_hvs)` — bit-packed when the app
    /// compiled with binarization, dense `±1` under the baseline.
    pub class_bits: Value,
}

/// Build the (uncompiled) classification program. The projection matrix is
/// created in-program from the builder's deterministic seed sequence, so
/// every program built for the same dataset shape shares it.
fn build_program(
    dataset: &Dataset,
    dim: usize,
    epochs: usize,
) -> (Program, ValueId, ValueId, ValueId) {
    let features = dataset.meta.features;
    let classes = dataset.meta.classes;
    let n_train = dataset.train.len();
    let n_test = dataset.test.len();
    let mut b = ProgramBuilder::new("hd_classification");
    let train_x = b.input_matrix("train_features", ElementKind::F64, n_train, features);
    let test_x = b.input_matrix("test_features", ElementKind::F64, n_test, features);
    let train_y = b.input_indices("train_labels", n_train);
    let rp = b.random_bipolar_matrix(ElementKind::F64, dim, features);
    b.name_value(rp, "rp_matrix");
    let class_hvs = b.zero_matrix(ElementKind::F64, classes, dim);
    b.name_value(class_hvs, "class_hvs");
    let enc_train = b.encoding_loop("encode_train", train_x, dim, |b, q| {
        let e = b.matmul(q, rp);
        b.sign(e)
    });
    let enc_test = b.encoding_loop("encode_test", test_x, dim, |b, q| {
        let e = b.matmul(q, rp);
        b.sign(e)
    });
    b.training_loop(
        "retrain",
        enc_train,
        train_y,
        class_hvs,
        epochs,
        ScorePolarity::Similarity,
        |b, q| b.cossim(q, class_hvs),
    );
    // Binarize the trained model: the automatic-binarization pass turns
    // this into the 1-bit class memory, and Hamming inference below into
    // the XOR/popcount batched kernel.
    let class_bits = b.sign(class_hvs);
    b.name_value(class_bits, "class_bits");
    let preds = b.inference_loop(
        "infer",
        enc_test,
        class_bits,
        ScorePolarity::Distance,
        |b, q| b.hamming_distance(q, class_bits),
    );
    b.mark_output(preds);
    (b.finish(), preds, enc_train, enc_test)
}

#[cfg(test)]
mod tests {
    use super::*;
    use hdc_core::element::ElementKind as EK;
    use hdc_datasets::synthetic::{isolet_like, IsoletParams};
    use hdc_ir::program::NodeBody;

    fn small_dataset() -> Dataset {
        isolet_like(&IsoletParams {
            classes: 4,
            features: 32,
            train_per_class: 6,
            test_per_class: 3,
            noise: 1.2,
            seed: 11,
        })
    }

    #[test]
    fn program_has_four_stages_and_binarizes() {
        let app = ClassificationApp::new(small_dataset(), 256, 2).unwrap();
        let stages = app
            .program()
            .nodes()
            .iter()
            .filter(|n| matches!(n.body, NodeBody::Stage(_)))
            .count();
        assert_eq!(stages, 4, "encode x2, retrain, infer");
        // The pass pipeline binarized the encoded matrices and the class
        // bits.
        assert!(app.compile_report().binarize().unwrap().binarized_values >= 3);
        let bit_slots = app.program().binarized_value_count();
        assert!(
            bit_slots >= 3,
            "encoded train/test + class bits, got {bit_slots}"
        );
        // The raw feature inputs stay dense.
        let train_x = app
            .program()
            .values()
            .iter()
            .find(|v| v.name == "train_features")
            .unwrap();
        assert_eq!(train_x.ty.element_kind(), Some(EK::F64));
    }

    #[test]
    fn runs_and_produces_one_label_per_test_sample() {
        let app = ClassificationApp::new(small_dataset(), 256, 2).unwrap();
        let run = app.run(ExecMode::Batched).unwrap();
        assert_eq!(run.predictions.len(), app.dataset().test.len());
        assert!(run.predictions.iter().all(|&p| p < 4));
        assert!(run.stats.batched_kernel_ops > 0, "stages batched");
    }
}
