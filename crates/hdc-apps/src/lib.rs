//! # hdc-apps
//!
//! The HPVM-HDC application suite: three end-to-end HDC workloads, each
//! expressed in the `hdc-ir` builder DSL, compiled through the full
//! `hdc-passes` pipeline (automatic binarization → data-movement hoisting →
//! target assignment → DCE), and executed by the `hdc-runtime` interpreter
//! in either executor mode:
//!
//! * [`classification`] — HD classification with iterative perceptron
//!   retraining: encode train/test sets by random projection + `sign`,
//!   bootstrap class hypervectors inside a `training_loop` (mispredicted
//!   samples are added to the true class row and subtracted from the
//!   predicted row, every epoch), binarize, classify the test set.
//! * [`clustering`] — HD clustering: hypervector centroids seeded from the
//!   first samples, then a fixed number of assign / centroid-update rounds
//!   (`inference_loop` against the centroid matrix, accumulation by
//!   assignment, re-`sign`).
//! * [`matching`] — top-k spectral matching: encode a reference library and
//!   a query batch, score all pairs in one similarity call, and select each
//!   query's best `k` candidates with the `arg_top_k` intrinsic.
//!
//! Every app exposes the same surface: `new(...)` builds *and compiles* the
//! program (the compile report is kept for inspection), `run(mode)` executes
//! it under [`ExecMode::Batched`] (matrix-level kernels) or
//! [`ExecMode::Sequential`] (the per-sample reference oracle) and returns
//! predictions plus [`ExecStats`](hdc_runtime::ExecStats), and
//! `run_accelerated(model, target)` executes it through the `hdc-accel`
//! back end — stages re-targeted onto the digital ASIC or the ReRAM
//! accelerator, outputs still bit-identical to the CPU modes, plus a
//! modeled per-stage cost report ([`Accelerated`]). The
//! `app_equivalence` integration suite pins the two modes to identical
//! outputs for all three apps; `hdc-bench`'s `perf_json` harness times them
//! against each other and records the speedups in `BENCH_results.json`.
//!
//! Workload data comes from `hdc-datasets`: seeded synthetic ISOLET-like /
//! EMG-like / HyperOMS-like generators, so every run is reproducible.
//!
//! # Example
//!
//! ```
//! use hdc_apps::classification::ClassificationApp;
//! use hdc_apps::ExecMode;
//! use hdc_datasets::synthetic::{isolet_like, IsoletParams};
//!
//! let dataset = isolet_like(&IsoletParams {
//!     classes: 5, features: 64, train_per_class: 6, test_per_class: 3,
//!     noise: 1.0, seed: 7,
//! });
//! let app = ClassificationApp::new(dataset, 512, 2).unwrap();
//! let batched = app.run(ExecMode::Batched).unwrap();
//! let sequential = app.run(ExecMode::Sequential).unwrap();
//! assert_eq!(batched.predictions, sequential.predictions);
//! assert!(batched.accuracy > 0.5);
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]

use std::fmt;

pub mod classification;
pub mod clustering;
pub mod matching;

pub use classification::{ClassificationApp, ClassificationRun, HarvestedClassifier};
pub use clustering::{ClusteringApp, ClusteringRun};
pub use matching::{MatchingApp, MatchingRun};

/// An application run executed through the accelerator back end
/// (`hdc-accel`): the ordinary run outcome — predictions are bit-identical
/// to the CPU executor modes — plus the modeled per-stage accelerator cost
/// report.
///
/// Produced by each app's `run_accelerated` method. The accelerated path
/// is not an [`ExecMode`] because it returns strictly more than the CPU
/// modes do; functionally it executes the batched kernels.
#[derive(Debug, Clone, PartialEq)]
pub struct Accelerated<R> {
    /// The ordinary run outcome (predictions, quality metric, interpreter
    /// counters).
    pub run: R,
    /// The modeled accelerator cost report for the run.
    pub modeled: hdc_accel::AccelReport,
}

/// Which executor schedule an app run uses.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum ExecMode {
    /// Matrix-level batched stage execution plus parallel loops (the
    /// default production path).
    Batched,
    /// One interpreter pass per sample — the reference oracle the batched
    /// path is checked against.
    Sequential,
}

impl ExecMode {
    /// Both modes, in the order the equivalence tests compare them.
    pub const ALL: [ExecMode; 2] = [ExecMode::Batched, ExecMode::Sequential];

    /// Whether this mode enables batched stages / parallel loops.
    pub fn is_batched(self) -> bool {
        matches!(self, ExecMode::Batched)
    }

    /// Lower-case name used in reports and JSON records.
    pub fn name(self) -> &'static str {
        match self {
            ExecMode::Batched => "batched",
            ExecMode::Sequential => "sequential",
        }
    }
}

impl fmt::Display for ExecMode {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(self.name())
    }
}

/// Errors raised while compiling or executing an application.
#[derive(Debug)]
#[non_exhaustive]
pub enum AppError {
    /// The pass pipeline rejected or broke the program.
    Compile(hdc_passes::PipelineError),
    /// Execution failed.
    Runtime(hdc_runtime::RuntimeError),
}

impl fmt::Display for AppError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            AppError::Compile(e) => write!(f, "app compilation failed: {e}"),
            AppError::Runtime(e) => write!(f, "app execution failed: {e}"),
        }
    }
}

impl std::error::Error for AppError {}

impl From<hdc_passes::PipelineError> for AppError {
    fn from(e: hdc_passes::PipelineError) -> Self {
        AppError::Compile(e)
    }
}

impl From<hdc_runtime::RuntimeError> for AppError {
    fn from(e: hdc_runtime::RuntimeError) -> Self {
        AppError::Runtime(e)
    }
}

/// Convenience alias for results produced by this crate.
pub type Result<T> = std::result::Result<T, AppError>;

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn exec_mode_names() {
        assert_eq!(ExecMode::Batched.name(), "batched");
        assert_eq!(ExecMode::Sequential.to_string(), "sequential");
        assert!(ExecMode::Batched.is_batched());
        assert!(!ExecMode::Sequential.is_batched());
    }
}
