//! Top-k spectral matching (HyperOMS-style library search).
//!
//! Open-modification spectral-library search scores every query spectrum
//! against a reference library and reports the best `k` candidates per
//! query — top-1 classification throws away exactly the candidates a
//! downstream re-scorer needs. This app is the reason the IR grew the
//! `arg_top_k` intrinsic:
//!
//! ```text
//! library ──► encoding_loop ─┐
//! queries ──► encoding_loop ─┴─► cossim (all pairs) ──► arg_top_k ──► candidates
//! ```
//!
//! Both encodings binarize (random projection + `sign`), so in batched
//! mode the all-pairs similarity runs as one XOR/popcount batch kernel
//! over the whole query×library grid and `arg_top_k` selects each row's
//! best `k` library entries in one batched selection kernel — flattened
//! row-major, query `i`'s candidates at `[i*k, (i+1)*k)`, best first. In
//! sequential mode the executor takes the dense reference kernels and a
//! per-row selection loop instead; the candidate lists are identical
//! (bipolar rows share one norm, so the dense cosine is a positive
//! rescaling of the popcount form), which the `app_equivalence` suite
//! asserts.

use crate::{ExecMode, Result};
use hdc_core::element::ElementKind;
use hdc_datasets::Dataset;
use hdc_ir::builder::ProgramBuilder;
use hdc_ir::program::{Program, ValueId};
use hdc_passes::{compile, CompileOptions, CompileReport};
use hdc_runtime::{ExecStats, Executor, Value};

/// The compiled spectral-matching application.
#[derive(Debug)]
pub struct MatchingApp {
    dataset: Dataset,
    program: Program,
    report: CompileReport,
    top_k: ValueId,
    top_1: ValueId,
    k: usize,
    /// Library / query matrices pre-wrapped as Arc-backed [`Value`]s so
    /// every [`run`](MatchingApp::run) binds by reference-count bump.
    library: Value,
    queries: Value,
}

/// The outcome of one matching run.
#[derive(Debug, Clone, PartialEq)]
pub struct MatchingRun {
    /// Flattened row-major top-k candidate lists: query `i`'s candidates at
    /// `[i*k, (i+1)*k)`, best first.
    pub candidates: Vec<usize>,
    /// Best single candidate per query (`arg_max` over the same scores;
    /// always equals the first entry of each top-k list).
    pub best: Vec<usize>,
    /// Fraction of queries whose true library entry appears in their top-k
    /// list.
    pub recall_at_k: f64,
    /// Fraction of queries whose true library entry is the single best
    /// candidate.
    pub recall_at_1: f64,
    /// Executor counters for the run.
    pub stats: ExecStats,
}

impl MatchingApp {
    /// Build and compile the matching program: the dataset's **train split**
    /// is the reference library, its **test split** the query batch, encoded
    /// at hypervector dimension `dim`; every query reports its best `k`
    /// library candidates.
    ///
    /// # Errors
    ///
    /// Returns [`AppError::Compile`](crate::AppError::Compile) if the pass
    /// pipeline rejects the program (e.g. `k` larger than the library).
    pub fn new(dataset: Dataset, dim: usize, k: usize) -> Result<Self> {
        Self::with_options(dataset, dim, k, &CompileOptions::default())
    }

    /// [`MatchingApp::new`] with explicit compile options (e.g. the dense
    /// baseline configuration, or an accelerator target assignment).
    ///
    /// # Errors
    ///
    /// Returns [`AppError::Compile`](crate::AppError::Compile) if the pass
    /// pipeline rejects the program (e.g. `k` larger than the library).
    pub fn with_options(
        dataset: Dataset,
        dim: usize,
        k: usize,
        options: &CompileOptions,
    ) -> Result<Self> {
        let (mut program, top_k, top_1) = build_program(&dataset, dim, k);
        let report = compile(&mut program, options)?;
        let library = Value::matrix(dataset.train.features.clone());
        let queries = Value::matrix(dataset.test.features.clone());
        Ok(MatchingApp {
            dataset,
            program,
            report,
            top_k,
            top_1,
            k,
            library,
            queries,
        })
    }

    /// The compiled IR program.
    pub fn program(&self) -> &Program {
        &self.program
    }

    /// The pass pipeline's compile report.
    pub fn compile_report(&self) -> &CompileReport {
        &self.report
    }

    /// The dataset (train = library, test = queries).
    pub fn dataset(&self) -> &Dataset {
        &self.dataset
    }

    /// Candidates reported per query.
    pub fn k(&self) -> usize {
        self.k
    }

    /// Execute the app under the given mode.
    ///
    /// # Errors
    ///
    /// Returns [`AppError::Runtime`](crate::AppError::Runtime) if execution
    /// fails.
    pub fn run(&self, mode: ExecMode) -> Result<MatchingRun> {
        let mut exec = Executor::new(&self.program)?;
        exec.set_batched_stages(mode.is_batched());
        exec.set_parallel_loops(mode.is_batched());
        exec.bind("library", self.library.clone())?;
        exec.bind("queries", self.queries.clone())?;
        let out = exec.run()?;
        let candidates = out.indices(self.top_k)?.to_vec();
        let best = out.indices(self.top_1)?.to_vec();
        Ok(MatchingRun {
            recall_at_k: self.dataset.test_recall_at_k(&candidates, self.k),
            recall_at_1: self.dataset.test_accuracy(&best),
            candidates,
            best,
            stats: exec.stats(),
        })
    }

    /// Execute the app through the accelerator back end: the two encoding
    /// stages are re-targeted onto `target` while the all-pairs similarity
    /// and `arg_top_k` selection stay on the CPU (they are leaf
    /// instructions, and the accelerators' reduction trees emit a single
    /// best match, not a candidate list). Candidate lists stay bit-identical
    /// to [`run`](MatchingApp::run).
    ///
    /// # Errors
    ///
    /// Returns [`AppError::Runtime`](crate::AppError::Runtime) if execution
    /// fails.
    pub fn run_accelerated(
        &self,
        model: &hdc_accel::AcceleratorModel,
        target: hdc_ir::Target,
    ) -> Result<crate::Accelerated<MatchingRun>> {
        let ax = hdc_accel::AcceleratedExecutor::new(&self.program, target, model.clone());
        let run = ax.run_with(|exec| {
            exec.bind("library", self.library.clone())?;
            exec.bind("queries", self.queries.clone())?;
            Ok(())
        })?;
        let candidates = run.outputs.indices(self.top_k)?.to_vec();
        let best = run.outputs.indices(self.top_1)?.to_vec();
        Ok(crate::Accelerated {
            run: MatchingRun {
                recall_at_k: self.dataset.test_recall_at_k(&candidates, self.k),
                recall_at_1: self.dataset.test_accuracy(&best),
                candidates,
                best,
                stats: run.stats.exec,
            },
            modeled: run.stats.modeled,
        })
    }
}

fn build_program(dataset: &Dataset, dim: usize, k: usize) -> (Program, ValueId, ValueId) {
    let bins = dataset.meta.features;
    let library_size = dataset.train.len();
    let queries = dataset.test.len();
    let mut b = ProgramBuilder::new("hd_spectral_matching");
    let library = b.input_matrix("library", ElementKind::F64, library_size, bins);
    let query_x = b.input_matrix("queries", ElementKind::F64, queries, bins);
    let rp = b.random_bipolar_matrix(ElementKind::F64, dim, bins);
    b.name_value(rp, "rp_matrix");
    let enc_lib = b.encoding_loop("encode_library", library, dim, |b, q| {
        let e = b.matmul(q, rp);
        b.sign(e)
    });
    let enc_queries = b.encoding_loop("encode_queries", query_x, dim, |b, q| {
        let e = b.matmul(q, rp);
        b.sign(e)
    });
    // All-pairs similarity: one queries x library score matrix in a single
    // reduction call.
    let scores = b.cossim(enc_queries, enc_lib);
    b.name_value(scores, "scores");
    let top_k = b.arg_top_k(scores, k);
    b.name_value(top_k, "top_k");
    let top_1 = b.arg_max(scores);
    b.name_value(top_1, "top_1");
    b.mark_output(top_k);
    b.mark_output(top_1);
    (b.finish(), top_k, top_1)
}

#[cfg(test)]
mod tests {
    use super::*;
    use hdc_datasets::synthetic::{hyperoms_like, HyperOmsParams};
    use hdc_ir::ops::HdcOp;

    fn small_dataset() -> Dataset {
        hyperoms_like(&HyperOmsParams {
            library_size: 16,
            bins: 80,
            peaks: 8,
            queries_per_entry: 2,
            ..HyperOmsParams::default()
        })
    }

    #[test]
    fn program_contains_top_k_instruction() {
        let app = MatchingApp::new(small_dataset(), 256, 3).unwrap();
        assert!(app
            .program()
            .iter_instrs()
            .any(|i| matches!(i.op, HdcOp::ArgTopK { k: 3 })));
    }

    #[test]
    fn top1_heads_every_candidate_list() {
        let app = MatchingApp::new(small_dataset(), 256, 3).unwrap();
        let run = app.run(ExecMode::Batched).unwrap();
        assert_eq!(run.candidates.len(), app.dataset().test.len() * 3);
        assert_eq!(run.best.len(), app.dataset().test.len());
        for (i, &b) in run.best.iter().enumerate() {
            assert_eq!(run.candidates[i * 3], b, "top-1 must head list {i}");
        }
        assert!(run.recall_at_k >= run.recall_at_1);
    }
}
