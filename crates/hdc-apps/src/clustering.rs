//! HD clustering: hypervector centroids with assign / update rounds.
//!
//! The HDC analogue of k-means (the paper's HD-Clustering application):
//! samples are encoded once, centroids live as bipolar hypervectors, and
//! each round (1) assigns every sample to its most similar centroid with an
//! `inference_loop` and (2) rebuilds each centroid by bundling its members
//! and re-binarizing:
//!
//! ```text
//! samples ──► encoding_loop ──► [assign ──► accumulate-by-assignment ──► sign]×T ──► assign
//! ```
//!
//! The update loop is expressed with the granular intrinsics — a
//! `parallel_for` over samples gathering each sample's assignment
//! (`get_element`) and accumulating its encoded row into the new centroid
//! accumulator (`accumulate_row`) — plus a `type_cast` precision barrier so
//! automatic binarization keeps the *accumulator* in full precision while
//! the centroids themselves binarize. The previous centroid is blended into
//! the accumulator before the `sign`, which keeps empty clusters stable
//! instead of collapsing them to a constant vector.
//!
//! The number of rounds is a compile-time constant: the builder unrolls the
//! assign/update sequence into the dataflow graph, one stage + loop node
//! pair per round.

use crate::{ExecMode, Result};
use hdc_core::element::ElementKind;
use hdc_datasets::Dataset;
use hdc_ir::builder::ProgramBuilder;
use hdc_ir::program::{Program, ValueId};
use hdc_ir::stage::ScorePolarity;
use hdc_passes::{compile, CompileOptions, CompileReport};
use hdc_runtime::{ExecStats, Executor, Value};

/// The compiled clustering application.
#[derive(Debug)]
pub struct ClusteringApp {
    dataset: Dataset,
    program: Program,
    report: CompileReport,
    assignments: ValueId,
    k: usize,
    rounds: usize,
    /// Samples pre-wrapped as an Arc-backed [`Value`] so every
    /// [`run`](ClusteringApp::run) binds by reference-count bump.
    samples: Value,
}

/// The outcome of one clustering run.
#[derive(Debug, Clone, PartialEq)]
pub struct ClusteringRun {
    /// Final cluster assignment per sample (values in `0..k`).
    pub assignments: Vec<usize>,
    /// Cluster purity against the dataset's ground-truth labels: each
    /// cluster votes its majority label; purity is the fraction of samples
    /// covered by their cluster's majority.
    pub purity: f64,
    /// Executor counters for the run.
    pub stats: ExecStats,
}

impl ClusteringApp {
    /// Build and compile the clustering program: cluster the **training
    /// split** of `dataset` into `meta.classes` clusters at hypervector
    /// dimension `dim`, running `rounds` assign/update rounds.
    ///
    /// # Errors
    ///
    /// Returns [`AppError::Compile`](crate::AppError::Compile) if the pass
    /// pipeline rejects the program.
    pub fn new(dataset: Dataset, dim: usize, rounds: usize) -> Result<Self> {
        Self::with_options(dataset, dim, rounds, &CompileOptions::default())
    }

    /// [`ClusteringApp::new`] with explicit compile options (e.g. the dense
    /// baseline configuration, or an accelerator target assignment).
    ///
    /// # Errors
    ///
    /// Returns [`AppError::Compile`](crate::AppError::Compile) if the pass
    /// pipeline rejects the program.
    pub fn with_options(
        dataset: Dataset,
        dim: usize,
        rounds: usize,
        options: &CompileOptions,
    ) -> Result<Self> {
        let k = dataset.meta.classes;
        let (mut program, assignments) = build_program(&dataset, dim, k, rounds);
        let report = compile(&mut program, options)?;
        let samples = Value::matrix(dataset.train.features.clone());
        Ok(ClusteringApp {
            dataset,
            program,
            report,
            assignments,
            k,
            rounds,
            samples,
        })
    }

    /// The compiled IR program.
    pub fn program(&self) -> &Program {
        &self.program
    }

    /// The pass pipeline's compile report.
    pub fn compile_report(&self) -> &CompileReport {
        &self.report
    }

    /// The dataset whose training split is clustered.
    pub fn dataset(&self) -> &Dataset {
        &self.dataset
    }

    /// Number of clusters.
    pub fn k(&self) -> usize {
        self.k
    }

    /// Number of assign/update rounds unrolled into the program.
    pub fn rounds(&self) -> usize {
        self.rounds
    }

    /// Execute the app under the given mode.
    ///
    /// # Errors
    ///
    /// Returns [`AppError::Runtime`](crate::AppError::Runtime) if execution
    /// fails.
    pub fn run(&self, mode: ExecMode) -> Result<ClusteringRun> {
        let mut exec = Executor::new(&self.program)?;
        exec.set_batched_stages(mode.is_batched());
        exec.set_parallel_loops(mode.is_batched());
        exec.bind("samples", self.samples.clone())?;
        let out = exec.run()?;
        let assignments = out.indices(self.assignments)?.to_vec();
        Ok(ClusteringRun {
            purity: purity(&assignments, &self.dataset.train.labels, self.k),
            assignments,
            stats: exec.stats(),
        })
    }

    /// Execute the app through the accelerator back end: the encoding and
    /// assignment stages are re-targeted onto `target`, the
    /// accumulate-by-assignment update loops stay on the CPU (they are
    /// `parallel_for` nodes, which accelerators do not accept), and the
    /// assignments stay bit-identical to [`run`](ClusteringApp::run).
    ///
    /// # Errors
    ///
    /// Returns [`AppError::Runtime`](crate::AppError::Runtime) if execution
    /// fails.
    pub fn run_accelerated(
        &self,
        model: &hdc_accel::AcceleratorModel,
        target: hdc_ir::Target,
    ) -> Result<crate::Accelerated<ClusteringRun>> {
        let ax = hdc_accel::AcceleratedExecutor::new(&self.program, target, model.clone());
        let run = ax.run_with(|exec| {
            exec.bind("samples", self.samples.clone())?;
            Ok(())
        })?;
        let assignments = run.outputs.indices(self.assignments)?.to_vec();
        Ok(crate::Accelerated {
            run: ClusteringRun {
                purity: purity(&assignments, &self.dataset.train.labels, self.k),
                assignments,
                stats: run.stats.exec,
            },
            modeled: run.stats.modeled,
        })
    }
}

/// Cluster purity: each cluster is credited its majority ground-truth
/// label's count; purity is the covered fraction. `1.0` means every cluster
/// is label-pure; `1 / classes` is chance level.
pub fn purity(assignments: &[usize], truth: &[usize], k: usize) -> f64 {
    assert_eq!(assignments.len(), truth.len(), "one assignment per sample");
    if assignments.is_empty() {
        return 0.0;
    }
    let classes = truth.iter().copied().max().map_or(1, |m| m + 1);
    let mut counts = vec![vec![0usize; classes]; k];
    for (&a, &t) in assignments.iter().zip(truth) {
        counts[a][t] += 1;
    }
    let covered: usize = counts
        .iter()
        .map(|c| c.iter().copied().max().unwrap_or(0))
        .sum();
    covered as f64 / assignments.len() as f64
}

fn build_program(dataset: &Dataset, dim: usize, k: usize, rounds: usize) -> (Program, ValueId) {
    let features = dataset.meta.features;
    let n = dataset.train.len();
    assert!(k >= 1 && k <= n, "need 1..=samples clusters, got {k}");
    let mut b = ProgramBuilder::new("hd_clustering");
    let samples = b.input_matrix("samples", ElementKind::F64, n, features);
    let rp = b.random_bipolar_matrix(ElementKind::F64, dim, features);
    b.name_value(rp, "rp_matrix");
    let encoded = b.encoding_loop("encode", samples, dim, |b, q| {
        let e = b.matmul(q, rp);
        b.sign(e)
    });
    // Seed centroids from the first k encoded samples (the deterministic
    // k-means++-free initialization the HDC clustering apps use).
    let seed_centroids = b.zero_matrix(ElementKind::F64, k, dim);
    b.name_value(seed_centroids, "centroids_0");
    for i in 0..k {
        let row = b.get_matrix_row(encoded, i as i64);
        b.set_matrix_row(seed_centroids, row, i as i64);
    }
    let mut centroids = seed_centroids;
    for round in 0..rounds {
        let assign = b.inference_loop(
            &format!("assign_{round}"),
            encoded,
            centroids,
            ScorePolarity::Similarity,
            |b, q| b.cossim(q, centroids),
        );
        // Bundle each cluster's members. The type_cast is a binarization
        // barrier: the accumulator must stay full precision so member
        // counts add exactly before the final sign.
        let acc = b.zero_matrix(ElementKind::F64, k, dim);
        b.name_value(acc, &format!("cluster_acc_{round}"));
        b.parallel_for(&format!("update_{round}"), n, |b, idx| {
            let row = b.get_matrix_row_dyn(encoded, idx);
            let row_dense = b.type_cast(row, ElementKind::F64);
            let cluster = b.get_element_dyn(assign, idx);
            b.accumulate_row(acc, row_dense, cluster);
        });
        // Blend in the previous centroid: majority vote with the old
        // centroid as tie-breaker, and empty clusters keep their centroid.
        let previous = b.type_cast(centroids, ElementKind::F64);
        let blended = b.add(acc, previous);
        centroids = b.sign(blended);
        b.name_value(centroids, &format!("centroids_{}", round + 1));
    }
    let assignments = b.inference_loop(
        "assign_final",
        encoded,
        centroids,
        ScorePolarity::Similarity,
        |b, q| b.cossim(q, centroids),
    );
    b.mark_output(assignments);
    (b.finish(), assignments)
}

#[cfg(test)]
mod tests {
    use super::*;
    use hdc_datasets::synthetic::{isolet_like, IsoletParams};
    use hdc_ir::program::NodeBody;

    fn small_dataset() -> Dataset {
        isolet_like(&IsoletParams {
            classes: 3,
            features: 24,
            train_per_class: 8,
            test_per_class: 1,
            noise: 0.8,
            seed: 23,
        })
    }

    #[test]
    fn purity_metric() {
        // Perfect clustering up to label permutation scores 1.0.
        assert_eq!(purity(&[1, 1, 0, 0], &[0, 0, 1, 1], 2), 1.0);
        assert_eq!(purity(&[0, 0, 0, 0], &[0, 0, 1, 1], 2), 0.5);
        assert_eq!(purity(&[], &[], 2), 0.0);
    }

    #[test]
    fn program_unrolls_rounds() {
        let app = ClusteringApp::new(small_dataset(), 128, 2).unwrap();
        let stages = app
            .program()
            .nodes()
            .iter()
            .filter(|n| matches!(n.body, NodeBody::Stage(_)))
            .count();
        // encode + (assign x rounds) + final assign.
        assert_eq!(stages, 1 + 2 + 1);
        let loops = app
            .program()
            .nodes()
            .iter()
            .filter(|n| matches!(n.body, NodeBody::ParallelFor { .. }))
            .count();
        assert_eq!(loops, 2, "one update loop per round");
    }

    #[test]
    fn assignments_cover_samples() {
        let app = ClusteringApp::new(small_dataset(), 128, 2).unwrap();
        let run = app.run(ExecMode::Batched).unwrap();
        assert_eq!(run.assignments.len(), app.dataset().train.len());
        assert!(run.assignments.iter().all(|&a| a < app.k()));
        assert!(run.purity > 0.0);
    }
}
