//! Accelerator-backend equivalence gates.
//!
//! The accelerator execution path is *modeled* for performance but *real*
//! for outputs: every accelerated stage executes functionally through the
//! same `hdc-core` kernels the CPU schedules use. This suite pins that
//! contract for all three applications and both accelerator targets —
//! accelerated predictions must be bit-identical to the per-sample
//! sequential oracle — and checks that the modeled report accounts exactly
//! the stages each program places on the accelerator.

use hdc_accel::AcceleratorModel;
use hdc_apps::classification::ClassificationApp;
use hdc_apps::clustering::ClusteringApp;
use hdc_apps::matching::MatchingApp;
use hdc_apps::ExecMode;
use hdc_datasets::synthetic::{
    emg_like, hyperoms_like, isolet_like, EmgParams, HyperOmsParams, IsoletParams,
};
use hdc_datasets::Dataset;
use hdc_ir::Target;

const DIM: usize = 1024;
const TARGETS: [Target; 2] = [Target::DigitalAsic, Target::ReRamAccelerator];

fn isolet() -> Dataset {
    isolet_like(&IsoletParams {
        classes: 8,
        features: 96,
        train_per_class: 20,
        test_per_class: 12,
        noise: 2.0,
        seed: 0xA11,
    })
}

fn emg() -> Dataset {
    emg_like(&EmgParams {
        gestures: 5,
        channels: 4,
        window: 32,
        train_per_class: 10,
        test_per_class: 5,
        noise: 0.7,
        phase_jitter: 0.6,
        seed: 0xE3,
    })
}

fn spectra() -> Dataset {
    hyperoms_like(&HyperOmsParams {
        library_size: 48,
        bins: 300,
        peaks: 20,
        queries_per_entry: 2,
        ..HyperOmsParams::default()
    })
}

#[test]
fn classification_accelerated_matches_sequential_oracle() {
    let app = ClassificationApp::new(isolet(), DIM, 3).unwrap();
    let oracle = app.run(ExecMode::Sequential).unwrap();
    let model = AcceleratorModel::default();
    for target in TARGETS {
        let accel = app.run_accelerated(&model, target).unwrap();
        assert_eq!(
            accel.run.predictions, oracle.predictions,
            "{target}: accelerated classification must match the oracle"
        );
        assert_eq!(accel.run.accuracy, oracle.accuracy);
        // encode_train, encode_test, retrain, infer: all four stages are
        // legal for the accelerators.
        assert_eq!(accel.modeled.accelerated_stages(), 4, "{target}");
        assert!(accel.modeled.demoted.is_empty(), "{target}");
        assert!(
            accel.run.stats.accelerated_stage_samples > 0,
            "{target}: runtime must count accelerator-placed samples"
        );
        assert!(accel.modeled.modeled_speedup() > 1.0, "{target}");
        // The retraining stage programs its class memory and reads the
        // trained model back.
        let retrain = accel
            .modeled
            .stages
            .iter()
            .find(|s| s.kind == "training_loop")
            .expect("retrain stage modeled");
        assert!(retrain.programming_bits > 0);
        assert!(retrain.readback_bits > 0);
    }
}

#[test]
fn clustering_accelerated_matches_sequential_oracle() {
    let rounds = 3;
    let app = ClusteringApp::new(emg(), DIM, rounds).unwrap();
    let oracle = app.run(ExecMode::Sequential).unwrap();
    let model = AcceleratorModel::default();
    for target in TARGETS {
        let accel = app.run_accelerated(&model, target).unwrap();
        assert_eq!(
            accel.run.assignments, oracle.assignments,
            "{target}: accelerated clustering must match the oracle"
        );
        assert_eq!(accel.run.purity, oracle.purity);
        // encode + one assign per round + the final assign; the
        // accumulate-by-assignment parallel_for loops stay on the CPU.
        assert_eq!(
            accel.modeled.accelerated_stages(),
            1 + rounds + 1,
            "{target}"
        );
        assert!(accel.modeled.modeled_speedup() > 1.0, "{target}");
    }
}

#[test]
fn matching_accelerated_matches_sequential_oracle() {
    let app = MatchingApp::new(spectra(), DIM, 5).unwrap();
    let oracle = app.run(ExecMode::Sequential).unwrap();
    let model = AcceleratorModel::default();
    for target in TARGETS {
        let accel = app.run_accelerated(&model, target).unwrap();
        assert_eq!(
            accel.run.candidates, oracle.candidates,
            "{target}: accelerated top-k candidate lists must match the oracle"
        );
        assert_eq!(accel.run.best, oracle.best);
        assert_eq!(accel.run.recall_at_k, oracle.recall_at_k);
        // Only the two encoding stages are stages; the all-pairs similarity
        // and arg_top_k selection are leaf instructions on the CPU.
        assert_eq!(accel.modeled.accelerated_stages(), 2, "{target}");
        assert!(accel.modeled.modeled_speedup() > 1.0, "{target}");
    }
}

#[test]
fn reram_pays_more_programming_time_than_the_asic() {
    let app = MatchingApp::new(spectra(), DIM, 5).unwrap();
    let model = AcceleratorModel::default();
    let asic = app.run_accelerated(&model, Target::DigitalAsic).unwrap();
    let reram = app
        .run_accelerated(&model, Target::ReRamAccelerator)
        .unwrap();
    let programming = |r: &hdc_apps::Accelerated<hdc_apps::MatchingRun>| -> f64 {
        r.modeled.stages.iter().map(|s| s.programming_seconds).sum()
    };
    assert!(
        programming(&reram) > programming(&asic),
        "slow ReRAM cell writes must dominate programming"
    );
}
