//! Application-level equivalence and quality gates.
//!
//! Every application must produce *identical* outputs under the batched
//! executor (matrix-level kernels, parallel loops) and the per-sample
//! sequential reference oracle — this is the app-level extension of the
//! kernel-level `batched_equivalence` suite in `hdc-runtime`. On top of
//! equivalence, each app must clear a quality floor on its seeded synthetic
//! workload (accuracy / purity / recall), and the retraining app must show
//! the point of retraining: test accuracy improves with epochs.

use hdc_apps::classification::ClassificationApp;
use hdc_apps::clustering::ClusteringApp;
use hdc_apps::matching::MatchingApp;
use hdc_apps::ExecMode;
use hdc_datasets::synthetic::{
    emg_like, hyperoms_like, isolet_like, EmgParams, HyperOmsParams, IsoletParams,
};
use hdc_datasets::Dataset;
use hdc_passes::{CompileOptions, PerforationConfig};

const DIM: usize = 1024;

fn isolet() -> Dataset {
    isolet_like(&IsoletParams {
        classes: 8,
        features: 96,
        train_per_class: 20,
        test_per_class: 12,
        noise: 2.0,
        seed: 0xA11,
    })
}

fn emg() -> Dataset {
    emg_like(&EmgParams {
        gestures: 5,
        channels: 4,
        window: 32,
        train_per_class: 10,
        test_per_class: 5,
        noise: 0.7,
        phase_jitter: 0.6,
        seed: 0xE3,
    })
}

fn spectra() -> Dataset {
    hyperoms_like(&HyperOmsParams {
        library_size: 48,
        bins: 300,
        peaks: 20,
        queries_per_entry: 2,
        ..HyperOmsParams::default()
    })
}

// ---------------------------------------------------------------------------
// classification
// ---------------------------------------------------------------------------

#[test]
fn classification_batched_matches_sequential() {
    let app = ClassificationApp::new(isolet(), DIM, 3).unwrap();
    let batched = app.run(ExecMode::Batched).unwrap();
    let sequential = app.run(ExecMode::Sequential).unwrap();
    assert_eq!(
        batched.predictions, sequential.predictions,
        "batched and sequential classification must agree"
    );
    assert_eq!(batched.accuracy, sequential.accuracy);
    // The batched mode actually engaged the matrix-level kernels; the
    // sequential oracle must not.
    assert!(
        batched.stats.batched_kernel_ops >= 3,
        "two encodes + inference"
    );
    assert_eq!(sequential.stats.batched_kernel_ops, 0);
}

#[test]
fn retraining_improves_test_accuracy_across_epochs() {
    // On this seeded workload the curve is exactly [0.875, ~0.948, ~0.948]:
    // epoch 1 (≈ one-shot bundling) leaves boundary errors that later
    // epochs' perceptron updates correct. Everything is deterministic, so
    // the margin (7 of 96 test samples) cannot flake.
    let dataset = isolet();
    let curve = ClassificationApp::epoch_sweep(&dataset, DIM, &[1, 4, 8]).unwrap();
    assert!(
        curve[0] < 1.0,
        "epoch-1 accuracy {curve:?} leaves no headroom — raise dataset noise"
    );
    assert!(
        curve[2] - curve[0] > 0.03,
        "retraining must improve accuracy by a real margin: curve {curve:?}"
    );
    assert!(
        curve[2] > 0.9,
        "retrained accuracy too low on separable clusters: curve {curve:?}"
    );
}

#[test]
fn batched_epoch_training_matches_oracle_across_configs() {
    // Property-style sweep: batched-epoch training must stay bit-identical
    // to the sequential oracle across dense/binarized x perforation
    // {1.0, 0.5} x epochs {1, 3}. The isolet workload trains from a zero
    // class matrix, so every configuration performs mid-epoch class-row
    // updates — the batched schedule must report the re-scores it did to
    // stay exact, not assume the frozen epoch scores held.
    let dataset = isolet();
    for binarized in [true, false] {
        for stride in [1usize, 2] {
            for epochs in [1usize, 3] {
                let mut options = if binarized {
                    CompileOptions::default()
                } else {
                    CompileOptions::baseline()
                };
                if stride > 1 {
                    options.perforation = PerforationConfig::strided_similarity(stride);
                }
                let app = ClassificationApp::with_options(dataset.clone(), 512, epochs, &options)
                    .unwrap();
                let batched = app.run(ExecMode::Batched).unwrap();
                let sequential = app.run(ExecMode::Sequential).unwrap();
                let cfg = format!("binarized={binarized} stride={stride} epochs={epochs}");
                assert_eq!(
                    batched.predictions, sequential.predictions,
                    "{cfg}: predictions must be bit-identical"
                );
                assert_eq!(batched.accuracy, sequential.accuracy, "{cfg}");
                // One epoch kernel per training epoch, none on the oracle.
                assert_eq!(batched.stats.epoch_kernel_ops, epochs, "{cfg}");
                assert_eq!(sequential.stats.epoch_kernel_ops, 0, "{cfg}");
                assert_eq!(sequential.stats.rescored_samples, 0, "{cfg}");
                let train = app.dataset().train.len();
                assert!(
                    batched.stats.rescored_samples > 0,
                    "{cfg}: mid-epoch updates must force re-scoring"
                );
                assert!(batched.stats.rescored_samples <= epochs * train, "{cfg}");
            }
        }
    }
}

#[test]
fn epoch_sweep_matches_per_entry_apps() {
    // The sweep reuses one compiled program and one set of encodings; its
    // accuracies must equal building a fresh app per epochs entry.
    let dataset = isolet();
    let entries = [1usize, 4, 8];
    let sweep = ClassificationApp::epoch_sweep(&dataset, DIM, &entries).unwrap();
    let naive: Vec<f64> = entries
        .iter()
        .map(|&e| {
            ClassificationApp::new(dataset.clone(), DIM, e)
                .unwrap()
                .run(ExecMode::Batched)
                .unwrap()
                .accuracy
        })
        .collect();
    assert_eq!(sweep, naive, "sweep accuracies must be unchanged");
}

#[test]
fn classification_handles_emg_windows_too() {
    // Scenario diversity: the same app binary classifies the EMG-style
    // windowed time series.
    let app = ClassificationApp::new(emg(), DIM, 3).unwrap();
    let batched = app.run(ExecMode::Batched).unwrap();
    let sequential = app.run(ExecMode::Sequential).unwrap();
    assert_eq!(batched.predictions, sequential.predictions);
    assert!(
        batched.accuracy > 0.6,
        "EMG gesture accuracy {} too low",
        batched.accuracy
    );
}

// ---------------------------------------------------------------------------
// clustering
// ---------------------------------------------------------------------------

#[test]
fn clustering_batched_matches_sequential() {
    let dataset = isolet_like(&IsoletParams {
        classes: 4,
        features: 64,
        train_per_class: 16,
        test_per_class: 1,
        noise: 0.9,
        seed: 0xC1,
    });
    let app = ClusteringApp::new(dataset, DIM, 3).unwrap();
    let batched = app.run(ExecMode::Batched).unwrap();
    let sequential = app.run(ExecMode::Sequential).unwrap();
    assert_eq!(
        batched.assignments, sequential.assignments,
        "batched and sequential clustering must agree"
    );
    assert!(
        batched.purity > 0.85,
        "purity {} too low for well-separated clusters",
        batched.purity
    );
    // Round structure: every assign stage batches, and every
    // accumulate-by-assignment update loop collapses into one segmented
    // reduction (the row writes are keyed by the frozen assignment vector,
    // so the whole round is one kernel call).
    assert!(
        batched.stats.batched_kernel_ops >= 4 + 3,
        "encode + 3 assigns + final + 3 segmented updates, got {}",
        batched.stats.batched_kernel_ops
    );
    assert_eq!(
        batched.stats.epoch_kernel_ops, 3,
        "one segmented reduction per round"
    );
    assert_eq!(sequential.stats.batched_kernel_ops, 0);
    assert_eq!(sequential.stats.epoch_kernel_ops, 0);
}

// ---------------------------------------------------------------------------
// top-k spectral matching
// ---------------------------------------------------------------------------

#[test]
fn matching_batched_matches_sequential() {
    let app = MatchingApp::new(spectra(), DIM, 5).unwrap();
    let batched = app.run(ExecMode::Batched).unwrap();
    let sequential = app.run(ExecMode::Sequential).unwrap();
    assert_eq!(
        batched.candidates, sequential.candidates,
        "batched and sequential top-k candidates must agree"
    );
    assert_eq!(batched.best, sequential.best);
    assert_eq!(batched.recall_at_k, sequential.recall_at_k);
    // The sequential oracle must be genuinely kernel-free: the all-pairs
    // similarity and the top-k selection fall back to the dense reference
    // paths, not just the stage loops.
    assert_eq!(sequential.stats.batched_kernel_ops, 0);
}

#[test]
fn matching_recovers_sources_in_top_k() {
    let app = MatchingApp::new(spectra(), DIM, 5).unwrap();
    let run = app.run(ExecMode::Batched).unwrap();
    assert!(
        run.recall_at_k > 0.9,
        "recall@5 {} too low — queries are noisy copies of library entries",
        run.recall_at_k
    );
    assert!(
        run.recall_at_1 > 0.6,
        "recall@1 {} too low",
        run.recall_at_1
    );
    assert!(run.recall_at_k >= run.recall_at_1);
    // Structure: k candidates per query, headed by the arg_max winner.
    let k = app.k();
    assert_eq!(run.candidates.len(), app.dataset().test.len() * k);
    for (i, &best) in run.best.iter().enumerate() {
        assert_eq!(run.candidates[i * k], best);
    }
}

#[test]
fn matching_top_k_runs_as_batched_selection_kernel() {
    let app = MatchingApp::new(spectra(), DIM, 5).unwrap();
    let run = app.run(ExecMode::Batched).unwrap();
    // Two batched encodes + the all-pairs bit similarity + the top-k
    // selection kernel.
    assert!(
        run.stats.batched_kernel_ops >= 4,
        "expected batched encode/similarity/top-k kernels, got {}",
        run.stats.batched_kernel_ops
    );
}
