//! Hardware targets that IR nodes may be compiled to.

/// A hardware target supported by the HPVM-HDC back ends.
///
/// Each node of a [`crate::Program`] is annotated with one target; different
/// nodes of the same program may be lowered to different targets (Figure 4
/// of the paper).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub enum Target {
    /// Sequential CPU execution (HPVM's CPU back end).
    Cpu,
    /// Multi-threaded CPU execution (data-parallel leaf nodes).
    CpuParallel,
    /// Server-class discrete GPU (the paper's RTX 2080 Ti).
    Gpu,
    /// Edge-class GPU (the paper's NVIDIA Jetson AGX Orin), used as the
    /// comparison point for the HDC accelerators in Figure 6.
    JetsonGpu,
    /// The taped-out 40 nm digital HDC ASIC of Yang et al.
    DigitalAsic,
    /// The ReRAM processing-in-memory HDC accelerator of Xu et al.
    ReRamAccelerator,
}

impl Target {
    /// All targets, in the order used by reports.
    pub const ALL: [Target; 6] = [
        Target::Cpu,
        Target::CpuParallel,
        Target::Gpu,
        Target::JetsonGpu,
        Target::DigitalAsic,
        Target::ReRamAccelerator,
    ];

    /// Whether the target is one of the two HDC accelerators, which only
    /// accept the coarse-grain stage nodes and do not support the
    /// software-level approximation optimizations (§4.2).
    pub fn is_hdc_accelerator(self) -> bool {
        matches!(self, Target::DigitalAsic | Target::ReRamAccelerator)
    }

    /// Whether the target is a GPU (server or edge class).
    pub fn is_gpu(self) -> bool {
        matches!(self, Target::Gpu | Target::JetsonGpu)
    }

    /// Whether the target executes on the host CPU.
    pub fn is_cpu(self) -> bool {
        matches!(self, Target::Cpu | Target::CpuParallel)
    }

    /// Whether the approximation optimizations (automatic binarization,
    /// reduction perforation) may be applied to nodes mapped to this target.
    pub fn supports_approximations(self) -> bool {
        !self.is_hdc_accelerator()
    }
}

impl std::fmt::Display for Target {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        let s = match self {
            Target::Cpu => "cpu",
            Target::CpuParallel => "cpu-parallel",
            Target::Gpu => "gpu",
            Target::JetsonGpu => "jetson-gpu",
            Target::DigitalAsic => "hdc-digital-asic",
            Target::ReRamAccelerator => "hdc-reram",
        };
        f.write_str(s)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn accelerator_classification() {
        assert!(Target::DigitalAsic.is_hdc_accelerator());
        assert!(Target::ReRamAccelerator.is_hdc_accelerator());
        assert!(!Target::Gpu.is_hdc_accelerator());
        assert!(Target::Gpu.is_gpu());
        assert!(Target::JetsonGpu.is_gpu());
        assert!(Target::Cpu.is_cpu());
        assert!(Target::CpuParallel.is_cpu());
    }

    #[test]
    fn approximations_not_supported_on_accelerators() {
        for t in Target::ALL {
            assert_eq!(t.supports_approximations(), !t.is_hdc_accelerator());
        }
    }

    #[test]
    fn display_names_are_distinct() {
        let names: std::collections::HashSet<String> =
            Target::ALL.iter().map(|t| t.to_string()).collect();
        assert_eq!(names.len(), Target::ALL.len());
    }
}
