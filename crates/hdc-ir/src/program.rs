//! The program representation: typed value slots plus a dataflow graph of
//! nodes.

use crate::instr::HdcInstr;
use crate::stage::StageNode;
use crate::target::Target;
use crate::types::ValueType;

/// Identifier of a value slot within a [`Program`].
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub struct ValueId(usize);

impl ValueId {
    /// Create a value id from a raw index.
    pub fn new(index: usize) -> Self {
        ValueId(index)
    }

    /// The raw index into the program's value table.
    pub fn index(self) -> usize {
        self.0
    }
}

/// Identifier of a node within a [`Program`].
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub struct NodeId(usize);

impl NodeId {
    /// Create a node id from a raw index.
    pub fn new(index: usize) -> Self {
        NodeId(index)
    }

    /// The raw index into the program's node list.
    pub fn index(self) -> usize {
        self.0
    }
}

/// How a value slot is bound at execution time.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum ValueRole {
    /// Provided by the host before execution (datasets, projection matrices,
    /// pre-trained models).
    Input,
    /// Read back by the host after execution.
    Output,
    /// Intermediate value.
    Temp,
}

/// Metadata for one value slot.
#[derive(Debug, Clone, PartialEq)]
pub struct ValueInfo {
    /// Human-readable name (used by the printer and error messages).
    pub name: String,
    /// The value's type.
    pub ty: ValueType,
    /// Input/output/temporary role.
    pub role: ValueRole,
}

/// The body of a dataflow-graph node.
#[derive(Debug, Clone, PartialEq)]
pub enum NodeBody {
    /// A leaf node: a straight-line sequence of HDC instructions.
    Leaf {
        /// The instructions, executed in order.
        instrs: Vec<HdcInstr>,
    },
    /// A generic data-parallel loop (Hetero-C++ `parallel for`): the body is
    /// executed once per dynamic instance with the instance id written to
    /// `index` (HPVM's `getNodeInstanceID`). Iterations must be independent.
    ParallelFor {
        /// Number of dynamic instances.
        count: usize,
        /// Scalar value slot receiving the instance id.
        index: ValueId,
        /// Per-instance instruction sequence.
        body: Vec<HdcInstr>,
    },
    /// A coarse-grain algorithmic stage (`encoding_loop` / `training_loop` /
    /// `inference_loop`).
    Stage(StageNode),
}

/// One node of the top-level dataflow graph.
#[derive(Debug, Clone, PartialEq)]
pub struct Node {
    /// Node name (used in profiles and the printer).
    pub name: String,
    /// The hardware target this node is mapped to.
    pub target: Target,
    /// The node body.
    pub body: NodeBody,
}

impl Node {
    /// Values read by this node.
    pub fn read_values(&self) -> Vec<ValueId> {
        let mut out = Vec::new();
        match &self.body {
            NodeBody::Leaf { instrs } => {
                for i in instrs {
                    out.extend(i.read_values());
                }
            }
            NodeBody::ParallelFor { body, .. } => {
                for i in body {
                    out.extend(i.read_values());
                }
            }
            NodeBody::Stage(stage) => out.extend(stage.read_values()),
        }
        out.sort_unstable();
        out.dedup();
        out
    }

    /// Values written by this node.
    pub fn written_values(&self) -> Vec<ValueId> {
        let mut out = Vec::new();
        match &self.body {
            NodeBody::Leaf { instrs } => {
                for i in instrs {
                    out.extend(i.written_values());
                }
            }
            NodeBody::ParallelFor { index, body, .. } => {
                out.push(*index);
                for i in body {
                    out.extend(i.written_values());
                }
            }
            NodeBody::Stage(stage) => out.extend(stage.written_values()),
        }
        out.sort_unstable();
        out.dedup();
        out
    }

    /// All instructions contained in this node (stage bodies included).
    pub fn instrs(&self) -> &[HdcInstr] {
        match &self.body {
            NodeBody::Leaf { instrs } => instrs,
            NodeBody::ParallelFor { body, .. } => body,
            NodeBody::Stage(stage) => &stage.body,
        }
    }

    /// Mutable access to the node's instructions.
    pub fn instrs_mut(&mut self) -> &mut Vec<HdcInstr> {
        match &mut self.body {
            NodeBody::Leaf { instrs } => instrs,
            NodeBody::ParallelFor { body, .. } => body,
            NodeBody::Stage(stage) => &mut stage.body,
        }
    }
}

/// A retargetable HDC program: the HPVM-HDC IR unit of compilation.
#[derive(Debug, Clone, PartialEq)]
pub struct Program {
    /// Program name.
    pub name: String,
    /// The value slot table.
    values: Vec<ValueInfo>,
    /// The top-level dataflow graph, in a valid topological (execution)
    /// order.
    nodes: Vec<Node>,
}

impl Program {
    /// Create an empty program.
    pub fn new(name: impl Into<String>) -> Self {
        Program {
            name: name.into(),
            values: Vec::new(),
            nodes: Vec::new(),
        }
    }

    /// Add a value slot, returning its id.
    pub fn add_value(&mut self, info: ValueInfo) -> ValueId {
        self.values.push(info);
        ValueId(self.values.len() - 1)
    }

    /// Metadata for a value slot.
    ///
    /// # Panics
    ///
    /// Panics if the id does not belong to this program.
    pub fn value(&self, id: ValueId) -> &ValueInfo {
        &self.values[id.0]
    }

    /// Mutable metadata for a value slot.
    ///
    /// # Panics
    ///
    /// Panics if the id does not belong to this program.
    pub fn value_mut(&mut self, id: ValueId) -> &mut ValueInfo {
        &mut self.values[id.0]
    }

    /// All value slots, in id order.
    pub fn values(&self) -> &[ValueInfo] {
        &self.values
    }

    /// Ids of every value with the given role.
    pub fn values_with_role(&self, role: ValueRole) -> Vec<ValueId> {
        self.values
            .iter()
            .enumerate()
            .filter(|(_, v)| v.role == role)
            .map(|(i, _)| ValueId(i))
            .collect()
    }

    /// Append a node, returning its id.
    pub fn add_node(&mut self, node: Node) -> NodeId {
        self.nodes.push(node);
        NodeId(self.nodes.len() - 1)
    }

    /// The nodes of the dataflow graph in execution order.
    pub fn nodes(&self) -> &[Node] {
        &self.nodes
    }

    /// Mutable access to the nodes.
    pub fn nodes_mut(&mut self) -> &mut Vec<Node> {
        &mut self.nodes
    }

    /// One node by id.
    ///
    /// # Panics
    ///
    /// Panics if the id does not belong to this program.
    pub fn node(&self, id: NodeId) -> &Node {
        &self.nodes[id.0]
    }

    /// Iterate over every instruction in the program (all node bodies).
    pub fn iter_instrs(&self) -> impl Iterator<Item = &HdcInstr> {
        self.nodes.iter().flat_map(|n| n.instrs().iter())
    }

    /// Total number of instructions across all nodes.
    pub fn instr_count(&self) -> usize {
        self.iter_instrs().count()
    }

    /// Compute the explicit dataflow edges of the top-level graph: an edge
    /// `(a, b)` means node `b` reads a value that node `a` was the most
    /// recent writer of. This is the logical-data-transfer edge set of the
    /// HPVM DAG; back ends use it to determine which values must move
    /// between devices.
    pub fn dataflow_edges(&self) -> Vec<(NodeId, NodeId)> {
        let mut last_writer: std::collections::HashMap<ValueId, NodeId> =
            std::collections::HashMap::new();
        let mut edges = Vec::new();
        for (i, node) in self.nodes.iter().enumerate() {
            let this = NodeId(i);
            for read in node.read_values() {
                if let Some(&writer) = last_writer.get(&read) {
                    if writer != this && !edges.contains(&(writer, this)) {
                        edges.push((writer, this));
                    }
                }
            }
            for written in node.written_values() {
                last_writer.insert(written, this);
            }
        }
        edges
    }

    /// Number of values whose element kind is `Bit` (a binarization metric).
    pub fn binarized_value_count(&self) -> usize {
        self.values
            .iter()
            .filter(|v| v.ty.element_kind() == Some(hdc_core::element::ElementKind::Bit))
            .count()
    }

    /// Total byte footprint of all values (used to report data-movement
    /// savings from binarization).
    pub fn total_value_bytes(&self) -> usize {
        self.values.iter().map(|v| v.ty.storage_bytes()).sum()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::ops::HdcOp;
    use crate::types::ValueType;
    use hdc_core::element::ElementKind;

    fn simple_program() -> (Program, ValueId, ValueId, ValueId) {
        let mut p = Program::new("test");
        let a = p.add_value(ValueInfo {
            name: "a".into(),
            ty: ValueType::HyperVector {
                elem: ElementKind::F32,
                dim: 8,
            },
            role: ValueRole::Input,
        });
        let b = p.add_value(ValueInfo {
            name: "b".into(),
            ty: ValueType::HyperVector {
                elem: ElementKind::F32,
                dim: 8,
            },
            role: ValueRole::Temp,
        });
        let c = p.add_value(ValueInfo {
            name: "c".into(),
            ty: ValueType::HyperVector {
                elem: ElementKind::F32,
                dim: 8,
            },
            role: ValueRole::Output,
        });
        (p, a, b, c)
    }

    #[test]
    fn value_roles_and_lookup() {
        let (p, a, _b, c) = simple_program();
        assert_eq!(p.values().len(), 3);
        assert_eq!(p.value(a).name, "a");
        assert_eq!(p.values_with_role(ValueRole::Input), vec![a]);
        assert_eq!(p.values_with_role(ValueRole::Output), vec![c]);
    }

    #[test]
    fn dataflow_edges_follow_def_use() {
        let (mut p, a, b, c) = simple_program();
        p.add_node(Node {
            name: "n0".into(),
            target: Target::Cpu,
            body: NodeBody::Leaf {
                instrs: vec![HdcInstr::new(HdcOp::Sign, vec![a.into()], Some(b))],
            },
        });
        p.add_node(Node {
            name: "n1".into(),
            target: Target::Gpu,
            body: NodeBody::Leaf {
                instrs: vec![HdcInstr::new(HdcOp::SignFlip, vec![b.into()], Some(c))],
            },
        });
        let edges = p.dataflow_edges();
        assert_eq!(edges, vec![(NodeId(0), NodeId(1))]);
        assert_eq!(p.instr_count(), 2);
    }

    #[test]
    fn no_self_edges() {
        let (mut p, a, b, c) = simple_program();
        p.add_node(Node {
            name: "n0".into(),
            target: Target::Cpu,
            body: NodeBody::Leaf {
                instrs: vec![
                    HdcInstr::new(HdcOp::Sign, vec![a.into()], Some(b)),
                    HdcInstr::new(HdcOp::SignFlip, vec![b.into()], Some(c)),
                ],
            },
        });
        assert!(p.dataflow_edges().is_empty());
    }

    #[test]
    fn binarization_metrics() {
        let (mut p, _a, b, _c) = simple_program();
        assert_eq!(p.binarized_value_count(), 0);
        let dense_bytes = p.total_value_bytes();
        let ty = p.value(b).ty.with_element_kind(ElementKind::Bit);
        p.value_mut(b).ty = ty;
        assert_eq!(p.binarized_value_count(), 1);
        assert!(p.total_value_bytes() < dense_bytes);
    }
}
