//! # hdc-ir
//!
//! The HPVM-HDC intermediate representation and the HDC++ builder DSL.
//!
//! The original HPVM-HDC compiler extends LLVM/HPVM IR with HDC intrinsics
//! and represents programs as hierarchical dataflow graphs whose nodes are
//! annotated with hardware targets (paper §4.1). This crate reproduces that
//! layer in Rust:
//!
//! * [`Program`] — a retargetable HDC program: a table of typed value slots
//!   plus a top-level dataflow graph of [`Node`]s. Leaf nodes hold straight
//!   line sequences of [`HdcInstr`]s; `ParallelFor` nodes capture generic
//!   Hetero-C++-style data parallelism; [`StageNode`]s capture the three
//!   coarse-grain algorithmic stages (`encoding_loop`, `training_loop`,
//!   `inference_loop`) that map onto HDC accelerators.
//! * [`HdcOp`] — the HDC intrinsics of the paper's Table 1.
//! * [`ProgramBuilder`] — the HDC++-like embedded DSL used by applications
//!   to construct programs without referring to any hardware target.
//! * [`verify::verify`] — the IR verifier (type/shape/def-use checking).
//! * [`printer`] — a human-readable textual dump of the IR.
//! * [`Target`] — the hardware targets nodes may be annotated with.
//!
//! Compiler transformations over this IR live in the `hdc-passes` crate and
//! execution lives in `hdc-runtime` / `hdc-accel`.
//!
//! # Example
//!
//! ```
//! use hdc_ir::prelude::*;
//!
//! // Listing 1 of the paper: random-projection encoding followed by
//! // Hamming-distance scoring and arg-min, expressed in the builder DSL.
//! let mut b = ProgramBuilder::new("classify_one");
//! let features = b.input_vector("input_features", ElementKind::F32, 617);
//! let rp = b.input_matrix("rp_matrix", ElementKind::F32, 2048, 617);
//! let classes = b.input_matrix("classes", ElementKind::F32, 26, 2048);
//! let encoded = b.matmul(features, rp);
//! let dists = b.hamming_distance(encoded, classes);
//! let label = b.arg_min(dists);
//! b.mark_output(label);
//! let program = b.finish();
//! assert!(hdc_ir::verify::verify(&program).is_ok());
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod builder;
pub mod instr;
pub mod ops;
pub mod printer;
pub mod program;
pub mod stage;
pub mod target;
pub mod types;
pub mod verify;

pub use builder::ProgramBuilder;
pub use instr::{HdcInstr, Operand};
pub use ops::HdcOp;
pub use program::{Node, NodeBody, NodeId, Program, ValueId, ValueInfo, ValueRole};
pub use stage::{ScorePolarity, StageInterface, StageKind, StageNode};
pub use target::Target;
pub use types::ValueType;

/// Re-export of the element kind tag shared with `hdc-core`.
pub use hdc_core::element::ElementKind;

/// Commonly used items for building and inspecting HDC programs.
pub mod prelude {
    pub use crate::builder::ProgramBuilder;
    pub use crate::instr::{HdcInstr, Operand};
    pub use crate::ops::HdcOp;
    pub use crate::program::{Node, NodeBody, Program, ValueId, ValueRole};
    pub use crate::stage::{ScorePolarity, StageKind};
    pub use crate::target::Target;
    pub use crate::types::ValueType;
    pub use crate::ElementKind;
}
