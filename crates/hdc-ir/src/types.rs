//! The IR type system.

use hdc_core::element::ElementKind;

/// Type of a value slot in an HDC program.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum ValueType {
    /// A scalar of the given element kind (loop indices, similarity scores,
    /// labels read out of `arg_min`/`arg_max`, …).
    Scalar(ElementKind),
    /// A hypervector of `dim` elements.
    HyperVector {
        /// Element kind.
        elem: ElementKind,
        /// Number of elements.
        dim: usize,
    },
    /// A hypermatrix of `rows x cols` elements.
    HyperMatrix {
        /// Element kind.
        elem: ElementKind,
        /// Number of rows.
        rows: usize,
        /// Number of columns.
        cols: usize,
    },
    /// A vector of `len` indices (class labels, cluster assignments).
    IndexVector {
        /// Number of indices.
        len: usize,
    },
}

impl ValueType {
    /// The element kind for scalar/vector/matrix types, `None` for index
    /// vectors.
    pub fn element_kind(&self) -> Option<ElementKind> {
        match self {
            ValueType::Scalar(e) => Some(*e),
            ValueType::HyperVector { elem, .. } => Some(*elem),
            ValueType::HyperMatrix { elem, .. } => Some(*elem),
            ValueType::IndexVector { .. } => None,
        }
    }

    /// Return a copy of this type with the element kind replaced (used by
    /// automatic binarization and `type_cast`). Index vectors are returned
    /// unchanged.
    pub fn with_element_kind(&self, elem: ElementKind) -> ValueType {
        match *self {
            ValueType::Scalar(_) => ValueType::Scalar(elem),
            ValueType::HyperVector { dim, .. } => ValueType::HyperVector { elem, dim },
            ValueType::HyperMatrix { rows, cols, .. } => {
                ValueType::HyperMatrix { elem, rows, cols }
            }
            ValueType::IndexVector { len } => ValueType::IndexVector { len },
        }
    }

    /// Whether this is a hypervector or hypermatrix type.
    pub fn is_tensor(&self) -> bool {
        matches!(
            self,
            ValueType::HyperVector { .. } | ValueType::HyperMatrix { .. }
        )
    }

    /// The reduction dimension of the type: the vector length, or the matrix
    /// column count.
    pub fn reduction_dim(&self) -> Option<usize> {
        match self {
            ValueType::HyperVector { dim, .. } => Some(*dim),
            ValueType::HyperMatrix { cols, .. } => Some(*cols),
            _ => None,
        }
    }

    /// Storage footprint in bytes, accounting for bit-packing of binarized
    /// tensors. Index vectors are stored as 32-bit indices; scalars as their
    /// element width.
    pub fn storage_bytes(&self) -> usize {
        match self {
            ValueType::Scalar(e) => e.bit_width().div_ceil(8),
            ValueType::HyperVector { elem, dim } => elem.storage_bytes(*dim),
            ValueType::HyperMatrix { elem, rows, cols } => rows * elem.storage_bytes(*cols),
            ValueType::IndexVector { len } => len * 4,
        }
    }

    /// Total number of logical elements.
    pub fn element_count(&self) -> usize {
        match self {
            ValueType::Scalar(_) => 1,
            ValueType::HyperVector { dim, .. } => *dim,
            ValueType::HyperMatrix { rows, cols, .. } => rows * cols,
            ValueType::IndexVector { len } => *len,
        }
    }
}

impl std::fmt::Display for ValueType {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            ValueType::Scalar(e) => write!(f, "{e}"),
            ValueType::HyperVector { elem, dim } => write!(f, "hypervector<{elem}, {dim}>"),
            ValueType::HyperMatrix { elem, rows, cols } => {
                write!(f, "hypermatrix<{elem}, {rows}x{cols}>")
            }
            ValueType::IndexVector { len } => write!(f, "indices<{len}>"),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn element_kind_accessors() {
        let v = ValueType::HyperVector {
            elem: ElementKind::F32,
            dim: 2048,
        };
        assert_eq!(v.element_kind(), Some(ElementKind::F32));
        assert_eq!(v.reduction_dim(), Some(2048));
        assert!(v.is_tensor());
        let i = ValueType::IndexVector { len: 10 };
        assert_eq!(i.element_kind(), None);
        assert!(!i.is_tensor());
    }

    #[test]
    fn with_element_kind_rewrites() {
        let m = ValueType::HyperMatrix {
            elem: ElementKind::F32,
            rows: 26,
            cols: 2048,
        };
        let b = m.with_element_kind(ElementKind::Bit);
        assert_eq!(
            b,
            ValueType::HyperMatrix {
                elem: ElementKind::Bit,
                rows: 26,
                cols: 2048
            }
        );
        let idx = ValueType::IndexVector { len: 3 };
        assert_eq!(idx.with_element_kind(ElementKind::Bit), idx);
    }

    #[test]
    fn storage_bytes_binarization_shrinks() {
        let dense = ValueType::HyperMatrix {
            elem: ElementKind::F32,
            rows: 26,
            cols: 10240,
        };
        let binary = dense.with_element_kind(ElementKind::Bit);
        assert_eq!(dense.storage_bytes(), 26 * 10240 * 4);
        assert_eq!(binary.storage_bytes(), 26 * 10240 / 8);
        assert_eq!(dense.storage_bytes() / binary.storage_bytes(), 32);
    }

    #[test]
    fn display_forms() {
        assert_eq!(
            ValueType::HyperVector {
                elem: ElementKind::Bit,
                dim: 2048
            }
            .to_string(),
            "hypervector<bit, 2048>"
        );
        assert_eq!(ValueType::Scalar(ElementKind::F64).to_string(), "f64");
        assert_eq!(ValueType::IndexVector { len: 5 }.to_string(), "indices<5>");
    }

    #[test]
    fn element_counts() {
        assert_eq!(
            ValueType::HyperMatrix {
                elem: ElementKind::I8,
                rows: 3,
                cols: 7
            }
            .element_count(),
            21
        );
        assert_eq!(ValueType::Scalar(ElementKind::F32).element_count(), 1);
    }
}
