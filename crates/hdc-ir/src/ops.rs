//! The HDC intrinsic operations of the paper's Table 1.

use hdc_core::element::ElementKind;
use hdc_core::ops::ElementwiseOp;

/// An HDC intrinsic operation.
///
/// These correspond one-to-one to the `__hetero_hdc_*` primitives of HDC++
/// (Table 1), minus the three stage loops (`encoding_loop`, `training_loop`,
/// `inference_loop`), which are represented structurally as
/// [`crate::StageNode`]s, and `red_perf`, which is represented as a
/// [`hdc_core::Perforation`] annotation on the instruction it applies to.
/// [`HdcOp::ArgTopK`] extends Table 1 with the top-k selection the
/// spectral-matching workloads (HyperOMS-style) need.
#[derive(Debug, Clone, Copy, PartialEq)]
pub enum HdcOp {
    /// `hypervector()` / `hypermatrix()`: produce a zero-initialised tensor.
    Zero,
    /// `random_hypervector()` / `random_hypermatrix()`: uniform random in
    /// `[-1, 1]`. The seed makes program execution deterministic.
    Random {
        /// RNG seed for reproducibility.
        seed: u64,
    },
    /// `gaussian_hypervector()` / `gaussian_hypermatrix()`: standard normal.
    Gaussian {
        /// RNG seed for reproducibility.
        seed: u64,
    },
    /// `random_hypervector()` restricted to bipolar ±1 values, the usual
    /// initial state of random-projection matrices.
    RandomBipolar {
        /// RNG seed for reproducibility.
        seed: u64,
    },
    /// `wrap_shift(input, amount)`: rotate elements with wrap-around.
    WrapShift,
    /// `sign(input)`: map each element to ±1.
    Sign,
    /// `sign_flip(input)`: negate each element.
    SignFlip,
    /// `absolute_value(input)`.
    AbsoluteValue,
    /// Element-wise `cosine(input)`.
    CosineElementwise,
    /// `add`/`sub`/`mul`/`div` element-wise binary operators.
    Elementwise(ElementwiseOp),
    /// `l2norm(input)`: L2 norm of a hypervector (scalar result) or of each
    /// row of a hypermatrix (vector result).
    L2Norm,
    /// `get_element(tensor, row [, col])`.
    GetElement,
    /// `type_cast(input, ty)`: cast elements to the given kind.
    TypeCast {
        /// Destination element kind.
        to: ElementKind,
    },
    /// `arg_min(input)`: index of the minimum (per row for matrices).
    ArgMin,
    /// `arg_max(input)`: index of the maximum (per row for matrices).
    ArgMax,
    /// `arg_top_k(input, k)`: indices of the `k` largest elements in
    /// descending score order (per row for matrices, flattened row-major).
    /// The top-k generalization of `arg_max`, used by spectral-matching
    /// workloads that report the best `k` library candidates per query.
    ArgTopK {
        /// Number of indices selected (per row).
        k: usize,
    },
    /// `set_matrix_row(matrix, new_row, row_idx)`.
    SetMatrixRow,
    /// `get_matrix_row(matrix, row_idx)`.
    GetMatrixRow,
    /// `matrix_transpose(input)`.
    MatrixTranspose,
    /// `cossim(lhs, rhs)`: cosine similarity (vector×vector → scalar,
    /// vector×matrix → vector, matrix×matrix → matrix).
    CosineSimilarity,
    /// `hamming_distance(lhs, rhs)`: Hamming distance with the same shape
    /// rules as [`HdcOp::CosineSimilarity`].
    HammingDistance,
    /// `matmul(lhs, rhs)`: hypervector/hypermatrix multiplication by a
    /// projection hypermatrix.
    MatMul,
    /// Accumulate (bundle) a hypervector into a row of a hypermatrix:
    /// `matrix[row] += vector`. Used by training and clustering updates;
    /// expressible with `get_matrix_row`/`add`/`set_matrix_row` but provided
    /// as a fused intrinsic because the accelerators implement it natively.
    AccumulateRow,
}

/// Categories of HDC operations, used by the optimization passes to decide
/// how binarization taint propagates and where perforation is legal.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum OpCategory {
    /// Creation ops with no tensor inputs.
    Creation,
    /// Element-wise ops (unary or binary) whose inputs and outputs share a
    /// shape.
    Elementwise,
    /// Reducing ops that collapse the hypervector dimension
    /// (`matmul`, `cossim`, `hamming_distance`, `l2norm`).
    Reduction,
    /// Data-movement / indexing ops (`get_matrix_row`, `set_matrix_row`,
    /// `get_element`, `transpose`, `wrap_shift`, `accumulate_row`).
    DataMovement,
    /// Arg-min / arg-max selection.
    Selection,
}

impl HdcOp {
    /// The category this operation belongs to.
    pub fn category(&self) -> OpCategory {
        match self {
            HdcOp::Zero
            | HdcOp::Random { .. }
            | HdcOp::Gaussian { .. }
            | HdcOp::RandomBipolar { .. } => OpCategory::Creation,
            HdcOp::Sign
            | HdcOp::SignFlip
            | HdcOp::AbsoluteValue
            | HdcOp::CosineElementwise
            | HdcOp::Elementwise(_)
            | HdcOp::TypeCast { .. } => OpCategory::Elementwise,
            HdcOp::L2Norm | HdcOp::CosineSimilarity | HdcOp::HammingDistance | HdcOp::MatMul => {
                OpCategory::Reduction
            }
            HdcOp::WrapShift
            | HdcOp::GetElement
            | HdcOp::SetMatrixRow
            | HdcOp::GetMatrixRow
            | HdcOp::MatrixTranspose
            | HdcOp::AccumulateRow => OpCategory::DataMovement,
            HdcOp::ArgMin | HdcOp::ArgMax | HdcOp::ArgTopK { .. } => OpCategory::Selection,
        }
    }

    /// Whether this is a reducing operation in the sense of Algorithm 1
    /// (`IsHDCReduceOp`): the hypervector dimension is collapsed, so
    /// binarization of the *output* does not require binarizing the inputs.
    pub fn is_reduce_op(&self) -> bool {
        self.category() == OpCategory::Reduction
    }

    /// Whether reduction perforation (`red_perf`) may legally annotate this
    /// operation. The paper allows it on `hamming_distance`, `cossim`,
    /// `matmul` and `l2norm`.
    pub fn supports_perforation(&self) -> bool {
        matches!(
            self,
            HdcOp::HammingDistance | HdcOp::CosineSimilarity | HdcOp::MatMul | HdcOp::L2Norm
        )
    }

    /// Whether the perforated result must be rescaled by the visited
    /// fraction. Similarity metrics are not rescaled (only relative order
    /// matters); `matmul` and `l2norm` are (§4.2).
    pub fn perforation_rescales(&self) -> bool {
        matches!(self, HdcOp::MatMul | HdcOp::L2Norm)
    }

    /// Short mnemonic used by the IR printer.
    pub fn mnemonic(&self) -> &'static str {
        match self {
            HdcOp::Zero => "hdc.zero",
            HdcOp::Random { .. } => "hdc.random",
            HdcOp::Gaussian { .. } => "hdc.gaussian",
            HdcOp::RandomBipolar { .. } => "hdc.random_bipolar",
            HdcOp::WrapShift => "hdc.wrap_shift",
            HdcOp::Sign => "hdc.sign",
            HdcOp::SignFlip => "hdc.sign_flip",
            HdcOp::AbsoluteValue => "hdc.abs",
            HdcOp::CosineElementwise => "hdc.cos",
            HdcOp::Elementwise(ElementwiseOp::Add) => "hdc.add",
            HdcOp::Elementwise(ElementwiseOp::Sub) => "hdc.sub",
            HdcOp::Elementwise(ElementwiseOp::Mul) => "hdc.mul",
            HdcOp::Elementwise(ElementwiseOp::Div) => "hdc.div",
            HdcOp::L2Norm => "hdc.l2norm",
            HdcOp::GetElement => "hdc.get_element",
            HdcOp::TypeCast { .. } => "hdc.type_cast",
            HdcOp::ArgMin => "hdc.arg_min",
            HdcOp::ArgMax => "hdc.arg_max",
            HdcOp::ArgTopK { .. } => "hdc.arg_top_k",
            HdcOp::SetMatrixRow => "hdc.set_matrix_row",
            HdcOp::GetMatrixRow => "hdc.get_matrix_row",
            HdcOp::MatrixTranspose => "hdc.transpose",
            HdcOp::CosineSimilarity => "hdc.cossim",
            HdcOp::HammingDistance => "hdc.hamming_distance",
            HdcOp::MatMul => "hdc.matmul",
            HdcOp::AccumulateRow => "hdc.accumulate_row",
        }
    }

    /// The number of distinct HDC++ primitives represented by this IR
    /// (Table 1 lists 24: 21 granular primitives represented by [`HdcOp`] /
    /// perforation annotations plus the 3 stage loops).
    pub const TABLE1_PRIMITIVE_COUNT: usize = 24;
}

impl std::fmt::Display for HdcOp {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            HdcOp::ArgTopK { k } => write!(f, "{}<{k}>", self.mnemonic()),
            _ => f.write_str(self.mnemonic()),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn categories() {
        assert_eq!(HdcOp::MatMul.category(), OpCategory::Reduction);
        assert_eq!(HdcOp::Sign.category(), OpCategory::Elementwise);
        assert_eq!(HdcOp::Zero.category(), OpCategory::Creation);
        assert_eq!(HdcOp::GetMatrixRow.category(), OpCategory::DataMovement);
        assert_eq!(HdcOp::ArgMin.category(), OpCategory::Selection);
        assert_eq!(HdcOp::ArgTopK { k: 5 }.category(), OpCategory::Selection);
        assert_eq!(
            HdcOp::Elementwise(ElementwiseOp::Add).category(),
            OpCategory::Elementwise
        );
    }

    #[test]
    fn reduce_ops_match_algorithm1() {
        assert!(HdcOp::MatMul.is_reduce_op());
        assert!(HdcOp::CosineSimilarity.is_reduce_op());
        assert!(HdcOp::HammingDistance.is_reduce_op());
        assert!(HdcOp::L2Norm.is_reduce_op());
        assert!(!HdcOp::Sign.is_reduce_op());
        assert!(!HdcOp::AccumulateRow.is_reduce_op());
    }

    #[test]
    fn perforation_legality_and_scaling() {
        assert!(HdcOp::HammingDistance.supports_perforation());
        assert!(HdcOp::CosineSimilarity.supports_perforation());
        assert!(HdcOp::MatMul.supports_perforation());
        assert!(HdcOp::L2Norm.supports_perforation());
        assert!(!HdcOp::Sign.supports_perforation());
        // similarity metrics are not rescaled, matmul / l2norm are
        assert!(!HdcOp::HammingDistance.perforation_rescales());
        assert!(!HdcOp::CosineSimilarity.perforation_rescales());
        assert!(HdcOp::MatMul.perforation_rescales());
        assert!(HdcOp::L2Norm.perforation_rescales());
    }

    #[test]
    fn mnemonics_are_distinct() {
        let ops = [
            HdcOp::Zero,
            HdcOp::Random { seed: 0 },
            HdcOp::Gaussian { seed: 0 },
            HdcOp::RandomBipolar { seed: 0 },
            HdcOp::WrapShift,
            HdcOp::Sign,
            HdcOp::SignFlip,
            HdcOp::AbsoluteValue,
            HdcOp::CosineElementwise,
            HdcOp::Elementwise(ElementwiseOp::Add),
            HdcOp::Elementwise(ElementwiseOp::Sub),
            HdcOp::Elementwise(ElementwiseOp::Mul),
            HdcOp::Elementwise(ElementwiseOp::Div),
            HdcOp::L2Norm,
            HdcOp::GetElement,
            HdcOp::TypeCast {
                to: ElementKind::Bit,
            },
            HdcOp::ArgMin,
            HdcOp::ArgMax,
            HdcOp::ArgTopK { k: 1 },
            HdcOp::SetMatrixRow,
            HdcOp::GetMatrixRow,
            HdcOp::MatrixTranspose,
            HdcOp::CosineSimilarity,
            HdcOp::HammingDistance,
            HdcOp::MatMul,
            HdcOp::AccumulateRow,
        ];
        let names: std::collections::HashSet<&str> = ops.iter().map(|o| o.mnemonic()).collect();
        assert_eq!(names.len(), ops.len());
    }
}
