//! The HDC++ embedded DSL: a builder that constructs [`Program`]s.
//!
//! Applications use [`ProgramBuilder`] the way the paper's applications use
//! HDC++: every `__hetero_hdc_*` primitive has a corresponding method, the
//! three stage loops take a closure playing the role of the "implementation
//! function", and `red_perf` attaches a perforation directive to the
//! instruction that produced a value. The builder never mentions hardware —
//! target assignment happens later in `hdc-passes`.

use crate::instr::{HdcInstr, Operand};
use crate::ops::HdcOp;
use crate::program::{Node, NodeBody, Program, ValueId, ValueInfo, ValueRole};
use crate::stage::{ScorePolarity, StageInterface, StageKind, StageNode};
use crate::target::Target;
use crate::types::ValueType;
use hdc_core::element::ElementKind;
use hdc_core::ops::ElementwiseOp;
use hdc_core::Perforation;

/// Builder for [`Program`]s; the Rust embedding of HDC++.
#[derive(Debug)]
pub struct ProgramBuilder {
    program: Program,
    /// Stack of instruction buffers. The bottom entry collects instructions
    /// for the next top-level leaf node; stage / parallel-for construction
    /// pushes a nested buffer for the body.
    buffers: Vec<Vec<HdcInstr>>,
    default_target: Target,
    temp_counter: usize,
    seed_counter: u64,
}

impl ProgramBuilder {
    /// Create a builder for a program with the given name.
    pub fn new(name: impl Into<String>) -> Self {
        ProgramBuilder {
            program: Program::new(name),
            buffers: vec![Vec::new()],
            default_target: Target::Cpu,
            temp_counter: 0,
            seed_counter: 0x5eed,
        }
    }

    /// Set the target assigned to nodes sealed from now on. Applications
    /// normally leave this alone and let the target-assignment pass decide.
    pub fn set_default_target(&mut self, target: Target) {
        self.default_target = target;
    }

    // ------------------------------------------------------------------
    // value declaration
    // ------------------------------------------------------------------

    fn add_value(&mut self, name: String, ty: ValueType, role: ValueRole) -> ValueId {
        self.program.add_value(ValueInfo { name, ty, role })
    }

    fn temp(&mut self, ty: ValueType) -> ValueId {
        let name = format!("t{}", self.temp_counter);
        self.temp_counter += 1;
        self.add_value(name, ty, ValueRole::Temp)
    }

    fn next_seed(&mut self) -> u64 {
        self.seed_counter = self
            .seed_counter
            .wrapping_mul(6364136223846793005)
            .wrapping_add(1);
        self.seed_counter
    }

    /// Declare a hypervector program input.
    pub fn input_vector(&mut self, name: &str, elem: ElementKind, dim: usize) -> ValueId {
        self.add_value(
            name.to_string(),
            ValueType::HyperVector { elem, dim },
            ValueRole::Input,
        )
    }

    /// Declare a hypermatrix program input.
    pub fn input_matrix(
        &mut self,
        name: &str,
        elem: ElementKind,
        rows: usize,
        cols: usize,
    ) -> ValueId {
        self.add_value(
            name.to_string(),
            ValueType::HyperMatrix { elem, rows, cols },
            ValueRole::Input,
        )
    }

    /// Declare an index-vector program input (e.g. training labels).
    pub fn input_indices(&mut self, name: &str, len: usize) -> ValueId {
        self.add_value(
            name.to_string(),
            ValueType::IndexVector { len },
            ValueRole::Input,
        )
    }

    /// Declare a scalar program input.
    pub fn input_scalar(&mut self, name: &str, elem: ElementKind) -> ValueId {
        self.add_value(name.to_string(), ValueType::Scalar(elem), ValueRole::Input)
    }

    /// Mark a value as a program output (readable by the host after
    /// execution).
    pub fn mark_output(&mut self, value: ValueId) {
        self.program.value_mut(value).role = ValueRole::Output;
    }

    /// Give a value a descriptive name (purely cosmetic; helps IR dumps).
    pub fn name_value(&mut self, value: ValueId, name: &str) {
        self.program.value_mut(value).name = name.to_string();
    }

    /// The declared type of a value.
    pub fn value_type(&self, value: ValueId) -> ValueType {
        self.program.value(value).ty
    }

    // ------------------------------------------------------------------
    // instruction emission helpers
    // ------------------------------------------------------------------

    fn emit(&mut self, instr: HdcInstr) {
        self.buffers
            .last_mut()
            .expect("builder always has an active buffer")
            .push(instr);
    }

    fn emit_unary(&mut self, op: HdcOp, input: ValueId, result_ty: ValueType) -> ValueId {
        let result = self.temp(result_ty);
        self.emit(HdcInstr::new(op, vec![input.into()], Some(result)));
        result
    }

    // ------------------------------------------------------------------
    // creation primitives
    // ------------------------------------------------------------------

    /// `hypervector<dim>()`: a zero-initialised hypervector.
    pub fn zero_vector(&mut self, elem: ElementKind, dim: usize) -> ValueId {
        let result = self.temp(ValueType::HyperVector { elem, dim });
        self.emit(HdcInstr::new(HdcOp::Zero, vec![], Some(result)));
        result
    }

    /// `hypermatrix<rows, cols>()`: a zero-initialised hypermatrix.
    pub fn zero_matrix(&mut self, elem: ElementKind, rows: usize, cols: usize) -> ValueId {
        let result = self.temp(ValueType::HyperMatrix { elem, rows, cols });
        self.emit(HdcInstr::new(HdcOp::Zero, vec![], Some(result)));
        result
    }

    /// `random_hypermatrix()`: uniform random values in `[-1, 1]`.
    pub fn random_matrix(&mut self, elem: ElementKind, rows: usize, cols: usize) -> ValueId {
        let seed = self.next_seed();
        let result = self.temp(ValueType::HyperMatrix { elem, rows, cols });
        self.emit(HdcInstr::new(HdcOp::Random { seed }, vec![], Some(result)));
        result
    }

    /// `gaussian_hypermatrix()`: standard-normal random values.
    pub fn gaussian_matrix(&mut self, elem: ElementKind, rows: usize, cols: usize) -> ValueId {
        let seed = self.next_seed();
        let result = self.temp(ValueType::HyperMatrix { elem, rows, cols });
        self.emit(HdcInstr::new(
            HdcOp::Gaussian { seed },
            vec![],
            Some(result),
        ));
        result
    }

    /// A random bipolar (±1) hypermatrix, the usual random-projection seed.
    pub fn random_bipolar_matrix(
        &mut self,
        elem: ElementKind,
        rows: usize,
        cols: usize,
    ) -> ValueId {
        let seed = self.next_seed();
        let result = self.temp(ValueType::HyperMatrix { elem, rows, cols });
        self.emit(HdcInstr::new(
            HdcOp::RandomBipolar { seed },
            vec![],
            Some(result),
        ));
        result
    }

    /// `gaussian_hypervector()`.
    pub fn gaussian_vector(&mut self, elem: ElementKind, dim: usize) -> ValueId {
        let seed = self.next_seed();
        let result = self.temp(ValueType::HyperVector { elem, dim });
        self.emit(HdcInstr::new(
            HdcOp::Gaussian { seed },
            vec![],
            Some(result),
        ));
        result
    }

    // ------------------------------------------------------------------
    // element-wise primitives
    // ------------------------------------------------------------------

    /// `sign(input)`.
    pub fn sign(&mut self, input: ValueId) -> ValueId {
        let ty = self.value_type(input);
        self.emit_unary(HdcOp::Sign, input, ty)
    }

    /// `sign_flip(input)`.
    pub fn sign_flip(&mut self, input: ValueId) -> ValueId {
        let ty = self.value_type(input);
        self.emit_unary(HdcOp::SignFlip, input, ty)
    }

    /// `absolute_value(input)`.
    pub fn absolute_value(&mut self, input: ValueId) -> ValueId {
        let ty = self.value_type(input);
        self.emit_unary(HdcOp::AbsoluteValue, input, ty)
    }

    /// Element-wise `cosine(input)`.
    pub fn cosine(&mut self, input: ValueId) -> ValueId {
        let ty = self.value_type(input);
        self.emit_unary(HdcOp::CosineElementwise, input, ty)
    }

    /// `wrap_shift(input, amount)`.
    pub fn wrap_shift(&mut self, input: ValueId, amount: i64) -> ValueId {
        let ty = self.value_type(input);
        let result = self.temp(ty);
        self.emit(HdcInstr::new(
            HdcOp::WrapShift,
            vec![input.into(), amount.into()],
            Some(result),
        ));
        result
    }

    /// `type_cast(input, to)`.
    pub fn type_cast(&mut self, input: ValueId, to: ElementKind) -> ValueId {
        let ty = self.value_type(input).with_element_kind(to);
        self.emit_unary(HdcOp::TypeCast { to }, input, ty)
    }

    fn elementwise(&mut self, op: ElementwiseOp, lhs: ValueId, rhs: ValueId) -> ValueId {
        let ty = self.value_type(lhs);
        let result = self.temp(ty);
        self.emit(HdcInstr::new(
            HdcOp::Elementwise(op),
            vec![lhs.into(), rhs.into()],
            Some(result),
        ));
        result
    }

    /// Element-wise `add`.
    pub fn add(&mut self, lhs: ValueId, rhs: ValueId) -> ValueId {
        self.elementwise(ElementwiseOp::Add, lhs, rhs)
    }

    /// Element-wise `sub`.
    pub fn sub(&mut self, lhs: ValueId, rhs: ValueId) -> ValueId {
        self.elementwise(ElementwiseOp::Sub, lhs, rhs)
    }

    /// Element-wise `mul` (binding).
    pub fn mul(&mut self, lhs: ValueId, rhs: ValueId) -> ValueId {
        self.elementwise(ElementwiseOp::Mul, lhs, rhs)
    }

    /// Element-wise `div`.
    pub fn div(&mut self, lhs: ValueId, rhs: ValueId) -> ValueId {
        self.elementwise(ElementwiseOp::Div, lhs, rhs)
    }

    // ------------------------------------------------------------------
    // reductions, indexing, similarity
    // ------------------------------------------------------------------

    /// `l2norm(input)`: scalar for hypervectors, per-row vector for
    /// hypermatrices.
    pub fn l2norm(&mut self, input: ValueId) -> ValueId {
        let ty = match self.value_type(input) {
            ValueType::HyperMatrix { rows, .. } => ValueType::HyperVector {
                elem: ElementKind::F32,
                dim: rows,
            },
            _ => ValueType::Scalar(ElementKind::F32),
        };
        self.emit_unary(HdcOp::L2Norm, input, ty)
    }

    /// `get_element(tensor, row [, col])`.
    pub fn get_element(&mut self, input: ValueId, row: i64, col: Option<i64>) -> ValueId {
        let mut operands: Vec<Operand> = vec![input.into(), row.into()];
        if let Some(c) = col {
            operands.push(c.into());
        }
        self.get_element_operands(input, operands)
    }

    /// `get_element(tensor, row)` with a dynamic row index (e.g. a
    /// parallel-loop instance id), as used when gathering per-sample labels
    /// or cluster assignments inside a loop body.
    pub fn get_element_dyn(&mut self, input: ValueId, row: impl Into<Operand>) -> ValueId {
        let operands = vec![input.into(), row.into()];
        self.get_element_operands(input, operands)
    }

    fn get_element_operands(&mut self, input: ValueId, operands: Vec<Operand>) -> ValueId {
        let elem = self
            .value_type(input)
            .element_kind()
            .unwrap_or(ElementKind::F32);
        let result = self.temp(ValueType::Scalar(elem));
        self.emit(HdcInstr::new(HdcOp::GetElement, operands, Some(result)));
        result
    }

    /// `arg_min(input)`: scalar index for hypervectors, per-row index vector
    /// for hypermatrices.
    pub fn arg_min(&mut self, input: ValueId) -> ValueId {
        let ty = match self.value_type(input) {
            ValueType::HyperMatrix { rows, .. } => ValueType::IndexVector { len: rows },
            _ => ValueType::Scalar(ElementKind::I32),
        };
        self.emit_unary(HdcOp::ArgMin, input, ty)
    }

    /// `arg_max(input)`.
    pub fn arg_max(&mut self, input: ValueId) -> ValueId {
        let ty = match self.value_type(input) {
            ValueType::HyperMatrix { rows, .. } => ValueType::IndexVector { len: rows },
            _ => ValueType::Scalar(ElementKind::I32),
        };
        self.emit_unary(HdcOp::ArgMax, input, ty)
    }

    /// `arg_top_k(input, k)`: indices of the `k` largest elements, in
    /// descending score order. A hypervector of scores yields `k` indices;
    /// a hypermatrix (one row of scores per sample) yields the per-row
    /// top-k flattened row-major (`rows * k` indices, sample `i`'s matches
    /// at `[i*k, (i+1)*k)`). Distance scores should be `sign_flip`ped
    /// first, exactly as `arg_min` relates to `arg_max`.
    pub fn arg_top_k(&mut self, input: ValueId, k: usize) -> ValueId {
        let ty = match self.value_type(input) {
            ValueType::HyperMatrix { rows, .. } => ValueType::IndexVector { len: rows * k },
            _ => ValueType::IndexVector { len: k },
        };
        self.emit_unary(HdcOp::ArgTopK { k }, input, ty)
    }

    /// `get_matrix_row(matrix, row_idx)` with an immediate row index.
    pub fn get_matrix_row(&mut self, matrix: ValueId, row: i64) -> ValueId {
        self.get_matrix_row_dyn(matrix, Operand::ImmInt(row))
    }

    /// `get_matrix_row(matrix, row_idx)` with a dynamic row index (e.g. a
    /// parallel-loop instance id).
    pub fn get_matrix_row_dyn(&mut self, matrix: ValueId, row: impl Into<Operand>) -> ValueId {
        let (elem, cols) = match self.value_type(matrix) {
            ValueType::HyperMatrix { elem, cols, .. } => (elem, cols),
            other => (other.element_kind().unwrap_or(ElementKind::F32), 0),
        };
        let result = self.temp(ValueType::HyperVector { elem, dim: cols });
        self.emit(HdcInstr::new(
            HdcOp::GetMatrixRow,
            vec![matrix.into(), row.into()],
            Some(result),
        ));
        result
    }

    /// `set_matrix_row(matrix, new_row, row_idx)` with an immediate index.
    pub fn set_matrix_row(&mut self, matrix: ValueId, new_row: ValueId, row: i64) {
        self.set_matrix_row_dyn(matrix, new_row, Operand::ImmInt(row));
    }

    /// `set_matrix_row` with a dynamic row index.
    pub fn set_matrix_row_dyn(
        &mut self,
        matrix: ValueId,
        new_row: ValueId,
        row: impl Into<Operand>,
    ) {
        self.emit(HdcInstr::new(
            HdcOp::SetMatrixRow,
            vec![matrix.into(), new_row.into(), row.into()],
            None,
        ));
    }

    /// `matrix[row] += vector` (fused bundling update).
    pub fn accumulate_row(&mut self, matrix: ValueId, vector: ValueId, row: impl Into<Operand>) {
        self.emit(HdcInstr::new(
            HdcOp::AccumulateRow,
            vec![matrix.into(), vector.into(), row.into()],
            None,
        ));
    }

    /// `matrix_transpose(input)`.
    pub fn transpose(&mut self, input: ValueId) -> ValueId {
        let ty = match self.value_type(input) {
            ValueType::HyperMatrix { elem, rows, cols } => ValueType::HyperMatrix {
                elem,
                rows: cols,
                cols: rows,
            },
            other => other,
        };
        self.emit_unary(HdcOp::MatrixTranspose, input, ty)
    }

    fn similarity_result_type(&self, lhs: ValueId, rhs: ValueId) -> ValueType {
        match (self.value_type(lhs), self.value_type(rhs)) {
            (ValueType::HyperVector { .. }, ValueType::HyperVector { .. }) => {
                ValueType::Scalar(ElementKind::F32)
            }
            (ValueType::HyperVector { .. }, ValueType::HyperMatrix { rows, .. })
            | (ValueType::HyperMatrix { rows, .. }, ValueType::HyperVector { .. }) => {
                ValueType::HyperVector {
                    elem: ElementKind::F32,
                    dim: rows,
                }
            }
            (ValueType::HyperMatrix { rows: lr, .. }, ValueType::HyperMatrix { rows: rr, .. }) => {
                ValueType::HyperMatrix {
                    elem: ElementKind::F32,
                    rows: lr,
                    cols: rr,
                }
            }
            _ => ValueType::Scalar(ElementKind::F32),
        }
    }

    /// `cossim(lhs, rhs)`.
    pub fn cossim(&mut self, lhs: ValueId, rhs: ValueId) -> ValueId {
        let ty = self.similarity_result_type(lhs, rhs);
        let result = self.temp(ty);
        self.emit(HdcInstr::new(
            HdcOp::CosineSimilarity,
            vec![lhs.into(), rhs.into()],
            Some(result),
        ));
        result
    }

    /// `hamming_distance(lhs, rhs)`.
    pub fn hamming_distance(&mut self, lhs: ValueId, rhs: ValueId) -> ValueId {
        let ty = self.similarity_result_type(lhs, rhs);
        let result = self.temp(ty);
        self.emit(HdcInstr::new(
            HdcOp::HammingDistance,
            vec![lhs.into(), rhs.into()],
            Some(result),
        ));
        result
    }

    /// `matmul(lhs, rhs)`: `lhs` is a feature hypervector (or a batch
    /// hypermatrix with one sample per row) and `rhs` is a `D x F`
    /// projection hypermatrix; the result has dimension `D` per sample.
    pub fn matmul(&mut self, lhs: ValueId, rhs: ValueId) -> ValueId {
        let out_dim = match self.value_type(rhs) {
            ValueType::HyperMatrix { rows, .. } => rows,
            _ => 0,
        };
        let ty = match self.value_type(lhs) {
            ValueType::HyperVector { elem, .. } => ValueType::HyperVector { elem, dim: out_dim },
            ValueType::HyperMatrix { elem, rows, .. } => ValueType::HyperMatrix {
                elem,
                rows,
                cols: out_dim,
            },
            other => other,
        };
        let result = self.temp(ty);
        self.emit(HdcInstr::new(
            HdcOp::MatMul,
            vec![lhs.into(), rhs.into()],
            Some(result),
        ));
        result
    }

    /// `red_perf(result, begin, end, stride)`: annotate the instruction that
    /// produced `value` with a reduction-perforation directive.
    ///
    /// # Panics
    ///
    /// Panics if no instruction in the current node produced `value` or if
    /// that instruction's operation does not support perforation, mirroring
    /// the compile-time diagnostics of the original compiler.
    pub fn red_perf(&mut self, value: ValueId, begin: usize, end: usize, stride: usize) {
        let buffer = self
            .buffers
            .last_mut()
            .expect("builder always has an active buffer");
        let instr = buffer
            .iter_mut()
            .rev()
            .find(|i| i.result == Some(value))
            .unwrap_or_else(|| {
                panic!("red_perf: no producing instruction for value in current node")
            });
        assert!(
            instr.op.supports_perforation(),
            "red_perf: {} does not support reduction perforation",
            instr.op
        );
        instr.perforation = Some(Perforation::strided(begin, end, stride));
    }

    // ------------------------------------------------------------------
    // nodes
    // ------------------------------------------------------------------

    /// Seal the instructions emitted so far into a leaf node.
    pub fn seal_node(&mut self, name: &str) {
        let instrs = std::mem::take(self.buffers.last_mut().expect("active buffer"));
        if instrs.is_empty() {
            return;
        }
        let target = self.default_target;
        self.program.add_node(Node {
            name: name.to_string(),
            target,
            body: NodeBody::Leaf { instrs },
        });
    }

    /// Emit a generic data-parallel loop node (Hetero-C++ `parallel for`).
    /// The closure receives the builder and the loop-index value and builds
    /// the per-iteration body.
    pub fn parallel_for(
        &mut self,
        name: &str,
        count: usize,
        build_body: impl FnOnce(&mut ProgramBuilder, ValueId),
    ) {
        self.seal_node(&format!("{name}.pre"));
        let index = self.add_value(
            format!("{name}.index"),
            ValueType::Scalar(ElementKind::I64),
            ValueRole::Temp,
        );
        self.buffers.push(Vec::new());
        build_body(self, index);
        let body = self.buffers.pop().expect("pushed body buffer");
        let target = self.default_target;
        self.program.add_node(Node {
            name: name.to_string(),
            target,
            body: NodeBody::ParallelFor { count, index, body },
        });
    }

    #[allow(clippy::too_many_arguments)]
    fn stage_common(
        &mut self,
        name: &str,
        kind: StageKind,
        interface: StageInterface,
        polarity: ScorePolarity,
        query_dim: usize,
        query_elem: ElementKind,
        build_body: impl FnOnce(&mut ProgramBuilder, ValueId) -> ValueId,
    ) {
        self.seal_node(&format!("{name}.pre"));
        let body_query = self.add_value(
            format!("{name}.query"),
            ValueType::HyperVector {
                elem: query_elem,
                dim: query_dim,
            },
            ValueRole::Temp,
        );
        self.buffers.push(Vec::new());
        let body_result = build_body(self, body_query);
        let body = self.buffers.pop().expect("pushed stage body buffer");
        let target = self.default_target;
        self.program.add_node(Node {
            name: name.to_string(),
            target,
            body: NodeBody::Stage(StageNode {
                kind,
                interface,
                polarity,
                body,
                body_query,
                body_result,
                persistent_values: Vec::new(),
            }),
        });
    }

    /// `encoding_loop(encode, queries, encoder)`: apply the per-sample
    /// encoding body to every row of `features`, producing an encoded
    /// hypermatrix. The closure receives the per-sample feature hypervector
    /// and must return the encoded hypervector value.
    pub fn encoding_loop(
        &mut self,
        name: &str,
        features: ValueId,
        encoded_dim: usize,
        build_body: impl FnOnce(&mut ProgramBuilder, ValueId) -> ValueId,
    ) -> ValueId {
        let (elem, rows, cols) = match self.value_type(features) {
            ValueType::HyperMatrix { elem, rows, cols } => (elem, rows, cols),
            other => panic!("encoding_loop: features must be a hypermatrix, got {other}"),
        };
        let output = self.add_value(
            format!("{name}.encoded"),
            ValueType::HyperMatrix {
                elem,
                rows,
                cols: encoded_dim,
            },
            ValueRole::Temp,
        );
        let interface = StageInterface {
            queries: features,
            classes: None,
            labels: None,
            output,
        };
        self.stage_common(
            name,
            StageKind::Encoding,
            interface,
            ScorePolarity::Similarity,
            cols,
            elem,
            build_body,
        );
        output
    }

    /// `inference_loop(infer, queries, classes)`: classify every row of
    /// `queries` against `classes`. The closure builds the per-sample score
    /// computation and returns the score-vector value; `polarity` says
    /// whether scores are similarities or distances. Returns the predicted
    /// label index vector.
    pub fn inference_loop(
        &mut self,
        name: &str,
        queries: ValueId,
        classes: ValueId,
        polarity: ScorePolarity,
        build_body: impl FnOnce(&mut ProgramBuilder, ValueId) -> ValueId,
    ) -> ValueId {
        let (elem, rows, cols) = match self.value_type(queries) {
            ValueType::HyperMatrix { elem, rows, cols } => (elem, rows, cols),
            other => panic!("inference_loop: queries must be a hypermatrix, got {other}"),
        };
        let output = self.add_value(
            format!("{name}.labels"),
            ValueType::IndexVector { len: rows },
            ValueRole::Temp,
        );
        let interface = StageInterface {
            queries,
            classes: Some(classes),
            labels: None,
            output,
        };
        self.stage_common(
            name,
            StageKind::Inference,
            interface,
            polarity,
            cols,
            elem,
            build_body,
        );
        output
    }

    /// `training_loop(train, queries, labels, classes, epochs)`: iterate over
    /// the labelled samples for `epochs` epochs, updating `classes` on every
    /// misprediction (perceptron-style HDC retraining). The closure builds
    /// the per-sample score computation. Returns the (updated) class matrix
    /// value for convenience.
    #[allow(clippy::too_many_arguments)]
    pub fn training_loop(
        &mut self,
        name: &str,
        queries: ValueId,
        labels: ValueId,
        classes: ValueId,
        epochs: usize,
        polarity: ScorePolarity,
        build_body: impl FnOnce(&mut ProgramBuilder, ValueId) -> ValueId,
    ) -> ValueId {
        let (elem, _rows, cols) = match self.value_type(queries) {
            ValueType::HyperMatrix { elem, rows, cols } => (elem, rows, cols),
            other => panic!("training_loop: queries must be a hypermatrix, got {other}"),
        };
        let interface = StageInterface {
            queries,
            classes: Some(classes),
            labels: Some(labels),
            output: classes,
        };
        self.stage_common(
            name,
            StageKind::Training { epochs },
            interface,
            polarity,
            cols,
            elem,
            build_body,
        );
        classes
    }

    /// Finish the program, sealing any pending instructions into a final
    /// leaf node.
    pub fn finish(mut self) -> Program {
        self.seal_node("main");
        self.program
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::verify::verify;

    #[test]
    fn listing1_builds_and_verifies() {
        let mut b = ProgramBuilder::new("listing1");
        let features = b.input_vector("input_features", ElementKind::F32, 617);
        let rp = b.input_matrix("rp_matrix", ElementKind::F32, 2048, 617);
        let classes = b.input_matrix("clusters", ElementKind::F32, 26, 2048);
        let encoded = b.matmul(features, rp);
        let dists = b.hamming_distance(encoded, classes);
        let label = b.arg_min(dists);
        b.mark_output(label);
        let p = b.finish();
        assert_eq!(p.nodes().len(), 1);
        assert_eq!(p.instr_count(), 3);
        verify(&p).unwrap();
        // result types inferred correctly
        assert_eq!(
            p.value(encoded).ty,
            ValueType::HyperVector {
                elem: ElementKind::F32,
                dim: 2048
            }
        );
        assert_eq!(
            p.value(dists).ty,
            ValueType::HyperVector {
                elem: ElementKind::F32,
                dim: 26
            }
        );
    }

    #[test]
    fn red_perf_attaches_to_producer() {
        let mut b = ProgramBuilder::new("perf");
        let a = b.input_vector("a", ElementKind::F32, 2048);
        let m = b.input_matrix("m", ElementKind::F32, 26, 2048);
        let d = b.hamming_distance(a, m);
        b.red_perf(d, 0, 1024, 2);
        let p = b.finish();
        let instr = p.iter_instrs().find(|i| i.result == Some(d)).unwrap();
        let perf = instr.perforation.unwrap();
        assert_eq!((perf.begin, perf.end, perf.stride), (0, 1024, 2));
    }

    #[test]
    #[should_panic(expected = "does not support reduction perforation")]
    fn red_perf_rejects_elementwise() {
        let mut b = ProgramBuilder::new("perf_bad");
        let a = b.input_vector("a", ElementKind::F32, 16);
        let s = b.sign(a);
        b.red_perf(s, 0, 16, 2);
    }

    #[test]
    fn stage_nodes_capture_interface() {
        let mut b = ProgramBuilder::new("stages");
        let features = b.input_matrix("features", ElementKind::F32, 100, 617);
        let rp = b.input_matrix("rp", ElementKind::F32, 2048, 617);
        let classes = b.input_matrix("classes", ElementKind::F32, 26, 2048);
        let labels = b.input_indices("labels", 100);
        let encoded = b.encoding_loop("encode", features, 2048, |b, q| b.matmul(q, rp));
        b.training_loop(
            "train",
            encoded,
            labels,
            classes,
            3,
            ScorePolarity::Similarity,
            |b, q| b.cossim(q, classes),
        );
        let preds = b.inference_loop(
            "infer",
            encoded,
            classes,
            ScorePolarity::Distance,
            |b, q| b.hamming_distance(q, classes),
        );
        b.mark_output(preds);
        let p = b.finish();
        verify(&p).unwrap();
        let stage_count = p
            .nodes()
            .iter()
            .filter(|n| matches!(n.body, NodeBody::Stage(_)))
            .count();
        assert_eq!(stage_count, 3);
        // dataflow edges connect encode -> train -> infer through shared values
        assert!(!p.dataflow_edges().is_empty());
    }

    #[test]
    fn parallel_for_builds_node() {
        let mut b = ProgramBuilder::new("par");
        let m = b.input_matrix("m", ElementKind::F32, 8, 64);
        let out = b.input_matrix("out", ElementKind::F32, 8, 64);
        b.mark_output(out);
        b.parallel_for("rows", 8, |b, idx| {
            let row = b.get_matrix_row_dyn(m, idx);
            let s = b.sign(row);
            b.set_matrix_row_dyn(out, s, idx);
        });
        let p = b.finish();
        verify(&p).unwrap();
        assert!(p
            .nodes()
            .iter()
            .any(|n| matches!(n.body, NodeBody::ParallelFor { count: 8, .. })));
    }

    #[test]
    fn seal_node_splits_graph() {
        let mut b = ProgramBuilder::new("multi");
        let a = b.input_vector("a", ElementKind::F32, 32);
        let s = b.sign(a);
        b.seal_node("first");
        let f = b.sign_flip(s);
        b.mark_output(f);
        let p = b.finish();
        assert_eq!(p.nodes().len(), 2);
        assert_eq!(p.dataflow_edges().len(), 1);
    }

    #[test]
    fn creation_ops_and_casts() {
        let mut b = ProgramBuilder::new("create");
        let z = b.zero_matrix(ElementKind::F32, 4, 128);
        let r = b.random_matrix(ElementKind::F32, 4, 128);
        let g = b.gaussian_vector(ElementKind::F64, 128);
        let bp = b.random_bipolar_matrix(ElementKind::I8, 4, 128);
        let cast = b.type_cast(bp, ElementKind::F32);
        let sum = b.add(z, r);
        let norm = b.l2norm(g);
        let t = b.transpose(cast);
        b.mark_output(sum);
        b.mark_output(norm);
        b.mark_output(t);
        let p = b.finish();
        verify(&p).unwrap();
        assert_eq!(
            p.value(t).ty,
            ValueType::HyperMatrix {
                elem: ElementKind::F32,
                rows: 128,
                cols: 4
            }
        );
    }
}
