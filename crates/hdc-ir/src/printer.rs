//! Human-readable textual dumps of HPVM-HDC IR programs.

use crate::instr::HdcInstr;
use crate::program::{NodeBody, Program, ValueRole};
use std::fmt::Write as _;

fn write_instr(out: &mut String, program: &Program, instr: &HdcInstr, indent: &str) {
    let mut line = String::new();
    if let Some(r) = instr.result {
        let _ = write!(line, "%{} : {} = ", r.index(), program.value(r).ty);
    }
    let _ = write!(line, "{}", instr.op);
    for (i, op) in instr.operands.iter().enumerate() {
        if i == 0 {
            let _ = write!(line, " ");
        } else {
            let _ = write!(line, ", ");
        }
        let _ = write!(line, "{op}");
    }
    if let Some(p) = instr.perforation {
        let _ = write!(line, "  !red_perf({p})");
    }
    let _ = writeln!(out, "{indent}{line}");
}

/// Render a program as text. The format is for human inspection and golden
/// tests; it is not meant to be parsed back.
pub fn print_program(program: &Program) -> String {
    let mut out = String::new();
    let _ = writeln!(out, "program @{} {{", program.name);
    for (i, v) in program.values().iter().enumerate() {
        let role = match v.role {
            ValueRole::Input => "input",
            ValueRole::Output => "output",
            ValueRole::Temp => "temp",
        };
        let _ = writeln!(out, "  value %{i} \"{}\" : {} ({role})", v.name, v.ty);
    }
    for node in program.nodes() {
        match &node.body {
            NodeBody::Leaf { instrs } => {
                let _ = writeln!(out, "  node @{} target={} {{", node.name, node.target);
                for instr in instrs {
                    write_instr(&mut out, program, instr, "    ");
                }
                let _ = writeln!(out, "  }}");
            }
            NodeBody::ParallelFor { count, index, body } => {
                let _ = writeln!(
                    out,
                    "  parallel_for @{} target={} count={} index=%{} {{",
                    node.name,
                    node.target,
                    count,
                    index.index()
                );
                for instr in body {
                    write_instr(&mut out, program, instr, "    ");
                }
                let _ = writeln!(out, "  }}");
            }
            NodeBody::Stage(stage) => {
                let _ = writeln!(
                    out,
                    "  stage @{} target={} kind={} queries=%{} output=%{} {{",
                    node.name,
                    node.target,
                    stage.kind,
                    stage.interface.queries.index(),
                    stage.interface.output.index()
                );
                for instr in &stage.body {
                    write_instr(&mut out, program, instr, "    ");
                }
                let _ = writeln!(out, "  }}");
            }
        }
    }
    let _ = writeln!(out, "}}");
    out
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::builder::ProgramBuilder;
    use crate::stage::ScorePolarity;
    use hdc_core::element::ElementKind;

    #[test]
    fn printer_includes_values_nodes_and_annotations() {
        let mut b = ProgramBuilder::new("printme");
        let a = b.input_vector("query", ElementKind::F32, 128);
        let m = b.input_matrix("classes", ElementKind::F32, 4, 128);
        let d = b.hamming_distance(a, m);
        b.red_perf(d, 0, 64, 2);
        let l = b.arg_min(d);
        b.mark_output(l);
        let text = print_program(&b.finish());
        assert!(text.contains("program @printme"));
        assert!(text.contains("hypervector<f32, 128>"));
        assert!(text.contains("hdc.hamming_distance"));
        assert!(text.contains("!red_perf"));
        assert!(text.contains("(output)"));
    }

    #[test]
    fn printer_renders_stage_nodes() {
        let mut b = ProgramBuilder::new("stageprint");
        let q = b.input_matrix("queries", ElementKind::F32, 10, 64);
        let c = b.input_matrix("classes", ElementKind::F32, 3, 64);
        let preds = b.inference_loop("infer", q, c, ScorePolarity::Distance, |b, query| {
            b.hamming_distance(query, c)
        });
        b.mark_output(preds);
        let text = print_program(&b.finish());
        assert!(text.contains("stage @infer"));
        assert!(text.contains("kind=inference_loop"));
    }
}
