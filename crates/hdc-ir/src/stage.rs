//! High-level algorithmic stage nodes (`encoding_loop`, `training_loop`,
//! `inference_loop`, paper §3.1).
//!
//! Stage nodes carry two pieces of information:
//!
//! 1. A *coarse-grain semantic descriptor* ([`StageKind`], [`StageInterface`],
//!    [`ScorePolarity`]) that the accelerator back ends map directly onto
//!    their functional interface (program the class memory once, then stream
//!    samples through `execute_retrain` / `execute_inference`).
//! 2. An *implementation body*: a per-sample sequence of granular
//!    [`HdcInstr`]s used when the stage runs on a CPU or GPU, where the
//!    concrete encoding / similarity algorithm is up to the application
//!    developer.
//!
//! This mirrors the paper's design: the stage primitives take an
//! "implementation function" argument that is executed on CPUs/GPUs, while
//! accelerators use their built-in coarse-grain operations.

use crate::instr::HdcInstr;
use crate::program::ValueId;

/// Which algorithmic stage a [`StageNode`] represents.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum StageKind {
    /// `encoding_loop`: encode every row of the query matrix.
    Encoding,
    /// `training_loop`: iterate over labelled samples for `epochs` epochs,
    /// updating the class hypermatrix on mispredictions.
    Training {
        /// Number of passes over the training set.
        epochs: usize,
    },
    /// `inference_loop`: classify every row of the query matrix.
    Inference,
}

impl StageKind {
    /// Short name used by the printer and profiles.
    pub fn name(&self) -> &'static str {
        match self {
            StageKind::Encoding => "encoding_loop",
            StageKind::Training { .. } => "training_loop",
            StageKind::Inference => "inference_loop",
        }
    }
}

impl std::fmt::Display for StageKind {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            StageKind::Training { epochs } => write!(f, "training_loop(epochs={epochs})"),
            other => f.write_str(other.name()),
        }
    }
}

/// Whether the per-sample score produced by a stage body is a similarity
/// (higher is better, use arg-max) or a dissimilarity/distance (lower is
/// better, use arg-min).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum ScorePolarity {
    /// Scores are similarities; the predicted class is the arg-max.
    Similarity,
    /// Scores are distances; the predicted class is the arg-min.
    Distance,
}

impl ScorePolarity {
    /// Select the winning index from a score slice according to the polarity.
    pub fn select(&self, scores: &[f64]) -> Option<usize> {
        match self {
            ScorePolarity::Similarity => hdc_core::ops::arg_max(scores),
            ScorePolarity::Distance => hdc_core::ops::arg_min(scores),
        }
    }
}

/// The program-level values a stage node reads and writes.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct StageInterface {
    /// The query hypermatrix: raw features for `encoding_loop`, encoded
    /// hypervectors for `training_loop` / `inference_loop`. One row per
    /// sample.
    pub queries: ValueId,
    /// The class hypermatrix (`None` for `encoding_loop`).
    pub classes: Option<ValueId>,
    /// Ground-truth labels (index vector), required by `training_loop`.
    pub labels: Option<ValueId>,
    /// The stage output: the encoded hypermatrix for `encoding_loop`, the
    /// predicted-label index vector for `inference_loop`, and the updated
    /// class hypermatrix (aliasing `classes`) for `training_loop`.
    pub output: ValueId,
}

/// A coarse-grain algorithmic stage node.
#[derive(Debug, Clone, PartialEq)]
pub struct StageNode {
    /// Which stage this is.
    pub kind: StageKind,
    /// Program-level inputs and outputs.
    pub interface: StageInterface,
    /// Whether body scores are similarities or distances.
    pub polarity: ScorePolarity,
    /// Per-sample implementation body used on CPU / GPU targets.
    pub body: Vec<HdcInstr>,
    /// Value slot the executor writes the current sample (one row of
    /// `interface.queries`) into before running the body.
    pub body_query: ValueId,
    /// Value slot the body leaves its per-sample result in: the encoded
    /// hypervector for `encoding_loop`, the score vector (one entry per
    /// class) for `training_loop` / `inference_loop`.
    pub body_result: ValueId,
    /// Values that stay resident on the device across loop iterations
    /// (class hypermatrix, projection matrix). Populated by the
    /// data-movement pass; an empty list means every iteration re-transfers
    /// its inputs, which is what the unoptimized accelerator code would do.
    pub persistent_values: Vec<ValueId>,
}

impl StageNode {
    /// Iterate over every value the stage reads (interface plus body reads).
    pub fn read_values(&self) -> Vec<ValueId> {
        let mut out = vec![self.interface.queries];
        if let Some(c) = self.interface.classes {
            out.push(c);
        }
        if let Some(l) = self.interface.labels {
            out.push(l);
        }
        for instr in &self.body {
            out.extend(instr.read_values());
        }
        out.sort_unstable();
        out.dedup();
        out
    }

    /// Values written by the stage (its output plus body writes).
    pub fn written_values(&self) -> Vec<ValueId> {
        let mut out = vec![self.interface.output];
        for instr in &self.body {
            out.extend(instr.written_values());
        }
        out.sort_unstable();
        out.dedup();
        out
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::ops::HdcOp;

    #[test]
    fn stage_kind_names() {
        assert_eq!(StageKind::Encoding.name(), "encoding_loop");
        assert_eq!(StageKind::Inference.to_string(), "inference_loop");
        assert_eq!(
            StageKind::Training { epochs: 5 }.to_string(),
            "training_loop(epochs=5)"
        );
    }

    #[test]
    fn polarity_selection() {
        let scores = [0.1, 0.9, 0.4];
        assert_eq!(ScorePolarity::Similarity.select(&scores), Some(1));
        assert_eq!(ScorePolarity::Distance.select(&scores), Some(0));
        assert_eq!(ScorePolarity::Similarity.select(&[]), None);
    }

    #[test]
    fn read_written_values_include_interface_and_body() {
        let queries = ValueId::new(0);
        let classes = ValueId::new(1);
        let output = ValueId::new(2);
        let body_query = ValueId::new(3);
        let body_result = ValueId::new(4);
        let stage = StageNode {
            kind: StageKind::Inference,
            interface: StageInterface {
                queries,
                classes: Some(classes),
                labels: None,
                output,
            },
            polarity: ScorePolarity::Distance,
            body: vec![HdcInstr::new(
                HdcOp::HammingDistance,
                vec![body_query.into(), classes.into()],
                Some(body_result),
            )],
            body_query,
            body_result,
            persistent_values: vec![],
        };
        let reads = stage.read_values();
        assert!(reads.contains(&queries));
        assert!(reads.contains(&classes));
        assert!(reads.contains(&body_query));
        let writes = stage.written_values();
        assert!(writes.contains(&output));
        assert!(writes.contains(&body_result));
    }
}
