//! The IR verifier: def-before-use, shape compatibility, perforation
//! legality and stage-interface consistency checks.

use crate::instr::{HdcInstr, Operand};
use crate::ops::HdcOp;
use crate::program::{NodeBody, Program, ValueId};
use crate::stage::{StageKind, StageNode};
use crate::types::ValueType;
use std::fmt;

/// A collection of verification failures.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct VerifyErrors {
    /// Human-readable messages, one per failure.
    pub messages: Vec<String>,
}

impl fmt::Display for VerifyErrors {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        writeln!(
            f,
            "IR verification failed ({} errors):",
            self.messages.len()
        )?;
        for m in &self.messages {
            writeln!(f, "  - {m}")?;
        }
        Ok(())
    }
}

impl std::error::Error for VerifyErrors {}

struct Checker<'a> {
    program: &'a Program,
    errors: Vec<String>,
}

impl<'a> Checker<'a> {
    fn err(&mut self, node: &str, msg: String) {
        self.errors.push(format!("[{node}] {msg}"));
    }

    fn value_ty(&self, v: ValueId) -> Option<ValueType> {
        if v.index() < self.program.values().len() {
            Some(self.program.value(v).ty)
        } else {
            None
        }
    }

    fn check_instr(&mut self, node: &str, instr: &HdcInstr) {
        // operand value ids must exist
        for op in &instr.operands {
            if let Operand::Value(v) = op {
                if self.value_ty(*v).is_none() {
                    self.err(
                        node,
                        format!("{}: operand {} out of range", instr.op, v.index()),
                    );
                    return;
                }
            }
        }
        if let Some(r) = instr.result {
            if self.value_ty(r).is_none() {
                self.err(node, format!("{}: result value out of range", instr.op));
                return;
            }
        }
        self.check_arity_and_shapes(node, instr);
        self.check_perforation(node, instr);
    }

    fn operand_value_ty(&self, instr: &HdcInstr, idx: usize) -> Option<ValueType> {
        instr
            .operands
            .get(idx)
            .and_then(Operand::as_value)
            .and_then(|v| self.value_ty(v))
    }

    fn check_arity_and_shapes(&mut self, node: &str, instr: &HdcInstr) {
        let op = &instr.op;
        let n = instr.operands.len();
        let expect = |checker: &mut Self, cond: bool, msg: String| {
            if !cond {
                checker.err(node, msg);
            }
        };
        match op {
            HdcOp::Zero
            | HdcOp::Random { .. }
            | HdcOp::Gaussian { .. }
            | HdcOp::RandomBipolar { .. } => {
                expect(self, n == 0, format!("{op}: expected 0 operands, got {n}"));
                expect(
                    self,
                    instr.result.is_some(),
                    format!("{op}: missing result"),
                );
            }
            HdcOp::Sign
            | HdcOp::SignFlip
            | HdcOp::AbsoluteValue
            | HdcOp::CosineElementwise
            | HdcOp::TypeCast { .. }
            | HdcOp::L2Norm
            | HdcOp::ArgMin
            | HdcOp::ArgMax
            | HdcOp::MatrixTranspose => {
                expect(self, n == 1, format!("{op}: expected 1 operand, got {n}"));
            }
            HdcOp::WrapShift | HdcOp::GetMatrixRow => {
                expect(self, n == 2, format!("{op}: expected 2 operands, got {n}"));
            }
            HdcOp::ArgTopK { k } => {
                expect(self, n == 1, format!("{op}: expected 1 operand, got {n}"));
                let k = *k;
                if k == 0 {
                    self.err(node, format!("{op}: k must be at least 1"));
                }
                // k may not exceed the number of candidate scores (the
                // vector length / matrix column count), and the result must
                // be an index vector sized k (vector) or rows*k (matrix).
                if let Some(input_ty) = self.operand_value_ty(instr, 0) {
                    let (candidates, expected_len) = match input_ty {
                        ValueType::HyperVector { dim, .. } => (Some(dim), Some(k)),
                        ValueType::HyperMatrix { rows, cols, .. } => (Some(cols), Some(rows * k)),
                        _ => (None, None),
                    };
                    match candidates {
                        Some(c) if k > c => self.err(
                            node,
                            format!("{op}: k = {k} exceeds the {c} candidate scores"),
                        ),
                        None => self.err(
                            node,
                            format!("{op}: operand must be a hypervector or hypermatrix"),
                        ),
                        _ => {}
                    }
                    if let (Some(expected), Some(r)) = (expected_len, instr.result) {
                        match self.value_ty(r) {
                            Some(ValueType::IndexVector { len }) if len == expected => {}
                            Some(other) => self.err(
                                node,
                                format!("{op}: result must be indices<{expected}>, got {other}"),
                            ),
                            None => {}
                        }
                    }
                }
            }
            HdcOp::GetElement => {
                expect(
                    self,
                    n == 2 || n == 3,
                    format!("{op}: expected 2-3 operands, got {n}"),
                );
            }
            HdcOp::SetMatrixRow | HdcOp::AccumulateRow => {
                expect(self, n == 3, format!("{op}: expected 3 operands, got {n}"));
                // The executor updates operand 0 in place and reads operand 1;
                // both must be value references, not immediates.
                expect(
                    self,
                    instr.operands.first().and_then(Operand::as_value).is_some(),
                    format!("{op}: first operand must be a matrix value reference"),
                );
                expect(
                    self,
                    instr.operands.get(1).and_then(Operand::as_value).is_some(),
                    format!("{op}: second operand must be a hypervector value reference"),
                );
                if let (Some(m), Some(v)) = (
                    self.operand_value_ty(instr, 0),
                    self.operand_value_ty(instr, 1),
                ) {
                    if let (
                        ValueType::HyperMatrix { cols, .. },
                        ValueType::HyperVector { dim, .. },
                    ) = (m, v)
                    {
                        if cols != dim {
                            self.err(
                                node,
                                format!(
                                    "{op}: row length {dim} does not match matrix columns {cols}"
                                ),
                            );
                        }
                    }
                }
            }
            HdcOp::Elementwise(_) => {
                expect(self, n == 2, format!("{op}: expected 2 operands, got {n}"));
                if let (Some(a), Some(b)) = (
                    self.operand_value_ty(instr, 0),
                    self.operand_value_ty(instr, 1),
                ) {
                    let dims_match = match (a, b) {
                        (
                            ValueType::HyperVector { dim: da, .. },
                            ValueType::HyperVector { dim: db, .. },
                        ) => da == db,
                        (
                            ValueType::HyperMatrix {
                                rows: ra, cols: ca, ..
                            },
                            ValueType::HyperMatrix {
                                rows: rb, cols: cb, ..
                            },
                        ) => ra == rb && ca == cb,
                        (ValueType::Scalar(_), ValueType::Scalar(_)) => true,
                        _ => false,
                    };
                    if !dims_match {
                        self.err(
                            node,
                            format!("{op}: operand shapes {a} and {b} are incompatible"),
                        );
                    }
                }
            }
            HdcOp::CosineSimilarity | HdcOp::HammingDistance => {
                expect(self, n == 2, format!("{op}: expected 2 operands, got {n}"));
                if let (Some(a), Some(b)) = (
                    self.operand_value_ty(instr, 0),
                    self.operand_value_ty(instr, 1),
                ) {
                    let (da, db) = (a.reduction_dim(), b.reduction_dim());
                    if let (Some(da), Some(db)) = (da, db) {
                        if da != db {
                            self.err(
                                node,
                                format!("{op}: reduction dimensions {da} and {db} differ"),
                            );
                        }
                    } else {
                        self.err(
                            node,
                            format!("{op}: operands must be hypervectors or hypermatrices"),
                        );
                    }
                }
            }
            HdcOp::MatMul => {
                expect(self, n == 2, format!("{op}: expected 2 operands, got {n}"));
                if let (Some(a), Some(b)) = (
                    self.operand_value_ty(instr, 0),
                    self.operand_value_ty(instr, 1),
                ) {
                    let in_dim = match a {
                        ValueType::HyperVector { dim, .. } => Some(dim),
                        ValueType::HyperMatrix { cols, .. } => Some(cols),
                        _ => None,
                    };
                    let proj_cols = match b {
                        ValueType::HyperMatrix { cols, .. } => Some(cols),
                        _ => None,
                    };
                    match (in_dim, proj_cols) {
                        (Some(i), Some(p)) if i != p => {
                            self.err(node, format!("matmul: input dimension {i} does not match projection columns {p}"));
                        }
                        (None, _) | (_, None) => {
                            self.err(
                                node,
                                "matmul: operands must be (vector|matrix, matrix)".to_string(),
                            );
                        }
                        _ => {}
                    }
                }
            }
        }
    }

    fn check_perforation(&mut self, node: &str, instr: &HdcInstr) {
        if let Some(perf) = instr.perforation {
            if !instr.op.supports_perforation() {
                self.err(
                    node,
                    format!(
                        "{} carries a red_perf annotation but is not a perforable reduction",
                        instr.op
                    ),
                );
                return;
            }
            if let Some(ty) = self.operand_value_ty(instr, 0) {
                if let Some(dim) = ty.reduction_dim() {
                    if let Err(e) = perf.validate(dim) {
                        self.err(node, format!("{}: {e}", instr.op));
                    }
                }
            }
        }
    }

    fn check_stage(&mut self, node: &str, stage: &StageNode) {
        let queries_ty = self.value_ty(stage.interface.queries);
        let (q_rows, q_cols) = match queries_ty {
            Some(ValueType::HyperMatrix { rows, cols, .. }) => (rows, cols),
            _ => {
                self.err(node, "stage queries must be a hypermatrix".to_string());
                return;
            }
        };
        match self.value_ty(stage.body_query) {
            Some(ValueType::HyperVector { dim, .. }) => {
                if dim != q_cols {
                    self.err(
                        node,
                        format!("stage body query dimension {dim} does not match queries columns {q_cols}"),
                    );
                }
            }
            _ => self.err(node, "stage body query must be a hypervector".to_string()),
        }
        if stage.body.is_empty() {
            self.err(node, "stage has an empty implementation body".to_string());
        }
        if !stage
            .body
            .iter()
            .any(|i| i.written_values().contains(&stage.body_result))
        {
            self.err(node, "stage body never writes its result value".to_string());
        }
        match stage.kind {
            StageKind::Encoding => match self.value_ty(stage.interface.output) {
                Some(ValueType::HyperMatrix { rows, .. }) => {
                    if rows != q_rows {
                        self.err(
                            node,
                            format!("encoding output rows {rows} do not match query rows {q_rows}"),
                        );
                    }
                }
                _ => self.err(
                    node,
                    "encoding_loop output must be a hypermatrix".to_string(),
                ),
            },
            StageKind::Inference => {
                match self.value_ty(stage.interface.output) {
                    Some(ValueType::IndexVector { len }) => {
                        if len != q_rows {
                            self.err(
                                node,
                                format!("inference output length {len} does not match query rows {q_rows}"),
                            );
                        }
                    }
                    _ => self.err(
                        node,
                        "inference_loop output must be an index vector".to_string(),
                    ),
                }
                if stage.interface.classes.is_none() {
                    self.err(
                        node,
                        "inference_loop requires a class hypermatrix".to_string(),
                    );
                }
            }
            StageKind::Training { epochs } => {
                if epochs == 0 {
                    self.err(node, "training_loop with zero epochs".to_string());
                }
                if stage.interface.classes.is_none() {
                    self.err(
                        node,
                        "training_loop requires a class hypermatrix".to_string(),
                    );
                }
                match stage.interface.labels.and_then(|l| self.value_ty(l)) {
                    Some(ValueType::IndexVector { len }) => {
                        if len != q_rows {
                            self.err(
                                node,
                                format!("training labels length {len} does not match query rows {q_rows}"),
                            );
                        }
                    }
                    _ => self.err(
                        node,
                        "training_loop requires index-vector labels".to_string(),
                    ),
                }
            }
        }
    }
}

/// Verify a program, returning all failures at once.
///
/// # Errors
///
/// Returns [`VerifyErrors`] describing every problem found: out-of-range
/// value references, arity or shape mismatches, illegal perforation
/// annotations, malformed stage interfaces, and accelerator-targeted nodes
/// that are not coarse-grain stages.
pub fn verify(program: &Program) -> Result<(), VerifyErrors> {
    let mut checker = Checker {
        program,
        errors: Vec::new(),
    };
    for node in program.nodes() {
        match &node.body {
            NodeBody::Leaf { instrs } => {
                for instr in instrs {
                    checker.check_instr(&node.name, instr);
                }
            }
            NodeBody::ParallelFor { index, body, count } => {
                if *count == 0 {
                    checker.err(&node.name, "parallel_for with zero iterations".to_string());
                }
                match checker.value_ty(*index) {
                    Some(ValueType::Scalar(_)) => {}
                    _ => checker.err(
                        &node.name,
                        "parallel_for index must be a scalar value".to_string(),
                    ),
                }
                for instr in body {
                    checker.check_instr(&node.name, instr);
                }
            }
            NodeBody::Stage(stage) => {
                for instr in &stage.body {
                    checker.check_instr(&node.name, instr);
                }
                checker.check_stage(&node.name, stage);
            }
        }
        if node.target.is_hdc_accelerator() && !matches!(node.body, NodeBody::Stage(_)) {
            checker.err(
                &node.name,
                format!(
                    "node targets {} but is not a coarse-grain stage; accelerators only accept encoding/training/inference loops",
                    node.target
                ),
            );
        }
        if node.target.is_hdc_accelerator() {
            let has_perforation = node.instrs().iter().any(|i| i.perforation.is_some());
            if has_perforation {
                checker.err(
                    &node.name,
                    format!("red_perf annotations are not supported on {}", node.target),
                );
            }
        }
    }
    if checker.errors.is_empty() {
        Ok(())
    } else {
        Err(VerifyErrors {
            messages: checker.errors,
        })
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::builder::ProgramBuilder;
    use crate::program::{Node, NodeBody, ValueInfo, ValueRole};
    use crate::stage::{ScorePolarity, StageInterface};
    use crate::target::Target;
    use hdc_core::element::ElementKind;
    use hdc_core::Perforation;

    #[test]
    fn valid_program_passes() {
        let mut b = ProgramBuilder::new("ok");
        let a = b.input_vector("a", ElementKind::F32, 64);
        let m = b.input_matrix("m", ElementKind::F32, 4, 64);
        let d = b.hamming_distance(a, m);
        let l = b.arg_min(d);
        b.mark_output(l);
        verify(&b.finish()).unwrap();
    }

    #[test]
    fn shape_mismatch_detected() {
        let mut p = Program::new("bad");
        let a = p.add_value(ValueInfo {
            name: "a".into(),
            ty: ValueType::HyperVector {
                elem: ElementKind::F32,
                dim: 64,
            },
            role: ValueRole::Input,
        });
        let m = p.add_value(ValueInfo {
            name: "m".into(),
            ty: ValueType::HyperMatrix {
                elem: ElementKind::F32,
                rows: 4,
                cols: 128,
            },
            role: ValueRole::Input,
        });
        let r = p.add_value(ValueInfo {
            name: "r".into(),
            ty: ValueType::HyperVector {
                elem: ElementKind::F32,
                dim: 4,
            },
            role: ValueRole::Output,
        });
        p.add_node(Node {
            name: "n".into(),
            target: Target::Cpu,
            body: NodeBody::Leaf {
                instrs: vec![HdcInstr::new(
                    HdcOp::HammingDistance,
                    vec![a.into(), m.into()],
                    Some(r),
                )],
            },
        });
        let err = verify(&p).unwrap_err();
        assert!(err.to_string().contains("reduction dimensions"));
    }

    #[test]
    fn matmul_dimension_check() {
        let mut b = ProgramBuilder::new("mm");
        let x = b.input_vector("x", ElementKind::F32, 100);
        let w = b.input_matrix("w", ElementKind::F32, 2048, 617);
        let e = b.matmul(x, w);
        b.mark_output(e);
        let err = verify(&b.finish()).unwrap_err();
        assert!(err.to_string().contains("matmul"));
    }

    #[test]
    fn perforation_on_non_reduction_detected() {
        let mut p = Program::new("perf");
        let a = p.add_value(ValueInfo {
            name: "a".into(),
            ty: ValueType::HyperVector {
                elem: ElementKind::F32,
                dim: 64,
            },
            role: ValueRole::Input,
        });
        let r = p.add_value(ValueInfo {
            name: "r".into(),
            ty: ValueType::HyperVector {
                elem: ElementKind::F32,
                dim: 64,
            },
            role: ValueRole::Output,
        });
        p.add_node(Node {
            name: "n".into(),
            target: Target::Cpu,
            body: NodeBody::Leaf {
                instrs: vec![HdcInstr::new(HdcOp::Sign, vec![a.into()], Some(r))
                    .with_perforation(Perforation::strided(0, 64, 2))],
            },
        });
        let err = verify(&p).unwrap_err();
        assert!(err.to_string().contains("red_perf"));
    }

    #[test]
    fn arg_top_k_rules() {
        // Well-formed: builder-produced top-k over a score matrix verifies.
        let mut b = ProgramBuilder::new("topk_ok");
        let scores = b.input_matrix("scores", ElementKind::F32, 10, 64);
        let picks = b.arg_top_k(scores, 5);
        b.mark_output(picks);
        verify(&b.finish()).unwrap();

        // k larger than the candidate count is rejected.
        let mut b = ProgramBuilder::new("topk_big");
        let scores = b.input_vector("scores", ElementKind::F32, 4);
        let picks = b.arg_top_k(scores, 9);
        b.mark_output(picks);
        let err = verify(&b.finish()).unwrap_err();
        assert!(err.to_string().contains("exceeds the 4 candidate scores"));

        // k = 0 is rejected.
        let mut b = ProgramBuilder::new("topk_zero");
        let scores = b.input_vector("scores", ElementKind::F32, 4);
        let picks = b.arg_top_k(scores, 0);
        b.mark_output(picks);
        let err = verify(&b.finish()).unwrap_err();
        assert!(err.to_string().contains("k must be at least 1"));

        // A result slot with the wrong length is rejected.
        let mut p = Program::new("topk_len");
        let scores = p.add_value(ValueInfo {
            name: "scores".into(),
            ty: ValueType::HyperMatrix {
                elem: ElementKind::F32,
                rows: 3,
                cols: 8,
            },
            role: ValueRole::Input,
        });
        let out = p.add_value(ValueInfo {
            name: "out".into(),
            ty: ValueType::IndexVector { len: 5 },
            role: ValueRole::Output,
        });
        p.add_node(Node {
            name: "n".into(),
            target: Target::Cpu,
            body: NodeBody::Leaf {
                instrs: vec![HdcInstr::new(
                    HdcOp::ArgTopK { k: 2 },
                    vec![scores.into()],
                    Some(out),
                )],
            },
        });
        let err = verify(&p).unwrap_err();
        assert!(err.to_string().contains("result must be indices<6>"));
    }

    #[test]
    fn accelerator_nodes_must_be_stages() {
        let mut b = ProgramBuilder::new("acc");
        b.set_default_target(Target::DigitalAsic);
        let a = b.input_vector("a", ElementKind::F32, 64);
        let s = b.sign(a);
        b.mark_output(s);
        let err = verify(&b.finish()).unwrap_err();
        assert!(err.to_string().contains("coarse-grain stage"));
    }

    #[test]
    fn stage_interface_errors_detected() {
        // hand-construct an inference stage whose output has the wrong length
        let mut p = Program::new("stage");
        let queries = p.add_value(ValueInfo {
            name: "q".into(),
            ty: ValueType::HyperMatrix {
                elem: ElementKind::F32,
                rows: 10,
                cols: 64,
            },
            role: ValueRole::Input,
        });
        let classes = p.add_value(ValueInfo {
            name: "c".into(),
            ty: ValueType::HyperMatrix {
                elem: ElementKind::F32,
                rows: 4,
                cols: 64,
            },
            role: ValueRole::Input,
        });
        let out = p.add_value(ValueInfo {
            name: "out".into(),
            ty: ValueType::IndexVector { len: 5 },
            role: ValueRole::Output,
        });
        let body_query = p.add_value(ValueInfo {
            name: "bq".into(),
            ty: ValueType::HyperVector {
                elem: ElementKind::F32,
                dim: 64,
            },
            role: ValueRole::Temp,
        });
        let scores = p.add_value(ValueInfo {
            name: "scores".into(),
            ty: ValueType::HyperVector {
                elem: ElementKind::F32,
                dim: 4,
            },
            role: ValueRole::Temp,
        });
        p.add_node(Node {
            name: "infer".into(),
            target: Target::Cpu,
            body: NodeBody::Stage(StageNode {
                kind: StageKind::Inference,
                interface: StageInterface {
                    queries,
                    classes: Some(classes),
                    labels: None,
                    output: out,
                },
                polarity: ScorePolarity::Distance,
                body: vec![HdcInstr::new(
                    HdcOp::HammingDistance,
                    vec![body_query.into(), classes.into()],
                    Some(scores),
                )],
                body_query,
                body_result: scores,
                persistent_values: vec![],
            }),
        });
        let err = verify(&p).unwrap_err();
        assert!(err.to_string().contains("inference output length"));
    }

    #[test]
    fn in_place_ops_require_value_operands() {
        let mut p = Program::new("imm");
        let m = p.add_value(ValueInfo {
            name: "m".into(),
            ty: ValueType::HyperMatrix {
                elem: ElementKind::F32,
                rows: 2,
                cols: 4,
            },
            role: ValueRole::Input,
        });
        let v = p.add_value(ValueInfo {
            name: "v".into(),
            ty: ValueType::HyperVector {
                elem: ElementKind::F32,
                dim: 4,
            },
            role: ValueRole::Output,
        });
        // Immediate in the matrix position: must be rejected, not executed.
        p.add_node(Node {
            name: "n".into(),
            target: Target::Cpu,
            body: NodeBody::Leaf {
                instrs: vec![HdcInstr::new(
                    HdcOp::SetMatrixRow,
                    vec![Operand::ImmInt(0), v.into(), Operand::ImmInt(0)],
                    None,
                )],
            },
        });
        let err = verify(&p).unwrap_err();
        assert!(err
            .to_string()
            .contains("first operand must be a matrix value"));

        let mut p2 = Program::new("imm2");
        let m2 = p2.add_value(ValueInfo {
            name: "m".into(),
            ty: p.value(m).ty,
            role: ValueRole::Output,
        });
        p2.add_node(Node {
            name: "n".into(),
            target: Target::Cpu,
            body: NodeBody::Leaf {
                instrs: vec![HdcInstr::new(
                    HdcOp::AccumulateRow,
                    vec![m2.into(), Operand::ImmInt(1), Operand::ImmInt(0)],
                    None,
                )],
            },
        });
        let err = verify(&p2).unwrap_err();
        assert!(err
            .to_string()
            .contains("second operand must be a hypervector value"));
    }

    #[test]
    fn out_of_range_value_detected() {
        let mut p = Program::new("oob");
        p.add_node(Node {
            name: "n".into(),
            target: Target::Cpu,
            body: NodeBody::Leaf {
                instrs: vec![HdcInstr::new(
                    HdcOp::Sign,
                    vec![ValueId::new(42).into()],
                    None,
                )],
            },
        });
        assert!(verify(&p).is_err());
    }
}
