//! HDC instructions: an [`HdcOp`] applied to operands, producing a value.

use crate::ops::HdcOp;
use crate::program::ValueId;
use hdc_core::Perforation;

/// An operand of an [`HdcInstr`].
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum Operand {
    /// A reference to a program value slot.
    Value(ValueId),
    /// An immediate integer (shift amounts, row indices known at compile
    /// time, epoch counts).
    ImmInt(i64),
}

impl Operand {
    /// The referenced value, if this operand is a value reference.
    pub fn as_value(&self) -> Option<ValueId> {
        match self {
            Operand::Value(v) => Some(*v),
            Operand::ImmInt(_) => None,
        }
    }

    /// The immediate integer, if this operand is an immediate.
    pub fn as_imm(&self) -> Option<i64> {
        match self {
            Operand::Value(_) => None,
            Operand::ImmInt(i) => Some(*i),
        }
    }
}

impl From<ValueId> for Operand {
    fn from(v: ValueId) -> Self {
        Operand::Value(v)
    }
}

impl From<i64> for Operand {
    fn from(i: i64) -> Self {
        Operand::ImmInt(i)
    }
}

impl std::fmt::Display for Operand {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            Operand::Value(v) => write!(f, "%{}", v.index()),
            Operand::ImmInt(i) => write!(f, "{i}"),
        }
    }
}

/// One HDC intrinsic instruction.
///
/// Instructions read their operands, compute the operation, and (for all ops
/// except `set_matrix_row` / `accumulate_row`, which update their first
/// operand in place) write the result into `result`.
#[derive(Debug, Clone, PartialEq)]
pub struct HdcInstr {
    /// The operation.
    pub op: HdcOp,
    /// Operand list; the per-op operand arity is checked by the verifier.
    pub operands: Vec<Operand>,
    /// The value slot receiving the result, if any.
    pub result: Option<ValueId>,
    /// Optional reduction perforation annotation (`red_perf`, §4.2).
    pub perforation: Option<Perforation>,
}

impl HdcInstr {
    /// Create an instruction with no perforation annotation.
    pub fn new(op: HdcOp, operands: Vec<Operand>, result: Option<ValueId>) -> Self {
        HdcInstr {
            op,
            operands,
            result,
            perforation: None,
        }
    }

    /// Attach a perforation annotation, returning the modified instruction.
    pub fn with_perforation(mut self, perforation: Perforation) -> Self {
        self.perforation = Some(perforation);
        self
    }

    /// Iterate over the value slots read by this instruction.
    pub fn read_values(&self) -> impl Iterator<Item = ValueId> + '_ {
        self.operands.iter().filter_map(Operand::as_value)
    }

    /// The value slots written by this instruction. In-place ops
    /// (`set_matrix_row`, `accumulate_row`) write their first operand.
    pub fn written_values(&self) -> Vec<ValueId> {
        let mut out = Vec::new();
        if matches!(self.op, HdcOp::SetMatrixRow | HdcOp::AccumulateRow) {
            if let Some(v) = self.operands.first().and_then(Operand::as_value) {
                out.push(v);
            }
        }
        if let Some(r) = self.result {
            out.push(r);
        }
        out
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::program::ValueId;

    #[test]
    fn operand_conversions() {
        let v = ValueId::new(3);
        let ov: Operand = v.into();
        assert_eq!(ov.as_value(), Some(v));
        assert_eq!(ov.as_imm(), None);
        let oi: Operand = 7i64.into();
        assert_eq!(oi.as_imm(), Some(7));
        assert_eq!(oi.as_value(), None);
        assert_eq!(ov.to_string(), "%3");
        assert_eq!(oi.to_string(), "7");
    }

    #[test]
    fn read_written_values() {
        let a = ValueId::new(0);
        let b = ValueId::new(1);
        let r = ValueId::new(2);
        let instr = HdcInstr::new(HdcOp::MatMul, vec![a.into(), b.into()], Some(r));
        assert_eq!(instr.read_values().collect::<Vec<_>>(), vec![a, b]);
        assert_eq!(instr.written_values(), vec![r]);

        let inplace = HdcInstr::new(
            HdcOp::SetMatrixRow,
            vec![a.into(), b.into(), Operand::ImmInt(0)],
            None,
        );
        assert_eq!(inplace.written_values(), vec![a]);
    }

    #[test]
    fn perforation_attachment() {
        let instr = HdcInstr::new(HdcOp::HammingDistance, vec![], None)
            .with_perforation(hdc_core::Perforation::strided(0, 2048, 2));
        assert!(instr.perforation.is_some());
        assert_eq!(instr.perforation.unwrap().stride, 2);
    }
}
