//! Servable models: trained app artifacts + an inference-only program
//! template instantiated per batch size.
//!
//! A [`ServableModel`] is built *from* a trained app
//! ([`ClassificationApp`], [`ClusteringApp`], [`MatchingApp`]) in two
//! steps:
//!
//! 1. **Harvest.** The app's compiled program is cloned, its trained
//!    artifacts (projection matrix, binarized class memory, final
//!    centroids, encoded library) are flipped to
//!    [`ValueRole::Output`], and the program is run once. The harvested
//!    [`Value`]s are `Arc`-backed, so the model holds them — and later
//!    binds them to every window's executor — by refcount bump.
//! 2. **Template.** A fresh *inference-only* program is built against the
//!    same artifact shapes: `queries` input → random-projection encode →
//!    score against the class memory (or all-pairs match against the
//!    library). The template is compiled with the same binarization
//!    configuration the app used (detected from the harvested artifact
//!    representation: a bit-packed class memory means the app was
//!    binarized).
//!
//! IR programs carry static shapes, so a template cannot execute a batch
//! of arbitrary size directly. The model instead *re-rows* the template:
//! the constructor builds the template twice with two different sentinel
//! row counts, and every value whose declared shape differs between the
//! two builds is recorded as batch-scaled (with its per-request
//! multiplier — `k` for top-k index outputs). [`ServableModel::program_for`]
//! clones the template, rewrites those shapes for the requested batch
//! size, and caches the result per size; the executor re-verifies each
//! instantiation. This shape-diff approach needs no assumptions about
//! which dimensions collide with the sentinel.

use crate::{Result, ServeError};
use hdc_apps::{ClassificationApp, ClusteringApp, MatchingApp};
use hdc_core::element::ElementKind;
use hdc_core::HyperMatrix;
use hdc_ir::builder::ProgramBuilder;
use hdc_ir::program::{Program, ValueId, ValueRole};
use hdc_ir::stage::ScorePolarity;
use hdc_ir::types::ValueType;
use hdc_passes::{compile, CompileOptions};
use hdc_runtime::{ExecStats, Executor, Outputs, StageTraceEntry, Value};
use std::collections::HashMap;
use std::sync::{Arc, Mutex};

/// The two sentinel row counts the constructor builds templates with; any
/// declared dimension that differs between the two builds scales with the
/// batch size. Primes, so accidental collisions with model dimensions
/// cannot produce a consistent false positive across both builds.
const SENTINEL_A: usize = 997;
const SENTINEL_B: usize = 1009;

/// One request's inference result.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum Prediction {
    /// Predicted class / cluster index (classification, cluster assign).
    Label(usize),
    /// Ranked top-k candidate indices (spectral matching).
    TopK(Vec<usize>),
}

/// What the template's named output holds per request row.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
enum OutputKind {
    /// One label index per row.
    Label,
    /// `k` ranked indices per row.
    TopK(usize),
}

/// A value whose declared shape scales with the batch size.
#[derive(Debug, Clone, Copy)]
struct ScaledValue {
    id: ValueId,
    /// Entries per request row (1 for query/encode rows and label outputs,
    /// `k` for flattened top-k index vectors).
    multiplier: usize,
}

/// The outcome of one window execution: per-row predictions plus the
/// executor's counters and stage trace for the stats endpoint.
#[derive(Debug, Clone)]
pub struct WindowOutcome {
    /// One prediction per submitted row, in row order.
    pub predictions: Vec<Prediction>,
    /// Executor counters for the window run.
    pub stats: ExecStats,
    /// Per-stage trace of the window run.
    pub stage_trace: Vec<StageTraceEntry>,
}

/// A trained model in servable form: `Arc`-shared artifacts plus a
/// batch-size-parametric compiled program. Cheap to share (`Arc` it into
/// the [`ModelRegistry`](crate::ModelRegistry)); all methods take `&self`.
#[derive(Debug)]
pub struct ServableModel {
    name: String,
    /// Compiled inference template at `SENTINEL_A` rows.
    template: Program,
    /// Values in `template` whose shapes scale with the batch size.
    scaled: Vec<ScaledValue>,
    /// Model artifacts bound to every executor, by input name.
    bindings: Vec<(String, Value)>,
    /// Name of the value holding the per-row results.
    output_name: String,
    output_kind: OutputKind,
    /// Query feature count (submission-time validation).
    features: usize,
    /// The dense training accumulator the frozen class memory was signed
    /// from, when the model supports online adaptation (classifiers only).
    train_state: Option<Value>,
    /// Re-rowed program cache, keyed by batch size.
    programs: Mutex<HashMap<usize, Arc<Program>>>,
}

impl ServableModel {
    /// Serve a trained classification app: encode with its projection
    /// matrix, score against its (binarized or dense) trained class
    /// memory, return one [`Prediction::Label`] per query.
    ///
    /// # Errors
    ///
    /// Returns [`ServeError::ModelBuild`] if harvesting the app's
    /// artifacts or compiling the serving template fails.
    pub fn classifier(name: &str, app: &ClassificationApp) -> Result<Self> {
        let harvested = app
            .harvest_artifacts()
            .map_err(|e| ServeError::ModelBuild(e.to_string()))?;
        Self::classifier_from_artifacts(
            name,
            app.dataset().meta.features,
            harvested.rp_matrix,
            harvested.class_bits,
            Some(harvested.class_hvs),
        )
    }

    /// Build a classifier model directly from harvested (or re-frozen)
    /// artifacts: a projection matrix, a frozen class memory, and
    /// optionally the dense training accumulator the frozen memory was
    /// signed from. This is the publication path of the online trainer:
    /// after shadow updates, a new generation is assembled from the same
    /// projection `Value` (a refcount bump) plus the re-frozen memory.
    ///
    /// # Errors
    ///
    /// Returns [`ServeError::ModelBuild`] if the artifact shapes disagree
    /// or template compilation fails.
    pub fn classifier_from_artifacts(
        name: &str,
        features: usize,
        rp: Value,
        classes: Value,
        train_state: Option<Value>,
    ) -> Result<Self> {
        Self::scoring_model(
            name,
            features,
            rp,
            classes,
            ScorePolarity::Distance,
            ScoreOp::Hamming,
            train_state,
        )
    }

    /// Serve a trained clustering app as a cluster-assignment model:
    /// encode with its projection matrix, score against its final
    /// centroids, return the nearest centroid index per query.
    ///
    /// # Errors
    ///
    /// Returns [`ServeError::ModelBuild`] if harvesting the app's
    /// artifacts or compiling the serving template fails.
    pub fn cluster_assigner(name: &str, app: &ClusteringApp) -> Result<Self> {
        let dataset = app.dataset();
        let centroid_name = format!("centroids_{}", app.rounds());
        let harvested = harvest(
            app.program(),
            &[("samples", Value::matrix(dataset.train.features.clone()))],
            &["rp_matrix", &centroid_name],
        )?;
        let rp = harvested[0].clone();
        let centroids = harvested[1].clone();
        Self::scoring_model(
            name,
            dataset.meta.features,
            rp,
            centroids,
            ScorePolarity::Similarity,
            ScoreOp::Cosine,
            None,
        )
    }

    /// Serve a trained matching app: encode queries with its projection
    /// matrix, score all pairs against its encoded reference library,
    /// return the ranked top-k library indices per query
    /// ([`Prediction::TopK`]).
    ///
    /// # Errors
    ///
    /// Returns [`ServeError::ModelBuild`] if harvesting the app's
    /// artifacts or compiling the serving template fails.
    pub fn matcher(name: &str, app: &MatchingApp) -> Result<Self> {
        let dataset = app.dataset();
        let harvested = harvest(
            app.program(),
            &[
                ("library", Value::matrix(dataset.train.features.clone())),
                ("queries", Value::matrix(dataset.test.features.clone())),
            ],
            &["rp_matrix", "encode_library.encoded"],
        )?;
        let rp = harvested[0].clone();
        let library = harvested[1].clone();
        let k = app.k();
        let features = dataset.meta.features;
        let (dim, _) = matrix_shape(&rp, "rp_matrix")?;
        let (lib_rows, lib_cols) = matrix_shape(&library, "encoded library")?;
        if lib_cols != dim {
            return Err(ServeError::ModelBuild(format!(
                "encoded library cols {lib_cols} != projection dim {dim}"
            )));
        }
        let binarized = matches!(library, Value::BitMatrix(_));
        let build = |rows: usize| -> Result<Program> {
            let mut b = ProgramBuilder::new(format!("serve_{name}"));
            let queries = b.input_matrix("queries", ElementKind::F64, rows, features);
            let rp_in = b.input_matrix("rp_matrix", ElementKind::F64, dim, features);
            let lib_elem = if binarized {
                ElementKind::Bit
            } else {
                ElementKind::F64
            };
            let lib_in = b.input_matrix("library_enc", lib_elem, lib_rows, dim);
            let enc = b.encoding_loop("encode", queries, dim, |b, q| {
                let e = b.matmul(q, rp_in);
                b.sign(e)
            });
            let scores = b.cossim(enc, lib_in);
            b.name_value(scores, "scores");
            let top_k = b.arg_top_k(scores, k);
            b.name_value(top_k, "preds");
            b.mark_output(top_k);
            let mut program = b.finish();
            compile_template(&mut program, binarized)?;
            Ok(program)
        };
        Self::from_builds(
            name,
            build,
            vec![
                ("rp_matrix".to_string(), rp),
                ("library_enc".to_string(), library),
            ],
            OutputKind::TopK(k),
            features,
            None,
        )
    }

    /// Shared constructor for the encode-then-score models (classifier and
    /// cluster assigner): per-query scoring against a fixed class/centroid
    /// memory inside an `inference_loop`.
    fn scoring_model(
        name: &str,
        features: usize,
        rp: Value,
        classes: Value,
        polarity: ScorePolarity,
        score_op: ScoreOp,
        train_state: Option<Value>,
    ) -> Result<Self> {
        let (dim, rp_cols) = matrix_shape(&rp, "rp_matrix")?;
        if rp_cols != features {
            return Err(ServeError::ModelBuild(format!(
                "projection matrix cols {rp_cols} != feature count {features}"
            )));
        }
        let (class_rows, class_cols) = matrix_shape(&classes, "class memory")?;
        if class_cols != dim {
            return Err(ServeError::ModelBuild(format!(
                "class memory cols {class_cols} != projection dim {dim}"
            )));
        }
        let binarized = matches!(classes, Value::BitMatrix(_));
        let build = |rows: usize| -> Result<Program> {
            let mut b = ProgramBuilder::new(format!("serve_{name}"));
            let queries = b.input_matrix("queries", ElementKind::F64, rows, features);
            let rp_in = b.input_matrix("rp_matrix", ElementKind::F64, dim, features);
            let class_elem = if binarized {
                ElementKind::Bit
            } else {
                ElementKind::F64
            };
            let class_in = b.input_matrix("class_memory", class_elem, class_rows, dim);
            let enc = b.encoding_loop("encode", queries, dim, |b, q| {
                let e = b.matmul(q, rp_in);
                b.sign(e)
            });
            let preds = b.inference_loop("infer", enc, class_in, polarity, |b, q| match score_op {
                ScoreOp::Hamming => b.hamming_distance(q, class_in),
                ScoreOp::Cosine => b.cossim(q, class_in),
            });
            b.name_value(preds, "preds");
            b.mark_output(preds);
            let mut program = b.finish();
            compile_template(&mut program, binarized)?;
            Ok(program)
        };
        Self::from_builds(
            name,
            build,
            vec![
                ("rp_matrix".to_string(), rp),
                ("class_memory".to_string(), classes),
            ],
            OutputKind::Label,
            features,
            train_state,
        )
    }

    /// Build the template at both sentinel row counts, diff the declared
    /// value shapes to find the batch-scaled values, and assemble the
    /// model.
    fn from_builds(
        name: &str,
        build: impl Fn(usize) -> Result<Program>,
        bindings: Vec<(String, Value)>,
        output_kind: OutputKind,
        features: usize,
        train_state: Option<Value>,
    ) -> Result<Self> {
        let template = build(SENTINEL_A)?;
        let alt = build(SENTINEL_B)?;
        let scaled = diff_scaled_values(&template, &alt)?;
        Ok(ServableModel {
            name: name.to_string(),
            template,
            scaled,
            bindings,
            output_name: "preds".to_string(),
            output_kind,
            features,
            train_state,
            programs: Mutex::new(HashMap::new()),
        })
    }

    /// Model name (registry key candidate).
    pub fn name(&self) -> &str {
        &self.name
    }

    /// Query feature count; submissions of any other length are rejected.
    pub fn features(&self) -> usize {
        self.features
    }

    /// Indices returned per request: 1 for label models, `k` for top-k
    /// matchers.
    pub fn outputs_per_query(&self) -> usize {
        match self.output_kind {
            OutputKind::Label => 1,
            OutputKind::TopK(k) => k,
        }
    }

    /// The projection matrix artifact bound to every window executor.
    pub fn projection(&self) -> &Value {
        &self
            .bindings
            .iter()
            .find(|(name, _)| name == "rp_matrix")
            .expect("every servable model binds a projection matrix")
            .1
    }

    /// The frozen class/centroid memory artifact, if this model scores
    /// against one (classifiers and cluster assigners; `None` for
    /// matchers, which bind an encoded library instead).
    pub fn class_memory(&self) -> Option<&Value> {
        self.bindings
            .iter()
            .find(|(name, _)| name == "class_memory")
            .map(|(_, v)| v)
    }

    /// The dense training accumulator the frozen class memory was signed
    /// from, when the model was built with one (the online trainer seeds
    /// its shadow memory from this).
    pub fn train_state(&self) -> Option<&Value> {
        self.train_state.as_ref()
    }

    /// Whether the serving template runs the bit-packed (binarized)
    /// representation.
    pub fn binarized(&self) -> bool {
        self.bindings
            .iter()
            .any(|(_, v)| matches!(v, Value::BitMatrix(_) | Value::Bits(_)))
    }

    /// Validate a query payload the way the service does at submission.
    ///
    /// # Errors
    ///
    /// [`ServeError::EmptyQuery`], [`ServeError::WrongDimension`], or
    /// [`ServeError::NonFinitePayload`].
    pub fn validate_query(&self, row: &[f64]) -> Result<()> {
        if row.is_empty() {
            return Err(ServeError::EmptyQuery);
        }
        if row.len() != self.features {
            return Err(ServeError::WrongDimension {
                expected: self.features,
                got: row.len(),
            });
        }
        if let Some(index) = row.iter().position(|x| !x.is_finite()) {
            return Err(ServeError::NonFinitePayload { index });
        }
        Ok(())
    }

    /// The compiled program instantiated for a batch of `rows` queries
    /// (cached per size).
    ///
    /// # Errors
    ///
    /// Returns [`ServeError::ModelBuild`] for a zero-row batch.
    pub fn program_for(&self, rows: usize) -> Result<Arc<Program>> {
        if rows == 0 {
            return Err(ServeError::ModelBuild(
                "batch must hold at least one query".to_string(),
            ));
        }
        let mut cache = self.programs.lock().unwrap();
        if let Some(p) = cache.get(&rows) {
            return Ok(Arc::clone(p));
        }
        let mut program = self.template.clone();
        for sv in &self.scaled {
            let info = program.value_mut(sv.id);
            match &mut info.ty {
                ValueType::HyperMatrix { rows: r, .. } => *r = rows * sv.multiplier,
                ValueType::IndexVector { len } => *len = rows * sv.multiplier,
                other => {
                    return Err(ServeError::ModelBuild(format!(
                        "batch-scaled value `{}` has non-scalable type {other}",
                        info.name
                    )))
                }
            }
        }
        let arc = Arc::new(program);
        cache.insert(rows, Arc::clone(&arc));
        Ok(arc)
    }

    /// Execute one window: stack `rows` into a query matrix, run the
    /// batch-sized program, split per-row predictions back out.
    ///
    /// `batched` selects the executor schedule (`true` = matrix kernels,
    /// `false` = the per-sample sequential oracle); `class_shards`
    /// overrides the class-memory shard count exactly like
    /// [`Executor::set_class_shards`].
    ///
    /// # Errors
    ///
    /// Any [`ServeError`] a row fails validation with, or
    /// [`ServeError::Execution`] if the executor rejects the window.
    pub fn infer_window(
        &self,
        rows: &[Vec<f64>],
        batched: bool,
        class_shards: Option<usize>,
    ) -> Result<WindowOutcome> {
        for row in rows {
            self.validate_query(row)?;
        }
        let program = self.program_for(rows.len())?;
        let mut flat = Vec::with_capacity(rows.len() * self.features);
        for row in rows {
            flat.extend_from_slice(row);
        }
        let queries = HyperMatrix::from_flat(rows.len(), self.features, flat)
            .map_err(|e| ServeError::Execution(e.to_string()))?;
        let mut exec = Executor::new(&program).map_err(exec_err)?;
        exec.set_batched_stages(batched);
        exec.set_parallel_loops(batched);
        exec.set_class_shards(class_shards);
        exec.bind("queries", Value::matrix(queries))
            .map_err(exec_err)?;
        for (input, value) in &self.bindings {
            // Arc payload: a refcount bump per window, never a copy.
            exec.bind(input, value.clone()).map_err(exec_err)?;
        }
        let out = exec.run().map_err(exec_err)?;
        let predictions = self.split_predictions(&out, rows.len())?;
        Ok(WindowOutcome {
            predictions,
            stats: exec.stats(),
            stage_trace: exec.stage_trace().to_vec(),
        })
    }

    /// The single-request sequential oracle: batch size 1, per-sample
    /// interpreter schedule, no sharding. `serving_equivalence` pins every
    /// coalesced window to be bit-identical to this, row by row.
    ///
    /// # Errors
    ///
    /// Same contract as [`ServableModel::infer_window`].
    pub fn oracle_infer(&self, row: &[f64]) -> Result<Prediction> {
        let outcome = self.infer_window(std::slice::from_ref(&row.to_vec()), false, None)?;
        Ok(outcome.predictions[0].clone())
    }

    fn split_predictions(&self, out: &Outputs, rows: usize) -> Result<Vec<Prediction>> {
        let value = out.by_name(&self.output_name).ok_or_else(|| {
            ServeError::Execution(format!("output `{}` missing from run", self.output_name))
        })?;
        let indices = value
            .as_indices("serving output")
            .map_err(|e| ServeError::Execution(e.to_string()))?;
        match self.output_kind {
            OutputKind::Label => {
                if indices.len() != rows {
                    return Err(ServeError::Execution(format!(
                        "expected {rows} labels, got {}",
                        indices.len()
                    )));
                }
                Ok(indices.iter().map(|&i| Prediction::Label(i)).collect())
            }
            OutputKind::TopK(k) => {
                if indices.len() != rows * k {
                    return Err(ServeError::Execution(format!(
                        "expected {rows}x{k} candidates, got {}",
                        indices.len()
                    )));
                }
                Ok(indices
                    .chunks(k)
                    .map(|c| Prediction::TopK(c.to_vec()))
                    .collect())
            }
        }
    }
}

/// Which similarity the scoring body computes.
#[derive(Debug, Clone, Copy)]
enum ScoreOp {
    Hamming,
    Cosine,
}

fn exec_err(e: impl std::fmt::Display) -> ServeError {
    ServeError::Execution(e.to_string())
}

/// Compile a serving template with the binarization configuration matching
/// the harvested artifacts.
fn compile_template(program: &mut Program, binarized: bool) -> Result<()> {
    let options = if binarized {
        CompileOptions::default()
    } else {
        CompileOptions::baseline()
    };
    compile(program, &options)
        .map(|_| ())
        .map_err(|e| ServeError::ModelBuild(e.to_string()))
}

/// Shape of a dense or bit-packed matrix value.
fn matrix_shape(value: &Value, what: &str) -> Result<(usize, usize)> {
    match value {
        Value::Matrix(m) => Ok((m.rows(), m.cols())),
        Value::BitMatrix(b) => Ok((b.rows(), b.cols())),
        other => Err(ServeError::ModelBuild(format!(
            "{what}: expected a matrix artifact, got {}",
            other.kind_name()
        ))),
    }
}

/// Run a compiled app program once with the named values flipped to
/// outputs, returning the harvested artifact values in `names` order.
fn harvest(program: &Program, binds: &[(&str, Value)], names: &[&str]) -> Result<Vec<Value>> {
    let mut p = program.clone();
    let ids: Vec<ValueId> = names
        .iter()
        .map(|name| {
            p.values()
                .iter()
                .position(|v| v.name == *name)
                .map(ValueId::new)
                .ok_or_else(|| {
                    ServeError::ModelBuild(format!("app program has no value named `{name}`"))
                })
        })
        .collect::<Result<_>>()?;
    for &id in &ids {
        p.value_mut(id).role = ValueRole::Output;
    }
    let mut exec = Executor::new(&p).map_err(|e| ServeError::ModelBuild(e.to_string()))?;
    for (name, value) in binds {
        exec.bind(name, value.clone())
            .map_err(|e| ServeError::ModelBuild(e.to_string()))?;
    }
    let out = exec
        .run()
        .map_err(|e| ServeError::ModelBuild(e.to_string()))?;
    Ok(ids
        .iter()
        .map(|&id| {
            out.get(id)
                .expect("value was marked as an output above")
                .clone()
        })
        .collect())
}

/// Diff the declared shapes of two sentinel builds: every value whose
/// shape differs scales with the batch size. Returns the scaled values
/// with their per-request multipliers.
fn diff_scaled_values(a: &Program, b: &Program) -> Result<Vec<ScaledValue>> {
    if a.values().len() != b.values().len() {
        return Err(ServeError::ModelBuild(
            "sentinel builds disagree on value count; template build is row-dependent".to_string(),
        ));
    }
    let mut scaled = Vec::new();
    for (index, (va, vb)) in a.values().iter().zip(b.values().iter()).enumerate() {
        if va.ty == vb.ty {
            continue;
        }
        let (dim_a, dim_b) = match (&va.ty, &vb.ty) {
            (
                ValueType::HyperMatrix {
                    rows: ra, cols: ca, ..
                },
                ValueType::HyperMatrix {
                    rows: rb, cols: cb, ..
                },
            ) if ca == cb => (*ra, *rb),
            (ValueType::IndexVector { len: la }, ValueType::IndexVector { len: lb }) => (*la, *lb),
            _ => {
                return Err(ServeError::ModelBuild(format!(
                    "value `{}` changes non-row shape between sentinel builds ({} vs {})",
                    va.name, va.ty, vb.ty
                )))
            }
        };
        if dim_a % SENTINEL_A != 0
            || dim_b % SENTINEL_B != 0
            || dim_a / SENTINEL_A != dim_b / SENTINEL_B
        {
            return Err(ServeError::ModelBuild(format!(
                "value `{}` scales irregularly with the batch size ({dim_a} @ {SENTINEL_A}, {dim_b} @ {SENTINEL_B})",
                va.name
            )));
        }
        scaled.push(ScaledValue {
            id: ValueId::new(index),
            multiplier: dim_a / SENTINEL_A,
        });
    }
    Ok(scaled)
}
