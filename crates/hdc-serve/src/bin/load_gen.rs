//! Open-loop load generator for the hdc-serve micro-batching service.
//!
//! Builds the standard smoke classification workload, registers it with a
//! [`Service`], fires an open-loop request stream at it, and prints a JSON
//! report (p50/p99 latency, achieved QPS, failure/mismatch counts) to
//! stdout. Every response is checked against the sequential per-request
//! oracle unless `--no-check` is given.
//!
//! ```text
//! load_gen [--requests N] [--qps Q] [--concurrency C]
//!          [--window-batch B] [--window-delay-us U]
//!          [--shards S] [--no-check] [--http]
//! ```

use hdc_apps::ClassificationApp;
use hdc_datasets::synthetic::{isolet_like, IsoletParams};
use hdc_serve::{
    run_load, LoadConfig, ModelRegistry, ServableModel, Service, ServiceConfig, WindowConfig,
};
use std::sync::Arc;
use std::time::Duration;

struct Args {
    requests: usize,
    qps: f64,
    concurrency: usize,
    window_batch: usize,
    window_delay_us: u64,
    shards: Option<usize>,
    check: bool,
    http: bool,
}

impl Default for Args {
    fn default() -> Self {
        Args {
            requests: 400,
            qps: 2_000.0,
            concurrency: 8,
            window_batch: 32,
            window_delay_us: 2_000,
            shards: None,
            check: true,
            http: false,
        }
    }
}

fn parse_args() -> Result<Args, String> {
    let mut args = Args::default();
    let mut it = std::env::args().skip(1);
    while let Some(flag) = it.next() {
        let mut value = |flag: &str| it.next().ok_or_else(|| format!("missing value for {flag}"));
        match flag.as_str() {
            "--requests" => args.requests = parse(&value(&flag)?)?,
            "--qps" => args.qps = parse(&value(&flag)?)?,
            "--concurrency" => args.concurrency = parse(&value(&flag)?)?,
            "--window-batch" => args.window_batch = parse(&value(&flag)?)?,
            "--window-delay-us" => args.window_delay_us = parse(&value(&flag)?)?,
            "--shards" => args.shards = Some(parse(&value(&flag)?)?),
            "--no-check" => args.check = false,
            "--http" => args.http = true,
            "--help" | "-h" => {
                eprintln!(
                    "usage: load_gen [--requests N] [--qps Q] [--concurrency C] \
                     [--window-batch B] [--window-delay-us U] [--shards S] \
                     [--no-check] [--http]"
                );
                std::process::exit(0);
            }
            other => return Err(format!("unknown flag `{other}`")),
        }
    }
    Ok(args)
}

fn parse<T: std::str::FromStr>(s: &str) -> Result<T, String> {
    s.parse()
        .map_err(|_| format!("cannot parse `{s}` as {}", std::any::type_name::<T>()))
}

fn main() {
    let args = match parse_args() {
        Ok(args) => args,
        Err(msg) => {
            eprintln!("load_gen: {msg}");
            std::process::exit(2);
        }
    };

    // The same synthetic classification workload the bench smoke tier uses.
    let dataset = isolet_like(&IsoletParams {
        classes: 4,
        features: 32,
        train_per_class: 8,
        test_per_class: 6,
        noise: 1.2,
        seed: 17,
    });
    let queries: Vec<Vec<f64>> = (0..dataset.test.len())
        .map(|i| dataset.test.features.row(i).unwrap().to_vec())
        .collect();
    let app = ClassificationApp::new(dataset, 512, 2).expect("build classification app");
    let model =
        Arc::new(ServableModel::classifier("isolet-smoke", &app).expect("build servable model"));

    let registry = Arc::new(ModelRegistry::new());
    registry.register("isolet-smoke", Arc::clone(&model));
    let service = Service::start(
        registry,
        ServiceConfig {
            window: WindowConfig {
                max_batch: args.window_batch,
                max_delay: Duration::from_micros(args.window_delay_us),
            },
            class_shards: args.shards,
            batched: true,
        },
    );

    let http = if args.http {
        match hdc_serve::serve_http(Arc::clone(&service), "127.0.0.1:0") {
            Ok((addr, handle)) => {
                eprintln!("load_gen: health/stats at http://{addr}/health");
                Some(handle)
            }
            Err(err) => {
                eprintln!("load_gen: http façade unavailable: {err}");
                None
            }
        }
    } else {
        None
    };

    let report = run_load(
        &service,
        &model,
        &queries,
        &LoadConfig {
            model: "isolet-smoke".to_string(),
            concurrency: args.concurrency,
            qps: args.qps,
            requests: args.requests,
            check: args.check,
        },
    );
    let stats = service.stats_json();
    drop(http);
    service.shutdown();

    println!("{{");
    println!("  \"tool\": \"hdc-serve/load_gen\",");
    println!("  \"model\": \"isolet-smoke\",");
    println!("  \"window_batch\": {},", args.window_batch);
    println!("  \"window_delay_us\": {},", args.window_delay_us);
    println!("  \"report\": {},", report.to_json("  "));
    println!("  \"service\": {stats}");
    println!("}}");

    if report.failed > 0 || report.mismatched > 0 {
        eprintln!(
            "load_gen: FAILED — {} failed, {} mismatched",
            report.failed, report.mismatched
        );
        std::process::exit(1);
    }
}
