//! # hdc-serve
//!
//! The serving layer: everything below this crate runs a workload once and
//! exits; this crate answers *requests*. It turns the committed batch
//! advantage of the stack's matrix kernels into throughput under concurrent
//! load by coalescing single-query inference requests into micro-batches:
//!
//! * [`model`] — [`ServableModel`]: an app's trained artifacts (projection
//!   matrix, class memory / centroids / encoded library) harvested into
//!   `Arc`-shared [`Value`](hdc_runtime::Value)s plus an inference-only
//!   program template re-rowed per batch size. Binding a model to an
//!   executor is a refcount bump, not a copy.
//! * [`registry`] — [`ModelRegistry`]: named, `Arc`-shared, atomically
//!   swappable model store (the COW value store keeps in-flight windows
//!   valid across a swap).
//! * [`coalescer`] — [`Coalescer`]: the pure time/size-windowed batching
//!   queue, unit-testable with a [`MockClock`].
//! * [`service`] — [`Service`]: the dispatcher thread gathering requests
//!   into windows, executing each window through the batched executor, and
//!   scattering per-row results back through oneshot channels; plus
//!   health/stats snapshots backed by
//!   [`ExecStats`](hdc_runtime::ExecStats) and an optional HTTP façade
//!   for them.
//! * [`loadgen`] — open-loop load generator reporting p50/p99 latency and
//!   QPS (the `load_gen` bin feeds the `serving` section of
//!   `BENCH_results.json`).
//! * [`online`] — [`OnlineTrainer`]: labeled-feedback perceptron updates
//!   against a *shadow* class memory, re-frozen through the pass pipeline
//!   and atomically published via [`ModelRegistry::swap`] under a
//!   [`SwapPolicy`] (every N updates / every T elapsed / rescore-rate
//!   threshold). Readers never see a partial update; the
//!   `online_equivalence` suite pins the online replay bit-identical to
//!   the offline batched trainer.
//!
//! The serving discipline mirrors the rest of the repo: every coalesced
//! window must be **bit-identical** to serving each of its requests alone
//! through the sequential oracle (`serving_equivalence` integration suite),
//! and malformed traffic must degrade to typed [`ServeError`]s, never
//! panics (`serving_chaos` suite).

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod clock;
pub mod coalescer;
pub mod loadgen;
pub mod model;
pub mod online;
pub mod registry;
pub mod service;

pub use clock::{Clock, MockClock, SystemClock};
pub use coalescer::{Coalescer, WindowConfig};

pub use loadgen::{run_load, LoadConfig, LoadReport};
pub use model::{Prediction, ServableModel};
pub use online::{FeedOutcome, OnlineStats, OnlineTrainer, OnlineTrainerConfig, SwapPolicy};
pub use registry::ModelRegistry;
pub use service::{
    serve_http, Health, HttpHandle, ResponseFuture, Service, ServiceConfig, ServiceStats,
};

use std::fmt;

/// Typed serving errors. Every way a request can fail maps to one of these
/// variants; the service never panics on malformed traffic, and one bad
/// request never poisons the window it would have been coalesced with.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum ServeError {
    /// The named model is not (or no longer) in the registry.
    UnknownModel(String),
    /// The query vector length does not match the model's feature count.
    WrongDimension {
        /// Feature count the model expects.
        expected: usize,
        /// Length of the submitted query.
        got: usize,
    },
    /// The query was empty.
    EmptyQuery,
    /// The query contained a non-finite payload (NaN or infinity). Rejected
    /// at submission: an all-NaN score row has no defined arg-min/arg-max,
    /// and a runtime error there would fail every request coalesced into
    /// the same window.
    NonFinitePayload {
        /// Index of the first offending element.
        index: usize,
    },
    /// A feedback sample carried a label outside the model's class range.
    UnknownLabel {
        /// The submitted label.
        label: usize,
        /// Number of classes the model's memory holds rows for.
        classes: usize,
    },
    /// The named model carries no dense training accumulator, so an
    /// online trainer cannot attach to it (cluster assigners, matchers,
    /// or classifiers rebuilt without their train state).
    NotAdaptable(String),
    /// No online trainer is attached for the named model.
    NoTrainer(String),
    /// The service is shutting down and no longer accepts requests.
    ShuttingDown,
    /// Building a servable model failed (artifact harvest or template
    /// compilation); carries the underlying error text.
    ModelBuild(String),
    /// The executor failed while running a window; carries the runtime
    /// error text. With submission-time validation in place this indicates
    /// a serving-layer bug, not bad traffic.
    Execution(String),
}

impl fmt::Display for ServeError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            ServeError::UnknownModel(name) => write!(f, "unknown model `{name}`"),
            ServeError::WrongDimension { expected, got } => {
                write!(f, "query has {got} features, model expects {expected}")
            }
            ServeError::EmptyQuery => f.write_str("query is empty"),
            ServeError::NonFinitePayload { index } => {
                write!(f, "query element {index} is not finite")
            }
            ServeError::UnknownLabel { label, classes } => {
                write!(f, "feedback label {label} outside class range 0..{classes}")
            }
            ServeError::NotAdaptable(name) => {
                write!(
                    f,
                    "model `{name}` carries no train state for online adaptation"
                )
            }
            ServeError::NoTrainer(name) => {
                write!(f, "no online trainer attached for model `{name}`")
            }
            ServeError::ShuttingDown => f.write_str("service is shutting down"),
            ServeError::ModelBuild(msg) => write!(f, "model build failed: {msg}"),
            ServeError::Execution(msg) => write!(f, "window execution failed: {msg}"),
        }
    }
}

impl std::error::Error for ServeError {}

/// Serving result alias.
pub type Result<T> = std::result::Result<T, ServeError>;
