//! The micro-batching coalescer: a pure time/size-windowed queue.
//!
//! Requests accumulate in an open *window*. The window flushes — returns
//! its requests as one batch, in FIFO submission order — when either
//! trigger fires:
//!
//! * **size-full**: the window reaches [`WindowConfig::max_batch`] items
//!   (flushed immediately by the `push` that filled it);
//! * **deadline-expiry**: [`WindowConfig::max_delay`] has passed since the
//!   window's *first* item arrived (flushed by the next `poll`). The
//!   deadline is anchored to the first item, so a lone straggler waits at
//!   most `max_delay` — the worst-case latency a request pays for the
//!   chance to be batched.
//!
//! The coalescer holds no thread, lock, or timer of its own — it is a
//! plain state machine over instants supplied by the caller, which is what
//! makes its flush semantics unit-testable with a
//! [`MockClock`](crate::clock::MockClock). The [`Service`](crate::Service)
//! wraps it in a mutex and supplies real time.
//!
//! Determinism contract (pinned by the unit tests): a flush contains
//! exactly the pending items in submission order, `poll` at a simultaneous
//! size-full + deadline trigger yields one batch (size-full wins — the
//! batch is full, the deadline is moot), and an empty window never
//! flushes.

use std::time::{Duration, Instant};

/// Flush configuration for one window.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct WindowConfig {
    /// Maximum items per window; a `push` that reaches this count flushes
    /// immediately. Must be ≥ 1. `1` disables coalescing (every push
    /// flushes — the batch-size-1 dispatch baseline the bench compares
    /// against).
    pub max_batch: usize,
    /// Maximum time a window may stay open once it holds an item.
    /// `Duration::ZERO` means a window never waits: the first `poll` (or
    /// size-full `push`) flushes it.
    pub max_delay: Duration,
}

impl Default for WindowConfig {
    fn default() -> Self {
        WindowConfig {
            max_batch: 32,
            max_delay: Duration::from_millis(2),
        }
    }
}

/// The pure micro-batching state machine. `T` is the per-request payload
/// (the service uses pending-request handles; tests use integers).
#[derive(Debug)]
pub struct Coalescer<T> {
    config: WindowConfig,
    pending: Vec<T>,
    /// Arrival instant of the first item in the open window.
    opened_at: Option<Instant>,
}

impl<T> Coalescer<T> {
    /// An empty coalescer.
    ///
    /// # Panics
    ///
    /// Panics if `config.max_batch == 0` — a window that can hold nothing
    /// could never flush.
    pub fn new(config: WindowConfig) -> Self {
        assert!(config.max_batch >= 1, "max_batch must be >= 1");
        Coalescer {
            config,
            pending: Vec::new(),
            opened_at: None,
        }
    }

    /// The flush configuration.
    pub fn config(&self) -> WindowConfig {
        self.config
    }

    /// Number of items in the open window.
    pub fn len(&self) -> usize {
        self.pending.len()
    }

    /// Whether the window is empty.
    pub fn is_empty(&self) -> bool {
        self.pending.is_empty()
    }

    /// Add an item to the window at instant `now`. Returns the flushed
    /// batch if this push filled the window (size-full trigger), `None`
    /// otherwise.
    pub fn push(&mut self, item: T, now: Instant) -> Option<Vec<T>> {
        if self.pending.is_empty() {
            self.opened_at = Some(now);
        }
        self.pending.push(item);
        if self.pending.len() >= self.config.max_batch {
            return Some(self.take());
        }
        None
    }

    /// Check the deadline at instant `now`. Returns the flushed batch if
    /// the open window's deadline has expired (deadline trigger), `None`
    /// if the window is empty or still within its delay budget.
    pub fn poll(&mut self, now: Instant) -> Option<Vec<T>> {
        let opened_at = self.opened_at?;
        debug_assert!(!self.pending.is_empty(), "opened_at implies items");
        if now >= opened_at + self.config.max_delay {
            return Some(self.take());
        }
        None
    }

    /// The instant the open window's deadline expires, if one is open.
    /// The service's dispatcher sleeps until this instant (or the next
    /// push, whichever comes first).
    pub fn next_deadline(&self) -> Option<Instant> {
        self.opened_at.map(|t| t + self.config.max_delay)
    }

    /// Force-flush whatever is pending (used at shutdown so no request is
    /// stranded). Returns `None` when empty.
    pub fn drain(&mut self) -> Option<Vec<T>> {
        if self.pending.is_empty() {
            return None;
        }
        Some(self.take())
    }

    fn take(&mut self) -> Vec<T> {
        self.opened_at = None;
        std::mem::take(&mut self.pending)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::clock::{Clock, MockClock};

    fn config(max_batch: usize, max_delay_ms: u64) -> WindowConfig {
        WindowConfig {
            max_batch,
            max_delay: Duration::from_millis(max_delay_ms),
        }
    }

    #[test]
    fn size_full_flushes_on_the_filling_push() {
        let clock = MockClock::new();
        let mut c = Coalescer::new(config(3, 1_000));
        assert_eq!(c.push(1, clock.now()), None);
        assert_eq!(c.push(2, clock.now()), None);
        // Third push fills the window: flushed immediately, FIFO order,
        // no waiting for the (far) deadline.
        assert_eq!(c.push(3, clock.now()), Some(vec![1, 2, 3]));
        assert!(c.is_empty());
        assert_eq!(c.next_deadline(), None);
    }

    #[test]
    fn deadline_expiry_flushes_on_poll() {
        let clock = MockClock::new();
        let mut c = Coalescer::new(config(100, 5));
        assert_eq!(c.push(7, clock.now()), None);
        // Within the delay budget: nothing to flush.
        clock.advance(Duration::from_millis(4));
        assert_eq!(c.poll(clock.now()), None);
        // Deadline reached: the partial window flushes.
        clock.advance(Duration::from_millis(1));
        assert_eq!(c.poll(clock.now()), Some(vec![7]));
        assert!(c.is_empty());
    }

    #[test]
    fn poll_exactly_on_the_deadline_instant_flushes() {
        // The deadline comparison must be inclusive: a poll landing on
        // exactly `opened_at + max_delay` flushes. A dispatcher that
        // sleeps until the deadline and polls on wake would otherwise
        // miss by one tick and wait a whole extra poll interval.
        let clock = MockClock::new();
        let mut c = Coalescer::new(config(100, 5));
        assert_eq!(c.push(42, clock.now()), None);
        // One nanosecond short of the deadline: still within budget.
        clock.advance(Duration::from_millis(5) - Duration::from_nanos(1));
        assert_eq!(c.poll(clock.now()), None);
        // Land on the exact instant — not a tick past it.
        clock.advance(Duration::from_nanos(1));
        assert_eq!(c.poll(clock.now()), Some(vec![42]));
        assert!(c.is_empty());
    }

    #[test]
    fn straggler_waits_at_most_max_delay_from_first_item() {
        let clock = MockClock::new();
        let mut c = Coalescer::new(config(100, 10));
        let t0 = clock.now();
        c.push(1, clock.now());
        // A second item arriving late does NOT push the deadline out: the
        // window is anchored to its first item, bounding the straggler's
        // coalescing latency.
        clock.advance(Duration::from_millis(9));
        c.push(2, clock.now());
        assert_eq!(c.next_deadline(), Some(t0 + Duration::from_millis(10)));
        clock.advance(Duration::from_millis(1));
        assert_eq!(c.poll(clock.now()), Some(vec![1, 2]));
    }

    #[test]
    fn empty_window_never_flushes() {
        let clock = MockClock::new();
        let mut c = Coalescer::<u32>::new(config(4, 0));
        // Even with a zero delay, polling an empty coalescer yields
        // nothing — the service never dispatches an empty matrix.
        assert_eq!(c.poll(clock.now()), None);
        clock.advance(Duration::from_secs(3600));
        assert_eq!(c.poll(clock.now()), None);
        assert_eq!(c.drain(), None);
        assert_eq!(c.next_deadline(), None);
    }

    #[test]
    fn simultaneous_triggers_flush_once_deterministically() {
        let clock = MockClock::new();
        let mut c = Coalescer::new(config(2, 5));
        assert_eq!(c.push(1, clock.now()), None);
        clock.advance(Duration::from_millis(5));
        // This push lands exactly at the deadline AND fills the window.
        // Size-full wins: the push itself returns the batch, in FIFO
        // order, and the subsequent poll must NOT produce a second flush.
        assert_eq!(c.push(2, clock.now()), Some(vec![1, 2]));
        assert_eq!(c.poll(clock.now()), None);
        assert!(c.is_empty());
    }

    #[test]
    fn flush_order_is_submission_order_across_windows() {
        let clock = MockClock::new();
        let mut c = Coalescer::new(config(2, 1_000));
        let first = c.push(10, clock.now()).or_else(|| c.push(11, clock.now()));
        assert_eq!(first, Some(vec![10, 11]));
        let second = c.push(12, clock.now()).or_else(|| c.push(13, clock.now()));
        assert_eq!(second, Some(vec![12, 13]));
    }

    #[test]
    fn batch_size_one_disables_coalescing() {
        let clock = MockClock::new();
        let mut c = Coalescer::new(config(1, 1_000));
        assert_eq!(c.push(5, clock.now()), Some(vec![5]));
        assert!(c.is_empty());
    }

    #[test]
    fn zero_delay_flushes_on_first_poll() {
        let clock = MockClock::new();
        let mut c = Coalescer::new(config(8, 0));
        assert_eq!(c.push(1, clock.now()), None);
        assert_eq!(c.poll(clock.now()), Some(vec![1]));
    }

    #[test]
    fn drain_flushes_partial_window_at_shutdown() {
        let clock = MockClock::new();
        let mut c = Coalescer::new(config(8, 1_000));
        c.push(1, clock.now());
        c.push(2, clock.now());
        assert_eq!(c.drain(), Some(vec![1, 2]));
        assert_eq!(c.drain(), None);
    }

    #[test]
    #[should_panic(expected = "max_batch")]
    fn zero_max_batch_rejected() {
        let _ = Coalescer::<u32>::new(config(0, 1));
    }
}
