//! Open-loop load generation against a running [`Service`].
//!
//! The generator schedules request arrivals on a fixed open-loop timeline
//! (`t_i = i / qps` from the run start) and spreads them round-robin over
//! `concurrency` submitter lanes. Each lane sleeps until its next
//! scheduled arrival, submits, and blocks on the response before taking
//! its next assigned arrival. Latency is measured **from the scheduled
//! arrival instant**, not from the (possibly delayed) actual submission —
//! the standard coordinated-omission correction, so a backed-up service
//! shows up as tail latency instead of silently thinning the arrival
//! process.
//!
//! With [`LoadConfig::check`] enabled every response is compared against
//! the model's per-request sequential oracle
//! ([`ServableModel::oracle_infer`]); any divergence counts in
//! [`LoadReport::mismatched`]. The committed bench numbers run with the
//! check on and require zero.

use crate::model::{Prediction, ServableModel};
use crate::service::Service;
use std::sync::Arc;
use std::time::{Duration, Instant};

/// Load-run parameters.
#[derive(Debug, Clone)]
pub struct LoadConfig {
    /// Registry name of the model to query.
    pub model: String,
    /// Number of submitter lanes (bounds in-flight requests).
    pub concurrency: usize,
    /// Offered arrival rate, requests per second, across all lanes.
    pub qps: f64,
    /// Total requests to issue.
    pub requests: usize,
    /// Verify every response against the sequential oracle.
    pub check: bool,
}

impl Default for LoadConfig {
    fn default() -> Self {
        LoadConfig {
            model: "default".to_string(),
            concurrency: 8,
            qps: 2_000.0,
            requests: 400,
            check: false,
        }
    }
}

/// The outcome of one load run.
#[derive(Debug, Clone, PartialEq)]
pub struct LoadReport {
    /// Submitter lanes used.
    pub concurrency: usize,
    /// Offered (scheduled) arrival rate, requests per second.
    pub offered_qps: f64,
    /// Completed requests per second of wall time.
    pub achieved_qps: f64,
    /// Requests answered with a prediction.
    pub completed: u64,
    /// Requests answered with an error.
    pub failed: u64,
    /// Responses that diverged from the sequential oracle (only counted
    /// when [`LoadConfig::check`] is on; must be zero).
    pub mismatched: u64,
    /// Median latency, microseconds (scheduled arrival to response).
    pub p50_us: u64,
    /// 99th-percentile latency, microseconds.
    pub p99_us: u64,
    /// Mean latency, microseconds.
    pub mean_us: u64,
    /// Maximum latency, microseconds.
    pub max_us: u64,
    /// Wall time of the whole run.
    pub wall: Duration,
}

impl LoadReport {
    /// Render the report as a JSON object (the `load_gen` bin's output and
    /// the shape embedded in `BENCH_results.json`'s `serving` section).
    /// `indent` is prepended to every line after the opening brace.
    pub fn to_json(&self, indent: &str) -> String {
        format!(
            concat!(
                "{{\n{i}  \"concurrency\": {},\n{i}  \"offered_qps\": {:.1},\n",
                "{i}  \"achieved_qps\": {:.1},\n{i}  \"completed\": {},\n",
                "{i}  \"failed\": {},\n{i}  \"mismatched\": {},\n",
                "{i}  \"p50_us\": {},\n{i}  \"p99_us\": {},\n",
                "{i}  \"mean_us\": {},\n{i}  \"max_us\": {},\n",
                "{i}  \"wall_ms\": {}\n{i}}}"
            ),
            self.concurrency,
            self.offered_qps,
            self.achieved_qps,
            self.completed,
            self.failed,
            self.mismatched,
            self.p50_us,
            self.p99_us,
            self.mean_us,
            self.max_us,
            self.wall.as_millis(),
            i = indent
        )
    }
}

/// Nearest-rank percentile of an ascending latency list.
fn percentile_us(sorted: &[Duration], q: f64) -> u64 {
    if sorted.is_empty() {
        return 0;
    }
    let rank = ((q * sorted.len() as f64).ceil() as usize).clamp(1, sorted.len());
    sorted[rank - 1].as_micros() as u64
}

/// Run an open-loop load against `service`, cycling through `queries` as
/// request payloads. `model` must be the model registered under
/// [`LoadConfig::model`]; it is only consulted for oracle answers when
/// [`LoadConfig::check`] is on (computed up front, outside the timed run).
///
/// # Panics
///
/// Panics if `queries` is empty, `config.concurrency == 0`, or
/// `config.qps` is not positive — a load run needs traffic.
pub fn run_load(
    service: &Arc<Service>,
    model: &Arc<ServableModel>,
    queries: &[Vec<f64>],
    config: &LoadConfig,
) -> LoadReport {
    assert!(!queries.is_empty(), "need at least one query payload");
    assert!(config.concurrency >= 1, "need at least one lane");
    assert!(config.qps > 0.0, "offered QPS must be positive");
    let oracle: Option<Vec<Prediction>> = config.check.then(|| {
        queries
            .iter()
            .map(|q| {
                model
                    .oracle_infer(q)
                    .expect("oracle inference on a valid payload")
            })
            .collect()
    });
    // Small lead time so every lane is parked on its first arrival before
    // the clock starts.
    let start = Instant::now() + Duration::from_millis(5);
    let lanes: Vec<LaneOutcome> = std::thread::scope(|scope| {
        let handles: Vec<_> = (0..config.concurrency)
            .map(|lane| {
                let oracle = oracle.as_deref();
                scope.spawn(move || run_lane(service, queries, oracle, lane, config, start))
            })
            .collect();
        handles.into_iter().map(|h| h.join().unwrap()).collect()
    });
    let wall = start.elapsed();
    let mut latencies: Vec<Duration> = Vec::with_capacity(config.requests);
    let (mut completed, mut failed, mut mismatched) = (0_u64, 0_u64, 0_u64);
    for lane in lanes {
        latencies.extend(lane.latencies);
        completed += lane.completed;
        failed += lane.failed;
        mismatched += lane.mismatched;
    }
    latencies.sort_unstable();
    let mean_us = if latencies.is_empty() {
        0
    } else {
        (latencies.iter().map(Duration::as_micros).sum::<u128>() / latencies.len() as u128) as u64
    };
    LoadReport {
        concurrency: config.concurrency,
        offered_qps: config.qps,
        achieved_qps: completed as f64 / wall.as_secs_f64(),
        completed,
        failed,
        mismatched,
        p50_us: percentile_us(&latencies, 0.50),
        p99_us: percentile_us(&latencies, 0.99),
        mean_us,
        max_us: latencies.last().map_or(0, |d| d.as_micros() as u64),
        wall,
    }
}

struct LaneOutcome {
    latencies: Vec<Duration>,
    completed: u64,
    failed: u64,
    mismatched: u64,
}

fn run_lane(
    service: &Arc<Service>,
    queries: &[Vec<f64>],
    oracle: Option<&[Prediction]>,
    lane: usize,
    config: &LoadConfig,
    start: Instant,
) -> LaneOutcome {
    let mut outcome = LaneOutcome {
        latencies: Vec::new(),
        completed: 0,
        failed: 0,
        mismatched: 0,
    };
    let mut i = lane;
    while i < config.requests {
        let scheduled = start + Duration::from_secs_f64(i as f64 / config.qps);
        let now = Instant::now();
        if scheduled > now {
            std::thread::sleep(scheduled - now);
        }
        let payload_index = i % queries.len();
        let response = service
            .submit(&config.model, queries[payload_index].clone())
            .wait();
        outcome.latencies.push(scheduled.elapsed());
        match response {
            Ok(prediction) => {
                outcome.completed += 1;
                if let Some(oracle) = oracle {
                    if prediction != oracle[payload_index] {
                        outcome.mismatched += 1;
                    }
                }
            }
            Err(_) => outcome.failed += 1,
        }
        i += config.concurrency;
    }
    outcome
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::coalescer::WindowConfig;
    use crate::registry::ModelRegistry;
    use crate::service::ServiceConfig;
    use hdc_apps::ClassificationApp;
    use hdc_datasets::synthetic::{isolet_like, IsoletParams};

    #[test]
    fn load_run_completes_all_requests_and_matches_oracle() {
        let dataset = isolet_like(&IsoletParams {
            classes: 3,
            features: 16,
            train_per_class: 4,
            test_per_class: 3,
            noise: 1.0,
            seed: 9,
        });
        let queries: Vec<Vec<f64>> = (0..dataset.test.len())
            .map(|i| dataset.test.features.row(i).unwrap().to_vec())
            .collect();
        let app = ClassificationApp::new(dataset, 128, 1).unwrap();
        let model = Arc::new(ServableModel::classifier("cls", &app).unwrap());
        let registry = Arc::new(ModelRegistry::new());
        registry.register("cls", Arc::clone(&model));
        let service = Service::start(
            registry,
            ServiceConfig {
                window: WindowConfig {
                    max_batch: 8,
                    max_delay: Duration::from_micros(500),
                },
                ..ServiceConfig::default()
            },
        );
        let report = run_load(
            &service,
            &model,
            &queries,
            &LoadConfig {
                model: "cls".to_string(),
                concurrency: 4,
                qps: 5_000.0,
                requests: 64,
                check: true,
            },
        );
        assert_eq!(report.completed, 64);
        assert_eq!(report.failed, 0);
        assert_eq!(report.mismatched, 0);
        assert!(report.p99_us >= report.p50_us);
        assert!(report.achieved_qps > 0.0);
        let json = report.to_json("");
        assert!(json.contains("\"mismatched\": 0"), "{json}");
        service.shutdown();
    }

    #[test]
    fn percentiles_nearest_rank() {
        let sorted: Vec<Duration> = (1..=100).map(Duration::from_micros).collect();
        assert_eq!(percentile_us(&sorted, 0.50), 50);
        assert_eq!(percentile_us(&sorted, 0.99), 99);
        assert_eq!(percentile_us(&sorted, 1.0), 100);
        assert_eq!(percentile_us(&[], 0.5), 0);
    }
}
