//! Online adaptation: shadow class memory, perceptron feedback updates,
//! and atomic generation publishing.
//!
//! The paper's case for HDC retraining is that a class-memory update is a
//! handful of vector ops — cheap enough to run *inside* a serving loop.
//! This module closes that loop: an [`OnlineTrainer`] consumes labeled
//! feedback samples, applies perceptron updates to a **shadow** copy of
//! the live model's dense class memory, and publishes a new model
//! generation through [`ModelRegistry::swap`] when a [`SwapPolicy`]
//! triggers. Readers never observe a partial update: in-flight windows
//! keep the `Arc` they resolved, and the shadow is private to the trainer
//! until it is re-frozen and swapped in.
//!
//! # Bit-identity discipline
//!
//! The online path must not invent a second trainer. Every piece is the
//! offline machinery, reused:
//!
//! * **Encoding** runs the same `encoding_loop` (batched `matmul` +
//!   `sign`) the app's program uses, compiled through the same pass
//!   pipeline, executed on a [`fork`](Executor::fork) of a bound executor
//!   — so feedback rows encode bit-identically to offline training rows.
//! * **Replay** mirrors the executor's batched training schedule exactly:
//!   scores for the whole mini-batch are frozen with one
//!   [`score_epoch_sharded`] call, samples replay in submission order, and
//!   the first class-memory update flips the remainder of the batch to
//!   live per-sample rescoring with the public reference kernel — the
//!   same stale-flag protocol `hdc-runtime` uses, with the same
//!   [`update_row_in_place`] accumulation.
//! * **Freezing** re-runs `sign` over the shadow through the compiled
//!   pass pipeline (binarized or dense baseline, matching the live
//!   model), producing the same artifact representation the offline
//!   harvest yields.
//!
//! The `online_equivalence` suite pins all three: feeding the offline
//! training set in epoch order and publishing once produces a class
//! memory bit-identical to the offline batched trainer's.

use crate::clock::{Clock, SystemClock};
use crate::model::ServableModel;
use crate::registry::ModelRegistry;
use crate::{Result, ServeError};
use hdc_core::batch::{score_epoch_sharded, SimilarityMetric};
use hdc_core::element::ElementKind;
use hdc_core::similarity::cosine_similarity_matrix;
use hdc_core::{default_shard_count, HyperMatrix, Perforation, ShardPlan};
use hdc_ir::builder::ProgramBuilder;
use hdc_ir::program::Program;
use hdc_ir::stage::ScorePolarity;
use hdc_passes::{compile, CompileOptions};
use hdc_runtime::{update_row_in_place, Executor, Value};
use std::collections::HashMap;
use std::sync::Arc;
use std::time::{Duration, Instant};

/// When the trainer publishes its shadow as a new model generation. All
/// triggers are optional and OR-ed together; a trainer with no triggers
/// publishes only on explicit [`OnlineTrainer::publish`] calls. A policy
/// never fires while the shadow has no unpublished updates — a swap that
/// would change nothing is not worth a template compile.
#[derive(Debug, Clone, Copy, PartialEq, Default)]
pub struct SwapPolicy {
    /// Publish once this many unpublished updates have accumulated.
    pub every_updates: Option<u64>,
    /// Publish once this much time has passed since the last publish.
    pub every_elapsed: Option<Duration>,
    /// Publish when the live-rescore rate since the last publish exceeds
    /// this fraction. The rescore rate is PR 5's staleness machinery: the
    /// share of replayed samples that could not use the frozen epoch
    /// scores because an earlier update invalidated them. A high rate
    /// means the shadow is diverging quickly from what it was scoring
    /// with — i.e. from what the live model is still serving.
    pub rescore_rate_above: Option<f64>,
}

impl SwapPolicy {
    /// No automatic publishing; swap only on explicit
    /// [`OnlineTrainer::publish`] calls.
    pub fn manual() -> Self {
        SwapPolicy::default()
    }

    /// Publish every `n` updates.
    pub fn every_updates(n: u64) -> Self {
        SwapPolicy {
            every_updates: Some(n),
            ..SwapPolicy::default()
        }
    }

    /// Publish every `t` elapsed since the last publish.
    pub fn every_elapsed(t: Duration) -> Self {
        SwapPolicy {
            every_elapsed: Some(t),
            ..SwapPolicy::default()
        }
    }
}

/// Configuration for [`OnlineTrainer::attach`].
#[derive(Debug, Clone, Copy, PartialEq, Default)]
pub struct OnlineTrainerConfig {
    /// When to publish the shadow as a new generation.
    pub policy: SwapPolicy,
    /// Class-memory shard count override for the frozen-score selection,
    /// exactly like [`Executor::set_class_shards`]; `None` derives the
    /// count from the class rows and worker threads.
    pub class_shards: Option<usize>,
}

/// Cumulative counters over the trainer's lifetime.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub struct OnlineStats {
    /// Feedback batches processed.
    pub feeds: u64,
    /// Feedback samples replayed.
    pub samples: u64,
    /// Perceptron updates applied (mispredicted samples).
    pub updates: u64,
    /// Samples re-scored live because an earlier update in their batch
    /// invalidated the frozen scores.
    pub rescored: u64,
    /// Generations published through the registry.
    pub publishes: u64,
}

/// The outcome of one [`OnlineTrainer::feed`] call.
#[derive(Debug, Clone)]
pub struct FeedOutcome {
    /// Samples replayed from this batch.
    pub processed: usize,
    /// Perceptron updates this batch applied to the shadow.
    pub updates: u64,
    /// Samples this batch re-scored live against the updated shadow.
    pub rescored: u64,
    /// The new generation, if the swap policy fired on this batch.
    pub published: Option<Arc<ServableModel>>,
}

/// An online perceptron trainer bound to one registry entry.
///
/// Created with [`OnlineTrainer::attach`] from a model that carries its
/// dense training accumulator
/// ([`ServableModel::train_state`]). The trainer owns a private *shadow*
/// copy of that accumulator; [`OnlineTrainer::feed`] encodes labeled
/// samples and replays them against the shadow, and
/// [`OnlineTrainer::publish`] re-freezes the shadow and swaps the new
/// generation into the registry — a pointer exchange for every reader.
pub struct OnlineTrainer {
    registry: Arc<ModelRegistry>,
    /// Registry key the trainer publishes under.
    key: String,
    features: usize,
    dim: usize,
    binarized: bool,
    /// The projection matrix, shared with every published generation by
    /// refcount bump.
    rp: Value,
    /// The private dense class memory feedback updates accumulate into.
    shadow: HyperMatrix<f64>,
    /// Compiled `sign(class_hvs)` freeze program (fixed shape).
    freeze_program: Program,
    /// Compiled encode programs, cached per feedback-batch size.
    encode_programs: HashMap<usize, Arc<Program>>,
    policy: SwapPolicy,
    class_shards: Option<usize>,
    clock: Arc<dyn Clock>,
    last_publish_at: Instant,
    updates_since_publish: u64,
    samples_since_publish: u64,
    rescored_since_publish: u64,
    generation: u64,
    stats: OnlineStats,
}

impl std::fmt::Debug for OnlineTrainer {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("OnlineTrainer")
            .field("key", &self.key)
            .field("features", &self.features)
            .field("dim", &self.dim)
            .field("classes", &self.shadow.rows())
            .field("binarized", &self.binarized)
            .field("policy", &self.policy)
            .field("generation", &self.generation)
            .field("stats", &self.stats)
            .finish_non_exhaustive()
    }
}

impl OnlineTrainer {
    /// Attach a trainer to the model registered under `key`, seeding the
    /// shadow from its dense training accumulator.
    ///
    /// # Errors
    ///
    /// [`ServeError::UnknownModel`] if no model is registered under
    /// `key`; [`ServeError::NotAdaptable`] if the model carries no dense
    /// training accumulator (cluster assigners, matchers, or classifiers
    /// built without one); [`ServeError::ModelBuild`] if compiling the
    /// freeze program fails.
    pub fn attach(
        registry: Arc<ModelRegistry>,
        key: &str,
        config: OnlineTrainerConfig,
    ) -> Result<Self> {
        Self::attach_with_clock(registry, key, config, Arc::new(SystemClock))
    }

    /// [`OnlineTrainer::attach`] with an injectable clock, so elapsed-time
    /// swap policies are testable without real sleeps.
    ///
    /// # Errors
    ///
    /// Same contract as [`OnlineTrainer::attach`].
    pub fn attach_with_clock(
        registry: Arc<ModelRegistry>,
        key: &str,
        config: OnlineTrainerConfig,
        clock: Arc<dyn Clock>,
    ) -> Result<Self> {
        let model = registry.get(key)?;
        let train_state = model
            .train_state()
            .ok_or_else(|| ServeError::NotAdaptable(key.to_string()))?;
        let shadow = train_state
            .to_dense_matrix("train state")
            .map_err(|e| ServeError::ModelBuild(e.to_string()))?;
        let rp = model.projection().clone();
        let dim = match &rp {
            Value::Matrix(m) => m.rows(),
            other => {
                return Err(ServeError::ModelBuild(format!(
                    "projection must be a dense matrix, got {}",
                    other.kind_name()
                )))
            }
        };
        if shadow.cols() != dim {
            return Err(ServeError::ModelBuild(format!(
                "train state cols {} != projection dim {dim}",
                shadow.cols()
            )));
        }
        let binarized = model.binarized();
        let freeze_program = build_freeze_program(key, shadow.rows(), dim, binarized)?;
        let now = clock.now();
        Ok(OnlineTrainer {
            registry,
            key: key.to_string(),
            features: model.features(),
            dim,
            binarized,
            rp,
            shadow,
            freeze_program,
            encode_programs: HashMap::new(),
            policy: config.policy,
            class_shards: config.class_shards,
            clock,
            last_publish_at: now,
            updates_since_publish: 0,
            samples_since_publish: 0,
            rescored_since_publish: 0,
            generation: 0,
            stats: OnlineStats::default(),
        })
    }

    /// Registry key the trainer publishes under.
    pub fn key(&self) -> &str {
        &self.key
    }

    /// Feature count feedback rows must have.
    pub fn features(&self) -> usize {
        self.features
    }

    /// Number of class-memory rows (valid labels are `0..classes()`).
    pub fn classes(&self) -> usize {
        self.shadow.rows()
    }

    /// Generations published so far (0 = still serving the attach-time
    /// model).
    pub fn generation(&self) -> u64 {
        self.generation
    }

    /// Cumulative trainer counters.
    pub fn stats(&self) -> OnlineStats {
        self.stats
    }

    /// The private dense shadow class memory (read-only; the equivalence
    /// suite compares it against the offline accumulator).
    pub fn shadow(&self) -> &HyperMatrix<f64> {
        &self.shadow
    }

    /// Unpublished updates accumulated in the shadow.
    pub fn pending_updates(&self) -> u64 {
        self.updates_since_publish
    }

    /// The compiled freeze program (`sign(class_hvs)`) this trainer swaps
    /// through on publish. Exposed read-only so the static analyzer can
    /// lint the exact IR the serving layer executes.
    pub fn freeze_program(&self) -> &Program {
        &self.freeze_program
    }

    /// The compiled encode program for a batch of `rows` feedback samples
    /// (built on first use and cached per batch size), exposed for the
    /// same lint purpose as [`OnlineTrainer::freeze_program`].
    ///
    /// # Errors
    ///
    /// [`ServeError::ModelBuild`] if compiling the encode program fails.
    pub fn encoding_program(&mut self, rows: usize) -> Result<Arc<Program>> {
        self.encode_program(rows)
    }

    /// Process one mini-batch of labeled feedback: encode the rows, replay
    /// them against the shadow in order (mirroring the offline batched
    /// training schedule), and publish a new generation if the swap
    /// policy fires.
    ///
    /// # Errors
    ///
    /// [`ServeError::EmptyQuery`] / [`ServeError::WrongDimension`] /
    /// [`ServeError::NonFinitePayload`] for malformed rows,
    /// [`ServeError::UnknownLabel`] for an out-of-range label (all
    /// checked before any update is applied — a bad batch never leaves a
    /// partial shadow), or [`ServeError::Execution`] /
    /// [`ServeError::ModelBuild`] from the encode or publish paths.
    pub fn feed(&mut self, rows: &[Vec<f64>], labels: &[usize]) -> Result<FeedOutcome> {
        if rows.len() != labels.len() {
            return Err(ServeError::Execution(format!(
                "feedback batch has {} rows but {} labels",
                rows.len(),
                labels.len()
            )));
        }
        for row in rows {
            self.validate_row(row)?;
        }
        let classes = self.classes();
        for &label in labels {
            if label >= classes {
                return Err(ServeError::UnknownLabel { label, classes });
            }
        }
        if rows.is_empty() {
            return Ok(FeedOutcome {
                processed: 0,
                updates: 0,
                rescored: 0,
                published: None,
            });
        }
        let encoded = self.encode(rows)?;
        let (updates, rescored) = self.replay(&encoded, labels)?;
        self.stats.feeds += 1;
        self.stats.samples += rows.len() as u64;
        self.stats.updates += updates;
        self.stats.rescored += rescored;
        self.samples_since_publish += rows.len() as u64;
        self.updates_since_publish += updates;
        self.rescored_since_publish += rescored;
        let published = if self.should_publish() {
            Some(self.publish()?)
        } else {
            None
        };
        Ok(FeedOutcome {
            processed: rows.len(),
            updates,
            rescored,
            published,
        })
    }

    /// [`OnlineTrainer::feed`] for a single sample.
    ///
    /// # Errors
    ///
    /// Same contract as [`OnlineTrainer::feed`].
    pub fn feed_one(&mut self, row: &[f64], label: usize) -> Result<FeedOutcome> {
        self.feed(std::slice::from_ref(&row.to_vec()), &[label])
    }

    /// Re-freeze the shadow through the pass pipeline and atomically swap
    /// the new generation into the registry.
    ///
    /// With no unpublished updates this is a **no-op**: the live model is
    /// returned unchanged (`Arc::ptr_eq` with the registry entry, every
    /// artifact untouched) and no swap happens — republishing an
    /// identical class memory would only churn program caches.
    ///
    /// # Errors
    ///
    /// [`ServeError::UnknownModel`] if the registry entry was removed, or
    /// [`ServeError::ModelBuild`] / [`ServeError::Execution`] if
    /// re-freezing or template compilation fails.
    pub fn publish(&mut self) -> Result<Arc<ServableModel>> {
        if self.updates_since_publish == 0 {
            return self.registry.get(&self.key);
        }
        let class_bits = self.freeze()?;
        let model = Arc::new(ServableModel::classifier_from_artifacts(
            &format!("{}@gen{}", self.key, self.generation + 1),
            self.features,
            // The projection never changes: every generation shares the
            // same Arc payload.
            self.rp.clone(),
            class_bits,
            Some(Value::matrix(self.shadow.clone())),
        )?);
        self.registry.swap(&self.key, Arc::clone(&model));
        self.generation += 1;
        self.stats.publishes += 1;
        self.updates_since_publish = 0;
        self.samples_since_publish = 0;
        self.rescored_since_publish = 0;
        self.last_publish_at = self.clock.now();
        Ok(model)
    }

    /// Validate a feedback row exactly like query submission does.
    fn validate_row(&self, row: &[f64]) -> Result<()> {
        if row.is_empty() {
            return Err(ServeError::EmptyQuery);
        }
        if row.len() != self.features {
            return Err(ServeError::WrongDimension {
                expected: self.features,
                got: row.len(),
            });
        }
        if let Some(index) = row.iter().position(|x| !x.is_finite()) {
            return Err(ServeError::NonFinitePayload { index });
        }
        Ok(())
    }

    fn should_publish(&self) -> bool {
        if self.updates_since_publish == 0 {
            return false;
        }
        if let Some(n) = self.policy.every_updates {
            if self.updates_since_publish >= n {
                return true;
            }
        }
        if let Some(t) = self.policy.every_elapsed {
            if self.clock.now().duration_since(self.last_publish_at) >= t {
                return true;
            }
        }
        if let Some(rate) = self.policy.rescore_rate_above {
            if self.samples_since_publish > 0
                && self.rescored_since_publish as f64 / self.samples_since_publish as f64 > rate
            {
                return true;
            }
        }
        false
    }

    /// Encode a feedback batch through the model's own encoding pipeline:
    /// batched `matmul` + `sign`, compiled with the live configuration.
    /// Returns the encoded rows as a dense `±1` matrix (unpacking a
    /// bit-packed encode output reproduces the dense `sign` exactly:
    /// both map `0.0` to `+1`).
    fn encode(&mut self, rows: &[Vec<f64>]) -> Result<HyperMatrix<f64>> {
        let program = self.encode_program(rows.len())?;
        let mut flat = Vec::with_capacity(rows.len() * self.features);
        for row in rows {
            flat.extend_from_slice(row);
        }
        let queries = HyperMatrix::from_flat(rows.len(), self.features, flat).map_err(exec_err)?;
        let mut base = Executor::new(&program).map_err(exec_err)?;
        base.set_batched_stages(true);
        base.set_parallel_loops(true);
        base.bind("rp_matrix", self.rp.clone()).map_err(exec_err)?;
        base.bind("queries", Value::matrix(queries))
            .map_err(exec_err)?;
        // Shadow execution: run on a fork so the bound base store is never
        // mutated in place — the same isolation discipline serving windows
        // get from re-binding per window, at refcount-bump cost.
        let mut shadow_exec = base.fork();
        let out = shadow_exec.run().map_err(exec_err)?;
        out.by_name("encoded")
            .ok_or_else(|| ServeError::Execution("encode output missing".to_string()))?
            .to_dense_matrix("encoded feedback")
            .map_err(exec_err)
    }

    /// Replay one encoded mini-batch against the shadow, mirroring the
    /// executor's batched training schedule: freeze the whole batch's
    /// scores with one sharded epoch kernel, replay in order, and fall
    /// back to live per-sample rescoring once an update makes the frozen
    /// scores stale. Returns `(updates, rescored)`.
    fn replay(&mut self, queries: &HyperMatrix<f64>, labels: &[usize]) -> Result<(u64, u64)> {
        let plan = self.shard_plan();
        let frozen = score_epoch_sharded(
            queries,
            &self.shadow,
            SimilarityMetric::Cosine,
            Perforation::NONE,
            &plan,
        )
        .map_err(exec_err)?;
        let mut stale = false;
        let mut updates = 0u64;
        let mut rescored = 0u64;
        for (r, &label) in labels.iter().enumerate() {
            let pred = if stale {
                let sample = queries.row_vector(r).map_err(exec_err)?;
                let scores = cosine_similarity_matrix(&sample, &self.shadow, Perforation::NONE)
                    .map_err(exec_err)?;
                rescored += 1;
                ScorePolarity::Similarity.select(scores.as_slice())
            } else {
                select_sharded(frozen.row(r).map_err(exec_err)?, &plan)
            }
            .ok_or_else(|| ServeError::Execution("empty score row".to_string()))?;
            if pred != label {
                let sample = queries.row_vector(r).map_err(exec_err)?;
                update_row_in_place(&mut self.shadow, label, &sample, 1.0).map_err(exec_err)?;
                update_row_in_place(&mut self.shadow, pred, &sample, -1.0).map_err(exec_err)?;
                stale = true;
                updates += 1;
            }
        }
        Ok((updates, rescored))
    }

    /// Re-freeze the shadow: `sign(class_hvs)` through the compiled pass
    /// pipeline, bit-packed under the binarized configuration.
    fn freeze(&self) -> Result<Value> {
        let mut base = Executor::new(&self.freeze_program).map_err(exec_err)?;
        base.bind("class_hvs", Value::matrix(self.shadow.clone()))
            .map_err(exec_err)?;
        let mut shadow_exec = base.fork();
        let out = shadow_exec.run().map_err(exec_err)?;
        out.by_name("class_bits")
            .cloned()
            .ok_or_else(|| ServeError::Execution("freeze output missing".to_string()))
    }

    fn encode_program(&mut self, rows: usize) -> Result<Arc<Program>> {
        if let Some(p) = self.encode_programs.get(&rows) {
            return Ok(Arc::clone(p));
        }
        let mut b = ProgramBuilder::new(format!("online_encode_{}", self.key));
        let queries = b.input_matrix("queries", ElementKind::F64, rows, self.features);
        let rp_in = b.input_matrix("rp_matrix", ElementKind::F64, self.dim, self.features);
        let enc = b.encoding_loop("encode", queries, self.dim, |b, q| {
            let e = b.matmul(q, rp_in);
            b.sign(e)
        });
        b.name_value(enc, "encoded");
        b.mark_output(enc);
        let mut program = b.finish();
        compile(&mut program, &self.compile_options())
            .map_err(|e| ServeError::ModelBuild(e.to_string()))?;
        let arc = Arc::new(program);
        self.encode_programs.insert(rows, Arc::clone(&arc));
        Ok(arc)
    }

    fn compile_options(&self) -> CompileOptions {
        if self.binarized {
            CompileOptions::default()
        } else {
            CompileOptions::baseline()
        }
    }

    fn shard_plan(&self) -> ShardPlan {
        let rows = self.shadow.rows();
        let shards = self
            .class_shards
            .unwrap_or_else(|| default_shard_count(rows, rayon::current_num_threads()));
        ShardPlan::split(rows, shards)
    }
}

/// The frozen-score selection of the batched training schedule: plain
/// first-occurrence arg-max for a single shard, the sharded merge (global
/// lowest-index tie-break) otherwise.
fn select_sharded(row: &[f64], plan: &ShardPlan) -> Option<usize> {
    if plan.shard_count() <= 1 {
        ScorePolarity::Similarity.select(row)
    } else {
        hdc_core::shard::row_arg_max_sharded(row, plan).value
    }
}

fn build_freeze_program(key: &str, classes: usize, dim: usize, binarized: bool) -> Result<Program> {
    let mut b = ProgramBuilder::new(format!("online_freeze_{key}"));
    let hvs = b.input_matrix("class_hvs", ElementKind::F64, classes, dim);
    let bits = b.sign(hvs);
    b.name_value(bits, "class_bits");
    b.mark_output(bits);
    let mut program = b.finish();
    let options = if binarized {
        CompileOptions::default()
    } else {
        CompileOptions::baseline()
    };
    compile(&mut program, &options).map_err(|e| ServeError::ModelBuild(e.to_string()))?;
    Ok(program)
}

fn exec_err(e: impl std::fmt::Display) -> ServeError {
    ServeError::Execution(e.to_string())
}
