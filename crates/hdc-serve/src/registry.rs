//! The compiled-model registry: named, `Arc`-shared, atomically swappable.
//!
//! The registry maps model names to `Arc<ServableModel>`. Lookups clone
//! the `Arc` (a refcount bump), so a request that resolved its model keeps
//! a valid handle even if the name is swapped or removed mid-flight — the
//! COW `Value` store guarantees the old model's artifacts stay intact
//! until the last in-flight window drops them. This is exactly the
//! reader/swapper interplay the online-adaptation roadmap item builds on:
//! a trainer can publish a new class memory with [`ModelRegistry::swap`]
//! while windows against the old one are still executing.

use crate::model::ServableModel;
use crate::{Result, ServeError};
use std::collections::HashMap;
use std::sync::Arc;
// The loom RwLock delegates to `std::sync::RwLock` outside `loom::model`,
// so production behavior is unchanged — but the concurrency models in
// `tests/loom_models.rs` exhaustively explore the *real* registry code
// rather than a transliterated copy.
use loom::sync::RwLock;

/// A thread-safe name → model map.
#[derive(Debug, Default)]
pub struct ModelRegistry {
    models: RwLock<HashMap<String, Arc<ServableModel>>>,
}

impl ModelRegistry {
    /// An empty registry.
    pub fn new() -> Self {
        ModelRegistry::default()
    }

    /// Register (or replace) a model under `name`, returning the previous
    /// model if one was registered.
    pub fn register(&self, name: &str, model: Arc<ServableModel>) -> Option<Arc<ServableModel>> {
        self.models.write().unwrap().insert(name.to_string(), model)
    }

    /// Alias of [`ModelRegistry::register`] emphasizing the atomic
    /// mid-flight replacement use: in-flight windows keep the `Arc` they
    /// resolved; new submissions see the new model.
    pub fn swap(&self, name: &str, model: Arc<ServableModel>) -> Option<Arc<ServableModel>> {
        self.register(name, model)
    }

    /// Remove a model. In-flight windows holding its `Arc` are unaffected.
    pub fn remove(&self, name: &str) -> Option<Arc<ServableModel>> {
        self.models.write().unwrap().remove(name)
    }

    /// Resolve a model by name.
    ///
    /// # Errors
    ///
    /// [`ServeError::UnknownModel`] if no model is registered under
    /// `name`.
    pub fn get(&self, name: &str) -> Result<Arc<ServableModel>> {
        self.models
            .read()
            .unwrap()
            .get(name)
            .cloned()
            .ok_or_else(|| ServeError::UnknownModel(name.to_string()))
    }

    /// Registered model names, sorted (for stable health reports).
    pub fn names(&self) -> Vec<String> {
        let mut names: Vec<String> = self.models.read().unwrap().keys().cloned().collect();
        names.sort();
        names
    }

    /// Number of registered models.
    pub fn len(&self) -> usize {
        self.models.read().unwrap().len()
    }

    /// Whether the registry is empty.
    pub fn is_empty(&self) -> bool {
        self.models.read().unwrap().is_empty()
    }
}
