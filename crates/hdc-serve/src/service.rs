//! The serving front end: request gathering, window dispatch, result
//! scatter, and observability.
//!
//! # Request lifecycle
//!
//! [`Service::submit`] resolves the model from the registry, validates the
//! payload (typed [`ServeError`]s for wrong-dimension / empty / non-finite
//! queries — a bad request is rejected *before* it can join a window, so
//! it can never poison co-batched traffic), and pushes the request into
//! the model's [`Coalescer`]. The returned [`ResponseFuture`] resolves
//! when the dispatcher thread executes the window the request landed in.
//!
//! The dispatcher gathers flushed windows (size-full flushes happen on
//! the submitting thread; deadline flushes on the dispatcher's timer),
//! stacks each window's rows into one query matrix, runs it through the
//! batched executor via [`ServableModel::infer_window`], and scatters the
//! per-row predictions back through oneshot channels.
//!
//! # Model swaps mid-flight
//!
//! A request holds the `Arc` of the model it resolved at submission. If
//! the registry swaps the name before the window executes, the window is
//! partitioned by model identity and each sub-batch runs against the
//! model its requests actually resolved — a swap never changes the answer
//! of an already-accepted request, and the COW store keeps the old
//! artifacts alive until the last in-flight window drops them.
//!
//! # Feedback
//!
//! With an [`OnlineTrainer`] attached ([`Service::attach_trainer`]),
//! [`Service::feedback`] feeds labeled samples into its shadow class
//! memory on the *calling* thread — feedback races query windows by
//! design, and a policy-triggered publish swaps the registry entry while
//! traffic is in flight (the `online_chaos` suite storms exactly this).

use crate::clock::{Clock, SystemClock};
use crate::coalescer::{Coalescer, WindowConfig};
use crate::model::{Prediction, ServableModel};
use crate::online::{FeedOutcome, OnlineTrainer};
use crate::registry::ModelRegistry;
use crate::{Result, ServeError};
use hdc_runtime::StageTraceEntry;
use std::collections::HashMap;
use std::future::Future;
use std::pin::Pin;
use std::sync::atomic::{AtomicBool, Ordering};
use std::sync::{Arc, Condvar, Mutex};
use std::task::{Context, Poll};
use std::time::{Duration, Instant};
use tokio::sync::oneshot;

/// Service tuning knobs.
#[derive(Debug, Clone, Copy)]
pub struct ServiceConfig {
    /// Coalescing window per model (size and delay triggers).
    pub window: WindowConfig,
    /// Class-memory shard override applied to every window executor
    /// (`None` = the executor's automatic thread-count heuristic).
    pub class_shards: Option<usize>,
    /// Whether windows run the batched executor schedule. `false` drops to
    /// the per-sample sequential oracle — only useful to the equivalence
    /// suite.
    pub batched: bool,
}

impl Default for ServiceConfig {
    fn default() -> Self {
        ServiceConfig {
            window: WindowConfig::default(),
            class_shards: None,
            batched: true,
        }
    }
}

/// One accepted request waiting in a window.
struct PendingRequest {
    model: Arc<ServableModel>,
    row: Vec<f64>,
    reply: oneshot::Sender<Result<Prediction>>,
}

/// Counter set behind the stats endpoint. All counters are cumulative
/// since service start; a consistent snapshot is taken under one lock.
#[derive(Debug, Clone, Default, PartialEq)]
pub struct ServiceStats {
    /// Requests accepted into a window.
    pub submitted: u64,
    /// Requests rejected at submission (unknown model, validation).
    pub rejected: u64,
    /// Requests answered with a prediction.
    pub completed: u64,
    /// Requests answered with an execution error.
    pub failed: u64,
    /// Windows dispatched.
    pub windows: u64,
    /// Windows flushed by the size-full trigger.
    pub size_full_windows: u64,
    /// Windows flushed by deadline expiry.
    pub deadline_windows: u64,
    /// Windows flushed by shutdown drain.
    pub drained_windows: u64,
    /// Rows across all dispatched windows.
    pub rows_dispatched: u64,
    /// Largest window dispatched so far.
    pub max_window_rows: u64,
    /// Sum of executor instruction counts across windows.
    pub instructions_executed: u64,
    /// Sum of batched matrix-kernel calls across windows.
    pub batched_kernel_ops: u64,
    /// Sum of bit-kernel (XOR/popcount) reductions across windows.
    pub bit_kernel_ops: u64,
    /// Sum of tensor bytes copied across windows (binding is refcounted,
    /// so this stays proportional to representation conversions only).
    pub tensor_bytes_copied: u64,
    /// Sum of shard merge operations across windows.
    pub shard_merge_ops: u64,
    /// Flushed batches that contained more than one model generation (a
    /// mid-flight swap landed inside the window) and were therefore split
    /// into single-generation sub-windows before execution.
    pub partitioned_windows: u64,
    /// Feedback samples accepted into an online trainer's shadow.
    pub feedback_accepted: u64,
    /// Feedback samples rejected (no trainer, validation, bad label).
    pub feedback_rejected: u64,
    /// Perceptron updates feedback applied across trainers.
    pub online_updates: u64,
    /// Model generations published by feedback-triggered swaps.
    pub swaps_published: u64,
    /// Kernel backend the last window dispatched to.
    pub kernel_backend: &'static str,
}

/// Health snapshot.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Health {
    /// `"ok"` while accepting, `"stopping"` after shutdown began.
    pub status: &'static str,
    /// Registered model names (sorted).
    pub models: Vec<String>,
    /// Requests currently waiting in open windows.
    pub queue_depth: usize,
    /// Time since the service started.
    pub uptime: Duration,
}

/// Shared state between submitters and the dispatcher.
struct Inner {
    registry: Arc<ModelRegistry>,
    config: ServiceConfig,
    clock: Arc<dyn Clock>,
    state: Mutex<State>,
    /// Online trainers by registry key. A separate lock from `state`:
    /// feedback replay runs kernels and must not stall query submission
    /// or the dispatcher's stats updates.
    trainers: Mutex<HashMap<String, OnlineTrainer>>,
    wake: Condvar,
    stopping: AtomicBool,
    started: Instant,
}

struct State {
    /// Open window per model name.
    coalescers: HashMap<String, Coalescer<PendingRequest>>,
    /// Flushed windows awaiting dispatch, in flush order.
    ready: Vec<Vec<PendingRequest>>,
    stats: ServiceStats,
    /// Stage trace of the most recent window (stats endpoint payload).
    last_stage_trace: Vec<StageTraceEntry>,
}

/// The micro-batching inference service. Submissions are accepted from any
/// thread; one dispatcher thread executes windows. Dropping the service
/// shuts it down gracefully (pending windows are drained and answered).
pub struct Service {
    inner: Arc<Inner>,
    dispatcher: Option<std::thread::JoinHandle<()>>,
}

impl std::fmt::Debug for Service {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("Service")
            .field("config", &self.inner.config)
            .field("models", &self.inner.registry.names())
            .finish()
    }
}

/// Future resolving to a request's prediction (or typed error).
pub struct ResponseFuture {
    state: ResponseState,
}

enum ResponseState {
    /// Rejected before entering a window.
    Immediate(Option<ServeError>),
    /// Waiting on the window's scatter.
    Waiting(oneshot::Receiver<Result<Prediction>>),
}

impl Future for ResponseFuture {
    type Output = Result<Prediction>;

    fn poll(self: Pin<&mut Self>, cx: &mut Context<'_>) -> Poll<Self::Output> {
        let this = self.get_mut();
        match &mut this.state {
            ResponseState::Immediate(err) => {
                Poll::Ready(Err(err.take().expect("response polled after completion")))
            }
            ResponseState::Waiting(rx) => match Pin::new(rx).poll(cx) {
                Poll::Ready(Ok(result)) => Poll::Ready(result),
                // The dispatcher dropped the reply channel without
                // answering: only possible on teardown.
                Poll::Ready(Err(_)) => Poll::Ready(Err(ServeError::ShuttingDown)),
                Poll::Pending => Poll::Pending,
            },
        }
    }
}

impl ResponseFuture {
    /// Block the calling thread until the response arrives (for
    /// synchronous callers like the load generator's submitter lanes).
    pub fn wait(self) -> Result<Prediction> {
        tokio::runtime::Runtime::new()
            .expect("compat runtime is infallible")
            .block_on(self)
    }
}

impl Service {
    /// Start a service over `registry` with `config`, spawning the
    /// dispatcher thread.
    pub fn start(registry: Arc<ModelRegistry>, config: ServiceConfig) -> Arc<Service> {
        Service::start_with_clock(registry, config, Arc::new(SystemClock))
    }

    /// [`Service::start`] with an explicit clock (tests inject a
    /// [`MockClock`](crate::MockClock); note deadline *sleeps* still use
    /// real time — the injected clock only decides trigger comparisons).
    pub fn start_with_clock(
        registry: Arc<ModelRegistry>,
        config: ServiceConfig,
        clock: Arc<dyn Clock>,
    ) -> Arc<Service> {
        let inner = Arc::new(Inner {
            registry,
            config,
            clock,
            state: Mutex::new(State {
                coalescers: HashMap::new(),
                ready: Vec::new(),
                stats: ServiceStats::default(),
                last_stage_trace: Vec::new(),
            }),
            trainers: Mutex::new(HashMap::new()),
            wake: Condvar::new(),
            stopping: AtomicBool::new(false),
            started: Instant::now(),
        });
        let worker = Arc::clone(&inner);
        let dispatcher = std::thread::Builder::new()
            .name("hdc-serve-dispatch".to_string())
            .spawn(move || dispatch_loop(&worker))
            .expect("spawning the dispatcher thread");
        Arc::new(Service {
            inner,
            dispatcher: Some(dispatcher),
        })
    }

    /// The registry this service serves from (for mid-flight swaps).
    pub fn registry(&self) -> &Arc<ModelRegistry> {
        &self.inner.registry
    }

    /// Submit one query against the named model. Resolution and validation
    /// happen synchronously; the returned future resolves when the window
    /// containing the request has executed.
    pub fn submit(&self, model_name: &str, row: Vec<f64>) -> ResponseFuture {
        match self.try_enqueue(model_name, row) {
            Ok(rx) => ResponseFuture {
                state: ResponseState::Waiting(rx),
            },
            Err(err) => ResponseFuture {
                state: ResponseState::Immediate(Some(err)),
            },
        }
    }

    fn try_enqueue(
        &self,
        model_name: &str,
        row: Vec<f64>,
    ) -> Result<oneshot::Receiver<Result<Prediction>>> {
        let inner = &self.inner;
        if inner.stopping.load(Ordering::SeqCst) {
            return Err(ServeError::ShuttingDown);
        }
        // Resolve and validate outside the queue lock; count rejections.
        let resolved = inner
            .registry
            .get(model_name)
            .and_then(|model| model.validate_query(&row).map(|()| model));
        let model = match resolved {
            Ok(model) => model,
            Err(err) => {
                inner.state.lock().unwrap().stats.rejected += 1;
                return Err(err);
            }
        };
        let (tx, rx) = oneshot::channel();
        let request = PendingRequest {
            model,
            row,
            reply: tx,
        };
        let now = inner.clock.now();
        let mut state = inner.state.lock().unwrap();
        if inner.stopping.load(Ordering::SeqCst) {
            return Err(ServeError::ShuttingDown);
        }
        state.stats.submitted += 1;
        let window = inner.config.window;
        let coalescer = state
            .coalescers
            .entry(model_name.to_string())
            .or_insert_with(|| Coalescer::new(window));
        if let Some(batch) = coalescer.push(request, now) {
            state.stats.size_full_windows += 1;
            state.ready.push(batch);
        }
        // Wake the dispatcher: either a window is ready or a new deadline
        // needs arming.
        inner.wake.notify_all();
        Ok(rx)
    }

    /// Attach an online trainer for its registry key. Replaces any trainer
    /// already attached under the same key (returning it); subsequent
    /// [`Service::feedback`] calls for that model feed this trainer.
    pub fn attach_trainer(&self, trainer: OnlineTrainer) -> Option<OnlineTrainer> {
        self.inner
            .trainers
            .lock()
            .unwrap()
            .insert(trainer.key().to_string(), trainer)
    }

    /// Submit one labeled feedback sample for the named model's attached
    /// trainer. Runs synchronously on the calling thread: the sample is
    /// encoded, replayed against the trainer's shadow class memory, and —
    /// if the swap policy fires — a new model generation is published
    /// into the registry before this call returns. In-flight query
    /// windows keep the generation they resolved.
    ///
    /// # Errors
    ///
    /// [`ServeError::ShuttingDown`] after shutdown began,
    /// [`ServeError::NoTrainer`] if no trainer is attached for
    /// `model_name`, or any validation/execution error from
    /// [`OnlineTrainer::feed`]. Rejected samples never touch the shadow.
    pub fn feedback(&self, model_name: &str, row: &[f64], label: usize) -> Result<FeedOutcome> {
        let inner = &self.inner;
        if inner.stopping.load(Ordering::SeqCst) {
            return Err(ServeError::ShuttingDown);
        }
        let mut trainers = inner.trainers.lock().unwrap();
        let outcome = match trainers.get_mut(model_name) {
            Some(trainer) => trainer.feed_one(row, label),
            None => Err(ServeError::NoTrainer(model_name.to_string())),
        };
        drop(trainers);
        let mut state = inner.state.lock().unwrap();
        match &outcome {
            Ok(out) => {
                state.stats.feedback_accepted += 1;
                state.stats.online_updates += out.updates;
                if out.published.is_some() {
                    state.stats.swaps_published += 1;
                }
            }
            Err(_) => state.stats.feedback_rejected += 1,
        }
        outcome
    }

    /// A consistent stats snapshot.
    pub fn stats(&self) -> ServiceStats {
        self.inner.state.lock().unwrap().stats.clone()
    }

    /// The stage trace of the most recently executed window.
    pub fn last_stage_trace(&self) -> Vec<StageTraceEntry> {
        self.inner.state.lock().unwrap().last_stage_trace.clone()
    }

    /// Health snapshot.
    pub fn health(&self) -> Health {
        let state = self.inner.state.lock().unwrap();
        let queue_depth = state.coalescers.values().map(Coalescer::len).sum::<usize>()
            + state.ready.iter().map(Vec::len).sum::<usize>();
        Health {
            status: if self.inner.stopping.load(Ordering::SeqCst) {
                "stopping"
            } else {
                "ok"
            },
            models: self.inner.registry.names(),
            queue_depth,
            uptime: self.inner.started.elapsed(),
        }
    }

    /// Health snapshot rendered as JSON (the `/health` endpoint body).
    pub fn health_json(&self) -> String {
        let h = self.health();
        let models = h
            .models
            .iter()
            .map(|m| format!("\"{m}\""))
            .collect::<Vec<_>>()
            .join(", ");
        format!(
            "{{\n  \"status\": \"{}\",\n  \"models\": [{}],\n  \"queue_depth\": {},\n  \"uptime_ms\": {}\n}}",
            h.status,
            models,
            h.queue_depth,
            h.uptime.as_millis()
        )
    }

    /// Stats snapshot rendered as JSON (the `/stats` endpoint body),
    /// including the last window's stage trace.
    pub fn stats_json(&self) -> String {
        let (stats, trace) = {
            let state = self.inner.state.lock().unwrap();
            (state.stats.clone(), state.last_stage_trace.clone())
        };
        let trace_json = trace
            .iter()
            .map(|t| {
                format!(
                    "{{\"node\": \"{}\", \"kind\": \"{}\", \"samples\": {}, \"batched\": {}}}",
                    t.node, t.kind, t.samples, t.batched
                )
            })
            .collect::<Vec<_>>()
            .join(", ");
        format!(
            concat!(
                "{{\n",
                "  \"submitted\": {},\n  \"rejected\": {},\n  \"completed\": {},\n  \"failed\": {},\n",
                "  \"windows\": {},\n  \"size_full_windows\": {},\n  \"deadline_windows\": {},\n",
                "  \"drained_windows\": {},\n  \"rows_dispatched\": {},\n  \"max_window_rows\": {},\n",
                "  \"instructions_executed\": {},\n  \"batched_kernel_ops\": {},\n",
                "  \"bit_kernel_ops\": {},\n  \"tensor_bytes_copied\": {},\n  \"shard_merge_ops\": {},\n",
                "  \"partitioned_windows\": {},\n  \"feedback_accepted\": {},\n",
                "  \"feedback_rejected\": {},\n  \"online_updates\": {},\n  \"swaps_published\": {},\n",
                "  \"kernel_backend\": \"{}\",\n  \"last_stage_trace\": [{}]\n}}"
            ),
            stats.submitted,
            stats.rejected,
            stats.completed,
            stats.failed,
            stats.windows,
            stats.size_full_windows,
            stats.deadline_windows,
            stats.drained_windows,
            stats.rows_dispatched,
            stats.max_window_rows,
            stats.instructions_executed,
            stats.batched_kernel_ops,
            stats.bit_kernel_ops,
            stats.tensor_bytes_copied,
            stats.shard_merge_ops,
            stats.partitioned_windows,
            stats.feedback_accepted,
            stats.feedback_rejected,
            stats.online_updates,
            stats.swaps_published,
            stats.kernel_backend,
            trace_json
        )
    }

    /// Begin shutdown: stop accepting submissions and wake the dispatcher,
    /// which drains pending windows (every accepted request is still
    /// answered) and exits. Idempotent; called by `Drop`.
    pub fn shutdown(&self) {
        self.inner.stopping.store(true, Ordering::SeqCst);
        self.inner.wake.notify_all();
    }
}

impl Drop for Service {
    fn drop(&mut self) {
        self.shutdown();
        if let Some(handle) = self.dispatcher.take() {
            let _ = handle.join();
        }
    }
}

/// The dispatcher loop: wait for ready windows (or deadlines), execute
/// them, scatter results.
fn dispatch_loop(inner: &Arc<Inner>) {
    loop {
        let batches = {
            let mut state = inner.state.lock().unwrap();
            loop {
                // Deadline check against the (injectable) clock.
                let now = inner.clock.now();
                let mut expired = Vec::new();
                for coalescer in state.coalescers.values_mut() {
                    if let Some(batch) = coalescer.poll(now) {
                        expired.push(batch);
                    }
                }
                state.stats.deadline_windows += expired.len() as u64;
                state.ready.append(&mut expired);

                if !state.ready.is_empty() {
                    break std::mem::take(&mut state.ready);
                }
                if inner.stopping.load(Ordering::SeqCst) {
                    // Drain partial windows so no accepted request is
                    // stranded, then exit.
                    let mut drained = Vec::new();
                    for coalescer in state.coalescers.values_mut() {
                        if let Some(batch) = coalescer.drain() {
                            drained.push(batch);
                        }
                    }
                    if drained.is_empty() {
                        return;
                    }
                    state.stats.drained_windows += drained.len() as u64;
                    break drained;
                }
                // Sleep until the earliest open-window deadline (or a
                // submission wakes us).
                let next = state
                    .coalescers
                    .values()
                    .filter_map(Coalescer::next_deadline)
                    .min();
                match next {
                    Some(deadline) => {
                        let wait = deadline.saturating_duration_since(inner.clock.now());
                        if wait.is_zero() {
                            continue;
                        }
                        let (guard, _) = inner.wake.wait_timeout(state, wait).unwrap();
                        state = guard;
                    }
                    None => {
                        state = inner.wake.wait(state).unwrap();
                    }
                }
            }
        };
        for batch in batches {
            execute_window(inner, batch);
        }
    }
}

/// Execute one flushed window: partition by resolved model (a mid-flight
/// swap may leave two model generations in one window), run each
/// sub-batch, scatter per-row results.
fn execute_window(inner: &Arc<Inner>, batch: Vec<PendingRequest>) {
    // Partition preserving submission order within each group.
    let mut groups: Vec<(Arc<ServableModel>, Vec<PendingRequest>)> = Vec::new();
    for request in batch {
        match groups
            .iter_mut()
            .find(|(model, _)| Arc::ptr_eq(model, &request.model))
        {
            Some((_, members)) => members.push(request),
            None => groups.push((Arc::clone(&request.model), vec![request])),
        }
    }
    if groups.len() > 1 {
        inner.state.lock().unwrap().stats.partitioned_windows += 1;
    }
    for (model, members) in groups {
        let rows: Vec<Vec<f64>> = members.iter().map(|r| r.row.clone()).collect();
        let outcome = model.infer_window(&rows, inner.config.batched, inner.config.class_shards);
        let mut state = inner.state.lock().unwrap();
        state.stats.windows += 1;
        state.stats.rows_dispatched += members.len() as u64;
        state.stats.max_window_rows = state.stats.max_window_rows.max(members.len() as u64);
        match outcome {
            Ok(window) => {
                state.stats.completed += members.len() as u64;
                state.stats.instructions_executed += window.stats.instructions_executed as u64;
                state.stats.batched_kernel_ops += window.stats.batched_kernel_ops as u64;
                state.stats.bit_kernel_ops += window.stats.bit_kernel_ops as u64;
                state.stats.tensor_bytes_copied += window.stats.tensor_bytes_copied as u64;
                state.stats.shard_merge_ops += window.stats.shard_merge_ops as u64;
                state.stats.kernel_backend = window.stats.kernel_backend;
                state.last_stage_trace = window.stage_trace;
                drop(state);
                for (request, prediction) in members.into_iter().zip(window.predictions) {
                    let _ = request.reply.send(Ok(prediction));
                }
            }
            Err(err) => {
                state.stats.failed += members.len() as u64;
                drop(state);
                for request in members {
                    let _ = request.reply.send(Err(err.clone()));
                }
            }
        }
    }
}

/// Handle to a running HTTP façade; dropping it stops the listener.
#[derive(Debug)]
pub struct HttpHandle {
    stop: Arc<AtomicBool>,
    thread: Option<std::thread::JoinHandle<()>>,
}

impl Drop for HttpHandle {
    fn drop(&mut self) {
        self.stop.store(true, Ordering::SeqCst);
        if let Some(handle) = self.thread.take() {
            let _ = handle.join();
        }
    }
}

/// Serve `GET /health` and `GET /stats` over HTTP on `addr` (e.g.
/// `"127.0.0.1:0"` for an ephemeral port). Returns the bound address and a
/// handle that stops the listener when dropped.
///
/// This is the observability façade only — inference submission stays
/// in-process ([`Service::submit`]); a wire protocol for queries is out of
/// scope for this crate.
///
/// # Errors
///
/// Propagates the listener bind failure.
pub fn serve_http(
    service: Arc<Service>,
    addr: &str,
) -> std::io::Result<(std::net::SocketAddr, HttpHandle)> {
    use std::io::{Read, Write};
    let listener = std::net::TcpListener::bind(addr)?;
    let local = listener.local_addr()?;
    listener.set_nonblocking(true)?;
    let stop = Arc::new(AtomicBool::new(false));
    let stop_flag = Arc::clone(&stop);
    let thread = std::thread::Builder::new()
        .name("hdc-serve-http".to_string())
        .spawn(move || {
            while !stop_flag.load(Ordering::SeqCst) {
                match listener.accept() {
                    Ok((mut conn, _)) => {
                        let _ = conn.set_read_timeout(Some(Duration::from_millis(200)));
                        let mut buf = [0_u8; 1024];
                        let n = conn.read(&mut buf).unwrap_or(0);
                        let request = String::from_utf8_lossy(&buf[..n]);
                        let path = request.split_whitespace().nth(1).unwrap_or("/");
                        let (status, body) = match path {
                            "/health" => ("200 OK", service.health_json()),
                            "/stats" => ("200 OK", service.stats_json()),
                            _ => ("404 Not Found", "{\"error\": \"not found\"}".to_string()),
                        };
                        let response = format!(
                            "HTTP/1.0 {status}\r\nContent-Type: application/json\r\nContent-Length: {}\r\n\r\n{body}",
                            body.len()
                        );
                        let _ = conn.write_all(response.as_bytes());
                    }
                    Err(ref e) if e.kind() == std::io::ErrorKind::WouldBlock => {
                        std::thread::sleep(Duration::from_millis(5));
                    }
                    Err(_) => break,
                }
            }
        })?;
    Ok((
        local,
        HttpHandle {
            stop,
            thread: Some(thread),
        },
    ))
}

#[cfg(test)]
mod tests {
    use super::*;
    use hdc_apps::ClassificationApp;
    use hdc_datasets::synthetic::{isolet_like, IsoletParams};

    fn small_service(window: WindowConfig) -> (Arc<Service>, Vec<Vec<f64>>) {
        let dataset = isolet_like(&IsoletParams {
            classes: 3,
            features: 16,
            train_per_class: 4,
            test_per_class: 2,
            noise: 1.0,
            seed: 5,
        });
        let rows: Vec<Vec<f64>> = (0..dataset.test.len())
            .map(|i| dataset.test.features.row(i).unwrap().to_vec())
            .collect();
        let app = ClassificationApp::new(dataset, 128, 1).unwrap();
        let model = Arc::new(ServableModel::classifier("cls", &app).unwrap());
        let registry = Arc::new(ModelRegistry::new());
        registry.register("cls", model);
        let service = Service::start(
            registry,
            ServiceConfig {
                window,
                ..ServiceConfig::default()
            },
        );
        (service, rows)
    }

    #[test]
    fn submit_and_complete_roundtrip() {
        let (service, rows) = small_service(WindowConfig {
            max_batch: 4,
            max_delay: Duration::from_millis(1),
        });
        let futures: Vec<_> = rows
            .iter()
            .map(|r| service.submit("cls", r.clone()))
            .collect();
        for f in futures {
            assert!(matches!(f.wait(), Ok(Prediction::Label(_))));
        }
        let stats = service.stats();
        assert_eq!(stats.submitted, rows.len() as u64);
        assert_eq!(stats.completed, rows.len() as u64);
        assert_eq!(stats.failed, 0);
        assert!(stats.windows >= 1);
        assert!(!service.last_stage_trace().is_empty());
    }

    #[test]
    fn unknown_model_is_typed_error() {
        let (service, rows) = small_service(WindowConfig::default());
        let err = service.submit("nope", rows[0].clone()).wait().unwrap_err();
        assert_eq!(err, ServeError::UnknownModel("nope".to_string()));
        assert_eq!(service.stats().rejected, 1);
    }

    #[test]
    fn http_endpoints_answer() {
        use std::io::{Read, Write};
        let (service, rows) = small_service(WindowConfig {
            max_batch: 2,
            max_delay: Duration::from_millis(1),
        });
        service.submit("cls", rows[0].clone()).wait().unwrap();
        let (addr, _handle) = serve_http(Arc::clone(&service), "127.0.0.1:0").unwrap();
        for (path, needle) in [
            ("/health", "\"status\": \"ok\""),
            ("/stats", "\"submitted\": 1"),
        ] {
            let mut conn = std::net::TcpStream::connect(addr).unwrap();
            conn.write_all(format!("GET {path} HTTP/1.0\r\n\r\n").as_bytes())
                .unwrap();
            let mut response = String::new();
            conn.read_to_string(&mut response).unwrap();
            assert!(response.starts_with("HTTP/1.0 200"), "{response}");
            assert!(response.contains(needle), "{path}: {response}");
        }
    }

    #[test]
    fn shutdown_drains_partial_windows() {
        let (service, rows) = small_service(WindowConfig {
            max_batch: 64,
            max_delay: Duration::from_secs(3600),
        });
        // These can only complete if shutdown drains the open window.
        let futures: Vec<_> = rows
            .iter()
            .take(3)
            .map(|r| service.submit("cls", r.clone()))
            .collect();
        service.shutdown();
        for f in futures {
            assert!(f.wait().is_ok());
        }
        assert!(service.stats().drained_windows >= 1);
        assert_eq!(service.health().status, "stopping");
    }
}
