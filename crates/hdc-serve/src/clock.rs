//! Clock abstraction so the coalescer's deadline logic is testable without
//! real sleeps.

use std::sync::Mutex;
use std::time::{Duration, Instant};

/// A monotonic clock the [`Coalescer`](crate::Coalescer) reads deadlines
/// from. Production uses [`SystemClock`]; unit tests use [`MockClock`] to
/// step time deterministically.
pub trait Clock: Send + Sync {
    /// The current instant.
    fn now(&self) -> Instant;
}

/// The real monotonic clock.
#[derive(Debug, Clone, Copy, Default)]
pub struct SystemClock;

impl Clock for SystemClock {
    fn now(&self) -> Instant {
        Instant::now()
    }
}

/// A manually-stepped clock for deterministic coalescer tests: starts at an
/// arbitrary base instant and only moves when [`MockClock::advance`] is
/// called.
#[derive(Debug)]
pub struct MockClock {
    base: Instant,
    offset: Mutex<Duration>,
}

impl Default for MockClock {
    fn default() -> Self {
        MockClock::new()
    }
}

impl MockClock {
    /// A clock frozen at its creation instant.
    pub fn new() -> Self {
        MockClock {
            base: Instant::now(),
            offset: Mutex::new(Duration::ZERO),
        }
    }

    /// Step the clock forward by `by`.
    pub fn advance(&self, by: Duration) {
        *self.offset.lock().unwrap() += by;
    }
}

impl Clock for MockClock {
    fn now(&self) -> Instant {
        self.base + *self.offset.lock().unwrap()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn mock_clock_only_moves_on_advance() {
        let clock = MockClock::new();
        let t0 = clock.now();
        assert_eq!(clock.now(), t0);
        clock.advance(Duration::from_millis(3));
        assert_eq!(clock.now(), t0 + Duration::from_millis(3));
    }

    #[test]
    fn system_clock_is_monotonic() {
        let clock = SystemClock;
        let a = clock.now();
        let b = clock.now();
        assert!(b >= a);
    }
}
