//! Chaos / soak battery: the service must degrade gracefully — typed
//! errors, no panics, consistent stats — while concurrent clients fire
//! malformed queries (wrong dimension, NaN, zero-length), bursts far past
//! the window size, and the registry is swapped mid-flight. Run by CI
//! under `HDC_NUM_THREADS={1,4}`; the combined soak test additionally
//! forces both thread counts in-process via the rayon compat layer.

use hdc_apps::ClassificationApp;
use hdc_datasets::synthetic::{isolet_like, IsoletParams};
use hdc_passes::CompileOptions;
use hdc_serve::{
    ModelRegistry, Prediction, ServableModel, ServeError, Service, ServiceConfig, WindowConfig,
};
use std::sync::Arc;
use std::time::Duration;

const FEATURES: usize = 24;

fn make_model(name: &str, seed: u64, options: &CompileOptions) -> Arc<ServableModel> {
    let dataset = isolet_like(&IsoletParams {
        classes: 3,
        features: FEATURES,
        train_per_class: 5,
        test_per_class: 3,
        noise: 1.0,
        seed,
    });
    let app = ClassificationApp::with_options(dataset, 128, 1, options).unwrap();
    Arc::new(ServableModel::classifier(name, &app).unwrap())
}

fn valid_query(i: usize) -> Vec<f64> {
    (0..FEATURES)
        .map(|j| ((i * 31 + j * 7) % 13) as f64 - 6.0)
        .collect()
}

fn start_service(registry: Arc<ModelRegistry>, max_batch: usize) -> Arc<Service> {
    Service::start(
        registry,
        ServiceConfig {
            window: WindowConfig {
                max_batch,
                max_delay: Duration::from_micros(300),
            },
            ..ServiceConfig::default()
        },
    )
}

/// Malformed traffic from concurrent clients gets typed errors and never
/// poisons the valid requests coalesced around it.
#[test]
fn malformed_queries_get_typed_errors_and_never_poison_windows() {
    let model = make_model("m", 41, &CompileOptions::default());
    let registry = Arc::new(ModelRegistry::new());
    registry.register("m", Arc::clone(&model));
    let service = start_service(registry, 8);
    let oracle: Vec<Prediction> = (0..16)
        .map(|i| model.oracle_infer(&valid_query(i)).unwrap())
        .collect();
    std::thread::scope(|scope| {
        // Well-behaved clients.
        for client in 0..3 {
            let service = &service;
            let oracle = &oracle;
            scope.spawn(move || {
                for round in 0..4 {
                    for (i, expected) in oracle.iter().enumerate() {
                        let got = service.submit("m", valid_query(i)).wait().unwrap();
                        assert_eq!(got, *expected, "client {client} round {round} query {i}");
                    }
                }
            });
        }
        // Abusive clients interleaving malformed traffic.
        for _ in 0..3 {
            let service = &service;
            scope.spawn(move || {
                for i in 0..16 {
                    // Zero-length query.
                    assert_eq!(
                        service.submit("m", vec![]).wait(),
                        Err(ServeError::EmptyQuery)
                    );
                    // Wrong dimension.
                    assert_eq!(
                        service.submit("m", vec![1.0; FEATURES + 3]).wait(),
                        Err(ServeError::WrongDimension {
                            expected: FEATURES,
                            got: FEATURES + 3
                        })
                    );
                    // NaN payload.
                    let mut q = valid_query(i);
                    q[5] = f64::NAN;
                    assert_eq!(
                        service.submit("m", q).wait(),
                        Err(ServeError::NonFinitePayload { index: 5 })
                    );
                    // Infinity payload.
                    let mut q = valid_query(i);
                    q[0] = f64::INFINITY;
                    assert_eq!(
                        service.submit("m", q).wait(),
                        Err(ServeError::NonFinitePayload { index: 0 })
                    );
                    // Unknown model.
                    assert!(matches!(
                        service.submit("nope", valid_query(i)).wait(),
                        Err(ServeError::UnknownModel(_))
                    ));
                }
            });
        }
    });
    let stats = service.stats();
    assert_eq!(stats.completed, 3 * 4 * 16, "all valid requests answered");
    assert_eq!(stats.failed, 0, "no accepted request may fail");
    assert_eq!(
        stats.rejected,
        3 * 16 * 5,
        "every malformed request counted"
    );
    assert_eq!(
        stats.submitted,
        stats.completed + stats.failed,
        "accepted == answered once drained"
    );
    service.shutdown();
}

/// A burst far past the window size: every request still answered
/// correctly, no window exceeds `max_batch` rows.
#[test]
fn burst_past_window_size_is_absorbed() {
    let model = make_model("m", 42, &CompileOptions::default());
    let registry = Arc::new(ModelRegistry::new());
    registry.register("m", Arc::clone(&model));
    let service = start_service(registry, 4);
    let oracle: Vec<Prediction> = (0..8)
        .map(|i| model.oracle_infer(&valid_query(i)).unwrap())
        .collect();
    // 12 clients × 20 requests against a 4-row window.
    std::thread::scope(|scope| {
        for client in 0..12 {
            let service = &service;
            let oracle = &oracle;
            scope.spawn(move || {
                for round in 0..20 {
                    let i = (client + round) % 8;
                    let got = service.submit("m", valid_query(i)).wait().unwrap();
                    assert_eq!(got, oracle[i], "client {client} round {round}");
                }
            });
        }
    });
    let stats = service.stats();
    assert_eq!(stats.completed, 12 * 20);
    assert_eq!(stats.failed, 0);
    assert!(
        stats.max_window_rows <= 4,
        "window overflowed: {} rows",
        stats.max_window_rows
    );
    assert!(
        stats.windows >= (12 * 20) / 4,
        "burst must split into windows"
    );
    service.shutdown();
}

/// Mid-flight registry swaps: in-flight requests are answered by the model
/// they resolved at submission; every response matches one of the swapped
/// generations' oracles; swapping to a model with a different feature
/// count turns stale-shaped traffic into typed errors, not panics.
#[test]
fn registry_swap_mid_flight_is_graceful() {
    let gen_a = make_model("gen-a", 51, &CompileOptions::default());
    let gen_b = make_model("gen-b", 52, &CompileOptions::baseline());
    let registry = Arc::new(ModelRegistry::new());
    registry.register("m", Arc::clone(&gen_a));
    let service = start_service(Arc::clone(&registry), 8);
    let oracle_a: Vec<Prediction> = (0..8)
        .map(|i| gen_a.oracle_infer(&valid_query(i)).unwrap())
        .collect();
    let oracle_b: Vec<Prediction> = (0..8)
        .map(|i| gen_b.oracle_infer(&valid_query(i)).unwrap())
        .collect();
    std::thread::scope(|scope| {
        for _client in 0..4 {
            let service = &service;
            let (oracle_a, oracle_b) = (&oracle_a, &oracle_b);
            scope.spawn(move || {
                for round in 0..30 {
                    let i = round % 8;
                    let got = service.submit("m", valid_query(i)).wait().unwrap();
                    assert!(
                        got == oracle_a[i] || got == oracle_b[i],
                        "round {round}: answer from neither generation"
                    );
                }
            });
        }
        // The swapper flips generations while traffic is in flight.
        let registry = &registry;
        let (gen_a, gen_b) = (&gen_a, &gen_b);
        scope.spawn(move || {
            for flip in 0..40 {
                let next = if flip % 2 == 0 { gen_b } else { gen_a };
                registry.swap("m", Arc::clone(next));
                std::thread::sleep(Duration::from_micros(200));
            }
        });
    });
    let stats = service.stats();
    assert_eq!(stats.failed, 0, "swaps must not fail in-flight requests");
    assert_eq!(stats.completed, 4 * 30);
    // Swap to an incompatible feature count: stale-shaped traffic now gets
    // a typed dimension error.
    let dataset = isolet_like(&IsoletParams {
        classes: 3,
        features: FEATURES * 2,
        train_per_class: 5,
        test_per_class: 2,
        noise: 1.0,
        seed: 53,
    });
    let app = ClassificationApp::new(dataset, 128, 1).unwrap();
    let wide = Arc::new(ServableModel::classifier("wide", &app).unwrap());
    registry.swap("m", wide);
    assert_eq!(
        service.submit("m", valid_query(0)).wait(),
        Err(ServeError::WrongDimension {
            expected: FEATURES * 2,
            got: FEATURES
        })
    );
    service.shutdown();
    // After shutdown: typed rejection, not a panic or a hang.
    assert_eq!(
        service.submit("m", valid_query(0)).wait(),
        Err(ServeError::ShuttingDown)
    );
}

/// The full storm — valid + malformed + bursts + swaps — run once pinned
/// to one worker thread and once on four, exercising both the sequential
/// and sharded parallel kernel paths under chaos.
#[test]
fn soak_storm_under_one_and_four_threads() {
    for threads in [1_usize, 4] {
        rayon::set_num_threads(threads);
        let gen_a = make_model("a", 61, &CompileOptions::default());
        let gen_b = make_model("b", 62, &CompileOptions::default());
        let registry = Arc::new(ModelRegistry::new());
        registry.register("m", Arc::clone(&gen_a));
        let service = start_service(Arc::clone(&registry), 6);
        let oracle_a: Vec<Prediction> = (0..8)
            .map(|i| gen_a.oracle_infer(&valid_query(i)).unwrap())
            .collect();
        let oracle_b: Vec<Prediction> = (0..8)
            .map(|i| gen_b.oracle_infer(&valid_query(i)).unwrap())
            .collect();
        std::thread::scope(|scope| {
            for client in 0..6 {
                let service = &service;
                let (oracle_a, oracle_b) = (&oracle_a, &oracle_b);
                scope.spawn(move || {
                    for round in 0..25 {
                        let i = (client * 3 + round) % 8;
                        if round % 5 == 4 {
                            // One malformed request per five.
                            let mut q = valid_query(i);
                            q[i % FEATURES] = f64::NAN;
                            assert!(matches!(
                                service.submit("m", q).wait(),
                                Err(ServeError::NonFinitePayload { .. })
                            ));
                        } else {
                            let got = service.submit("m", valid_query(i)).wait().unwrap();
                            assert!(
                                got == oracle_a[i] || got == oracle_b[i],
                                "threads={threads} client={client} round={round}"
                            );
                        }
                    }
                });
            }
            let registry = &registry;
            let (gen_a, gen_b) = (&gen_a, &gen_b);
            scope.spawn(move || {
                for flip in 0..20 {
                    registry.swap("m", Arc::clone(if flip % 2 == 0 { gen_b } else { gen_a }));
                    std::thread::sleep(Duration::from_micros(300));
                }
            });
        });
        let stats = service.stats();
        let valid_per_client = 25 - 25 / 5;
        assert_eq!(
            stats.completed,
            6 * valid_per_client as u64,
            "threads={threads}"
        );
        assert_eq!(stats.failed, 0, "threads={threads}");
        assert_eq!(stats.rejected, 6 * (25 / 5) as u64, "threads={threads}");
        assert_eq!(stats.submitted, stats.completed + stats.failed);
        service.shutdown();
    }
}
