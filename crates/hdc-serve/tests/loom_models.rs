//! Exhaustive concurrency models for the serving layer's three shared
//! protocols, explored with the loom model checker:
//!
//! 1. **`ModelRegistry` swap** — readers racing a swap see either the old
//!    or the new model, never a torn or missing entry, and the swap is
//!    last-write-wins. The registry's lock is `loom::sync::RwLock`
//!    (delegating to `std` outside `loom::model`), so these models explore
//!    the *real* registry code.
//! 2. **`Coalescer` flush** — under the service's mutex-wrapping, every
//!    pushed request is delivered in exactly one batch, in submission
//!    order, across every interleaving of pushers.
//! 3. **`OnlineTrainer` publish** — `publish()` is `registry.swap(gen_k)`
//!    from a single `&mut self` publisher; concurrent readers observe a
//!    monotonically non-decreasing generation. The model drives the real
//!    registry with pre-built generation artifacts (building a trainer per
//!    interleaving would re-run the compile pipeline thousands of times
//!    for no extra coverage: the shared state *is* the registry slot).
//!
//! Each model is exhaustive: loom enumerates every schedule of the
//! synchronization operations, so a pass is a proof over the modeled
//! interleaving space, not a lucky run.

use hdc_apps::ClassificationApp;
use hdc_datasets::synthetic::{isolet_like, IsoletParams};
use hdc_serve::{Coalescer, ModelRegistry, ServableModel, WindowConfig};
use loom::sync::{Arc, Mutex};
use loom::thread;
use std::time::{Duration, Instant};

/// One small trained servable model; the models only care about `Arc`
/// identity, so the cheapest valid artifact is enough.
fn servable(seed: u64) -> Arc<ServableModel> {
    let dataset = isolet_like(&IsoletParams {
        classes: 3,
        features: 16,
        train_per_class: 4,
        test_per_class: 2,
        noise: 1.0,
        seed,
    });
    let app = ClassificationApp::new(dataset, 128, 1).expect("model build");
    Arc::new(ServableModel::classifier("loom", &app).expect("servable build"))
}

#[test]
fn registry_swap_is_atomic_for_concurrent_readers() {
    let old_model = servable(1);
    let new_model = servable(2);
    loom::model(move || {
        let registry = Arc::new(ModelRegistry::new());
        registry.register("m", Arc::clone(&old_model));

        let writer_registry = Arc::clone(&registry);
        let writer_model = Arc::clone(&new_model);
        let writer = thread::spawn(move || {
            // The swap must return the model it displaced, not lose it.
            let displaced = writer_registry.swap("m", writer_model);
            assert!(displaced.is_some(), "swap displaced nothing");
        });

        let reader_registry = Arc::clone(&registry);
        let reader_old = Arc::clone(&old_model);
        let reader_new = Arc::clone(&new_model);
        let reader = thread::spawn(move || {
            // At every point of the race the name resolves to exactly one
            // of the two generations — never an error, never a third value.
            let got = reader_registry.get("m").expect("entry vanished mid-swap");
            assert!(
                Arc::ptr_eq(&got, &reader_old) || Arc::ptr_eq(&got, &reader_new),
                "reader observed a torn registry entry"
            );
        });

        writer.join().unwrap();
        reader.join().unwrap();
        // After the swap completes, every reader sees the new generation.
        let finally = registry.get("m").unwrap();
        assert!(Arc::ptr_eq(&finally, &new_model));
        assert_eq!(registry.len(), 1);
    });
}

#[test]
fn registry_concurrent_swaps_are_last_write_wins() {
    let base = servable(3);
    let a = servable(4);
    let b = servable(5);
    loom::model(move || {
        let registry = Arc::new(ModelRegistry::new());
        registry.register("m", Arc::clone(&base));
        let handles: Vec<_> = [Arc::clone(&a), Arc::clone(&b)]
            .into_iter()
            .map(|model| {
                let registry = Arc::clone(&registry);
                thread::spawn(move || registry.swap("m", model))
            })
            .collect();
        let displaced: Vec<_> = handles
            .into_iter()
            .map(|h| h.join().unwrap().expect("swap displaced nothing"))
            .collect();
        // Whichever order the swaps landed, the displaced models are the
        // base plus the loser — nothing is dropped from the chain.
        let finally = registry.get("m").unwrap();
        assert!(Arc::ptr_eq(&finally, &a) || Arc::ptr_eq(&finally, &b));
        assert!(displaced.iter().any(|m| Arc::ptr_eq(m, &base)));
        assert!(displaced
            .iter()
            .chain(std::iter::once(&finally))
            .any(|m| Arc::ptr_eq(m, &a)));
    });
}

#[test]
fn coalescer_flush_is_exactly_once_in_submission_order() {
    loom::model(|| {
        let window = WindowConfig {
            max_batch: 2,
            max_delay: Duration::from_secs(3600),
        };
        // The service wraps the pure coalescer state machine in a mutex;
        // the submission log rides under the same lock so it records the
        // true push order for the order assertion below.
        let shared = Arc::new(Mutex::new((Coalescer::new(window), Vec::new())));
        let flushed: Arc<Mutex<Vec<Vec<u32>>>> = Arc::new(Mutex::new(Vec::new()));

        let pushers: Vec<_> = [1u32, 2u32]
            .into_iter()
            .map(|item| {
                let shared = Arc::clone(&shared);
                let flushed = Arc::clone(&flushed);
                thread::spawn(move || {
                    let batch = {
                        let mut guard = shared.lock().unwrap();
                        let (coalescer, log) = &mut *guard;
                        log.push(item);
                        coalescer.push(item, Instant::now())
                    };
                    if let Some(batch) = batch {
                        flushed.lock().unwrap().push(batch);
                    }
                })
            })
            .collect();
        for p in pushers {
            p.join().unwrap();
        }

        let mut guard = shared.lock().unwrap();
        let (coalescer, log) = &mut *guard;
        assert!(
            coalescer.drain().is_none(),
            "size-full flush left items stranded"
        );
        let batches = flushed.lock().unwrap();
        // Exactly one batch (the filling push flushed, the other did not),
        // carrying both items in the order they were submitted.
        assert_eq!(batches.len(), 1, "batch delivered more than once");
        assert_eq!(&batches[0], log, "flush broke submission order");
    });
}

#[test]
fn online_publish_generation_is_monotonic_for_readers() {
    // `OnlineTrainer::publish` is `registry.swap("key", gen_k)` from one
    // `&mut self` publisher; generations are distinguished by Arc
    // identity, exactly as the service's readers distinguish them.
    let generations: Vec<Arc<ServableModel>> = (0..3).map(|i| servable(10 + i)).collect();
    loom::model(move || {
        let registry = Arc::new(ModelRegistry::new());
        registry.register("m", Arc::clone(&generations[0]));

        let publisher_registry = Arc::clone(&registry);
        let published = [Arc::clone(&generations[1]), Arc::clone(&generations[2])];
        let publisher = thread::spawn(move || {
            for model in published {
                publisher_registry.swap("m", model);
            }
        });

        let reader_registry = Arc::clone(&registry);
        let gens = generations.clone();
        let reader = thread::spawn(move || {
            let index = |model: &Arc<ServableModel>| {
                gens.iter()
                    .position(|g| Arc::ptr_eq(g, model))
                    .expect("reader observed an unpublished generation")
            };
            let first = index(&reader_registry.get("m").unwrap());
            let second = index(&reader_registry.get("m").unwrap());
            assert!(
                second >= first,
                "generation went backwards: {first} then {second}"
            );
        });

        publisher.join().unwrap();
        reader.join().unwrap();
        // After publishing completes, the newest generation is live.
        assert!(Arc::ptr_eq(&registry.get("m").unwrap(), &generations[2]));
    });
}
