//! Serving equivalence battery: a coalesced window of N mixed-client
//! queries must be **bit-identical** to N single-query sequential-oracle
//! runs — for every app model shape, dense and binarized pipelines, and
//! shard counts {1, auto} — including when the queries arrive interleaved
//! from concurrent clients through the live [`Service`].
//!
//! Two layers of checks:
//!
//! * `infer_window` (the model layer, no threads): window output ==
//!   per-row oracle output == the app's own committed inference results.
//! * `Service::submit` under concurrent interleaved submitters: every
//!   response == the oracle answer for that payload regardless of
//!   submission order or which window a request landed in.

use hdc_apps::{ClassificationApp, ClusteringApp, ExecMode, MatchingApp};
use hdc_datasets::synthetic::{hyperoms_like, isolet_like, HyperOmsParams, IsoletParams};
use hdc_passes::CompileOptions;
use hdc_serve::{ModelRegistry, Prediction, ServableModel, Service, ServiceConfig, WindowConfig};
use std::sync::Arc;
use std::time::Duration;

/// One model under test plus its query payloads and app-committed answers.
struct Case {
    model: Arc<ServableModel>,
    queries: Vec<Vec<f64>>,
    /// The app's own per-query predictions, flattened (labels, or top-k
    /// runs of `outputs_per_query` indices).
    expected_flat: Vec<usize>,
}

fn flatten(predictions: &[Prediction]) -> Vec<usize> {
    predictions
        .iter()
        .flat_map(|p| match p {
            Prediction::Label(l) => vec![*l],
            Prediction::TopK(ks) => ks.clone(),
        })
        .collect()
}

fn classifier_case(options: &CompileOptions) -> Case {
    let dataset = isolet_like(&IsoletParams {
        classes: 4,
        features: 32,
        train_per_class: 6,
        test_per_class: 5,
        noise: 1.2,
        seed: 11,
    });
    let queries: Vec<Vec<f64>> = (0..dataset.test.len())
        .map(|i| dataset.test.features.row(i).unwrap().to_vec())
        .collect();
    let app = ClassificationApp::with_options(dataset, 256, 2, options).unwrap();
    let expected_flat = app.run(ExecMode::Batched).unwrap().predictions;
    Case {
        model: Arc::new(ServableModel::classifier("cls", &app).unwrap()),
        queries,
        expected_flat,
    }
}

fn cluster_case(options: &CompileOptions) -> Case {
    let dataset = isolet_like(&IsoletParams {
        classes: 3,
        features: 24,
        train_per_class: 8,
        test_per_class: 2,
        noise: 0.8,
        seed: 23,
    });
    // Assign the training samples: the app's own final assignments are the
    // committed ground truth for them.
    let queries: Vec<Vec<f64>> = (0..dataset.train.len())
        .map(|i| dataset.train.features.row(i).unwrap().to_vec())
        .collect();
    let app = ClusteringApp::with_options(dataset, 128, 2, options).unwrap();
    let expected_flat = app.run(ExecMode::Batched).unwrap().assignments;
    Case {
        model: Arc::new(ServableModel::cluster_assigner("clu", &app).unwrap()),
        queries,
        expected_flat,
    }
}

fn matcher_case(options: &CompileOptions) -> Case {
    let dataset = hyperoms_like(&HyperOmsParams {
        library_size: 16,
        bins: 80,
        peaks: 8,
        queries_per_entry: 2,
        ..HyperOmsParams::default()
    });
    let queries: Vec<Vec<f64>> = (0..dataset.test.len())
        .map(|i| dataset.test.features.row(i).unwrap().to_vec())
        .collect();
    let app = MatchingApp::with_options(dataset, 256, 3, options).unwrap();
    let expected_flat = app.run(ExecMode::Batched).unwrap().candidates;
    Case {
        model: Arc::new(ServableModel::matcher("match", &app).unwrap()),
        queries,
        expected_flat,
    }
}

fn all_cases(options: &CompileOptions) -> Vec<(&'static str, Case)> {
    vec![
        ("classifier", classifier_case(options)),
        ("cluster-assigner", cluster_case(options)),
        ("matcher", matcher_case(options)),
    ]
}

/// Window output must equal the per-row oracle AND the app's committed
/// predictions, for each shard count.
fn check_window_vs_oracle(label: &str, case: &Case, shards: Option<usize>) {
    let window = case
        .model
        .infer_window(&case.queries, true, shards)
        .unwrap();
    for (i, row) in case.queries.iter().enumerate() {
        let oracle = case.model.oracle_infer(row).unwrap();
        assert_eq!(
            window.predictions[i], oracle,
            "{label} shards={shards:?}: window row {i} != oracle"
        );
    }
    assert_eq!(
        flatten(&window.predictions),
        case.expected_flat,
        "{label} shards={shards:?}: serving path != app inference"
    );
}

#[test]
fn coalesced_window_matches_oracle_binarized() {
    for (label, case) in all_cases(&CompileOptions::default()) {
        assert!(
            case.model.binarized(),
            "{label}: default pipeline binarizes"
        );
        for shards in [Some(1), None] {
            check_window_vs_oracle(label, &case, shards);
        }
    }
}

#[test]
fn coalesced_window_matches_oracle_dense() {
    for (label, case) in all_cases(&CompileOptions::baseline()) {
        assert!(!case.model.binarized(), "{label}: baseline stays dense");
        for shards in [Some(1), None] {
            check_window_vs_oracle(label, &case, shards);
        }
    }
}

/// Every prefix batch size (1..=N) must agree with the oracle — the
/// coalescer can flush a window of any size up to `max_batch`.
#[test]
fn every_window_size_matches_oracle() {
    let case = classifier_case(&CompileOptions::default());
    let oracle: Vec<Prediction> = case
        .queries
        .iter()
        .map(|row| case.model.oracle_infer(row).unwrap())
        .collect();
    for n in 1..=case.queries.len() {
        let window = case
            .model
            .infer_window(&case.queries[..n], true, None)
            .unwrap();
        assert_eq!(window.predictions, oracle[..n], "window size {n}");
    }
}

/// Interleaved concurrent submission through the live service: C client
/// threads submit their slices of the query stream in round-robin
/// interleaving; each response must equal the oracle for its payload, no
/// matter how the coalescer grouped them.
fn check_interleaved_service(label: &str, case: &Case, shards: Option<usize>) {
    let registry = Arc::new(ModelRegistry::new());
    registry.register("m", Arc::clone(&case.model));
    let service = Service::start(
        registry,
        ServiceConfig {
            window: WindowConfig {
                max_batch: 4,
                max_delay: Duration::from_micros(300),
            },
            class_shards: shards,
            batched: true,
        },
    );
    let oracle: Vec<Prediction> = case
        .queries
        .iter()
        .map(|row| case.model.oracle_infer(row).unwrap())
        .collect();
    // Several rounds so windows mix requests from different clients in
    // different orders.
    for round in 0..3 {
        let clients = 3;
        std::thread::scope(|scope| {
            for client in 0..clients {
                let service = &service;
                let case = &case;
                let oracle = &oracle;
                scope.spawn(move || {
                    // Round-robin slice, rotated per round so submission
                    // order varies between rounds.
                    let mut i = (client + round) % clients;
                    while i < case.queries.len() {
                        let got = service.submit("m", case.queries[i].clone()).wait().unwrap();
                        assert_eq!(
                            got, oracle[i],
                            "{label} shards={shards:?} round {round}: query {i}"
                        );
                        i += clients;
                    }
                });
            }
        });
    }
    let stats = service.stats();
    assert_eq!(stats.failed, 0, "{label}: no request may fail");
    assert_eq!(
        stats.completed,
        3 * case.queries.len() as u64,
        "{label}: every submission answered"
    );
    service.shutdown();
}

#[test]
fn interleaved_submission_matches_oracle_binarized() {
    for (label, case) in all_cases(&CompileOptions::default()) {
        for shards in [Some(1), None] {
            check_interleaved_service(label, &case, shards);
        }
    }
}

#[test]
fn interleaved_submission_matches_oracle_dense() {
    for (label, case) in all_cases(&CompileOptions::baseline()) {
        for shards in [Some(1), None] {
            check_interleaved_service(label, &case, shards);
        }
    }
}

/// Sequential dispatch (batched stages off) must also be bit-identical —
/// the batched/sequential equivalence the rest of the repo pins extends
/// through the serving layer.
#[test]
fn sequential_dispatch_matches_batched() {
    let case = classifier_case(&CompileOptions::default());
    let batched = case.model.infer_window(&case.queries, true, None).unwrap();
    let sequential = case.model.infer_window(&case.queries, false, None).unwrap();
    assert_eq!(batched.predictions, sequential.predictions);
}
