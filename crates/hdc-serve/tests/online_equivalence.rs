//! Online/offline training equivalence: the online trainer is not allowed
//! to be a second trainer. Feeding the offline training set through
//! [`OnlineTrainer::feed`] in epoch order and publishing once must produce
//! a class memory **bit-identical** to the offline batched trainer's — for
//! the binarized pipeline and the dense baseline, and for sharded and
//! unsharded frozen-score selection. Run by CI under
//! `HDC_NUM_THREADS={1,4}`.

use hdc_apps::ClassificationApp;
use hdc_core::{BitMatrix, HyperMatrix};
use hdc_datasets::synthetic::{isolet_like, IsoletParams};
use hdc_passes::CompileOptions;
use hdc_runtime::Value;
use hdc_serve::service::{Service, ServiceConfig};
use hdc_serve::{ModelRegistry, OnlineTrainer, OnlineTrainerConfig, ServableModel, SwapPolicy};
use std::sync::Arc;

const FEATURES: usize = 24;
const DIM: usize = 128;
const CLASSES: usize = 4;
const EPOCHS: usize = 3;

fn dataset() -> hdc_datasets::Dataset {
    isolet_like(&IsoletParams {
        classes: CLASSES,
        features: FEATURES,
        train_per_class: 6,
        test_per_class: 3,
        noise: 1.2,
        seed: 0x0e11,
    })
}

/// Register an untrained model — zero dense accumulator, frozen memory =
/// `sign(0)` (all `+1`: clear bits when packed) — built from the offline
/// app's own projection matrix, and attach a trainer. Starting from the
/// zero accumulator makes the trainer's replay start exactly where the
/// offline trainer's epoch loop starts.
fn seed_trainer(
    rp: Value,
    binarized: bool,
    class_shards: Option<usize>,
) -> (Arc<ModelRegistry>, OnlineTrainer) {
    let frozen = if binarized {
        Value::bit_matrix(BitMatrix::zeros(CLASSES, DIM))
    } else {
        Value::matrix(HyperMatrix::<f64>::zeros(CLASSES, DIM).sign())
    };
    let zeros = Value::matrix(HyperMatrix::zeros(CLASSES, DIM));
    let model =
        ServableModel::classifier_from_artifacts("m", FEATURES, rp, frozen, Some(zeros)).unwrap();
    let registry = Arc::new(ModelRegistry::new());
    registry.register("m", Arc::new(model));
    let trainer = OnlineTrainer::attach(
        Arc::clone(&registry),
        "m",
        OnlineTrainerConfig {
            policy: SwapPolicy::manual(),
            class_shards,
        },
    )
    .unwrap();
    (registry, trainer)
}

fn train_rows(data: &hdc_datasets::Dataset) -> (Vec<Vec<f64>>, Vec<usize>) {
    let rows = data
        .train
        .features
        .iter_rows()
        .map(|r| r.to_vec())
        .collect();
    (rows, data.train.labels.clone())
}

/// Feeding the whole training set once per epoch and publishing once must
/// reproduce the offline batched trainer bit for bit: the published frozen
/// class memory equals the offline harvest's `class_bits`, and the dense
/// shadow equals the offline accumulator `class_hvs`. Checked for the
/// binarized pipeline and the dense baseline, with the frozen-score
/// selection both unsharded (`Some(1)`) and auto-sharded (`None`).
#[test]
fn epoch_order_feeds_reproduce_offline_training_bit_for_bit() {
    for (options, binarized, label) in [
        (CompileOptions::default(), true, "binarized"),
        (CompileOptions::baseline(), false, "baseline"),
    ] {
        let offline = ClassificationApp::with_options(dataset(), DIM, EPOCHS, &options).unwrap();
        let harvested = offline.harvest_artifacts().unwrap();
        for shards in [Some(1), None] {
            let (registry, mut trainer) =
                seed_trainer(harvested.rp_matrix.clone(), binarized, shards);
            let (rows, labels) = train_rows(offline.dataset());
            for _epoch in 0..EPOCHS {
                trainer.feed(&rows, &labels).unwrap();
            }
            let published = trainer.publish().unwrap();
            assert_eq!(
                published.class_memory().unwrap(),
                &harvested.class_bits,
                "{label} shards={shards:?}: published frozen memory diverged from offline",
            );
            assert_eq!(
                published.train_state().unwrap(),
                &harvested.class_hvs,
                "{label} shards={shards:?}: published accumulator diverged from offline",
            );
            assert_eq!(
                Value::matrix(trainer.shadow().clone()),
                harvested.class_hvs,
                "{label} shards={shards:?}: shadow diverged from offline accumulator",
            );
            // The registry now serves the published generation.
            assert!(Arc::ptr_eq(&registry.get("m").unwrap(), &published));
            assert_eq!(trainer.generation(), 1);
        }
    }
}

/// One epoch of per-sample feeds (mini-batch size 1) equals one offline
/// epoch: the stale-flag replay protocol makes batch boundaries invisible
/// to the trained result.
#[test]
fn per_sample_feeds_match_offline_single_epoch() {
    let options = CompileOptions::default();
    let offline = ClassificationApp::with_options(dataset(), DIM, 1, &options).unwrap();
    let harvested = offline.harvest_artifacts().unwrap();
    let (_registry, mut trainer) = seed_trainer(harvested.rp_matrix.clone(), true, None);
    let (rows, labels) = train_rows(offline.dataset());
    for (row, &label) in rows.iter().zip(&labels) {
        trainer.feed_one(row, label).unwrap();
    }
    let published = trainer.publish().unwrap();
    assert_eq!(published.class_memory().unwrap(), &harvested.class_bits);
    assert_eq!(Value::matrix(trainer.shadow().clone()), harvested.class_hvs,);
}

/// Publishing with zero unpublished updates is a no-op: the registry entry
/// is returned unchanged (`Arc::ptr_eq`), every artifact is untouched, and
/// no generation is burned.
#[test]
fn zero_update_publish_is_a_noop() {
    let offline =
        ClassificationApp::with_options(dataset(), DIM, EPOCHS, &CompileOptions::default())
            .unwrap();
    let harvested = offline.harvest_artifacts().unwrap();
    let (registry, mut trainer) = seed_trainer(harvested.rp_matrix.clone(), true, None);
    let before = registry.get("m").unwrap();
    let published = trainer.publish().unwrap();
    assert!(
        Arc::ptr_eq(&published, &before),
        "no-op publish must return the live Arc"
    );
    assert!(Arc::ptr_eq(&registry.get("m").unwrap(), &before));
    assert_eq!(trainer.generation(), 0);
    assert_eq!(trainer.stats().publishes, 0);
    // Same after a feed that applies no update: predict-correct samples
    // leave the shadow untouched, so the policy never fires and an
    // explicit publish still no-ops.
    let (rows, labels) = train_rows(&dataset());
    let mut trainer2 = {
        let model = Arc::new(ServableModel::classifier("trained", &offline).unwrap());
        registry.register("trained", model);
        OnlineTrainer::attach(
            Arc::clone(&registry),
            "trained",
            OnlineTrainerConfig::default(),
        )
        .unwrap()
    };
    // Replay the training set until an epoch applies zero updates (the
    // perceptron converged for this separable toy set), then publish.
    let mut converged = false;
    for _ in 0..10 {
        let out = trainer2.feed(&rows, &labels).unwrap();
        if out.updates == 0 {
            converged = true;
            break;
        }
        trainer2.publish().unwrap();
    }
    assert!(
        converged,
        "toy training set failed to converge in 10 epochs"
    );
    let live = registry.get("trained").unwrap();
    let republished = trainer2.publish().unwrap();
    assert!(Arc::ptr_eq(&republished, &live));
}

/// Every published generation shares the projection matrix payload with
/// the attach-time model: publishing is a refcount bump on `rp_matrix`,
/// never a copy.
#[test]
fn generations_share_the_projection_payload() {
    let offline =
        ClassificationApp::with_options(dataset(), DIM, 1, &CompileOptions::default()).unwrap();
    let harvested = offline.harvest_artifacts().unwrap();
    let (registry, mut trainer) = seed_trainer(harvested.rp_matrix.clone(), true, None);
    let before = registry.get("m").unwrap();
    let (rows, labels) = train_rows(&dataset());
    trainer.feed(&rows, &labels).unwrap();
    let published = trainer.publish().unwrap();
    assert!(!Arc::ptr_eq(&published, &before));
    let (rp_before, _) = before.projection().dense_matrix("rp").unwrap();
    let (rp_after, _) = published.projection().dense_matrix("rp").unwrap();
    assert!(
        Arc::ptr_eq(&rp_before, &rp_after),
        "projection payload must be shared across generations"
    );
}

/// The swapped-in generation answers requests through the service exactly
/// as its own oracle does — the serving path and the publish path agree on
/// what the new model is.
#[test]
fn service_answers_match_published_generation_oracle() {
    let offline =
        ClassificationApp::with_options(dataset(), DIM, 1, &CompileOptions::default()).unwrap();
    let harvested = offline.harvest_artifacts().unwrap();
    let (registry, mut trainer) = seed_trainer(harvested.rp_matrix.clone(), true, None);
    let (rows, labels) = train_rows(&dataset());
    for _ in 0..EPOCHS {
        trainer.feed(&rows, &labels).unwrap();
    }
    let published = trainer.publish().unwrap();
    let service = Service::start(Arc::clone(&registry), ServiceConfig::default());
    for row in rows.iter().take(8) {
        let expected = published.oracle_infer(row).unwrap();
        let got = service.submit("m", row.clone()).wait().unwrap();
        assert_eq!(got, expected);
    }
    service.shutdown();
}
