//! Online-adaptation chaos battery: concurrent labeled feedback, query
//! traffic, and policy-triggered mid-flight generation swaps must never
//! tear a response. Every answer matches *some* published generation's
//! sequential oracle, the stats ledger balances
//! (`submitted == completed + failed`, `failed == 0`), and a window that
//! catches a swap mid-flight partitions by generation instead of mixing
//! them. Run by CI under `HDC_NUM_THREADS={1,4}`; the storm additionally
//! forces both worker counts in-process via the rayon compat layer.

use hdc_apps::ClassificationApp;
use hdc_datasets::synthetic::{isolet_like, IsoletParams};
use hdc_passes::CompileOptions;
use hdc_serve::{
    ModelRegistry, OnlineTrainer, OnlineTrainerConfig, Prediction, ServableModel, ServeError,
    Service, ServiceConfig, SwapPolicy, WindowConfig,
};
use std::sync::{Arc, Mutex};
use std::time::Duration;

const FEATURES: usize = 24;
const CLASSES: usize = 3;

fn make_model(name: &str, seed: u64) -> Arc<ServableModel> {
    let dataset = isolet_like(&IsoletParams {
        classes: CLASSES,
        features: FEATURES,
        train_per_class: 5,
        test_per_class: 3,
        noise: 1.0,
        seed,
    });
    let app = ClassificationApp::with_options(dataset, 128, 1, &CompileOptions::default()).unwrap();
    Arc::new(ServableModel::classifier(name, &app).unwrap())
}

fn valid_query(i: usize) -> Vec<f64> {
    (0..FEATURES)
        .map(|j| ((i * 31 + j * 7) % 13) as f64 - 6.0)
        .collect()
}

/// A feedback row that keeps the perceptron updating: deterministic
/// features with a rotating label guarantee steady mispredictions, so the
/// swap policy keeps firing for the whole storm.
fn feedback_row(i: usize) -> Vec<f64> {
    (0..FEATURES)
        .map(|j| ((i * 17 + j * 11) % 9) as f64 - 4.0)
        .collect()
}

/// The storm: query clients, feedback threads driving policy-triggered
/// swaps, and malformed feedback interleaved — once pinned to one rayon
/// worker and once on four. Post-storm, every recorded response must match
/// the sequential oracle of one of the generations that existed during the
/// run, and the request ledger must balance exactly.
#[test]
fn feedback_query_swap_storm_under_one_and_four_threads() {
    for threads in [1_usize, 4] {
        rayon::set_num_threads(threads);
        let gen0 = make_model("m", 71);
        let registry = Arc::new(ModelRegistry::new());
        registry.register("m", Arc::clone(&gen0));
        let service = Service::start(
            Arc::clone(&registry),
            ServiceConfig {
                window: WindowConfig {
                    max_batch: 6,
                    max_delay: Duration::from_micros(300),
                },
                ..ServiceConfig::default()
            },
        );
        let trainer = OnlineTrainer::attach(
            Arc::clone(&registry),
            "m",
            OnlineTrainerConfig {
                policy: SwapPolicy::every_updates(4),
                class_shards: None,
            },
        )
        .unwrap();
        service.attach_trainer(trainer);

        // Every generation that ever served: the starting model plus each
        // one the swap policy publishes mid-storm.
        let generations: Mutex<Vec<Arc<ServableModel>>> = Mutex::new(vec![Arc::clone(&gen0)]);
        // (query index, answer) pairs recorded by the query clients;
        // checked post-storm once the generation set is complete.
        let answers: Mutex<Vec<(usize, Prediction)>> = Mutex::new(Vec::new());
        let mut expected_feedback = 0u64;

        std::thread::scope(|scope| {
            // Query clients.
            for client in 0..4 {
                let service = &service;
                let answers = &answers;
                scope.spawn(move || {
                    for round in 0..25 {
                        let i = (client * 5 + round) % 8;
                        let got = service.submit("m", valid_query(i)).wait().unwrap();
                        answers.lock().unwrap().push((i, got));
                    }
                });
            }
            // Feedback threads: rotating labels force steady updates, so
            // `every_updates(4)` publishes repeatedly mid-storm.
            for worker in 0..2 {
                let service = &service;
                let generations = &generations;
                scope.spawn(move || {
                    for round in 0..30 {
                        let i = worker * 13 + round;
                        let label = (i + round) % CLASSES;
                        let out = service.feedback("m", &feedback_row(i), label).unwrap();
                        if let Some(model) = out.published {
                            generations.lock().unwrap().push(model);
                        }
                    }
                });
            }
            expected_feedback += 2 * 30;
            // An abusive feedback client: typed errors, no poisoning.
            {
                let service = &service;
                scope.spawn(move || {
                    for i in 0..10 {
                        assert!(matches!(
                            service.feedback("m", &feedback_row(i), CLASSES + 2),
                            Err(ServeError::UnknownLabel { label, classes })
                                if label == CLASSES + 2 && classes == CLASSES
                        ));
                        assert!(matches!(
                            service.feedback("m", &[1.0; FEATURES + 1], 0),
                            Err(ServeError::WrongDimension { expected, got })
                                if expected == FEATURES && got == FEATURES + 1
                        ));
                        assert!(matches!(
                            service.feedback("nope", &feedback_row(i), 0),
                            Err(ServeError::NoTrainer(_))
                        ));
                    }
                });
            }
        });

        // Post-storm: every response came from some published generation.
        let generations = generations.into_inner().unwrap();
        assert!(
            generations.len() > 1,
            "threads={threads}: the storm must publish at least one new generation"
        );
        let oracle: Vec<Vec<Prediction>> = generations
            .iter()
            .map(|g| {
                (0..8)
                    .map(|i| g.oracle_infer(&valid_query(i)).unwrap())
                    .collect()
            })
            .collect();
        for (i, got) in answers.into_inner().unwrap() {
            assert!(
                oracle.iter().any(|gen| gen[i] == got),
                "threads={threads}: query {i} answered by no published generation"
            );
        }

        let stats = service.stats();
        assert_eq!(stats.completed, 4 * 25, "threads={threads}");
        assert_eq!(stats.failed, 0, "threads={threads}");
        assert_eq!(
            stats.submitted,
            stats.completed + stats.failed,
            "threads={threads}: ledger must balance"
        );
        assert_eq!(
            stats.feedback_accepted, expected_feedback,
            "threads={threads}"
        );
        assert_eq!(stats.feedback_rejected, 10 * 3, "threads={threads}");
        assert_eq!(
            stats.swaps_published,
            (generations.len() - 1) as u64,
            "threads={threads}: every recorded publish counted once"
        );
        assert!(stats.online_updates >= stats.swaps_published * 4);
        service.shutdown();
    }
}

/// A window that catches a swap mid-flight never mixes generations: the
/// batch partitions into one sub-window per resolved model, each answered
/// by its own generation's oracle, and the `partitioned_windows` counter
/// records the event.
#[test]
fn mid_flight_swap_partitions_the_window_by_generation() {
    let gen_a = make_model("gen-a", 81);
    let gen_b = make_model("gen-b", 82);
    let registry = Arc::new(ModelRegistry::new());
    registry.register("m", Arc::clone(&gen_a));
    // A window big and slow enough that both submissions coalesce into it.
    let service = Service::start(
        Arc::clone(&registry),
        ServiceConfig {
            window: WindowConfig {
                max_batch: 4,
                max_delay: Duration::from_millis(50),
            },
            ..ServiceConfig::default()
        },
    );
    let first = service.submit("m", valid_query(0));
    // The swap lands while the first request is still coalescing.
    registry.swap("m", Arc::clone(&gen_b));
    let second = service.submit("m", valid_query(1));
    assert_eq!(
        first.wait().unwrap(),
        gen_a.oracle_infer(&valid_query(0)).unwrap(),
        "pre-swap request must be answered by the generation it resolved"
    );
    assert_eq!(
        second.wait().unwrap(),
        gen_b.oracle_infer(&valid_query(1)).unwrap(),
        "post-swap request must be answered by the new generation"
    );
    let stats = service.stats();
    assert_eq!(
        stats.partitioned_windows, 1,
        "one mixed window, partitioned"
    );
    assert_eq!(stats.windows, 2, "one executed sub-window per generation");
    assert_eq!(stats.failed, 0);
    service.shutdown();
}

/// Feedback through the service after shutdown: typed rejection, not a
/// panic or a hang — and the rejection is not counted as accepted.
#[test]
fn feedback_after_shutdown_is_rejected_typed() {
    let gen0 = make_model("m", 91);
    let registry = Arc::new(ModelRegistry::new());
    registry.register("m", Arc::clone(&gen0));
    let service = Service::start(Arc::clone(&registry), ServiceConfig::default());
    let trainer =
        OnlineTrainer::attach(Arc::clone(&registry), "m", OnlineTrainerConfig::default()).unwrap();
    service.attach_trainer(trainer);
    assert!(service.feedback("m", &feedback_row(0), 0).is_ok());
    service.shutdown();
    assert!(matches!(
        service.feedback("m", &feedback_row(1), 0),
        Err(ServeError::ShuttingDown)
    ));
    let stats = service.stats();
    assert_eq!(stats.feedback_accepted, 1);
}
