//! The pass manager: a unified [`Pass`] abstraction, ordering constraints,
//! per-pass reports, and re-verification of the IR after every step.
//!
//! The original HPVM-HDC compiler sequences its transformations inside the
//! LLVM pass pipeline; this module reproduces that structure for the Rust
//! reproduction. Every transformation implements [`Pass`]; a [`PassManager`]
//! runs a configured sequence, checks each pass's declared ordering
//! constraints against the actual sequence, and runs the IR verifier after
//! every step so that a transformation bug is caught at the step that
//! introduced it rather than at execution time.
//!
//! [`compile`] assembles the paper's standard pipeline (automatic
//! binarization → reduction perforation → data-movement hoisting → target
//! assignment → DCE) from a [`CompileOptions`].

use crate::binarize::{BinarizeOptions, BinarizePass, BinarizeReport};
use crate::data_movement::{DataMovementPass, DataMovementReport};
use crate::dce::{DcePass, DceReport};
use crate::perforation::{PerforationConfig, PerforationPass, PerforationReport};
use crate::target_assign::{TargetAssignPass, TargetAssignReport, TargetConfig};
use hdc_ir::program::Program;
use hdc_ir::verify::{verify, VerifyErrors};
use std::fmt;

/// The report produced by one pass execution.
///
/// Every built-in pass has a typed variant so callers can inspect its
/// statistics without downcasting; passes defined outside this crate use
/// [`PassReport::Message`].
#[derive(Debug, Clone, PartialEq)]
pub enum PassReport {
    /// Report of the automatic-binarization pass.
    Binarize(BinarizeReport),
    /// Report of the reduction-perforation pass.
    Perforation(PerforationReport),
    /// Report of the data-movement hoisting pass.
    DataMovement(DataMovementReport),
    /// Report of the target-assignment pass.
    TargetAssign(TargetAssignReport),
    /// Report of the dead-code-elimination pass.
    Dce(DceReport),
    /// Free-form report for passes defined outside this crate.
    Message(String),
}

impl PassReport {
    /// One-line human-readable summary of the report.
    pub fn summary(&self) -> String {
        match self {
            PassReport::Binarize(r) => format!(
                "binarized {} values ({} instrs affected), {}B -> {}B ({:.1}x)",
                r.binarized_values,
                r.affected_instrs,
                r.bytes_before,
                r.bytes_after,
                r.reduction_factor()
            ),
            PassReport::Perforation(r) => format!(
                "annotated {} reductions ({} skipped on accelerators)",
                r.annotated_instrs, r.skipped_on_accelerators
            ),
            PassReport::DataMovement(r) => format!(
                "hoisted {} values across {} stages ({}B per iteration)",
                r.hoisted_values, r.stages, r.hoisted_bytes_per_iteration
            ),
            PassReport::TargetAssign(r) => format!(
                "assigned {} nodes ({} stages demoted to fallback)",
                r.assigned_nodes, r.demoted_stages
            ),
            PassReport::Dce(r) => format!("removed {} dead instructions", r.removed_instrs),
            PassReport::Message(m) => m.clone(),
        }
    }
}

/// A compiler transformation over HPVM-HDC IR.
///
/// Passes mutate the program in place and return a [`PassReport`]. A pass may
/// declare ordering constraints via [`Pass::run_after`]; the [`PassManager`]
/// rejects pipelines that violate them (constraints only apply between passes
/// that are both present in the pipeline).
pub trait Pass {
    /// Stable name used in reports and ordering constraints.
    fn name(&self) -> &'static str;

    /// Names of passes that, when present in the same pipeline, must run
    /// before this one.
    fn run_after(&self) -> &'static [&'static str] {
        &[]
    }

    /// Execute the pass.
    fn run(&mut self, program: &mut Program) -> PassReport;
}

/// The outcome of one pipeline step.
#[derive(Debug, Clone, PartialEq)]
pub struct PassOutcome {
    /// The pass that ran.
    pub pass: &'static str,
    /// Its report.
    pub report: PassReport,
}

/// The outcome of a whole pipeline run.
#[derive(Debug, Clone, PartialEq, Default)]
pub struct PipelineReport {
    /// One outcome per executed pass, in execution order.
    pub outcomes: Vec<PassOutcome>,
}

impl PipelineReport {
    /// Look up the report of a pass by name.
    pub fn report_for(&self, pass: &str) -> Option<&PassReport> {
        self.outcomes
            .iter()
            .find(|o| o.pass == pass)
            .map(|o| &o.report)
    }

    /// The binarization report, if the pipeline ran that pass.
    pub fn binarize(&self) -> Option<&BinarizeReport> {
        self.outcomes.iter().find_map(|o| match &o.report {
            PassReport::Binarize(r) => Some(r),
            _ => None,
        })
    }

    /// The target-assignment report, if the pipeline ran that pass.
    pub fn target_assign(&self) -> Option<&TargetAssignReport> {
        self.outcomes.iter().find_map(|o| match &o.report {
            PassReport::TargetAssign(r) => Some(r),
            _ => None,
        })
    }
}

impl fmt::Display for PipelineReport {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        for o in &self.outcomes {
            writeln!(f, "{:<16} {}", o.pass, o.report.summary())?;
        }
        Ok(())
    }
}

/// Failures raised by [`PassManager::run`].
#[derive(Debug, Clone, PartialEq)]
pub enum PipelineError {
    /// The configured sequence violates a pass's ordering constraint.
    OrderingViolation {
        /// The pass whose constraint was violated.
        pass: &'static str,
        /// The pass that must run earlier but was scheduled later (or after
        /// `pass` in the sequence).
        must_follow: &'static str,
    },
    /// The IR verifier failed after a pass ran.
    VerificationFailed {
        /// The pass after which verification failed (`"<input>"` when the
        /// program was invalid before any pass ran).
        pass: String,
        /// The verifier's failures.
        errors: VerifyErrors,
    },
}

impl fmt::Display for PipelineError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            PipelineError::OrderingViolation { pass, must_follow } => write!(
                f,
                "pipeline ordering violation: pass `{pass}` must run after `{must_follow}`"
            ),
            PipelineError::VerificationFailed { pass, errors } => {
                write!(f, "IR invalid after pass `{pass}`: {errors}")
            }
        }
    }
}

impl std::error::Error for PipelineError {}

/// Runs a sequence of passes with ordering validation and per-step
/// re-verification.
#[derive(Default)]
pub struct PassManager {
    passes: Vec<Box<dyn Pass>>,
    verify_each_step: bool,
}

impl fmt::Debug for PassManager {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.debug_struct("PassManager")
            .field(
                "passes",
                &self.passes.iter().map(|p| p.name()).collect::<Vec<_>>(),
            )
            .field("verify_each_step", &self.verify_each_step)
            .finish()
    }
}

impl PassManager {
    /// An empty manager that re-verifies the IR after every pass.
    pub fn new() -> Self {
        PassManager {
            passes: Vec::new(),
            verify_each_step: true,
        }
    }

    /// Enable or disable per-step re-verification (enabled by default). The
    /// program is always verified once before the first pass and once after
    /// the last.
    pub fn verify_each_step(mut self, on: bool) -> Self {
        self.verify_each_step = on;
        self
    }

    /// Append a pass (builder style).
    pub fn with_pass(mut self, pass: impl Pass + 'static) -> Self {
        self.passes.push(Box::new(pass));
        self
    }

    /// Append a pass.
    pub fn add_pass(&mut self, pass: impl Pass + 'static) -> &mut Self {
        self.passes.push(Box::new(pass));
        self
    }

    /// Names of the scheduled passes, in order.
    pub fn pass_names(&self) -> Vec<&'static str> {
        self.passes.iter().map(|p| p.name()).collect()
    }

    /// Validate ordering constraints without running anything.
    ///
    /// # Errors
    ///
    /// Returns [`PipelineError::OrderingViolation`] for the first constraint
    /// the configured sequence breaks.
    pub fn check_ordering(&self) -> Result<(), PipelineError> {
        let names = self.pass_names();
        for (i, pass) in self.passes.iter().enumerate() {
            for &dep in pass.run_after() {
                if let Some(pos) = names.iter().position(|&n| n == dep) {
                    if pos > i {
                        return Err(PipelineError::OrderingViolation {
                            pass: pass.name(),
                            must_follow: dep,
                        });
                    }
                }
            }
        }
        Ok(())
    }

    /// Run all passes over `program`.
    ///
    /// The sequence is first checked against the passes' ordering
    /// constraints, the input program is verified, and then each pass runs
    /// followed (when enabled) by re-verification.
    ///
    /// # Errors
    ///
    /// Returns [`PipelineError::OrderingViolation`] for a misordered
    /// pipeline and [`PipelineError::VerificationFailed`] naming the
    /// offending pass when a step leaves the IR invalid.
    pub fn run(&mut self, program: &mut Program) -> Result<PipelineReport, PipelineError> {
        self.check_ordering()?;
        verify(program).map_err(|errors| PipelineError::VerificationFailed {
            pass: "<input>".to_string(),
            errors,
        })?;
        let mut outcomes = Vec::with_capacity(self.passes.len());
        let last = self.passes.len().saturating_sub(1);
        for (i, pass) in self.passes.iter_mut().enumerate() {
            let report = pass.run(program);
            if self.verify_each_step || i == last {
                verify(program).map_err(|errors| PipelineError::VerificationFailed {
                    pass: pass.name().to_string(),
                    errors,
                })?;
            }
            outcomes.push(PassOutcome {
                pass: pass.name(),
                report,
            });
        }
        Ok(PipelineReport { outcomes })
    }
}

/// Options for the standard compilation pipeline assembled by [`compile`].
#[derive(Debug, Clone, PartialEq)]
pub struct CompileOptions {
    /// Automatic binarization; `None` disables the pass (Table 3 configs
    /// I–II).
    pub binarize: Option<BinarizeOptions>,
    /// Reduction-perforation rules; an empty config leaves reductions dense.
    pub perforation: PerforationConfig,
    /// Whether to hoist loop-invariant stage transfers.
    pub hoist_data_movement: bool,
    /// Target-assignment configuration.
    pub targets: TargetConfig,
    /// Whether to run dead-code elimination at the end.
    pub dce: bool,
}

impl Default for CompileOptions {
    fn default() -> Self {
        CompileOptions {
            binarize: Some(BinarizeOptions::default()),
            perforation: PerforationConfig::none(),
            hoist_data_movement: true,
            targets: TargetConfig::default(),
            dce: true,
        }
    }
}

impl CompileOptions {
    /// The paper's baseline configuration: no approximations, CPU targets.
    pub fn baseline() -> Self {
        CompileOptions {
            binarize: None,
            perforation: PerforationConfig::none(),
            ..CompileOptions::default()
        }
    }
}

/// The report of a [`compile`] invocation.
#[derive(Debug, Clone, PartialEq, Default)]
pub struct CompileReport {
    /// Per-pass outcomes.
    pub pipeline: PipelineReport,
}

impl CompileReport {
    /// The binarization report, when binarization was enabled.
    pub fn binarize(&self) -> Option<&BinarizeReport> {
        self.pipeline.binarize()
    }

    /// The target-assignment report.
    pub fn target_assign(&self) -> Option<&TargetAssignReport> {
        self.pipeline.target_assign()
    }
}

/// Compile a program with the standard pipeline:
/// binarize → perforate → hoist data movement → assign targets → DCE.
///
/// # Errors
///
/// Propagates [`PipelineError`] from the underlying [`PassManager::run`].
pub fn compile(
    program: &mut Program,
    options: &CompileOptions,
) -> Result<CompileReport, PipelineError> {
    let mut manager = PassManager::new();
    if let Some(binarize_options) = options.binarize {
        manager.add_pass(BinarizePass::new(binarize_options));
    }
    if !options.perforation.rules.is_empty() {
        manager.add_pass(PerforationPass::new(options.perforation.clone()));
    }
    if options.hoist_data_movement {
        manager.add_pass(DataMovementPass);
    }
    manager.add_pass(TargetAssignPass::new(options.targets.clone()));
    if options.dce {
        manager.add_pass(DcePass);
    }
    Ok(CompileReport {
        pipeline: manager.run(program)?,
    })
}

#[cfg(test)]
mod tests {
    use super::*;
    use hdc_core::element::ElementKind;
    use hdc_ir::builder::ProgramBuilder;
    use hdc_ir::program::ValueId;

    fn listing1() -> (Program, ValueId, ValueId) {
        let mut b = ProgramBuilder::new("listing1");
        let features = b.input_vector("features", ElementKind::F32, 617);
        let rp = b.input_matrix("rp", ElementKind::F32, 2048, 617);
        let classes = b.input_matrix("classes", ElementKind::F32, 26, 2048);
        let encoded = b.matmul(features, rp);
        let encoded_b = b.sign(encoded);
        let classes_b = b.sign(classes);
        let dists = b.hamming_distance(encoded_b, classes_b);
        let label = b.arg_min(dists);
        b.mark_output(label);
        (b.finish(), encoded_b, classes_b)
    }

    #[test]
    fn default_compile_runs_full_pipeline() {
        let (mut p, encoded_b, _) = listing1();
        let report = compile(&mut p, &CompileOptions::default()).unwrap();
        let names: Vec<&str> = report.pipeline.outcomes.iter().map(|o| o.pass).collect();
        assert_eq!(
            names,
            vec!["binarize", "data-movement", "target-assign", "dce"]
        );
        assert!(report.binarize().unwrap().binarized_values >= 2);
        assert_eq!(p.value(encoded_b).ty.element_kind(), Some(ElementKind::Bit));
    }

    #[test]
    fn baseline_compile_skips_approximations() {
        let (mut p, encoded_b, _) = listing1();
        let report = compile(&mut p, &CompileOptions::baseline()).unwrap();
        assert!(report.binarize().is_none());
        assert_eq!(p.value(encoded_b).ty.element_kind(), Some(ElementKind::F32));
    }

    #[test]
    fn ordering_violation_is_rejected_before_running() {
        let (mut p, ..) = listing1();
        let before = p.clone();
        // target-assign declares it must follow binarize.
        let mut manager = PassManager::new()
            .with_pass(TargetAssignPass::new(TargetConfig::default()))
            .with_pass(BinarizePass::new(BinarizeOptions::default()));
        let err = manager.run(&mut p).unwrap_err();
        assert!(matches!(
            err,
            PipelineError::OrderingViolation {
                pass: "target-assign",
                must_follow: "binarize"
            }
        ));
        assert_eq!(p, before, "a rejected pipeline must not mutate the program");
    }

    #[test]
    fn constraints_only_bind_when_both_passes_present() {
        let (mut p, ..) = listing1();
        let mut manager =
            PassManager::new().with_pass(TargetAssignPass::new(TargetConfig::default()));
        manager.run(&mut p).unwrap();
    }

    #[test]
    fn invalid_input_program_is_reported_as_input() {
        use hdc_ir::instr::HdcInstr;
        use hdc_ir::ops::HdcOp;
        use hdc_ir::program::{Node, NodeBody};
        use hdc_ir::Target;
        let mut p = Program::new("bad");
        p.add_node(Node {
            name: "n".into(),
            target: Target::Cpu,
            body: NodeBody::Leaf {
                instrs: vec![HdcInstr::new(
                    HdcOp::Sign,
                    vec![ValueId::new(9).into()],
                    None,
                )],
            },
        });
        let err = compile(&mut p, &CompileOptions::default()).unwrap_err();
        assert!(matches!(
            err,
            PipelineError::VerificationFailed { ref pass, .. } if pass == "<input>"
        ));
    }

    #[test]
    fn broken_pass_is_caught_by_reverification() {
        struct BreakTypes;
        impl Pass for BreakTypes {
            fn name(&self) -> &'static str {
                "break-types"
            }
            fn run(&mut self, program: &mut Program) -> PassReport {
                // Shrink a matrix input so downstream shapes mismatch.
                let id = ValueId::new(1);
                program.value_mut(id).ty = hdc_ir::types::ValueType::HyperMatrix {
                    elem: ElementKind::F32,
                    rows: 2048,
                    cols: 1,
                };
                PassReport::Message("broke the rp matrix".into())
            }
        }
        let (mut p, ..) = listing1();
        let mut manager = PassManager::new().with_pass(BreakTypes);
        let err = manager.run(&mut p).unwrap_err();
        assert!(matches!(
            err,
            PipelineError::VerificationFailed { ref pass, .. } if pass == "break-types"
        ));
    }

    #[test]
    fn report_display_and_lookup() {
        let (mut p, ..) = listing1();
        let report = compile(&mut p, &CompileOptions::default()).unwrap();
        let text = report.pipeline.to_string();
        assert!(text.contains("binarize"));
        assert!(text.contains("target-assign"));
        assert!(report.pipeline.report_for("dce").is_some());
        assert!(report.pipeline.report_for("nonexistent").is_none());
    }
}
