//! Dead code elimination over every node body.
//!
//! Removes instructions whose results are never read (transitively) and
//! that have no side effects. Stage and parallel-for bodies are cleaned
//! too: only the values their *semantics* consume are protected — the
//! stage interface, the `body_query`/`body_result` slots, the persistent
//! set populated by data-movement hoisting, and the loop index — so a
//! dead intermediate inside an encoding body no longer survives to
//! execution (it used to: the earlier DCE treated whole stage bodies
//! as opaque and kept everything they wrote).

use hdc_ir::ops::HdcOp;
use hdc_ir::program::{Node, NodeBody, Program, ValueId, ValueRole};
use std::collections::HashSet;

/// Statistics reported by [`eliminate_dead_code`].
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub struct DceReport {
    /// Number of instructions removed.
    pub removed_instrs: usize,
}

fn has_side_effect(op: &HdcOp) -> bool {
    matches!(op, HdcOp::SetMatrixRow | HdcOp::AccumulateRow)
}

/// Values a node's semantics consume regardless of instruction-level
/// reads: removing their producers would change what the node means.
fn protected_values(node: &Node) -> Vec<ValueId> {
    match &node.body {
        NodeBody::Leaf { .. } => Vec::new(),
        NodeBody::ParallelFor { index, .. } => vec![*index],
        NodeBody::Stage(stage) => {
            let mut v = vec![
                stage.interface.queries,
                stage.interface.output,
                stage.body_query,
                stage.body_result,
            ];
            v.extend(stage.interface.classes);
            v.extend(stage.interface.labels);
            v.extend(stage.persistent_values.iter().copied());
            v
        }
    }
}

/// Remove dead instructions from every node body, iterating to a fixpoint.
pub fn eliminate_dead_code(program: &mut Program) -> DceReport {
    let mut report = DceReport::default();
    loop {
        // Live set: program outputs, the values each node's semantics
        // consume (stage interfaces, body_query/body_result, persistent
        // sets, loop indices), and everything any instruction reads.
        let mut live: HashSet<ValueId> = program
            .values_with_role(ValueRole::Output)
            .into_iter()
            .collect();
        for node in program.nodes() {
            live.extend(protected_values(node));
            for instr in node.instrs() {
                live.extend(instr.read_values());
            }
        }
        let mut removed_this_round = 0;
        for node in program.nodes_mut() {
            let instrs = node.instrs_mut();
            let before = instrs.len();
            instrs.retain(|i| {
                if has_side_effect(&i.op) {
                    return true;
                }
                match i.result {
                    Some(r) => live.contains(&r),
                    None => true,
                }
            });
            removed_this_round += before - instrs.len();
        }
        report.removed_instrs += removed_this_round;
        if removed_this_round == 0 {
            break;
        }
    }
    report
}

/// [`Pass`](crate::pipeline::Pass) wrapper around [`eliminate_dead_code`].
#[derive(Debug, Clone, Copy, Default)]
pub struct DcePass;

impl crate::pipeline::Pass for DcePass {
    fn name(&self) -> &'static str {
        "dce"
    }

    /// DCE runs last: earlier passes (binarization seeds at `sign`, target
    /// legality scans) must see the full instruction stream.
    fn run_after(&self) -> &'static [&'static str] {
        &["binarize", "perforation", "data-movement", "target-assign"]
    }

    fn run(&mut self, program: &mut Program) -> crate::pipeline::PassReport {
        crate::pipeline::PassReport::Dce(eliminate_dead_code(program))
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use hdc_core::element::ElementKind;
    use hdc_ir::builder::ProgramBuilder;
    use hdc_ir::verify::verify;

    #[test]
    fn unused_chain_is_removed() {
        let mut b = ProgramBuilder::new("dce");
        let a = b.input_vector("a", ElementKind::F32, 64);
        let used = b.sign(a);
        let dead1 = b.sign_flip(a);
        let _dead2 = b.absolute_value(dead1);
        b.mark_output(used);
        let mut p = b.finish();
        assert_eq!(p.instr_count(), 3);
        let report = eliminate_dead_code(&mut p);
        assert_eq!(report.removed_instrs, 2);
        assert_eq!(p.instr_count(), 1);
        verify(&p).unwrap();
    }

    #[test]
    fn side_effects_are_preserved() {
        let mut b = ProgramBuilder::new("side");
        let m = b.input_matrix("m", ElementKind::F32, 4, 64);
        let v = b.input_vector("v", ElementKind::F32, 64);
        b.set_matrix_row(m, v, 2);
        b.mark_output(m);
        let mut p = b.finish();
        let report = eliminate_dead_code(&mut p);
        assert_eq!(report.removed_instrs, 0);
        assert_eq!(p.instr_count(), 1);
    }

    #[test]
    fn live_code_untouched() {
        let mut b = ProgramBuilder::new("live");
        let a = b.input_vector("a", ElementKind::F32, 64);
        let m = b.input_matrix("m", ElementKind::F32, 4, 64);
        let s = b.sign(a);
        let d = b.hamming_distance(s, m);
        let l = b.arg_min(d);
        b.mark_output(l);
        let mut p = b.finish();
        let before = p.clone();
        let report = eliminate_dead_code(&mut p);
        assert_eq!(report.removed_instrs, 0);
        assert_eq!(p, before);
    }

    #[test]
    fn dead_value_inside_stage_body_is_removed() {
        // The regression this PR fixes: DCE used to treat stage bodies as
        // opaque (keeping everything they write), so a dead intermediate
        // inside an encoding body survived to execution.
        let mut b = ProgramBuilder::new("stage_dce");
        let feats = b.input_matrix("feats", ElementKind::F32, 4, 8);
        let proj = b.input_matrix("proj", ElementKind::F32, 32, 8);
        let enc = b.encoding_loop("encode", feats, 32, |body, sample| {
            let e = body.matmul(sample, proj);
            let _dead = body.sign_flip(e);
            body.sign(e)
        });
        b.mark_output(enc);
        let mut p = b.finish();
        assert_eq!(p.instr_count(), 3);
        let report = eliminate_dead_code(&mut p);
        assert_eq!(report.removed_instrs, 1);
        assert_eq!(p.instr_count(), 2);
        verify(&p).unwrap();
    }

    #[test]
    fn stage_semantics_values_are_protected() {
        // body_result is not read by any instruction — the stage semantics
        // consume it. Its producer must survive.
        let mut b = ProgramBuilder::new("stage_keep");
        let feats = b.input_matrix("feats", ElementKind::F32, 4, 8);
        let proj = b.input_matrix("proj", ElementKind::F32, 32, 8);
        let enc = b.encoding_loop("encode", feats, 32, |body, sample| {
            body.matmul(sample, proj)
        });
        b.mark_output(enc);
        let mut p = b.finish();
        let report = eliminate_dead_code(&mut p);
        assert_eq!(report.removed_instrs, 0);
        verify(&p).unwrap();
    }

    #[test]
    fn parallel_for_body_dead_value_is_removed() {
        let mut b = ProgramBuilder::new("pfor_dce");
        let acc = b.zero_matrix(ElementKind::F32, 8, 16);
        let rows = b.input_matrix("rows", ElementKind::F32, 8, 16);
        b.parallel_for("scatter", 8, |b, idx| {
            let r = b.get_matrix_row_dyn(rows, idx);
            let _dead = b.sign_flip(r);
            b.accumulate_row(acc, r, idx);
        });
        let out = b.get_matrix_row(acc, 0);
        b.mark_output(out);
        let mut p = b.finish();
        let report = eliminate_dead_code(&mut p);
        assert_eq!(report.removed_instrs, 1);
        verify(&p).unwrap();
    }

    #[test]
    fn transitively_dead_values_removed_across_rounds() {
        let mut b = ProgramBuilder::new("transitive");
        let a = b.input_vector("a", ElementKind::F32, 64);
        let x = b.sign(a);
        let y = b.sign_flip(x);
        let z = b.absolute_value(y);
        let _w = b.cosine(z);
        let keep = b.sign(a);
        b.mark_output(keep);
        let mut p = b.finish();
        let report = eliminate_dead_code(&mut p);
        assert_eq!(report.removed_instrs, 4);
        assert_eq!(p.instr_count(), 1);
    }
}
