//! Dead code elimination for leaf nodes.
//!
//! Removes instructions whose results are never read (transitively) and
//! that have no side effects. Stage bodies and parallel-for bodies are left
//! alone: their liveness is governed by the stage semantics.

use hdc_ir::ops::HdcOp;
use hdc_ir::program::{NodeBody, Program, ValueId, ValueRole};
use std::collections::HashSet;

/// Statistics reported by [`eliminate_dead_code`].
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub struct DceReport {
    /// Number of instructions removed.
    pub removed_instrs: usize,
}

fn has_side_effect(op: &HdcOp) -> bool {
    matches!(op, HdcOp::SetMatrixRow | HdcOp::AccumulateRow)
}

/// Remove dead instructions from leaf nodes, iterating to a fixpoint.
pub fn eliminate_dead_code(program: &mut Program) -> DceReport {
    let mut report = DceReport::default();
    loop {
        // Live set: program outputs plus everything read anywhere.
        let mut live: HashSet<ValueId> = program
            .values_with_role(ValueRole::Output)
            .into_iter()
            .collect();
        for node in program.nodes() {
            for v in node.read_values() {
                live.insert(v);
            }
        }
        // Also keep everything stage/parallel bodies write (their outputs
        // feed the stage semantics even when not read by later instructions).
        for node in program.nodes() {
            if !matches!(node.body, NodeBody::Leaf { .. }) {
                for v in node.written_values() {
                    live.insert(v);
                }
            }
        }
        let mut removed_this_round = 0;
        for node in program.nodes_mut() {
            if let NodeBody::Leaf { instrs } = &mut node.body {
                let before = instrs.len();
                instrs.retain(|i| {
                    if has_side_effect(&i.op) {
                        return true;
                    }
                    match i.result {
                        Some(r) => live.contains(&r),
                        None => true,
                    }
                });
                removed_this_round += before - instrs.len();
            }
        }
        report.removed_instrs += removed_this_round;
        if removed_this_round == 0 {
            break;
        }
    }
    report
}

/// [`Pass`](crate::pipeline::Pass) wrapper around [`eliminate_dead_code`].
#[derive(Debug, Clone, Copy, Default)]
pub struct DcePass;

impl crate::pipeline::Pass for DcePass {
    fn name(&self) -> &'static str {
        "dce"
    }

    /// DCE runs last: earlier passes (binarization seeds at `sign`, target
    /// legality scans) must see the full instruction stream.
    fn run_after(&self) -> &'static [&'static str] {
        &["binarize", "perforation", "data-movement", "target-assign"]
    }

    fn run(&mut self, program: &mut Program) -> crate::pipeline::PassReport {
        crate::pipeline::PassReport::Dce(eliminate_dead_code(program))
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use hdc_core::element::ElementKind;
    use hdc_ir::builder::ProgramBuilder;
    use hdc_ir::verify::verify;

    #[test]
    fn unused_chain_is_removed() {
        let mut b = ProgramBuilder::new("dce");
        let a = b.input_vector("a", ElementKind::F32, 64);
        let used = b.sign(a);
        let dead1 = b.sign_flip(a);
        let _dead2 = b.absolute_value(dead1);
        b.mark_output(used);
        let mut p = b.finish();
        assert_eq!(p.instr_count(), 3);
        let report = eliminate_dead_code(&mut p);
        assert_eq!(report.removed_instrs, 2);
        assert_eq!(p.instr_count(), 1);
        verify(&p).unwrap();
    }

    #[test]
    fn side_effects_are_preserved() {
        let mut b = ProgramBuilder::new("side");
        let m = b.input_matrix("m", ElementKind::F32, 4, 64);
        let v = b.input_vector("v", ElementKind::F32, 64);
        b.set_matrix_row(m, v, 2);
        b.mark_output(m);
        let mut p = b.finish();
        let report = eliminate_dead_code(&mut p);
        assert_eq!(report.removed_instrs, 0);
        assert_eq!(p.instr_count(), 1);
    }

    #[test]
    fn live_code_untouched() {
        let mut b = ProgramBuilder::new("live");
        let a = b.input_vector("a", ElementKind::F32, 64);
        let m = b.input_matrix("m", ElementKind::F32, 4, 64);
        let s = b.sign(a);
        let d = b.hamming_distance(s, m);
        let l = b.arg_min(d);
        b.mark_output(l);
        let mut p = b.finish();
        let before = p.clone();
        let report = eliminate_dead_code(&mut p);
        assert_eq!(report.removed_instrs, 0);
        assert_eq!(p, before);
    }

    #[test]
    fn transitively_dead_values_removed_across_rounds() {
        let mut b = ProgramBuilder::new("transitive");
        let a = b.input_vector("a", ElementKind::F32, 64);
        let x = b.sign(a);
        let y = b.sign_flip(x);
        let z = b.absolute_value(y);
        let _w = b.cosine(z);
        let keep = b.sign(a);
        b.mark_output(keep);
        let mut p = b.finish();
        let report = eliminate_dead_code(&mut p);
        assert_eq!(report.removed_instrs, 4);
        assert_eq!(p.instr_count(), 1);
    }
}
