//! Hoisting of loop-invariant device data movement out of stage loops.
//!
//! Listing 6 of the paper shows the code HPVM-HDC emits for the digital
//! ASIC: the random-projection base memory and the class memory are
//! programmed *once* before the training / inference loops, and only the
//! per-sample feature vector is transferred inside the loop. Without this
//! optimization every iteration would re-program the device, which over a
//! 10 kbps link dominates end-to-end time.
//!
//! The pass computes, for every stage node, the set of values it reads that
//! are not modified per sample and records them as `persistent_values`. The
//! runtime and the accelerator back ends charge one transfer per persistent
//! value per stage instead of one per iteration.

use hdc_ir::program::{NodeBody, Program, ValueId};

/// Statistics reported by [`hoist_data_movement`].
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub struct DataMovementReport {
    /// Number of stage nodes examined.
    pub stages: usize,
    /// Number of values marked persistent across all stages.
    pub hoisted_values: usize,
    /// Total bytes that now move once per stage instead of once per sample.
    pub hoisted_bytes_per_iteration: usize,
}

/// Mark loop-invariant stage inputs as device-persistent.
pub fn hoist_data_movement(program: &mut Program) -> DataMovementReport {
    let mut report = DataMovementReport::default();
    // Collect the byte sizes first to avoid borrowing issues while mutating.
    let value_bytes: Vec<usize> = program
        .values()
        .iter()
        .map(|v| v.ty.storage_bytes())
        .collect();
    for node in program.nodes_mut() {
        if let NodeBody::Stage(stage) = &mut node.body {
            report.stages += 1;
            let written: Vec<ValueId> =
                stage.body.iter().flat_map(|i| i.written_values()).collect();
            let mut persistent: Vec<ValueId> = Vec::new();
            // Candidates: everything the body reads plus the class matrix,
            // minus anything written per sample and minus the per-sample
            // query slot.
            let mut candidates: Vec<ValueId> = stage
                .body
                .iter()
                .flat_map(|i| i.read_values().collect::<Vec<_>>())
                .collect();
            if let Some(c) = stage.interface.classes {
                candidates.push(c);
            }
            candidates.sort_unstable();
            candidates.dedup();
            for v in candidates {
                if v == stage.body_query || written.contains(&v) {
                    continue;
                }
                persistent.push(v);
            }
            report.hoisted_values += persistent.len();
            report.hoisted_bytes_per_iteration += persistent
                .iter()
                .map(|v| value_bytes.get(v.index()).copied().unwrap_or(0))
                .sum::<usize>();
            stage.persistent_values = persistent;
        }
    }
    report
}

/// [`Pass`](crate::pipeline::Pass) wrapper around [`hoist_data_movement`].
#[derive(Debug, Clone, Copy, Default)]
pub struct DataMovementPass;

impl crate::pipeline::Pass for DataMovementPass {
    fn name(&self) -> &'static str {
        "data-movement"
    }

    /// The hoisted-bytes accounting must reflect binarized storage sizes.
    fn run_after(&self) -> &'static [&'static str] {
        &["binarize"]
    }

    fn run(&mut self, program: &mut Program) -> crate::pipeline::PassReport {
        crate::pipeline::PassReport::DataMovement(hoist_data_movement(program))
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use hdc_core::element::ElementKind;
    use hdc_ir::builder::ProgramBuilder;
    use hdc_ir::stage::ScorePolarity;

    fn classification_stages() -> Program {
        let mut b = ProgramBuilder::new("dm");
        let features = b.input_matrix("features", ElementKind::F32, 100, 617);
        let rp = b.input_matrix("rp", ElementKind::F32, 2048, 617);
        let classes = b.input_matrix("classes", ElementKind::F32, 26, 2048);
        let labels = b.input_indices("labels", 100);
        let encoded = b.encoding_loop("encode", features, 2048, |b, q| b.matmul(q, rp));
        b.training_loop(
            "train",
            encoded,
            labels,
            classes,
            2,
            ScorePolarity::Distance,
            |b, q| b.hamming_distance(q, classes),
        );
        let preds = b.inference_loop(
            "infer",
            encoded,
            classes,
            ScorePolarity::Distance,
            |b, q| b.hamming_distance(q, classes),
        );
        b.mark_output(preds);
        b.finish()
    }

    #[test]
    fn stage_invariants_become_persistent() {
        let mut p = classification_stages();
        let report = hoist_data_movement(&mut p);
        assert_eq!(report.stages, 3);
        assert!(
            report.hoisted_values >= 3,
            "rp + classes (x2 stages) at least"
        );
        assert!(report.hoisted_bytes_per_iteration > 0);
        for node in p.nodes() {
            if let NodeBody::Stage(stage) = &node.body {
                assert!(
                    !stage.persistent_values.contains(&stage.body_query),
                    "per-sample query must not be persistent"
                );
                match node.name.as_str() {
                    "encode" => {
                        // the projection matrix is loop invariant
                        assert_eq!(stage.persistent_values.len(), 1);
                    }
                    "train" | "infer" => {
                        assert!(stage
                            .persistent_values
                            .iter()
                            .any(|v| p.value(*v).name == "classes"));
                    }
                    _ => {}
                }
            }
        }
    }

    #[test]
    fn values_written_in_body_are_not_hoisted() {
        let mut b = ProgramBuilder::new("written");
        let features = b.input_matrix("features", ElementKind::F32, 10, 32);
        let scratch = b.input_matrix("scratch", ElementKind::F32, 1, 64);
        let encoded = b.encoding_loop("encode", features, 64, |b, q| {
            let rp = b.random_bipolar_matrix(ElementKind::F32, 64, 32);
            let e = b.matmul(q, rp);
            b.set_matrix_row(scratch, e, 0);
            e
        });
        b.mark_output(encoded);
        let mut p = b.finish();
        hoist_data_movement(&mut p);
        for node in p.nodes() {
            if let NodeBody::Stage(stage) = &node.body {
                assert!(
                    !stage.persistent_values.contains(&scratch),
                    "scratch is written per sample and must be re-transferred"
                );
            }
        }
    }

    #[test]
    fn idempotent() {
        let mut p = classification_stages();
        let first = hoist_data_movement(&mut p);
        let second = hoist_data_movement(&mut p);
        assert_eq!(first, second);
    }
}
