//! Automatic binarization propagation (paper §4.2, Algorithm 1).
//!
//! The pass performs an inter-procedural (here: whole-program) taint
//! analysis seeded at `hdc.sign` instructions. Values that only ever hold
//! bipolar ±1 data are rewritten to the 1-bit element kind, which shrinks
//! data movement by up to 32× and lets the back ends dispatch XOR/popcount
//! kernels for Hamming distance.

use hdc_core::element::ElementKind;
use hdc_ir::ops::HdcOp;
use hdc_ir::program::{NodeBody, Program, ValueId};
use hdc_ir::stage::StageKind;
use std::collections::HashSet;

/// Options controlling the binarization pass.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct BinarizeOptions {
    /// The element kind tainted tensors are rewritten to. The paper's
    /// evaluation uses single-bit elements; `i8` is also supported for
    /// studying intermediate precisions.
    pub binarized_type: ElementKind,
    /// `BinarizeReduce?` in Algorithm 1: when set, the *inputs* of reducing
    /// operations (matmul, cossim, hamming_distance, l2norm) that consume
    /// tainted values are binarized too (more aggressive, larger error).
    pub binarize_reduce_inputs: bool,
}

impl Default for BinarizeOptions {
    fn default() -> Self {
        BinarizeOptions {
            binarized_type: ElementKind::Bit,
            binarize_reduce_inputs: false,
        }
    }
}

/// Statistics reported by the binarization pass.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub struct BinarizeReport {
    /// Number of value slots rewritten to the binarized element kind.
    pub binarized_values: usize,
    /// Number of instructions that now touch at least one binarized value.
    pub affected_instrs: usize,
    /// Total tensor footprint before the rewrite, in bytes.
    pub bytes_before: usize,
    /// Total tensor footprint after the rewrite, in bytes.
    pub bytes_after: usize,
}

impl BinarizeReport {
    /// Data-movement reduction factor achieved by the pass.
    pub fn reduction_factor(&self) -> f64 {
        if self.bytes_after == 0 {
            1.0
        } else {
            self.bytes_before as f64 / self.bytes_after as f64
        }
    }
}

/// Run automatic binarization over a program in place.
///
/// Only hypervector and hypermatrix values are ever rewritten; scalars,
/// index vectors and the raw (pre-`sign`) feature tensors keep their types.
pub fn binarize(program: &mut Program, options: &BinarizeOptions) -> BinarizeReport {
    let bytes_before = program.total_value_bytes();

    // --- taint analysis -------------------------------------------------
    let mut tainted: HashSet<ValueId> = HashSet::new();

    // Seed: results of sign instructions hold bipolar values by definition.
    for instr in program.iter_instrs() {
        if matches!(instr.op, HdcOp::Sign) {
            if let Some(r) = instr.result {
                if program.value(r).ty.is_tensor() {
                    tainted.insert(r);
                }
            }
        }
    }

    // Fixpoint propagation. Element-wise and data-movement operations
    // preserve bipolarity, so taint flows through both their inputs and
    // outputs. Reducing operations produce counts/accumulations, so taint
    // does not flow through them by default; with `binarize_reduce_inputs`
    // their tensor inputs are additionally reduced in precision.
    loop {
        let mut changed = false;
        for instr in program.iter_instrs() {
            let tensor_inputs: Vec<ValueId> = instr
                .read_values()
                .filter(|v| program.value(*v).ty.is_tensor())
                .collect();
            let tensor_outputs: Vec<ValueId> = instr
                .written_values()
                .into_iter()
                .filter(|v| program.value(*v).ty.is_tensor())
                .collect();
            let any_tainted = tensor_inputs
                .iter()
                .chain(tensor_outputs.iter())
                .any(|v| tainted.contains(v));
            if !any_tainted {
                continue;
            }
            match instr.op {
                // Taint never enters through `sign` inputs (they are real
                // valued) and never leaves reductions by default.
                HdcOp::Sign => {}
                op if op.is_reduce_op() => {
                    if options.binarize_reduce_inputs {
                        for v in &tensor_inputs {
                            changed |= tainted.insert(*v);
                        }
                    }
                }
                // Selection and indexing produce indices/scalars, not
                // bipolar tensors; taint stops here.
                HdcOp::ArgMin | HdcOp::ArgMax | HdcOp::ArgTopK { .. } | HdcOp::GetElement => {}
                // Type casts are precision barriers: the user explicitly
                // requested a representation.
                HdcOp::TypeCast { .. } => {}
                _ => {
                    for v in tensor_inputs.iter().chain(tensor_outputs.iter()) {
                        changed |= tainted.insert(*v);
                    }
                }
            }
        }
        // Taint also flows through stage interfaces, which connect values
        // structurally rather than through instructions: the executor copies
        // rows of `interface.queries` into `body_query` every iteration, and
        // an encoding stage assembles `interface.output` from the per-sample
        // `body_result`. (Inference/training outputs are index vectors /
        // aliases of the class matrix, so only encoding propagates to its
        // output.)
        for node in program.nodes() {
            if let NodeBody::Stage(stage) = &node.body {
                let mut flow = |from: ValueId, to: ValueId, changed: &mut bool| {
                    if tainted.contains(&from) && program.value(to).ty.is_tensor() {
                        *changed |= tainted.insert(to);
                    }
                };
                flow(stage.interface.queries, stage.body_query, &mut changed);
                if matches!(stage.kind, StageKind::Encoding) {
                    flow(stage.body_result, stage.interface.output, &mut changed);
                }
            }
        }
        if !changed {
            break;
        }
    }

    // --- rewrite ----------------------------------------------------------
    let mut binarized_values = 0;
    for v in &tainted {
        let info = program.value_mut(*v);
        if info.ty.element_kind() != Some(options.binarized_type) {
            info.ty = info.ty.with_element_kind(options.binarized_type);
            binarized_values += 1;
        }
    }

    let affected_instrs = program
        .iter_instrs()
        .filter(|i| {
            i.read_values()
                .chain(i.written_values())
                .any(|v| tainted.contains(&v))
        })
        .count();

    BinarizeReport {
        binarized_values,
        affected_instrs,
        bytes_before,
        bytes_after: program.total_value_bytes(),
    }
}

/// [`Pass`](crate::pipeline::Pass) wrapper around [`binarize`].
#[derive(Debug, Clone, Copy, Default)]
pub struct BinarizePass {
    /// Options forwarded to [`binarize`].
    pub options: BinarizeOptions,
}

impl BinarizePass {
    /// Create the pass from options.
    pub fn new(options: BinarizeOptions) -> Self {
        BinarizePass { options }
    }
}

impl crate::pipeline::Pass for BinarizePass {
    fn name(&self) -> &'static str {
        "binarize"
    }

    fn run(&mut self, program: &mut Program) -> crate::pipeline::PassReport {
        crate::pipeline::PassReport::Binarize(binarize(program, &self.options))
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use hdc_ir::builder::ProgramBuilder;
    use hdc_ir::verify::verify;

    /// Build the classification-inference pattern of Table 3 config III:
    /// sign the encoded query and the class matrix, then Hamming distance.
    fn classification_program() -> (Program, ValueId, ValueId, ValueId, ValueId) {
        let mut b = ProgramBuilder::new("binarize_me");
        let features = b.input_vector("features", ElementKind::F32, 617);
        let rp = b.input_matrix("rp", ElementKind::F32, 2048, 617);
        let classes = b.input_matrix("classes", ElementKind::F32, 26, 2048);
        let encoded = b.matmul(features, rp);
        let encoded_b = b.sign(encoded);
        let classes_b = b.sign(classes);
        let dists = b.hamming_distance(encoded_b, classes_b);
        let label = b.arg_min(dists);
        b.mark_output(label);
        (b.finish(), encoded_b, classes_b, dists, features)
    }

    #[test]
    fn sign_outputs_become_bit() {
        let (mut p, encoded_b, classes_b, dists, features) = classification_program();
        let report = binarize(&mut p, &BinarizeOptions::default());
        assert!(report.binarized_values >= 2);
        assert_eq!(p.value(encoded_b).ty.element_kind(), Some(ElementKind::Bit));
        assert_eq!(p.value(classes_b).ty.element_kind(), Some(ElementKind::Bit));
        // Distances and raw features keep their precision.
        assert_eq!(p.value(dists).ty.element_kind(), Some(ElementKind::F32));
        assert_eq!(p.value(features).ty.element_kind(), Some(ElementKind::F32));
        // The program still verifies (shapes unchanged).
        verify(&p).unwrap();
        assert!(report.reduction_factor() > 1.0);
        assert!(report.bytes_after < report.bytes_before);
    }

    #[test]
    fn elementwise_chain_propagates_taint() {
        let mut b = ProgramBuilder::new("chain");
        let a = b.input_vector("a", ElementKind::F32, 1024);
        let s = b.sign(a);
        let shifted = b.wrap_shift(s, 3);
        let flipped = b.sign_flip(shifted);
        b.mark_output(flipped);
        let mut p = b.finish();
        binarize(&mut p, &BinarizeOptions::default());
        assert_eq!(p.value(s).ty.element_kind(), Some(ElementKind::Bit));
        assert_eq!(p.value(shifted).ty.element_kind(), Some(ElementKind::Bit));
        assert_eq!(p.value(flipped).ty.element_kind(), Some(ElementKind::Bit));
        assert_eq!(p.value(a).ty.element_kind(), Some(ElementKind::F32));
    }

    #[test]
    fn reduce_inputs_untouched_by_default_binarized_when_aggressive() {
        // matmul consumes a signed projection matrix: by default its other
        // input (the feature vector) stays full precision; with
        // binarize_reduce_inputs it is reduced too.
        let build = || {
            let mut b = ProgramBuilder::new("agg");
            let features = b.input_vector("features", ElementKind::F32, 617);
            let rp = b.input_matrix("rp", ElementKind::F32, 2048, 617);
            let rp_b = b.sign(rp);
            let encoded = b.matmul(features, rp_b);
            b.mark_output(encoded);
            (b.finish(), features)
        };

        let (mut default_p, features) = build();
        binarize(&mut default_p, &BinarizeOptions::default());
        assert_eq!(
            default_p.value(features).ty.element_kind(),
            Some(ElementKind::F32)
        );

        let (mut aggressive_p, features) = build();
        binarize(
            &mut aggressive_p,
            &BinarizeOptions {
                binarize_reduce_inputs: true,
                ..BinarizeOptions::default()
            },
        );
        assert_eq!(
            aggressive_p.value(features).ty.element_kind(),
            Some(ElementKind::Bit)
        );
    }

    #[test]
    fn no_sign_means_no_change() {
        let mut b = ProgramBuilder::new("nosign");
        let a = b.input_vector("a", ElementKind::F32, 256);
        let m = b.input_matrix("m", ElementKind::F32, 8, 256);
        let d = b.cossim(a, m);
        b.mark_output(d);
        let mut p = b.finish();
        let before = p.clone();
        let report = binarize(&mut p, &BinarizeOptions::default());
        assert_eq!(report.binarized_values, 0);
        assert_eq!(report.bytes_before, report.bytes_after);
        assert_eq!(p, before);
    }

    #[test]
    fn alternate_binarized_type() {
        let (mut p, encoded_b, _, _, _) = classification_program();
        binarize(
            &mut p,
            &BinarizeOptions {
                binarized_type: ElementKind::I8,
                binarize_reduce_inputs: false,
            },
        );
        assert_eq!(p.value(encoded_b).ty.element_kind(), Some(ElementKind::I8));
    }

    #[test]
    fn stage_bodies_are_binarized_too() {
        let mut b = ProgramBuilder::new("stage_binarize");
        let queries = b.input_matrix("queries", ElementKind::F32, 50, 2048);
        let classes = b.input_matrix("classes", ElementKind::F32, 26, 2048);
        let classes_b = b.sign(classes);
        let preds = b.inference_loop(
            "infer",
            queries,
            classes_b,
            hdc_ir::stage::ScorePolarity::Distance,
            |b, q| {
                let qb = b.sign(q);
                b.hamming_distance(qb, classes_b)
            },
        );
        b.mark_output(preds);
        let mut p = b.finish();
        let report = binarize(&mut p, &BinarizeOptions::default());
        assert!(report.binarized_values >= 2);
        assert_eq!(p.value(classes_b).ty.element_kind(), Some(ElementKind::Bit));
        verify(&p).unwrap();
    }

    #[test]
    fn taint_flows_through_stage_interfaces() {
        // A sign-terminated encoding body binarizes the stage's output
        // matrix, and a downstream inference stage fed by that matrix gets a
        // binarized per-sample query slot.
        let mut b = ProgramBuilder::new("stage_flow");
        let features = b.input_matrix("features", ElementKind::F64, 12, 20);
        let rp = b.input_matrix("rp", ElementKind::F64, 64, 20);
        let classes = b.input_matrix("classes", ElementKind::F64, 3, 64);
        let classes_b = b.sign(classes);
        let encoded = b.encoding_loop("encode", features, 64, |b, q| {
            let e = b.matmul(q, rp);
            b.sign(e)
        });
        let preds = b.inference_loop(
            "infer",
            encoded,
            classes_b,
            hdc_ir::stage::ScorePolarity::Distance,
            |b, q| b.hamming_distance(q, classes_b),
        );
        b.mark_output(preds);
        let mut p = b.finish();
        binarize(&mut p, &BinarizeOptions::default());
        assert_eq!(p.value(encoded).ty.element_kind(), Some(ElementKind::Bit));
        // Raw features and the projection stay full precision.
        assert_eq!(p.value(features).ty.element_kind(), Some(ElementKind::F64));
        assert_eq!(p.value(rp).ty.element_kind(), Some(ElementKind::F64));
        verify(&p).unwrap();
    }

    #[test]
    fn report_counts_value_types() {
        let (mut p, ..) = classification_program();
        let report = binarize(&mut p, &BinarizeOptions::default());
        assert_eq!(report.binarized_values, p.binarized_value_count());
        assert!(report.affected_instrs >= 3, "sign, sign, hamming at least");
    }
}
