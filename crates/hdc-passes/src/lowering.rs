//! Lowering of HDC intrinsics into explicit parallel loop nests (§4.1).
//!
//! HPVM-HDC has two lowering strategies for HDC primitives: expand them into
//! generic HPVM IR loop subgraphs (used by the CPU back end and by targets
//! without library support), or map them directly onto device library calls
//! (cuBLAS / Thrust on GPUs, the functional interface on accelerators).
//!
//! This module implements the first strategy as an analysis: every HDC
//! instruction is described as a [`LoopNest`] — the loop extents, which
//! loops are parallel, and the per-iteration work. The CPU and GPU back
//! ends use these nests to decide thread mappings and to estimate kernel
//! cost; the `ablation` benchmarks compare library-call lowering against
//! loop lowering.

use hdc_core::element::ElementKind;
use hdc_ir::instr::HdcInstr;
use hdc_ir::ops::HdcOp;
use hdc_ir::program::Program;
use hdc_ir::types::ValueType;

/// One loop dimension of a lowered loop nest.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct LoopDim {
    /// Trip count.
    pub extent: usize,
    /// Whether iterations are independent (lowered to an HPVM parallel node
    /// with dynamic instances / a GPU thread dimension).
    pub parallel: bool,
}

/// A lowered HDC instruction: a loop nest around a scalar body.
#[derive(Debug, Clone, PartialEq)]
pub struct LoopNest {
    /// The op this nest implements.
    pub op: HdcOp,
    /// Outer-to-inner loop dimensions.
    pub loops: Vec<LoopDim>,
    /// Arithmetic operations per innermost iteration (used by cost models).
    pub flops_per_iter: f64,
    /// Bytes read per innermost iteration.
    pub bytes_per_iter: f64,
    /// Whether the innermost loop is a reduction (not parallelisable without
    /// a tree/atomic reduction).
    pub has_reduction: bool,
}

impl LoopNest {
    /// Total number of innermost iterations.
    pub fn total_iterations(&self) -> usize {
        self.loops.iter().map(|l| l.extent.max(1)).product()
    }

    /// Total floating-point (or popcount-equivalent) operations.
    pub fn total_flops(&self) -> f64 {
        self.total_iterations() as f64 * self.flops_per_iter
    }

    /// Total bytes touched.
    pub fn total_bytes(&self) -> f64 {
        self.total_iterations() as f64 * self.bytes_per_iter
    }

    /// Degree of available data parallelism (product of parallel extents).
    pub fn parallelism(&self) -> usize {
        self.loops
            .iter()
            .filter(|l| l.parallel)
            .map(|l| l.extent.max(1))
            .product()
    }
}

fn elem_bytes(e: Option<ElementKind>) -> f64 {
    match e {
        Some(ElementKind::Bit) => 1.0 / 8.0,
        Some(k) => (k.bit_width() / 8) as f64,
        None => 4.0,
    }
}

fn tensor_dims(ty: ValueType) -> (usize, usize) {
    match ty {
        ValueType::HyperVector { dim, .. } => (1, dim),
        ValueType::HyperMatrix { rows, cols, .. } => (rows, cols),
        _ => (1, 1),
    }
}

/// Lower one HDC instruction into a loop-nest description.
///
/// The perforation annotation (if any) shrinks the reduction extent, exactly
/// as the generated loops would.
pub fn lower_instr(program: &Program, instr: &HdcInstr) -> LoopNest {
    let operand_ty = |idx: usize| -> Option<ValueType> {
        instr
            .operands
            .get(idx)
            .and_then(|o| o.as_value())
            .map(|v| program.value(v).ty)
    };
    let result_ty = instr.result.map(|r| program.value(r).ty);
    let in0 = operand_ty(0);
    let in1 = operand_ty(1);
    let bytes0 = elem_bytes(in0.and_then(|t| t.element_kind()));
    let bytes1 = elem_bytes(in1.and_then(|t| t.element_kind()));

    let reduce_extent = |dim: usize| -> usize {
        match instr.perforation {
            Some(p) => p.visited_count(dim),
            None => dim,
        }
    };

    match instr.op {
        HdcOp::MatMul => {
            // out[q][d] = sum_f in[q][f] * proj[d][f]
            let (q_rows, in_dim) = tensor_dims(in0.unwrap_or(ValueType::Scalar(ElementKind::F32)));
            let (out_dim, _) = tensor_dims(in1.unwrap_or(ValueType::Scalar(ElementKind::F32)));
            LoopNest {
                op: instr.op,
                loops: vec![
                    LoopDim {
                        extent: q_rows,
                        parallel: true,
                    },
                    LoopDim {
                        extent: out_dim,
                        parallel: true,
                    },
                    LoopDim {
                        extent: reduce_extent(in_dim),
                        parallel: false,
                    },
                ],
                flops_per_iter: 2.0,
                bytes_per_iter: bytes0 + bytes1,
                has_reduction: true,
            }
        }
        HdcOp::CosineSimilarity | HdcOp::HammingDistance => {
            let (l_rows, dim) = tensor_dims(in0.unwrap_or(ValueType::Scalar(ElementKind::F32)));
            let (r_rows, _) = tensor_dims(in1.unwrap_or(ValueType::Scalar(ElementKind::F32)));
            let flops = if matches!(instr.op, HdcOp::CosineSimilarity) {
                // dot + two norms
                6.0
            } else if in0.and_then(|t| t.element_kind()) == Some(ElementKind::Bit) {
                // xor + popcount amortised over a 64-bit word
                2.0 / 64.0
            } else {
                1.0
            };
            LoopNest {
                op: instr.op,
                loops: vec![
                    LoopDim {
                        extent: l_rows,
                        parallel: true,
                    },
                    LoopDim {
                        extent: r_rows,
                        parallel: true,
                    },
                    LoopDim {
                        extent: reduce_extent(dim),
                        parallel: false,
                    },
                ],
                flops_per_iter: flops,
                bytes_per_iter: bytes0 + bytes1,
                has_reduction: true,
            }
        }
        HdcOp::L2Norm => {
            let (rows, dim) = tensor_dims(in0.unwrap_or(ValueType::Scalar(ElementKind::F32)));
            LoopNest {
                op: instr.op,
                loops: vec![
                    LoopDim {
                        extent: rows,
                        parallel: true,
                    },
                    LoopDim {
                        extent: reduce_extent(dim),
                        parallel: false,
                    },
                ],
                flops_per_iter: 2.0,
                bytes_per_iter: bytes0,
                has_reduction: true,
            }
        }
        HdcOp::ArgMin | HdcOp::ArgMax => {
            let (rows, dim) = tensor_dims(in0.unwrap_or(ValueType::Scalar(ElementKind::F32)));
            LoopNest {
                op: instr.op,
                loops: vec![
                    LoopDim {
                        extent: rows,
                        parallel: true,
                    },
                    LoopDim {
                        extent: dim,
                        parallel: false,
                    },
                ],
                flops_per_iter: 1.0,
                bytes_per_iter: bytes0,
                has_reduction: true,
            }
        }
        HdcOp::ArgTopK { k } => {
            // Per-row selection maintaining a k-entry best list: the scan
            // over candidates is sequential, each step costs ~log2(k)
            // comparisons against the heap of current bests.
            let (rows, dim) = tensor_dims(in0.unwrap_or(ValueType::Scalar(ElementKind::F32)));
            LoopNest {
                op: instr.op,
                loops: vec![
                    LoopDim {
                        extent: rows,
                        parallel: true,
                    },
                    LoopDim {
                        extent: dim,
                        parallel: false,
                    },
                ],
                flops_per_iter: 1.0 + (k.max(1) as f64).log2(),
                bytes_per_iter: bytes0,
                has_reduction: true,
            }
        }
        HdcOp::MatrixTranspose => {
            let (rows, cols) = tensor_dims(in0.unwrap_or(ValueType::Scalar(ElementKind::F32)));
            LoopNest {
                op: instr.op,
                loops: vec![
                    LoopDim {
                        extent: rows,
                        parallel: true,
                    },
                    LoopDim {
                        extent: cols,
                        parallel: true,
                    },
                ],
                flops_per_iter: 0.0,
                bytes_per_iter: 2.0 * bytes0,
                has_reduction: false,
            }
        }
        HdcOp::GetMatrixRow | HdcOp::SetMatrixRow | HdcOp::AccumulateRow => {
            let ty = if matches!(instr.op, HdcOp::GetMatrixRow) {
                in0
            } else {
                operand_ty(1)
            };
            let (_, cols) = tensor_dims(ty.unwrap_or(ValueType::Scalar(ElementKind::F32)));
            LoopNest {
                op: instr.op,
                loops: vec![LoopDim {
                    extent: cols,
                    parallel: true,
                }],
                flops_per_iter: if matches!(instr.op, HdcOp::AccumulateRow) {
                    1.0
                } else {
                    0.0
                },
                bytes_per_iter: 2.0 * bytes0,
                has_reduction: false,
            }
        }
        HdcOp::GetElement => LoopNest {
            op: instr.op,
            loops: vec![LoopDim {
                extent: 1,
                parallel: false,
            }],
            flops_per_iter: 0.0,
            bytes_per_iter: bytes0,
            has_reduction: false,
        },
        // Creation and element-wise operations: one (parallel) loop over all
        // elements of the result (or input for in-place style ops).
        _ => {
            let ty = result_ty
                .or(in0)
                .unwrap_or(ValueType::Scalar(ElementKind::F32));
            let (rows, cols) = tensor_dims(ty);
            let flops = match instr.op {
                HdcOp::CosineElementwise => 8.0,
                HdcOp::Zero
                | HdcOp::Random { .. }
                | HdcOp::Gaussian { .. }
                | HdcOp::RandomBipolar { .. } => 1.0,
                _ => 1.0,
            };
            LoopNest {
                op: instr.op,
                loops: vec![
                    LoopDim {
                        extent: rows,
                        parallel: true,
                    },
                    LoopDim {
                        extent: cols,
                        parallel: true,
                    },
                ],
                flops_per_iter: flops,
                bytes_per_iter: bytes0 + elem_bytes(result_ty.and_then(|t| t.element_kind())),
                has_reduction: false,
            }
        }
    }
}

/// Lower every instruction of a program, returning the nests in program
/// order. Useful for whole-program cost estimates and IR inspection.
pub fn lower_program(program: &Program) -> Vec<LoopNest> {
    program
        .iter_instrs()
        .map(|i| lower_instr(program, i))
        .collect()
}

#[cfg(test)]
mod tests {
    use super::*;
    use hdc_ir::builder::ProgramBuilder;

    #[test]
    fn matmul_lowered_to_three_deep_nest() {
        let mut b = ProgramBuilder::new("mm");
        let x = b.input_vector("x", ElementKind::F32, 617);
        let w = b.input_matrix("w", ElementKind::F32, 2048, 617);
        let e = b.matmul(x, w);
        b.mark_output(e);
        let p = b.finish();
        let instr = p.iter_instrs().next().unwrap();
        let nest = lower_instr(&p, instr);
        assert_eq!(nest.loops.len(), 3);
        assert_eq!(nest.loops[1].extent, 2048);
        assert_eq!(nest.loops[2].extent, 617);
        assert!(nest.loops[1].parallel);
        assert!(!nest.loops[2].parallel, "reduction loop is sequential");
        assert!(nest.has_reduction);
        assert_eq!(nest.total_iterations(), 2048 * 617);
    }

    #[test]
    fn hamming_lowering_matches_listing4_shape() {
        // Listing 4 of the paper: outer parallel loop over classes, inner
        // sequential loop over the hypervector dimension.
        let mut b = ProgramBuilder::new("hd");
        let q = b.input_vector("q", ElementKind::F32, 2048);
        let c = b.input_matrix("c", ElementKind::F32, 26, 2048);
        let d = b.hamming_distance(q, c);
        b.mark_output(d);
        let p = b.finish();
        let nest = lower_instr(&p, p.iter_instrs().next().unwrap());
        assert_eq!(nest.loops.len(), 3);
        assert_eq!(nest.loops[0].extent, 1);
        assert_eq!(nest.loops[1].extent, 26);
        assert_eq!(nest.loops[2].extent, 2048);
        assert_eq!(nest.parallelism(), 26);
    }

    #[test]
    fn perforation_shrinks_reduction_extent() {
        let mut b = ProgramBuilder::new("perf");
        let q = b.input_vector("q", ElementKind::F32, 2048);
        let c = b.input_matrix("c", ElementKind::F32, 26, 2048);
        let d = b.hamming_distance(q, c);
        b.red_perf(d, 0, 2048, 2);
        b.mark_output(d);
        let p = b.finish();
        let nest = lower_instr(&p, p.iter_instrs().next().unwrap());
        assert_eq!(nest.loops[2].extent, 1024);
    }

    #[test]
    fn binarized_hamming_is_cheaper_per_element() {
        let mut b = ProgramBuilder::new("bits");
        let q = b.input_vector("q", ElementKind::F32, 2048);
        let c = b.input_matrix("c", ElementKind::F32, 26, 2048);
        let qs = b.sign(q);
        let cs = b.sign(c);
        let d = b.hamming_distance(qs, cs);
        b.mark_output(d);
        let mut p = b.finish();
        let dense_nest = lower_program(&p)
            .into_iter()
            .find(|n| n.op == HdcOp::HammingDistance)
            .unwrap();
        crate::binarize::binarize(&mut p, &crate::binarize::BinarizeOptions::default());
        let bit_nest = lower_program(&p)
            .into_iter()
            .find(|n| n.op == HdcOp::HammingDistance)
            .unwrap();
        assert!(bit_nest.total_flops() < dense_nest.total_flops());
        assert!(bit_nest.total_bytes() < dense_nest.total_bytes());
    }

    #[test]
    fn elementwise_lowering_is_fully_parallel() {
        let mut b = ProgramBuilder::new("ew");
        let a = b.input_matrix("a", ElementKind::F32, 8, 1024);
        let s = b.sign(a);
        b.mark_output(s);
        let p = b.finish();
        let nest = lower_instr(&p, p.iter_instrs().next().unwrap());
        assert!(!nest.has_reduction);
        assert_eq!(nest.parallelism(), 8 * 1024);
    }

    #[test]
    fn lower_program_covers_all_instrs() {
        let mut b = ProgramBuilder::new("all");
        let a = b.input_vector("a", ElementKind::F32, 64);
        let m = b.input_matrix("m", ElementKind::F32, 4, 64);
        let s = b.sign(a);
        let d = b.hamming_distance(s, m);
        let l = b.arg_min(d);
        b.mark_output(l);
        let p = b.finish();
        assert_eq!(lower_program(&p).len(), p.instr_count());
    }
}
