//! Reduction perforation as a compiler configuration (paper §4.2).
//!
//! Applications can attach `red_perf` directives in source (via
//! [`hdc_ir::ProgramBuilder::red_perf`]); this pass lets the *compiler
//! invocation* do the same thing without touching application code, which is
//! how the Table 3 / Figure 7 configurations are explored: each
//! configuration is a [`PerforationConfig`] naming which reduction
//! operations to perforate and how.

use hdc_core::Perforation;
use hdc_ir::ops::HdcOp;
use hdc_ir::program::Program;

/// Which reduction instructions a perforation rule applies to.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum PerforationSite {
    /// `hamming_distance` instructions.
    HammingDistance,
    /// `cossim` instructions.
    CosineSimilarity,
    /// `matmul` instructions (perforates the encoding stage).
    MatMul,
    /// `l2norm` instructions.
    L2Norm,
    /// Every perforable reduction.
    AllReductions,
}

impl PerforationSite {
    fn matches(&self, op: &HdcOp) -> bool {
        match self {
            PerforationSite::HammingDistance => matches!(op, HdcOp::HammingDistance),
            PerforationSite::CosineSimilarity => matches!(op, HdcOp::CosineSimilarity),
            PerforationSite::MatMul => matches!(op, HdcOp::MatMul),
            PerforationSite::L2Norm => matches!(op, HdcOp::L2Norm),
            PerforationSite::AllReductions => op.supports_perforation(),
        }
    }
}

/// A set of perforation rules applied by the compiler.
#[derive(Debug, Clone, Default, PartialEq)]
pub struct PerforationConfig {
    /// `(site, descriptor)` pairs; later rules override earlier ones when
    /// both match the same instruction.
    pub rules: Vec<(PerforationSite, Perforation)>,
}

impl PerforationConfig {
    /// A configuration with no rules (no perforation).
    pub fn none() -> Self {
        PerforationConfig { rules: Vec::new() }
    }

    /// Add a rule, builder style.
    pub fn with_rule(mut self, site: PerforationSite, perforation: Perforation) -> Self {
        self.rules.push((site, perforation));
        self
    }

    /// Convenience: perforate every similarity computation
    /// (`hamming_distance` and `cossim`) with the given stride.
    pub fn strided_similarity(stride: usize) -> Self {
        PerforationConfig::none()
            .with_rule(
                PerforationSite::HammingDistance,
                Perforation::strided(0, usize::MAX, stride),
            )
            .with_rule(
                PerforationSite::CosineSimilarity,
                Perforation::strided(0, usize::MAX, stride),
            )
    }

    /// Convenience: perforate the encoding `matmul` with the given stride.
    pub fn strided_encoding(stride: usize) -> Self {
        PerforationConfig::none().with_rule(
            PerforationSite::MatMul,
            Perforation::strided(0, usize::MAX, stride),
        )
    }

    /// Convenience: compute similarities over only the first half of each
    /// hypervector (segmented perforation), Table 3 configuration VIII.
    pub fn first_half_similarity(dimension: usize) -> Self {
        PerforationConfig::none()
            .with_rule(
                PerforationSite::HammingDistance,
                Perforation::segment(0, dimension / 2),
            )
            .with_rule(
                PerforationSite::CosineSimilarity,
                Perforation::segment(0, dimension / 2),
            )
    }
}

/// Statistics reported by [`apply_perforation`].
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub struct PerforationReport {
    /// Number of instructions that received a perforation annotation.
    pub annotated_instrs: usize,
    /// Number of instructions that matched a rule but were skipped because
    /// their node is mapped to an HDC accelerator (which does not support
    /// the approximation, §4.2).
    pub skipped_on_accelerators: usize,
}

/// Apply a perforation configuration to every matching reduction
/// instruction of the program.
pub fn apply_perforation(program: &mut Program, config: &PerforationConfig) -> PerforationReport {
    let mut report = PerforationReport::default();
    if config.rules.is_empty() {
        return report;
    }
    for node in program.nodes_mut() {
        let on_accelerator = node.target.is_hdc_accelerator();
        for instr in node.instrs_mut() {
            let mut chosen: Option<Perforation> = None;
            for (site, perf) in &config.rules {
                if site.matches(&instr.op) && instr.op.supports_perforation() {
                    chosen = Some(*perf);
                }
            }
            if let Some(perf) = chosen {
                if on_accelerator {
                    report.skipped_on_accelerators += 1;
                } else {
                    instr.perforation = Some(perf);
                    report.annotated_instrs += 1;
                }
            }
        }
    }
    report
}

/// [`Pass`](crate::pipeline::Pass) wrapper around [`apply_perforation`].
#[derive(Debug, Clone, Default)]
pub struct PerforationPass {
    /// Rules forwarded to [`apply_perforation`].
    pub config: PerforationConfig,
}

impl PerforationPass {
    /// Create the pass from a configuration.
    pub fn new(config: PerforationConfig) -> Self {
        PerforationPass { config }
    }
}

impl crate::pipeline::Pass for PerforationPass {
    fn name(&self) -> &'static str {
        "perforation"
    }

    fn run(&mut self, program: &mut Program) -> crate::pipeline::PassReport {
        crate::pipeline::PassReport::Perforation(apply_perforation(program, &self.config))
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use hdc_core::element::ElementKind;
    use hdc_ir::builder::ProgramBuilder;
    use hdc_ir::target::Target;
    use hdc_ir::verify::verify;

    fn inference_program() -> Program {
        let mut b = ProgramBuilder::new("perf_test");
        let features = b.input_vector("features", ElementKind::F32, 617);
        let rp = b.input_matrix("rp", ElementKind::F32, 2048, 617);
        let classes = b.input_matrix("classes", ElementKind::F32, 26, 2048);
        let encoded = b.matmul(features, rp);
        let dists = b.hamming_distance(encoded, classes);
        let sims = b.cossim(encoded, classes);
        let l1 = b.arg_min(dists);
        let l2 = b.arg_max(sims);
        b.mark_output(l1);
        b.mark_output(l2);
        b.finish()
    }

    #[test]
    fn strided_similarity_annotates_only_similarities() {
        let mut p = inference_program();
        let report = apply_perforation(&mut p, &PerforationConfig::strided_similarity(2));
        assert_eq!(report.annotated_instrs, 2);
        for instr in p.iter_instrs() {
            match instr.op {
                HdcOp::HammingDistance | HdcOp::CosineSimilarity => {
                    assert_eq!(instr.perforation.unwrap().stride, 2)
                }
                _ => assert!(instr.perforation.is_none()),
            }
        }
        verify(&p).unwrap();
    }

    #[test]
    fn strided_encoding_annotates_matmul() {
        let mut p = inference_program();
        let report = apply_perforation(&mut p, &PerforationConfig::strided_encoding(4));
        assert_eq!(report.annotated_instrs, 1);
        let mm = p.iter_instrs().find(|i| i.op == HdcOp::MatMul).unwrap();
        assert_eq!(mm.perforation.unwrap().stride, 4);
    }

    #[test]
    fn first_half_uses_segment() {
        let mut p = inference_program();
        apply_perforation(&mut p, &PerforationConfig::first_half_similarity(2048));
        let hd = p
            .iter_instrs()
            .find(|i| i.op == HdcOp::HammingDistance)
            .unwrap();
        let perf = hd.perforation.unwrap();
        assert_eq!((perf.begin, perf.end, perf.stride), (0, 1024, 1));
        verify(&p).unwrap();
    }

    #[test]
    fn later_rules_override_earlier() {
        let mut p = inference_program();
        let config = PerforationConfig::none()
            .with_rule(
                PerforationSite::AllReductions,
                Perforation::strided(0, usize::MAX, 2),
            )
            .with_rule(
                PerforationSite::MatMul,
                Perforation::strided(0, usize::MAX, 8),
            );
        apply_perforation(&mut p, &config);
        let mm = p.iter_instrs().find(|i| i.op == HdcOp::MatMul).unwrap();
        assert_eq!(mm.perforation.unwrap().stride, 8);
        let hd = p
            .iter_instrs()
            .find(|i| i.op == HdcOp::HammingDistance)
            .unwrap();
        assert_eq!(hd.perforation.unwrap().stride, 2);
    }

    #[test]
    fn accelerator_nodes_are_skipped() {
        let mut b = ProgramBuilder::new("acc_perf");
        b.set_default_target(Target::DigitalAsic);
        let queries = b.input_matrix("queries", ElementKind::F32, 10, 2048);
        let classes = b.input_matrix("classes", ElementKind::F32, 26, 2048);
        let preds = b.inference_loop(
            "infer",
            queries,
            classes,
            hdc_ir::stage::ScorePolarity::Distance,
            |b, q| b.hamming_distance(q, classes),
        );
        b.mark_output(preds);
        let mut p = b.finish();
        let report = apply_perforation(&mut p, &PerforationConfig::strided_similarity(2));
        assert_eq!(report.annotated_instrs, 0);
        assert_eq!(report.skipped_on_accelerators, 1);
        assert!(p.iter_instrs().all(|i| i.perforation.is_none()));
    }

    #[test]
    fn empty_config_is_identity() {
        let mut p = inference_program();
        let before = p.clone();
        let report = apply_perforation(&mut p, &PerforationConfig::none());
        assert_eq!(report.annotated_instrs, 0);
        assert_eq!(p, before);
    }
}
