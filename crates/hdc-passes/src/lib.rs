//! # hdc-passes
//!
//! Compiler transformations over HPVM-HDC IR (paper §4.2 / §4.3):
//!
//! * [`binarize`](mod@binarize) — automatic binarization propagation (Algorithm 1): a
//!   taint analysis seeded at `sign` operations that rewrites tainted
//!   hypervectors and hypermatrices to a 1-bit element representation.
//! * [`perforation`] — reduction perforation: attach `red_perf` descriptors
//!   to similarity / matmul / l2norm reductions from a compile-time
//!   configuration, without touching application source.
//! * [`lowering`] — lowering of HDC intrinsics into explicit parallel loop
//!   nests (the representation HPVM's generic back ends consume), used by
//!   the CPU/GPU back ends' cost models and for IR inspection.
//! * [`data_movement`] — hoisting of loop-invariant device transfers out of
//!   the coarse-grain stage loops (the Listing 6 optimization).
//! * [`target_assign`] — mapping of dataflow-graph nodes onto hardware
//!   targets with legality checks (accelerators only accept stage nodes and
//!   reject the approximation optimizations).
//! * [`dce`] — dead code elimination for leaf nodes.
//! * [`pipeline`] — a small pass manager that sequences the above and
//!   re-verifies the IR after every step.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod binarize;
pub mod data_movement;
pub mod dce;
pub mod lowering;
pub mod perforation;
pub mod pipeline;
pub mod target_assign;

pub use binarize::{binarize, BinarizeOptions, BinarizePass, BinarizeReport};
pub use data_movement::{hoist_data_movement, DataMovementPass, DataMovementReport};
pub use dce::{eliminate_dead_code, DcePass, DceReport};
pub use lowering::{lower_instr, lower_program, LoopDim, LoopNest};
pub use perforation::{
    apply_perforation, PerforationConfig, PerforationPass, PerforationReport, PerforationSite,
};
pub use pipeline::{
    compile, CompileOptions, CompileReport, Pass, PassManager, PassOutcome, PassReport,
    PipelineError, PipelineReport,
};
pub use target_assign::{
    accelerator_supports, assign_targets, stage_illegal_reason, stage_placements, StagePlacement,
    TargetAssignPass, TargetAssignReport, TargetConfig,
};
