//! Target assignment: mapping dataflow-graph nodes onto hardware targets
//! with legality checks (paper §4.3 / Figure 4).
//!
//! The paper's compiler lets different nodes of the same program lower to
//! different devices; the HDC accelerators in particular only accept the
//! coarse-grain stage nodes (`encoding_loop` / `training_loop` /
//! `inference_loop`) and support neither `red_perf` annotations nor the
//! operations outside their fixed bipolar datapath. This pass applies a
//! [`TargetConfig`] to every node and *demotes* any stage that is illegal
//! for the requested accelerator to the fallback target instead of emitting
//! an invalid program, so the pipeline's post-pass re-verification always
//! holds.

use crate::pipeline::{Pass, PassReport};
use hdc_core::ops::ElementwiseOp;
use hdc_ir::ops::HdcOp;
use hdc_ir::program::{Node, NodeBody, Program};
use hdc_ir::target::Target;

/// How nodes are mapped onto hardware targets.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct TargetConfig {
    /// Target for leaf (straight-line) nodes.
    pub leaf_target: Target,
    /// Target for generic `parallel_for` nodes.
    pub parallel_target: Target,
    /// Target for coarse-grain stage nodes.
    pub stage_target: Target,
    /// Target a stage falls back to when `stage_target` is an accelerator
    /// and the stage is not legal for it.
    pub fallback: Target,
}

impl Default for TargetConfig {
    fn default() -> Self {
        TargetConfig {
            leaf_target: Target::Cpu,
            parallel_target: Target::CpuParallel,
            stage_target: Target::Cpu,
            fallback: Target::Cpu,
        }
    }
}

impl TargetConfig {
    /// Everything on the sequential CPU back end.
    pub fn cpu() -> Self {
        TargetConfig {
            leaf_target: Target::Cpu,
            parallel_target: Target::Cpu,
            stage_target: Target::Cpu,
            fallback: Target::Cpu,
        }
    }

    /// Data-parallel work on the GPU, control on the CPU.
    pub fn gpu(gpu: Target) -> Self {
        assert!(gpu.is_gpu(), "TargetConfig::gpu requires a GPU target");
        TargetConfig {
            leaf_target: Target::Cpu,
            parallel_target: gpu,
            stage_target: gpu,
            fallback: gpu,
        }
    }

    /// Stage nodes on an HDC accelerator, everything else (and illegal
    /// stages) on the CPU.
    ///
    /// # Examples
    ///
    /// ```
    /// use hdc_ir::Target;
    /// use hdc_passes::TargetConfig;
    ///
    /// let config = TargetConfig::accelerator(Target::DigitalAsic);
    /// assert_eq!(config.stage_target, Target::DigitalAsic);
    /// assert_eq!(config.fallback, Target::Cpu);
    /// ```
    ///
    /// # Panics
    ///
    /// Panics if `accelerator` is not an HDC accelerator target.
    pub fn accelerator(accelerator: Target) -> Self {
        assert!(
            accelerator.is_hdc_accelerator(),
            "TargetConfig::accelerator requires an HDC accelerator target"
        );
        TargetConfig {
            leaf_target: Target::Cpu,
            parallel_target: Target::CpuParallel,
            stage_target: accelerator,
            fallback: Target::Cpu,
        }
    }
}

/// Statistics reported by [`assign_targets`].
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub struct TargetAssignReport {
    /// Number of nodes whose target was set.
    pub assigned_nodes: usize,
    /// Number of stage nodes placed on an HDC accelerator.
    pub accelerated_stages: usize,
    /// Number of stage nodes demoted to the fallback target because they
    /// were illegal for the requested accelerator.
    pub demoted_stages: usize,
}

/// Whether the fixed-function HDC accelerator datapaths implement `op`.
///
/// The digital ASIC and the ReRAM accelerator operate on bipolar / binarized
/// data with compare-accumulate reductions; operations that need general
/// floating-point math (division, element-wise cosine, Gaussian sampling,
/// casts to a float kind) have no hardware equivalent and force the stage
/// onto a programmable device.
///
/// # Examples
///
/// ```
/// use hdc_ir::ops::HdcOp;
/// use hdc_passes::accelerator_supports;
///
/// assert!(accelerator_supports(&HdcOp::HammingDistance));
/// assert!(!accelerator_supports(&HdcOp::ArgTopK { k: 5 }));
/// ```
pub fn accelerator_supports(op: &HdcOp) -> bool {
    match op {
        HdcOp::Elementwise(ElementwiseOp::Div)
        | HdcOp::CosineElementwise
        | HdcOp::Gaussian { .. } => false,
        // The accelerators' compare-accumulate reduction trees emit a single
        // best-match index; multi-candidate top-k selection needs a
        // programmable device.
        HdcOp::ArgTopK { .. } => false,
        HdcOp::TypeCast { to } => !to.is_float(),
        _ => true,
    }
}

/// Why a stage cannot be placed on an HDC accelerator, or `None` when the
/// stage is legal (non-stage nodes are never placed on accelerators and
/// also return `None`).
///
/// This is the legality predicate [`assign_targets`] demotes by; it is
/// public so accelerator back ends (the `hdc-accel` crate) can report *why*
/// a stage stayed on the fallback device.
pub fn stage_illegal_reason(node: &Node) -> Option<&'static str> {
    let stage = match &node.body {
        NodeBody::Stage(stage) => stage,
        // Non-stage nodes are never placed on accelerators; the question
        // does not arise.
        _ => return None,
    };
    if stage.body.iter().any(|i| i.perforation.is_some()) {
        return Some("red_perf annotations are not supported on accelerators");
    }
    if stage.body.iter().any(|i| !accelerator_supports(&i.op)) {
        return Some("stage body uses ops outside the accelerator datapath");
    }
    None
}

/// The placement decision for one stage node, as read back from an assigned
/// program by [`stage_placements`].
///
/// This is the per-stage metadata an accelerator performance model
/// consumes: which device the stage landed on, its kind and static sample
/// count, and — when it is *not* on an accelerator — the legality reason
/// that would keep it off one.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct StagePlacement {
    /// Name of the stage node.
    pub node: String,
    /// Stage kind name (`encoding_loop` / `training_loop` /
    /// `inference_loop`).
    pub kind: &'static str,
    /// The target the stage is currently assigned to.
    pub target: Target,
    /// Why the stage is illegal for an HDC accelerator, if it is.
    pub illegal_reason: Option<&'static str>,
}

impl StagePlacement {
    /// Whether the stage is placed on one of the HDC accelerators.
    pub fn accelerated(&self) -> bool {
        self.target.is_hdc_accelerator()
    }
}

/// Read back the per-stage placement decisions of an assigned program.
///
/// Call after [`assign_targets`] (or the full pipeline): each stage node is
/// reported with its current target and, for stages on a programmable
/// device, the accelerator-legality reason (if any) that
/// [`assign_targets`] would demote it for.
///
/// # Examples
///
/// ```
/// use hdc_core::element::ElementKind;
/// use hdc_ir::builder::ProgramBuilder;
/// use hdc_ir::Target;
/// use hdc_passes::{assign_targets, stage_placements, TargetConfig};
///
/// let mut b = ProgramBuilder::new("placements");
/// let q = b.input_matrix("q", ElementKind::Bit, 4, 128);
/// let c = b.input_matrix("c", ElementKind::Bit, 2, 128);
/// let preds = b.inference_loop(
///     "infer", q, c, hdc_ir::stage::ScorePolarity::Distance,
///     |b, s| b.hamming_distance(s, c),
/// );
/// b.mark_output(preds);
/// let mut p = b.finish();
/// assign_targets(&mut p, &TargetConfig::accelerator(Target::DigitalAsic));
/// let placements = stage_placements(&p);
/// assert_eq!(placements.len(), 1);
/// assert!(placements[0].accelerated());
/// assert_eq!(placements[0].illegal_reason, None);
/// ```
pub fn stage_placements(program: &Program) -> Vec<StagePlacement> {
    program
        .nodes()
        .iter()
        .filter_map(|node| match &node.body {
            NodeBody::Stage(stage) => Some(StagePlacement {
                node: node.name.clone(),
                kind: stage.kind.name(),
                target: node.target,
                illegal_reason: stage_illegal_reason(node),
            }),
            _ => None,
        })
        .collect()
}

/// Assign every node of `program` a target according to `config`.
///
/// Leaf and `parallel_for` nodes take `leaf_target` / `parallel_target`
/// unconditionally (those are always programmable devices). Stage nodes take
/// `stage_target` when legal; when `stage_target` is an HDC accelerator and
/// the stage carries perforation annotations or unsupported ops, the stage
/// is demoted to `config.fallback` and counted in the report.
///
/// # Examples
///
/// ```
/// use hdc_core::element::ElementKind;
/// use hdc_ir::builder::ProgramBuilder;
/// use hdc_ir::Target;
/// use hdc_passes::{assign_targets, TargetConfig};
///
/// let mut b = ProgramBuilder::new("assign");
/// let q = b.input_matrix("q", ElementKind::Bit, 4, 128);
/// let c = b.input_matrix("c", ElementKind::Bit, 2, 128);
/// let preds = b.inference_loop(
///     "infer", q, c, hdc_ir::stage::ScorePolarity::Distance,
///     |b, s| b.hamming_distance(s, c),
/// );
/// b.mark_output(preds);
/// let mut p = b.finish();
/// let report = assign_targets(&mut p, &TargetConfig::accelerator(Target::ReRamAccelerator));
/// assert_eq!(report.accelerated_stages, 1);
/// assert_eq!(report.demoted_stages, 0);
/// ```
pub fn assign_targets(program: &mut Program, config: &TargetConfig) -> TargetAssignReport {
    let mut report = TargetAssignReport::default();
    for node in program.nodes_mut() {
        let target = match &node.body {
            NodeBody::Leaf { .. } => config.leaf_target,
            NodeBody::ParallelFor { .. } => config.parallel_target,
            NodeBody::Stage(_) => {
                if config.stage_target.is_hdc_accelerator() {
                    if stage_illegal_reason(node).is_some() {
                        report.demoted_stages += 1;
                        config.fallback
                    } else {
                        report.accelerated_stages += 1;
                        config.stage_target
                    }
                } else {
                    config.stage_target
                }
            }
        };
        node.target = target;
        report.assigned_nodes += 1;
    }
    report
}

/// [`Pass`] wrapper around [`assign_targets`].
#[derive(Debug, Clone, Default)]
pub struct TargetAssignPass {
    /// The configuration applied by the pass.
    pub config: TargetConfig,
}

impl TargetAssignPass {
    /// Create the pass from a configuration.
    pub fn new(config: TargetConfig) -> Self {
        TargetAssignPass { config }
    }
}

impl Pass for TargetAssignPass {
    fn name(&self) -> &'static str {
        "target-assign"
    }

    /// Legality depends on the final element kinds and perforation
    /// annotations, so assignment must see the approximation passes' output.
    fn run_after(&self) -> &'static [&'static str] {
        &["binarize", "perforation"]
    }

    fn run(&mut self, program: &mut Program) -> PassReport {
        PassReport::TargetAssign(assign_targets(program, &self.config))
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use hdc_core::element::ElementKind;
    use hdc_ir::builder::ProgramBuilder;
    use hdc_ir::stage::ScorePolarity;
    use hdc_ir::verify::verify;

    fn staged_program(perforate: bool, with_div: bool) -> Program {
        let mut b = ProgramBuilder::new("targets");
        let features = b.input_matrix("features", ElementKind::F32, 20, 617);
        let rp = b.input_matrix("rp", ElementKind::F32, 2048, 617);
        let classes = b.input_matrix("classes", ElementKind::F32, 26, 2048);
        let encoded = b.encoding_loop("encode", features, 2048, |b, q| b.matmul(q, rp));
        let preds = b.inference_loop(
            "infer",
            encoded,
            classes,
            ScorePolarity::Distance,
            |b, q| {
                let d = b.hamming_distance(q, classes);
                if perforate {
                    b.red_perf(d, 0, 2048, 2);
                }
                if with_div {
                    let e = b.div(d, d);
                    return e;
                }
                d
            },
        );
        b.mark_output(preds);
        b.finish()
    }

    #[test]
    fn cpu_config_assigns_everything_to_cpu() {
        let mut p = staged_program(false, false);
        let report = assign_targets(&mut p, &TargetConfig::cpu());
        assert_eq!(report.assigned_nodes, p.nodes().len());
        assert!(p.nodes().iter().all(|n| n.target == Target::Cpu));
        verify(&p).unwrap();
    }

    #[test]
    fn accelerator_config_places_stages_on_accelerator() {
        let mut p = staged_program(false, false);
        let report = assign_targets(&mut p, &TargetConfig::accelerator(Target::DigitalAsic));
        assert_eq!(report.accelerated_stages, 2);
        assert_eq!(report.demoted_stages, 0);
        for node in p.nodes() {
            if matches!(node.body, NodeBody::Stage(_)) {
                assert_eq!(node.target, Target::DigitalAsic);
            } else {
                assert!(!node.target.is_hdc_accelerator());
            }
        }
        verify(&p).unwrap();
    }

    #[test]
    fn perforated_stage_is_demoted() {
        let mut p = staged_program(true, false);
        let report = assign_targets(&mut p, &TargetConfig::accelerator(Target::ReRamAccelerator));
        assert_eq!(report.demoted_stages, 1, "perforated inference stage");
        assert_eq!(report.accelerated_stages, 1, "clean encoding stage");
        // The demoted stage landed on the fallback, and the program is valid:
        // verify() would reject red_perf on an accelerator node.
        verify(&p).unwrap();
    }

    #[test]
    fn unsupported_ops_demote_stage() {
        let mut p = staged_program(false, true);
        let report = assign_targets(&mut p, &TargetConfig::accelerator(Target::DigitalAsic));
        assert_eq!(report.demoted_stages, 1);
        verify(&p).unwrap();
    }

    #[test]
    fn accelerator_support_matrix() {
        assert!(accelerator_supports(&HdcOp::HammingDistance));
        assert!(accelerator_supports(&HdcOp::MatMul));
        assert!(accelerator_supports(&HdcOp::Sign));
        assert!(accelerator_supports(&HdcOp::Elementwise(
            ElementwiseOp::Add
        )));
        assert!(accelerator_supports(&HdcOp::TypeCast {
            to: ElementKind::Bit
        }));
        assert!(!accelerator_supports(&HdcOp::Elementwise(
            ElementwiseOp::Div
        )));
        assert!(!accelerator_supports(&HdcOp::ArgTopK { k: 3 }));
        assert!(!accelerator_supports(&HdcOp::CosineElementwise));
        assert!(!accelerator_supports(&HdcOp::Gaussian { seed: 1 }));
        assert!(!accelerator_supports(&HdcOp::TypeCast {
            to: ElementKind::F32
        }));
    }

    #[test]
    #[should_panic(expected = "requires an HDC accelerator")]
    fn accelerator_config_rejects_non_accelerator() {
        TargetConfig::accelerator(Target::Gpu);
    }

    #[test]
    fn stage_placements_report_targets_and_reasons() {
        let mut p = staged_program(true, false);
        assign_targets(&mut p, &TargetConfig::accelerator(Target::DigitalAsic));
        let placements = stage_placements(&p);
        assert_eq!(placements.len(), 2, "encode + infer");
        let encode = placements.iter().find(|s| s.node == "encode").unwrap();
        assert!(encode.accelerated());
        assert_eq!(encode.kind, "encoding_loop");
        assert_eq!(encode.illegal_reason, None);
        let infer = placements.iter().find(|s| s.node == "infer").unwrap();
        assert!(!infer.accelerated(), "perforated stage demoted");
        assert_eq!(infer.kind, "inference_loop");
        assert!(infer.illegal_reason.unwrap().contains("red_perf"));
    }

    #[test]
    fn gpu_config_places_parallel_work_on_gpu() {
        let mut b = ProgramBuilder::new("gpu");
        let m = b.input_matrix("m", ElementKind::F32, 8, 64);
        let out = b.input_matrix("out", ElementKind::F32, 8, 64);
        b.mark_output(out);
        b.parallel_for("rows", 8, |b, idx| {
            let row = b.get_matrix_row_dyn(m, idx);
            let s = b.sign(row);
            b.set_matrix_row_dyn(out, s, idx);
        });
        let mut p = b.finish();
        assign_targets(&mut p, &TargetConfig::gpu(Target::Gpu));
        let par = p
            .nodes()
            .iter()
            .find(|n| matches!(n.body, NodeBody::ParallelFor { .. }))
            .unwrap();
        assert_eq!(par.target, Target::Gpu);
    }
}
