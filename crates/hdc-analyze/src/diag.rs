//! Diagnostics: stable codes, severities, IR locations, and the
//! machine-readable [`AnalysisReport`].
//!
//! Every analysis in this crate reports findings as [`Diagnostic`]s carrying
//! a stable [`DiagnosticCode`] (`HDA001`–`HDA011`), so tests and CI gates
//! can assert on exact codes rather than message text. The catalog lives in
//! `docs/static-analysis.md`.

use std::fmt;

/// How serious a diagnostic is.
///
/// `hdc-lint` (and [`AnalysisReport::has_errors`]) fail only on
/// [`Severity::Error`]; warnings and notes are advisory.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord)]
pub enum Severity {
    /// Informational: a property worth knowing, not a defect.
    Info,
    /// Probably a mistake or wasted work, but execution is well-defined.
    Warning,
    /// The program is wrong: results will be meaningless or racy.
    Error,
}

impl Severity {
    /// Lower-case name used in reports and JSON.
    pub fn name(self) -> &'static str {
        match self {
            Severity::Info => "info",
            Severity::Warning => "warning",
            Severity::Error => "error",
        }
    }
}

impl fmt::Display for Severity {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(self.name())
    }
}

/// Stable identifier of one diagnostic kind.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum DiagnosticCode {
    /// `HDA001`: an instruction result is never used by anything that
    /// reaches a program output.
    DeadValue,
    /// `HDA002`: a stage's interface output is never consumed — the whole
    /// stage (the expensive part of the program) is dead.
    DeadStageOutput,
    /// `HDA003`: a stage body's result shape or element kind does not match
    /// what the stage interface hands downstream.
    StageShapeMismatch,
    /// `HDA004`: a binarized (`Bit`-tainted) value flows into a kernel that
    /// is meaningless on packed ±1 data (`div`, element-wise `cos`).
    BitTaintLeak,
    /// `HDA005`: a `red_perf` annotation on an operation that does not
    /// support perforation, or with an out-of-range mask.
    IllegalPerforation,
    /// `HDA006`: `wrap_shift` applied to a reduction/selection result or a
    /// non-tensor value — rotating scores or indices is meaningless.
    WrapShiftPosition,
    /// `HDA007`: a `wrap_shift` whose amount is a multiple of the dimension
    /// (a no-op rotation).
    WrapShiftNoop,
    /// `HDA008`: parallel-for instances write the same matrix row (an
    /// immediate row index inside a `ParallelFor` body).
    ParallelForCollision,
    /// `HDA009`: a `ParallelFor` body never reads its instance index, so
    /// every instance computes the same thing.
    ParallelForIndexUnused,
    /// `HDA010`: within one node, some instances of a perforable operation
    /// are perforated and others are not.
    MixedPerforation,
    /// `HDA011`: an in-place mutation (`set_matrix_row`/`accumulate_row`)
    /// targets a host-provided input buffer.
    InPlaceOnInput,
}

impl DiagnosticCode {
    /// The stable `HDAnnn` code string.
    pub fn as_str(self) -> &'static str {
        match self {
            DiagnosticCode::DeadValue => "HDA001",
            DiagnosticCode::DeadStageOutput => "HDA002",
            DiagnosticCode::StageShapeMismatch => "HDA003",
            DiagnosticCode::BitTaintLeak => "HDA004",
            DiagnosticCode::IllegalPerforation => "HDA005",
            DiagnosticCode::WrapShiftPosition => "HDA006",
            DiagnosticCode::WrapShiftNoop => "HDA007",
            DiagnosticCode::ParallelForCollision => "HDA008",
            DiagnosticCode::ParallelForIndexUnused => "HDA009",
            DiagnosticCode::MixedPerforation => "HDA010",
            DiagnosticCode::InPlaceOnInput => "HDA011",
        }
    }

    /// One-line description of the diagnostic kind (the catalog entry).
    pub fn description(self) -> &'static str {
        match self {
            DiagnosticCode::DeadValue => "instruction result never reaches a program output",
            DiagnosticCode::DeadStageOutput => "stage output is never consumed",
            DiagnosticCode::StageShapeMismatch => {
                "stage body result does not match the stage interface"
            }
            DiagnosticCode::BitTaintLeak => "binarized value flows into a real-valued-only kernel",
            DiagnosticCode::IllegalPerforation => "red_perf annotation is illegal here",
            DiagnosticCode::WrapShiftPosition => "wrap_shift in an illegal position",
            DiagnosticCode::WrapShiftNoop => "wrap_shift rotation is a no-op",
            DiagnosticCode::ParallelForCollision => "parallel instances write the same row",
            DiagnosticCode::ParallelForIndexUnused => "parallel_for never reads its index",
            DiagnosticCode::MixedPerforation => "perforation applied inconsistently",
            DiagnosticCode::InPlaceOnInput => "in-place mutation of a host input buffer",
        }
    }
}

impl fmt::Display for DiagnosticCode {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(self.as_str())
    }
}

/// Where in the IR a diagnostic points.
#[derive(Debug, Clone, PartialEq, Eq, Default)]
pub struct Location {
    /// The node the finding is in, if any.
    pub node: Option<String>,
    /// Index of the instruction within the node body, if any.
    pub instr: Option<usize>,
    /// Name of the value slot involved, if any.
    pub value: Option<String>,
}

impl Location {
    /// A location naming only a node.
    pub fn node(name: impl Into<String>) -> Self {
        Location {
            node: Some(name.into()),
            ..Location::default()
        }
    }

    /// A location naming a node and an instruction index within it.
    pub fn instr(node: impl Into<String>, index: usize) -> Self {
        Location {
            node: Some(node.into()),
            instr: Some(index),
            ..Location::default()
        }
    }

    /// Attach a value name.
    pub fn with_value(mut self, value: impl Into<String>) -> Self {
        self.value = Some(value.into());
        self
    }
}

impl fmt::Display for Location {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match (&self.node, self.instr) {
            (Some(n), Some(i)) => write!(f, "{n}#{i}")?,
            (Some(n), None) => write!(f, "{n}")?,
            (None, _) => write!(f, "<program>")?,
        }
        if let Some(v) = &self.value {
            write!(f, " (%{v})")?;
        }
        Ok(())
    }
}

/// One analysis finding.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Diagnostic {
    /// The stable code.
    pub code: DiagnosticCode,
    /// How serious it is.
    pub severity: Severity,
    /// Where it points in the IR.
    pub location: Location,
    /// What is wrong, in terms of the program's own names.
    pub message: String,
    /// How to fix it, when the analysis can tell.
    pub suggestion: Option<String>,
}

impl fmt::Display for Diagnostic {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(
            f,
            "{} [{}] {}: {}",
            self.severity, self.code, self.location, self.message
        )?;
        if let Some(s) = &self.suggestion {
            write!(f, " (fix: {s})")?;
        }
        Ok(())
    }
}

/// The combined result of every analysis over one program.
#[derive(Debug, Clone, PartialEq, Eq, Default)]
pub struct AnalysisReport {
    /// The analyzed program's name.
    pub program: String,
    /// All findings, in analysis order.
    pub diagnostics: Vec<Diagnostic>,
}

impl AnalysisReport {
    /// Findings at [`Severity::Error`].
    pub fn errors(&self) -> impl Iterator<Item = &Diagnostic> {
        self.diagnostics
            .iter()
            .filter(|d| d.severity == Severity::Error)
    }

    /// Number of error-severity findings.
    pub fn error_count(&self) -> usize {
        self.errors().count()
    }

    /// Number of warning-severity findings.
    pub fn warning_count(&self) -> usize {
        self.diagnostics
            .iter()
            .filter(|d| d.severity == Severity::Warning)
            .count()
    }

    /// Whether any finding is an error.
    pub fn has_errors(&self) -> bool {
        self.error_count() > 0
    }

    /// Whether any finding carries the given code.
    pub fn has_code(&self, code: DiagnosticCode) -> bool {
        self.diagnostics.iter().any(|d| d.code == code)
    }

    /// All findings with the given code.
    pub fn with_code(&self, code: DiagnosticCode) -> Vec<&Diagnostic> {
        self.diagnostics.iter().filter(|d| d.code == code).collect()
    }

    /// One-line summary (`N errors, M warnings, K notes`).
    pub fn summary(&self) -> String {
        let notes = self.diagnostics.len() - self.error_count() - self.warning_count();
        format!(
            "{}: {} errors, {} warnings, {} notes",
            self.program,
            self.error_count(),
            self.warning_count(),
            notes
        )
    }

    /// Machine-readable JSON rendering (stable field names; no external
    /// dependencies, so the escaping is done by hand).
    pub fn to_json(&self) -> String {
        let mut out = String::from("{");
        out.push_str(&format!("\"program\":{},", json_str(&self.program)));
        out.push_str(&format!(
            "\"errors\":{},\"warnings\":{},",
            self.error_count(),
            self.warning_count()
        ));
        out.push_str("\"diagnostics\":[");
        for (i, d) in self.diagnostics.iter().enumerate() {
            if i > 0 {
                out.push(',');
            }
            out.push('{');
            out.push_str(&format!("\"code\":{},", json_str(d.code.as_str())));
            out.push_str(&format!("\"severity\":{},", json_str(d.severity.name())));
            match &d.location.node {
                Some(n) => out.push_str(&format!("\"node\":{},", json_str(n))),
                None => out.push_str("\"node\":null,"),
            }
            match d.location.instr {
                Some(i) => out.push_str(&format!("\"instr\":{i},")),
                None => out.push_str("\"instr\":null,"),
            }
            match &d.location.value {
                Some(v) => out.push_str(&format!("\"value\":{},", json_str(v))),
                None => out.push_str("\"value\":null,"),
            }
            out.push_str(&format!("\"message\":{}", json_str(&d.message)));
            if let Some(s) = &d.suggestion {
                out.push_str(&format!(",\"suggestion\":{}", json_str(s)));
            }
            out.push('}');
        }
        out.push_str("]}");
        out
    }
}

impl fmt::Display for AnalysisReport {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        writeln!(f, "{}", self.summary())?;
        for d in &self.diagnostics {
            writeln!(f, "  {d}")?;
        }
        Ok(())
    }
}

fn json_str(s: &str) -> String {
    let mut out = String::with_capacity(s.len() + 2);
    out.push('"');
    for c in s.chars() {
        match c {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            '\n' => out.push_str("\\n"),
            '\r' => out.push_str("\\r"),
            '\t' => out.push_str("\\t"),
            c if (c as u32) < 0x20 => out.push_str(&format!("\\u{:04x}", c as u32)),
            c => out.push(c),
        }
    }
    out.push('"');
    out
}

#[cfg(test)]
mod tests {
    use super::*;

    fn sample() -> AnalysisReport {
        AnalysisReport {
            program: "p".into(),
            diagnostics: vec![
                Diagnostic {
                    code: DiagnosticCode::DeadValue,
                    severity: Severity::Warning,
                    location: Location::instr("n0", 2).with_value("tmp"),
                    message: "result `tmp` is dead".into(),
                    suggestion: Some("remove the instruction".into()),
                },
                Diagnostic {
                    code: DiagnosticCode::BitTaintLeak,
                    severity: Severity::Error,
                    location: Location::node("n1"),
                    message: "binarized \"q\" reaches hdc.div".into(),
                    suggestion: None,
                },
            ],
        }
    }

    #[test]
    fn counts_and_codes() {
        let r = sample();
        assert_eq!(r.error_count(), 1);
        assert_eq!(r.warning_count(), 1);
        assert!(r.has_errors());
        assert!(r.has_code(DiagnosticCode::DeadValue));
        assert!(!r.has_code(DiagnosticCode::WrapShiftNoop));
        assert_eq!(r.with_code(DiagnosticCode::BitTaintLeak).len(), 1);
    }

    #[test]
    fn codes_are_stable_and_distinct() {
        let all = [
            DiagnosticCode::DeadValue,
            DiagnosticCode::DeadStageOutput,
            DiagnosticCode::StageShapeMismatch,
            DiagnosticCode::BitTaintLeak,
            DiagnosticCode::IllegalPerforation,
            DiagnosticCode::WrapShiftPosition,
            DiagnosticCode::WrapShiftNoop,
            DiagnosticCode::ParallelForCollision,
            DiagnosticCode::ParallelForIndexUnused,
            DiagnosticCode::MixedPerforation,
            DiagnosticCode::InPlaceOnInput,
        ];
        let codes: std::collections::HashSet<&str> = all.iter().map(|c| c.as_str()).collect();
        assert_eq!(codes.len(), all.len());
        for c in all {
            assert!(c.as_str().starts_with("HDA"));
            assert!(!c.description().is_empty());
        }
    }

    #[test]
    fn json_is_well_formed_and_escaped() {
        let j = sample().to_json();
        assert!(j.starts_with('{') && j.ends_with('}'));
        assert!(j.contains("\"code\":\"HDA001\""));
        assert!(j.contains("\"severity\":\"error\""));
        // The quoted value name inside the message must be escaped.
        assert!(j.contains("binarized \\\"q\\\" reaches hdc.div"));
        assert_eq!(j.matches("\"code\"").count(), 2);
    }

    #[test]
    fn display_renders_every_diagnostic() {
        let text = sample().to_string();
        assert!(text.contains("p: 1 errors, 1 warnings, 0 notes"));
        assert!(text.contains("warning [HDA001] n0#2 (%tmp)"));
        assert!(text.contains("fix: remove the instruction"));
    }
}
