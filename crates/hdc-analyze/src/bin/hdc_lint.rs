//! `hdc-lint`: run the static analyzer over the repo's committed program
//! suite (or a named subset) and exit non-zero when any program carries
//! error-severity diagnostics.
//!
//! ```text
//! hdc-lint [--json] [--list] [NAME ...]
//! ```
//!
//! With no names, every known program is linted: the three application
//! pipelines in both default (binarized) and baseline (dense)
//! configurations, the serving templates at two batch sizes, and the
//! online trainer's encode/freeze programs. `--json` emits one
//! machine-readable report per line; `--list` prints the known names.

use hdc_analyze::analyze;
use hdc_apps::{ClassificationApp, ClusteringApp, MatchingApp};
use hdc_datasets::synthetic::{isolet_like, IsoletParams};
use hdc_ir::program::Program;
use hdc_passes::pipeline::CompileOptions;
use hdc_serve::{ModelRegistry, OnlineTrainer, OnlineTrainerConfig, ServableModel, SwapPolicy};
use std::sync::Arc;

fn small_dataset(seed: u64) -> hdc_datasets::Dataset {
    isolet_like(&IsoletParams {
        classes: 4,
        features: 32,
        train_per_class: 6,
        test_per_class: 5,
        noise: 1.2,
        seed,
    })
}

const DIM: usize = 256;

/// Every program the lint suite knows how to build.
const NAMES: &[&str] = &[
    "classification",
    "classification-baseline",
    "clustering",
    "clustering-baseline",
    "matching",
    "matching-baseline",
    "serve-classifier",
    "serve-cluster",
    "serve-matcher",
    "online-encode",
    "online-freeze",
];

fn build(name: &str) -> Result<Vec<Program>, String> {
    let default = CompileOptions::default();
    let baseline = CompileOptions::baseline();
    let err = |e: &dyn std::fmt::Display| format!("building `{name}`: {e}");
    match name {
        "classification" | "classification-baseline" => {
            let options = if name.ends_with("baseline") {
                &baseline
            } else {
                &default
            };
            let app = ClassificationApp::with_options(small_dataset(11), DIM, 2, options)
                .map_err(|e| err(&e))?;
            Ok(vec![app.program().clone()])
        }
        "clustering" | "clustering-baseline" => {
            let options = if name.ends_with("baseline") {
                &baseline
            } else {
                &default
            };
            let app = ClusteringApp::with_options(small_dataset(12), DIM, 3, options)
                .map_err(|e| err(&e))?;
            Ok(vec![app.program().clone()])
        }
        "matching" | "matching-baseline" => {
            let options = if name.ends_with("baseline") {
                &baseline
            } else {
                &default
            };
            let app = MatchingApp::with_options(small_dataset(13), DIM, 3, options)
                .map_err(|e| err(&e))?;
            Ok(vec![app.program().clone()])
        }
        "serve-classifier" | "serve-cluster" | "serve-matcher" => {
            let model = match name {
                "serve-classifier" => {
                    let app =
                        ClassificationApp::new(small_dataset(11), DIM, 2).map_err(|e| err(&e))?;
                    ServableModel::classifier("lint", &app).map_err(|e| err(&e))?
                }
                "serve-cluster" => {
                    let app = ClusteringApp::new(small_dataset(12), DIM, 3).map_err(|e| err(&e))?;
                    ServableModel::cluster_assigner("lint", &app).map_err(|e| err(&e))?
                }
                _ => {
                    let app = MatchingApp::new(small_dataset(13), DIM, 3).map_err(|e| err(&e))?;
                    ServableModel::matcher("lint", &app).map_err(|e| err(&e))?
                }
            };
            // Two batch sizes: the single-query fast path and a coalesced
            // window, which exercise distinct template rescalings.
            let mut programs = Vec::new();
            for rows in [1usize, 8] {
                programs.push(
                    model
                        .program_for(rows)
                        .map_err(|e| err(&e))?
                        .as_ref()
                        .clone(),
                );
            }
            Ok(programs)
        }
        "online-encode" | "online-freeze" => {
            let app = ClassificationApp::new(small_dataset(11), DIM, 2).map_err(|e| err(&e))?;
            let model = Arc::new(ServableModel::classifier("lint", &app).map_err(|e| err(&e))?);
            let registry = Arc::new(ModelRegistry::new());
            registry.register("lint", model);
            let mut trainer = OnlineTrainer::attach(
                registry,
                "lint",
                OnlineTrainerConfig {
                    policy: SwapPolicy::manual(),
                    ..OnlineTrainerConfig::default()
                },
            )
            .map_err(|e| err(&e))?;
            if name == "online-freeze" {
                Ok(vec![trainer.freeze_program().clone()])
            } else {
                Ok(vec![trainer
                    .encoding_program(4)
                    .map_err(|e| err(&e))?
                    .as_ref()
                    .clone()])
            }
        }
        other => Err(format!(
            "unknown program `{other}` (use --list to see the suite)"
        )),
    }
}

fn main() {
    let mut json = false;
    let mut names: Vec<String> = Vec::new();
    for arg in std::env::args().skip(1) {
        match arg.as_str() {
            "--json" => json = true,
            "--list" => {
                for n in NAMES {
                    println!("{n}");
                }
                return;
            }
            "--help" | "-h" => {
                println!("usage: hdc-lint [--json] [--list] [NAME ...]");
                println!("lints the committed program suite; exits 1 on error diagnostics");
                return;
            }
            other if other.starts_with('-') => {
                eprintln!("hdc-lint: unknown flag `{other}`");
                std::process::exit(2);
            }
            other => names.push(other.to_string()),
        }
    }
    if names.is_empty() {
        names = NAMES.iter().map(|s| s.to_string()).collect();
    }

    let mut total_errors = 0usize;
    let mut total_warnings = 0usize;
    for name in &names {
        let programs = match build(name) {
            Ok(p) => p,
            Err(e) => {
                eprintln!("hdc-lint: {e}");
                std::process::exit(2);
            }
        };
        for program in &programs {
            let report = analyze(program);
            total_errors += report.error_count();
            total_warnings += report.warning_count();
            if json {
                println!("{}", report.to_json());
            } else if report.diagnostics.is_empty() {
                println!("{name} ({}): clean", report.program);
            } else {
                print!("{report}");
            }
        }
    }
    if !json {
        println!(
            "hdc-lint: {} program(s), {total_errors} errors, {total_warnings} warnings",
            names.len()
        );
    }
    if total_errors > 0 {
        std::process::exit(1);
    }
}
