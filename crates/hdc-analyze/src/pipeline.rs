//! Pass-manager integration: run the analyzer inside a compilation
//! pipeline, and audit a whole [`hdc_passes::pipeline::compile`] run by
//! analyzing the program before and after and diffing the diagnostics.

use crate::diag::AnalysisReport;
use hdc_ir::program::Program;
use hdc_passes::pipeline::{
    compile, CompileOptions, CompileReport, Pass, PassReport, PipelineError,
};
use std::cell::RefCell;
use std::rc::Rc;

/// A [`Pass`] that runs the full analyzer and reports its summary.
///
/// The pass never mutates the program; schedule it first to lint the input
/// IR or last to check what a pipeline produced. The full
/// [`AnalysisReport`] of the most recent run is kept in a shared slot so
/// callers can inspect individual diagnostics after the pipeline returns
/// (the [`PassReport`] itself only carries the one-line summary).
#[derive(Debug, Default)]
pub struct AnalyzePass {
    report: Rc<RefCell<Option<AnalysisReport>>>,
}

impl AnalyzePass {
    /// A fresh analyzer pass.
    pub fn new() -> Self {
        Self::default()
    }

    /// A shared handle to the slot receiving each run's full report.
    pub fn report_slot(&self) -> Rc<RefCell<Option<AnalysisReport>>> {
        Rc::clone(&self.report)
    }
}

impl Pass for AnalyzePass {
    fn name(&self) -> &'static str {
        "analyze"
    }

    fn run(&mut self, program: &mut Program) -> PassReport {
        let report = crate::analyze(program);
        let summary = report.summary();
        *self.report.borrow_mut() = Some(report);
        PassReport::Message(summary)
    }
}

/// The result of [`compile_audited`]: the compile report plus the analyzer
/// verdicts on the input and output IR.
#[derive(Debug, Clone)]
pub struct AuditedCompile {
    /// Analyzer report on the program as submitted.
    pub before: AnalysisReport,
    /// The pipeline's own report.
    pub compile: CompileReport,
    /// Analyzer report on the compiled program.
    pub after: AnalysisReport,
}

impl AuditedCompile {
    /// Diagnostics present after compilation that were not present before:
    /// `(code, message)` pairs the pipeline *introduced*. A clean compiler
    /// keeps this empty — transformations may remove findings (DCE deletes
    /// dead values) but must not create new ones.
    pub fn introduced(&self) -> Vec<(crate::diag::DiagnosticCode, String)> {
        self.after
            .diagnostics
            .iter()
            .filter(|d| {
                !self
                    .before
                    .diagnostics
                    .iter()
                    .any(|b| b.code == d.code && b.location == d.location)
            })
            .map(|d| (d.code, d.message.clone()))
            .collect()
    }
}

/// Compile `program` with the standard pipeline, analyzing the IR before
/// and after.
///
/// # Errors
///
/// Propagates [`PipelineError`] from the underlying pipeline run.
pub fn compile_audited(
    program: &mut Program,
    options: &CompileOptions,
) -> Result<AuditedCompile, PipelineError> {
    let before = crate::analyze(program);
    let compile = compile(program, options)?;
    let after = crate::analyze(program);
    Ok(AuditedCompile {
        before,
        compile,
        after,
    })
}

#[cfg(test)]
mod tests {
    use super::*;
    use hdc_core::element::ElementKind;
    use hdc_ir::builder::ProgramBuilder;
    use hdc_ir::stage::ScorePolarity;
    use hdc_passes::pipeline::PassManager;

    fn classification_like() -> Program {
        let mut b = ProgramBuilder::new("cls");
        let feats = b.input_matrix("feats", ElementKind::F64, 6, 8);
        let proj = b.input_matrix("proj", ElementKind::F64, 64, 8);
        let classes = b.input_matrix("cls", ElementKind::F64, 3, 64);
        let enc = b.encoding_loop("encode", feats, 64, |body, sample| {
            let e = body.matmul(sample, proj);
            body.sign(e)
        });
        let labels = b.inference_loop("infer", enc, classes, ScorePolarity::Distance, |body, q| {
            body.hamming_distance(q, classes)
        });
        b.mark_output(labels);
        b.finish()
    }

    #[test]
    fn analyze_pass_runs_in_a_pipeline() {
        let pass = AnalyzePass::new();
        let slot = pass.report_slot();
        let mut program = classification_like();
        let report = PassManager::new()
            .with_pass(pass)
            .run(&mut program)
            .expect("pipeline runs");
        let summary = report.report_for("analyze").expect("analyze ran").summary();
        assert!(summary.contains("0 errors"), "summary: {summary}");
        let full = slot.borrow();
        assert!(!full.as_ref().expect("report captured").has_errors());
    }

    #[test]
    fn audited_compile_introduces_nothing_on_clean_input() {
        let mut program = classification_like();
        let audit = compile_audited(&mut program, &CompileOptions::default()).expect("compiles");
        assert!(!audit.before.has_errors(), "{}", audit.before.summary());
        assert!(!audit.after.has_errors(), "{}", audit.after.summary());
        assert!(
            audit.introduced().is_empty(),
            "pipeline introduced: {:?}",
            audit.introduced()
        );
    }
}
