//! Backward liveness over the def-use chains: which values can reach a
//! program output (or a side effect on one)?
//!
//! Roots are the `Output`-role values. Liveness flows backward through
//! instruction sites and through the structural stage flows of
//! [`crate::dataflow::DefUse`], so a value inside a stage body is live
//! exactly when the stage output it feeds is. Two diagnostics come out:
//!
//! * [`DiagnosticCode::DeadValue`] (`HDA001`, warning): an instruction
//!   computes a `Temp` result that never reaches an output. These are the
//!   values DCE should have removed — inside stage bodies, the pre-PR-10
//!   DCE could not see them at all.
//! * [`DiagnosticCode::DeadStageOutput`] (`HDA002`, error): a whole stage's
//!   interface output is dead. Stages are the expensive part of an HDC
//!   program; running one for nothing is treated as an error.

use crate::dataflow::{solve, DefUse, Direction, Site, SiteKind};
use crate::diag::{Diagnostic, DiagnosticCode, Location, Severity};
use hdc_ir::ops::HdcOp;
use hdc_ir::program::{NodeBody, Program, ValueId, ValueRole};

/// The result of the liveness analysis.
#[derive(Debug, Clone)]
pub struct Liveness {
    /// `live[v]` is true when value `v` can reach a program output.
    pub live: Vec<bool>,
}

impl Liveness {
    /// Whether a value is live.
    pub fn is_live(&self, v: ValueId) -> bool {
        self.live[v.index()]
    }
}

/// Compute liveness for `program` over prebuilt def-use chains.
pub fn compute(program: &Program, du: &DefUse) -> Liveness {
    let seeds: Vec<(ValueId, bool)> = program
        .values_with_role(ValueRole::Output)
        .into_iter()
        .map(|v| (v, true))
        .collect();
    let live = solve(
        du,
        program.values().len(),
        &seeds,
        Direction::Backward,
        |site: &Site, facts: &[bool]| {
            let any_write_live = site.writes.iter().any(|w| facts[w.index()]);
            if any_write_live {
                site.reads.iter().map(|r| (*r, true)).collect()
            } else {
                Vec::new()
            }
        },
    );
    Liveness { live }
}

/// Run liveness and collect its diagnostics.
pub fn check(program: &Program, du: &DefUse) -> (Liveness, Vec<Diagnostic>) {
    let liveness = compute(program, du);
    let mut diags = Vec::new();

    // HDA002 first: a dead stage output makes the whole stage body dead,
    // and per-instruction HDA001 noise inside it would bury the real
    // finding. Track those nodes and skip their bodies below.
    let mut dead_stage_nodes = std::collections::HashSet::new();
    for (ni, node) in program.nodes().iter().enumerate() {
        if let NodeBody::Stage(stage) = &node.body {
            if !liveness.is_live(stage.interface.output) {
                dead_stage_nodes.insert(ni);
                let out_name = &program.value(stage.interface.output).name;
                diags.push(Diagnostic {
                    code: DiagnosticCode::DeadStageOutput,
                    severity: Severity::Error,
                    location: Location::node(&node.name).with_value(out_name),
                    message: format!(
                        "{} output `{}` is never consumed: no later node reads it and it is not a program output",
                        stage.kind, out_name,
                    ),
                    suggestion: Some(format!(
                        "mark `{out_name}` as a program output or delete the `{}` stage",
                        node.name
                    )),
                });
            }
        }
    }

    for site in &du.sites {
        let SiteKind::Instr { node, index } = site.kind else {
            continue;
        };
        if dead_stage_nodes.contains(&node.index()) {
            continue;
        }
        let node_ref = program.node(node);
        let instr = &node_ref.instrs()[index];
        if matches!(instr.op, HdcOp::SetMatrixRow | HdcOp::AccumulateRow) {
            // In-place update: dead only if its target matrix is dead, which
            // the target's own producer diagnostics already cover.
            continue;
        }
        let Some(result) = instr.result else { continue };
        let info = program.value(result);
        if info.role == ValueRole::Temp && !liveness.is_live(result) {
            diags.push(Diagnostic {
                code: DiagnosticCode::DeadValue,
                severity: Severity::Warning,
                location: Location::instr(&node_ref.name, index).with_value(&info.name),
                message: format!(
                    "`{}` result `{}` never reaches a program output",
                    instr.op, info.name
                ),
                suggestion: Some("delete the instruction (DCE should remove it)".to_string()),
            });
        }
    }
    (liveness, diags)
}

#[cfg(test)]
mod tests {
    use super::*;
    use hdc_core::element::ElementKind;
    use hdc_ir::builder::ProgramBuilder;
    use hdc_ir::stage::ScorePolarity;

    #[test]
    fn live_chain_has_no_diagnostics() {
        let mut b = ProgramBuilder::new("live");
        let a = b.input_vector("a", ElementKind::F64, 16);
        let m = b.input_matrix("m", ElementKind::F64, 4, 16);
        let d = b.hamming_distance(a, m);
        let l = b.arg_min(d);
        b.mark_output(l);
        let p = b.finish();
        let du = DefUse::new(&p);
        let (liveness, diags) = check(&p, &du);
        assert!(diags.is_empty(), "unexpected: {diags:?}");
        assert!(liveness.is_live(a) && liveness.is_live(d));
    }

    #[test]
    fn dead_leaf_chain_is_flagged() {
        let mut b = ProgramBuilder::new("dead");
        let a = b.input_vector("a", ElementKind::F64, 16);
        let keep = b.sign(a);
        let dead = b.sign_flip(a);
        let _dead2 = b.absolute_value(dead);
        b.mark_output(keep);
        let p = b.finish();
        let du = DefUse::new(&p);
        let (_, diags) = check(&p, &du);
        let codes: Vec<_> = diags.iter().map(|d| d.code).collect();
        assert_eq!(
            codes,
            vec![DiagnosticCode::DeadValue, DiagnosticCode::DeadValue]
        );
    }

    #[test]
    fn dead_value_inside_stage_body_is_found() {
        // The value the original DCE could not see: a dead intermediate
        // *inside* an encoding body.
        let mut b = ProgramBuilder::new("stage_dead");
        let feats = b.input_matrix("feats", ElementKind::F64, 4, 8);
        let proj = b.input_matrix("proj", ElementKind::F64, 32, 8);
        let enc = b.encoding_loop("encode", feats, 32, |body, sample| {
            let e = body.matmul(sample, proj);
            let _dead = body.sign_flip(e);
            body.sign(e)
        });
        b.mark_output(enc);
        let p = b.finish();
        let du = DefUse::new(&p);
        let (_, diags) = check(&p, &du);
        assert_eq!(diags.len(), 1);
        assert_eq!(diags[0].code, DiagnosticCode::DeadValue);
        assert_eq!(diags[0].location.node.as_deref(), Some("encode"));
    }

    #[test]
    fn dead_stage_output_is_an_error_without_body_noise() {
        let mut b = ProgramBuilder::new("dead_stage");
        let queries = b.input_matrix("q", ElementKind::F64, 4, 32);
        let classes = b.input_matrix("c", ElementKind::F64, 3, 32);
        // Inference stage whose label vector nobody consumes.
        let _labels = b.inference_loop(
            "infer",
            queries,
            classes,
            ScorePolarity::Distance,
            |body, sample| body.hamming_distance(sample, classes),
        );
        let keep = b.sign(queries);
        b.mark_output(keep);
        let p = b.finish();
        let du = DefUse::new(&p);
        let (_, diags) = check(&p, &du);
        assert_eq!(diags.len(), 1, "body noise suppressed: {diags:?}");
        assert_eq!(diags[0].code, DiagnosticCode::DeadStageOutput);
        assert_eq!(diags[0].severity, Severity::Error);
    }

    #[test]
    fn liveness_flows_through_stage_interface() {
        let mut b = ProgramBuilder::new("through");
        let feats = b.input_matrix("feats", ElementKind::F64, 4, 8);
        let proj = b.input_matrix("proj", ElementKind::F64, 32, 8);
        let classes = b.input_matrix("cls", ElementKind::F64, 3, 32);
        let enc = b.encoding_loop("encode", feats, 32, |body, sample| {
            body.matmul(sample, proj)
        });
        let labels = b.inference_loop(
            "infer",
            enc,
            classes,
            ScorePolarity::Distance,
            |body, sample| body.hamming_distance(sample, classes),
        );
        b.mark_output(labels);
        let p = b.finish();
        let du = DefUse::new(&p);
        let (liveness, diags) = check(&p, &du);
        assert!(diags.is_empty(), "unexpected: {diags:?}");
        // The raw features are live only because the encode output feeds
        // the inference stage that feeds the output.
        assert!(liveness.is_live(feats) && liveness.is_live(proj) && liveness.is_live(enc));
    }
}
