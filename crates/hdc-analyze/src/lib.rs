//! Static dataflow analysis for HPVM-HDC IR.
//!
//! `hdc-analyze` is the diagnostic layer of the compiler: where the
//! [`hdc_ir::verify`] verifier rejects programs that are structurally
//! malformed, this crate finds programs that are well-formed but *wrong* —
//! dead stages, binarized values leaking into full-precision kernels,
//! illegal perforation descriptors, mis-sized stage interfaces, racy
//! parallel loops.
//!
//! The crate is built from four pieces:
//!
//! * [`dataflow`] — def-use chains over the IR, with explicit *structural*
//!   sites for the stage-interface flows the instruction list does not
//!   show (`queries → body_query`, `body_result → output`), plus the
//!   shared worklist engine ([`dataflow::solve`]).
//! * [`liveness`] — backward analysis flagging dead values (`HDA001`) and
//!   dead stage outputs (`HDA002`).
//! * [`shape`] — abstract shape/dtype interpretation of stage interfaces
//!   (`HDA003`), bit-taint (`HDA004`), perforation legality (`HDA005`,
//!   `HDA010`), `wrap_shift` placement (`HDA006`, `HDA007`) and
//!   `parallel_for` independence (`HDA008`, `HDA009`).
//! * [`effects`] — per-node effect/alias classification over the
//!   `Arc`-backed runtime store (`HDA011` plus the one-directional
//!   zero-copy contract checked against
//!   `ExecStats::tensor_bytes_copied`).
//!
//! Everything is surfaced three ways: programmatically via [`analyze`]
//! (an [`AnalysisReport`] with machine-readable JSON), on the command line
//! via the `hdc-lint` binary (non-zero exit on errors), and inside the
//! pass manager via [`pipeline::AnalyzePass`] /
//! [`pipeline::compile_audited`].

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod dataflow;
pub mod diag;
pub mod effects;
pub mod liveness;
pub mod pipeline;
pub mod shape;

pub use diag::{AnalysisReport, Diagnostic, DiagnosticCode, Location, Severity};
pub use pipeline::{compile_audited, AnalyzePass, AuditedCompile};

use hdc_ir::program::Program;

/// Run every analysis over `program` and collect the findings.
///
/// Diagnostics are ordered by analysis (liveness, then shape/taint/
/// legality, then effects); within one analysis they follow program order.
pub fn analyze(program: &Program) -> AnalysisReport {
    let du = dataflow::DefUse::new(program);
    let mut diagnostics = Vec::new();
    let (_liveness, mut d) = liveness::check(program, &du);
    diagnostics.append(&mut d);
    let (_taint, mut d) = shape::check(program, &du);
    diagnostics.append(&mut d);
    let (_effects, mut d) = effects::check(program, &du);
    diagnostics.append(&mut d);
    AnalysisReport {
        program: program.name.clone(),
        diagnostics,
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use hdc_core::element::ElementKind;
    use hdc_ir::builder::ProgramBuilder;

    #[test]
    fn analyze_aggregates_all_analyses() {
        let mut b = ProgramBuilder::new("aggregate");
        let a = b.input_vector("a", ElementKind::F64, 16);
        let n = b.input_vector("n", ElementKind::F64, 16);
        let s = b.sign(a);
        let dead = b.sign_flip(a);
        let _ = dead;
        let bad = b.div(s, n); // HDA004
        b.mark_output(bad);
        let report = analyze(&b.finish());
        assert!(report.has_code(DiagnosticCode::DeadValue), "{report}");
        assert!(report.has_code(DiagnosticCode::BitTaintLeak), "{report}");
        assert!(report.has_errors());
        assert_eq!(report.program, "aggregate");
    }

    #[test]
    fn clean_program_reports_clean() {
        let mut b = ProgramBuilder::new("clean");
        let a = b.input_vector("a", ElementKind::F64, 16);
        let m = b.input_matrix("m", ElementKind::F64, 4, 16);
        let d = b.hamming_distance(a, m);
        let sel = b.arg_min(d);
        b.mark_output(sel);
        let report = analyze(&b.finish());
        assert!(report.diagnostics.is_empty(), "{report}");
        assert!(!report.has_errors());
    }
}
