//! Def-use chains over the IR and the worklist engine the analyses share.
//!
//! The IR's own [`Node::read_values`]/[`Node::written_values`] flatten a
//! stage to "reads everything, writes everything", which is correct for
//! scheduling but too coarse for dataflow analysis: inside a stage, data
//! flows *structurally* — the executor copies one row of
//! `interface.queries` into `body_query` before each body run, and the
//! stage semantics consume `body_result` to produce `interface.output`.
//! [`DefUse`] models those structural flows as explicit sites alongside the
//! per-instruction ones, which is what lets liveness and taint propagate
//! *through* stage interfaces instead of stopping at the node boundary.
//!
//! [`Node::read_values`]: hdc_ir::program::Node::read_values
//! [`Node::written_values`]: hdc_ir::program::Node::written_values

use hdc_ir::program::{NodeBody, NodeId, Program, ValueId};
use std::collections::VecDeque;

/// What kind of dataflow site this is.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum SiteKind {
    /// One instruction inside a node body; `index` is its position there.
    Instr {
        /// The containing node.
        node: NodeId,
        /// Position within the node's instruction list.
        index: usize,
    },
    /// The structural stage flow `interface.queries → body_query`: the
    /// executor writes one query row into the body-query slot per
    /// iteration.
    StageQueryFlow {
        /// The stage node.
        node: NodeId,
    },
    /// The structural stage flow `body_result (+ classes/labels) →
    /// interface.output`: the stage semantics consume the per-sample result
    /// to build the stage output.
    StageResultFlow {
        /// The stage node.
        node: NodeId,
    },
    /// The structural definition of a `ParallelFor` instance index.
    ParallelForIndex {
        /// The loop node.
        node: NodeId,
    },
}

/// One dataflow site: something that reads values and writes values.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Site {
    /// The site kind (and IR position).
    pub kind: SiteKind,
    /// Values this site reads.
    pub reads: Vec<ValueId>,
    /// Values this site writes.
    pub writes: Vec<ValueId>,
}

/// Def-use chains for a whole program: every site, plus per-value indices
/// of the sites that define and use it.
#[derive(Debug, Clone)]
pub struct DefUse {
    /// All sites, in program order.
    pub sites: Vec<Site>,
    /// For each value (by index), the sites writing it.
    pub defs: Vec<Vec<usize>>,
    /// For each value (by index), the sites reading it.
    pub uses: Vec<Vec<usize>>,
}

impl DefUse {
    /// Build the def-use chains of `program`, including the structural
    /// stage and parallel-for flows.
    pub fn new(program: &Program) -> Self {
        let mut sites = Vec::new();
        for (ni, node) in program.nodes().iter().enumerate() {
            let node_id = NodeId::new(ni);
            match &node.body {
                NodeBody::Leaf { instrs } => {
                    for (ii, instr) in instrs.iter().enumerate() {
                        sites.push(Site {
                            kind: SiteKind::Instr {
                                node: node_id,
                                index: ii,
                            },
                            reads: instr.read_values().collect(),
                            writes: instr.written_values(),
                        });
                    }
                }
                NodeBody::ParallelFor { index, body, .. } => {
                    sites.push(Site {
                        kind: SiteKind::ParallelForIndex { node: node_id },
                        reads: Vec::new(),
                        writes: vec![*index],
                    });
                    for (ii, instr) in body.iter().enumerate() {
                        sites.push(Site {
                            kind: SiteKind::Instr {
                                node: node_id,
                                index: ii,
                            },
                            reads: instr.read_values().collect(),
                            writes: instr.written_values(),
                        });
                    }
                }
                NodeBody::Stage(stage) => {
                    sites.push(Site {
                        kind: SiteKind::StageQueryFlow { node: node_id },
                        reads: vec![stage.interface.queries],
                        writes: vec![stage.body_query],
                    });
                    for (ii, instr) in stage.body.iter().enumerate() {
                        sites.push(Site {
                            kind: SiteKind::Instr {
                                node: node_id,
                                index: ii,
                            },
                            reads: instr.read_values().collect(),
                            writes: instr.written_values(),
                        });
                    }
                    let mut result_reads = vec![stage.body_result];
                    if let Some(c) = stage.interface.classes {
                        result_reads.push(c);
                    }
                    if let Some(l) = stage.interface.labels {
                        result_reads.push(l);
                    }
                    sites.push(Site {
                        kind: SiteKind::StageResultFlow { node: node_id },
                        reads: result_reads,
                        writes: vec![stage.interface.output],
                    });
                }
            }
        }
        let n = program.values().len();
        let mut defs = vec![Vec::new(); n];
        let mut uses = vec![Vec::new(); n];
        for (si, site) in sites.iter().enumerate() {
            for w in &site.writes {
                defs[w.index()].push(si);
            }
            for r in &site.reads {
                uses[r.index()].push(si);
            }
        }
        DefUse { sites, defs, uses }
    }
}

/// Which way facts flow through sites.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Direction {
    /// Reads feed writes (taint, shapes).
    Forward,
    /// Writes feed reads (liveness).
    Backward,
}

/// A join-semilattice fact attached to each value.
pub trait Fact: Clone + Default {
    /// Join `other` into `self`, returning whether `self` changed. The
    /// worklist engine terminates because facts only ever grow.
    fn join(&mut self, other: &Self) -> bool;
}

impl Fact for bool {
    fn join(&mut self, other: &bool) -> bool {
        let changed = *other && !*self;
        *self |= *other;
        changed
    }
}

/// Solve a per-value dataflow problem to fixpoint with a worklist.
///
/// `facts` starts from `seeds`; every site is visited at least once, and
/// `transfer` returns `(value, fact)` updates the engine joins in. When a
/// value's fact grows, the sites that depend on it (its uses for
/// [`Direction::Forward`], its defs for [`Direction::Backward`]) are
/// re-queued. Monotone transfer functions make this terminate.
pub fn solve<F: Fact>(
    du: &DefUse,
    value_count: usize,
    seeds: &[(ValueId, F)],
    direction: Direction,
    mut transfer: impl FnMut(&Site, &[F]) -> Vec<(ValueId, F)>,
) -> Vec<F> {
    let mut facts: Vec<F> = vec![F::default(); value_count];
    let mut queue: VecDeque<usize> = VecDeque::new();
    let mut queued = vec![false; du.sites.len()];
    let enqueue_dependents = |v: ValueId, queue: &mut VecDeque<usize>, queued: &mut Vec<bool>| {
        let dependents = match direction {
            Direction::Forward => &du.uses[v.index()],
            Direction::Backward => &du.defs[v.index()],
        };
        for &si in dependents {
            if !queued[si] {
                queued[si] = true;
                queue.push_back(si);
            }
        }
    };
    for (v, f) in seeds {
        if facts[v.index()].join(f) {
            enqueue_dependents(*v, &mut queue, &mut queued);
        }
    }
    // Every site runs at least once: a transfer may produce facts from
    // site structure alone (e.g. an instruction whose op seeds taint).
    for (si, seen) in queued.iter_mut().enumerate() {
        if !*seen {
            *seen = true;
            queue.push_back(si);
        }
    }
    while let Some(si) = queue.pop_front() {
        queued[si] = false;
        let updates = transfer(&du.sites[si], &facts);
        for (v, f) in updates {
            if facts[v.index()].join(&f) {
                enqueue_dependents(v, &mut queue, &mut queued);
            }
        }
    }
    facts
}

#[cfg(test)]
mod tests {
    use super::*;
    use hdc_core::element::ElementKind;
    use hdc_ir::builder::ProgramBuilder;

    fn chain_program() -> (Program, ValueId, ValueId, ValueId) {
        let mut b = ProgramBuilder::new("chain");
        let a = b.input_vector("a", ElementKind::F64, 16);
        let x = b.sign(a);
        let y = b.sign_flip(x);
        b.mark_output(y);
        (b.finish(), a, x, y)
    }

    #[test]
    fn def_use_links_instruction_chain() {
        let (p, a, x, y) = chain_program();
        let du = DefUse::new(&p);
        assert_eq!(du.sites.len(), 2);
        assert_eq!(du.defs[x.index()].len(), 1);
        assert_eq!(du.uses[x.index()].len(), 1);
        assert_eq!(du.uses[a.index()].len(), 1);
        assert!(du.defs[a.index()].is_empty(), "inputs have no def site");
        assert_eq!(du.defs[y.index()].len(), 1);
    }

    #[test]
    fn forward_reachability_via_worklist() {
        let (p, a, x, y) = chain_program();
        let du = DefUse::new(&p);
        let facts = solve(
            &du,
            p.values().len(),
            &[(a, true)],
            Direction::Forward,
            |site, facts| {
                let any_read = site.reads.iter().any(|r| facts[r.index()]);
                site.writes.iter().map(|w| (*w, any_read)).collect()
            },
        );
        assert!(facts[a.index()] && facts[x.index()] && facts[y.index()]);
    }

    #[test]
    fn backward_liveness_via_worklist() {
        let (p, a, x, y) = chain_program();
        let du = DefUse::new(&p);
        let facts = solve(
            &du,
            p.values().len(),
            &[(y, true)],
            Direction::Backward,
            |site, facts| {
                let any_write_live = site.writes.iter().any(|w| facts[w.index()]);
                site.reads.iter().map(|r| (*r, any_write_live)).collect()
            },
        );
        assert!(facts[y.index()] && facts[x.index()] && facts[a.index()]);
    }

    #[test]
    fn stage_sites_model_structural_flow() {
        let mut b = ProgramBuilder::new("stage");
        let queries = b.input_matrix("q", ElementKind::F64, 4, 32);
        let classes = b.input_matrix("c", ElementKind::F64, 3, 32);
        b.inference_loop(
            "infer",
            queries,
            classes,
            hdc_ir::stage::ScorePolarity::Distance,
            |body, sample| body.hamming_distance(sample, classes),
        );
        let p = b.finish();
        let du = DefUse::new(&p);
        let has_query_flow = du
            .sites
            .iter()
            .any(|s| matches!(s.kind, SiteKind::StageQueryFlow { .. }));
        let has_result_flow = du
            .sites
            .iter()
            .any(|s| matches!(s.kind, SiteKind::StageResultFlow { .. }));
        assert!(has_query_flow && has_result_flow);
    }
}
