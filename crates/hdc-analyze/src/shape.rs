//! Abstract shape / dtype interpretation and legality rules.
//!
//! The IR verifier checks per-instruction operand typing; what it cannot
//! see is how values flow *across* stage interfaces and loop boundaries.
//! This module closes that gap with four families of checks:
//!
//! * **Stage-interface shapes** (`HDA003`): the per-sample `body_result`
//!   must agree with what the stage semantics do with it — an encoding
//!   body must produce one output row (`dim == output.cols`), a training
//!   or inference body must produce one score per class
//!   (`dim == classes.rows`), and the output length must match the query
//!   count. Element-kind drift across an interface is a warning.
//! * **Bit-taint** (`HDA004`): a forward dataflow tracks which values are
//!   binarized (±1 / packed-bit contents). Feeding a tainted value into
//!   an `hdc.div` or element-wise `cosine` — kernels that are only
//!   meaningful on full-precision data — is an error. Reductions and
//!   selections launder taint (collapsing the hypervector dimension
//!   produces full-precision scores), as does a `type_cast` to a dense
//!   kind; that mirrors Algorithm 1's `IsHDCReduceOp` rule.
//! * **Perforation legality** (`HDA005`, `HDA010`): a `red_perf`
//!   annotation on an op that does not support it, or a descriptor that
//!   is invalid for the op's reduction dimension, is an error. Mixing
//!   different descriptors on the same op within one node is a warning —
//!   the scores are no longer comparable.
//! * **`wrap_shift` position** (`HDA006`, `HDA007`): wrap-shift is a
//!   permutation *encoding* primitive. Applying it to a reduction or
//!   selection result (scores, labels) or to a non-tensor is an error;
//!   a shift amount that is a multiple of the dimension is a no-op
//!   warning.

use crate::dataflow::{solve, DefUse, Direction, Site, SiteKind};
use crate::diag::{Diagnostic, DiagnosticCode, Location, Severity};
use hdc_core::element::ElementKind;
use hdc_core::ops::ElementwiseOp;
use hdc_ir::instr::HdcInstr;
use hdc_ir::ops::{HdcOp, OpCategory};
use hdc_ir::program::{NodeBody, Program, ValueId};
use hdc_ir::stage::StageKind;
use hdc_ir::types::ValueType;

/// Result of the bit-taint analysis.
#[derive(Debug, Clone)]
pub struct BitTaint {
    /// `tainted[v]` is true when value `v` may hold binarized contents.
    pub tainted: Vec<bool>,
}

impl BitTaint {
    /// Whether a value may hold binarized contents.
    pub fn is_tainted(&self, v: ValueId) -> bool {
        self.tainted[v.index()]
    }
}

/// Compute bit-taint for `program` over prebuilt def-use chains.
pub fn compute_taint(program: &Program, du: &DefUse) -> BitTaint {
    let seeds: Vec<(ValueId, bool)> = program
        .values()
        .iter()
        .enumerate()
        .filter(|(_, info)| info.ty.element_kind() == Some(ElementKind::Bit))
        .map(|(i, _)| (ValueId::new(i), true))
        .collect();
    let tainted = solve(
        du,
        program.values().len(),
        &seeds,
        Direction::Forward,
        |site: &Site, facts: &[bool]| transfer_taint(program, site, facts),
    );
    BitTaint { tainted }
}

fn transfer_taint(program: &Program, site: &Site, facts: &[bool]) -> Vec<(ValueId, bool)> {
    let any_read = site.reads.iter().any(|r| facts[r.index()]);
    match site.kind {
        SiteKind::Instr { node, index } => {
            let instr = &program.node(node).instrs()[index];
            let out = match instr.op {
                // Binarization points: sign produces ±1 contents whatever
                // the storage kind; a cast to Bit packs.
                HdcOp::Sign
                | HdcOp::TypeCast {
                    to: ElementKind::Bit,
                } => true,
                // Densification point: casting to a dense kind launders.
                HdcOp::TypeCast { .. } => false,
                _ => match instr.op.category() {
                    // Collapsing the hypervector dimension produces
                    // full-precision scores / indices (Algorithm 1).
                    OpCategory::Reduction | OpCategory::Selection => false,
                    OpCategory::Creation => false,
                    OpCategory::Elementwise | OpCategory::DataMovement => any_read,
                },
            };
            site.writes.iter().map(|w| (*w, out)).collect()
        }
        SiteKind::StageQueryFlow { .. } => {
            // The executor copies one query row into the body-query slot.
            site.writes.iter().map(|w| (*w, any_read)).collect()
        }
        SiteKind::StageResultFlow { node } => {
            let is_selection = match &program.node(node).body {
                NodeBody::Stage(stage) => matches!(stage.kind, StageKind::Inference),
                _ => false,
            };
            // Inference outputs are selected labels; encoding outputs are
            // the body results stacked, training outputs accumulate the
            // (possibly binarized) queries.
            let out = !is_selection && any_read;
            site.writes.iter().map(|w| (*w, out)).collect()
        }
        SiteKind::ParallelForIndex { .. } => Vec::new(),
    }
}

/// Run all shape / taint / perforation / wrap-shift checks.
pub fn check(program: &Program, du: &DefUse) -> (BitTaint, Vec<Diagnostic>) {
    let taint = compute_taint(program, du);
    let mut diags = Vec::new();
    check_stage_interfaces(program, &mut diags);
    check_taint_leaks(program, du, &taint, &mut diags);
    check_perforation(program, du, &mut diags);
    check_wrap_shift(program, du, &mut diags);
    check_parallel_for(program, du, &mut diags);
    (taint, diags)
}

fn rows_of(ty: &ValueType) -> Option<usize> {
    match ty {
        ValueType::HyperMatrix { rows, .. } => Some(*rows),
        _ => None,
    }
}

fn output_len(ty: &ValueType) -> Option<usize> {
    match ty {
        ValueType::IndexVector { len } => Some(*len),
        ValueType::HyperMatrix { rows, .. } => Some(*rows),
        _ => None,
    }
}

fn check_stage_interfaces(program: &Program, diags: &mut Vec<Diagnostic>) {
    for node in program.nodes() {
        let NodeBody::Stage(stage) = &node.body else {
            continue;
        };
        let result_ty = program.value(stage.body_result).ty;
        let result_name = &program.value(stage.body_result).name;
        let result_dim = result_ty.reduction_dim();
        let loc = || Location::node(&node.name).with_value(result_name);
        match stage.kind {
            StageKind::Encoding => {
                let out_ty = program.value(stage.interface.output).ty;
                if let (Some(dim), ValueType::HyperMatrix { cols, .. }) = (result_dim, out_ty) {
                    if dim != cols {
                        diags.push(Diagnostic {
                            code: DiagnosticCode::StageShapeMismatch,
                            severity: Severity::Error,
                            location: loc(),
                            message: format!(
                                "encoding body produces a {dim}-element result but the stage \
                                 output has {cols} columns"
                            ),
                            suggestion: Some(
                                "make the body return one encoded row of the output width".into(),
                            ),
                        });
                    }
                }
                if let (Some(re), Some(oe)) = (result_ty.element_kind(), out_ty.element_kind()) {
                    if re != oe {
                        diags.push(Diagnostic {
                            code: DiagnosticCode::StageShapeMismatch,
                            severity: Severity::Warning,
                            location: loc(),
                            message: format!(
                                "encoding body result is {re} but the stage output stores \
                                 {oe}; the executor will convert every row"
                            ),
                            suggestion: Some("cast inside the body or retype the output".into()),
                        });
                    }
                }
            }
            StageKind::Training { .. } | StageKind::Inference => {
                let classes_rows = stage
                    .interface
                    .classes
                    .and_then(|c| rows_of(&program.value(c).ty));
                if let (Some(dim), Some(rows)) = (result_dim, classes_rows) {
                    if dim != rows {
                        diags.push(Diagnostic {
                            code: DiagnosticCode::StageShapeMismatch,
                            severity: Severity::Error,
                            location: loc(),
                            message: format!(
                                "{} body produces {dim} scores but the class memory has \
                                 {rows} rows; {} selects over one score per class",
                                stage.kind,
                                match stage.polarity {
                                    hdc_ir::stage::ScorePolarity::Similarity => "arg_max",
                                    hdc_ir::stage::ScorePolarity::Distance => "arg_min",
                                },
                            ),
                            suggestion: Some(
                                "score against the stage's class matrix so lengths agree".into(),
                            ),
                        });
                    }
                }
            }
        }
        // Output length vs query count, for every stage kind that maps one
        // query row to one output row/label.
        let q_ty = program.value(stage.interface.queries).ty;
        let out_ty = program.value(stage.interface.output).ty;
        if !matches!(stage.kind, StageKind::Training { .. }) {
            if let (Some(q_rows), Some(out_rows)) = (rows_of(&q_ty), output_len(&out_ty)) {
                if q_rows != out_rows {
                    diags.push(Diagnostic {
                        code: DiagnosticCode::StageShapeMismatch,
                        severity: Severity::Error,
                        location: Location::node(&node.name)
                            .with_value(&program.value(stage.interface.output).name),
                        message: format!(
                            "{} maps {q_rows} query rows to an output of length {out_rows}",
                            stage.kind
                        ),
                        suggestion: Some("size the stage output to the query count".into()),
                    });
                }
            }
        }
    }
}

fn check_taint_leaks(
    program: &Program,
    du: &DefUse,
    taint: &BitTaint,
    diags: &mut Vec<Diagnostic>,
) {
    for site in &du.sites {
        let SiteKind::Instr { node, index } = site.kind else {
            continue;
        };
        let instr = &program.node(node).instrs()[index];
        let precision_kernel = matches!(
            instr.op,
            HdcOp::Elementwise(ElementwiseOp::Div) | HdcOp::CosineElementwise
        );
        if !precision_kernel {
            continue;
        }
        for read in &site.reads {
            if taint.is_tainted(*read) {
                let name = &program.value(*read).name;
                diags.push(Diagnostic {
                    code: DiagnosticCode::BitTaintLeak,
                    severity: Severity::Error,
                    location: Location::instr(&program.node(node).name, index).with_value(name),
                    message: format!(
                        "binarized value `{name}` flows into `{}`, which is only meaningful \
                         on full-precision data",
                        instr.op
                    ),
                    suggestion: Some(format!(
                        "insert a `type_cast` to a dense kind before `{}` or drop the \
                         binarization upstream",
                        instr.op
                    )),
                });
            }
        }
    }
}

fn reduction_dim_of_first_operand(program: &Program, instr: &HdcInstr) -> Option<usize> {
    let first = instr.operands.first()?.as_value()?;
    program.value(first).ty.reduction_dim()
}

fn check_perforation(program: &Program, du: &DefUse, diags: &mut Vec<Diagnostic>) {
    for site in &du.sites {
        let SiteKind::Instr { node, index } = site.kind else {
            continue;
        };
        let instr = &program.node(node).instrs()[index];
        let Some(perf) = instr.perforation else {
            continue;
        };
        let loc = Location::instr(&program.node(node).name, index);
        if !instr.op.supports_perforation() {
            diags.push(Diagnostic {
                code: DiagnosticCode::IllegalPerforation,
                severity: Severity::Error,
                location: loc,
                message: format!(
                    "`{}` carries a red_perf annotation but is not a perforable reduction",
                    instr.op
                ),
                suggestion: Some(
                    "red_perf is legal on hamming_distance, cossim, matmul and l2norm only".into(),
                ),
            });
            continue;
        }
        if let Some(dim) = reduction_dim_of_first_operand(program, instr) {
            if let Err(e) = perf.validate(dim) {
                diags.push(Diagnostic {
                    code: DiagnosticCode::IllegalPerforation,
                    severity: Severity::Error,
                    location: loc,
                    message: format!(
                        "red_perf [{}, {}) stride {} is invalid for reduction dimension \
                         {dim}: {e}",
                        perf.begin, perf.end, perf.stride
                    ),
                    suggestion: Some("fix the descriptor range/stride".into()),
                });
            }
        }
    }
    // HDA010: the same op perforated differently within one node produces
    // scores that are not comparable with each other.
    for node in program.nodes() {
        let mut seen: Vec<(HdcOp, Option<hdc_core::Perforation>)> = Vec::new();
        for instr in node.instrs() {
            if !instr.op.supports_perforation() {
                continue;
            }
            if let Some((_, prior)) = seen.iter().find(|(op, _)| *op == instr.op) {
                if *prior != instr.perforation {
                    diags.push(Diagnostic {
                        code: DiagnosticCode::MixedPerforation,
                        severity: Severity::Warning,
                        location: Location::node(&node.name),
                        message: format!(
                            "`{}` appears with different perforation descriptors in the same \
                             node; the resulting scores are not mutually comparable",
                            instr.op
                        ),
                        suggestion: Some("use one red_perf descriptor per op within a node".into()),
                    });
                    break;
                }
            } else {
                seen.push((instr.op, instr.perforation));
            }
        }
    }
}

/// Whether `value` is (possibly) produced by a reduction or selection — the
/// positions where `wrap_shift` stops being a permutation of encoded
/// hypervector lanes and starts permuting scores or labels.
fn produced_by_score_op(program: &Program, du: &DefUse, value: ValueId) -> Option<String> {
    for &si in &du.defs[value.index()] {
        if let SiteKind::Instr { node, index } = du.sites[si].kind {
            let op = program.node(node).instrs()[index].op;
            if matches!(op.category(), OpCategory::Reduction | OpCategory::Selection) {
                return Some(op.to_string());
            }
        }
    }
    None
}

fn check_wrap_shift(program: &Program, du: &DefUse, diags: &mut Vec<Diagnostic>) {
    for site in &du.sites {
        let SiteKind::Instr { node, index } = site.kind else {
            continue;
        };
        let instr = &program.node(node).instrs()[index];
        if instr.op != HdcOp::WrapShift {
            continue;
        }
        let loc = || Location::instr(&program.node(node).name, index);
        let Some(input) = instr.operands.first().and_then(|o| o.as_value()) else {
            continue;
        };
        let input_info = program.value(input);
        if !input_info.ty.is_tensor() {
            diags.push(Diagnostic {
                code: DiagnosticCode::WrapShiftPosition,
                severity: Severity::Error,
                location: loc().with_value(&input_info.name),
                message: format!(
                    "wrap_shift permutes hypervector lanes but `{}` is {}",
                    input_info.name, input_info.ty
                ),
                suggestion: Some("apply wrap_shift to a hypervector or hypermatrix".into()),
            });
            continue;
        }
        if let Some(op) = produced_by_score_op(program, du, input) {
            diags.push(Diagnostic {
                code: DiagnosticCode::WrapShiftPosition,
                severity: Severity::Error,
                location: loc().with_value(&input_info.name),
                message: format!(
                    "wrap_shift applied to `{}`, a `{op}` result; permuting scores changes \
                     which class each score belongs to",
                    input_info.name
                ),
                suggestion: Some(
                    "move the wrap_shift before the reduction, onto the encoded operand".into(),
                ),
            });
            continue;
        }
        if let (Some(amount), Some(dim)) = (
            instr.operands.get(1).and_then(|o| o.as_imm()),
            input_info.ty.reduction_dim(),
        ) {
            if dim > 0 && amount.rem_euclid(dim as i64) == 0 {
                diags.push(Diagnostic {
                    code: DiagnosticCode::WrapShiftNoop,
                    severity: Severity::Warning,
                    location: loc().with_value(&input_info.name),
                    message: format!(
                        "wrap_shift by {amount} on dimension {dim} is the identity permutation"
                    ),
                    suggestion: Some("delete the shift or use a non-multiple amount".into()),
                });
            }
        }
    }
}

fn check_parallel_for(program: &Program, du: &DefUse, diags: &mut Vec<Diagnostic>) {
    for (ni, node) in program.nodes().iter().enumerate() {
        let NodeBody::ParallelFor { count, index, body } = &node.body else {
            continue;
        };
        // HDA009: a loop index nobody reads means every instance does
        // identical work.
        if *count > 1 && du.uses[index.index()].is_empty() {
            diags.push(Diagnostic {
                code: DiagnosticCode::ParallelForIndexUnused,
                severity: Severity::Warning,
                location: Location::node(&node.name).with_value(&program.value(*index).name),
                message: format!(
                    "parallel_for runs {count} instances but none of them reads the \
                     instance index; every instance repeats the same work"
                ),
                suggestion: Some(
                    "index per-instance data with the loop index, or drop the loop".into(),
                ),
            });
        }
        // HDA008: an in-place row write whose row operand is a compile-time
        // immediate targets the same row from every instance.
        for (ii, instr) in body.iter().enumerate() {
            let (is_set, is_acc) = (
                instr.op == HdcOp::SetMatrixRow,
                instr.op == HdcOp::AccumulateRow,
            );
            if (!is_set && !is_acc) || *count <= 1 {
                continue;
            }
            if let Some(row) = instr.operands.get(2).and_then(|o| o.as_imm()) {
                let target = instr
                    .operands
                    .first()
                    .and_then(|o| o.as_value())
                    .map(|v| program.value(v).name.clone())
                    .unwrap_or_default();
                diags.push(Diagnostic {
                    code: DiagnosticCode::ParallelForCollision,
                    // set_matrix_row races are order-dependent (last write
                    // wins); accumulate_row commutes element-wise, so the
                    // collision is only a perf/intent smell.
                    severity: if is_set {
                        Severity::Error
                    } else {
                        Severity::Warning
                    },
                    location: Location::instr(&node.name, ii).with_value(&target),
                    message: format!(
                        "all {count} parallel instances {} row {row} of `{target}`; \
                         iterations of a parallel_for must be independent",
                        if is_set {
                            "overwrite"
                        } else {
                            "accumulate into"
                        },
                    ),
                    suggestion: Some(
                        "derive the row from the instance index (e.g. accumulate_row with a \
                         dynamic row)"
                            .into(),
                    ),
                });
            }
        }
        let _ = ni;
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use hdc_ir::builder::ProgramBuilder;
    use hdc_ir::program::{Node, ValueInfo, ValueRole};
    use hdc_ir::stage::ScorePolarity;
    use hdc_ir::Target;

    fn analyze(p: &Program) -> Vec<Diagnostic> {
        let du = DefUse::new(p);
        check(p, &du).1
    }

    #[test]
    fn clean_pipeline_has_no_diagnostics() {
        let mut b = ProgramBuilder::new("clean");
        let feats = b.input_matrix("feats", ElementKind::F64, 4, 8);
        let proj = b.input_matrix("proj", ElementKind::F64, 32, 8);
        let classes = b.input_matrix("cls", ElementKind::F64, 3, 32);
        let enc = b.encoding_loop("encode", feats, 32, |body, sample| {
            let e = body.matmul(sample, proj);
            body.sign(e)
        });
        let labels = b.inference_loop("infer", enc, classes, ScorePolarity::Distance, |body, q| {
            body.hamming_distance(q, classes)
        });
        b.mark_output(labels);
        let diags = analyze(&b.finish());
        assert!(diags.is_empty(), "unexpected: {diags:?}");
    }

    #[test]
    fn taint_is_laundered_by_reduction_and_cast() {
        let mut b = ProgramBuilder::new("launder");
        let a = b.input_vector("a", ElementKind::F64, 16);
        let m = b.input_matrix("m", ElementKind::Bit, 4, 16);
        let s = b.sign(a);
        let scores = b.hamming_distance(s, m);
        let dense = b.type_cast(s, ElementKind::F64);
        b.mark_output(scores);
        b.mark_output(dense);
        let p = b.finish();
        let du = DefUse::new(&p);
        let (taint, diags) = check(&p, &du);
        assert!(taint.is_tainted(s));
        assert!(taint.is_tainted(ValueId::new(1)), "declared Bit input");
        assert!(!taint.is_tainted(scores), "reduction launders");
        assert!(!taint.is_tainted(dense), "dense cast launders");
        assert!(diags.is_empty(), "unexpected: {diags:?}");
    }

    #[test]
    fn bit_taint_into_div_is_an_error() {
        let mut b = ProgramBuilder::new("leak");
        let a = b.input_vector("a", ElementKind::F64, 16);
        let n = b.input_vector("norms", ElementKind::F64, 16);
        let s = b.sign(a);
        let bad = b.div(s, n);
        b.mark_output(bad);
        let diags = analyze(&b.finish());
        assert_eq!(diags.len(), 1, "{diags:?}");
        assert_eq!(diags[0].code, DiagnosticCode::BitTaintLeak);
        assert_eq!(diags[0].severity, Severity::Error);
    }

    #[test]
    fn encoding_dim_mismatch_is_an_error() {
        // Built through the raw IR API: the builder sizes the output from
        // the body result, so the mismatch must be constructed by hand.
        let mut b = ProgramBuilder::new("mismatch");
        let feats = b.input_matrix("feats", ElementKind::F64, 4, 8);
        let proj = b.input_matrix("proj", ElementKind::F64, 32, 8);
        let enc = b.encoding_loop("encode", feats, 32, |body, sample| {
            body.matmul(sample, proj)
        });
        b.mark_output(enc);
        let mut p = b.finish();
        // Shrink the stage output width behind the body's back.
        let out = {
            let NodeBody::Stage(stage) = &p.nodes()[0].body else {
                panic!("expected stage")
            };
            stage.interface.output
        };
        p.value_mut(out).ty = ValueType::HyperMatrix {
            elem: ElementKind::F64,
            rows: 4,
            cols: 16,
        };
        let diags = analyze(&p);
        assert!(
            diags
                .iter()
                .any(|d| d.code == DiagnosticCode::StageShapeMismatch
                    && d.severity == Severity::Error),
            "{diags:?}"
        );
    }

    #[test]
    fn illegal_perforation_on_elementwise_op() {
        // The builder refuses this, so assemble the node directly.
        let mut p = Program::new("perf");
        let a = p.add_value(ValueInfo {
            name: "a".into(),
            ty: ValueType::HyperVector {
                elem: ElementKind::F64,
                dim: 64,
            },
            role: ValueRole::Input,
        });
        let r = p.add_value(ValueInfo {
            name: "r".into(),
            ty: ValueType::HyperVector {
                elem: ElementKind::F64,
                dim: 64,
            },
            role: ValueRole::Output,
        });
        let instr = HdcInstr::new(HdcOp::Sign, vec![a.into()], Some(r))
            .with_perforation(hdc_core::Perforation::strided(0, 64, 2));
        p.add_node(Node {
            name: "n0".into(),
            target: Target::Cpu,
            body: NodeBody::Leaf {
                instrs: vec![instr],
            },
        });
        let diags = analyze(&p);
        assert_eq!(diags.len(), 1, "{diags:?}");
        assert_eq!(diags[0].code, DiagnosticCode::IllegalPerforation);
    }

    #[test]
    fn out_of_range_perforation_is_an_error() {
        let mut b = ProgramBuilder::new("range");
        let a = b.input_vector("a", ElementKind::F64, 64);
        let m = b.input_matrix("m", ElementKind::F64, 4, 64);
        let d = b.hamming_distance(a, m);
        b.red_perf(d, 64, 128, 1); // begin beyond the dimension
        b.mark_output(d);
        let diags = analyze(&b.finish());
        assert_eq!(diags.len(), 1, "{diags:?}");
        assert_eq!(diags[0].code, DiagnosticCode::IllegalPerforation);
    }

    #[test]
    fn wrap_shift_on_scores_and_noop_amounts() {
        let mut b = ProgramBuilder::new("shift");
        let a = b.input_vector("a", ElementKind::F64, 16);
        let m = b.input_matrix("m", ElementKind::F64, 4, 16);
        let ok = b.wrap_shift(a, 3);
        let noop = b.wrap_shift(a, 32); // 32 % 16 == 0
        let scores = b.cossim(a, m);
        let bad = b.wrap_shift(scores, 1);
        b.mark_output(ok);
        b.mark_output(noop);
        b.mark_output(bad);
        let diags = analyze(&b.finish());
        let codes: Vec<_> = diags.iter().map(|d| d.code).collect();
        assert!(codes.contains(&DiagnosticCode::WrapShiftNoop), "{diags:?}");
        assert!(
            codes.contains(&DiagnosticCode::WrapShiftPosition),
            "{diags:?}"
        );
        assert_eq!(diags.len(), 2, "{diags:?}");
    }

    #[test]
    fn parallel_for_collision_and_unused_index() {
        let mut b = ProgramBuilder::new("pfor");
        let acc = b.zero_matrix(ElementKind::F64, 4, 16);
        let row = b.input_vector("row", ElementKind::F64, 16);
        b.parallel_for("collide", 8, |b, _idx| {
            b.set_matrix_row(acc, row, 2);
        });
        let out = b.get_matrix_row(acc, 2);
        b.mark_output(out);
        let diags = analyze(&b.finish());
        let codes: Vec<_> = diags.iter().map(|d| d.code).collect();
        assert!(
            codes.contains(&DiagnosticCode::ParallelForCollision),
            "{diags:?}"
        );
        assert!(
            codes.contains(&DiagnosticCode::ParallelForIndexUnused),
            "{diags:?}"
        );
        let collision = diags
            .iter()
            .find(|d| d.code == DiagnosticCode::ParallelForCollision)
            .unwrap();
        assert_eq!(collision.severity, Severity::Error);
    }

    #[test]
    fn dynamic_row_accumulate_is_clean() {
        let mut b = ProgramBuilder::new("pfor_ok");
        let acc = b.zero_matrix(ElementKind::F64, 8, 16);
        let rows = b.input_matrix("rows", ElementKind::F64, 8, 16);
        b.parallel_for("scatter", 8, |b, idx| {
            let r = b.get_matrix_row_dyn(rows, idx);
            b.accumulate_row(acc, r, idx);
        });
        let out = b.get_matrix_row(acc, 0);
        b.mark_output(out);
        let diags = analyze(&b.finish());
        assert!(diags.is_empty(), "unexpected: {diags:?}");
    }
}
