//! Effect / alias classification over the `Arc`-backed value store.
//!
//! The runtime shares tensor payloads by reference count: moving a value
//! between slots never copies, and genuine copies happen only at
//! representation boundaries (pack/unpack/quantize on store), at
//! per-sample row staging inside interpreted stages, and on copy-on-write
//! of a payload that is still shared ([`hdc_runtime::Value`] docs). This
//! module classifies every node by the strongest effect it can have on
//! that store:
//!
//! * [`EffectClass::ZeroCopy`] — the node only creates fresh payloads and
//!   reads existing ones; it can never materialize a copy of an existing
//!   tensor.
//! * [`EffectClass::CopyOnWrite`] — the node may materialize copies:
//!   it crosses a representation boundary (a `type_cast`, or a result
//!   slot whose declared element kind differs from its tensor operand's),
//!   computes element-wise over bit-packed operands (which the `f64`
//!   interpreter must unpack), or is a stage (whose interpreted path
//!   stages one query row per sample).
//! * [`EffectClass::InPlaceMutating`] — the node updates an existing
//!   payload in place (`set_matrix_row` / `accumulate_row`, or a
//!   `training_loop`, which accumulates into its class matrix). If the
//!   payload is still shared, the runtime copies it first.
//!
//! The classification is deliberately one-directional, and that direction
//! is checked against the executor's own accounting: **if every node is
//! `ZeroCopy`, an execution reports `tensor_bytes_copied == 0`** (see
//! [`hdc_runtime::ExecStats`]). The converse does not hold — a
//! `CopyOnWrite` node may still execute copy-free (e.g. a batched
//! binarized stage, or a cast whose payload is uniquely owned).
//!
//! One diagnostic comes out: [`DiagnosticCode::InPlaceOnInput`]
//! (`HDA011`, info) when an in-place mutation targets an `Input`-role
//! value — the host-provided payload is logically updated, which is
//! usually a surprise worth flagging even though copy-on-write protects
//! the host's own handle.

use crate::dataflow::DefUse;
use crate::diag::{Diagnostic, DiagnosticCode, Location, Severity};
use hdc_core::element::ElementKind;
use hdc_ir::instr::HdcInstr;
use hdc_ir::ops::{HdcOp, OpCategory};
use hdc_ir::program::{NodeBody, Program, ValueRole};
use hdc_ir::stage::StageKind;

/// The strongest store effect a node can have.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord)]
pub enum EffectClass {
    /// Creates and reads payloads only; never copies an existing tensor.
    ZeroCopy,
    /// May materialize copies (representation boundaries, bit unpacking,
    /// per-sample stage staging, copy-on-write).
    CopyOnWrite,
    /// Updates an existing payload in place.
    InPlaceMutating,
}

impl EffectClass {
    /// Short lowercase name for reports.
    pub fn name(&self) -> &'static str {
        match self {
            EffectClass::ZeroCopy => "zero-copy",
            EffectClass::CopyOnWrite => "copy-on-write",
            EffectClass::InPlaceMutating => "in-place-mutating",
        }
    }
}

/// Per-node effect classification for a program.
#[derive(Debug, Clone)]
pub struct Effects {
    /// `per_node[n]` is the class of node `n`, in program node order.
    pub per_node: Vec<EffectClass>,
}

impl Effects {
    /// The one-directional zero-copy contract: when this returns true, an
    /// execution of the program reports `tensor_bytes_copied == 0`.
    pub fn zero_copy_feasible(&self) -> bool {
        self.per_node.iter().all(|c| *c == EffectClass::ZeroCopy)
    }
}

fn instr_is_in_place(instr: &HdcInstr) -> bool {
    matches!(instr.op, HdcOp::SetMatrixRow | HdcOp::AccumulateRow)
}

fn instr_may_copy(program: &Program, instr: &HdcInstr) -> bool {
    // Explicit representation conversion.
    if matches!(instr.op, HdcOp::TypeCast { .. }) {
        return true;
    }
    let operand_elems: Vec<ElementKind> = instr
        .read_values()
        .filter_map(|v| {
            let ty = program.value(v).ty;
            ty.is_tensor().then(|| ty.element_kind()).flatten()
        })
        .collect();
    // The f64 interpreter must unpack bit-packed operands for anything
    // that is not a dedicated packed kernel (the reductions dispatch
    // XOR/popcount directly; selections read scores, not payloads).
    if operand_elems.contains(&ElementKind::Bit)
        && matches!(
            instr.op.category(),
            OpCategory::Elementwise | OpCategory::DataMovement
        )
        && !instr_is_in_place(instr)
    {
        return true;
    }
    // Conversion on store: the result slot's declared kind differs from
    // the tensor operand feeding it (e.g. a binarized `sign` packs).
    if let Some(result) = instr.result {
        let result_ty = program.value(result).ty;
        if result_ty.is_tensor()
            && matches!(
                instr.op.category(),
                OpCategory::Elementwise | OpCategory::DataMovement
            )
        {
            if let (Some(re), Some(first)) = (result_ty.element_kind(), operand_elems.first()) {
                if *first != re {
                    return true;
                }
            }
        }
    }
    false
}

/// Classify every node of `program`.
pub fn classify(program: &Program) -> Effects {
    let per_node = program
        .nodes()
        .iter()
        .map(|node| match &node.body {
            NodeBody::Stage(stage) => {
                // Training stages mutate class memory in place even when no
                // body instruction does so explicitly.
                if matches!(stage.kind, StageKind::Training { .. })
                    || stage.body.iter().any(instr_is_in_place)
                {
                    EffectClass::InPlaceMutating
                } else {
                    // Interpreted stages stage one query row per sample.
                    EffectClass::CopyOnWrite
                }
            }
            NodeBody::Leaf { instrs } | NodeBody::ParallelFor { body: instrs, .. } => {
                let mut class = EffectClass::ZeroCopy;
                for instr in instrs {
                    if instr_is_in_place(instr) {
                        class = EffectClass::InPlaceMutating;
                        break;
                    }
                    if instr_may_copy(program, instr) {
                        class = EffectClass::CopyOnWrite;
                    }
                }
                class
            }
        })
        .collect();
    Effects { per_node }
}

/// Run the effect analysis and collect its diagnostics.
pub fn check(program: &Program, _du: &DefUse) -> (Effects, Vec<Diagnostic>) {
    let effects = classify(program);
    let mut diags = Vec::new();
    for node in program.nodes() {
        // In-place mutation of a host-provided input.
        let mut flag = |value: hdc_ir::program::ValueId, what: &str, ii: Option<usize>| {
            let info = program.value(value);
            if info.role != ValueRole::Input {
                return;
            }
            let location = match ii {
                Some(i) => Location::instr(&node.name, i),
                None => Location::node(&node.name),
            }
            .with_value(&info.name);
            diags.push(Diagnostic {
                code: DiagnosticCode::InPlaceOnInput,
                severity: Severity::Info,
                location,
                message: format!(
                    "{what} updates program input `{}` in place; the runtime will \
                     copy-on-write the host payload before mutating it",
                    info.name
                ),
                suggestion: Some(
                    "copy the input into a temporary first if the aliasing is unintended".into(),
                ),
            });
        };
        match &node.body {
            NodeBody::Stage(stage) => {
                if matches!(stage.kind, StageKind::Training { .. }) {
                    if let Some(classes) = stage.interface.classes {
                        flag(classes, "training_loop", None);
                    }
                }
            }
            NodeBody::Leaf { instrs } | NodeBody::ParallelFor { body: instrs, .. } => {
                for (ii, instr) in instrs.iter().enumerate() {
                    if !instr_is_in_place(instr) {
                        continue;
                    }
                    if let Some(target) = instr.operands.first().and_then(|o| o.as_value()) {
                        flag(target, instr.op.mnemonic(), Some(ii));
                    }
                }
            }
        }
    }
    (effects, diags)
}

#[cfg(test)]
mod tests {
    use super::*;
    use hdc_ir::builder::ProgramBuilder;

    #[test]
    fn dense_leaf_chain_is_zero_copy() {
        let mut b = ProgramBuilder::new("zc");
        let a = b.input_vector("a", ElementKind::F64, 32);
        let m = b.input_matrix("m", ElementKind::F64, 4, 32);
        let d = b.hamming_distance(a, m);
        let sel = b.arg_min(d);
        b.mark_output(sel);
        let p = b.finish();
        let effects = classify(&p);
        assert!(effects.zero_copy_feasible(), "{:?}", effects.per_node);
    }

    #[test]
    fn type_cast_is_copy_on_write() {
        let mut b = ProgramBuilder::new("cow");
        let a = b.input_vector("a", ElementKind::F64, 32);
        let c = b.type_cast(a, ElementKind::Bit);
        b.mark_output(c);
        let p = b.finish();
        let effects = classify(&p);
        assert_eq!(effects.per_node, vec![EffectClass::CopyOnWrite]);
        assert!(!effects.zero_copy_feasible());
    }

    #[test]
    fn in_place_row_update_is_flagged_on_inputs_only() {
        let mut b = ProgramBuilder::new("inplace");
        let host = b.input_matrix("host", ElementKind::F64, 4, 16);
        let own = b.zero_matrix(ElementKind::F64, 4, 16);
        let row = b.input_vector("row", ElementKind::F64, 16);
        b.set_matrix_row(host, row, 0);
        b.set_matrix_row(own, row, 0);
        let out = b.get_matrix_row(host, 0);
        b.mark_output(out);
        let p = b.finish();
        let du = DefUse::new(&p);
        let (effects, diags) = check(&p, &du);
        assert_eq!(effects.per_node, vec![EffectClass::InPlaceMutating]);
        assert_eq!(diags.len(), 1, "{diags:?}");
        assert_eq!(diags[0].code, DiagnosticCode::InPlaceOnInput);
        assert_eq!(diags[0].severity, Severity::Info);
        assert_eq!(diags[0].location.value.as_deref(), Some("host"));
    }

    #[test]
    fn stages_are_never_zero_copy() {
        let mut b = ProgramBuilder::new("stage");
        let feats = b.input_matrix("feats", ElementKind::F64, 4, 8);
        let proj = b.input_matrix("proj", ElementKind::F64, 32, 8);
        let enc = b.encoding_loop("encode", feats, 32, |body, sample| {
            body.matmul(sample, proj)
        });
        b.mark_output(enc);
        let p = b.finish();
        let effects = classify(&p);
        assert_eq!(effects.per_node, vec![EffectClass::CopyOnWrite]);
    }
}
