//! The negative-test battery: one deliberately malformed program per
//! diagnostic kind, driven through the public [`hdc_analyze::analyze`]
//! entry point (the same path `hdc-lint` takes), asserting the *exact*
//! stable code each program trips. This pins the catalog: a new analysis
//! that changes which code fires for a known-bad shape is a breaking
//! change, not a refinement.

use hdc_analyze::{analyze, AnalysisReport, DiagnosticCode, Severity};
use hdc_core::element::ElementKind;
use hdc_core::Perforation;
use hdc_ir::builder::ProgramBuilder;
use hdc_ir::instr::HdcInstr;
use hdc_ir::ops::HdcOp;
use hdc_ir::program::{Node, NodeBody, ValueInfo, ValueRole};
use hdc_ir::stage::ScorePolarity;
use hdc_ir::types::ValueType;
use hdc_ir::{Program, Target};

/// The one diagnostic of `code` in the report, asserting its severity and
/// stable code string. Extra diagnostics of *other* kinds fail the test:
/// each battery program is built to trip exactly one rule.
fn expect_only(report: &AnalysisReport, code: DiagnosticCode, severity: Severity, hda: &str) {
    assert_eq!(
        report.diagnostics.len(),
        1,
        "expected exactly one diagnostic: {report}"
    );
    let diag = &report.diagnostics[0];
    assert_eq!(diag.code, code, "{report}");
    assert_eq!(diag.severity, severity, "{report}");
    assert_eq!(diag.code.as_str(), hda);
    // The JSON surface carries the same stable code.
    assert!(
        report.to_json().contains(hda),
        "JSON lost the code: {}",
        report.to_json()
    );
}

#[test]
fn hda001_dead_value() {
    let mut b = ProgramBuilder::new("neg_dead_value");
    let a = b.input_vector("a", ElementKind::F64, 16);
    let keep = b.sign(a);
    let _dead = b.sign_flip(a);
    b.mark_output(keep);
    let report = analyze(&b.finish());
    expect_only(
        &report,
        DiagnosticCode::DeadValue,
        Severity::Warning,
        "HDA001",
    );
    assert!(
        !report.has_errors(),
        "dead value is a warning, not an error"
    );
}

#[test]
fn hda002_dead_stage_output() {
    let mut b = ProgramBuilder::new("neg_dead_stage");
    let queries = b.input_matrix("q", ElementKind::F64, 4, 32);
    let classes = b.input_matrix("c", ElementKind::F64, 3, 32);
    let _labels = b.inference_loop(
        "infer",
        queries,
        classes,
        ScorePolarity::Distance,
        |body, sample| body.hamming_distance(sample, classes),
    );
    let keep = b.sign(queries);
    b.mark_output(keep);
    let report = analyze(&b.finish());
    expect_only(
        &report,
        DiagnosticCode::DeadStageOutput,
        Severity::Error,
        "HDA002",
    );
    assert!(report.has_errors());
}

#[test]
fn hda003_stage_shape_mismatch() {
    // The builder sizes stage outputs from the body result, so the
    // mismatch is injected by retyping the output behind the body's back —
    // the same corruption a hand-written or externally loaded program
    // could carry.
    let mut b = ProgramBuilder::new("neg_shape");
    let feats = b.input_matrix("feats", ElementKind::F64, 4, 8);
    let proj = b.input_matrix("proj", ElementKind::F64, 32, 8);
    let enc = b.encoding_loop("encode", feats, 32, |body, sample| {
        body.matmul(sample, proj)
    });
    b.mark_output(enc);
    let mut p = b.finish();
    let out = {
        let NodeBody::Stage(stage) = &p.nodes()[0].body else {
            panic!("expected stage")
        };
        stage.interface.output
    };
    p.value_mut(out).ty = ValueType::HyperMatrix {
        elem: ElementKind::F64,
        rows: 4,
        cols: 16,
    };
    let report = analyze(&p);
    expect_only(
        &report,
        DiagnosticCode::StageShapeMismatch,
        Severity::Error,
        "HDA003",
    );
}

#[test]
fn hda004_bit_taint_leak() {
    let mut b = ProgramBuilder::new("neg_taint");
    let a = b.input_vector("a", ElementKind::F64, 16);
    let norms = b.input_vector("norms", ElementKind::F64, 16);
    let s = b.sign(a);
    let bad = b.div(s, norms); // binarized value into an f64-only kernel
    b.mark_output(bad);
    let report = analyze(&b.finish());
    expect_only(
        &report,
        DiagnosticCode::BitTaintLeak,
        Severity::Error,
        "HDA004",
    );
}

#[test]
fn hda005_illegal_perforation() {
    // The builder's `red_perf` rejects unsupported ops, so the malformed
    // program is assembled through the raw IR API.
    let mut p = Program::new("neg_perf");
    let a = p.add_value(ValueInfo {
        name: "a".into(),
        ty: ValueType::HyperVector {
            elem: ElementKind::F64,
            dim: 64,
        },
        role: ValueRole::Input,
    });
    let r = p.add_value(ValueInfo {
        name: "r".into(),
        ty: ValueType::HyperVector {
            elem: ElementKind::F64,
            dim: 64,
        },
        role: ValueRole::Output,
    });
    let instr = HdcInstr::new(HdcOp::Sign, vec![a.into()], Some(r))
        .with_perforation(Perforation::strided(0, 64, 2));
    p.add_node(Node {
        name: "n0".into(),
        target: Target::Cpu,
        body: NodeBody::Leaf {
            instrs: vec![instr],
        },
    });
    let report = analyze(&p);
    expect_only(
        &report,
        DiagnosticCode::IllegalPerforation,
        Severity::Error,
        "HDA005",
    );
}

#[test]
fn hda006_wrap_shift_position() {
    let mut b = ProgramBuilder::new("neg_shift_pos");
    let a = b.input_vector("a", ElementKind::F64, 16);
    let m = b.input_matrix("m", ElementKind::F64, 4, 16);
    let scores = b.cossim(a, m);
    let bad = b.wrap_shift(scores, 1); // permuting scores, not a hypervector
    b.mark_output(bad);
    let report = analyze(&b.finish());
    expect_only(
        &report,
        DiagnosticCode::WrapShiftPosition,
        Severity::Error,
        "HDA006",
    );
}

#[test]
fn hda007_wrap_shift_noop() {
    let mut b = ProgramBuilder::new("neg_shift_noop");
    let a = b.input_vector("a", ElementKind::F64, 16);
    let noop = b.wrap_shift(a, 32); // 32 % 16 == 0: the identity permutation
    b.mark_output(noop);
    let report = analyze(&b.finish());
    expect_only(
        &report,
        DiagnosticCode::WrapShiftNoop,
        Severity::Warning,
        "HDA007",
    );
}

#[test]
fn hda008_parallel_for_collision() {
    let mut b = ProgramBuilder::new("neg_collision");
    let acc = b.zero_matrix(ElementKind::F64, 4, 16);
    let rows = b.input_matrix("rows", ElementKind::F64, 8, 16);
    b.parallel_for("collide", 8, |b, idx| {
        let r = b.get_matrix_row_dyn(rows, idx); // index used: no HDA009
        b.set_matrix_row(acc, r, 2); // every instance writes row 2
    });
    let out = b.get_matrix_row(acc, 2);
    b.mark_output(out);
    let report = analyze(&b.finish());
    expect_only(
        &report,
        DiagnosticCode::ParallelForCollision,
        Severity::Error,
        "HDA008",
    );
}

#[test]
fn hda009_parallel_for_index_unused() {
    let mut b = ProgramBuilder::new("neg_index");
    let acc = b.zero_matrix(ElementKind::F64, 8, 16);
    let row = b.input_vector("row", ElementKind::F64, 16);
    b.parallel_for("ignore", 4, |b, _idx| {
        // accumulate_row is commutative, so the fixed-row accumulation is
        // only the HDA008 *warning* tier — it rides along; the
        // index-unused warning is what this test pins.
        b.accumulate_row(acc, row, 0);
    });
    let out = b.get_matrix_row(acc, 0);
    b.mark_output(out);
    let report = analyze(&b.finish());
    // Two warnings fire: the unused index, and the warning-tier
    // accumulate collision. Pin the index one exactly.
    let codes: Vec<_> = report.diagnostics.iter().map(|d| d.code).collect();
    assert!(
        codes.contains(&DiagnosticCode::ParallelForIndexUnused),
        "{report}"
    );
    let diag = report
        .diagnostics
        .iter()
        .find(|d| d.code == DiagnosticCode::ParallelForIndexUnused)
        .unwrap();
    assert_eq!(diag.severity, Severity::Warning);
    assert_eq!(diag.code.as_str(), "HDA009");
    assert!(!report.has_errors(), "{report}");
}

#[test]
fn hda010_mixed_perforation() {
    let mut b = ProgramBuilder::new("neg_mixed");
    let a = b.input_vector("a", ElementKind::F64, 64);
    let m = b.input_matrix("m", ElementKind::F64, 4, 64);
    let d1 = b.hamming_distance(a, m);
    b.red_perf(d1, 0, 32, 1);
    let d2 = b.hamming_distance(a, m);
    b.red_perf(d2, 0, 32, 2); // same op, different stride, same node
    b.mark_output(d1);
    b.mark_output(d2);
    let report = analyze(&b.finish());
    expect_only(
        &report,
        DiagnosticCode::MixedPerforation,
        Severity::Warning,
        "HDA010",
    );
}

#[test]
fn hda011_in_place_on_input() {
    let mut b = ProgramBuilder::new("neg_inplace");
    let host = b.input_matrix("host", ElementKind::F64, 4, 16);
    let row = b.input_vector("row", ElementKind::F64, 16);
    b.set_matrix_row(host, row, 0);
    let out = b.get_matrix_row(host, 0);
    b.mark_output(out);
    let report = analyze(&b.finish());
    expect_only(
        &report,
        DiagnosticCode::InPlaceOnInput,
        Severity::Info,
        "HDA011",
    );
    assert!(!report.has_errors());
}

#[test]
fn every_code_has_a_battery_entry() {
    // Completeness backstop: the battery above must cover the whole
    // catalog. If a new DiagnosticCode is added, this match stops
    // compiling until the battery grows a test for it.
    let all = [
        DiagnosticCode::DeadValue,
        DiagnosticCode::DeadStageOutput,
        DiagnosticCode::StageShapeMismatch,
        DiagnosticCode::BitTaintLeak,
        DiagnosticCode::IllegalPerforation,
        DiagnosticCode::WrapShiftPosition,
        DiagnosticCode::WrapShiftNoop,
        DiagnosticCode::ParallelForCollision,
        DiagnosticCode::ParallelForIndexUnused,
        DiagnosticCode::MixedPerforation,
        DiagnosticCode::InPlaceOnInput,
    ];
    for (i, code) in all.iter().enumerate() {
        assert_eq!(code.as_str(), format!("HDA{:03}", i + 1));
        assert!(!code.description().is_empty());
    }
}
