//! The acceptance gate behind `hdc-lint`: every program this repo commits
//! to — the three application pipelines (default and baseline), the
//! serving templates at two batch sizes, the online trainer's programs —
//! passes the analyzer with **zero error diagnostics** (in fact with zero
//! diagnostics of any severity: the committed suite is the analyzer's
//! false-positive corpus).
//!
//! Also pins the effect analysis' one-directional contract against the
//! executor's own copy accounting: a program classified all-zero-copy
//! reports `tensor_bytes_copied == 0` when executed.

use hdc_analyze::{analyze, effects};
use hdc_apps::{ClassificationApp, ClusteringApp, MatchingApp};
use hdc_core::element::ElementKind;
use hdc_core::{HyperMatrix, HyperVector};
use hdc_datasets::synthetic::{isolet_like, IsoletParams};
use hdc_ir::builder::ProgramBuilder;
use hdc_ir::program::Program;
use hdc_passes::pipeline::CompileOptions;
use hdc_runtime::{Executor, Value};
use hdc_serve::{ModelRegistry, OnlineTrainer, OnlineTrainerConfig, ServableModel, SwapPolicy};
use std::sync::Arc;

fn small_dataset(seed: u64) -> hdc_datasets::Dataset {
    isolet_like(&IsoletParams {
        classes: 4,
        features: 32,
        train_per_class: 6,
        test_per_class: 5,
        noise: 1.2,
        seed,
    })
}

const DIM: usize = 256;

fn assert_clean(program: &Program, what: &str) {
    let report = analyze(program);
    assert!(
        report.diagnostics.is_empty(),
        "{what} is not clean:\n{report}"
    );
}

#[test]
fn application_pipelines_are_clean_in_both_configurations() {
    for (label, options) in [
        ("default", CompileOptions::default()),
        ("baseline", CompileOptions::baseline()),
    ] {
        let app = ClassificationApp::with_options(small_dataset(11), DIM, 2, &options)
            .expect("classification build");
        assert_clean(app.program(), &format!("classification/{label}"));

        let app = ClusteringApp::with_options(small_dataset(12), DIM, 3, &options)
            .expect("clustering build");
        assert_clean(app.program(), &format!("clustering/{label}"));

        let app =
            MatchingApp::with_options(small_dataset(13), DIM, 3, &options).expect("matching build");
        assert_clean(app.program(), &format!("matching/{label}"));
    }
}

#[test]
fn serving_templates_are_clean_at_both_batch_sizes() {
    let class_app = ClassificationApp::new(small_dataset(11), DIM, 2).expect("build");
    let cluster_app = ClusteringApp::new(small_dataset(12), DIM, 3).expect("build");
    let match_app = MatchingApp::new(small_dataset(13), DIM, 3).expect("build");
    let models = [
        ServableModel::classifier("t", &class_app).expect("servable"),
        ServableModel::cluster_assigner("t", &cluster_app).expect("servable"),
        ServableModel::matcher("t", &match_app).expect("servable"),
    ];
    for model in &models {
        for rows in [1usize, 8] {
            let program = model.program_for(rows).expect("template rescale");
            assert_clean(&program, &format!("serve template at {rows} rows"));
        }
    }
}

#[test]
fn online_trainer_programs_are_clean() {
    let app = ClassificationApp::new(small_dataset(11), DIM, 2).expect("build");
    let model = Arc::new(ServableModel::classifier("t", &app).expect("servable"));
    let registry = Arc::new(ModelRegistry::new());
    registry.register("t", model);
    let mut trainer = OnlineTrainer::attach(
        registry,
        "t",
        OnlineTrainerConfig {
            policy: SwapPolicy::manual(),
            ..OnlineTrainerConfig::default()
        },
    )
    .expect("trainer attach");
    assert_clean(trainer.freeze_program(), "online freeze program");
    let encode = trainer.encoding_program(4).expect("encode program");
    assert_clean(&encode, "online encoding program");
}

#[test]
fn zero_copy_verdict_matches_executor_accounting() {
    // A statically all-zero-copy program: dense query vs dense class
    // memory, reduction + selection — nothing crosses a representation
    // boundary, nothing mutates in place.
    let mut b = ProgramBuilder::new("zc_exec");
    let q = b.input_vector("q", ElementKind::F64, 64);
    let classes = b.input_matrix("classes", ElementKind::F64, 4, 64);
    let d = b.hamming_distance(q, classes);
    let label = b.arg_min(d);
    b.mark_output(label);
    let program = b.finish();

    let verdict = effects::classify(&program);
    assert!(
        verdict.zero_copy_feasible(),
        "expected all-zero-copy: {:?}",
        verdict.per_node
    );

    let mut exec = Executor::new(&program).expect("executor");
    exec.bind("q", Value::vector(HyperVector::splat(64, 1.0)))
        .expect("bind q");
    exec.bind(
        "classes",
        Value::matrix(HyperMatrix::from_fn(4, 64, |r, c| {
            if (r + c) % 2 == 0 {
                1.0
            } else {
                -1.0
            }
        })),
    )
    .expect("bind classes");
    exec.run().expect("run");
    // The one-directional contract: zero-copy feasible ⇒ zero bytes copied.
    assert_eq!(
        exec.stats().tensor_bytes_copied,
        0,
        "zero-copy program copied tensor bytes"
    );
}

#[test]
fn copying_pipeline_is_not_classified_zero_copy() {
    // The converse direction is deliberately NOT claimed by the analysis,
    // but an execution that *does* copy must come from a program with at
    // least one non-zero-copy node — otherwise the contract above is
    // vacuous.
    let app = ClassificationApp::new(small_dataset(11), DIM, 2).expect("build");
    let verdict = effects::classify(app.program());
    assert!(
        !verdict.zero_copy_feasible(),
        "training pipeline cannot be all-zero-copy: {:?}",
        verdict.per_node
    );
}
