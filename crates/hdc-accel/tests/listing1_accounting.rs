//! Exact cost accounting on the Listing-1 kernel.
//!
//! The worked example of `docs/accelerator-model.md`: the paper's Listing-1
//! inference (2048-dim hypervectors, 26 classes) expressed as a binarized
//! `inference_loop` stage. Every integer the model reports — programming
//! bits, per-sample stream bits, datapath cycles — is pinned against the
//! hand-computed equations, the derived seconds/energy are pinned against
//! the parameter arithmetic, and the runtime's extended `ExecStats`
//! accounting (`accelerated_stage_samples`) is pinned against the workload
//! shape. Functional outputs are asserted bit-identical to the sequential
//! oracle before anything else.

use hdc_accel::{AccelParams, AcceleratedExecutor, AcceleratorModel};
use hdc_core::element::ElementKind;
use hdc_core::prelude::*;
use hdc_ir::builder::ProgramBuilder;
use hdc_ir::program::Program;
use hdc_ir::stage::ScorePolarity;
use hdc_ir::Target;
use hdc_runtime::{Executor, Value};

const DIM: usize = 2048;
const CLASSES: usize = 26;
const QUERIES: usize = 100;

fn listing1_kernel() -> Program {
    let mut b = ProgramBuilder::new("listing1_kernel");
    let q = b.input_matrix("queries", ElementKind::Bit, QUERIES, DIM);
    let c = b.input_matrix("classes", ElementKind::Bit, CLASSES, DIM);
    let preds = b.inference_loop("infer", q, c, ScorePolarity::Distance, |b, s| {
        b.hamming_distance(s, c)
    });
    b.mark_output(preds);
    b.finish()
}

fn workload() -> (Value, Value) {
    let mut rng = HdcRng::seed_from_u64(0x11571);
    let classes: HyperMatrix<f64> = hdc_core::random::bipolar_hypermatrix(CLASSES, DIM, &mut rng);
    let queries = HyperMatrix::from_rows(
        (0..QUERIES)
            .map(|i| {
                let mut v = classes.row_vector(i % CLASSES).unwrap();
                for k in 0..DIM / 10 {
                    let idx = (k * 11 + i * 17) % DIM;
                    let flipped = -v.get(idx).unwrap();
                    v.set(idx, flipped).unwrap();
                }
                v
            })
            .collect::<Vec<_>>(),
    )
    .unwrap();
    (
        Value::bit_matrix(BitMatrix::from_dense(&queries)),
        Value::bit_matrix(BitMatrix::from_dense(&classes)),
    )
}

#[test]
fn listing1_accounting_is_exact() {
    let program = listing1_kernel();
    let (queries, classes) = workload();

    // The sequential per-sample oracle.
    let mut oracle = Executor::new(&program).unwrap();
    oracle.set_batched_stages(false).set_parallel_loops(false);
    oracle.bind("queries", queries.clone()).unwrap();
    oracle.bind("classes", classes.clone()).unwrap();
    let expected = oracle.run().unwrap();
    assert_eq!(
        oracle.stats().accelerated_stage_samples,
        0,
        "no stage is accelerator-placed in the un-retargeted program"
    );

    let model = AcceleratorModel::default();
    let ax = AcceleratedExecutor::new(&program, Target::DigitalAsic, model.clone());
    let run = ax
        .run_with(|exec| {
            exec.bind("queries", queries.clone())?;
            exec.bind("classes", classes.clone())?;
            Ok(())
        })
        .unwrap();

    // Functional equivalence first: the model never touches outputs.
    let preds = expected.iter().next().unwrap().0;
    assert_eq!(
        run.outputs.get(preds).unwrap(),
        expected.get(preds).unwrap()
    );

    // Extended ExecStats: every per-sample body execution of the
    // accelerator-placed stage is counted.
    assert_eq!(run.stats.exec.accelerated_stage_samples, QUERIES);
    assert_eq!(run.stats.exec.stage_samples, QUERIES);

    // The modeled stage, against the hand-derived equations.
    assert_eq!(run.stats.modeled.accelerated_stages(), 1);
    let stage = &run.stats.modeled.stages[0];
    let p = AccelParams::digital_asic();

    // Programming: the hoisted 26x2048-bit class memory, once.
    let programming_bits = (CLASSES * DIM) as u64;
    assert_eq!(stage.programming_bits, programming_bits);
    // Streaming: a 2048-bit query row in, a 32-bit label out, per sample.
    let stream_bits = (DIM + 32) as u64;
    assert_eq!(stage.stream_bits_per_sample, stream_bits);
    assert_eq!(stage.readback_bits, 0);
    // Compute: ceil(26 * 2048 * 1 bit / 8192 lane bits) = 7 cycles/sample.
    let cycles = ((CLASSES * DIM) as u64).div_ceil(p.reduce_lane_bits);
    assert_eq!(cycles, 7);
    assert_eq!(stage.cycles_per_sample, cycles);
    assert_eq!(stage.samples, QUERIES);

    // Derived seconds are exactly the integers over the parameter rates.
    let n = QUERIES as f64;
    assert_eq!(
        stage.programming_seconds,
        programming_bits as f64 / p.program_bits_per_sec
    );
    assert_eq!(
        stage.streaming_seconds,
        n * stream_bits as f64 / p.stream_bits_per_sec
    );
    assert_eq!(stage.compute_seconds, n * cycles as f64 / p.clock_hz);
    assert_eq!(
        stage.accel_seconds(),
        stage.programming_seconds + stage.streaming_seconds + stage.compute_seconds
    );

    // Energy: every moved bit plus every datapath cycle.
    let moved_bits = programming_bits as f64 + n * stream_bits as f64;
    assert_eq!(
        stage.energy_joules,
        moved_bits * p.energy_per_bit_j + n * cycles as f64 * p.energy_per_cycle_j
    );

    // CPU roofline over the same nest: 26*2048 popcount-amortized
    // iterations at 2/64 flop-equivalents and 2/8 bytes each.
    let iters = (CLASSES * DIM) as f64;
    let cpu_per_sample = (iters * (2.0 / 64.0) / model.cpu.flops_per_sec)
        .max(iters * 0.25 / model.cpu.bytes_per_sec);
    assert_eq!(stage.cpu_seconds, n * cpu_per_sample);
    assert!(
        stage.speedup() > 1.0,
        "the modeled ASIC must beat the modeled CPU on Listing 1: {}",
        stage.speedup()
    );
}

#[test]
fn listing1_reram_accounting_is_exact() {
    let program = listing1_kernel();
    let (queries, classes) = workload();
    let ax = AcceleratedExecutor::new(
        &program,
        Target::ReRamAccelerator,
        AcceleratorModel::default(),
    );
    let run = ax
        .run_with(|exec| {
            exec.bind("queries", queries)?;
            exec.bind("classes", classes)?;
            Ok(())
        })
        .unwrap();
    let stage = &run.stats.modeled.stages[0];
    let p = AccelParams::reram();
    // The whole 26x2048 reduction fits one in-array evaluation.
    assert_eq!(stage.cycles_per_sample, 1);
    assert_eq!(
        stage.programming_seconds,
        (CLASSES * DIM) as f64 / p.program_bits_per_sec
    );
    // Programming the ReRAM cells costs more time than the ASIC's link.
    assert!(
        stage.programming_seconds
            > (CLASSES * DIM) as f64 / AccelParams::digital_asic().program_bits_per_sec
    );
}
