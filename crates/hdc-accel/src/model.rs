//! The analytical cost model: stage placement + lowering nests → modeled
//! cycles, seconds and energy.
//!
//! An accelerated stage executes in two phases, mirroring the code the
//! compiler emits for the devices (the paper's Listing 6):
//!
//! 1. **Programming**: every value the data-movement pass marked
//!    device-persistent (`StageNode::persistent_values` — the class memory,
//!    the projection base memory) is written to the device once, at
//!    `program_bits_per_sec`. An empty persistent set means the hoisting
//!    pass did not run, and those transfers are charged *per sample*
//!    instead — exactly the unoptimized behavior hoisting exists to avoid.
//! 2. **Streaming + compute**, per sample: the query row (plus, for
//!    training, its 32-bit label) streams in and the per-sample result
//!    streams out at `stream_bits_per_sec`, while the stage body's
//!    [`LoopNest`]s execute on the datapath — `ceil(iterations × operand
//!    bits / lane bits)` cycles per instruction, with reduction nests using
//!    `reduce_lane_bits` and element-wise nests `map_lane_bits`.
//!
//! Training stages cost the **batched streaming pattern** the runtime's
//! batched-epoch schedule executes: the device scores each epoch against a
//! frozen class memory and streams the per-sample prediction back (32 bits
//! per sample, on top of the label in), the host replays the perceptron
//! updates, and the updated class memory is re-programmed at every epoch
//! boundary ([`StageCost::reprogramming_bits`], `(epochs - 1) ×
//! bits(classes)` at `program_bits_per_sec`). The trained class memory is
//! read back once at stage exit, as before.
//!
//! **Multi-chip tiling**: when the persistent footprint exceeds one
//! device's array capacity ([`AccelParams::array_bits`]), the class memory
//! tiles across `chips = ceil(bits / array_bits)` devices, each holding a
//! contiguous row-block — the hardware mirror of the runtime's class-memory
//! sharding. The chips score their row-blocks in parallel (per-sample
//! cycles shrink to `ceil(cycles / chips)`), but every extra chip costs an
//! interconnect transfer per sample: the query row broadcast in plus a
//! 64-bit partial arg-min/arg-max result merged back, at
//! [`AccelParams::interconnect_bits_per_sec`]. A single-chip fit pays
//! nothing — every term below is unchanged when `chips == 1`.
//!
//! The CPU comparison point runs the *same* nests through a two-term
//! roofline ([`CpuParams`]), so a modeled speedup is a ratio of two
//! estimates derived from one IR description, not a mix of wall-clock and
//! model. All bit counts are logical (a binarized element is 1 bit), which
//! is how binarization's 64× footprint reduction reaches the transfer
//! terms.

use crate::params::{AccelParams, CpuParams};
use hdc_ir::program::{Node, NodeBody, Program, ValueId};
use hdc_ir::stage::{StageKind, StageNode};
use hdc_ir::types::ValueType;
use hdc_ir::Target;
use hdc_passes::lowering::{lower_instr, LoopNest};

/// Bits a predicted label / index occupies on the host link.
const INDEX_BITS: u64 = 32;

/// Bits one chip's partial selection result (best score + global row index)
/// occupies on the chip-to-chip interconnect of a multi-chip tiling.
const PARTIAL_MERGE_BITS: u64 = 64;

/// The modeled cost of one accelerated stage execution.
///
/// Produced by [`AcceleratorModel::stage_cost`]; all integer fields are
/// exact (the equivalence suite pins them on the Listing-1 kernel), the
/// `*_seconds` / energy fields are those integers divided by the
/// [`AccelParams`] rates.
#[derive(Debug, Clone, PartialEq)]
pub struct StageCost {
    /// Name of the stage node.
    pub node: String,
    /// Stage kind name (`encoding_loop` / `training_loop` /
    /// `inference_loop`).
    pub kind: &'static str,
    /// The accelerator the stage is modeled on.
    pub target: Target,
    /// Per-sample body executions charged (training loops count every
    /// epoch's pass over every sample).
    pub samples: usize,
    /// Bits programmed once into persistent device memories.
    pub programming_bits: u64,
    /// Bits re-programmed into the class memory between training epochs
    /// (`(epochs - 1) x bits(classes)` — the batched-epoch schedule writes
    /// the host-replayed updates back at every epoch boundary); zero for
    /// non-training stages.
    pub reprogramming_bits: u64,
    /// Bits streamed per sample (query row in + per-sample result out,
    /// plus any non-persistent stage input re-transferred every sample).
    pub stream_bits_per_sample: u64,
    /// Bits read back once at stage exit (the trained class memory of a
    /// `training_loop`; zero otherwise).
    pub readback_bits: u64,
    /// Datapath cycles per sample, summed over the stage body's loop nests
    /// (full-array cycles; a multi-chip tiling divides these across chips).
    pub cycles_per_sample: u64,
    /// Devices the persistent footprint tiles across:
    /// `max(1, ceil(programming_bits / array_bits))`.
    pub chips: u64,
    /// Interconnect bits per sample of the multi-chip tiling:
    /// `(chips - 1) × (query row broadcast + 64-bit partial merge)`; zero
    /// on a single chip.
    pub interconnect_bits_per_sample: u64,
    /// Programming-phase time (s).
    pub programming_seconds: f64,
    /// Total streaming time (s): per-sample transfers plus readback.
    pub streaming_seconds: f64,
    /// Total chip-to-chip transfer time of a multi-chip tiling (s); zero on
    /// a single chip.
    pub interconnect_seconds: f64,
    /// Total datapath compute time (s).
    pub compute_seconds: f64,
    /// Modeled CPU time for the same stage (roofline over the same nests).
    pub cpu_seconds: f64,
    /// Modeled energy for the accelerated execution (J).
    pub energy_joules: f64,
}

impl StageCost {
    /// Total modeled accelerator time: programming + streaming +
    /// interconnect + compute. The interconnect term is zero whenever the
    /// persistent footprint fits one chip.
    pub fn accel_seconds(&self) -> f64 {
        self.programming_seconds
            + self.streaming_seconds
            + self.interconnect_seconds
            + self.compute_seconds
    }

    /// Modeled accelerator-vs-CPU speedup for this stage.
    pub fn speedup(&self) -> f64 {
        self.cpu_seconds / self.accel_seconds()
    }
}

/// The performance model: per-target [`AccelParams`] plus the CPU roofline
/// used as the comparison point.
///
/// # Examples
///
/// ```
/// use hdc_accel::AcceleratorModel;
/// use hdc_ir::Target;
///
/// let model = AcceleratorModel::default();
/// assert!(model.params_for(Target::DigitalAsic).is_some());
/// assert!(model.params_for(Target::Cpu).is_none());
/// ```
#[derive(Debug, Clone, PartialEq)]
pub struct AcceleratorModel {
    /// Parameters for the digital ASIC target.
    pub digital_asic: AccelParams,
    /// Parameters for the ReRAM processing-in-memory target.
    pub reram: AccelParams,
    /// The CPU roofline the accelerators are compared against.
    pub cpu: CpuParams,
}

impl Default for AcceleratorModel {
    fn default() -> Self {
        AcceleratorModel {
            digital_asic: AccelParams::digital_asic(),
            reram: AccelParams::reram(),
            cpu: CpuParams::default(),
        }
    }
}

impl AcceleratorModel {
    /// A model whose CPU comparison point is `cpu` — the one constructor
    /// every consumer of calibrated parameters goes through, so the
    /// CPU-side baseline comes from a single source: calibrated
    /// [`CpuParams`] when a calibration ran ([`CpuParams::calibrated`]),
    /// the documented defaults otherwise.
    pub fn with_cpu(cpu: CpuParams) -> Self {
        AcceleratorModel {
            cpu,
            ..AcceleratorModel::default()
        }
    }

    /// The parameters for an accelerator target, `None` for programmable
    /// devices.
    pub fn params_for(&self, target: Target) -> Option<&AccelParams> {
        match target {
            Target::DigitalAsic => Some(&self.digital_asic),
            Target::ReRamAccelerator => Some(&self.reram),
            _ => None,
        }
    }

    /// Model the cost of executing `node` (a stage placed on an HDC
    /// accelerator) for `samples` per-sample body passes.
    ///
    /// Returns `None` when the node is not a stage or its target is not an
    /// accelerator — those run on programmable devices and are outside this
    /// model.
    pub fn stage_cost(&self, program: &Program, node: &Node, samples: usize) -> Option<StageCost> {
        let stage = match &node.body {
            NodeBody::Stage(stage) => stage,
            _ => return None,
        };
        let params = self.params_for(node.target)?;

        let programming_bits: u64 = stage
            .persistent_values
            .iter()
            .map(|&v| logical_bits(&program.value(v).ty))
            .sum();
        let stream_bits_per_sample = per_sample_stream_bits(program, stage);
        let (readback_bits, reprogramming_bits) = match stage.kind {
            StageKind::Training { epochs } => {
                let model_bits = logical_bits(&program.value(stage.interface.output).ty);
                (model_bits, epochs.saturating_sub(1) as u64 * model_bits)
            }
            _ => (0, 0),
        };
        let cycles_per_sample: u64 = stage
            .body
            .iter()
            .map(|instr| {
                let nest = lower_instr(program, instr);
                nest_cycles(program, instr, &nest, params)
            })
            .sum();

        // Multi-chip tiling: a persistent footprint larger than one array
        // splits row-blocks across chips. Chips compute in parallel, so the
        // per-sample critical path is the per-chip share of the cycles; the
        // price is the per-sample query broadcast + partial-merge transfer
        // to every extra chip. chips == 1 leaves every term bit-exact.
        let chips = programming_bits.div_ceil(params.array_bits).max(1);
        let query_bits = row_bits(&program.value(stage.interface.queries).ty);
        let interconnect_bits_per_sample = (chips - 1) * (query_bits + PARTIAL_MERGE_BITS);

        let n = samples as f64;
        let programming_seconds =
            (programming_bits + reprogramming_bits) as f64 / params.program_bits_per_sec;
        let streaming_seconds =
            (n * stream_bits_per_sample as f64 + readback_bits as f64) / params.stream_bits_per_sec;
        let interconnect_seconds =
            n * interconnect_bits_per_sample as f64 / params.interconnect_bits_per_sec;
        let compute_seconds = n * cycles_per_sample.div_ceil(chips) as f64 / params.clock_hz;
        let moved_bits = (programming_bits + reprogramming_bits + readback_bits) as f64
            + n * stream_bits_per_sample as f64;
        // Every chip's datapath burns its share of the cycles: the total
        // compute energy is the full-array cycle count regardless of tiling.
        let energy_joules = moved_bits * params.energy_per_bit_j
            + n * cycles_per_sample as f64 * params.energy_per_cycle_j
            + n * interconnect_bits_per_sample as f64 * params.interconnect_energy_per_bit_j;

        let (flops, bytes) = stage.body.iter().fold((0.0, 0.0), |(f, by), instr| {
            let nest = lower_instr(program, instr);
            (f + nest.total_flops(), by + nest.total_bytes())
        });
        let cpu_per_sample = (flops / self.cpu.flops_per_sec).max(bytes / self.cpu.bytes_per_sec);
        let cpu_seconds = n * cpu_per_sample;

        Some(StageCost {
            node: node.name.clone(),
            kind: stage.kind.name(),
            target: node.target,
            samples,
            programming_bits,
            reprogramming_bits,
            stream_bits_per_sample,
            readback_bits,
            cycles_per_sample,
            chips,
            interconnect_bits_per_sample,
            programming_seconds,
            streaming_seconds,
            interconnect_seconds,
            compute_seconds,
            cpu_seconds,
            energy_joules,
        })
    }
}

/// Datapath cycles for one lowered stage-body instruction:
/// `ceil(iterations × operand_bits / lane_bits)`, where reduction nests use
/// the reduce lanes and element-wise nests the map lanes.
fn nest_cycles(
    program: &Program,
    instr: &hdc_ir::instr::HdcInstr,
    nest: &LoopNest,
    params: &AccelParams,
) -> u64 {
    let op_bits = instr
        .operands
        .first()
        .and_then(|o| o.as_value())
        .and_then(|v| program.value(v).ty.element_kind())
        .map(|e| e.bit_width() as u64)
        .unwrap_or(INDEX_BITS);
    let lane_bits = if nest.has_reduction {
        params.reduce_lane_bits
    } else {
        params.map_lane_bits
    };
    (nest.total_iterations() as u64 * op_bits).div_ceil(lane_bits)
}

/// Logical bit footprint of a value: element count × element width (a
/// binarized element is exactly one bit; indices are 32-bit).
pub fn logical_bits(ty: &ValueType) -> u64 {
    match ty.element_kind() {
        Some(elem) => ty.element_count() as u64 * elem.bit_width() as u64,
        None => ty.element_count() as u64 * INDEX_BITS,
    }
}

/// Logical bits of one row of the stage's query matrix (the per-sample
/// transfer unit).
fn row_bits(ty: &ValueType) -> u64 {
    match *ty {
        ValueType::HyperMatrix { elem, cols, .. } => cols as u64 * elem.bit_width() as u64,
        ref other => logical_bits(other),
    }
}

/// Bits streamed per sample: the query row in, the per-sample result out,
/// a 32-bit ground-truth label plus the 32-bit prediction readback of the
/// batched-epoch schedule for training stages, and — only when the
/// data-movement pass did *not* mark them persistent — every other
/// loop-invariant stage input, re-transferred each iteration.
fn per_sample_stream_bits(program: &Program, stage: &StageNode) -> u64 {
    let mut bits = row_bits(&program.value(stage.interface.queries).ty);
    bits += match stage.kind {
        StageKind::Encoding => row_bits(&program.value(stage.interface.output).ty),
        StageKind::Inference => INDEX_BITS,
        // The sample's label in, its epoch-scored prediction out.
        StageKind::Training { .. } => 2 * INDEX_BITS,
    };
    let written: Vec<ValueId> = stage.written_values();
    for v in stage.read_values() {
        if v == stage.interface.queries
            || v == stage.body_query
            || v == stage.body_result
            || Some(v) == stage.interface.labels
            || stage.persistent_values.contains(&v)
            || written.contains(&v)
        {
            continue;
        }
        bits += logical_bits(&program.value(v).ty);
    }
    bits
}

#[cfg(test)]
mod tests {
    use super::*;
    use hdc_core::element::ElementKind;
    use hdc_ir::builder::ProgramBuilder;
    use hdc_ir::stage::ScorePolarity;
    use hdc_passes::{assign_targets, hoist_data_movement, TargetConfig};

    /// The Listing-1 kernel as a stage: binarized inference, 2048-dim,
    /// 26 classes.
    fn listing1_stage(queries: usize) -> Program {
        let mut b = ProgramBuilder::new("listing1_stage");
        let q = b.input_matrix("queries", ElementKind::Bit, queries, 2048);
        let c = b.input_matrix("classes", ElementKind::Bit, 26, 2048);
        let preds = b.inference_loop("infer", q, c, ScorePolarity::Distance, |b, s| {
            b.hamming_distance(s, c)
        });
        b.mark_output(preds);
        b.finish()
    }

    #[test]
    fn logical_bits_are_element_counts() {
        assert_eq!(
            logical_bits(&ValueType::HyperMatrix {
                elem: ElementKind::Bit,
                rows: 26,
                cols: 2048
            }),
            26 * 2048
        );
        assert_eq!(
            logical_bits(&ValueType::HyperVector {
                elem: ElementKind::F64,
                dim: 100
            }),
            100 * 64
        );
        assert_eq!(logical_bits(&ValueType::IndexVector { len: 10 }), 320);
    }

    #[test]
    fn listing1_cost_matches_hand_computation() {
        let mut p = listing1_stage(1000);
        hoist_data_movement(&mut p);
        assign_targets(&mut p, &TargetConfig::accelerator(Target::DigitalAsic));
        let model = AcceleratorModel::default();
        let node = p
            .nodes()
            .iter()
            .find(|n| n.name == "infer")
            .expect("stage present");
        let cost = model.stage_cost(&p, node, 1000).expect("accelerated stage");
        // Programming: the 26x2048-bit class memory, once.
        assert_eq!(cost.programming_bits, 26 * 2048);
        // Per sample: 2048-bit query in, 32-bit label out.
        assert_eq!(cost.stream_bits_per_sample, 2048 + 32);
        assert_eq!(cost.readback_bits, 0);
        // Compute: ceil(26*2048 bits / 8192 lanes) = 7 cycles per sample.
        assert_eq!(cost.cycles_per_sample, 7);
        // 53 Kbit of class memory fits one 16 Mbit array: no tiling terms.
        assert_eq!(cost.chips, 1);
        assert_eq!(cost.interconnect_bits_per_sample, 0);
        assert_eq!(cost.interconnect_seconds, 0.0);
        // Seconds are the integers over the documented rates.
        let params = AccelParams::digital_asic();
        assert_eq!(
            cost.programming_seconds,
            (26 * 2048) as f64 / params.program_bits_per_sec
        );
        assert_eq!(cost.compute_seconds, 1000.0 * 7.0 / params.clock_hz);
        assert!(cost.speedup() > 1.0, "modeled win: {}", cost.speedup());
    }

    #[test]
    fn training_stage_costs_the_batched_streaming_pattern() {
        let mut b = ProgramBuilder::new("train_cost");
        let q = b.input_matrix("encoded", ElementKind::Bit, 100, 2048);
        let y = b.input_indices("labels", 100);
        let c = b.input_matrix("classes", ElementKind::Bit, 26, 2048);
        let trained = b.training_loop("retrain", q, y, c, 3, ScorePolarity::Distance, |b, s| {
            b.hamming_distance(s, c)
        });
        b.mark_output(trained);
        let mut p = b.finish();
        hoist_data_movement(&mut p);
        assign_targets(&mut p, &TargetConfig::accelerator(Target::DigitalAsic));
        let model = AcceleratorModel::default();
        let node = p
            .nodes()
            .iter()
            .find(|n| n.name == "retrain")
            .expect("stage present");
        let model_bits = 26 * 2048u64;
        // 3 epochs over 100 samples = 300 per-sample passes.
        let cost = model.stage_cost(&p, node, 300).expect("accelerated stage");
        // Class memory programmed once, then re-programmed at the two
        // epoch boundaries of the batched-epoch schedule.
        assert_eq!(cost.programming_bits, model_bits);
        assert_eq!(cost.reprogramming_bits, 2 * model_bits);
        // Per sample: the 2048-bit query in, the 32-bit label in, and the
        // 32-bit epoch-scored prediction back to the replaying host.
        assert_eq!(cost.stream_bits_per_sample, 2048 + 32 + 32);
        // Trained model read back once at stage exit.
        assert_eq!(cost.readback_bits, model_bits);
        let params = AccelParams::digital_asic();
        assert_eq!(
            cost.programming_seconds,
            (3 * model_bits) as f64 / params.program_bits_per_sec
        );
        // A 1-epoch stage has no epoch boundary to re-program.
        let mut b = ProgramBuilder::new("train_cost_1");
        let q = b.input_matrix("encoded", ElementKind::Bit, 100, 2048);
        let y = b.input_indices("labels", 100);
        let c = b.input_matrix("classes", ElementKind::Bit, 26, 2048);
        let trained = b.training_loop("retrain", q, y, c, 1, ScorePolarity::Distance, |b, s| {
            b.hamming_distance(s, c)
        });
        b.mark_output(trained);
        let mut p1 = b.finish();
        hoist_data_movement(&mut p1);
        assign_targets(&mut p1, &TargetConfig::accelerator(Target::DigitalAsic));
        let node = p1.nodes().iter().find(|n| n.name == "retrain").unwrap();
        let one = model.stage_cost(&p1, node, 100).unwrap();
        assert_eq!(one.reprogramming_bits, 0);
    }

    #[test]
    fn unhoisted_stage_pays_per_sample_transfers() {
        let mut hoisted = listing1_stage(100);
        hoist_data_movement(&mut hoisted);
        assign_targets(
            &mut hoisted,
            &TargetConfig::accelerator(Target::DigitalAsic),
        );
        let mut raw = listing1_stage(100);
        assign_targets(&mut raw, &TargetConfig::accelerator(Target::DigitalAsic));
        let model = AcceleratorModel::default();
        let cost_of = |p: &Program| {
            let node = p.nodes().iter().find(|n| n.name == "infer").unwrap();
            model.stage_cost(p, node, 100).unwrap()
        };
        let with_hoist = cost_of(&hoisted);
        let without = cost_of(&raw);
        assert_eq!(without.programming_bits, 0);
        // The class memory rides along with every sample instead.
        assert_eq!(
            without.stream_bits_per_sample,
            with_hoist.stream_bits_per_sample + 26 * 2048
        );
        assert!(without.accel_seconds() > with_hoist.accel_seconds());
    }

    #[test]
    fn reram_computes_faster_but_programs_slower() {
        let mut p = listing1_stage(1000);
        hoist_data_movement(&mut p);
        let model = AcceleratorModel::default();
        let mut costs = Vec::new();
        for target in [Target::DigitalAsic, Target::ReRamAccelerator] {
            let mut q = p.clone();
            assign_targets(&mut q, &TargetConfig::accelerator(target));
            let node = q.nodes().iter().find(|n| n.name == "infer").unwrap();
            costs.push(model.stage_cost(&q, node, 1000).unwrap());
        }
        let (asic, reram) = (&costs[0], &costs[1]);
        // The in-array reduction finishes the whole 26x2048 reduction in one
        // cycle; the ASIC needs 7 lane passes.
        assert_eq!(reram.cycles_per_sample, 1);
        assert_eq!(asic.cycles_per_sample, 7);
        assert!(reram.programming_seconds > asic.programming_seconds);
    }

    #[test]
    fn calibrated_cpu_params_scale_modeled_cpu_seconds() {
        let mut p = listing1_stage(1000);
        hoist_data_movement(&mut p);
        assign_targets(&mut p, &TargetConfig::accelerator(Target::DigitalAsic));
        let node = p.nodes().iter().find(|n| n.name == "infer").unwrap();

        let default_model = AcceleratorModel::default();
        let base = default_model.stage_cost(&p, node, 1000).unwrap();

        // A host calibrated at exactly 2x the default rates must halve the
        // modeled CPU seconds (and the speedup) while leaving every
        // accelerator-side term untouched.
        let twice = CpuParams::calibrated(
            2.0 * CpuParams::default().flops_per_sec,
            2.0 * CpuParams::default().bytes_per_sec,
        );
        let fast = AcceleratorModel::with_cpu(twice)
            .stage_cost(&p, node, 1000)
            .unwrap();
        assert_eq!(fast.cpu_seconds, base.cpu_seconds / 2.0);
        assert_eq!(fast.speedup(), base.speedup() / 2.0);
        assert_eq!(fast.accel_seconds(), base.accel_seconds());
        assert_eq!(fast.programming_bits, base.programming_bits);
        assert_eq!(fast.cycles_per_sample, base.cycles_per_sample);

        // Degenerate measurements fall back to the defaults field-wise.
        assert_eq!(CpuParams::calibrated(0.0, -3.0), CpuParams::default());
        assert_eq!(
            CpuParams::calibrated(f64::NAN, 5.0e9),
            CpuParams {
                flops_per_sec: CpuParams::default().flops_per_sec,
                bytes_per_sec: 5.0e9,
            }
        );
        assert_eq!(
            CpuParams::calibrated(f64::INFINITY, f64::INFINITY),
            CpuParams::default()
        );
    }

    #[test]
    fn oversized_class_memory_tiles_across_chips_with_pinned_accounting() {
        // 1024 classes x 32768-bit rows = 33 554 432 persistent bits:
        // exactly two 16 Mbit ASIC arrays, but still inside the 64 Mbit
        // ReRAM array — the same program tiles on one device and not the
        // other.
        let mut b = ProgramBuilder::new("tiled_stage");
        let q = b.input_matrix("queries", ElementKind::Bit, 500, 32768);
        let c = b.input_matrix("classes", ElementKind::Bit, 1024, 32768);
        let preds = b.inference_loop("infer", q, c, ScorePolarity::Distance, |b, s| {
            b.hamming_distance(s, c)
        });
        b.mark_output(preds);
        let mut p = b.finish();
        hoist_data_movement(&mut p);
        let model = AcceleratorModel::default();
        let cost_on = |target: Target| {
            let mut q = p.clone();
            assign_targets(&mut q, &TargetConfig::accelerator(target));
            let node = q.nodes().iter().find(|n| n.name == "infer").unwrap();
            model.stage_cost(&q, node, 500).unwrap()
        };

        let asic = cost_on(Target::DigitalAsic);
        assert_eq!(asic.programming_bits, 1024 * 32768);
        assert_eq!(asic.chips, 2, "33.5 Mbit over 16 Mbit arrays");
        // Per sample each extra chip receives the 32768-bit query broadcast
        // and returns a 64-bit partial arg-min.
        assert_eq!(asic.interconnect_bits_per_sample, 32768 + 64);
        let params = AccelParams::digital_asic();
        assert_eq!(
            asic.interconnect_seconds,
            500.0 * (32768.0 + 64.0) / params.interconnect_bits_per_sec
        );
        // Full-array reduction is 4096 lane passes; two chips halve the
        // per-sample critical path.
        assert_eq!(asic.cycles_per_sample, 4096);
        assert_eq!(asic.compute_seconds, 500.0 * 2048.0 / params.clock_hz);
        // The tiling term is part of the total and of the energy.
        assert_eq!(
            asic.accel_seconds(),
            asic.programming_seconds
                + asic.streaming_seconds
                + asic.interconnect_seconds
                + asic.compute_seconds
        );
        let moved = asic.programming_bits as f64 + 500.0 * asic.stream_bits_per_sample as f64;
        assert_eq!(
            asic.energy_joules,
            moved * params.energy_per_bit_j
                + 500.0 * 4096.0 * params.energy_per_cycle_j
                + 500.0 * (32768.0 + 64.0) * params.interconnect_energy_per_bit_j
        );

        let reram = cost_on(Target::ReRamAccelerator);
        assert_eq!(reram.chips, 1, "fits the 64 Mbit ReRAM array");
        assert_eq!(reram.interconnect_bits_per_sample, 0);
        assert_eq!(reram.interconnect_seconds, 0.0);
    }

    #[test]
    fn non_stage_and_cpu_nodes_have_no_cost() {
        let mut p = listing1_stage(10);
        // Without accelerator assignment every node is on the CPU.
        let model = AcceleratorModel::default();
        for node in p.nodes() {
            assert!(model.stage_cost(&p, node, 10).is_none());
        }
        hoist_data_movement(&mut p);
        assign_targets(&mut p, &TargetConfig::accelerator(Target::DigitalAsic));
        let accelerated: usize = p
            .nodes()
            .iter()
            .filter(|n| model.stage_cost(&p, n, 10).is_some())
            .count();
        assert_eq!(accelerated, 1);
    }
}
