//! The model-backed accelerated execution path.
//!
//! [`AcceleratedExecutor`] is the execution mode the accelerator targets
//! plug into: it re-targets a compiled program onto one of the HDC
//! accelerators (hoisting loop-invariant transfers and applying the
//! legality demotion of `hdc-passes::target_assign`), executes it
//! **functionally** through the `hdc-runtime` interpreter — the sequential
//! and batched CPU schedules remain the output oracle, and the equivalence
//! suite asserts bit-identical outputs — and charges the modeled
//! programming / streaming / compute cost of every accelerator-placed
//! stage against the stage trace of what actually ran.

use crate::model::{AcceleratorModel, StageCost};
use hdc_ir::program::Program;
use hdc_ir::Target;
use hdc_passes::{
    assign_targets, hoist_data_movement, stage_placements, StagePlacement, TargetConfig,
};
use hdc_runtime::{ExecStats, Executor, Outputs, Result};

/// [`ExecStats`] extended with the modeled accelerator accounting: the
/// interpreter's functional counters plus the per-stage cost model output.
#[derive(Debug, Clone, PartialEq)]
pub struct AccelExecStats {
    /// The interpreter's counters for the functional execution (its
    /// `accelerated_stage_samples` field counts exactly the samples the
    /// model charged).
    pub exec: ExecStats,
    /// The modeled per-stage accelerator costs.
    pub modeled: AccelReport,
}

/// The modeled cost report of one accelerated run.
#[derive(Debug, Clone, PartialEq)]
pub struct AccelReport {
    /// The accelerator the run was modeled on.
    pub target: Target,
    /// Modeled cost of every stage that executed on the accelerator, in
    /// execution order.
    pub stages: Vec<StageCost>,
    /// Stages that stayed on the fallback device, with the legality reason
    /// when there is one.
    pub demoted: Vec<StagePlacement>,
}

impl AccelReport {
    /// Number of stage executions modeled on the accelerator.
    pub fn accelerated_stages(&self) -> usize {
        self.stages.len()
    }

    /// Total modeled accelerator time across all accelerated stages (s).
    pub fn accel_seconds(&self) -> f64 {
        self.stages.iter().map(StageCost::accel_seconds).sum()
    }

    /// Total modeled CPU time for the same stages (s).
    pub fn cpu_seconds(&self) -> f64 {
        self.stages.iter().map(|s| s.cpu_seconds).sum()
    }

    /// Total modeled energy across all accelerated stages (J).
    pub fn energy_joules(&self) -> f64 {
        self.stages.iter().map(|s| s.energy_joules).sum()
    }

    /// Modeled accelerator-vs-CPU speedup over the accelerated stages
    /// (`1.0` when nothing was accelerated).
    pub fn modeled_speedup(&self) -> f64 {
        let accel = self.accel_seconds();
        if accel == 0.0 {
            return 1.0;
        }
        self.cpu_seconds() / accel
    }
}

/// The outcome of one accelerated run: the (oracle-identical) outputs plus
/// the extended execution statistics.
#[derive(Debug, Clone, PartialEq)]
pub struct AccelRun {
    /// The program outputs — bit-identical to the CPU schedules.
    pub outputs: Outputs,
    /// Functional counters plus modeled accelerator accounting.
    pub stats: AccelExecStats,
}

/// Executes a program with its stage nodes placed on one HDC accelerator,
/// accounting modeled cost while the `hdc-runtime` kernels produce the
/// (oracle-identical) outputs.
///
/// # Examples
///
/// ```
/// use hdc_accel::{AcceleratedExecutor, AcceleratorModel};
/// use hdc_core::prelude::*;
/// use hdc_ir::prelude::*;
/// use hdc_runtime::Value;
///
/// // A binarized inference stage: 4 queries against 2 class vectors.
/// let mut b = ProgramBuilder::new("accel_infer");
/// let q = b.input_matrix("queries", ElementKind::Bit, 4, 128);
/// let c = b.input_matrix("classes", ElementKind::Bit, 2, 128);
/// let preds = b.inference_loop("infer", q, c, ScorePolarity::Distance, |b, s| {
///     b.hamming_distance(s, c)
/// });
/// b.mark_output(preds);
/// let program = b.finish();
///
/// let ax = AcceleratedExecutor::new(
///     &program,
///     Target::DigitalAsic,
///     AcceleratorModel::default(),
/// );
/// let mut rng = HdcRng::seed_from_u64(1);
/// let classes = BitMatrix::from_dense(&hdc_core::random::bipolar_hypermatrix::<f64>(2, 128, &mut rng));
/// let queries = BitMatrix::from_rows(vec![
///     classes.row(0).unwrap().clone(),
///     classes.row(1).unwrap().clone(),
///     classes.row(0).unwrap().clone(),
///     classes.row(1).unwrap().clone(),
/// ]).unwrap();
/// let run = ax
///     .run_with(|exec| {
///         exec.bind("queries", Value::bit_matrix(queries))?;
///         exec.bind("classes", Value::bit_matrix(classes))?;
///         Ok(())
///     })
///     .unwrap();
/// assert_eq!(run.outputs.indices(preds).unwrap(), &[0, 1, 0, 1]);
/// assert_eq!(run.stats.modeled.accelerated_stages(), 1);
/// assert!(run.stats.modeled.modeled_speedup() > 0.0);
/// ```
#[derive(Debug, Clone)]
pub struct AcceleratedExecutor {
    program: Program,
    model: AcceleratorModel,
    target: Target,
}

impl AcceleratedExecutor {
    /// Re-target `program` onto `target`: clone it, hoist loop-invariant
    /// stage transfers (so programming cost is charged once per stage, the
    /// Listing-6 optimization — a no-op if the pass already ran), and
    /// assign stage nodes to the accelerator with legality demotion to the
    /// CPU fallback.
    ///
    /// # Panics
    ///
    /// Panics if `target` is not an HDC accelerator
    /// ([`Target::is_hdc_accelerator`]).
    pub fn new(program: &Program, target: Target, model: AcceleratorModel) -> Self {
        assert!(
            target.is_hdc_accelerator(),
            "AcceleratedExecutor requires an HDC accelerator target"
        );
        let mut program = program.clone();
        hoist_data_movement(&mut program);
        assign_targets(&mut program, &TargetConfig::accelerator(target));
        AcceleratedExecutor {
            program,
            model,
            target,
        }
    }

    /// The re-targeted program this executor runs.
    pub fn program(&self) -> &Program {
        &self.program
    }

    /// The accelerator target stages were placed on.
    pub fn target(&self) -> Target {
        self.target
    }

    /// The model used for cost accounting.
    pub fn model(&self) -> &AcceleratorModel {
        &self.model
    }

    /// The per-stage placement decisions (accelerated vs demoted-with-reason)
    /// of the re-targeted program.
    pub fn placements(&self) -> Vec<StagePlacement> {
        stage_placements(&self.program)
    }

    /// Execute the program: `bind` receives the underlying interpreter to
    /// bind inputs on, then the program runs with batched kernels and every
    /// accelerator-placed stage in the resulting trace is charged its
    /// modeled cost.
    ///
    /// # Errors
    ///
    /// Propagates interpreter errors from verification, binding, or
    /// execution.
    pub fn run_with<F>(&self, bind: F) -> Result<AccelRun>
    where
        F: FnOnce(&mut Executor) -> Result<()>,
    {
        let mut exec = Executor::new(&self.program)?;
        bind(&mut exec)?;
        let outputs = exec.run()?;
        let mut stages = Vec::new();
        for entry in exec.stage_trace() {
            if !entry.target.is_hdc_accelerator() {
                continue;
            }
            let node = self
                .program
                .nodes()
                .iter()
                .find(|n| n.name == entry.node)
                .expect("traced stage exists in the program");
            if let Some(cost) = self.model.stage_cost(&self.program, node, entry.samples) {
                stages.push(cost);
            }
        }
        let demoted = self
            .placements()
            .into_iter()
            .filter(|p| !p.accelerated())
            .collect();
        Ok(AccelRun {
            outputs,
            stats: AccelExecStats {
                exec: exec.stats(),
                modeled: AccelReport {
                    target: self.target,
                    stages,
                    demoted,
                },
            },
        })
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use hdc_core::element::ElementKind;
    use hdc_core::prelude::*;
    use hdc_ir::builder::ProgramBuilder;
    use hdc_ir::stage::ScorePolarity;
    use hdc_runtime::Value;

    fn staged_inference(perforate: bool) -> Program {
        let mut b = ProgramBuilder::new("exec_test");
        let q = b.input_matrix("queries", ElementKind::Bit, 8, 256);
        let c = b.input_matrix("classes", ElementKind::Bit, 4, 256);
        let preds = b.inference_loop("infer", q, c, ScorePolarity::Distance, |b, s| {
            let d = b.hamming_distance(s, c);
            if perforate {
                b.red_perf(d, 0, 256, 2);
            }
            d
        });
        b.mark_output(preds);
        b.finish()
    }

    fn bind_data(exec: &mut Executor) -> hdc_runtime::Result<()> {
        let mut rng = HdcRng::seed_from_u64(3);
        let classes: HyperMatrix<f64> = hdc_core::random::bipolar_hypermatrix(4, 256, &mut rng);
        let queries: HyperMatrix<f64> = HyperMatrix::from_rows(
            (0..8)
                .map(|i| classes.row_vector(i % 4).unwrap())
                .collect::<Vec<_>>(),
        )
        .unwrap();
        exec.bind(
            "queries",
            Value::bit_matrix(BitMatrix::from_dense(&queries)),
        )?;
        exec.bind(
            "classes",
            Value::bit_matrix(BitMatrix::from_dense(&classes)),
        )?;
        Ok(())
    }

    #[test]
    fn accelerated_outputs_match_oracle_and_account_samples() {
        let p = staged_inference(false);
        let ax = AcceleratedExecutor::new(&p, Target::DigitalAsic, AcceleratorModel::default());
        let run = ax.run_with(bind_data).unwrap();
        // Oracle: the same program executed sequentially on the CPU.
        let mut oracle = Executor::new(&p).unwrap();
        oracle.set_batched_stages(false).set_parallel_loops(false);
        bind_data(&mut oracle).unwrap();
        let expect = oracle.run().unwrap();
        let preds = run.outputs.iter().next().unwrap().0;
        assert_eq!(
            run.outputs.get(preds).unwrap(),
            expect.get(preds).unwrap(),
            "accelerated path must be bit-identical to the oracle"
        );
        assert_eq!(run.stats.exec.accelerated_stage_samples, 8);
        assert_eq!(run.stats.modeled.accelerated_stages(), 1);
        assert_eq!(run.stats.modeled.stages[0].samples, 8);
        assert!(run.stats.modeled.demoted.is_empty());
        assert!(run.stats.modeled.energy_joules() > 0.0);
    }

    #[test]
    fn perforated_stage_is_demoted_and_unmodeled() {
        let p = staged_inference(true);
        let ax =
            AcceleratedExecutor::new(&p, Target::ReRamAccelerator, AcceleratorModel::default());
        let run = ax.run_with(bind_data).unwrap();
        assert_eq!(run.stats.modeled.accelerated_stages(), 0);
        assert_eq!(run.stats.exec.accelerated_stage_samples, 0);
        assert_eq!(run.stats.modeled.demoted.len(), 1);
        assert!(run.stats.modeled.demoted[0]
            .illegal_reason
            .unwrap()
            .contains("red_perf"));
        assert_eq!(run.stats.modeled.modeled_speedup(), 1.0);
    }

    #[test]
    #[should_panic(expected = "requires an HDC accelerator")]
    fn rejects_programmable_targets() {
        let p = staged_inference(false);
        AcceleratedExecutor::new(&p, Target::Gpu, AcceleratorModel::default());
    }
}
